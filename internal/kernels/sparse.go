package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/omp"
)

// refMu guards the lazy reference caches of the extension kernels.
var refMu sync.Mutex

// Sparse is the Java Grande SparseMatmult kernel: repeated multiplication
// of a random sparse matrix (CSR form) with a dense vector, y = A*x,
// iterated a fixed number of times. Rows are independent, so the parallel
// version distributes row ranges across the team and results are
// bit-identical to the sequential run.
type Sparse struct {
	n      int // matrix dimension
	nnz    int
	iters  int
	rowPtr []int
	colIdx []int
	vals   []float64
	x, y   []float64
	total  float64
	ran    bool
}

// NewSparse builds an instance with an size x size matrix holding
// approximately 5*size nonzeros (the Java Grande density) and 50
// multiplication iterations.
func NewSparse(size int) *Sparse {
	if size < 8 {
		size = 8
	}
	s := &Sparse{n: size, nnz: 5 * size, iters: 50}
	rng := rand.New(rand.NewSource(1966))
	type entry struct {
		r, c int
		v    float64
	}
	entries := make([]entry, s.nnz)
	for i := range entries {
		entries[i] = entry{rng.Intn(size), rng.Intn(size), rng.Float64()}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	s.rowPtr = make([]int, size+1)
	s.colIdx = make([]int, s.nnz)
	s.vals = make([]float64, s.nnz)
	for i, e := range entries {
		s.colIdx[i] = e.c
		s.vals[i] = e.v
		s.rowPtr[e.r+1]++
	}
	for r := 0; r < size; r++ {
		s.rowPtr[r+1] += s.rowPtr[r]
	}
	s.x = make([]float64, size)
	for i := range s.x {
		s.x[i] = rng.Float64()
	}
	s.y = make([]float64, size)
	return s
}

// Name implements Kernel.
func (s *Sparse) Name() string { return "sparse" }

// multiplyRows accumulates y[i] += sum(A[i,:] * x) for rows [lo, hi).
func (s *Sparse) multiplyRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			sum += s.vals[k] * s.x[s.colIdx[k]]
		}
		s.y[i] += sum
	}
}

func (s *Sparse) finish() {
	total := 0.0
	for _, v := range s.y {
		total += v
	}
	s.total = total
	s.ran = true
}

// RunSeq iterates the multiplication on the calling goroutine.
func (s *Sparse) RunSeq() {
	for it := 0; it < s.iters; it++ {
		s.multiplyRows(0, s.n)
	}
	s.finish()
}

// RunPar iterates with rows statically distributed across an n-thread team
// (a barrier between iterations, since every row reads the shared x — here
// x is constant, but the barrier mirrors the Java Grande structure where
// iterations are timed individually).
func (s *Sparse) RunPar(n int) {
	omp.Parallel(n, func(tc *omp.Team) {
		for it := 0; it < s.iters; it++ {
			tc.For(0, s.n, omp.Static, 0, func(i int) { s.multiplyRows(i, i+1) })
		}
	})
	s.finish()
}

// Total returns the checksum (sum of y) of the last run.
func (s *Sparse) Total() float64 { return s.total }

// refSparseTotals caches the sequential reference per size.
var refSparseTotals = map[int]float64{}

// Validate compares against a sequential reference run of the same size.
func (s *Sparse) Validate() error {
	if !s.ran {
		return fmt.Errorf("sparse: not run")
	}
	if math.IsNaN(s.total) || math.IsInf(s.total, 0) || s.total == 0 {
		return fmt.Errorf("sparse: total = %v", s.total)
	}
	refMu.Lock()
	ref, ok := refSparseTotals[s.n]
	if !ok {
		r := NewSparse(s.n)
		refMu.Unlock()
		r.RunSeq()
		refMu.Lock()
		refSparseTotals[s.n] = r.total
		ref = r.total
	}
	refMu.Unlock()
	if s.total != ref {
		return fmt.Errorf("sparse: total %v != reference %v", s.total, ref)
	}
	return nil
}
