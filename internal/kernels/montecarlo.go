package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/omp"
)

// MonteCarlo is the Java Grande MonteCarlo kernel reduced to its
// computational core: price a European asset by simulating geometric
// Brownian motion paths and averaging the terminal values. (The Java Grande
// original derives its drift and volatility from a rate file of historical
// prices; we fix the calibrated parameters instead — the arithmetic per
// path, the dominant cost, is identical in structure.)
//
// Every path seeds its own generator from the path index, so results are
// bit-identical between sequential and parallel runs regardless of
// scheduling.
type MonteCarlo struct {
	paths int
	steps int
	seed  int64

	s0, mu, sigma, dt float64

	results []float64
	mean    float64
	ran     bool
}

// NewMonteCarlo builds an instance simulating size paths of `steps`
// timesteps (steps <= 0 selects the default 1000, 4 years of trading days
// in the Java Grande configuration).
func NewMonteCarlo(size, steps int) *MonteCarlo {
	if size < 1 {
		size = 1
	}
	if steps <= 0 {
		steps = 1000
	}
	return &MonteCarlo{
		paths:   size,
		steps:   steps,
		seed:    979693,
		s0:      100.0,
		mu:      0.05,
		sigma:   0.2,
		dt:      1.0 / float64(steps),
		results: make([]float64, size),
	}
}

// Name implements Kernel.
func (m *MonteCarlo) Name() string { return "montecarlo" }

// simulate runs one GBM path and returns its terminal value.
func (m *MonteCarlo) simulate(path int) float64 {
	rng := rand.New(rand.NewSource(m.seed + int64(path)*2654435761))
	drift := (m.mu - 0.5*m.sigma*m.sigma) * m.dt
	vol := m.sigma * math.Sqrt(m.dt)
	logS := math.Log(m.s0)
	for t := 0; t < m.steps; t++ {
		logS += drift + vol*rng.NormFloat64()
	}
	return math.Exp(logS)
}

func (m *MonteCarlo) finish() {
	sum := 0.0
	for _, v := range m.results {
		sum += v
	}
	m.mean = sum / float64(m.paths)
	m.ran = true
}

// RunSeq simulates all paths on the calling goroutine.
func (m *MonteCarlo) RunSeq() {
	for i := 0; i < m.paths; i++ {
		m.results[i] = m.simulate(i)
	}
	m.finish()
}

// RunPar distributes paths across an n-thread team. The final average is
// accumulated sequentially so it is bit-identical to RunSeq.
func (m *MonteCarlo) RunPar(n int) {
	omp.ParallelForSchedule(n, 0, m.paths, omp.Dynamic, 8, func(i int) {
		m.results[i] = m.simulate(i)
	})
	m.finish()
}

// Mean returns the average terminal value of the last run.
func (m *MonteCarlo) Mean() float64 { return m.mean }

// Validate checks that the empirical mean is consistent with the analytic
// expectation E[S_T] = S0 * exp(mu*T) within a generous sampling bound, and
// that every path produced a positive finite price.
func (m *MonteCarlo) Validate() error {
	if !m.ran {
		return fmt.Errorf("montecarlo: not run")
	}
	for i, v := range m.results {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("montecarlo: path %d produced invalid price %v", i, v)
		}
	}
	expected := m.s0 * math.Exp(m.mu*float64(m.steps)*m.dt)
	// Lognormal terminal sd ~ s0*sigma for T=1; allow 6 standard errors,
	// floored for very small path counts.
	se := m.s0 * m.sigma / math.Sqrt(float64(m.paths))
	tolerance := 6*se + 1.0
	if d := math.Abs(m.mean - expected); d > tolerance {
		return fmt.Errorf("montecarlo: mean %v deviates from expectation %v by %v (tolerance %v)",
			m.mean, expected, d, tolerance)
	}
	return nil
}
