package kernels

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestIdeaMulInvProperty(t *testing.T) {
	// Exhaustive: mul(x, inv(x)) == 1 for every 16-bit value (0 encodes
	// 2^16, which is self-inverse mod 2^16+1).
	for x := 0; x < 1<<16; x++ {
		inv := ideaMulInv(uint16(x))
		if got := ideaMul(uint32(x), uint32(inv)); got != 1 {
			t.Fatalf("mul(%d, inv(%d)=%d) = %d, want 1", x, x, inv, got)
		}
	}
}

func TestIdeaAddInv(t *testing.T) {
	for _, x := range []uint16{0, 1, 0x7fff, 0x8000, 0xffff} {
		if got := (uint32(x) + uint32(ideaAddInv(x))) & 0xffff; got != 0 {
			t.Fatalf("addinv(%d): sum mod 2^16 = %d", x, got)
		}
	}
}

func TestIdeaSingleBlockRoundTrip(t *testing.T) {
	f := func(key [8]uint16, block [8]byte) bool {
		enc := ideaEncryptKey(key)
		dec := ideaDecryptKey(enc)
		var ct, pt [8]byte
		ideaCipher(block[:], ct[:], &enc, 0, 1)
		ideaCipher(ct[:], pt[:], &dec, 0, 1)
		return pt == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCryptSequential(t *testing.T) {
	c := NewCrypt(TestSize("crypt"))
	c.RunSeq()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCryptParallelMatches(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		c := NewCrypt(TestSize("crypt"))
		c.RunPar(n)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCryptParallelSameCiphertext(t *testing.T) {
	a := NewCrypt(8192)
	a.RunSeq()
	b := NewCrypt(8192)
	b.RunPar(4)
	for i := range a.cipher {
		if a.cipher[i] != b.cipher[i] {
			t.Fatalf("ciphertext differs at %d between seq and par", i)
		}
	}
}

func TestCryptOddSizeRoundedUp(t *testing.T) {
	c := NewCrypt(13)
	if c.n%ideaBlock != 0 {
		t.Fatalf("size %d not block aligned", c.n)
	}
	c.RunSeq()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCryptNotRun(t *testing.T) {
	if err := NewCrypt(64).Validate(); err == nil {
		t.Fatal("Validate passed without running")
	}
}

func TestSeriesSequentialReference(t *testing.T) {
	s := NewSeries(TestSize("series"))
	s.RunSeq()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesParallelBitIdentical(t *testing.T) {
	seq := NewSeries(16)
	seq.RunSeq()
	for _, n := range []int{2, 4, 8} {
		par := NewSeries(16)
		par.RunPar(n)
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a1, b1 := seq.Coefficients()
		a2, b2 := par.Coefficients()
		for i := range a1 {
			if a1[i] != a2[i] || b1[i] != b2[i] {
				t.Fatalf("n=%d: coefficient %d differs (seq %v/%v, par %v/%v)",
					n, i, a1[i], b1[i], a2[i], b2[i])
			}
		}
	}
}

func TestSeriesMinimumSize(t *testing.T) {
	s := NewSeries(1) // clamped to 4 for validation
	s.RunSeq()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloSequential(t *testing.T) {
	m := NewMonteCarlo(TestSize("montecarlo"), 200)
	m.RunSeq()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Mean() <= 0 {
		t.Fatalf("mean = %v", m.Mean())
	}
}

func TestMonteCarloParallelBitIdentical(t *testing.T) {
	seq := NewMonteCarlo(400, 100)
	seq.RunSeq()
	for _, n := range []int{2, 4} {
		par := NewMonteCarlo(400, 100)
		par.RunPar(n)
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if seq.Mean() != par.Mean() {
			t.Fatalf("n=%d: mean %v != sequential %v", n, par.Mean(), seq.Mean())
		}
		for i := range seq.results {
			if seq.results[i] != par.results[i] {
				t.Fatalf("n=%d: path %d differs", n, i)
			}
		}
	}
}

func TestMonteCarloConvergesToExpectation(t *testing.T) {
	m := NewMonteCarlo(20000, 50)
	m.RunPar(4)
	expected := m.s0 * math.Exp(m.mu)
	if rel := math.Abs(m.Mean()-expected) / expected; rel > 0.02 {
		t.Fatalf("mean %v vs analytic %v: relative error %v", m.Mean(), expected, rel)
	}
}

func TestRayTracerSequential(t *testing.T) {
	r := NewRayTracer(TestSize("raytracer"))
	r.RunSeq()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Checksum() == 0 {
		t.Fatal("blank image")
	}
}

func TestRayTracerParallelMatchesChecksum(t *testing.T) {
	seq := NewRayTracer(32)
	seq.RunSeq()
	for _, n := range []int{2, 3, 4, 8} {
		par := NewRayTracer(32)
		par.RunPar(n)
		if par.Checksum() != seq.Checksum() {
			t.Fatalf("n=%d: checksum %d != sequential %d", n, par.Checksum(), seq.Checksum())
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRayTracerDeterministic(t *testing.T) {
	a := NewRayTracer(24)
	a.RunSeq()
	b := NewRayTracer(24)
	b.RunSeq()
	if a.Checksum() != b.Checksum() {
		t.Fatal("sequential renders differ between instances")
	}
}

func TestFactoriesRunAndValidate(t *testing.T) {
	for name, f := range Factories() {
		k := f(TestSize(name))
		if k.Name() != name {
			t.Fatalf("factory %q built kernel named %q", name, k.Name())
		}
		k.RunSeq()
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k2 := f(TestSize(name))
		k2.RunPar(4)
		if err := k2.Validate(); err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
	}
}

func TestNamesMatchFactories(t *testing.T) {
	fs := Factories()
	for _, n := range Names() {
		if _, ok := fs[n]; !ok {
			t.Fatalf("Names lists %q but Factories lacks it", n)
		}
	}
	if len(Names()) != len(fs) {
		t.Fatal("Names/Factories cardinality mismatch")
	}
}

func TestCalibrateHitsTarget(t *testing.T) {
	target := 20 * time.Millisecond
	size := Calibrate(func(s int) Kernel { return NewCrypt(s) }, 1024, target)
	k := NewCrypt(size)
	t0 := time.Now()
	k.RunSeq()
	d := time.Since(t0)
	if d < target/4 || d > target*4 {
		t.Fatalf("calibrated size %d runs in %v, target %v", size, d, target)
	}
}

func TestParallelSpeedupShape(t *testing.T) {
	// Not a strict speedup assertion (CI machines vary), but 4 threads must
	// not be dramatically slower than 1 on a compute-bound kernel.
	size := Calibrate(func(s int) Kernel { return NewCrypt(s) }, 1024, 30*time.Millisecond)
	t1 := timeIt(func() { NewCrypt(size).RunPar(1) })
	t4 := timeIt(func() { NewCrypt(size).RunPar(4) })
	if t4 > t1*2 {
		t.Fatalf("4-thread run (%v) much slower than 1-thread (%v)", t4, t1)
	}
}

func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

func BenchmarkCryptSeq(b *testing.B) {
	benchKernel(b, func() Kernel { k := NewCrypt(1 << 18); return k }, 0)
}
func BenchmarkCryptPar4(b *testing.B) { benchKernel(b, func() Kernel { return NewCrypt(1 << 18) }, 4) }
func BenchmarkSeriesSeq(b *testing.B) {
	benchKernel(b, func() Kernel { return NewSeries(64) }, 0)
}
func BenchmarkSeriesPar4(b *testing.B) {
	benchKernel(b, func() Kernel { return NewSeries(64) }, 4)
}
func BenchmarkMonteCarloSeq(b *testing.B) {
	benchKernel(b, func() Kernel { return NewMonteCarlo(1000, 200) }, 0)
}
func BenchmarkMonteCarloPar4(b *testing.B) {
	benchKernel(b, func() Kernel { return NewMonteCarlo(1000, 200) }, 4)
}
func BenchmarkRayTracerSeq(b *testing.B) {
	benchKernel(b, func() Kernel { return NewRayTracer(48) }, 0)
}
func BenchmarkRayTracerPar4(b *testing.B) {
	benchKernel(b, func() Kernel { return NewRayTracer(48) }, 4)
}

func benchKernel(b *testing.B, mk func() Kernel, par int) {
	for i := 0; i < b.N; i++ {
		k := mk()
		if par > 0 {
			k.RunPar(par)
		} else {
			k.RunSeq()
		}
	}
}
