// Package kernels ports the four Java Grande Forum benchmark kernels the
// paper's evaluation embeds in event handlers — Crypt (IDEA encryption),
// Series (Fourier coefficients), MonteCarlo (stochastic simulation) and
// RayTracer (3D rendering) — each with a sequential implementation and a
// parallel one built on the omp substrate, plus validation.
//
// The kernels are deterministic for a given size/seed, so the parallel
// variants can be checked for bit-identical results against the sequential
// ones, and response-time benchmarks are repeatable.
package kernels

import (
	"fmt"
	"math"
	"time"
)

// Kernel is one runnable computational workload instance. Instances are
// single-use state machines: construct, run (sequentially or in parallel),
// then validate.
type Kernel interface {
	// Name identifies the kernel family ("crypt", "series", ...).
	Name() string
	// RunSeq executes the kernel on the calling goroutine.
	RunSeq()
	// RunPar executes the kernel with an OpenMP team of n threads (n <= 0
	// selects omp.DefaultNumThreads). The calling goroutine is the master
	// and participates, per the fork-join model.
	RunPar(n int)
	// Validate checks the result of the last Run and returns a descriptive
	// error on mismatch.
	Validate() error
}

// Factory builds a fresh kernel instance scaled by size. What "size" means
// is kernel-specific (bytes for crypt, coefficients for series, paths for
// montecarlo, image width for raytracer); every kernel's cost is monotonic
// in it.
type Factory func(size int) Kernel

// Factories returns the kernel families keyed by name.
func Factories() map[string]Factory {
	return map[string]Factory{
		"crypt":      func(size int) Kernel { return NewCrypt(size) },
		"series":     func(size int) Kernel { return NewSeries(size) },
		"montecarlo": func(size int) Kernel { return NewMonteCarlo(size, 0) },
		"raytracer":  func(size int) Kernel { return NewRayTracer(size) },
		"sor":        func(size int) Kernel { return NewSOR(size) },
		"sparse":     func(size int) Kernel { return NewSparse(size) },
		"moldyn":     func(size int) Kernel { return NewMolDyn(size) },
		"lufact":     func(size int) Kernel { return NewLUFact(size) },
	}
}

// Names returns every kernel family name: the paper's four first, then the
// extension kernels completing the Java Grande suite (SOR, SparseMatmult,
// LUFact from Section 2; MolDyn from Section 3).
func Names() []string {
	return []string{"crypt", "series", "montecarlo", "raytracer", "sor", "sparse", "moldyn", "lufact"}
}

// PaperNames returns the four kernels the paper's evaluation selects.
func PaperNames() []string { return []string{"crypt", "series", "montecarlo", "raytracer"} }

// TestSize returns a small size for the given family suitable for unit
// tests (sub-millisecond to a few milliseconds).
func TestSize(name string) int {
	switch name {
	case "crypt":
		return 64 * 1024 // bytes
	case "series":
		return 32 // coefficient pairs
	case "montecarlo":
		return 500 // paths
	case "raytracer":
		return 24 // image width (square)
	case "sor":
		return 64 // grid dimension
	case "sparse":
		return 4096 // matrix dimension
	case "moldyn":
		return 2 // lattice cells per dimension (32 particles)
	case "lufact":
		return 64 // matrix dimension
	default:
		panic(fmt.Sprintf("kernels: unknown family %q", name))
	}
}

// SizeA returns the published Java Grande "size A" parameter for the given
// family (the smallest standard size), for paper-scale runs on capable
// machines. Unit tests and the default benches use TestSize instead.
func SizeA(name string) int {
	switch name {
	case "crypt":
		return 3_000_000 // bytes
	case "series":
		return 10_000 // coefficient pairs
	case "montecarlo":
		return 10_000 // sample paths (time series runs)
	case "raytracer":
		return 150 // image width
	case "sor":
		return 1_000 // grid dimension
	case "sparse":
		return 50_000 // matrix dimension
	case "moldyn":
		return 8 // lattice cells -> 2048 particles
	case "lufact":
		return 500 // matrix dimension
	default:
		panic(fmt.Sprintf("kernels: unknown family %q", name))
	}
}

// Calibrate searches for a size whose sequential execution takes roughly
// target on this machine (within a factor of ~1.3), starting from the
// family's test size and scaling. The paper's evaluation sizes handlers in
// the hundreds-of-milliseconds regime; absolute machine speed differs, so
// the harness calibrates instead of hardcoding Java Grande sizes.
func Calibrate(f Factory, start int, target time.Duration) int {
	if start < 1 {
		start = 1
	}
	size := start
	for i := 0; i < 24; i++ {
		k := f(size)
		t0 := time.Now()
		k.RunSeq()
		d := time.Since(t0)
		if d <= 0 {
			size *= 8
			continue
		}
		ratio := float64(target) / float64(d)
		if ratio < 1.3 && ratio > 0.77 {
			return size
		}
		// Step with a damped exponent: kernels whose cost is superlinear in
		// size (raytracer is ~quadratic in width) would oscillate around the
		// target under a proportional step.
		next := int(float64(size) * math.Pow(ratio, 0.6))
		if next < 1 {
			next = 1
		}
		// Damp wild swings from timer noise at tiny sizes.
		if next > size*16 {
			next = size * 16
		}
		if next == size {
			if ratio > 1 {
				next = size + 1
			} else if size > 1 {
				next = size - 1
			} else {
				return size
			}
		}
		size = next
	}
	return size
}
