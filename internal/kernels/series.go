package kernels

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// Series is the Java Grande Series kernel: the first n pairs of Fourier
// coefficients of f(x) = (x+1)^x on the interval [0,2], each coefficient
// computed by 1000-step trapezoid integration. Coefficients are mutually
// independent, so the parallel version distributes them across the team
// with a dynamic schedule (the integrands get slightly cheaper for higher
// harmonics is false here — cost is uniform — but dynamic matches the Java
// Grande multithreaded variant).
type Series struct {
	n   int
	a   []float64 // a[0] is a0/2; a[i] are cosine coefficients
	b   []float64 // b[i] are sine coefficients (b[0] unused)
	ran bool
}

const (
	seriesIntegrationSteps = 1000
	seriesInterval         = 2.0
)

// NewSeries builds a Series instance computing size coefficient pairs
// (size >= 4 so the reference validation has values to check).
func NewSeries(size int) *Series {
	if size < 4 {
		size = 4
	}
	return &Series{n: size, a: make([]float64, size), b: make([]float64, size)}
}

// Name implements Kernel.
func (s *Series) Name() string { return "series" }

func seriesFn(x, omegan float64, sel int) float64 {
	switch sel {
	case 0:
		return math.Pow(x+1, x)
	case 1:
		return math.Pow(x+1, x) * math.Cos(omegan*x)
	default:
		return math.Pow(x+1, x) * math.Sin(omegan*x)
	}
}

// trapezoidIntegrate mirrors the Java Grande routine exactly (same
// evaluation points and accumulation order) so coefficients are
// reproducible against the published reference values.
func trapezoidIntegrate(x0, x1 float64, nsteps int, omegan float64, sel int) float64 {
	x := x0
	dx := (x1 - x0) / float64(nsteps)
	rvalue := seriesFn(x0, omegan, sel) / 2.0
	if nsteps != 1 {
		nsteps--
		for nsteps > 1 {
			nsteps--
			x += dx
			rvalue += seriesFn(x, omegan, sel)
		}
	}
	return (rvalue + seriesFn(x1, omegan, sel)/2.0) * dx
}

func (s *Series) coefficient(i int) {
	// Fundamental frequency: omega = 2*pi / period with period = interval.
	omega := 2 * math.Pi / seriesInterval
	if i == 0 {
		s.a[0] = trapezoidIntegrate(0, seriesInterval, seriesIntegrationSteps, 0, 0) / seriesInterval
		return
	}
	s.a[i] = trapezoidIntegrate(0, seriesInterval, seriesIntegrationSteps, omega*float64(i), 1)
	s.b[i] = trapezoidIntegrate(0, seriesInterval, seriesIntegrationSteps, omega*float64(i), 2)
}

// RunSeq computes all coefficients on the calling goroutine.
func (s *Series) RunSeq() {
	for i := 0; i < s.n; i++ {
		s.coefficient(i)
	}
	s.ran = true
}

// RunPar distributes coefficients over an n-thread team.
func (s *Series) RunPar(n int) {
	omp.ParallelForSchedule(n, 0, s.n, omp.Dynamic, 1, s.coefficient)
	s.ran = true
}

// seriesReference holds the published Java Grande validation values for the
// first four coefficient pairs of (x+1)^x on [0,2] with 1000-step trapezoid
// integration.
var seriesReference = [4][2]float64{
	{2.8729524964837996, 0},
	{1.1161046676147888, -1.8819691893398025},
	{0.34429060398168704, -1.1645642623320958},
	{0.15238898702519288, -0.8143461113044298},
}

// Validate checks the first four coefficient pairs against the Java Grande
// reference values.
func (s *Series) Validate() error {
	if !s.ran {
		return fmt.Errorf("series: not run")
	}
	const tol = 1e-12
	for i := 0; i < 4; i++ {
		if d := math.Abs(s.a[i] - seriesReference[i][0]); d > tol {
			return fmt.Errorf("series: a[%d] = %.17g, want %.17g (delta %g)", i, s.a[i], seriesReference[i][0], d)
		}
		if i > 0 {
			if d := math.Abs(s.b[i] - seriesReference[i][1]); d > tol {
				return fmt.Errorf("series: b[%d] = %.17g, want %.17g (delta %g)", i, s.b[i], seriesReference[i][1], d)
			}
		}
	}
	return nil
}

// Coefficients returns copies of the computed coefficient arrays (a, b).
func (s *Series) Coefficients() ([]float64, []float64) {
	a := make([]float64, len(s.a))
	b := make([]float64, len(s.b))
	copy(a, s.a)
	copy(b, s.b)
	return a, b
}
