package kernels

import (
	"math"
	"testing"
)

func TestSORSequential(t *testing.T) {
	s := NewSOR(TestSize("sor"))
	s.RunSeq()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Total() == 0 || math.IsNaN(s.Total()) {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestSORParallelBitIdentical(t *testing.T) {
	seq := NewSOR(48)
	seq.RunSeq()
	for _, n := range []int{2, 3, 4} {
		par := NewSOR(48)
		par.RunPar(n)
		if par.Total() != seq.Total() {
			t.Fatalf("n=%d: total %v != sequential %v (red-black ordering broken)",
				n, par.Total(), seq.Total())
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSORRelaxesTowardSmoothness(t *testing.T) {
	// One relaxation pass must reduce the grid's roughness (sum of squared
	// neighbor differences) relative to the initial random field.
	rough := func(g []float64, n int) float64 {
		r := 0.0
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				d := g[i*n+j] - g[i*n+j+1]
				r += d * d
			}
		}
		return r
	}
	a := NewSOR(32)
	before := rough(a.g, a.n)
	a.RunSeq()
	after := rough(a.g, a.n)
	if after >= before {
		t.Fatalf("roughness did not decrease: %v -> %v", before, after)
	}
}

func TestSORMinimumSizeClamped(t *testing.T) {
	s := NewSOR(1)
	if s.n != 4 {
		t.Fatalf("n = %d, want clamped 4", s.n)
	}
	s.RunSeq()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseSequential(t *testing.T) {
	s := NewSparse(TestSize("sparse"))
	s.RunSeq()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseParallelBitIdentical(t *testing.T) {
	seq := NewSparse(2048)
	seq.RunSeq()
	for _, n := range []int{2, 4, 7} {
		par := NewSparse(2048)
		par.RunPar(n)
		if par.Total() != seq.Total() {
			t.Fatalf("n=%d: total %v != sequential %v", n, par.Total(), seq.Total())
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSparseCSRWellFormed(t *testing.T) {
	s := NewSparse(512)
	if s.rowPtr[0] != 0 || s.rowPtr[s.n] != s.nnz {
		t.Fatalf("rowPtr bounds: %d..%d, nnz %d", s.rowPtr[0], s.rowPtr[s.n], s.nnz)
	}
	for r := 0; r < s.n; r++ {
		if s.rowPtr[r] > s.rowPtr[r+1] {
			t.Fatalf("rowPtr not monotonic at %d", r)
		}
		for k := s.rowPtr[r]; k < s.rowPtr[r+1]; k++ {
			if s.colIdx[k] < 0 || s.colIdx[k] >= s.n {
				t.Fatalf("col index out of range: %d", s.colIdx[k])
			}
		}
	}
}

func TestSparseNotRun(t *testing.T) {
	if err := NewSparse(64).Validate(); err == nil {
		t.Fatal("Validate passed without running")
	}
}

func TestExtensionKernelsViaFactories(t *testing.T) {
	for _, name := range []string{"sor", "sparse"} {
		f := Factories()[name]
		if f == nil {
			t.Fatalf("%s not registered", name)
		}
		k := f(TestSize(name))
		k.RunPar(3)
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPaperNamesSubsetOfNames(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range PaperNames() {
		if !all[n] {
			t.Fatalf("paper kernel %q missing from Names", n)
		}
	}
	if len(PaperNames()) != 4 {
		t.Fatalf("paper selects 4 kernels, got %d", len(PaperNames()))
	}
}

func BenchmarkSORSeq(b *testing.B)    { benchKernel(b, func() Kernel { return NewSOR(96) }, 0) }
func BenchmarkSORPar4(b *testing.B)   { benchKernel(b, func() Kernel { return NewSOR(96) }, 4) }
func BenchmarkSparseSeq(b *testing.B) { benchKernel(b, func() Kernel { return NewSparse(1 << 14) }, 0) }
func BenchmarkSparsePar4(b *testing.B) {
	benchKernel(b, func() Kernel { return NewSparse(1 << 14) }, 4)
}

func TestMolDynSequential(t *testing.T) {
	md := NewMolDyn(2)
	md.RunSeq()
	if err := md.Validate(); err != nil {
		t.Fatal(err)
	}
	ke, pe := md.Energy()
	if ke <= 0 {
		t.Fatalf("kinetic = %v", ke)
	}
	if pe >= 0 {
		t.Fatalf("potential = %v, want negative (bound LJ system)", pe)
	}
}

func TestMolDynParallelBitIdentical(t *testing.T) {
	seq := NewMolDyn(2)
	seq.RunSeq()
	for _, n := range []int{2, 3, 4} {
		par := NewMolDyn(2)
		par.RunPar(n)
		ke1, pe1 := seq.Energy()
		ke2, pe2 := par.Energy()
		if ke1 != ke2 || pe1 != pe2 {
			t.Fatalf("n=%d: energies (%v,%v) != sequential (%v,%v)", n, ke2, pe2, ke1, pe1)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestMolDynMomentumConserved(t *testing.T) {
	md := NewMolDyn(2)
	md.RunSeq()
	var px, py, pz float64
	for i := 0; i < md.n; i++ {
		px += md.vel[3*i]
		py += md.vel[3*i+1]
		pz += md.vel[3*i+2]
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-8*float64(md.n) {
		t.Fatalf("net momentum (%v, %v, %v) not conserved", px, py, pz)
	}
}

func TestLUFactSequentialResidual(t *testing.T) {
	lu := NewLUFact(128)
	lu.RunSeq()
	if err := lu.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLUFactParallelBitIdentical(t *testing.T) {
	seq := NewLUFact(96)
	seq.RunSeq()
	want := seq.Solution()
	for _, n := range []int{2, 3, 4} {
		par := NewLUFact(96)
		par.RunPar(n)
		if err := par.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := par.Solution()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: x[%d] = %v != sequential %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUFactSolvesKnownSystem(t *testing.T) {
	// Overwrite with the identity: solution must equal b.
	lu := NewLUFact(8)
	for i := 0; i < lu.n; i++ {
		for j := 0; j < lu.n; j++ {
			v := 0.0
			if i == j {
				v = 1.0
			}
			lu.a[i*lu.n+j] = v
			lu.a0[i*lu.n+j] = v
		}
	}
	lu.RunSeq()
	for i, v := range lu.Solution() {
		if math.Abs(v-lu.b[i]) > 1e-15 {
			t.Fatalf("x[%d] = %v, want %v", i, v, lu.b[i])
		}
	}
}

func BenchmarkMolDynSeq(b *testing.B)  { benchKernel(b, func() Kernel { return NewMolDyn(3) }, 0) }
func BenchmarkMolDynPar4(b *testing.B) { benchKernel(b, func() Kernel { return NewMolDyn(3) }, 4) }
func BenchmarkLUFactSeq(b *testing.B)  { benchKernel(b, func() Kernel { return NewLUFact(256) }, 0) }
func BenchmarkLUFactPar4(b *testing.B) { benchKernel(b, func() Kernel { return NewLUFact(256) }, 4) }

func TestSizeAKnownForAllFamilies(t *testing.T) {
	for _, n := range Names() {
		if SizeA(n) <= TestSize(n) && n != "moldyn" {
			t.Errorf("%s: SizeA (%d) not larger than TestSize (%d)", n, SizeA(n), TestSize(n))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SizeA on unknown family did not panic")
		}
	}()
	SizeA("bogus")
}

func TestRunParOneEqualsRunSeqAllFamilies(t *testing.T) {
	// Property: a one-thread team is the sequential execution for every
	// kernel family (the master runs everything).
	for _, name := range Names() {
		f := Factories()[name]
		a := f(TestSize(name))
		a.RunSeq()
		b := f(TestSize(name))
		b.RunPar(1)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s seq: %v", name, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s par(1): %v", name, err)
		}
	}
}
