package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/omp"
)

// MolDyn is the Java Grande MolDyn kernel: an N-body molecular dynamics
// simulation of argon-like particles on an FCC lattice with Lennard-Jones
// interactions, periodic boundaries and velocity-Verlet integration.
//
// Parallelization note: instead of Newton's-third-law pair halving (whose
// force accumulation order depends on the thread decomposition), every
// particle computes its own incoming forces over all others. That doubles
// the arithmetic but makes force rows independent, so the parallel run is
// bit-identical to the sequential one for every thread count — the same
// determinism contract as the other kernels here.
type MolDyn struct {
	m     int // lattice cells per dimension; N = 4m^3
	n     int
	steps int

	boxLen  float64
	cutoff2 float64
	dt      float64

	pos, vel, force []float64 // 3N, interleaved xyz
	peParts         []float64 // per-particle potential (deterministic sum)

	kinetic, potential float64
	ran                bool
}

// NewMolDyn builds an instance with size lattice cells per dimension
// (size < 2 clamps to 2 → 32 particles) and 8 velocity-Verlet steps.
func NewMolDyn(size int) *MolDyn {
	if size < 2 {
		size = 2
	}
	md := &MolDyn{m: size, n: 4 * size * size * size, steps: 8}
	md.init()
	return md
}

func (md *MolDyn) init() {
	n := md.n
	// Reduced-unit density 0.8442 (the Java Grande configuration).
	const density = 0.8442
	md.boxLen = math.Cbrt(float64(n) / density)
	cut := 2.5
	if half := md.boxLen / 2; cut > half {
		cut = half
	}
	md.cutoff2 = cut * cut
	md.dt = 0.004

	md.pos = make([]float64, 3*n)
	md.vel = make([]float64, 3*n)
	md.force = make([]float64, 3*n)
	md.peParts = make([]float64, n)

	// FCC lattice.
	cell := md.boxLen / float64(md.m)
	offsets := [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	i := 0
	for x := 0; x < md.m; x++ {
		for y := 0; y < md.m; y++ {
			for z := 0; z < md.m; z++ {
				for _, o := range offsets {
					md.pos[3*i] = (float64(x) + o[0]) * cell
					md.pos[3*i+1] = (float64(y) + o[1]) * cell
					md.pos[3*i+2] = (float64(z) + o[2]) * cell
					i++
				}
			}
		}
	}
	// Maxwell-ish velocities from a fixed seed, zero net momentum.
	rng := rand.New(rand.NewSource(20120111))
	var px, py, pz float64
	for i := 0; i < n; i++ {
		md.vel[3*i] = rng.NormFloat64()
		md.vel[3*i+1] = rng.NormFloat64()
		md.vel[3*i+2] = rng.NormFloat64()
		px += md.vel[3*i]
		py += md.vel[3*i+1]
		pz += md.vel[3*i+2]
	}
	for i := 0; i < n; i++ {
		md.vel[3*i] -= px / float64(n)
		md.vel[3*i+1] -= py / float64(n)
		md.vel[3*i+2] -= pz / float64(n)
	}
}

// Name implements Kernel.
func (md *MolDyn) Name() string { return "moldyn" }

// forceOn computes the LJ force on particle i from all others and its
// potential-energy share (half of each pair's potential).
func (md *MolDyn) forceOn(i int) {
	n := md.n
	xi, yi, zi := md.pos[3*i], md.pos[3*i+1], md.pos[3*i+2]
	var fx, fy, fz, pe float64
	box := md.boxLen
	half := box / 2
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		dx := xi - md.pos[3*j]
		dy := yi - md.pos[3*j+1]
		dz := zi - md.pos[3*j+2]
		// Minimum-image periodic boundaries.
		if dx > half {
			dx -= box
		} else if dx < -half {
			dx += box
		}
		if dy > half {
			dy -= box
		} else if dy < -half {
			dy += box
		}
		if dz > half {
			dz -= box
		} else if dz < -half {
			dz += box
		}
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= md.cutoff2 || r2 == 0 {
			continue
		}
		inv2 := 1 / r2
		inv6 := inv2 * inv2 * inv2
		// LJ: V = 4(r^-12 - r^-6); F = 24(2 r^-12 - r^-6)/r^2 * r_vec
		ff := 24 * inv2 * inv6 * (2*inv6 - 1)
		fx += ff * dx
		fy += ff * dy
		fz += ff * dz
		pe += 2 * inv6 * (inv6 - 1) // half of 4(...) — pair shared with j
	}
	md.force[3*i] = fx
	md.force[3*i+1] = fy
	md.force[3*i+2] = fz
	md.peParts[i] = pe
}

// step advances one velocity-Verlet timestep; computeForces runs the force
// loop (sequentially or across a team).
func (md *MolDyn) step(computeForces func()) {
	n := md.n
	dt := md.dt
	// Half-kick + drift.
	for i := 0; i < 3*n; i++ {
		md.vel[i] += 0.5 * dt * md.force[i]
		md.pos[i] += dt * md.vel[i]
	}
	// Wrap into the box.
	box := md.boxLen
	for i := 0; i < 3*n; i++ {
		if md.pos[i] >= box {
			md.pos[i] -= box
		} else if md.pos[i] < 0 {
			md.pos[i] += box
		}
	}
	computeForces()
	// Second half-kick.
	for i := 0; i < 3*n; i++ {
		md.vel[i] += 0.5 * dt * md.force[i]
	}
}

func (md *MolDyn) finish() {
	ke := 0.0
	for i := 0; i < 3*md.n; i++ {
		ke += 0.5 * md.vel[i] * md.vel[i]
	}
	pe := 0.0
	for _, p := range md.peParts {
		pe += p
	}
	md.kinetic = ke
	md.potential = pe
	md.ran = true
}

// RunSeq runs the simulation on the calling goroutine.
func (md *MolDyn) RunSeq() {
	seq := func() {
		for i := 0; i < md.n; i++ {
			md.forceOn(i)
		}
	}
	seq() // initial forces
	for s := 0; s < md.steps; s++ {
		md.step(seq)
	}
	md.finish()
}

// RunPar runs with the force loop distributed over an n-thread team.
func (md *MolDyn) RunPar(n int) {
	par := func() {
		omp.ParallelForSchedule(n, 0, md.n, omp.Static, 0, md.forceOn)
	}
	par()
	for s := 0; s < md.steps; s++ {
		md.step(par)
	}
	md.finish()
}

// Energy returns (kinetic, potential) after the last run.
func (md *MolDyn) Energy() (float64, float64) { return md.kinetic, md.potential }

// refMolDyn caches sequential reference energies per size.
var refMolDyn = map[int][2]float64{}

// Validate checks energies are finite and bit-identical to a sequential
// reference run of the same size.
func (md *MolDyn) Validate() error {
	if !md.ran {
		return fmt.Errorf("moldyn: not run")
	}
	if math.IsNaN(md.kinetic+md.potential) || math.IsInf(md.kinetic+md.potential, 0) {
		return fmt.Errorf("moldyn: energies diverged: ke=%v pe=%v", md.kinetic, md.potential)
	}
	refMu.Lock()
	ref, ok := refMolDyn[md.m]
	if !ok {
		r := NewMolDyn(md.m)
		refMu.Unlock()
		r.RunSeq()
		refMu.Lock()
		refMolDyn[md.m] = [2]float64{r.kinetic, r.potential}
		ref = refMolDyn[md.m]
	}
	refMu.Unlock()
	if md.kinetic != ref[0] || md.potential != ref[1] {
		return fmt.Errorf("moldyn: energies (%v, %v) != reference (%v, %v)",
			md.kinetic, md.potential, ref[0], ref[1])
	}
	return nil
}
