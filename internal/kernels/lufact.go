package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/omp"
)

// LUFact is the Java Grande LUFact kernel: Linpack-style LU factorization
// with partial pivoting followed by triangular solves, validated by the
// residual of A x = b. The elimination's rank-1 update is row-parallel
// (each row's update depends only on the pivot row), so parallel results
// are bit-identical to sequential ones.
type LUFact struct {
	n   int
	a   []float64 // n x n row-major working matrix (factorized in place)
	a0  []float64 // pristine copy for the residual check
	b   []float64
	x   []float64
	piv []int
	ran bool
}

// NewLUFact builds an instance over a deterministic random size x size
// system.
func NewLUFact(size int) *LUFact {
	if size < 4 {
		size = 4
	}
	lu := &LUFact{
		n:   size,
		a:   make([]float64, size*size),
		b:   make([]float64, size),
		x:   make([]float64, size),
		piv: make([]int, size),
	}
	rng := rand.New(rand.NewSource(1325))
	for i := range lu.a {
		lu.a[i] = rng.Float64() - 0.5
	}
	for i := range lu.b {
		lu.b[i] = rng.Float64() - 0.5
	}
	lu.a0 = append([]float64(nil), lu.a...)
	return lu
}

// Name implements Kernel.
func (lu *LUFact) Name() string { return "lufact" }

// pivotAndScale performs the pivot search, row swap and multiplier scaling
// of elimination step k (the serial part of dgefa's outer loop).
func (lu *LUFact) pivotAndScale(k int) {
	n := lu.n
	// Partial pivoting: largest |a[i][k]|, i >= k.
	p := k
	maxAbs := math.Abs(lu.a[k*n+k])
	for i := k + 1; i < n; i++ {
		if v := math.Abs(lu.a[i*n+k]); v > maxAbs {
			maxAbs = v
			p = i
		}
	}
	lu.piv[k] = p
	if p != k {
		for j := k; j < n; j++ {
			lu.a[k*n+j], lu.a[p*n+j] = lu.a[p*n+j], lu.a[k*n+j]
		}
	}
	pivot := lu.a[k*n+k]
	if pivot == 0 {
		return // singular; the residual check will fail loudly
	}
	for i := k + 1; i < n; i++ {
		lu.a[i*n+k] /= pivot
	}
}

// updateRow applies the rank-1 update of step k to row i (> k).
func (lu *LUFact) updateRow(i, k int) {
	n := lu.n
	m := lu.a[i*n+k]
	if m == 0 {
		return
	}
	pivotRow := lu.a[k*n : k*n+n]
	row := lu.a[i*n : i*n+n]
	for j := k + 1; j < n; j++ {
		row[j] -= m * pivotRow[j]
	}
}

// solve applies the recorded pivots to b and performs the forward and back
// substitutions (dgesl), leaving the solution in x.
func (lu *LUFact) solve() {
	n := lu.n
	copy(lu.x, lu.b)
	// Forward: apply pivots and L.
	for k := 0; k < n-1; k++ {
		p := lu.piv[k]
		if p != k {
			lu.x[k], lu.x[p] = lu.x[p], lu.x[k]
		}
		for i := k + 1; i < n; i++ {
			lu.x[i] -= lu.a[i*n+k] * lu.x[k]
		}
	}
	// Back: U.
	for k := n - 1; k >= 0; k-- {
		lu.x[k] /= lu.a[k*n+k]
		for i := 0; i < k; i++ {
			lu.x[i] -= lu.a[i*n+k] * lu.x[k]
		}
	}
}

// RunSeq factorizes and solves on the calling goroutine.
func (lu *LUFact) RunSeq() {
	n := lu.n
	for k := 0; k < n-1; k++ {
		lu.pivotAndScale(k)
		for i := k + 1; i < n; i++ {
			lu.updateRow(i, k)
		}
	}
	lu.piv[n-1] = n - 1
	lu.solve()
	lu.ran = true
}

// RunPar factorizes with the rank-1 update distributed over an nt-thread
// team: one member pivots (Single, with its implicit barrier), then all
// update disjoint row ranges, with the loop's implicit barrier sequencing
// the elimination steps.
func (lu *LUFact) RunPar(nt int) {
	n := lu.n
	omp.Parallel(nt, func(tc *omp.Team) {
		for k := 0; k < n-1; k++ {
			k := k
			tc.Single(func() { lu.pivotAndScale(k) })
			tc.For(k+1, n, omp.Static, 0, func(i int) { lu.updateRow(i, k) })
		}
	})
	lu.piv[n-1] = n - 1
	lu.solve()
	lu.ran = true
}

// Residual returns the normalized Linpack residual
// ||Ax - b||_inf / (n * ||A||_inf * ||x||_inf * eps).
func (lu *LUFact) Residual() float64 {
	n := lu.n
	var rMax, aMax, xMax float64
	for i := 0; i < n; i++ {
		var dot, rowSum float64
		for j := 0; j < n; j++ {
			dot += lu.a0[i*n+j] * lu.x[j]
			rowSum += math.Abs(lu.a0[i*n+j])
		}
		if r := math.Abs(dot - lu.b[i]); r > rMax {
			rMax = r
		}
		if rowSum > aMax {
			aMax = rowSum
		}
	}
	for _, v := range lu.x {
		if a := math.Abs(v); a > xMax {
			xMax = a
		}
	}
	denom := float64(n) * aMax * xMax * 2.220446049250313e-16
	if denom == 0 {
		return math.Inf(1)
	}
	return rMax / denom
}

// Solution returns a copy of the computed solution vector.
func (lu *LUFact) Solution() []float64 {
	out := make([]float64, len(lu.x))
	copy(out, lu.x)
	return out
}

// Validate checks the Linpack residual criterion (< 16, the standard
// threshold) — which simultaneously catches factorization and solve bugs.
func (lu *LUFact) Validate() error {
	if !lu.ran {
		return fmt.Errorf("lufact: not run")
	}
	r := lu.Residual()
	if math.IsNaN(r) || r >= 16 {
		return fmt.Errorf("lufact: normalized residual %v (want < 16)", r)
	}
	return nil
}
