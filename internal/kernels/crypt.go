package kernels

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/omp"
)

// Crypt is the Java Grande Crypt kernel: IDEA encryption and decryption of a
// byte array, validated by round-trip equality. The block cipher is IDEA
// (64-bit blocks, 128-bit key, 8.5 rounds); parallelization distributes
// block ranges across the team, as the Java Grande multithreaded version
// does.
type Crypt struct {
	n      int // payload size in bytes (rounded up to a block multiple)
	encKey [52]uint16
	decKey [52]uint16
	plain  []byte
	cipher []byte
	out    []byte
	ran    bool
}

const ideaBlock = 8

// NewCrypt builds a Crypt instance over size bytes of deterministic
// pseudo-random plaintext and a fixed random 128-bit key.
func NewCrypt(size int) *Crypt {
	if size < ideaBlock {
		size = ideaBlock
	}
	size = (size + ideaBlock - 1) / ideaBlock * ideaBlock
	c := &Crypt{n: size}
	rng := rand.New(rand.NewSource(136506717))
	var userKey [8]uint16
	for i := range userKey {
		userKey[i] = uint16(rng.Intn(1 << 16))
	}
	c.encKey = ideaEncryptKey(userKey)
	c.decKey = ideaDecryptKey(c.encKey)
	c.plain = make([]byte, size)
	for i := range c.plain {
		c.plain[i] = byte(rng.Intn(256))
	}
	c.cipher = make([]byte, size)
	c.out = make([]byte, size)
	return c
}

// Name implements Kernel.
func (c *Crypt) Name() string { return "crypt" }

// RunSeq encrypts then decrypts the whole payload on one goroutine.
func (c *Crypt) RunSeq() {
	ideaCipher(c.plain, c.cipher, &c.encKey, 0, c.n/ideaBlock)
	ideaCipher(c.cipher, c.out, &c.decKey, 0, c.n/ideaBlock)
	c.ran = true
}

// RunPar encrypts then decrypts with block ranges statically distributed
// over an n-thread team (two parallel-for regions, one per direction).
func (c *Crypt) RunPar(n int) {
	blocks := c.n / ideaBlock
	omp.Parallel(n, func(tc *omp.Team) {
		tc.ForNowait(0, tc.NumThreads(), omp.Static, 0, func(t int) {
			lo, hi := blockRange(blocks, tc.NumThreads(), t)
			ideaCipher(c.plain, c.cipher, &c.encKey, lo, hi)
		})
	})
	omp.Parallel(n, func(tc *omp.Team) {
		tc.ForNowait(0, tc.NumThreads(), omp.Static, 0, func(t int) {
			lo, hi := blockRange(blocks, tc.NumThreads(), t)
			ideaCipher(c.cipher, c.out, &c.decKey, lo, hi)
		})
	})
	c.ran = true
}

func blockRange(total, parts, idx int) (lo, hi int) {
	per := total / parts
	rem := total % parts
	lo = idx*per + min(idx, rem)
	size := per
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// Checksum returns the byte sum of the ciphertext of the last run (used by
// the HTTP encryption service as its response payload).
func (c *Crypt) Checksum() int64 {
	var sum int64
	for _, b := range c.cipher {
		sum += int64(b)
	}
	return sum
}

// Validate checks the decrypt(encrypt(plain)) round trip.
func (c *Crypt) Validate() error {
	if !c.ran {
		return fmt.Errorf("crypt: not run")
	}
	if !bytes.Equal(c.plain, c.out) {
		for i := range c.plain {
			if c.plain[i] != c.out[i] {
				return fmt.Errorf("crypt: round trip mismatch at byte %d: %#x != %#x", i, c.plain[i], c.out[i])
			}
		}
	}
	if bytes.Equal(c.plain, c.cipher) {
		return fmt.Errorf("crypt: ciphertext equals plaintext")
	}
	return nil
}

// ideaCipher runs the IDEA cipher over blocks [lo, hi) of src into dst using
// the 52-subkey schedule key. The same function serves encryption and
// decryption; only the key schedule differs.
func ideaCipher(src, dst []byte, key *[52]uint16, lo, hi int) {
	for b := lo; b < hi; b++ {
		o := b * ideaBlock
		x1 := uint32(src[o])<<8 | uint32(src[o+1])
		x2 := uint32(src[o+2])<<8 | uint32(src[o+3])
		x3 := uint32(src[o+4])<<8 | uint32(src[o+5])
		x4 := uint32(src[o+6])<<8 | uint32(src[o+7])
		ik := 0
		for r := 0; r < 8; r++ {
			x1 = ideaMul(x1, uint32(key[ik]))
			x2 = (x2 + uint32(key[ik+1])) & 0xffff
			x3 = (x3 + uint32(key[ik+2])) & 0xffff
			x4 = ideaMul(x4, uint32(key[ik+3]))
			t2 := ideaMul(x1^x3, uint32(key[ik+4]))
			t1 := ideaMul((t2+(x2^x4))&0xffff, uint32(key[ik+5]))
			t2 = (t1 + t2) & 0xffff
			x1 ^= t1
			x4 ^= t2
			t2 ^= x2
			x2 = x3 ^ t1
			x3 = t2
			ik += 6
		}
		y1 := ideaMul(x1, uint32(key[48]))
		y2 := (x3 + uint32(key[49])) & 0xffff
		y3 := (x2 + uint32(key[50])) & 0xffff
		y4 := ideaMul(x4, uint32(key[51]))
		dst[o] = byte(y1 >> 8)
		dst[o+1] = byte(y1)
		dst[o+2] = byte(y2 >> 8)
		dst[o+3] = byte(y2)
		dst[o+4] = byte(y3 >> 8)
		dst[o+5] = byte(y3)
		dst[o+6] = byte(y4 >> 8)
		dst[o+7] = byte(y4)
	}
}

// ideaMul is multiplication modulo 2^16+1 with 0 standing for 2^16.
func ideaMul(a, b uint32) uint32 {
	if a == 0 {
		return (0x10001 - b) & 0xffff
	}
	if b == 0 {
		return (0x10001 - a) & 0xffff
	}
	p := a * b
	lo := p & 0xffff
	hi := p >> 16
	r := lo - hi
	if lo < hi {
		r++
	}
	return r & 0xffff
}

// ideaMulInv returns the multiplicative inverse modulo 2^16+1 under the same
// zero-encoding (inv(0) = 0, since 2^16 is self-inverse mod 2^16+1).
func ideaMulInv(x uint16) uint16 {
	if x <= 1 {
		return x
	}
	// Extended Euclid for x^-1 mod 0x10001.
	t1 := uint32(0x10001 / uint32(x))
	y := uint32(0x10001) % uint32(x)
	if y == 1 {
		return uint16((1 - t1) & 0xffff)
	}
	t0 := uint32(1)
	q := uint32(x)
	for y != 1 {
		qq := q / y
		q %= y
		t0 += qq * t1
		if q == 1 {
			return uint16(t0)
		}
		qq = y / q
		y %= q
		t1 += qq * t0
	}
	return uint16((1 - t1) & 0xffff)
}

// ideaAddInv returns the additive inverse modulo 2^16.
func ideaAddInv(x uint16) uint16 { return uint16((0x10000 - uint32(x)) & 0xffff) }

// ideaEncryptKey expands the 128-bit user key into the 52 encryption
// subkeys by the standard 25-bit rotation schedule.
func ideaEncryptKey(user [8]uint16) [52]uint16 {
	var z [52]uint16
	copy(z[:8], user[:])
	for i := 8; i < 52; i++ {
		switch i % 8 {
		case 0, 1, 2, 3, 4, 5:
			z[i] = z[i-7]<<9 | z[i-6]>>7
		case 6:
			z[i] = z[i-7]<<9 | z[i-14]>>7
		default: // 7
			z[i] = z[i-15]<<9 | z[i-14]>>7
		}
	}
	return z
}

// ideaDecryptKey derives the decryption schedule from the encryption one:
// multiplicative keys inverted, additive keys negated, with the inner-round
// additive pair swapped for rounds 2-8 (mirroring the x2/x3 swap inside the
// round function).
func ideaDecryptKey(z [52]uint16) [52]uint16 {
	var dk [52]uint16
	// Decryption round 1 <- encryption output transform + round 8 MA keys.
	dk[0] = ideaMulInv(z[48])
	dk[1] = ideaAddInv(z[49])
	dk[2] = ideaAddInv(z[50])
	dk[3] = ideaMulInv(z[51])
	dk[4] = z[46]
	dk[5] = z[47]
	// Decryption rounds 2..8 <- encryption rounds 8..2 (swapped additive
	// pair) + the preceding round's MA keys.
	for r := 1; r < 8; r++ {
		zi := (8 - r) * 6
		di := r * 6
		dk[di] = ideaMulInv(z[zi])
		dk[di+1] = ideaAddInv(z[zi+2])
		dk[di+2] = ideaAddInv(z[zi+1])
		dk[di+3] = ideaMulInv(z[zi+3])
		dk[di+4] = z[zi-2]
		dk[di+5] = z[zi-1]
	}
	// Decryption output transform <- encryption round 1 keys (no swap).
	dk[48] = ideaMulInv(z[0])
	dk[49] = ideaAddInv(z[1])
	dk[50] = ideaAddInv(z[2])
	dk[51] = ideaMulInv(z[3])
	return dk
}
