package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/omp"
)

// SOR is the Java Grande SOR kernel: red-black successive over-relaxation
// on an N x N grid. The red-black ordering makes the update parallelizable
// by rows with a barrier between colors, and — unlike the plain
// Gauss-Seidel sweep — gives bit-identical results for any thread count,
// which is how the kernel validates.
//
// SOR and SparseMatmult are extensions beyond the four kernels the paper's
// evaluation selects; they round out the Java Grande Section 2 suite.
type SOR struct {
	n     int
	iters int
	omega float64
	g     []float64 // n x n, row-major
	total float64
	ran   bool
}

// NewSOR builds an instance over a size x size grid with deterministic
// pseudo-random initial values (default 25 iterations).
func NewSOR(size int) *SOR {
	if size < 4 {
		size = 4
	}
	s := &SOR{n: size, iters: 25, omega: 1.25, g: make([]float64, size*size)}
	rng := rand.New(rand.NewSource(20260704))
	for i := range s.g {
		s.g[i] = rng.Float64() * 1e-6
	}
	return s
}

// Name implements Kernel.
func (s *SOR) Name() string { return "sor" }

// sweepRows relaxes rows [lo, hi) for the given color (parity of i+j).
func (s *SOR) sweepRows(lo, hi, color int) {
	n := s.n
	oof := s.omega * 0.25
	omo := 1.0 - s.omega
	for i := lo; i < hi; i++ {
		if i == 0 || i == n-1 {
			continue
		}
		row := s.g[i*n : (i+1)*n]
		up := s.g[(i-1)*n : i*n]
		down := s.g[(i+1)*n : (i+2)*n]
		start := 1 + (i+1+color)%2
		for j := start; j < n-1; j += 2 {
			row[j] = oof*(up[j]+down[j]+row[j-1]+row[j+1]) + omo*row[j]
		}
	}
}

func (s *SOR) finish() {
	total := 0.0
	for _, v := range s.g {
		total += v
	}
	s.total = total
	s.ran = true
}

// RunSeq relaxes the grid on the calling goroutine.
func (s *SOR) RunSeq() {
	for p := 0; p < s.iters; p++ {
		s.sweepRows(0, s.n, 0)
		s.sweepRows(0, s.n, 1)
	}
	s.finish()
}

// RunPar relaxes with rows distributed across an n-thread team, with a
// barrier between the red and black half-sweeps of every iteration.
func (s *SOR) RunPar(n int) {
	omp.Parallel(n, func(tc *omp.Team) {
		for p := 0; p < s.iters; p++ {
			tc.For(0, s.n, omp.Static, 0, func(i int) { s.sweepRow(i, 0) })
			tc.For(0, s.n, omp.Static, 0, func(i int) { s.sweepRow(i, 1) })
		}
	})
	s.finish()
}

func (s *SOR) sweepRow(i, color int) { s.sweepRows(i, i+1, color) }

// Total returns the grid sum of the last run (the Gtotal validation value).
func (s *SOR) Total() float64 { return s.total }

// refSORTotals caches the sequential reference total per size.
var refSORTotals = map[int]float64{}

// Validate compares the grid total to a sequential reference run.
func (s *SOR) Validate() error {
	if !s.ran {
		return fmt.Errorf("sor: not run")
	}
	if math.IsNaN(s.total) || math.IsInf(s.total, 0) {
		return fmt.Errorf("sor: total = %v", s.total)
	}
	refMu.Lock()
	ref, ok := refSORTotals[s.n]
	if !ok {
		r := NewSOR(s.n)
		refMu.Unlock()
		r.RunSeq()
		refMu.Lock()
		refSORTotals[s.n] = r.total
		ref = r.total
	}
	refMu.Unlock()
	if s.total != ref {
		return fmt.Errorf("sor: total %v != reference %v", s.total, ref)
	}
	return nil
}
