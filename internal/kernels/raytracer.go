package kernels

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/omp"
)

// RayTracer is the Java Grande RayTracer kernel: render a scene of spheres
// lit by a point light, with shadows and recursive reflections, onto a
// square image, and checksum the pixels. Scanlines are independent, so the
// parallel version interleaves rows across the team (the Java Grande
// multithreaded version uses a cyclic distribution for load balance — rows
// through the sphere cluster cost more).
type RayTracer struct {
	width, height int
	scene         rtScene
	checksum      int64
	ran           bool
}

// NewRayTracer builds an instance rendering a size x size image of the
// standard 64-sphere scene.
func NewRayTracer(size int) *RayTracer {
	if size < 4 {
		size = 4
	}
	return &RayTracer{width: size, height: size, scene: buildScene()}
}

// Name implements Kernel.
func (r *RayTracer) Name() string { return "raytracer" }

// RunSeq renders all scanlines on the calling goroutine.
func (r *RayTracer) RunSeq() {
	var sum int64
	for y := 0; y < r.height; y++ {
		sum += r.renderRow(y)
	}
	r.checksum = sum
	r.ran = true
}

// RunPar renders with rows cyclically distributed over an n-thread team.
func (r *RayTracer) RunPar(n int) {
	var sum atomic.Int64
	omp.ParallelForSchedule(n, 0, r.height, omp.Static, 1, func(y int) {
		sum.Add(r.renderRow(y))
	})
	r.checksum = sum.Load()
	r.ran = true
}

// Checksum returns the pixel checksum of the last run.
func (r *RayTracer) Checksum() int64 { return r.checksum }

// refChecksums caches the sequential reference checksum per image size.
var refChecksums sync.Map // int -> int64

// Validate compares the run's checksum to a sequential reference rendering
// of the same size (computed once per size and cached).
func (r *RayTracer) Validate() error {
	if !r.ran {
		return fmt.Errorf("raytracer: not run")
	}
	refAny, ok := refChecksums.Load(r.width)
	if !ok {
		ref := NewRayTracer(r.width)
		ref.RunSeq()
		refAny, _ = refChecksums.LoadOrStore(r.width, ref.checksum)
	}
	if ref := refAny.(int64); r.checksum != ref {
		return fmt.Errorf("raytracer: checksum %d != reference %d", r.checksum, ref)
	}
	if r.checksum == 0 {
		return fmt.Errorf("raytracer: zero checksum (blank image)")
	}
	return nil
}

// --- minimal vector algebra -------------------------------------------------

type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) dot(b vec3) float64   { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) mulv(b vec3) vec3     { return vec3{a.x * b.x, a.y * b.y, a.z * b.z} }
func (a vec3) norm() vec3 {
	l := math.Sqrt(a.dot(a))
	if l == 0 {
		return a
	}
	return a.scale(1 / l)
}

type rtSphere struct {
	center vec3
	radius float64
	color  vec3
	// kd/ks/kr: diffuse, specular, reflective coefficients.
	kd, ks, kr float64
	shine      float64
}

type rtScene struct {
	spheres    []rtSphere
	light      vec3
	ambient    vec3
	eye        vec3
	background vec3
}

// buildScene reproduces the Java Grande scene shape: an 4x4x4 grid of 64
// spheres of alternating materials, one point light, eye on the +z axis.
func buildScene() rtScene {
	sc := rtScene{
		light:      vec3{100, 100, 100},
		ambient:    vec3{0.1, 0.1, 0.1},
		eye:        vec3{0, 0, 30},
		background: vec3{0.05, 0.05, 0.15},
	}
	colors := []vec3{{0.9, 0.2, 0.2}, {0.2, 0.9, 0.2}, {0.2, 0.2, 0.9}, {0.9, 0.9, 0.2}}
	i := 0
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 4; gy++ {
			for gz := 0; gz < 4; gz++ {
				s := rtSphere{
					center: vec3{float64(gx-2)*4 + 2, float64(gy-2)*4 + 2, float64(gz-2)*4 + 2},
					radius: 1.4,
					color:  colors[i%len(colors)],
					kd:     0.7,
					ks:     0.3,
					kr:     0.25,
					shine:  20,
				}
				sc.spheres = append(sc.spheres, s)
				i++
			}
		}
	}
	return sc
}

const rtMaxDepth = 5

// intersect finds the nearest sphere hit by origin+t*dir with t > eps.
func (sc *rtScene) intersect(origin, dir vec3, eps float64) (int, float64) {
	best := -1
	bestT := math.Inf(1)
	for i := range sc.spheres {
		s := &sc.spheres[i]
		oc := origin.sub(s.center)
		b := oc.dot(dir)
		c := oc.dot(oc) - s.radius*s.radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := -b - sq
		if t < eps {
			t = -b + sq
		}
		if t > eps && t < bestT {
			bestT = t
			best = i
		}
	}
	return best, bestT
}

// shade computes the color seen along origin+dir.
func (sc *rtScene) shade(origin, dir vec3, depth int) vec3 {
	idx, t := sc.intersect(origin, dir, 1e-6)
	if idx < 0 {
		return sc.background
	}
	s := &sc.spheres[idx]
	hit := origin.add(dir.scale(t))
	n := hit.sub(s.center).norm()
	col := sc.ambient.mulv(s.color)

	toLight := sc.light.sub(hit)
	lightDist := math.Sqrt(toLight.dot(toLight))
	l := toLight.scale(1 / lightDist)

	// Shadow ray.
	shIdx, shT := sc.intersect(hit, l, 1e-4)
	inShadow := shIdx >= 0 && shT < lightDist
	if !inShadow {
		if nl := n.dot(l); nl > 0 {
			col = col.add(s.color.scale(s.kd * nl))
			// Blinn-Phong specular.
			h := l.sub(dir).norm()
			if nh := n.dot(h); nh > 0 {
				col = col.add(vec3{1, 1, 1}.scale(s.ks * math.Pow(nh, s.shine)))
			}
		}
	}
	// Reflection.
	if s.kr > 0 && depth < rtMaxDepth {
		refl := dir.sub(n.scale(2 * dir.dot(n))).norm()
		col = col.add(sc.shade(hit, refl, depth+1).scale(s.kr))
	}
	return col
}

// renderRow renders scanline y and returns its pixel checksum contribution
// (the Java Grande validation sums the pixel values).
func (r *RayTracer) renderRow(y int) int64 {
	var sum int64
	fw, fh := float64(r.width), float64(r.height)
	viewSize := 20.0
	for x := 0; x < r.width; x++ {
		px := (float64(x)/fw - 0.5) * viewSize
		py := (0.5 - float64(y)/fh) * viewSize
		dir := vec3{px, py, -30}.norm()
		c := r.scene.shade(r.scene.eye, dir, 0)
		sum += int64(clamp8(c.x)) + int64(clamp8(c.y)) + int64(clamp8(c.z))
	}
	return sum
}

func clamp8(v float64) uint8 {
	i := int(v * 255)
	if i < 0 {
		return 0
	}
	if i > 255 {
		return 255
	}
	return uint8(i)
}
