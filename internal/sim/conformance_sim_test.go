package sim_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestScheduleConformanceUnderExploration ports the PR 5 Algorithm 1
// conformance table (internal/core/conformance_test.go) onto the simulation
// executor: every scheduling mode crossed with every caller context, with
// each cell replayed across perturbed schedules instead of once on the real
// runtime. The real table proves one concrete execution conforms; this one
// proves the *properties* hold on every schedule the explorer visits.
//
// One deliberate difference: the real table asserts a posted block ran on a
// different goroutine (run.Gid != node.Gid). Under simulation everything
// shares one goroutine by construction, so the cells assert the scheduling
// decision (OpInline vs OpPost), span causality (the run span is parented
// to its invoke span no matter which schedule ran it), and each mode's
// barrier semantics — the parts of the table that are about *order*, which
// is exactly what exploration perturbs.
func TestScheduleConformanceUnderExploration(t *testing.T) {
	type confCase struct {
		caller     string
		target     string
		wantInline bool
	}
	contexts := []confCase{
		{caller: "main", target: "pool", wantInline: false},
		{caller: "main", target: "edt", wantInline: false},
		{caller: "edt-thread", target: "pool", wantInline: false},
		{caller: "edt-thread", target: "edt", wantInline: true},
		{caller: "pool-member", target: "pool", wantInline: true},
		{caller: "sibling-worker", target: "pool", wantInline: false},
	}
	modes := []core.Mode{core.Wait, core.Nowait, core.NameAs, core.Await}

	for _, mode := range modes {
		for _, cc := range contexts {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s/%s->%s", mode, cc.caller, cc.target), func(t *testing.T) {
				name := fmt.Sprintf("conformance/%s/%s->%s", mode, cc.caller, cc.target)
				sim.ExploreT(t, name, sim.Options{Runs: 8}, func(s *sim.Sim) error {
					buf := trace.NewBuffer(4096)
					defer trace.Use(buf)()

					rt := s.Runtime()
					defer rt.Shutdown()
					if _, err := s.RegisterPool(rt, "pool"); err != nil {
						return err
					}
					if _, err := s.RegisterLoop(rt, "edt"); err != nil {
						return err
					}
					sibling := s.NewPool("src")
					edtCaller := s.NewLoop("caller-edt")

					ran := false
					block := func() { ran = true }

					// doInvoke runs the directive and joins it, so the span
					// tree is closed when it returns; joined reports whether
					// the mode's contract says the block must have run by
					// the time the directive's join returned.
					var verdict error
					doInvoke := func() {
						switch mode {
						case core.NameAs:
							if _, err := rt.InvokeNamed(cc.target, "conf", block); err != nil {
								verdict = err
								return
							}
							verdict = rt.WaitTag("conf")
							if verdict == nil && !ran {
								verdict = errors.New("WaitTag returned before the tagged block ran")
							}
						case core.Nowait:
							comp, err := rt.Invoke(cc.target, core.Nowait, block)
							if err != nil {
								verdict = err
								return
							}
							comp.Wait()
							verdict = comp.Err()
						default: // Wait, Await: both join before returning.
							if _, err := rt.Invoke(cc.target, mode, block); err != nil {
								verdict = err
								return
							}
							if !ran {
								verdict = fmt.Errorf("%s returned before its block ran", mode)
							}
						}
					}

					switch cc.caller {
					case "main":
						doInvoke()
					case "edt-thread":
						// The caller's own EDT when targeting "pool"; the
						// target EDT itself for the inline edt->edt cell.
						if cc.target == "edt" {
							rt.Target("edt").Post(doInvoke).Wait()
						} else {
							edtCaller.Post(doInvoke).Wait()
						}
					case "pool-member":
						rt.Target("pool").Post(doInvoke).Wait()
					case "sibling-worker":
						sibling.Post(doInvoke).Wait()
					}
					if verdict != nil {
						return verdict
					}
					s.Quiesce()
					if !ran {
						return errors.New("block never ran")
					}

					tree := trace.BuildTree(buf.Snapshot())
					node, err := invokeSpan(tree, cc.target, mode)
					if err != nil {
						return err
					}

					// The scheduling decision (Algorithm 1 lines 6-8).
					if cc.wantInline {
						if !node.HasOp(trace.OpInline) {
							return fmt.Errorf("want inline execution, ops missing OpInline:\n%s", tree)
						}
						if node.HasOp(trace.OpPost) {
							return fmt.Errorf("inline cell must not post:\n%s", tree)
						}
					} else {
						if !node.HasOp(trace.OpPost) {
							return fmt.Errorf("want posted execution, ops missing OpPost:\n%s", tree)
						}
						if node.HasOp(trace.OpInline) {
							return fmt.Errorf("posted cell must not inline:\n%s", tree)
						}
						if node.Child("run", cc.target) == nil {
							return fmt.Errorf("posted block's run span not parented to invoke:\n%s", tree)
						}
					}

					// Mode-specific barrier semantics.
					switch mode {
					case core.Wait:
						if !node.HasOp(trace.OpWait) {
							return fmt.Errorf("wait mode must record the blocking join:\n%s", tree)
						}
					case core.Await:
						// Unlike the real table, every sim context is a
						// registered executor, so every *posted* await cell
						// must hold the helping barrier; inline cells finish
						// before reaching it.
						enter := buf.CountOp(trace.OpAwaitEnter) > 0
						if !cc.wantInline && !enter {
							return fmt.Errorf("posted await cell skipped the logical barrier:\n%s", tree)
						}
						if cc.wantInline && enter {
							return fmt.Errorf("inline await cell entered the barrier:\n%s", tree)
						}
					}
					return nil
				})
			})
		}
	}
}

// invokeSpan is findInvokeSpan from the core table, returning errors
// instead of failing t (scenario bodies report, Explore attributes the
// failing seed).
func invokeSpan(tree *trace.Tree, target string, mode core.Mode) (*trace.SpanNode, error) {
	var match *trace.SpanNode
	for _, n := range tree.FindAll("invoke", target) {
		for _, ev := range n.Events {
			if ev.Op == trace.OpInvoke && ev.Mode == mode.String() {
				if match != nil {
					return nil, fmt.Errorf("two invoke spans match %s on %q:\n%s", mode, target, tree)
				}
				match = n
			}
		}
	}
	if match == nil {
		return nil, fmt.Errorf("no invoke span for mode %s on target %q:\n%s", mode, target, tree)
	}
	return match, nil
}

// TestEDTPumpOrderDuringAwait: the help-first barrier on an EDT must
// preserve the loop's FIFO dispatch order — events posted while a handler
// awaits a pool block are helped in exactly the order they were enqueued,
// on every explored schedule (the paper's motivating property: awaiting
// must not reorder the event loop).
func TestEDTPumpOrderDuringAwait(t *testing.T) {
	sim.ExploreT(t, "edt-pump-order", sim.Options{Runs: 32}, func(s *sim.Sim) error {
		rt := s.Runtime()
		defer rt.Shutdown()
		if _, err := s.RegisterPool(rt, "pool"); err != nil {
			return err
		}
		loop, err := s.RegisterLoop(rt, "edt")
		if err != nil {
			return err
		}
		var order []int
		handler, err := rt.Invoke("edt", core.Nowait, func() {
			// Post follow-up events to our own loop, then await a pool
			// block: the barrier must help them through in FIFO order.
			for i := 0; i < 4; i++ {
				i := i
				loop.Post(func() { order = append(order, i) })
			}
			if _, err := rt.Invoke("pool", core.Await, func() {}); err != nil {
				order = append(order, -1)
			}
		})
		if err != nil {
			return err
		}
		handler.Wait()
		s.Quiesce()
		if len(order) != 4 {
			return fmt.Errorf("ran %d of 4 events: %v", len(order), order)
		}
		for i, v := range order {
			if v != i {
				return fmt.Errorf("await barrier reordered the EDT: %v", order)
			}
		}
		return nil
	})
}
