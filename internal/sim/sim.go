// Package sim is a deterministic simulation executor for the virtual-target
// runtime: a virtual-clock, single-goroutine scheduler that implements the
// same dispatch surfaces as the real executors (Post, PostDelayed/PostAt,
// completions, help-first pending-runner hooks) but makes every scheduling
// choice — which runnable task runs next, which queued task a helping
// thread pops, which due timer fires — a pure function of a seed.
//
// The paper's Algorithm 1 semantics (name_as/wait/await, EDT confinement)
// are ordering properties. Span trees (PR 5) let us *observe* the schedule
// a real run happened to take; seeded chaos (PR 2) perturbs timing but not
// order. This package closes the gap by *controlling* the schedule:
// Explore replays a scenario across systematically perturbed interleavings
// (uniform random walk, LIFO bias, delay injection — a DPOR-lite
// perturbation at dispatch points, not full partial-order reduction),
// checking user invariants on every run. A failing run prints its seed and
// decision trace, and the seed is pinned in testdata/regression_seeds.json
// so every found bug becomes a permanent, replayable regression test.
//
// The simulation boundary: tasks are atomic. The scheduler interleaves at
// dispatch points (posts, waits, awaits, timers, explicit Yield calls), not
// at instruction granularity — the same granularity event-driven stateless
// model checking uses, because handlers on an EDT really are atomic with
// respect to each other. Code that blocks on raw channels, spawns bare
// goroutines, or reads the wall clock escapes the simulation; the
// executor.SetBlockHook and vclock.Clock seams exist so runtime code does
// neither. See DESIGN.md §17 for what exploration can and cannot prove.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ErrNotSimGoroutine reports use of a simulated executor from outside the
// simulation goroutine — the one determinism rule user code can break.
var ErrNotSimGoroutine = errors.New("sim: simulated executors are confined to the simulation goroutine")

// DeadlockError is raised when the simulated program can make no further
// progress while some goroutine still waits: no runnable task, no pending
// timer, completion unfinished. Under a real runtime this schedule would
// hang forever; under simulation it fails fast with the decision trace
// that led there.
type DeadlockError struct {
	// Waiting describes what the simulation was blocked on.
	Waiting string
	// Trace is the decision log up to the deadlock.
	Trace string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: no runnable task or pending timer while %s\ndecision trace:\n%s", e.Waiting, e.Trace)
}

// StepLimitError is raised when a run exceeds its scheduler-step budget —
// almost always a livelock in the scenario (work that respawns itself
// forever), surfaced deterministically instead of as a test timeout.
type StepLimitError struct {
	Steps int
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("sim: scheduler step limit exceeded (%d steps): livelocked scenario?", e.Steps)
}

// schedPolicy is the perturbation flavor of one run, drawn from the seed at
// construction so a seed alone reproduces the whole schedule.
type schedPolicy int

const (
	// policyUniform picks uniformly among runnable alternatives: the
	// random-walk baseline.
	policyUniform schedPolicy = iota
	// policyLIFO biases toward the newest runnable task, digging out
	// schedules where late work overtakes early work (the shape real LIFO
	// run-queues and stealing produce).
	policyLIFO
	// policyDelay injects delays: some tasks draw a skip budget at post
	// time and are withheld from the runnable set while any alternative
	// exists — the delay-injection face of DPOR-lite perturbation.
	policyDelay
)

func (p schedPolicy) String() string {
	switch p {
	case policyLIFO:
		return "lifo"
	case policyDelay:
		return "delay"
	default:
		return "uniform"
	}
}

// stask is one queued unit of simulated work.
type stask struct {
	seq      uint64
	fn       func()
	complete func(error)
	exec     *Exec
	delay    int // policyDelay skip budget; >0 withholds it from the runnable set
	// span/spawn mirror the causal-tracing fields of executor.task so span
	// trees built from simulated runs have the same shape as real ones.
	span  trace.SpanID
	spawn trace.SpanID
}

// stimer is one pending virtual-clock timer.
type stimer struct {
	seq     uint64
	when    time.Duration // virtual deadline
	target  string        // decision-log label
	fire    func()
	stopped bool
}

// runMu serializes simulations process-wide: the block hook and goroutine
// registry are shared seams, and exploration runs are sequential anyway.
var runMu sync.Mutex

// Sim is one deterministic simulation run. Create with New, populate with
// NewLoop/NewPool (and a Runtime if the scenario drives core directives),
// then Execute the scenario body. A Sim is single-use: one Execute per Sim.
type Sim struct {
	seed     int64
	rng      *rand.Rand
	policy   schedPolicy
	base     time.Time
	virt     time.Duration
	maxSteps int

	reg    gid.Registry
	goid   gid.ID
	active bool
	used   bool

	execs   []*Exec
	root    *Exec
	running *Exec
	timers  []*stimer
	seq     uint64

	steps    int
	log      trace.DecisionLog
	fatalErr error // sticky deadlock/step-limit, survives capture by task recovery
}

// New returns a simulation whose every scheduling decision is a function of
// seed. The perturbation policy is drawn from the seed too, so recording a
// seed records the full schedule.
func New(seed int64) *Sim {
	s := &Sim{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		base:     time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
		maxSteps: 1 << 20,
	}
	// Half the seeds random-walk; the other half split between the two
	// biased policies, which reach schedules the uniform walk is
	// exponentially unlikely to find.
	switch s.rng.Intn(4) {
	case 0, 1:
		s.policy = policyUniform
	case 2:
		s.policy = policyLIFO
	default:
		s.policy = policyDelay
	}
	s.root = s.newExec("main", true)
	return s
}

// Seed returns the run's seed.
func (s *Sim) Seed() int64 { return s.seed }

// Policy names the perturbation policy this seed selected (for logs).
func (s *Sim) Policy() string { return s.policy.String() }

// SetMaxSteps overrides the scheduler-step budget (livelock guard).
func (s *Sim) SetMaxSteps(n int) {
	if n > 0 {
		s.maxSteps = n
	}
}

// Steps returns how many scheduler steps have run.
func (s *Sim) Steps() int { return s.steps }

// Log returns the decision log (live; do not mutate).
func (s *Sim) Log() *trace.DecisionLog { return &s.log }

// Trace renders the decision trace recorded so far. Two runs with the same
// seed over the same scenario produce byte-identical traces.
func (s *Sim) Trace() string { return s.log.String() }

// Now returns the virtual clock reading.
func (s *Sim) Now() time.Time { return s.base.Add(s.virt) }

// Clock exposes the virtual clock through the vclock seam, for wiring into
// components that take an injectable time source (qos.Breaker.SetClock,
// supervise.Options.Clock, eventloop.Loop.SetClock).
func (s *Sim) Clock() vclock.Clock { return simClock{s} }

type simClock struct{ s *Sim }

func (c simClock) Now() time.Time { return c.s.Now() }

func (c simClock) AfterFunc(d time.Duration, fn func()) vclock.Timer {
	c.s.checkGoroutine()
	return c.s.addTimer(d, "clock", fn)
}

func (s *Sim) checkGoroutine() {
	if !s.active || gid.Current() != s.goid {
		panic(ErrNotSimGoroutine)
	}
}

func (s *Sim) onSim() bool {
	return s.active && gid.Current() == s.goid
}

func (s *Sim) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// addTimer schedules fn at virtual now+d (clamped to now).
func (s *Sim) addTimer(d time.Duration, target string, fn func()) *stimer {
	if d < 0 {
		d = 0
	}
	t := &stimer{seq: s.nextSeq(), when: s.virt + d, target: target, fire: fn}
	s.timers = append(s.timers, t)
	return t
}

func (t *stimer) Stop() bool {
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// choice is one runnable alternative at a scheduler step.
type choice struct {
	exec  *Exec
	qidx  int
	timer *stimer
	seq   uint64
}

// collect builds the current runnable set: each FIFO executor contributes
// its head task (dispatch order is part of its semantics), each pool
// executor contributes every queued task (a pool's workers may pop in any
// order), and every timer due at the current virtual time contributes a
// firing.
func (s *Sim) collect() []choice {
	var cs []choice
	for _, e := range s.execs {
		if len(e.q) == 0 {
			continue
		}
		if e.fifo {
			cs = append(cs, choice{exec: e, qidx: 0, seq: e.q[0].seq})
			continue
		}
		for i, t := range e.q {
			cs = append(cs, choice{exec: e, qidx: i, seq: t.seq})
		}
	}
	// Compact stopped timers opportunistically while scanning for due ones.
	live := s.timers[:0]
	for _, t := range s.timers {
		if t.stopped {
			continue
		}
		live = append(live, t)
		if t.when <= s.virt {
			cs = append(cs, choice{timer: t, seq: t.seq})
		}
	}
	s.timers = live
	if s.policy == policyDelay && len(cs) > 1 {
		eligible := make([]choice, 0, len(cs))
		for _, c := range cs {
			if c.exec != nil && c.exec.q[c.qidx].delay > 0 {
				c.exec.q[c.qidx].delay--
				continue
			}
			eligible = append(eligible, c)
		}
		if len(eligible) > 0 {
			cs = eligible
		}
	}
	return cs
}

// advanceClock moves virtual time to the earliest pending timer deadline,
// reporting whether there was one.
func (s *Sim) advanceClock() bool {
	var earliest time.Duration
	found := false
	for _, t := range s.timers {
		if t.stopped {
			continue
		}
		if !found || t.when < earliest {
			earliest, found = t.when, true
		}
	}
	if !found {
		return false
	}
	if earliest > s.virt {
		s.virt = earliest
	}
	return true
}

// pick chooses among the alternatives per the run's policy.
func (s *Sim) pick(cs []choice) int {
	if len(cs) == 1 {
		return 0
	}
	if s.policy == policyLIFO && s.rng.Float64() < 0.75 {
		best := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].seq > cs[best].seq {
				best = i
			}
		}
		return best
	}
	return s.rng.Intn(len(cs))
}

// step runs one scheduler step: pick a runnable alternative (advancing the
// virtual clock to the next timer if nothing is runnable now) and execute
// it. Returns false when the simulation is quiescent — no runnable task and
// no pending timer.
func (s *Sim) step() bool {
	cs := s.collect()
	if len(cs) == 0 {
		if !s.advanceClock() {
			return false
		}
		cs = s.collect()
		if len(cs) == 0 {
			return false
		}
	}
	if s.steps >= s.maxSteps {
		err := &StepLimitError{Steps: s.steps}
		if s.fatalErr == nil {
			s.fatalErr = err
		}
		panic(err)
	}
	c := cs[s.pick(cs)]
	if c.timer != nil {
		s.log.Append(trace.Decision{Step: s.steps, Kind: "timer", Target: c.timer.target, Seq: c.timer.seq, Alts: len(cs), Virt: s.virt})
		s.steps++
		c.timer.stopped = true // consumed; collect will drop it
		c.timer.fire()
		return true
	}
	t := c.exec.take(c.qidx)
	s.log.Append(trace.Decision{Step: s.steps, Kind: "run", Target: c.exec.name, Seq: t.seq, Alts: len(cs), Virt: s.virt})
	s.steps++
	s.runTask(t)
	return true
}

// runTask executes t on the simulation goroutine under its executor's
// identity: the goroutine registry answers "member of t.exec" for the
// task's duration, so core's thread-context awareness (Algorithm 1 line 6)
// and the await help-first path behave exactly as on the real runtime.
func (s *Sim) runTask(t *stask) {
	prev := s.running
	s.running = t.exec
	s.reg.Register(t.exec)
	defer func() {
		s.running = prev
		if prev != nil {
			s.reg.Register(prev)
		}
	}()
	t.exec.dispatched++
	if sink := trace.ActiveSink(); sink != nil && t.span != 0 {
		prevSpan := trace.Swap(t.span)
		parent := t.spawn
		if parent == 0 {
			parent = prevSpan
		}
		trace.BeginSpanID(sink, t.span, "run", t.exec.name, parent)
		defer func() {
			trace.Swap(prevSpan)
			trace.EndSpan(sink, t.span, "run", t.exec.name)
		}()
	}
	t.complete(executor.RunCaptured(t.fn))
}

// pump drives the scheduler until ready() reports true, failing the run
// with a DeadlockError if the simulation goes quiescent first. It is the
// simulated replacement for parking: every blocking wait in the runtime
// funnels here through the executor block hook.
func (s *Sim) pump(waiting string, ready func() bool) {
	for !ready() {
		if !s.step() {
			err := &DeadlockError{Waiting: waiting, Trace: s.Trace()}
			if s.fatalErr == nil {
				s.fatalErr = err
			}
			panic(err)
		}
	}
}

// blockHook is installed as executor.SetBlockHook for the duration of
// Execute: waits on the simulation goroutine pump the scheduler; waits on
// any other goroutine fall through to real parking.
func (s *Sim) blockHook(ready func() bool) bool {
	if !s.onSim() {
		return false
	}
	s.pump("a completion inside a simulated task", ready)
	return true
}

// Yield is a modeled preemption point: the scheduler may run a
// seed-determined number (0–3) of other runnable tasks before the caller
// continues. Scenarios place it where a real thread could be preempted
// between a read and a write, giving task-granularity exploration a window
// into intra-task races.
func (s *Sim) Yield() {
	s.checkGoroutine()
	k := s.rng.Intn(4)
	for i := 0; i < k; i++ {
		if len(s.collect()) == 0 {
			return // nothing runnable now; Yield never advances the clock
		}
		s.step()
	}
}

// Sleep advances through d of virtual time, running whatever the scheduler
// picks in the meantime (tasks are instantaneous; time moves only when the
// runnable set is empty). It replaces wall-clock sleeps in scenarios.
func (s *Sim) Sleep(d time.Duration) {
	s.checkGoroutine()
	fired := false
	s.addTimer(d, "sleep", func() { fired = true })
	s.pump("a virtual-clock sleep", func() bool { return fired })
}

// Quiesce drives the scheduler until no task is runnable and no timer is
// pending. Scenario bodies call it before their final assertions so every
// posted block has run.
func (s *Sim) Quiesce() {
	s.checkGoroutine()
	for s.step() {
	}
}

// Execute runs body as the simulation's root context ("main"), then drains
// the scheduler to quiescence. It installs the executor block hook and the
// goroutine-registry identity for the duration, so core/qos code called
// from body runs unmodified under the simulated scheduler. The returned
// error is body's error, a captured scenario panic, or the sticky
// deadlock/step-limit failure — whichever the schedule produced.
func (s *Sim) Execute(body func(*Sim) error) (err error) {
	runMu.Lock()
	defer runMu.Unlock()
	if s.used {
		return errors.New("sim: Sim already executed; create a new Sim per run")
	}
	s.used = true
	s.goid = gid.Current()
	s.active = true
	defer func() { s.active = false }()
	restore := executor.SetBlockHook(s.blockHook)
	defer restore()
	s.reg.Register(s.root)
	defer s.reg.Deregister()
	s.running = s.root

	func() {
		defer func() {
			if v := recover(); v != nil {
				if s.fatalErr != nil {
					err = s.fatalErr
					return
				}
				err = fmt.Errorf("sim: scenario panicked: %v", v)
			}
		}()
		err = body(s)
		if err == nil {
			s.Quiesce()
		}
	}()
	if s.fatalErr != nil {
		err = s.fatalErr
	}
	return err
}
