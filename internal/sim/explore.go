package sim

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// Scenario is one simulated test body. It builds its world on s (targets,
// runtime, posts), drives it, and returns nil when every invariant held
// under this run's schedule. Explore calls it once per seed with a fresh
// Sim; it must not retain state that leaks between runs unless the test
// aggregates across schedules on purpose.
type Scenario func(s *Sim) error

// Options configures an exploration.
type Options struct {
	// Runs is how many fresh seeds to explore (default 64).
	Runs int
	// BaseSeed is the first fresh seed; run i uses BaseSeed+i. When zero it
	// comes from the SIM_SEED_BASE environment variable, defaulting to 1.
	// Fixing the base keeps CI deterministic; `make explore` with a varying
	// SIM_SEED_BASE (the nightly batch) keeps growing coverage.
	BaseSeed int64
	// Seeds are explicit seeds replayed before the fresh ones — the
	// regression corpus, or a single failure being reproduced.
	Seeds []int64
	// MaxSteps bounds each run's scheduler steps (default 1<<20).
	MaxSteps int
	// FailFast stops at the first failure (default: keep going, collecting
	// every failing seed in the budget).
	FailFast bool
}

// Failure is one seed under which the scenario's invariants did not hold.
type Failure struct {
	Seed   int64
	Policy string
	Err    error
	Trace  string // decision trace of the failing run
}

func (f Failure) String() string {
	return fmt.Sprintf("seed=%d policy=%s: %v", f.Seed, f.Policy, f.Err)
}

// Report summarizes an exploration.
type Report struct {
	Runs     int // scenario executions performed
	Branches int // total branch decisions (steps with >1 alternative) seen
	Failures []Failure
}

// Failed reports whether any explored schedule violated the invariants.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// First returns the first failure, or nil.
func (r *Report) First() *Failure {
	if len(r.Failures) == 0 {
		return nil
	}
	return &r.Failures[0]
}

// Run executes scenario once under the given seed and returns the decision
// trace alongside the scenario's verdict. This is the replay primitive: a
// recorded seed plus the scenario body is a complete reproduction.
func Run(seed int64, scenario Scenario) (string, error) {
	s := New(seed)
	err := s.Execute(scenario)
	return s.Trace(), err
}

// Explore replays scenario across perturbed schedules: first every explicit
// seed (the regression corpus), then Runs fresh seeds from BaseSeed. Each
// seed fully determines its schedule — runnable-set selection, help-target
// choice, timer order, delay injection — so any failure here is reproduced
// by Run(seed, scenario) alone, with no trace files to ship.
func Explore(opts Options, scenario Scenario) *Report {
	if opts.Runs <= 0 {
		opts.Runs = 64
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = envBaseSeed()
	}
	rep := &Report{}
	try := func(seed int64) bool {
		s := New(seed)
		if opts.MaxSteps > 0 {
			s.SetMaxSteps(opts.MaxSteps)
		}
		err := s.Execute(scenario)
		rep.Runs++
		rep.Branches += s.log.Branches()
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Policy: s.Policy(), Err: err, Trace: s.Trace()})
			return !opts.FailFast
		}
		return true
	}
	for _, seed := range opts.Seeds {
		if !try(seed) {
			return rep
		}
	}
	for i := 0; i < opts.Runs; i++ {
		if !try(opts.BaseSeed + int64(i)) {
			return rep
		}
	}
	return rep
}

func envBaseSeed() int64 {
	if v := os.Getenv("SIM_SEED_BASE"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n != 0 {
			return n
		}
	}
	return 1
}

// ExploreT runs Explore and fails t with the first failing seed and its
// decision trace. When the SIM_RECORD environment variable is set, failing
// seeds are also appended as corpus candidates (see RecordCandidates) so a
// finding can be promoted into testdata/regression_seeds.json.
func ExploreT(t testing.TB, name string, opts Options, scenario Scenario) *Report {
	t.Helper()
	rep := Explore(opts, scenario)
	if rep.Failed() {
		RecordCandidates(t, name, rep)
		f := rep.First()
		t.Fatalf("sim.Explore %s: %d/%d schedules failed\nfirst failure: %v\nreproduce: sim.Run(%d, scenario)\ndecision trace:\n%s",
			name, len(rep.Failures), rep.Runs, f, f.Seed, f.Trace)
	}
	return rep
}
