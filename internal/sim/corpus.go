package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The regression corpus is an append-only list of (scenario, seed) pairs in
// testdata/regression_seeds.json. Every entry is replayed on every `go
// test` run of this package: entries with Expect "pass" pin fixed ordering
// bugs (the schedule that used to break must stay green), entries with
// Expect "fail" are detector canaries — scenarios with a deliberately
// seeded bug whose recorded seed must keep finding it, proving the explorer
// itself has not gone blind.
//
// The explorer never edits the corpus. On failure (with SIM_RECORD set) it
// appends to a *.candidates.json sidecar; a human promotes candidates into
// the corpus after triage. This keeps the committed file an intentional,
// reviewed artifact.

// SeedEntry is one corpus record.
type SeedEntry struct {
	// Scenario names the registered scenario body to replay.
	Scenario string `json:"scenario"`
	// Seed reproduces the schedule.
	Seed int64 `json:"seed"`
	// Expect is "pass" (pinned fix) or "fail" (detector canary).
	Expect string `json:"expect"`
	// Added is the date the entry was recorded (informational).
	Added string `json:"added,omitempty"`
	// Note says what this seed caught.
	Note string `json:"note,omitempty"`
}

// Corpus is the on-disk shape of regression_seeds.json.
type Corpus struct {
	Comment string      `json:"comment,omitempty"`
	Seeds   []SeedEntry `json:"seeds"`
}

// LoadCorpus reads a corpus file.
func LoadCorpus(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("sim: corpus %s: %w", path, err)
	}
	for i, e := range c.Seeds {
		if e.Scenario == "" || (e.Expect != "pass" && e.Expect != "fail") {
			return nil, fmt.Errorf("sim: corpus %s: entry %d: need scenario and expect pass|fail", path, i)
		}
	}
	return &c, nil
}

// For returns the corpus entries for one scenario.
func (c *Corpus) For(scenario string) []SeedEntry {
	var out []SeedEntry
	for _, e := range c.Seeds {
		if e.Scenario == scenario {
			out = append(out, e)
		}
	}
	return out
}

// RecordCandidates appends rep's failing seeds as corpus-candidate entries
// when the SIM_RECORD environment variable is set (to a directory, or to
// "1" for ./testdata). Candidates land in regression_seeds.candidates.json
// next to the corpus, never in the corpus itself.
func RecordCandidates(t testing.TB, scenario string, rep *Report) {
	dir := os.Getenv("SIM_RECORD")
	if dir == "" || !rep.Failed() {
		return
	}
	if dir == "1" {
		dir = "testdata"
	}
	path := filepath.Join(dir, "regression_seeds.candidates.json")
	var c Corpus
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &c)
	}
	for _, f := range rep.Failures {
		c.Seeds = append(c.Seeds, SeedEntry{
			Scenario: scenario,
			Seed:     f.Seed,
			Expect:   "fail",
			Note:     fmt.Sprintf("candidate (policy=%s): %v", f.Policy, firstLine(f.Err.Error())),
		})
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("sim: cannot record candidates: %v", err)
		return
	}
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		t.Logf("sim: cannot record candidates: %v", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Logf("sim: cannot record candidates: %v", err)
		return
	}
	t.Logf("sim: recorded %d candidate seed(s) in %s", len(rep.Failures), path)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
