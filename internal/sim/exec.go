package sim

import (
	"time"

	"repro/internal/executor"
	"repro/internal/trace"
)

// Exec is a simulated executor. It implements the same surface as the real
// engines — executor.Executor plus the help-first pending-runner pair and
// the timed-post methods — but owns no goroutines: its queue is drained by
// the Sim scheduler, one seed-chosen task at a time, all on the simulation
// goroutine.
//
// Two flavors exist. A loop (NewLoop) models an event-driven target: strict
// FIFO dispatch, so only its head task is ever runnable — the scheduler
// chooses *when* the loop runs relative to other executors, never the order
// within it. A pool (NewPool) models a worker pool with sharded queues and
// stealing: any queued task may run next, so every one is a runnable
// alternative.
type Exec struct {
	s          *Sim
	name       string
	fifo       bool
	q          []*stask
	stopped    bool
	dispatched int64
}

func (s *Sim) newExec(name string, fifo bool) *Exec {
	e := &Exec{s: s, name: name, fifo: fifo}
	s.execs = append(s.execs, e)
	return e
}

// NewLoop creates a simulated event-loop target (FIFO dispatch).
func (s *Sim) NewLoop(name string) *Exec { return s.newExec(name, true) }

// NewPool creates a simulated worker-pool target (any-order dispatch).
func (s *Sim) NewPool(name string) *Exec { return s.newExec(name, false) }

// Name returns the virtual target name.
func (e *Exec) Name() string { return e.name }

// Len returns the current queue length.
func (e *Exec) Len() int { return len(e.q) }

// Dispatched returns how many tasks this executor has run.
func (e *Exec) Dispatched() int64 { return e.dispatched }

// take removes and returns the i-th queued task, preserving queue order.
func (e *Exec) take(i int) *stask {
	t := e.q[i]
	e.q = append(e.q[:i], e.q[i+1:]...)
	return t
}

// enqueue appends a task carrying the given spawn span (0 = capture the
// submitter's current span, matching real Post).
func (e *Exec) enqueue(fn func(), complete func(error), spawn trace.SpanID) {
	s := e.s
	if e.stopped {
		complete(executor.ErrShutdown)
		return
	}
	t := &stask{seq: s.nextSeq(), fn: fn, complete: complete, exec: e}
	if s.policy == policyDelay && s.rng.Float64() < 0.4 {
		t.delay = 1 + s.rng.Intn(3)
	}
	if sink := trace.ActiveSink(); sink != nil {
		t.span = trace.NewSpanID()
		t.spawn = spawn
		if t.spawn == 0 {
			t.spawn = trace.Current()
		}
		trace.Enqueue(sink, t.span, e.name, t.spawn)
	}
	e.q = append(e.q, t)
}

// Post submits fn and returns its Completion. Confinement rule: posts come
// from the simulation goroutine only (scenario body or simulated tasks) —
// a post from a stray goroutine would make the schedule depend on real
// thread timing, which is exactly what simulation removes.
func (e *Exec) Post(fn func()) *executor.Completion {
	e.s.checkGoroutine()
	comp, complete := executor.NewPendingCompletion()
	e.enqueue(fn, complete, 0)
	return comp
}

// PostDelayed schedules fn after d of virtual time, then enqueues it like a
// normal post (so the scheduler still chooses its dispatch slot among peers
// due at that instant).
func (e *Exec) PostDelayed(d time.Duration, fn func()) *executor.Completion {
	s := e.s
	s.checkGoroutine()
	comp, complete := executor.NewPendingCompletion()
	if e.stopped {
		complete(executor.ErrShutdown)
		return comp
	}
	var spawn trace.SpanID
	if trace.ActiveSink() != nil {
		spawn = trace.Current()
	}
	s.addTimer(d, e.name, func() {
		e.enqueue(fn, complete, spawn)
	})
	return comp
}

// PostAt schedules fn at the virtual-clock instant at.
func (e *Exec) PostAt(at time.Time, fn func()) *executor.Completion {
	return e.PostDelayed(at.Sub(e.s.Now()), fn)
}

// Owns reports whether the current simulated context is a task of this
// executor (Algorithm 1 line 6 under simulation: the running task's
// executor identity, not a physical thread group).
func (e *Exec) Owns() bool {
	return e.s.onSim() && e.s.running == e
}

// TryRunPending pops one pending task and runs it on the calling context —
// the help-first primitive behind the await logical barrier. Under
// simulation only the executor's own running task may help (mirroring the
// real engines, where the helper must be a member thread); for a pool the
// scheduler chooses which queued task is helped, and the choice is recorded
// as a "help" decision.
func (e *Exec) TryRunPending() bool {
	s := e.s
	if !e.Owns() || len(e.q) == 0 {
		return false
	}
	idx, alts := 0, 1
	if !e.fifo && len(e.q) > 1 {
		alts = len(e.q)
		idx = s.rng.Intn(alts)
	}
	t := e.take(idx)
	s.log.Append(trace.Decision{Step: s.steps, Kind: "help", Target: e.name, Seq: t.seq, Alts: alts, Virt: s.virt})
	s.steps++
	s.runTask(t)
	return true
}

// WaitPending parks until this executor has pending work or cancel fires.
// Under simulation "parking" runs one global scheduler step instead: some
// other task or timer makes progress, after which the await loop re-checks.
// This is what makes the help-first barrier's blocking arm deterministic.
func (e *Exec) WaitPending(cancel <-chan struct{}) bool {
	s := e.s
	s.checkGoroutine()
	select {
	case <-cancel:
		return false
	default:
	}
	if len(e.q) > 0 {
		return true
	}
	if !s.step() {
		err := &DeadlockError{Waiting: "an await barrier on " + e.name, Trace: s.Trace()}
		if s.fatalErr == nil {
			s.fatalErr = err
		}
		panic(err)
	}
	return true
}

// Shutdown stops the executor: tasks already queued still run (the
// scheduler drains them), later submissions are rejected with ErrShutdown.
func (e *Exec) Shutdown() {
	e.s.checkGoroutine()
	e.stopped = true
}

var _ executor.Executor = (*Exec)(nil)
