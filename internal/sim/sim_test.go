package sim_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/sim"
)

// mixedScenario is a deliberately branchy workload touching every decision
// kind: pool reordering, loop FIFO, timers, helping inside an await
// barrier, and a panic captured into a completion. Used by the determinism
// tests, which only care that the schedule is rich, not what it computes.
func mixedScenario(s *sim.Sim) error {
	rt := s.Runtime()
	defer rt.Shutdown()
	loop, err := s.RegisterLoop(rt, "edt")
	if err != nil {
		return err
	}
	if _, err := s.RegisterPool(rt, "workers"); err != nil {
		return err
	}
	var sum int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := rt.Invoke("workers", core.Nowait, func() { sum += i }); err != nil {
			return err
		}
	}
	loop.PostDelayed(3*time.Millisecond, func() { sum += 100 })
	loop.PostDelayed(1*time.Millisecond, func() { sum += 200 })
	comp, err := rt.Invoke("edt", core.Nowait, func() {
		// Await from inside the EDT: the barrier helps on the loop's own
		// queue and pumps the global scheduler.
		c2, _ := rt.Invoke("workers", core.Nowait, func() { sum += 1000 })
		rt.AwaitCompletion(c2)
	})
	if err != nil {
		return err
	}
	pcomp, _ := rt.Invoke("workers", core.Nowait, func() { panic("boom") })
	s.Sleep(5 * time.Millisecond)
	comp.Wait()
	s.Quiesce()
	if sum != 10+100+200+1000 {
		return fmt.Errorf("sum = %d", sum)
	}
	var pe *executor.PanicError
	if !errors.As(pcomp.Err(), &pe) {
		return fmt.Errorf("panic not captured: %v", pcomp.Err())
	}
	return nil
}

// TestSameSeedSameTrace is the determinism acceptance criterion: the same
// seed over the same scenario yields a byte-identical decision trace, 20
// runs in a row, across several seeds and thus all three policies.
func TestSameSeedSameTrace(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		first, err := sim.Run(seed, mixedScenario)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !strings.Contains(first, "run") {
			t.Fatalf("seed %d: trace records no decisions:\n%s", seed, first)
		}
		for i := 1; i < 20; i++ {
			again, err := sim.Run(seed, mixedScenario)
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, i, err)
			}
			if again != first {
				t.Fatalf("seed %d run %d: trace diverged\nfirst:\n%s\nagain:\n%s", seed, i, first, again)
			}
		}
	}
}

// TestSeedsDiverge: different seeds explore different schedules (otherwise
// Explore is 64 copies of one run).
func TestSeedsDiverge(t *testing.T) {
	traces := map[string]int64{}
	distinct := 0
	for seed := int64(1); seed <= 8; seed++ {
		tr, err := sim.Run(seed, mixedScenario)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, dup := traces[tr]; !dup {
			traces[tr] = seed
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("8 seeds produced %d distinct schedule(s)", distinct)
	}
}

func TestLoopFIFOAcrossSchedules(t *testing.T) {
	sim.ExploreT(t, "loop-fifo", sim.Options{Runs: 32}, func(s *sim.Sim) error {
		loop := s.NewLoop("edt")
		var order []int
		for i := 0; i < 6; i++ {
			i := i
			loop.Post(func() { order = append(order, i) })
		}
		s.Quiesce()
		for i, v := range order {
			if v != i {
				return fmt.Errorf("EDT dispatch reordered: %v", order)
			}
		}
		if len(order) != 6 {
			return fmt.Errorf("ran %d of 6", len(order))
		}
		return nil
	})
}

// TestPoolReordersSomewhere: across seeds the pool must exhibit at least
// two distinct dispatch orders — evidence the explorer actually perturbs.
func TestPoolReordersSomewhere(t *testing.T) {
	orders := map[string]bool{}
	sim.ExploreT(t, "pool-orders", sim.Options{Runs: 16}, func(s *sim.Sim) error {
		pool := s.NewPool("workers")
		var order []byte
		for i := 0; i < 4; i++ {
			i := i
			pool.Post(func() { order = append(order, byte('a'+i)) })
		}
		s.Quiesce()
		orders[string(order)] = true
		return nil
	})
	if len(orders) < 2 {
		t.Fatalf("16 seeds, pool dispatch always %v", orders)
	}
}

func TestVirtualTimers(t *testing.T) {
	sim.ExploreT(t, "virtual-timers", sim.Options{Runs: 16}, func(s *sim.Sim) error {
		loop := s.NewLoop("edt")
		start := s.Now()
		var order []string
		loop.PostDelayed(20*time.Millisecond, func() { order = append(order, "late") })
		loop.PostDelayed(5*time.Millisecond, func() { order = append(order, "early") })
		comp := loop.PostAt(s.Now().Add(10*time.Millisecond), func() { order = append(order, "mid") })
		s.Quiesce()
		if got := strings.Join(order, ","); got != "early,mid,late" {
			return fmt.Errorf("timer order %q", got)
		}
		if comp.Err() != nil {
			return comp.Err()
		}
		if d := s.Now().Sub(start); d != 20*time.Millisecond {
			return fmt.Errorf("virtual clock advanced %v, want 20ms", d)
		}
		return nil
	})
}

func TestSleepRunsConcurrentWork(t *testing.T) {
	_, err := sim.Run(7, func(s *sim.Sim) error {
		pool := s.NewPool("w")
		done := false
		pool.Post(func() { done = true })
		s.Sleep(time.Millisecond)
		if !done {
			return errors.New("posted task did not run during Sleep")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := sim.Run(1, func(s *sim.Sim) error {
		comp, _ := executor.NewPendingCompletion()
		comp.Wait() // nothing will ever complete this
		return nil
	})
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if !strings.Contains(de.Error(), "decision trace") {
		t.Fatalf("deadlock report missing trace:\n%v", de)
	}
}

func TestStepLimitCatchesLivelock(t *testing.T) {
	_, err := sim.Run(1, func(s *sim.Sim) error {
		s.SetMaxSteps(500)
		pool := s.NewPool("w")
		var respawn func()
		respawn = func() { pool.Post(respawn) }
		pool.Post(respawn)
		s.Quiesce()
		return nil
	})
	var se *sim.StepLimitError
	if !errors.As(err, &se) {
		t.Fatalf("want StepLimitError, got %v", err)
	}
}

func TestConfinementPanicsOffGoroutine(t *testing.T) {
	_, err := sim.Run(1, func(s *sim.Sim) error {
		pool := s.NewPool("w")
		errc := make(chan any, 1)
		go func() {
			defer func() { errc <- recover() }()
			pool.Post(func() {})
		}()
		if v := <-errc; v != sim.ErrNotSimGoroutine {
			return fmt.Errorf("off-goroutine Post: recovered %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShutdownRejects(t *testing.T) {
	_, err := sim.Run(1, func(s *sim.Sim) error {
		pool := s.NewPool("w")
		ran := false
		pool.Post(func() { ran = true })
		pool.Shutdown()
		comp := pool.Post(func() {})
		if !errors.Is(comp.Err(), executor.ErrShutdown) {
			return fmt.Errorf("post after shutdown: %v", comp.Err())
		}
		s.Quiesce()
		if !ran {
			return errors.New("pending task dropped by shutdown")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScenarioPanicBecomesError(t *testing.T) {
	_, err := sim.Run(1, func(s *sim.Sim) error {
		panic("scenario assertion")
	})
	if err == nil || !strings.Contains(err.Error(), "scenario assertion") {
		t.Fatalf("got %v", err)
	}
}

func TestSimSingleUse(t *testing.T) {
	s := sim.New(1)
	if err := s.Execute(func(*sim.Sim) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(func(*sim.Sim) error { return nil }); err == nil {
		t.Fatal("second Execute on one Sim should error")
	}
}

// TestExploreReportsFailingSeed: a scenario failing only under some
// schedules yields a report whose seed reproduces the failure standalone.
func TestExploreReportsFailingSeed(t *testing.T) {
	scen := func(s *sim.Sim) error {
		pool := s.NewPool("w")
		var order []byte
		pool.Post(func() { order = append(order, 'a') })
		pool.Post(func() { order = append(order, 'b') })
		s.Quiesce()
		if string(order) == "ba" {
			return errors.New("b overtook a")
		}
		return nil
	}
	rep := sim.Explore(sim.Options{Runs: 32}, scen)
	if !rep.Failed() {
		t.Fatal("32 runs never reordered two pool tasks")
	}
	f := rep.First()
	if _, err := sim.Run(f.Seed, scen); err == nil {
		t.Fatalf("seed %d did not reproduce standalone", f.Seed)
	}
	if f.Trace == "" || rep.Branches == 0 {
		t.Fatalf("failure carries no trace/branches: %+v", f)
	}
}
