package sim_test

import (
	"strconv"
	"testing"

	"repro/internal/sim"
)

// corpusScenarios maps corpus scenario names to their bodies. Every name
// referenced by testdata/regression_seeds.json must be registered here;
// renaming a scenario without updating the corpus is a test failure, not a
// silent skip.
var corpusScenarios = map[string]sim.Scenario{
	"nametag-pruned-panic": nametagPrunedPanic,
	"lost-update-canary":   demoLostUpdate,
}

// TestReplayRegressionCorpus re-runs every recorded seed on every `go
// test`: pass-entries pin fixed ordering bugs (the schedule that used to
// break must stay green), fail-entries prove the seed alone still
// reproduces its deliberately seeded bug (the detector has not gone blind).
func TestReplayRegressionCorpus(t *testing.T) {
	corpus, err := sim.LoadCorpus("testdata/regression_seeds.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Seeds) == 0 {
		t.Fatal("empty regression corpus")
	}
	for _, e := range corpus.Seeds {
		e := e
		t.Run(e.Scenario+"/seed="+strconv.FormatInt(e.Seed, 10), func(t *testing.T) {
			scen := corpusScenarios[e.Scenario]
			if scen == nil {
				t.Fatalf("corpus references unregistered scenario %q", e.Scenario)
			}
			trace, err := sim.Run(e.Seed, scen)
			switch e.Expect {
			case "pass":
				if err != nil {
					t.Fatalf("pinned regression seed %d failed again: %v\ndecision trace:\n%s", e.Seed, err, trace)
				}
			case "fail":
				if err == nil {
					t.Fatalf("canary seed %d no longer reproduces its seeded bug (note: %s)", e.Seed, e.Note)
				}
			}
		})
	}
}

// TestCorpusReplayIsDeterministic replays one pinned seed twice and demands
// identical decision traces — the corpus is only a regression corpus if a
// seed names exactly one schedule.
func TestCorpusReplayIsDeterministic(t *testing.T) {
	corpus, err := sim.LoadCorpus("testdata/regression_seeds.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corpus.Seeds {
		scen := corpusScenarios[e.Scenario]
		if scen == nil {
			continue
		}
		t1, _ := sim.Run(e.Seed, scen)
		t2, _ := sim.Run(e.Seed, scen)
		if t1 != t2 {
			t.Fatalf("%s seed %d: replay diverged", e.Scenario, e.Seed)
		}
	}
}
