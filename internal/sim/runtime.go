package sim

import (
	"repro/internal/core"
)

// Runtime returns a core.Runtime wired to the simulation's goroutine
// registry, so the directive layer's thread-context awareness (inline vs.
// post, the await help-first owner lookup) resolves against simulated
// executors. Core runs unmodified: Invoke/InvokeNamed/WaitTag/Await all
// work, with every dispatch decision under the seed's control.
//
// Register simulated targets with RegisterLoop/RegisterPool (not
// core.CreateWorker, which would build a real goroutine pool and punch
// a hole in the simulation).
func (s *Sim) Runtime() *core.Runtime {
	return core.NewRuntime(&s.reg)
}

// RegisterLoop creates a simulated event-loop target and registers it with
// rt under name.
func (s *Sim) RegisterLoop(rt *core.Runtime, name string) (*Exec, error) {
	e := s.NewLoop(name)
	if err := rt.RegisterEDT(name, e); err != nil {
		return nil, err
	}
	return e, nil
}

// RegisterPool creates a simulated worker-pool target and registers it with
// rt under name.
func (s *Sim) RegisterPool(rt *core.Runtime, name string) (*Exec, error) {
	e := s.NewPool(name)
	if err := rt.RegisterTarget(name, e); err != nil {
		return nil, err
	}
	return e, nil
}
