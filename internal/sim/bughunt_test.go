package sim_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// nametagPrunedPanic is the scenario that caught a real ordering bug in
// core's name_as bookkeeping (fixed in this PR, pinned in the corpus):
// nameGroup.add pruned *finished* completions to bound memory on reused
// tags, but pruning also dropped their error verdicts. Schedule-dependent
// failure: producer A invokes a tagged block that panics; if the block runs
// to completion before producer B's InvokeNamed on the same tag, B's add
// pruned the panicked completion and the subsequent WaitTag — documented to
// return the first captured panic among the joined blocks — returned nil.
// Under the real runtime the panicking block rarely won that race; under
// simulation the explorer walks straight into it.
func nametagPrunedPanic(s *sim.Sim) error {
	rt := s.Runtime()
	defer rt.Shutdown()
	if _, err := s.RegisterPool(rt, "workers"); err != nil {
		return err
	}
	producers := s.NewPool("producers")
	var ierr [2]error
	c1 := producers.Post(func() {
		_, ierr[0] = rt.InvokeNamed("workers", "batch", func() { panic("tagged block failed") })
	})
	c2 := producers.Post(func() {
		_, ierr[1] = rt.InvokeNamed("workers", "batch", func() {})
	})
	c1.Wait()
	c2.Wait()
	if ierr[0] != nil {
		return ierr[0]
	}
	if ierr[1] != nil {
		return ierr[1]
	}
	if err := rt.WaitTag("batch"); err == nil {
		return errors.New("WaitTag(batch) lost the panic of a tagged block")
	}
	return nil
}

// demoLostUpdate is the detector canary: a deliberately seeded lost-update
// bug (read–Yield–write on a shared counter from two pool tasks, the
// classic increment race at task granularity). It must stay buggy: the
// corpus pins a seed whose schedule hits the race, and the explore test
// below proves the explorer finds it within the CI budget. If either ever
// goes green, the explorer — not the scenario — has broken.
func demoLostUpdate(s *sim.Sim) error {
	pool := s.NewPool("workers")
	counter := 0
	for i := 0; i < 2; i++ {
		pool.Post(func() {
			v := counter // read
			s.Yield()    // modeled preemption window
			counter = v + 1
		})
	}
	s.Quiesce()
	if counter != 2 {
		return fmt.Errorf("lost update: counter = %d, want 2", counter)
	}
	return nil
}

// TestExploreNametagPrunedPanic replays the bug-hunt scenario across the CI
// exploration budget; with the core fix in place every schedule must hold.
func TestExploreNametagPrunedPanic(t *testing.T) {
	sim.ExploreT(t, "nametag-pruned-panic", sim.Options{Runs: 64}, nametagPrunedPanic)
}

// TestExploreFindsSeededBug is the detector acceptance criterion: the
// deliberately seeded ordering bug must be found within the CI exploration
// budget, and its failure must reproduce from the seed alone.
func TestExploreFindsSeededBug(t *testing.T) {
	rep := sim.Explore(sim.Options{Runs: 64}, demoLostUpdate)
	if !rep.Failed() {
		t.Fatal("explorer missed the seeded lost-update bug in 64 runs")
	}
	f := rep.First()
	if _, err := sim.Run(f.Seed, demoLostUpdate); err == nil {
		t.Fatalf("seed %d alone did not reproduce the failure", f.Seed)
	}
}

// TestWaitModeAlwaysJoins: under every explored schedule, Wait-mode Invoke
// returns only after its block ran (Algorithm 1 line 17).
func TestWaitModeAlwaysJoins(t *testing.T) {
	sim.ExploreT(t, "wait-joins", sim.Options{Runs: 32}, func(s *sim.Sim) error {
		rt := s.Runtime()
		defer rt.Shutdown()
		if _, err := s.RegisterPool(rt, "workers"); err != nil {
			return err
		}
		done := false
		if _, err := rt.Invoke("workers", core.Wait, func() { done = true }); err != nil {
			return err
		}
		if !done {
			return errors.New("Wait-mode Invoke returned before its block ran")
		}
		return nil
	})
}
