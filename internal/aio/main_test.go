package aio

import (
	"os"
	"testing"

	"repro/internal/testutil/leakcheck"
)

// TestMain sweeps the whole suite for leaked goroutines: after the last
// test, every I/O worker, event loop, reactor poll goroutine, and test
// server must have exited.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
