package aio_test

import (
	"fmt"
	"strings"

	"repro/internal/aio"
	"repro/internal/core"
)

// Example reads a stream asynchronously on the I/O target and joins with
// Get; inside an event handler one would use Await instead, keeping the
// EDT live while the read is in flight.
func Example() {
	rt := core.NewRuntime(nil)
	defer rt.Shutdown()
	io, err := aio.New(rt, "io", 2)
	if err != nil {
		panic(err)
	}

	fut := io.ReadAll(strings.NewReader("asynchronous I/O, sequential style"))
	data, err := fut.Get()
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
	// Output: asynchronous I/O, sequential style
}
