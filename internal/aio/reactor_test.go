//go:build linux || darwin

package aio

import (
	"bytes"
	"io"
	"os"
	"sync"
	"syscall"
	"testing"

	"repro/internal/reactor"
	"repro/internal/testutil/poll"
)

// reactorFixture is the thread-pool fixture plus a reactor-backed
// submitter. Skips where no poller exists.
func newReactorFixture(t *testing.T) (*fixture, *ReactorIO) {
	t.Helper()
	if !reactor.Supported {
		t.Skip("no reactor poller on this platform")
	}
	f := newFixture(t)
	r, err := reactor.New("aio-reactor", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return f, f.io.ViaReactor(r)
}

// pipeFDs returns a raw pipe pair; the reactor will own whichever end is
// registered, the test closes the other.
func pipeFDs(t *testing.T) (int, int) {
	t.Helper()
	var p [2]int
	if err := syscall.Pipe(p[:]); err != nil {
		t.Fatal(err)
	}
	return p[0], p[1]
}

// TestReactorReadAllPipe streams chunks through a pipe: the future must
// accumulate bytes on readiness edges and complete with the whole payload
// when the writer closes — EOF is success, and no I/O thread blocks while
// the pipe is quiet.
func TestReactorReadAllPipe(t *testing.T) {
	_, rio := newReactorFixture(t)
	rfd, wfd := pipeFDs(t)

	fut := rio.ReadAll(rfd)
	want := bytes.Repeat([]byte("0123456789abcdef"), 1024)
	go func() {
		w := os.NewFile(uintptr(wfd), "pipe-w")
		defer w.Close()
		for off := 0; off < len(want); off += 4096 {
			w.Write(want[off : off+4096])
		}
	}()
	got, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %d bytes, want %d (content mismatch)", len(got), len(want))
	}
}

// TestReactorWriteAllBackpressure pushes far more than a pipe buffer holds:
// the surplus must spill into the pending queue (never blocking the
// caller), drain on writability edges as the reader consumes, and complete
// the future with the full count.
func TestReactorWriteAllBackpressure(t *testing.T) {
	_, rio := newReactorFixture(t)
	rfd, wfd := pipeFDs(t)

	want := bytes.Repeat([]byte("backpressure!"), 1<<16) // ~832 KB ≫ pipe buffer
	fut := rio.WriteAll(wfd, want)

	var got []byte
	var rerr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := os.NewFile(uintptr(rfd), "pipe-r")
		defer r.Close()
		got, rerr = io.ReadAll(r)
	}()
	n, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("wrote %d bytes, want %d", n, len(want))
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reader got %d bytes, want %d (content mismatch)", len(got), len(want))
	}
	if rio.Reactor().Stats().PartialWrites == 0 {
		t.Fatal("write never spilled: the test did not exercise backpressure")
	}
}

// TestReactorWriteAllPeerGone: the reader vanishes mid-transfer; the
// future must fail rather than hang or report success.
func TestReactorWriteAllPeerGone(t *testing.T) {
	_, rio := newReactorFixture(t)
	rfd, wfd := pipeFDs(t)
	syscall.Close(rfd) // no reader, ever

	payload := bytes.Repeat([]byte("x"), 1<<20)
	if _, err := rio.WriteAll(wfd, payload).Get(); err == nil {
		t.Fatal("WriteAll to a readerless pipe succeeded")
	}
}

// TestReactorAwaitOnEDTKeepsEventsFlowing is the integration the paper's
// further-work section asks for: an EDT handler awaits a readiness-driven
// read; events arriving meanwhile are dispatched before the continuation.
func TestReactorAwaitOnEDTKeepsEventsFlowing(t *testing.T) {
	f, rio := newReactorFixture(t)
	rfd, wfd := pipeFDs(t)

	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	started := make(chan *Future[[]byte], 1)
	handler := f.edt.Post(func() {
		say("read-start")
		fut := rio.ReadAll(rfd)
		started <- fut
		data, err := fut.Await() // EDT pumps while the pipe is open
		if err != nil {
			t.Errorf("Await: %v", err)
		}
		say("read-done:" + string(data))
	})
	other := f.edt.Post(func() { say("other-event") })
	if err := other.Wait(); err != nil {
		t.Fatal(err)
	}
	fut := <-started
	poll.Until(t, "other event dispatched while read pending", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(log) == 2 && !fut.IsDone()
	})
	w := os.NewFile(uintptr(wfd), "pipe-w")
	w.Write([]byte("payload"))
	w.Close()
	if err := handler.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(log) != 3 || log[0] != "read-start" || log[1] != "other-event" || log[2] != "read-done:payload" {
		t.Fatalf("log = %v", log)
	}
}
