package aio

import (
	"errors"
	"io"

	"repro/internal/executor"
	"repro/internal/reactor"
)

// ReactorIO is the readiness-driven submission path: instead of parking an
// I/O thread inside a blocking read or write, each operation registers its
// descriptor with a reactor and completes from readiness callbacks. The
// descriptor becomes a virtual target bound to an FD for the lifetime of
// the operation; no goroutine or worker thread is occupied while the
// kernel has nothing to deliver. Futures returned here are the same
// Future[T] as the thread-pool path, so Get and Await work unchanged.
type ReactorIO struct {
	io *IO
	r  *reactor.Reactor
}

// ViaReactor derives a readiness-driven submitter from o. The reactor is
// borrowed, not owned: the caller stops it. On platforms without a poller
// callers never get a *reactor.Reactor to pass in (reactor.New fails), so
// this path is naturally linux/darwin-gated while remaining portable API.
func (o *IO) ViaReactor(r *reactor.Reactor) *ReactorIO {
	return &ReactorIO{io: o, r: r}
}

// Reactor returns the reactor operations are submitted to.
func (o *ReactorIO) Reactor() *reactor.Reactor { return o.r }

// ReadAll reads fd to EOF without dedicating a thread: bytes accumulate on
// readability edges and the future completes when the peer closes (EOF is
// success) or the descriptor errors. The reactor takes ownership of fd and
// closes it when the operation finishes.
func (o *ReactorIO) ReadAll(fd int) *Future[[]byte] {
	var val []byte
	var err error
	comp, complete := executor.NewPendingCompletion()
	f := &Future[[]byte]{rt: o.io.rt, comp: comp, val: &val, err: &err}
	var buf []byte // poll-goroutine confined until OnClose publishes it
	_, rerr := o.r.Register(fd, reactor.HandlerFuncs{
		OnReadable: func(c *reactor.Conn, data []byte) {
			buf = append(buf, data...)
		},
		OnClose: func(c *reactor.Conn, cerr error) {
			if cerr != nil && !errors.Is(cerr, io.EOF) {
				err = cerr
			} else {
				val = buf
			}
			complete(nil)
		},
	})
	if rerr != nil {
		err = rerr
		complete(nil)
	}
	return f
}

// WriteAll writes b to fd without blocking: as much as the kernel accepts
// goes out synchronously, the remainder spills into the connection's
// pending queue and drains on writability edges. The future completes with
// len(b) once every byte is written (the close flushes first), or with the
// write error. The reactor takes ownership of fd.
func (o *ReactorIO) WriteAll(fd int, b []byte) *Future[int] {
	var val int
	var err error
	comp, complete := executor.NewPendingCompletion()
	f := &Future[int]{rt: o.io.rt, comp: comp, val: &val, err: &err}
	done := false // poll-goroutine confined
	c, rerr := o.r.Register(fd, reactor.HandlerFuncs{
		OnClose: func(c *reactor.Conn, cerr error) {
			done = true
			switch {
			case err != nil:
				// The submitted write already failed; keep its error.
			case cerr == nil || errors.Is(cerr, reactor.ErrConnClosed):
				// Orderly close: Close flushed the pending queue first, so
				// every byte reached the kernel.
				val = len(b)
			case errors.Is(cerr, io.EOF):
				err = io.ErrClosedPipe // peer vanished before we finished
			default:
				err = cerr // write error, or reactor stopped mid-flush
			}
			complete(nil)
		},
	})
	if rerr != nil {
		err = rerr
		complete(nil)
		return f
	}
	// Submit on the poll goroutine so the write, any failure, and OnClose
	// all run confined — no shared state races with spontaneous closes.
	o.r.Post(func() {
		if done {
			return // closed (reactor stop, peer error) before we got here
		}
		if werr := c.Write(b); werr != nil {
			err = werr
		}
		// Close flushes the spilled remainder on writability edges before
		// the descriptor is released, then OnClose completes the future.
		c.Close()
	})
	// A failed Post means the reactor is stopping; its teardown closes the
	// registered conn, which fires OnClose and completes the future.
	return f
}
