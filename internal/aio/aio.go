// Package aio implements the paper's stated further work: "integrating
// non-blocking I/O and asynchronous I/O into this model". Blocking I/O
// operations are posted to a dedicated I/O virtual target and return typed
// Futures; a Future can be joined two ways:
//
//   - Get: plain blocking wait (the classic java.util.concurrent.Future);
//   - Await: the paper's await semantics — while the operation is in
//     flight the calling goroutine keeps processing work from its own
//     executor (events on the EDT, tasks on a pool worker) via the
//     runtime's logical barrier, and continues when the result is ready.
//
// With Await, an event handler can read a file or fetch a URL in what reads
// as straight-line code while the UI stays live — no completion-callback
// restructuring.
package aio

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/executor"
)

// IO dispatches blocking I/O operations onto a dedicated virtual target.
type IO struct {
	rt     *core.Runtime
	target string
}

// New creates the I/O virtual target named name with the given number of
// threads on rt and returns its dispatcher. I/O targets are ordinary worker
// targets; they are separate from compute workers so slow devices cannot
// starve computations.
func New(rt *core.Runtime, name string, threads int) (*IO, error) {
	if _, err := rt.CreateWorker(name, threads); err != nil {
		return nil, err
	}
	return &IO{rt: rt, target: name}, nil
}

// Attach wraps an existing virtual target as an I/O dispatcher.
func Attach(rt *core.Runtime, name string) (*IO, error) {
	if rt.Target(name) == nil {
		return nil, fmt.Errorf("aio: %w: %q", core.ErrUnknownTarget, name)
	}
	return &IO{rt: rt, target: name}, nil
}

// Runtime returns the runtime the dispatcher posts through.
func (o *IO) Runtime() *core.Runtime { return o.rt }

// Future is a typed asynchronous result.
type Future[T any] struct {
	rt   *core.Runtime
	comp *executor.Completion
	val  *T
	err  *error
}

// Done returns a channel closed when the result is available.
func (f *Future[T]) Done() <-chan struct{} { return f.comp.Done() }

// IsDone reports whether the result is available without blocking.
func (f *Future[T]) IsDone() bool { return f.comp.Finished() }

// Get blocks until the operation finishes and returns its result. A panic
// in the operation surfaces as a *executor.PanicError.
func (f *Future[T]) Get() (T, error) {
	if cerr := f.comp.Wait(); cerr != nil {
		var zero T
		return zero, cerr
	}
	if *f.err != nil {
		var zero T
		return zero, *f.err
	}
	return *f.val, nil
}

// Await joins the future under the await logical barrier: the calling
// goroutine processes other pending work from its own executor until the
// result is ready (Algorithm 1 lines 13-16 applied to I/O).
func (f *Future[T]) Await() (T, error) {
	f.rt.AwaitDone(f.comp.Done())
	return f.Get()
}

// Go runs op asynchronously on the I/O target and returns its Future. This
// is the primitive the typed helpers below are built on.
func Go[T any](o *IO, op func() (T, error)) *Future[T] {
	var val T
	var err error
	f := &Future[T]{rt: o.rt, val: &val, err: &err}
	comp, ierr := o.rt.Invoke(o.target, core.Nowait, func() {
		val, err = op()
	})
	if ierr != nil {
		f.comp = executor.NewCompletedCompletion(ierr)
		err = ierr
		return f
	}
	f.comp = comp
	return f
}

// ReadAll asynchronously reads r to EOF.
func (o *IO) ReadAll(r io.Reader) *Future[[]byte] {
	return Go(o, func() ([]byte, error) { return io.ReadAll(r) })
}

// WriteAll asynchronously writes b to w and returns the byte count.
func (o *IO) WriteAll(w io.Writer, b []byte) *Future[int] {
	return Go(o, func() (int, error) { return w.Write(b) })
}

// Copy asynchronously copies src to dst.
func (o *IO) Copy(dst io.Writer, src io.Reader) *Future[int64] {
	return Go(o, func() (int64, error) { return io.Copy(dst, src) })
}

// Fetch asynchronously performs an HTTP GET and returns the body. Non-2xx
// statuses are errors.
func (o *IO) Fetch(url string) *Future[[]byte] {
	return Go(o, func() ([]byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return nil, fmt.Errorf("aio: GET %s: status %d", url, resp.StatusCode)
		}
		return body, nil
	})
}

// After returns a Future that completes with the fire time after d. It does
// not occupy an I/O thread while waiting.
func (o *IO) After(d time.Duration) *Future[time.Time] {
	var val time.Time
	var err error
	comp, complete := executor.NewPendingCompletion()
	f := &Future[time.Time]{rt: o.rt, comp: comp, val: &val, err: &err}
	time.AfterFunc(d, func() {
		val = time.Now()
		complete(nil)
	})
	return f
}
