package aio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/testutil/leakcheck"
)

type fixture struct {
	rt  *core.Runtime
	edt *eventloop.Loop
	io  *IO
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	// Registered before the shutdown cleanup below, so it runs after it
	// (cleanups are LIFO): every worker and loop must be gone by then.
	t.Cleanup(leakcheck.Check(t))
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	edt := eventloop.New("edt", reg)
	edt.Start()
	if err := rt.RegisterEDT("edt", edt); err != nil {
		t.Fatal(err)
	}
	o, err := New(rt, "io", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Shutdown(); edt.Stop() })
	return &fixture{rt: rt, edt: edt, io: o}
}

func TestReadAllGet(t *testing.T) {
	f := newFixture(t)
	fut := f.io.ReadAll(strings.NewReader("hello aio"))
	got, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello aio" {
		t.Fatalf("got %q", got)
	}
	if !fut.IsDone() {
		t.Fatal("IsDone = false after Get")
	}
}

func TestWriteAllAndCopy(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	n, err := f.io.WriteAll(&buf, []byte("abc")).Get()
	if err != nil || n != 3 {
		t.Fatalf("WriteAll = %d, %v", n, err)
	}
	var dst bytes.Buffer
	cn, err := f.io.Copy(&dst, strings.NewReader("0123456789")).Get()
	if err != nil || cn != 10 || dst.String() != "0123456789" {
		t.Fatalf("Copy = %d, %v, %q", cn, err, dst.String())
	}
}

func TestErrorPropagation(t *testing.T) {
	f := newFixture(t)
	boom := errors.New("disk on fire")
	_, err := Go(f.io, func() (int, error) { return 0, boom }).Get()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	f := newFixture(t)
	_, err := Go(f.io, func() (int, error) { panic("io bug") }).Get()
	var pe *executor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

// TestAwaitOnEDTKeepsEventsFlowing is the package's reason to exist: an
// event handler awaits a slow read; events arriving meanwhile are handled
// before the continuation.
func TestAwaitOnEDTKeepsEventsFlowing(t *testing.T) {
	f := newFixture(t)
	pr, pw := io.Pipe()

	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	handler := f.edt.Post(func() {
		say("read-start")
		fut := f.io.ReadAll(pr)
		data, err := fut.Await() // EDT pumps while the pipe is open
		if err != nil {
			t.Errorf("Await: %v", err)
		}
		say("read-done:" + string(data))
	})
	// This event arrives while the read is pending; it must be dispatched
	// before the continuation.
	other := f.edt.Post(func() { say("other-event") })
	if err := other.Wait(); err != nil {
		t.Fatal(err)
	}
	pw.Write([]byte("payload"))
	pw.Close()
	if err := handler.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(log) != 3 || log[0] != "read-start" || log[1] != "other-event" || log[2] != "read-done:payload" {
		t.Fatalf("log = %v", log)
	}
}

func TestFetch(t *testing.T) {
	f := newFixture(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "remote body")
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	// The default transport keeps idle connections (and their goroutines)
	// alive long after the test; drop them so the leak sweep stays strict.
	defer http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	base := "http://" + ln.Addr().String()

	body, err := f.io.Fetch(base + "/data").Await()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "remote body" {
		t.Fatalf("body = %q", body)
	}
	if _, err := f.io.Fetch(base + "/missing").Get(); err == nil {
		t.Fatal("404 fetch succeeded")
	}
}

func TestAfter(t *testing.T) {
	f := newFixture(t)
	start := time.Now()
	fired, err := f.io.After(15 * time.Millisecond).Get()
	if err != nil {
		t.Fatal(err)
	}
	if fired.Sub(start) < 15*time.Millisecond {
		t.Fatalf("fired after %v", fired.Sub(start))
	}
}

func TestAttach(t *testing.T) {
	f := newFixture(t)
	o2, err := Attach(f.rt, "io")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o2.ReadAll(strings.NewReader("x")).Get(); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(f.rt, "ghost"); err == nil {
		t.Fatal("Attach to unknown target succeeded")
	}
}

func TestNewDuplicateTarget(t *testing.T) {
	f := newFixture(t)
	if _, err := New(f.rt, "io", 1); err == nil {
		t.Fatal("duplicate io target accepted")
	}
}

func TestDoneChannel(t *testing.T) {
	f := newFixture(t)
	gate := make(chan struct{})
	fut := Go(f.io, func() (int, error) { <-gate; return 7, nil })
	select {
	case <-fut.Done():
		t.Fatal("done before completion")
	default:
	}
	close(gate)
	<-fut.Done()
	v, err := fut.Get()
	if err != nil || v != 7 {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

func TestGoOnShutdownRuntime(t *testing.T) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	o, err := New(rt, "io", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	fut := Go(o, func() (int, error) { return 1, nil })
	if _, err := fut.Get(); err == nil {
		t.Fatal("operation on shut-down runtime succeeded")
	}
	if !fut.IsDone() {
		t.Fatal("rejected future not done")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteAllErrorPropagates(t *testing.T) {
	f := newFixture(t)
	if _, err := f.io.WriteAll(failingWriter{}, []byte("x")).Get(); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestFetchBadURL(t *testing.T) {
	f := newFixture(t)
	if _, err := f.io.Fetch("http://127.0.0.1:1/unreachable").Get(); err == nil {
		t.Fatal("unreachable fetch succeeded")
	}
}
