// Package analysistest drives an ompvet analyzer over a testdata package
// and checks its diagnostics against expectations written in the source,
// in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	tk.InvokeLater(func() { time.Sleep(time.Second) }) // want `time\.Sleep blocks`
//
// Each `want` comment carries one or more backquoted regular expressions;
// every diagnostic reported on that line must match one of them, every
// expectation must be matched by exactly one diagnostic, and diagnostics on
// lines without expectations fail the test. //ompvet:ignore processing runs
// exactly as in cmd/ompvet, so suppression behaviour is testable the same
// way (an unused ignore surfaces as a pass-"ompvet" diagnostic, matchable
// with a want comment).
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE extracts the backquoted expectation patterns of a comment.
var wantRE = regexp.MustCompile("//.*\\bwant\\s+((?:`[^`]*`\\s*)+)")

// expectation is one `want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (relative to the test's working
// directory), runs the analyzer with full ignore processing, and compares
// diagnostics against the `want` expectations in the sources.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dir)
}

// RunAnalyzers is Run for a set of analyzers sharing one testdata package.
func RunAnalyzers(t *testing.T, as []*analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(abs, "ompvet.test/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	requiresTypes := false
	for _, a := range as {
		requiresTypes = requiresTypes || a.RequiresTypes
	}
	if requiresTypes && len(pkg.TypeErrors) > 0 {
		for _, e := range pkg.TypeErrors {
			t.Errorf("testdata must type-check: %v", e)
		}
		t.FailNow()
	}
	findings, err := analysis.RunPackage(pkg, as, true)
	if err != nil {
		t.Fatal(err)
	}

	expects := collectExpectations(t, pkg)
	for _, f := range findings {
		if !matchExpectation(expects, f) {
			t.Errorf("unexpected diagnostic:\n  %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectExpectations scans the package sources for want comments.
func collectExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	for _, chunk := range strings.Split(m[1], "`") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		re, err := regexp.Compile(chunk)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, chunk, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
	return out
}

// matchExpectation consumes the first unmatched expectation on the
// finding's line whose pattern matches.
func matchExpectation(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if e.matched || e.file != f.Pos.Filename || e.line != f.Pos.Line {
			continue
		}
		if e.re.MatchString(f.Message) || e.re.MatchString(fmt.Sprintf("%s: %s", f.Pass, f.Message)) {
			e.matched = true
			return true
		}
	}
	return false
}
