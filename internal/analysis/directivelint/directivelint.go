// Package directivelint implements the ompvet pass that validates //#omp
// directive comments in place. Until now a malformed directive surfaced
// only when cmd/pjc translated the file; this pass runs the very same
// parser (directive.Parse, hardened to reject conflicting scheduling
// clauses and duplicates) over every file and reports:
//
//   - parse and validation errors (unknown directives/clauses, conflicting
//     nowait/name_as/await, duplicate clauses, arity mistakes) as
//     positioned diagnostics;
//   - structural misuse the compiler would also reject: a block directive
//     not followed by a statement on the next line, a for-directive not
//     followed by a for statement, a block directive followed by something
//     other than a structured block, a directive sharing its line with
//     code, and a standalone directive outside any function body.
//
// The pass is purely syntactic so `pjc -vet` and editors can run it on a
// single file without type-checking.
package directivelint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
	"repro/internal/directive"
)

// Analyzer is the directivelint pass.
var Analyzer = &analysis.Analyzer{
	Name: "directivelint",
	Doc:  "validate //#omp directive comments: syntax, clause conflicts, statement attachment",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		lintFile(pass, f)
	}
	return nil
}

// fileShape is the per-file syntactic context directives are checked
// against.
type fileShape struct {
	// stmtByLine maps each statement-list statement's start line to it.
	stmtByLine map[int]ast.Stmt
	// lineEnds maps a line to true when some non-comment node ends on it
	// (to detect directives trailing code on the same line).
	codeLines map[int]bool
	// funcRanges are the body extents of function declarations and
	// literals.
	funcRanges [][2]token.Pos
}

func shapeOf(pass *analysis.Pass, f *ast.File) *fileShape {
	s := &fileShape{stmtByLine: map[int]ast.Stmt{}, codeLines: map[int]bool{}}
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	bind := func(list []ast.Stmt) {
		for _, st := range list {
			if _, dup := s.stmtByLine[line(st.Pos())]; !dup {
				s.stmtByLine[line(st.Pos())] = st
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			bind(v.List)
		case *ast.CaseClause:
			bind(v.Body)
		case *ast.CommClause:
			bind(v.Body)
		case *ast.FuncDecl:
			if v.Body != nil {
				s.funcRanges = append(s.funcRanges, [2]token.Pos{v.Body.Pos(), v.Body.End()})
			}
		case *ast.FuncLit:
			s.funcRanges = append(s.funcRanges, [2]token.Pos{v.Body.Pos(), v.Body.End()})
		}
		if st, ok := n.(ast.Stmt); ok {
			s.codeLines[line(st.End())] = true
		}
		return true
	})
	return s
}

// inFunc reports whether pos lies inside some function body.
func (s *fileShape) inFunc(pos token.Pos) bool {
	for _, r := range s.funcRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// standalone reports whether a directive kind needs no following block.
func standalone(k directive.Kind) bool {
	switch k {
	case directive.KindWait, directive.KindBarrier, directive.KindTaskwait,
		directive.KindTargetUpdate:
		return true
	}
	return false
}

// wantsFor reports whether a directive kind binds to a for statement.
func wantsFor(k directive.Kind) bool {
	return k == directive.KindFor || k == directive.KindParallelFor
}

func lintFile(pass *analysis.Pass, f *ast.File) {
	shape := shapeOf(pass, f)
	pos := func(p token.Pos) token.Position { return pass.Fset.Position(p) }
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !directive.IsDirectiveComment(text) {
				continue
			}
			d, err := directive.Parse(text)
			if err != nil {
				pass.Reportf(c.Pos(), "%v", err)
				continue
			}
			cpos := pos(c.Pos())
			// A directive sharing its line with code never binds: the pjc
			// association rule looks at full-line comments only.
			if shape.codeLines[cpos.Line] {
				pass.Reportf(c.Pos(), "directive %q shares its line with code and will not bind to any statement; put it on its own line", d.Kind)
				continue
			}
			if standalone(d.Kind) {
				if !shape.inFunc(c.Pos()) {
					pass.Reportf(c.Pos(), "standalone directive %q outside a function body", d.Kind)
				}
				continue
			}
			st, ok := shape.stmtByLine[pos(c.End()).Line+1]
			if !ok {
				pass.Reportf(c.Pos(), "directive %q is not followed by a statement on the next line", d.Kind)
				continue
			}
			if wantsFor(d.Kind) {
				if _, isFor := st.(*ast.ForStmt); !isFor {
					pass.Reportf(c.Pos(), "directive %q must be followed by a for statement", d.Kind)
				}
				continue
			}
			if _, isBlock := st.(*ast.BlockStmt); !isBlock {
				pass.Reportf(c.Pos(), "directive %q must be followed by a structured block { ... }", d.Kind)
			}
		}
	}
}
