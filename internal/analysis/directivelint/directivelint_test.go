package directivelint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/directivelint"
)

func TestDirectivelint(t *testing.T) {
	analysistest.Run(t, directivelint.Analyzer, "testdata/lint")
}
