// Package lint seeds directivelint violations: malformed directives,
// clause conflicts, and directives that cannot bind to a statement.
package lint

//#omp barrier // want `standalone directive "barrier" outside a function body`

func bad() {
	//#omp target virtual(edt) nowait await // want `conflicting scheduling clauses "nowait" and "await"`
	{
		work()
	}

	//#omp target virtual(edt) virtual(edt) // want `duplicate clause "virtual"`
	{
		work()
	}

	//#omp bogus // want `unknown directive "bogus"`

	//#omp parallel for // want `directive "parallel for" must be followed by a for statement`
	{
		work()
	}

	//#omp target virtual(v) // want `directive "target" is not followed by a statement on the next line`

	x := 0
	x++ //#omp single // want `directive "single" shares its line with code`

	//#omp task // want `directive "task" must be followed by a structured block`
	x--
	_ = x
}

func work() {}
