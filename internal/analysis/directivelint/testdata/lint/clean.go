package lint

// good holds only well-formed directives; nothing here may be reported.
func good(items []int) {
	//#omp target virtual(worker) name_as(batch)
	{
		work()
	}

	//#omp wait(batch)

	//#omp parallel for schedule(static, 4)
	for i := 0; i < len(items); i++ {
		work()
	}

	//#omp barrier

	//#omp parallel
	{
		//#omp single nowait
		{
			work()
		}
	}
}
