// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, built only on the standard
// library (go/ast, go/parser, go/types). It exists because the paper's
// programming model comes with safety rules the runtime can only catch at
// execution time — EDT confinement of widgets, the never-block-the-EDT
// rule, acyclicity of name_as/wait dependencies — and this repo wants those
// proved in CI, before a program runs.
//
// The framework provides:
//
//   - Analyzer/Pass/Diagnostic — the x/tools/go/analysis surface the four
//     ompvet passes (edtconfine, blockguard, waitgraph, directivelint)
//     program against;
//   - Loader — a package loader that parses with go/parser and type-checks
//     with go/types using the stdlib source importer (module resolution is
//     delegated to the go command via go/build), so no external module is
//     required;
//   - RunPackage — the driver: runs analyzers over a package, converts
//     diagnostics to positioned findings, and applies //ompvet:ignore
//     suppression comments (reporting unused ones, so dead ignores cannot
//     accumulate).
//
// cmd/ompvet is the multichecker binary; internal/analysis/analysistest
// drives the testdata suites.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and //ompvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the pass proves.
	Doc string
	// RequiresTypes marks passes that need type information. They are
	// skipped (with a warning from the driver) on packages that failed to
	// type-check, and by single-file drivers such as `pjc -vet` that run
	// without types.
	RequiresTypes bool
	// Run executes the pass, reporting findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg and TypesInfo are nil when RequiresTypes is false and the driver
	// ran without type-checking (e.g. pjc -vet on a single file).
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a resolved diagnostic: position plus originating pass.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

// String renders the finding in the file:line:col style of go vet.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Pass)
}

// WalkStack traverses root in source order, invoking fn for every node with
// the stack of its ancestors (outermost first, not including n itself).
// Returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // subtree pruned: Inspect sends no matching pop
		}
		stack = append(stack, n)
		return true
	})
}
