// Package debug exercises the capturedebug analyzer: every capture by a
// classified block is described with its home context and access kind.
package debug

import (
	"repro/internal/executor"
	"repro/internal/gui"
)

func captures(tk *gui.Toolkit, pool *executor.WorkerPool) {
	total := 0
	tk.InvokeLater(func() {
		total++ // want `EDT block \(via Toolkit\.InvokeLater\) captures "total" \(home: function scope\) and writes it`
	})
	pool.Post(func() {
		_ = total // want `worker block \(via WorkerPool\.Post\) captures "total" \(home: function scope\) and reads it`
	})
}

func nestedHome(tk *gui.Toolkit, pool *executor.WorkerPool) {
	tk.InvokeLater(func() {
		state := "idle"
		pool.Post(func() { // want `EDT block \(via Toolkit\.InvokeLater\) captures "pool" \(home: function scope\) and reads it`
			_ = state // want `worker block \(via WorkerPool\.Post\) captures "state" \(home: EDT block via Toolkit\.InvokeLater\) and reads it`
		})
	})
}
