// Package write seeds capture enforcement violations: closure-captured
// variables written from a dispatch context other than their home context.
package write

import (
	"repro/internal/executor"
	"repro/internal/gui"
)

// workerWritesEDTState: clicks is EDT state (declared inside an
// InvokeLater block); the nested worker block's increment races with every
// EDT event that touches it.
func workerWritesEDTState(tk *gui.Toolkit, pool *executor.WorkerPool) {
	tk.InvokeLater(func() {
		clicks := 0
		pool.Post(func() {
			clicks++ // want `worker block \(dispatched via WorkerPool\.Post\) writes captured variable "clicks"; its home is the EDT block dispatched via Toolkit\.InvokeLater`
		})
		_ = clicks
	})
}

// edtWritesWorkerState: the reverse direction races just the same.
func edtWritesWorkerState(tk *gui.Toolkit, pool *executor.WorkerPool) {
	pool.Post(func() {
		result := "pending"
		tk.InvokeLater(func() {
			result = "shown" // want `EDT block \(dispatched via Toolkit\.InvokeLater\) writes captured variable "result"; its home is the worker block dispatched via WorkerPool\.Post`
		})
		_ = result
	})
}

// readBack is clean: the worker block only reads the EDT-declared value —
// the capture-a-value-then-republish idiom the paper sanctions.
func readBack(tk *gui.Toolkit, pool *executor.WorkerPool) {
	tk.InvokeLater(func() {
		query := "term"
		pool.Post(func() {
			_ = query
		})
	})
}

// functionScopedHome is clean: total has no definite home context, the
// SwingWorker DoInBackground/Done shape shares function-scoped state under
// the framework's happens-before edge.
func functionScopedHome(tk *gui.Toolkit, pool *executor.WorkerPool) {
	total := 0
	pool.Post(func() {
		total++
	})
	_ = total
}

// sameContext is clean: both blocks run on the EDT, so the write stays in
// its home context.
func sameContext(tk *gui.Toolkit) {
	tk.InvokeLater(func() {
		phase := "start"
		tk.InvokeLater(func() {
			phase = "next"
		})
		_ = phase
	})
}
