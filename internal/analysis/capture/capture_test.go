package capture_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/capture"
)

func TestEnforcement(t *testing.T) {
	analysistest.Run(t, capture.Analyzer, "testdata/write")
}

func TestDebug(t *testing.T) {
	analysistest.Run(t, capture.DebugAnalyzer, "testdata/debug")
}
