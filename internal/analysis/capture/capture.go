// Package capture analyzes closure free variables across dispatch
// boundaries: for every function literal the dispatch classifier can place
// on a definite executor (EDT or worker), it computes the variables the
// literal captures from enclosing scopes and classifies each captured
// variable's home dispatch context — the context of the scope that
// declared it.
//
// The enforcement analyzer flags the unsynchronized cross-context writes
// this exposes: a variable declared inside an EDT-dispatched block is EDT
// state (the runtime's confinement sanitizer would stamp it with the EDT's
// goroutine), so a nested worker block writing it races with every EDT
// event that touches it — and vice versa. Reads are left alone: the
// capture-a-value-then-republish idiom (worker computes, EDT block reads
// the result it was handed) is the paper's sanctioned pattern, and
// flagging it would bury the real races. Variables declared at function
// scope (no definite home) are likewise left alone — SwingWorker's
// DoInBackground/Done pairs share function-scoped state under the
// framework's happens-before edge.
package capture

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dispatch"
)

// A Capture is one variable captured by one dispatched literal.
type Capture struct {
	// Lit is the capturing literal; Kind/Site say where it runs.
	Lit  *ast.FuncLit
	Kind dispatch.Kind
	Site string
	// Obj is the captured variable; HomeKind/HomeSite classify the dispatch
	// context of its declaring scope (Unknown for function-scoped or
	// package-scoped variables).
	Obj      *types.Var
	HomeKind dispatch.Kind
	HomeSite string
	// Use is the first use inside the literal; Written reports whether any
	// use inside the literal assigns to the variable (assignment LHS or
	// inc/dec).
	Use     *ast.Ident
	Written bool
	// WritePos is the position of the first writing use (valid when
	// Written).
	WritePos token.Pos
}

// Captures computes every capture by a definitely-classified literal in
// the package. The classifier must come from the same pass.
func Captures(pass *analysis.Pass, c *dispatch.Classifier) []Capture {
	if pass.TypesInfo == nil {
		return nil
	}
	// First pass: the home dispatch context of every local variable, keyed
	// by the defining identifier's object. A variable's home is the
	// classification of the innermost classified literal enclosing its
	// declaration.
	homeKind := map[*types.Var]dispatch.Kind{}
	homeSite := map[*types.Var]string{}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if k, site := c.Context(stack); k != dispatch.Unknown {
				homeKind[v] = k
				homeSite[v] = site
			}
			return true
		})
	}

	var caps []Capture
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			kind, site := c.ClassifyLit(lit, stack)
			if kind == dispatch.Unknown {
				return true
			}
			for _, cap := range litCaptures(pass, lit) {
				cap.Kind, cap.Site = kind, site
				cap.HomeKind = homeKind[cap.Obj]
				cap.HomeSite = homeSite[cap.Obj]
				caps = append(caps, cap)
			}
			return true
		})
	}
	return caps
}

// litCaptures finds the free variables of one literal: identifiers used
// inside it whose object is a local variable declared outside it.
func litCaptures(pass *analysis.Pass, lit *ast.FuncLit) []Capture {
	byObj := map[*types.Var]*Capture{}
	var order []*types.Var
	analysis.WalkStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-scoped variables are not captures (and have no home
		// context); a variable declared inside the literal is not free.
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		cap := byObj[v]
		if cap == nil {
			cap = &Capture{Obj: v, Use: id}
			byObj[v] = cap
			order = append(order, v)
		}
		if !cap.Written && writesTo(id, stack) {
			cap.Written = true
			cap.WritePos = id.Pos()
		}
		return true
	})
	out := make([]Capture, 0, len(order))
	for _, v := range order {
		out = append(out, *byObj[v])
	}
	return out
}

// writesTo reports whether this use of id assigns to it: an assignment
// left-hand side or an inc/dec statement.
func writesTo(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == id {
				return true
			}
		}
	case *ast.IncDecStmt:
		return parent.X == id
	}
	return false
}

// Analyzer is the enforcement pass: it flags writes to a captured variable
// from a definite dispatch context different from the variable's definite
// home context.
var Analyzer = &analysis.Analyzer{
	Name:          "capture",
	Doc:           "flag writes to captured variables from a dispatch context other than their home context",
	RequiresTypes: true,
	Run:           run,
}

func run(pass *analysis.Pass) error {
	c := dispatch.NewClassifier(pass)
	for _, cap := range Captures(pass, c) {
		if !cap.Written || cap.HomeKind == dispatch.Unknown || cap.HomeKind == cap.Kind {
			continue
		}
		pass.Reportf(cap.WritePos,
			"%s block (dispatched via %s) writes captured variable %q; its home is the %s block dispatched via %s, and the unsynchronized write races with it — republish the value through a dispatch instead",
			cap.Kind, cap.Site, cap.Obj.Name(), cap.HomeKind, cap.HomeSite)
	}
	return nil
}

// DebugAnalyzer reports every capture by a classified literal — the raw
// material of the enforcement pass, for `ompvet -callgraph` output and the
// testdata suite.
var DebugAnalyzer = &analysis.Analyzer{
	Name:          "capturedebug",
	Doc:           "report every variable captured by a dispatched block, with its home context (debug output)",
	RequiresTypes: true,
	Run:           runDebug,
}

func runDebug(pass *analysis.Pass) error {
	c := dispatch.NewClassifier(pass)
	for _, cap := range Captures(pass, c) {
		home := "function scope"
		if cap.HomeKind != dispatch.Unknown {
			home = cap.HomeKind.String() + " block via " + cap.HomeSite
		}
		access := "reads"
		if cap.Written {
			access = "writes"
		}
		pass.Reportf(cap.Use.Pos(),
			"%s block (via %s) captures %q (home: %s) and %s it",
			cap.Kind, cap.Site, cap.Obj.Name(), home, access)
	}
	return nil
}
