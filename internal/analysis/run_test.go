package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSource drops one file into a temp dir and parses it (no types).
func writeSource(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := ParseFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// reportCalls is a toy pass reporting every call expression by callee name.
var reportCalls = &Analyzer{
	Name: "callspy",
	Doc:  "report every call (test helper)",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						p.Reportf(call.Pos(), "call to %s", id.Name)
					}
				}
				return true
			})
		}
		return nil
	},
}

func run(t *testing.T, pkg *Package, strict bool) []Finding {
	t.Helper()
	fs, err := RunPackage(pkg, []*Analyzer{reportCalls}, strict)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestIgnoreSilencesExactlyOne(t *testing.T) {
	pkg := writeSource(t, `package main

func f()

func main() {
	f() //ompvet:ignore callspy demo
	f()
}
`)
	fs := run(t, pkg, true)
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed call", fs)
	}
	if fs[0].Pos.Line != 7 {
		t.Fatalf("surviving finding at line %d, want 7", fs[0].Pos.Line)
	}
}

func TestIgnoreOnLineAbove(t *testing.T) {
	pkg := writeSource(t, `package main

func f()

func main() {
	//ompvet:ignore callspy the next line is fine
	f()
}
`)
	if fs := run(t, pkg, true); len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	pkg := writeSource(t, `package main

//ompvet:ignore callspy nothing here

func main() {}
`)
	fs := run(t, pkg, true)
	if len(fs) != 1 || fs[0].Pass != "ompvet" || !strings.Contains(fs[0].Message, "unused") {
		t.Fatalf("findings = %v, want one unused-ignore report", fs)
	}
}

func TestUnknownPassStrictVsLenient(t *testing.T) {
	const src = `package main

//ompvet:ignore edtconfine aimed at a pass this driver does not run

func main() {}
`
	pkg := writeSource(t, src)
	if fs := run(t, pkg, false); len(fs) != 0 {
		t.Fatalf("lenient findings = %v, want none", fs)
	}
	pkg = writeSource(t, src)
	fs := run(t, pkg, true)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, `unknown pass "edtconfine"`) {
		t.Fatalf("strict findings = %v, want one unknown-pass report", fs)
	}
}

func TestFindingsSortedAndRendered(t *testing.T) {
	pkg := writeSource(t, `package main

func f()

func main() { f(); f() }
`)
	fs := run(t, pkg, true)
	if len(fs) != 2 || fs[0].Pos.Column >= fs[1].Pos.Column {
		t.Fatalf("findings not in column order: %v", fs)
	}
	s := fs[0].String()
	if !strings.HasSuffix(s, "call to f (callspy)") || !strings.Contains(s, "main.go:5:") {
		t.Fatalf("Finding.String = %q", s)
	}
}

func TestWalkStackStacksAndPruning(t *testing.T) {
	pkg := writeSource(t, `package main

func main() {
	func() {
		_ = 1
	}()
	_ = 2
}
`)
	sawLitChild := false
	WalkStack(pkg.Files[0], func(n ast.Node, stack []ast.Node) bool {
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				sawLitChild = true
			}
		}
		return true
	})
	if !sawLitChild {
		t.Fatal("never saw a node with a FuncLit ancestor")
	}

	// Pruning a FuncLit must hide its body but keep traversal balanced.
	visited := 0
	WalkStack(pkg.Files[0], func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				t.Fatal("visited a node inside a pruned subtree")
			}
		}
		visited++
		return true
	})
	if visited == 0 {
		t.Fatal("pruned walk visited nothing")
	}
}

func TestParseFilesErrors(t *testing.T) {
	if _, err := ParseFiles(nil); err == nil {
		t.Fatal("empty file list accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(path, []byte("package main\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFiles([]string{path}); err == nil {
		t.Fatal("syntax error not surfaced")
	}
}
