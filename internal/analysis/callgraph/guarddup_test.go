package callgraph_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/callgraph"
)

func TestGuardDup(t *testing.T) {
	analysistest.Run(t, callgraph.Analyzer, "testdata/guarddup")
}
