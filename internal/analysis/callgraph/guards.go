package callgraph

// Thread-context guards: the runtime's own idiom for Algorithm 1's line 6
// ("is the encountering thread already a member of this virtual target's
// thread group?") is an Owns() check — Loop.Owns, Reactor.Owns,
// WorkerPool.Owns, Toolkit.IsDispatchThread. Code written against that
// answer is context-conditional, and the summaries model it:
//
//   - a blocking operation reached only when the guard is FALSE (inside
//     `if !x.Owns() {...}`, in the else branch of `if x.Owns()`, or after
//     `if x.Owns() { return }`) never runs on the confined goroutine that
//     owns x — reactor.Stop's wg.Wait is the canonical case — so it is not
//     a Blocks effect;
//   - a confined-widget mutation reached only when the guard is TRUE
//     (inside `if tk.IsDispatchThread() {...}`, or after
//     `if !x.Owns() { return }`) only ever runs on the EDT, so it is not a
//     Mutates effect.
//
// The guard object is matched by method name alone, not by identity with
// the block's eventual dispatch target — a deliberate trade: the repo's
// runtime always guards on the executor it is about to block on, and
// demanding alias proof would reintroduce every false positive this
// modelling exists to remove.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dispatch"
)

// guardRegion is a source range with a known thread-context polarity.
type guardRegion struct{ lo, hi token.Pos }

func (r guardRegion) contains(p token.Pos) bool { return r.lo <= p && p < r.hi }

// guardSet holds the context-conditional regions of one function body.
type guardSet struct {
	// onHomeR are regions that execute only when the guarded executor IS
	// the current goroutine's context.
	onHomeR []guardRegion
	// offHomeR are regions that execute only when it is NOT.
	offHomeR []guardRegion
}

func (g guardSet) onHome(p token.Pos) bool {
	for _, r := range g.onHomeR {
		if r.contains(p) {
			return true
		}
	}
	return false
}

func (g guardSet) offHome(p token.Pos) bool {
	for _, r := range g.offHomeR {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// ownsGuards collects the guard regions of one function body.
func ownsGuards(c *dispatch.Classifier, body *ast.BlockStmt) guardSet {
	var g guardSet
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		polarity, ok := ownsCond(c, ifStmt.Cond)
		if !ok {
			return true
		}
		thenRegion := guardRegion{ifStmt.Body.Pos(), ifStmt.Body.End()}
		if polarity {
			g.onHomeR = append(g.onHomeR, thenRegion)
		} else {
			g.offHomeR = append(g.offHomeR, thenRegion)
		}
		if elseBlock, ok := ifStmt.Else.(*ast.BlockStmt); ok {
			elseRegion := guardRegion{elseBlock.Pos(), elseBlock.End()}
			if polarity {
				g.offHomeR = append(g.offHomeR, elseRegion)
			} else {
				g.onHomeR = append(g.onHomeR, elseRegion)
			}
		}
		// `if x.Owns() { ...; return }` makes everything after the if in
		// the enclosing block the opposite polarity.
		if terminates(ifStmt.Body) && len(stack) > 0 {
			if parent, ok := stack[len(stack)-1].(*ast.BlockStmt); ok {
				tail := guardRegion{ifStmt.End(), parent.End()}
				if polarity {
					g.offHomeR = append(g.offHomeR, tail)
				} else {
					g.onHomeR = append(g.onHomeR, tail)
				}
			}
		}
		return true
	})
	return g
}

// ownsCond matches a condition that is exactly a thread-context query,
// possibly negated: x.Owns(), tk.IsDispatchThread(), or ! of either.
// Returns the polarity (true: the then-branch runs on the home context).
func ownsCond(c *dispatch.Classifier, cond ast.Expr) (polarity, ok bool) {
	cond = ast.Unparen(cond)
	if not, isNot := cond.(*ast.UnaryExpr); isNot && not.Op == token.NOT {
		p, ok := ownsCond(c, not.X)
		return !p, ok
	}
	call, isCall := cond.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return false, false
	}
	fn := c.Callee(call)
	if fn == nil || fn.Name() != "Owns" && fn.Name() != "IsDispatchThread" {
		return false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return false, false
	}
	return true, true
}

// terminates reports whether a block always leaves the enclosing function
// (its last statement is a return or a panic call).
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
