// Package callgraph builds a per-package static call graph and
// bounded-depth effect summaries over it, turning the syntactic ompvet
// passes interprocedural: edtconfine and blockguard consult a function's
// summary to see through helper chains — a worker block calling
// updateStatus calling (*gui.Label).SetText is flagged at the call site
// with the full path, not silently missed because the mutation is two
// frames away.
//
// The graph is CHA-flavoured but deliberately modest: nodes are the
// package's own function and method declarations, edges are static calls
// resolved through go/types (an *ast.Ident or *ast.SelectorExpr whose Uses
// entry is a *types.Func declared in this package). Indirect calls —
// through interface values, function-typed variables, or cross-package
// helpers — contribute no edge and no effect: the same "unknown stays
// unknown" bargain the dispatch classifier makes, trading recall for zero
// false positives on clean code.
//
// Summaries are memoized per function and composed bottom-up. Three effect
// classes are tracked, each answering one pass's question:
//
//   - Blocks: calls the EDT must never make (time.Sleep, Completion.Wait,
//     InvokeAndWait, mode-Wait worker invokes, bare channel receives);
//   - Mutates: confined gui widget mutators;
//   - Dispatches: calls that hand work to another executor.
//
// Every effect carries the helper path from the summarized function to the
// leaf. Composition is depth-bounded (MaxDepth): an effect whose path
// would exceed the bound is dropped and the summary is marked Truncated,
// as is any summary involved in recursion. Truncation is loud, never
// silent — the passes report a conservative "cannot prove" finding when a
// definite EDT/worker context calls a truncated helper, so chains longer
// than the bound degrade to an unknown-finding, not to a clean bill.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dispatch"
)

// MaxDepth bounds how many helper frames a summary follows. Effects deeper
// than this are dropped and the summary is marked Truncated.
const MaxDepth = 5

// Effect is one leaf operation reachable from a function, with the helper
// chain that reaches it.
type Effect struct {
	// Desc describes the leaf operation (e.g. "time.Sleep",
	// "(*gui.Label).SetText", "WorkerPool.Post").
	Desc string
	// Pos is the position of the leaf call itself.
	Pos token.Pos
	// Path is the chain of same-package callees from the summarized
	// function (exclusive) to the leaf (exclusive): empty for a direct
	// effect, ["helperA", "helperB"] when the leaf sits two frames down.
	Path []string
}

// PathString renders the helper chain for diagnostics ("" when direct).
func (e Effect) PathString() string { return strings.Join(e.Path, " > ") }

// Summary is the bounded-depth effect set of one function.
type Summary struct {
	// Blocks lists reachable blocking operations (the never-block rule).
	Blocks []Effect
	// Mutates lists reachable confined-widget mutations (the confinement
	// rule).
	Mutates []Effect
	// Dispatches lists reachable dispatch sites (work handed to another
	// executor).
	Dispatches []Effect
	// Truncated reports that the summary may be incomplete: a helper chain
	// exceeded MaxDepth or ran into recursion. Passes must treat a
	// truncated summary as "cannot prove clean", not as clean.
	Truncated bool
}

// Empty reports whether the summary has no effects and no truncation.
func (s *Summary) Empty() bool {
	return len(s.Blocks) == 0 && len(s.Mutates) == 0 && len(s.Dispatches) == 0 && !s.Truncated
}

// Graph is the package call graph plus the summary cache.
type Graph struct {
	pass *analysis.Pass
	c    *dispatch.Classifier

	// decls maps each function object declared in this package to its
	// declaration; the edge relation is implicit (resolved per call).
	decls map[*types.Func]*ast.FuncDecl

	sums    map[*types.Func]*Summary
	inProg  map[*types.Func]bool
	callees map[*types.Func][]*types.Func // static call edges, for Callees
}

// New builds the call graph for pass's package. The classifier supplies
// callee resolution and the leaf-effect tables; both must come from the
// same pass.
func New(pass *analysis.Pass, c *dispatch.Classifier) *Graph {
	g := &Graph{
		pass:    pass,
		c:       c,
		decls:   map[*types.Func]*ast.FuncDecl{},
		sums:    map[*types.Func]*Summary{},
		inProg:  map[*types.Func]bool{},
		callees: map[*types.Func][]*types.Func{},
	}
	if pass.TypesInfo == nil {
		return g
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	return g
}

// Local returns the declaration of fn when it is declared in this package
// (nil otherwise): the edge test of the call graph.
func (g *Graph) Local(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	return g.decls[fn]
}

// Callees returns the static same-package callees of fn, in source order,
// deduplicated. Only meaningful after SummaryOf(fn) has run.
func (g *Graph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Functions returns every function declared in the package, in source
// order (file order, then position).
func (g *Graph) Functions() []*types.Func {
	fns := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		fns = append(fns, fn)
	}
	// Deterministic order for diagnostics: by declaration position.
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && g.decls[fns[j]].Pos() < g.decls[fns[j-1]].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
	return fns
}

// SummaryOf computes (and memoizes) the bounded-depth effect summary of a
// function declared in this package. Unknown functions get an empty
// summary.
func (g *Graph) SummaryOf(fn *types.Func) *Summary {
	if s, ok := g.sums[fn]; ok {
		return s
	}
	decl := g.decls[fn]
	if decl == nil {
		return &Summary{}
	}
	if g.inProg[fn] {
		// Recursion: the cycle member being recomputed reports itself
		// truncated; the caller composing it inherits the mark.
		return &Summary{Truncated: true}
	}
	g.inProg[fn] = true
	s := g.summarize(fn, decl)
	delete(g.inProg, fn)
	g.sums[fn] = s
	return s
}

// summarize walks one function body collecting direct effects and composing
// callee summaries.
func (g *Graph) summarize(fn *types.Func, decl *ast.FuncDecl) *Summary {
	s := &Summary{}
	// Each distinct callee composes each effect class at most once — but
	// per class, not per callee: a guarded call site strips a class, and a
	// later unguarded call to the same callee must still contribute it
	// (`if !p.Owns() { helper() }; helper()` keeps helper's Blocks).
	type composed struct{ blocks, mutates bool }
	seen := map[*types.Func]*composed{}
	guards := ownsGuards(g.c, decl.Body)
	analysis.WalkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !immediatelyInvoked(lit, stack) {
			// A nested literal's effects belong to whatever context the
			// literal is dispatched into, not to this function's callers —
			// unless it is invoked on the spot, in which case it is just an
			// inline scope.
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			g.direct(s, n, guards)
			callee := g.c.Callee(n)
			if callee == nil || g.decls[callee] == nil || callee == fn {
				return true
			}
			st, first := seen[callee], false
			if st == nil {
				st, first = &composed{}, true
				seen[callee] = st
				g.callees[fn] = append(g.callees[fn], callee)
			}
			cs := g.SummaryOf(callee)
			// A guard around the call site guards everything reached
			// through it.
			add := &Summary{Truncated: cs.Truncated}
			if !guards.offHome(n.Pos()) && !st.blocks {
				add.Blocks, st.blocks = cs.Blocks, true
			}
			if !guards.onHome(n.Pos()) && !st.mutates {
				add.Mutates, st.mutates = cs.Mutates, true
			}
			if first {
				add.Dispatches = cs.Dispatches
			}
			if first || len(add.Blocks) > 0 || len(add.Mutates) > 0 {
				g.compose(s, callee, add)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideSelect(stack) && !guards.offHome(n.Pos()) {
				s.Blocks = append(s.Blocks, Effect{Desc: "channel receive", Pos: n.Pos()})
			}
		}
		return true
	})
	return s
}

// direct records the leaf effects of one call, honouring the function's
// thread-context guards.
func (g *Graph) direct(s *Summary, call *ast.CallExpr, guards guardSet) {
	if desc, ok := g.c.BlockingCall(call); ok && !guards.offHome(call.Pos()) {
		s.Blocks = append(s.Blocks, Effect{Desc: desc, Pos: call.Pos()})
	}
	if widget, method, ok := g.c.ConfinedMutator(call); ok && !guards.onHome(call.Pos()) {
		s.Mutates = append(s.Mutates, Effect{
			Desc: "(*gui." + widget + ")." + method, Pos: call.Pos(),
		})
	}
	if desc, ok := g.c.DispatchSite(call); ok {
		s.Dispatches = append(s.Dispatches, Effect{Desc: desc, Pos: call.Pos()})
	}
}

// compose folds callee's summary into s, prefixing paths with the callee
// name and enforcing the depth bound.
func (g *Graph) compose(s *Summary, callee *types.Func, cs *Summary) {
	if cs.Truncated {
		s.Truncated = true
	}
	s.Blocks = composeEffects(s.Blocks, callee.Name(), cs.Blocks, &s.Truncated)
	s.Mutates = composeEffects(s.Mutates, callee.Name(), cs.Mutates, &s.Truncated)
	s.Dispatches = composeEffects(s.Dispatches, callee.Name(), cs.Dispatches, &s.Truncated)
}

func composeEffects(dst []Effect, step string, src []Effect, truncated *bool) []Effect {
	for _, e := range src {
		if len(e.Path)+1 > MaxDepth {
			*truncated = true
			continue
		}
		path := make([]string, 0, len(e.Path)+1)
		path = append(path, step)
		path = append(path, e.Path...)
		dst = append(dst, Effect{Desc: e.Desc, Pos: e.Pos, Path: path})
	}
	return dst
}

// immediatelyInvoked reports whether lit is called on the spot
// (func(){...}()), making it an inline scope rather than a dispatched
// block.
func immediatelyInvoked(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != lit {
		return false
	}
	// go func(){...}() dispatches to a fresh goroutine: not inline.
	if len(stack) >= 2 {
		if _, isGo := stack[len(stack)-2].(*ast.GoStmt); isGo {
			return false
		}
	}
	return true
}

// insideSelect reports whether the node is within a select statement (the
// non-blocking way to touch channels), without escaping the current
// function body.
func insideSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.SelectStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// Analyzer is the debug pass: it reports every non-empty function summary
// as diagnostics. It is not part of the default ompvet suite — it powers
// `ompvet -callgraph` and the testdata suite; its findings describe the
// analysis, not violations.
var Analyzer = &analysis.Analyzer{
	Name:          "callgraph",
	Doc:           "report bounded-depth call-graph effect summaries (debug output for ompvet -callgraph)",
	RequiresTypes: true,
	Run:           runDebug,
}

func runDebug(pass *analysis.Pass) error {
	c := dispatch.NewClassifier(pass)
	g := New(pass, c)
	for _, fn := range g.Functions() {
		s := g.SummaryOf(fn)
		if s.Empty() {
			continue
		}
		pos := g.decls[fn].Name.Pos()
		for _, e := range s.Blocks {
			pass.Reportf(pos, "%s may block: %s%s", fn.Name(), e.Desc, via(e))
		}
		for _, e := range s.Mutates {
			pass.Reportf(pos, "%s mutates confined state: %s%s", fn.Name(), e.Desc, via(e))
		}
		for _, e := range s.Dispatches {
			pass.Reportf(pos, "%s dispatches: %s%s", fn.Name(), e.Desc, via(e))
		}
		if s.Truncated {
			pass.Reportf(pos, "%s: summary truncated at depth %d; deeper effects are unknown", fn.Name(), MaxDepth)
		}
	}
	return nil
}

func via(e Effect) string {
	if len(e.Path) == 0 {
		return ""
	}
	return " (call path " + e.PathString() + ")"
}
