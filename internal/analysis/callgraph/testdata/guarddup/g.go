package guarddup

import (
	"time"

	"repro/internal/executor"
)

func helper() { // want `helper may block: time\.Sleep`
	time.Sleep(time.Millisecond)
}

// caller calls helper twice: once guarded off-home (blocks stripped), once
// unguarded. The unguarded call should keep the Blocks effect.
func caller(p *executor.WorkerPool) { // want `caller may block: time\.Sleep \(call path helper\)`
	if !p.Owns() {
		helper()
	}
	helper()
}
