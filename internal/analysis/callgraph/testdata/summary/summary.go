// Package summary exercises the bounded-depth effect summaries the debug
// analyzer reports: direct effects, helper-chain paths, the MaxDepth
// truncation fallback, recursion, thread-context guards, and the
// nested-literal ownership rule. Diagnostics land on the declaring
// function's name.
package summary

import (
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/gui"
)

// --- direct effects and short chains -------------------------------------

func sleeper() { // want `sleeper may block: time\.Sleep`
	time.Sleep(time.Millisecond)
}

func viaOne() { // want `viaOne may block: time\.Sleep \(call path sleeper\)`
	sleeper()
}

func viaTwo() { // want `viaTwo may block: time\.Sleep \(call path viaOne > sleeper\)`
	viaOne()
}

func paint(l *gui.Label) { // want `paint mutates confined state: \(\*gui\.Label\)\.SetText`
	l.SetText("painted")
}

func paintVia(l *gui.Label) { // want `paintVia mutates confined state: \(\*gui\.Label\)\.SetText \(call path paint\)`
	paint(l)
}

func receive(ch chan int) int { // want `receive may block: channel receive`
	return <-ch
}

// selectRecv polls inside a select: the sanctioned non-blocking idiom.
func selectRecv(ch chan int) {
	select {
	case <-ch:
	default:
	}
}

// --- dispatches and nested-literal ownership -----------------------------

// dispatchOnly hands the sleep to the pool: the literal's effects belong to
// the pool's context, not to dispatchOnly's callers — only the dispatch
// itself is an effect here.
func dispatchOnly(p *executor.WorkerPool) { // want `dispatchOnly dispatches: WorkerPool\.Post`
	p.Post(func() {
		time.Sleep(time.Millisecond)
	})
}

// inline invokes its literal on the spot, so the literal is just an inline
// scope and the sleep is a direct effect.
func inline() { // want `inline may block: time\.Sleep`
	func() {
		time.Sleep(time.Millisecond)
	}()
}

// --- thread-context guards -----------------------------------------------

// guardedWait blocks only when the caller is NOT the pool's own context:
// the Owns guard removes the Blocks effect (reactor.Stop's shape).
func guardedWait(p *executor.WorkerPool, wg *sync.WaitGroup) {
	if p.Owns() {
		return
	}
	wg.Wait()
}

// guardedPaint mutates only ON the dispatch thread, where mutation is
// legal: the guard removes the Mutates effect.
func guardedPaint(tk *gui.Toolkit, l *gui.Label) {
	if tk.IsDispatchThread() {
		l.SetText("safe")
	}
}

// --- recursion -----------------------------------------------------------

// countdown is self-recursive; a self-call adds no frames, so the direct
// effect is the whole summary — no truncation.
func countdown(n int) { // want `countdown may block: time\.Sleep`
	if n == 0 {
		return
	}
	time.Sleep(time.Millisecond)
	countdown(n - 1)
}

// ping/pong recurse mutually: no fixpoint at bounded depth, so both
// summaries are honestly truncated instead of silently empty.
func ping(n int) { // want `ping: summary truncated at depth 5; deeper effects are unknown`
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { // want `pong: summary truncated at depth 5; deeper effects are unknown`
	ping(n - 1)
}

// --- the depth bound -----------------------------------------------------

// c1..c7: the sleep sits six frames below c1. c2 still sees it (path length
// exactly MaxDepth); c1 drops the effect and reports truncation — the
// depth-bound fallback that keeps long chains conservative, never silent.

func c1(d time.Duration) { // want `c1: summary truncated at depth 5; deeper effects are unknown`
	c2(d)
}

func c2(d time.Duration) { // want `c2 may block: time\.Sleep \(call path c3 > c4 > c5 > c6 > c7\)`
	c3(d)
}

func c3(d time.Duration) { // want `c3 may block: time\.Sleep \(call path c4 > c5 > c6 > c7\)`
	c4(d)
}

func c4(d time.Duration) { // want `c4 may block: time\.Sleep \(call path c5 > c6 > c7\)`
	c5(d)
}

func c5(d time.Duration) { // want `c5 may block: time\.Sleep \(call path c6 > c7\)`
	c6(d)
}

func c6(d time.Duration) { // want `c6 may block: time\.Sleep \(call path c7\)`
	c7(d)
}

func c7(d time.Duration) { // want `c7 may block: time\.Sleep`
	time.Sleep(d)
}
