package wait

import "repro/internal/core"

// directiveSelfWait seeds the same self-loop through //#omp comments: the
// wait(chunks) directive executes inside the very block that name_as(chunks)
// schedules on encoder.
func directiveSelfWait(rt *core.Runtime) {
	//#omp target virtual(encoder) name_as(chunks)
	{
		//#omp wait(chunks) // want `target "encoder" waits on tag "chunks" whose blocks are scheduled on "encoder" itself`
		_ = rt
	}
}

// directiveClean is the legitimate pipeline shape: compute waits on a tag
// scheduled on a different target, and no target ever waits back.
func directiveClean(rt *core.Runtime) {
	//#omp target virtual(io) name_as(load)
	{
		_ = rt
	}
	//#omp target virtual(compute)
	{
		//#omp wait(load)
		_ = rt
	}
}
