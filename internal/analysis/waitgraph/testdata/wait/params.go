// Parameter propagation (PR 9): tags that flow through one call hop — a
// helper waiting on (or defining) whichever tag its caller names — are
// materialized at the constant-string call site, so region attribution and
// the cycle/undefined checks see through the helper.
package wait

import "repro/internal/core"

// joinOn waits on whichever tag its caller names.
func joinOn(rt *core.Runtime, tag string) {
	rt.WaitTag(tag)
}

// spawnOn defines a tag through its parameter: InvokeNamed's tag argument.
func spawnOn(rt *core.Runtime, tag string) {
	rt.InvokeNamed("helperPool", tag, func() {})
}

// paramUndefined: the tag reaches WaitTag through joinOn, but nothing in
// the package defines it.
func paramUndefined(rt *core.Runtime) {
	joinOn(rt, "ghost") // want `wait on tag "ghost", but no name_as\(ghost\) directive or InvokeNamed/TargetBlock site defines it`
}

// paramDefined: spawnOn defines the tag through its parameter, so the
// joinOn wait resolves cleanly.
func paramDefined(rt *core.Runtime) {
	spawnOn(rt, "spawned")
	joinOn(rt, "spawned")
}

// paramSelfLoop: inside helperPool's own region, joining a tag scheduled
// on helperPool is the one-pool self-deadlock — seen through the call hop
// because the materialized wait sits at the call site, inside the region.
func paramSelfLoop(rt *core.Runtime) {
	rt.InvokeNamed("helperPool", "phase", func() {
		joinOn(rt, "phase") // want `target "helperPool" waits on tag "phase" whose blocks are scheduled on "helperPool" itself`
	})
}
