// Package wait seeds waitgraph violations: wait cycles between virtual
// targets, self-waits, and waits on tags nothing defines.
package wait

import "repro/internal/core"

// cycle: alpha's blocks wait on a tag scheduled on beta while beta's blocks
// wait on a tag scheduled on alpha — both pools can park with nobody left
// to run the tagged work.
func cycle(rt *core.Runtime) {
	rt.InvokeNamed("alpha", "tagA", func() {
		rt.WaitTag("tagB") // want `potential deadlock: wait cycle among virtual targets`
	})
	rt.InvokeNamed("beta", "tagB", func() {
		rt.WaitTag("tagA")
	})
}

// selfLoop: a member of render's pool suspends waiting for work only that
// same pool can run.
func selfLoop(rt *core.Runtime) {
	rt.InvokeNamed("render", "frame", func() {
		rt.WaitTag("frame") // want `target "render" waits on tag "frame" whose blocks are scheduled on "render" itself`
	})
}

// undefined: WaitTag on an unknown tag returns immediately — a silent no-op
// that is almost certainly a typo.
func undefined(rt *core.Runtime) {
	rt.WaitTag("nosuch") // want `wait on tag "nosuch", but no name_as\(nosuch\) directive or InvokeNamed/TargetBlock site defines it`
}
