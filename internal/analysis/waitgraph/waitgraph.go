// Package waitgraph implements the ompvet pass that builds the static
// wait-for graph of a package and reports cycles — the deadlocks the
// paper's Algorithm 1 cannot side-step. Thread-context awareness makes a
// target block *self*-dispatch safe, and the await logical barrier keeps an
// awaiting thread useful, but a plain wait(tag) is a suspension: if target
// A's blocks wait on a tag scheduled on target B while B's blocks wait on a
// tag scheduled on A, both pools can end up entirely parked in WaitTag with
// nobody left to run the tagged blocks.
//
// Nodes are virtual-target names. The pass gathers:
//
//   - tag definitions: `//#omp target virtual(T) name_as(tag)` directives,
//     Runtime.InvokeNamed(T, tag, ...) and pyjama.TargetBlock(T, NameAs,
//     tag, ...) call sites with constant arguments;
//   - waits: `//#omp wait(tag)` directives, Runtime.WaitTag/Wait and
//     pyjama.WaitFor call sites, attributed to the innermost enclosing
//     target block (directive block or dispatched function literal);
//
// and reports (1) wait cycles, including a target waiting on a tag
// scheduled on itself, and (2) waits on tags no site ever defines —
// Runtime.WaitTag returns immediately on an unknown tag, so such a wait is
// a silent no-op and almost certainly a typo.
//
// Tags travel one level through function parameters (PR 9): a helper
// `func join(tag string) { rt.WaitTag(tag) }` makes every `join("phase")`
// call a wait on "phase" attributed at the call site, so the enclosing
// target region is the caller's; the same applies to InvokeNamed /
// TargetBlock name_as definitions whose tag is a parameter. Propagation is
// deliberately single-hop — a helper forwarding its parameter to another
// helper is not followed — and matches helpers by name (sharpened to
// same-package functions when type information is available).
//
// The pass is purely syntactic (type information sharpens call-site
// matching but is optional), so `pjc -vet` can run it on a single
// un-type-checked file.
package waitgraph

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/directive"
)

// Analyzer is the waitgraph pass.
var Analyzer = &analysis.Analyzer{
	Name: "waitgraph",
	Doc:  "report cycles and undefined tags in the static name_as/wait dependency graph",
	Run:  run,
}

// region is a source range whose statements execute on a named target.
type region struct {
	target     string
	start, end token.Pos
}

// waitSite is one wait occurrence.
type waitSite struct {
	pos  token.Pos
	tags []string
}

// edge is one wait-for dependency: from's blocks wait on a tag scheduled on
// to.
type edge struct {
	from, to string
	tag      string
	pos      token.Pos
}

// paramDefine records that a helper function schedules blocks on target
// under the tag passed as its parameter #tagIdx.
type paramDefine struct {
	target string
	tagIdx int
}

// graph accumulates the package-wide wait-for structure.
type graph struct {
	pass    *analysis.Pass
	defines map[string]map[string]bool // tag -> defining targets
	regions []region
	waits   []waitSite

	// paramWaits maps a helper function name to the parameter indices it
	// waits on; paramDefines to the name_as definitions it performs with a
	// parameter tag. Both are materialized at constant-string call sites in
	// a second pass over the files.
	paramWaits   map[string][]int
	paramDefines map[string][]paramDefine
}

func run(pass *analysis.Pass) error {
	g := &graph{
		pass:         pass,
		defines:      map[string]map[string]bool{},
		paramWaits:   map[string][]int{},
		paramDefines: map[string][]paramDefine{},
	}
	for _, f := range pass.Files {
		g.collectDirectives(f)
		g.collectCalls(f)
		g.collectParamTags(f)
	}
	// Materialize after all files are collected: a helper in one file may
	// be called from another.
	for _, f := range pass.Files {
		g.materializeParamCalls(f)
	}
	g.report()
	return nil
}

// define records that tag's blocks are scheduled on target.
func (g *graph) define(tag, target string) {
	if tag == "" {
		return
	}
	m := g.defines[tag]
	if m == nil {
		m = map[string]bool{}
		g.defines[tag] = m
	}
	if target != "" {
		m[target] = true
	}
}

// --- directive comments --------------------------------------------------

// collectDirectives parses //#omp comments, associating each target
// directive with the block starting on the next line (the same binding rule
// the pjc compiler uses).
func (g *graph) collectDirectives(f *ast.File) {
	type pending struct {
		d   *directive.Directive
		pos token.Pos
	}
	byLine := map[int]pending{}
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !directive.IsDirectiveComment(text) {
				continue
			}
			d, err := directive.Parse(text)
			if err != nil {
				continue // directivelint's department
			}
			line := g.pass.Fset.Position(c.End()).Line
			switch d.Kind {
			case directive.KindTarget:
				byLine[line] = pending{d: d, pos: c.Pos()}
			case directive.KindWait:
				if c := d.Clause(directive.ClauseWait); c != nil {
					g.waits = append(g.waits, waitSite{pos: grp.Pos(), tags: append([]string(nil), c.Args...)})
				}
			}
		}
	}
	if len(byLine) == 0 {
		return
	}
	bind := func(list []ast.Stmt) {
		for _, st := range list {
			p, ok := byLine[g.pass.Fset.Position(st.Pos()).Line-1]
			if !ok {
				continue
			}
			name := p.d.TargetName()
			if name == "" {
				continue // device target: no virtual wait-for semantics
			}
			g.regions = append(g.regions, region{target: name, start: st.Pos(), end: st.End()})
			if mode, tag := p.d.SchedulingMode(); mode == directive.ClauseNameAs {
				g.define(tag, name)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			bind(v.List)
		case *ast.CaseClause:
			bind(v.Body)
		case *ast.CommClause:
			bind(v.Body)
		}
		return true
	})
}

// --- call sites ----------------------------------------------------------

// collectCalls records InvokeNamed/TargetBlock definitions, WaitTag/WaitFor
// waits, and dispatched-literal regions.
func (g *graph) collectCalls(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch name {
		case "InvokeNamed":
			if !g.isRuntimeMethod(call, "InvokeNamed") {
				return true
			}
			target, ok1 := g.stringArg(call, 0)
			tag, ok2 := g.stringArg(call, 1)
			if ok1 && ok2 {
				g.define(tag, target)
				g.litRegion(call, 2, target)
			}
		case "Invoke":
			if !g.isRuntimeMethod(call, "Invoke") {
				return true
			}
			if target, ok := g.stringArg(call, 0); ok {
				g.litRegion(call, 2, target)
			}
		case "TargetBlock", "TargetBlockIf":
			if !g.isPyjamaFunc(call, name) {
				return true
			}
			base := 0
			if name == "TargetBlockIf" {
				base = 1
			}
			target, ok1 := g.stringArg(call, base)
			if !ok1 {
				return true
			}
			g.litRegion(call, base+3, target)
			if g.isNameAsMode(call.Args[base+1]) {
				if tag, ok := g.stringArg(call, base+2); ok {
					g.define(tag, target)
				}
			}
		case "WaitTag":
			if !g.isRuntimeMethod(call, "WaitTag") {
				return true
			}
			if tag, ok := g.stringArg(call, 0); ok {
				g.waits = append(g.waits, waitSite{pos: call.Pos(), tags: []string{tag}})
			}
		case "WaitFor", "Wait":
			if name == "WaitFor" && !g.isPyjamaFunc(call, "WaitFor") {
				return true
			}
			if name == "Wait" && !g.isRuntimeMethodStrict(call, "Wait") {
				// ".Wait" is too common (WaitGroup, Completion) to match
				// without type information.
				return true
			}
			var tags []string
			for i := range call.Args {
				if tag, ok := g.stringArg(call, i); ok {
					tags = append(tags, tag)
				}
			}
			if len(tags) > 0 {
				g.waits = append(g.waits, waitSite{pos: call.Pos(), tags: tags})
			}
		}
		return true
	})
}

// --- parameter-carried tags ----------------------------------------------

// collectParamTags scans each function declaration for wait/define sites
// whose tag argument is one of the function's own string parameters,
// recording the parameter index for call-site materialization.
func (g *graph) collectParamTags(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Type.Params == nil {
			continue
		}
		paramIdx := map[string]int{}
		i := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				paramIdx[name.Name] = i
				i++
			}
		}
		if len(paramIdx) == 0 {
			continue
		}
		fname := fd.Name.Name
		argParam := func(call *ast.CallExpr, i int) (int, bool) {
			if i >= len(call.Args) {
				return 0, false
			}
			id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
			if !ok {
				return 0, false
			}
			idx, ok := paramIdx[id.Name]
			return idx, ok
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "WaitTag":
				if !g.isRuntimeMethod(call, "WaitTag") {
					return true
				}
				if idx, ok := argParam(call, 0); ok {
					g.paramWaits[fname] = append(g.paramWaits[fname], idx)
				}
			case "WaitFor", "Wait":
				if calleeName(call) == "WaitFor" && !g.isPyjamaFunc(call, "WaitFor") {
					return true
				}
				if calleeName(call) == "Wait" && !g.isRuntimeMethodStrict(call, "Wait") {
					return true
				}
				for i := range call.Args {
					if idx, ok := argParam(call, i); ok {
						g.paramWaits[fname] = append(g.paramWaits[fname], idx)
					}
				}
			case "InvokeNamed":
				if !g.isRuntimeMethod(call, "InvokeNamed") {
					return true
				}
				target, tok := g.stringArg(call, 0)
				if !tok {
					return true
				}
				if idx, ok := argParam(call, 1); ok {
					g.paramDefines[fname] = append(g.paramDefines[fname], paramDefine{target: target, tagIdx: idx})
				}
			case "TargetBlock", "TargetBlockIf":
				name := calleeName(call)
				if !g.isPyjamaFunc(call, name) {
					return true
				}
				base := 0
				if name == "TargetBlockIf" {
					base = 1
				}
				target, tok := g.stringArg(call, base)
				if !tok || base+1 >= len(call.Args) || !g.isNameAsMode(call.Args[base+1]) {
					return true
				}
				if idx, ok := argParam(call, base+2); ok {
					g.paramDefines[fname] = append(g.paramDefines[fname], paramDefine{target: target, tagIdx: idx})
				}
			}
			return true
		})
	}
}

// materializeParamCalls turns each constant-string call of a tag-carrying
// helper into the wait/define it performs, attributed at the call site (so
// the enclosing target region is the caller's).
func (g *graph) materializeParamCalls(f *ast.File) {
	if len(g.paramWaits) == 0 && len(g.paramDefines) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "" || !g.isLocalFunc(call) {
			return true
		}
		for _, idx := range g.paramWaits[name] {
			if tag, ok := g.stringArg(call, idx); ok {
				g.waits = append(g.waits, waitSite{pos: call.Pos(), tags: []string{tag}})
			}
		}
		for _, pd := range g.paramDefines[name] {
			if tag, ok := g.stringArg(call, pd.tagIdx); ok {
				g.define(tag, pd.target)
			}
		}
		return true
	})
}

// isLocalFunc checks (when types are available) that the call resolves to a
// function of the package under analysis; without types any callee name
// matches, consistent with the rest of the pass.
func (g *graph) isLocalFunc(call *ast.CallExpr) bool {
	if g.pass.TypesInfo == nil || g.pass.Pkg == nil {
		return true
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, _ := g.pass.TypesInfo.Uses[id].(*types.Func)
	return fn != nil && fn.Pkg() == g.pass.Pkg
}

// litRegion records the function-literal argument of a dispatch call as a
// region executing on target.
func (g *graph) litRegion(call *ast.CallExpr, argIndex int, target string) {
	if argIndex >= len(call.Args) {
		return
	}
	if lit, ok := call.Args[argIndex].(*ast.FuncLit); ok {
		g.regions = append(g.regions, region{target: target, start: lit.Pos(), end: lit.End()})
	}
}

// calleeName returns the bare selector/identifier name of the called
// function.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isRuntimeMethod checks (when types are available) that the call's
// receiver is *core.Runtime; without types any selector of that name
// matches.
func (g *graph) isRuntimeMethod(call *ast.CallExpr, name string) bool {
	if g.pass.TypesInfo == nil {
		_, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return isSel
	}
	return g.isRuntimeMethodStrict(call, name)
}

// isRuntimeMethodStrict requires type information and a *core.Runtime
// receiver.
func (g *graph) isRuntimeMethodStrict(call *ast.CallExpr, name string) bool {
	if g.pass.TypesInfo == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Name() == name && recvIsRuntime(fn)
}

// recvIsRuntime reports whether fn's receiver is (*)core.Runtime.
func recvIsRuntime(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Runtime" && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/core"
}

// isPyjamaFunc checks (when types are available) that a call resolves to
// the pyjama facade; without types the bare name is accepted.
func (g *graph) isPyjamaFunc(call *ast.CallExpr, name string) bool {
	if g.pass.TypesInfo == nil {
		return true
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, _ := g.pass.TypesInfo.Uses[id].(*types.Func)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == "repro/internal/pyjama"
}

// isNameAsMode reports whether the mode argument is the NameAs constant —
// by value when types are available, by spelling otherwise.
func (g *graph) isNameAsMode(arg ast.Expr) bool {
	if g.pass.TypesInfo != nil {
		if tv, ok := g.pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			v, _ := constant.Int64Val(tv.Value)
			return v == 2 // core.NameAs
		}
		return false
	}
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return e.Name == "NameAs"
	case *ast.SelectorExpr:
		return e.Sel.Name == "NameAs"
	}
	return false
}

// stringArg extracts a constant string argument: through the type checker
// when available, or a string literal otherwise.
func (g *graph) stringArg(call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	arg := call.Args[i]
	if g.pass.TypesInfo != nil {
		if tv, ok := g.pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
		return "", false
	}
	if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s, true
		}
	}
	return "", false
}

// --- reporting -----------------------------------------------------------

// enclosingTarget returns the innermost region containing pos ("" when the
// wait happens outside any target block — the encountering thread is then
// an application goroutine, which may suspend freely).
func (g *graph) enclosingTarget(pos token.Pos) string {
	best := ""
	bestSize := token.Pos(-1)
	for _, r := range g.regions {
		if r.start <= pos && pos < r.end {
			if size := r.end - r.start; bestSize < 0 || size < bestSize {
				best, bestSize = r.target, size
			}
		}
	}
	return best
}

func (g *graph) report() {
	var edges []edge
	for _, w := range g.waits {
		from := g.enclosingTarget(w.pos)
		for _, tag := range w.tags {
			defs := g.defines[tag]
			if len(defs) == 0 {
				g.pass.Reportf(w.pos,
					"wait on tag %q, but no name_as(%s) directive or InvokeNamed/TargetBlock site defines it; the wait is a silent no-op",
					tag, tag)
				continue
			}
			if from == "" {
				continue
			}
			for to := range defs {
				edges = append(edges, edge{from: from, to: to, tag: tag, pos: w.pos})
			}
		}
	}
	reportCycles(g.pass, edges)
}

// reportCycles finds every elementary cycle reachable in the edge set and
// reports each once, at the position of its lexically first wait.
func reportCycles(pass *analysis.Pass, edges []edge) {
	adj := map[string][]edge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	seen := map[string]bool{} // canonical cycle key -> reported
	var path []edge
	onPath := map[string]bool{}
	var dfs func(string)
	dfs = func(n string) {
		onPath[n] = true
		for _, e := range adj[n] {
			if onPath[e.to] {
				// Unwind to the start of the cycle.
				start := 0
				for i, pe := range path {
					if pe.from == e.to {
						start = i
						break
					}
				}
				cycle := append(append([]edge(nil), path[start:]...), e)
				if e.to == n {
					cycle = []edge{e} // self-loop
				}
				key := cycleKey(cycle)
				if !seen[key] {
					seen[key] = true
					reportCycle(pass, cycle)
				}
				continue
			}
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
		}
		onPath[n] = false
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// cycleKey canonicalizes a cycle (rotation-invariant) for deduplication.
func cycleKey(cycle []edge) string {
	parts := make([]string, len(cycle))
	for i, e := range cycle {
		parts[i] = e.from + "→" + e.to + ":" + e.tag
	}
	// Rotate so the smallest part comes first.
	min := 0
	for i := range parts {
		if parts[i] < parts[min] {
			min = i
		}
	}
	return strings.Join(append(parts[min:], parts[:min]...), ";")
}

func reportCycle(pass *analysis.Pass, cycle []edge) {
	first := cycle[0]
	for _, e := range cycle[1:] {
		if e.pos < first.pos {
			first = e
		}
	}
	if len(cycle) == 1 && cycle[0].from == cycle[0].to {
		e := cycle[0]
		pass.Reportf(e.pos,
			"target %q waits on tag %q whose blocks are scheduled on %q itself: WaitTag suspends a member of the very pool that must run them (deadlock when the pool saturates; use await instead)",
			e.from, e.tag, e.to)
		return
	}
	var b strings.Builder
	for i, e := range cycle {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s waits on %q (tag %q)", e.from, e.to, e.tag)
	}
	pass.Reportf(first.pos, "potential deadlock: wait cycle among virtual targets: %s", b.String())
}
