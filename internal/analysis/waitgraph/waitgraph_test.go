package waitgraph_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/waitgraph"
)

func TestWaitgraph(t *testing.T) {
	analysistest.Run(t, waitgraph.Analyzer, "testdata/wait")
}
