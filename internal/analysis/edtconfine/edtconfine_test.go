package edtconfine_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/edtconfine"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, edtconfine.Analyzer, "testdata/confine")
}

func TestIgnoreSuppression(t *testing.T) {
	analysistest.Run(t, edtconfine.Analyzer, "testdata/ignore")
}
