// Package edtconfine implements the ompvet pass proving the paper's widget
// confinement rule at compile time: "GUI components are not thread-safe and
// access is strictly confined to the EDT". The gui package enforces this at
// run time with checkConfinement (a panic, or a counted violation); this
// pass turns the panic into a compile-time diagnostic by flagging calls to
// confined widget mutators that are lexically inside a block dispatched off
// the EDT — a function literal handed to WorkerPool.Post, Runtime.Invoke of
// a worker target, ExecutorService.Execute, SwingWorker.DoInBackground, or
// a go statement — without an intervening InvokeLater / InvokeAndWait /
// target-virtual(edt) re-entry.
package edtconfine

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dispatch"
)

// Analyzer is the edtconfine pass.
var Analyzer = &analysis.Analyzer{
	Name:          "edtconfine",
	Doc:           "flag confined gui widget mutations inside blocks dispatched off the EDT",
	RequiresTypes: true,
	Run:           run,
}

// confined lists the mutating methods of each confined widget type — the
// methods funnelling into widget.mutate, which calls checkConfinement.
var confined = map[string]map[string]bool{
	"Label":       {"SetText": true},
	"ProgressBar": {"SetValue": true},
	"Button":      {"SetHandler": true},
	"TextArea":    {"Append": true, "Clear": true},
	"Frame":       {"SetTitle": true, "SetVisible": true, "Add": true},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == "repro/internal/gui" {
		// The toolkit's own internals are the enforcement mechanism.
		return nil
	}
	c := dispatch.NewClassifier(pass)
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			widget, method, ok := confinedMutator(c, call)
			if !ok {
				return true
			}
			if kind, site := c.Context(stack); kind == dispatch.Worker {
				pass.Reportf(call.Pos(),
					"(*gui.%s).%s mutates a confined widget off the event-dispatch thread (enclosing block is dispatched via %s); wrap the update in Toolkit.InvokeLater or a target virtual(edt) block",
					widget, method, site)
			}
			return true
		})
	}
	return nil
}

// confinedMutator reports whether call invokes a confined widget mutator.
func confinedMutator(c *dispatch.Classifier, call *ast.CallExpr) (widget, method string, ok bool) {
	fn := c.Callee(call)
	if fn == nil {
		return "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	for w, methods := range confined {
		if methods[fn.Name()] && dispatch.IsNamed(sig.Recv().Type(), "repro/internal/gui", w) {
			return w, fn.Name(), true
		}
	}
	return "", "", false
}
