// Package edtconfine implements the ompvet pass proving the paper's widget
// confinement rule at compile time: "GUI components are not thread-safe and
// access is strictly confined to the EDT". The gui package enforces this at
// run time with checkConfinement (a panic, or a counted violation; the
// ompsan sanitizer adds a second, goroutine-stamp check); this pass turns
// the panic into a compile-time diagnostic by flagging calls to confined
// widget mutators inside a block dispatched off the EDT — a function
// literal handed to WorkerPool.Post, Runtime.Invoke of a worker target,
// ExecutorService.Execute, SwingWorker.DoInBackground, or a go statement —
// without an intervening InvokeLater / InvokeAndWait / target-virtual(edt)
// re-entry.
//
// The pass is interprocedural (PR 9): a worker block calling a helper that
// calls a mutator is flagged at the helper call site, with the full call
// path from analysis/callgraph's bounded-depth summaries. A helper chain
// deeper than the summary bound is not silently trusted — the call is
// reported as unprovable instead.
package edtconfine

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dispatch"
)

// Analyzer is the edtconfine pass.
var Analyzer = &analysis.Analyzer{
	Name:          "edtconfine",
	Doc:           "flag confined gui widget mutations inside blocks dispatched off the EDT",
	RequiresTypes: true,
	Run:           run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == "repro/internal/gui" {
		// The toolkit's own internals are the enforcement mechanism.
		return nil
	}
	c := dispatch.NewClassifier(pass)
	g := callgraph.New(pass, c)
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if widget, method, ok := c.ConfinedMutator(call); ok {
				if kind, site := c.Context(stack); kind == dispatch.Worker {
					pass.Reportf(call.Pos(),
						"(*gui.%s).%s mutates a confined widget off the event-dispatch thread (enclosing block is dispatched via %s); wrap the update in Toolkit.InvokeLater or a target virtual(edt) block",
						widget, method, site)
				}
				return true
			}
			// Interprocedural: a call to a same-package helper is checked
			// against the helper's effect summary.
			fn := c.Callee(call)
			if g.Local(fn) == nil {
				return true
			}
			kind, site := c.Context(stack)
			if kind != dispatch.Worker {
				return true
			}
			s := g.SummaryOf(fn)
			for _, e := range s.Mutates {
				path := fn.Name()
				if p := e.PathString(); p != "" {
					path += " > " + p
				}
				pass.Reportf(call.Pos(),
					"%s mutates a confined widget off the event-dispatch thread (call path %s; enclosing block is dispatched via %s); wrap the update in Toolkit.InvokeLater or a target virtual(edt) block",
					e.Desc, path, site)
			}
			if s.Truncated && len(s.Mutates) == 0 {
				// Never silence a chain the summary could not finish: the
				// helper might mutate confined state beyond the depth bound.
				pass.Reportf(call.Pos(),
					"cannot prove %s keeps confined widgets off this worker block (dispatched via %s): call-graph summary truncated at depth %d",
					fn.Name(), site, callgraph.MaxDepth)
			}
			return true
		})
	}
	return nil
}
