// Package ignore exercises //ompvet:ignore suppression semantics: one
// ignore silences exactly one diagnostic, ignores may sit on the offending
// line or the line above, and a stale or typo'd ignore is itself reported.
package ignore

import (
	"repro/internal/executor"
	"repro/internal/gui"
)

func suppressed(tk *gui.Toolkit, pool *executor.WorkerPool) {
	status := tk.NewLabel("status")

	pool.Post(func() {
		status.SetText("a") //ompvet:ignore edtconfine deliberate demo of an off-EDT write
		status.SetText("b") // want `SetText mutates a confined widget`
	})

	pool.Post(func() {
		//ompvet:ignore edtconfine the ignore may also sit on the line above
		status.SetText("c")
	})
}

// Path-carrying (interprocedural) findings suppress exactly like direct
// ones: the diagnostic lands at the helper call site inside the worker
// block, so that is where the ignore goes — one ignore, one finding.
func suppressedPath(tk *gui.Toolkit, pool *executor.WorkerPool) {
	status := tk.NewLabel("status")
	pool.Post(func() {
		setViaHelper(status) //ompvet:ignore edtconfine the helper-chain write is deliberate here
		setViaHelper(status) // want `SetText mutates a confined widget off the event-dispatch thread \(call path setViaHelper > setDeep; enclosing block is dispatched via WorkerPool\.Post\)`
	})
}

func setViaHelper(l *gui.Label) { setDeep(l) }

func setDeep(l *gui.Label) { l.SetText("x") }

func stale(tk *gui.Toolkit) {
	status := tk.NewLabel("ok")
	tk.InvokeLater(func() {
		status.SetText("fine") //ompvet:ignore edtconfine nothing to silence here // want `unused ompvet:ignore for pass "edtconfine"`
	})
}

//ompvet:ignore edtconfien typo'd pass name // want `ompvet:ignore names unknown pass "edtconfien"`
