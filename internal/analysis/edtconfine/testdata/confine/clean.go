package confine

import (
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/gui"
)

// onEDT exercises the sanctioned patterns; none of these may be reported.
func onEDT(tk *gui.Toolkit, pool *executor.WorkerPool, rt *core.Runtime) {
	status := tk.NewLabel("ok")

	// Direct EDT dispatch.
	tk.InvokeLater(func() {
		status.SetText("direct")
	})

	// Off-EDT block that re-enters the EDT before mutating: the Figure 4
	// pattern this repository exists to demonstrate.
	pool.Post(func() {
		tk.InvokeLater(func() {
			status.SetText("done")
		})
	})

	// Handlers run on the EDT.
	btn := tk.NewButton("go", func() {
		status.SetText("clicked")
	})
	btn.SetHandler(func() {
		status.SetText("again")
	})

	// Invoke to a registered EDT target runs on the EDT.
	rt.RegisterEDT("ui", tk.EDT())
	rt.Invoke("ui", core.Nowait, func() {
		status.SetText("via target")
	})

	// Reads are not confined; only mutators are.
	pool.Post(func() {
		_ = status.Text()
	})
}
