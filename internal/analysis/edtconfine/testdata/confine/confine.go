// Package confine seeds edtconfine violations: confined widget mutators
// called from blocks the runtime dispatches off the event-dispatch thread.
package confine

import (
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/gui"
	"repro/internal/pyjama"
)

// offEDT drives each worker-context dispatch site past a confined mutator.
func offEDT(tk *gui.Toolkit, pool *executor.WorkerPool, svc *gui.ExecutorService, rt *core.Runtime) {
	status := tk.NewLabel("status")
	bar := tk.NewProgressBar("progress", 100)
	frame := tk.NewFrame("main")

	pool.Post(func() {
		status.SetText("working") // want `\(\*gui\.Label\)\.SetText mutates a confined widget off the event-dispatch thread`
	})

	go func() {
		bar.SetValue(10) // want `\(\*gui\.ProgressBar\)\.SetValue mutates a confined widget`
	}()

	svc.Execute(func() {
		frame.SetTitle("busy") // want `\(\*gui\.Frame\)\.SetTitle mutates a confined widget`
	})

	rt.CreateWorker("bg", 4)
	rt.Invoke("bg", core.Nowait, func() {
		status.SetText("bg") // want `SetText mutates a confined widget`
	})

	pyjama.CreateWorker("pjbg", 4)
	pyjama.TargetBlock("pjbg", pyjama.Nowait, "", func() {
		bar.SetValue(50) // want `SetValue mutates a confined widget`
	})
}

// swing seeds the SwingWorker split: DoInBackground is off-EDT, while
// Process and Done are EDT callbacks and may touch widgets freely.
func swing(tk *gui.Toolkit) {
	area := tk.NewTextArea("log", 100)
	w := gui.NewSwingWorker[int, string](tk)
	w.DoInBackground = func(publish func(...string)) int {
		area.Append("start") // want `\(\*gui\.TextArea\)\.Append mutates a confined widget`
		publish("tick")
		return 0
	}
	w.Process = func(chunks []string) {
		for _, c := range chunks {
			area.Append(c) // clean: Process runs on the EDT
		}
	}
	w.Done = func(int) {
		area.Append("done") // clean: Done runs on the EDT
	}
	w.Execute()
}
