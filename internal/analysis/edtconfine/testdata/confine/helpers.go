// Interprocedural cases (PR 9): the confined mutation hides behind
// same-package helper chains; edtconfine consults the call-graph summaries
// and reports the full path at the worker-side call site. Chains deeper
// than the summary bound degrade to a conservative "cannot prove" finding,
// never to silence.
package confine

import (
	"repro/internal/executor"
	"repro/internal/gui"
)

// setStatus > renderStatus: the mutation sits two frames below the block.
func setStatus(l *gui.Label, s string) { renderStatus(l, s) }

func renderStatus(l *gui.Label, s string) { l.SetText(s) }

func viaHelpers(tk *gui.Toolkit, pool *executor.WorkerPool) {
	status := tk.NewLabel("status")
	pool.Post(func() {
		setStatus(status, "working") // want `\(\*gui\.Label\)\.SetText mutates a confined widget off the event-dispatch thread \(call path setStatus > renderStatus; enclosing block is dispatched via WorkerPool\.Post\)`
	})
	tk.InvokeLater(func() {
		setStatus(status, "done") // clean: the EDT may mutate through helpers
	})
}

// guardedRender only mutates when it already runs on the dispatch thread:
// the IsDispatchThread guard keeps the summary clean.
func guardedRender(tk *gui.Toolkit, l *gui.Label, s string) {
	if tk.IsDispatchThread() {
		l.SetText(s)
	}
}

func viaGuardedHelper(tk *gui.Toolkit, pool *executor.WorkerPool) {
	status := tk.NewLabel("status")
	pool.Post(func() {
		guardedRender(tk, status, "checked") // clean: the helper's mutation is guarded
	})
}

// d1..d7: the mutation sits six frames below d1 — beyond MaxDepth. Calling
// d1 from a worker block is reported as unprovable; calling d2 still
// carries the full five-step path.
func d1(l *gui.Label) { d2(l) }
func d2(l *gui.Label) { d3(l) }
func d3(l *gui.Label) { d4(l) }
func d4(l *gui.Label) { d5(l) }
func d5(l *gui.Label) { d6(l) }
func d6(l *gui.Label) { d7(l) }
func d7(l *gui.Label) { l.SetText("deep") }

func deepChain(tk *gui.Toolkit, pool *executor.WorkerPool) {
	status := tk.NewLabel("deep")
	pool.Post(func() {
		d1(status) // want `cannot prove d1 keeps confined widgets off this worker block \(dispatched via WorkerPool\.Post\): call-graph summary truncated at depth 5`
		d2(status) // want `\(\*gui\.Label\)\.SetText mutates a confined widget off the event-dispatch thread \(call path d2 > d3 > d4 > d5 > d6 > d7; enclosing block is dispatched via WorkerPool\.Post\)`
	})
}
