package dispatch

// This file holds the leaf-effect tables: which calls block, and which
// calls mutate EDT-confined state. They started life inside the blockguard
// and edtconfine passes; they live on the Classifier now so the
// interprocedural call-graph summaries (analysis/callgraph) and the
// syntactic passes answer "is this call a blocking/mutating leaf?" from the
// same source of truth.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// confinedMutators lists the mutating methods of each confined widget type —
// the methods funnelling into widget.mutate, which calls checkConfinement.
var confinedMutators = map[string]map[string]bool{
	"Label":       {"SetText": true},
	"ProgressBar": {"SetValue": true},
	"Button":      {"SetHandler": true},
	"TextArea":    {"Append": true, "Clear": true},
	"Frame":       {"SetTitle": true, "SetVisible": true, "Add": true},
}

// ConfinedMutator reports whether call invokes a confined widget mutator,
// naming the widget type and method.
func (c *Classifier) ConfinedMutator(call *ast.CallExpr) (widget, method string, ok bool) {
	fn := c.callee(call)
	if fn == nil {
		return "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	for w, methods := range confinedMutators {
		if methods[fn.Name()] && isNamed(sig.Recv().Type(), "repro/internal/gui", w) {
			return w, fn.Name(), true
		}
	}
	return "", "", false
}

// BlockingCall reports whether call is one of the blocking operations the
// EDT must not perform, with a description for the diagnostic.
//
// Runtime.AwaitCompletion / AwaitDone are deliberately NOT listed: await is
// the paper's logical barrier — the encountering thread keeps processing
// its own queue while it waits, which is exactly the sanctioned alternative
// to the calls reported here.
func (c *Classifier) BlockingCall(call *ast.CallExpr) (string, bool) {
	fn := c.callee(call)
	if fn == nil {
		return "", false
	}
	switch {
	case c.isFunc(fn, "time", "Sleep"):
		return "time.Sleep", true
	case c.isMethod(fn, "repro/internal/executor", "Completion", "Wait"):
		return "Completion.Wait", true
	case c.isMethod(fn, "repro/internal/core", "Runtime", "Wait"),
		c.isMethod(fn, "repro/internal/core", "Runtime", "WaitTag"):
		return "Runtime." + fn.Name(), true
	case c.isFunc(fn, "repro/internal/pyjama", "WaitFor"):
		return "pyjama.WaitFor", true
	case c.isMethod(fn, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait", true
	case c.isMethod(fn, "repro/internal/gui", "SwingWorker", "Get"),
		c.isMethod(fn, "repro/internal/gui", "Future", "Get"):
		return fn.Name() + " (blocking join)", true
	case c.isMethod(fn, "repro/internal/gui", "Toolkit", "InvokeAndWait"),
		c.isMethod(fn, "repro/internal/eventloop", "Loop", "InvokeAndWait"):
		return "InvokeAndWait", true
	case c.isMethod(fn, "repro/internal/core", "Runtime", "Invoke"):
		return c.syncWorkerInvoke(call, "Runtime.Invoke", 0, 1)
	case c.isFunc(fn, "repro/internal/pyjama", "TargetBlock"):
		return c.syncWorkerInvoke(call, "pyjama.TargetBlock", 0, 1)
	case c.isFunc(fn, "repro/internal/pyjama", "TargetBlockIf"):
		return c.syncWorkerInvoke(call, "pyjama.TargetBlockIf", 1, 2)
	}
	return "", false
}

// syncWorkerInvoke flags Invoke/TargetBlock calls that synchronously wait
// (mode Wait, the zero Mode) on a known worker target: a blocking
// cross-target join. Dispatch to an EDT-registered name is left alone —
// thread-context awareness runs it inline — as is any non-constant mode.
func (c *Classifier) syncWorkerInvoke(call *ast.CallExpr, callee string, nameArg, modeArg int) (string, bool) {
	mode := c.constArg(call, modeArg)
	if mode == nil || mode.Kind() != constant.Int {
		return "", false
	}
	if v, ok := constant.Int64Val(mode); !ok || v != 0 { // 0 == core.Wait
		return "", false
	}
	name := ""
	if v := c.constArg(call, nameArg); v != nil && v.Kind() == constant.String {
		name = constant.StringVal(v)
	}
	if !c.WorkerName(name) {
		return "", false
	}
	return callee + "(" + name + ", mode Wait)", true
}
