// Package dispatch classifies where a function literal will execute:
// on an event-dispatch thread (or another serial virtual target) or off it,
// on a worker pool or raw goroutine. It is the shared substrate of the
// edtconfine and blockguard passes: both need to know, for a syntactic
// block, which thread group Algorithm 1 will hand it to.
//
// Classification is deliberately conservative. A literal is labelled only
// when the dispatch site is one of the known runtime entry points
// (Toolkit.InvokeLater, Loop.Post, WorkerPool.Post, Runtime.Invoke with a
// target name registered in the same package, pyjama.TargetBlock, SwingWorker
// fields, go statements); anything else inherits its lexical context, and a
// function declaration inherits nothing. Unknown stays unknown — the passes
// report only on definite Worker/EDT contexts, trading recall for zero
// false positives on clean code.
package dispatch

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Kind is the execution context of a block.
type Kind int

const (
	// Unknown means no dispatch site classifies the block.
	Unknown Kind = iota
	// EDT marks blocks delivered to an event-dispatch loop or another
	// serial virtual target: the context the paper forbids blocking in.
	EDT
	// Worker marks blocks delivered to a worker pool or a fresh goroutine:
	// off the EDT, where confined widgets must not be touched.
	Worker
)

func (k Kind) String() string {
	switch k {
	case EDT:
		return "EDT"
	case Worker:
		return "worker"
	default:
		return "unknown"
	}
}

// Classifier resolves execution contexts within one package.
type Classifier struct {
	pass *analysis.Pass
	// edtNames/workerNames are virtual-target names registered in this
	// package via RegisterEDT / CreateWorker (constant names only).
	edtNames    map[string]bool
	workerNames map[string]bool
	// serialNames are worker targets created with exactly one goroutine:
	// serial virtual targets, which the never-block rule also covers.
	serialNames map[string]bool
}

// NewClassifier scans the package for virtual-target registrations and
// returns a classifier for it.
func NewClassifier(pass *analysis.Pass) *Classifier {
	c := &Classifier{
		pass:        pass,
		edtNames:    map[string]bool{},
		workerNames: map[string]bool{},
		serialNames: map[string]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := c.callee(call)
			if fn == nil {
				return true
			}
			switch {
			case c.isMethod(fn, "repro/internal/core", "Runtime", "RegisterEDT"):
				if name, ok := c.stringArg(call, 0); ok {
					c.edtNames[name] = true
				}
			case c.isFunc(fn, "repro/internal/pyjama", "RegisterEDT"):
				if name, ok := c.stringArg(call, 0); ok {
					c.edtNames[name] = true
				}
			case c.isMethod(fn, "repro/internal/core", "Runtime", "CreateWorker"),
				c.isFunc(fn, "repro/internal/pyjama", "CreateWorker"):
				if name, ok := c.stringArg(call, 0); ok {
					c.workerNames[name] = true
					if m, ok := c.intArg(call, 1); ok && m == 1 {
						c.serialNames[name] = true
					}
				}
			}
			return true
		})
	}
	return c
}

// EDTName reports whether name is a registered EDT or serial target.
func (c *Classifier) EDTName(name string) bool {
	return c.edtNames[name] || c.serialNames[name]
}

// WorkerName reports whether name is a registered worker target.
func (c *Classifier) WorkerName(name string) bool { return c.workerNames[name] }

// Context returns the execution context of the node whose ancestor stack is
// given (outermost first): the classification of the innermost classifiable
// enclosing function literal, plus a human-readable description of the
// dispatch site. Unknown when no enclosing literal classifies.
func (c *Classifier) Context(stack []ast.Node) (Kind, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			if _, isDecl := stack[i].(*ast.FuncDecl); isDecl {
				return Unknown, ""
			}
			continue
		}
		if k, site := c.ClassifyLit(lit, stack[:i]); k != Unknown {
			return k, site
		}
	}
	return Unknown, ""
}

// ClassifyLit classifies one function literal from its immediate syntactic
// parent (stack is the literal's ancestor chain, outermost first).
func (c *Classifier) ClassifyLit(lit *ast.FuncLit, stack []ast.Node) (Kind, string) {
	if len(stack) == 0 {
		return Unknown, ""
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		// A literal invoked directly — go func(){...}() or func(){...}() —
		// is classified by the call's own parent.
		if parent.Fun == lit {
			if len(stack) >= 2 {
				if _, isGo := stack[len(stack)-2].(*ast.GoStmt); isGo {
					return Worker, "go statement"
				}
			}
			return Unknown, ""
		}
		return c.classifyCallArg(parent, lit)
	case *ast.KeyValueExpr:
		// SwingWorker{DoInBackground: ...} and reactor.HandlerFuncs{OnReadable: ...}
		if key, ok := parent.Key.(*ast.Ident); ok && len(stack) >= 2 {
			if comp, ok := stack[len(stack)-2].(*ast.CompositeLit); ok {
				switch {
				case c.isSwingWorkerType(comp):
					return swingWorkerField(key.Name)
				case c.isHandlerFuncsType(comp):
					return reactorHandlerField(key.Name)
				}
			}
		}
	case *ast.AssignStmt:
		// w.DoInBackground = func(...) {...} / h.OnReadable = func(...) {...}
		for i, rhs := range parent.Rhs {
			if rhs != lit || i >= len(parent.Lhs) {
				continue
			}
			sel, ok := parent.Lhs[i].(*ast.SelectorExpr)
			if !ok {
				continue
			}
			switch {
			case c.isSwingWorkerExpr(sel.X):
				return swingWorkerField(sel.Sel.Name)
			case c.isHandlerFuncsExpr(sel.X):
				return reactorHandlerField(sel.Sel.Name)
			}
		}
	}
	return Unknown, ""
}

// swingWorkerField maps a SwingWorker field name to where it runs.
func swingWorkerField(name string) (Kind, string) {
	switch name {
	case "DoInBackground":
		return Worker, "SwingWorker.DoInBackground"
	case "Process", "Done":
		return EDT, "SwingWorker." + name
	}
	return Unknown, ""
}

// reactorHandlerField maps a reactor.HandlerFuncs field to where it runs:
// every readiness callback is confined to the reactor's poll goroutine,
// which the never-block rule covers exactly like an EDT — a blocked
// callback stalls every registered connection at once.
func reactorHandlerField(name string) (Kind, string) {
	switch name {
	case "OnReadable", "OnDrained", "OnClose":
		return EDT, "reactor.HandlerFuncs." + name
	}
	return Unknown, ""
}

// classifyCallArg classifies a literal appearing as a direct argument of
// call. A literal nested deeper inside an argument expression is classified
// by its own parent, not by this call.
func (c *Classifier) classifyCallArg(call *ast.CallExpr, lit *ast.FuncLit) (Kind, string) {
	direct := false
	for _, arg := range call.Args {
		if arg == lit {
			direct = true
			break
		}
	}
	if !direct {
		return Unknown, ""
	}
	fn := c.callee(call)
	if fn == nil {
		return Unknown, ""
	}
	if desc, kind, ok := c.dispatchByCallee(call, fn); ok {
		return kind, desc
	}
	return Unknown, ""
}

// DispatchSite reports whether call hands work to another executor, and
// describes it. Used by blockguard's lock-held-across-dispatch check.
func (c *Classifier) DispatchSite(call *ast.CallExpr) (string, bool) {
	fn := c.callee(call)
	if fn == nil {
		return "", false
	}
	if desc, _, ok := c.dispatchByCallee(call, fn); ok {
		return desc, true
	}
	return "", false
}

// dispatchByCallee is the table of runtime dispatch entry points.
func (c *Classifier) dispatchByCallee(call *ast.CallExpr, fn *types.Func) (string, Kind, bool) {
	switch {
	// --- EDT deliveries -------------------------------------------------
	case c.isMethod(fn, "repro/internal/gui", "Toolkit", "InvokeLater"),
		c.isMethod(fn, "repro/internal/gui", "Toolkit", "InvokeAndWait"):
		return "Toolkit." + fn.Name(), EDT, true
	case c.isMethod(fn, "repro/internal/eventloop", "Loop", "Post"),
		c.isMethod(fn, "repro/internal/eventloop", "Loop", "PostLabeled"),
		c.isMethod(fn, "repro/internal/eventloop", "Loop", "PostDelayed"),
		c.isMethod(fn, "repro/internal/eventloop", "Loop", "InvokeAndWait"):
		return "Loop." + fn.Name(), EDT, true
	case c.isMethod(fn, "repro/internal/gui", "Toolkit", "NewButton"),
		c.isMethod(fn, "repro/internal/gui", "Button", "SetHandler"),
		c.isMethod(fn, "repro/internal/gui", "Toolkit", "NewTimer"):
		// Click handlers and timer actions are dispatched on the EDT.
		return fn.Name() + " handler", EDT, true
	case c.isMethod(fn, "repro/internal/reactor", "Reactor", "Post"),
		c.isMethod(fn, "repro/internal/reactor", "Conn", "Post"):
		// Posts hop onto the reactor's poll goroutine — a serial confined
		// context with EDT blocking rules.
		return "reactor " + fn.Name(), EDT, true
	case c.isMethod(fn, "repro/internal/reactor", "Reactor", "Listen"):
		// The accept callback runs on the poll goroutine.
		return "Reactor.Listen accept callback", EDT, true
	case c.isMethod(fn, "repro/internal/reactor", "Reactor", "PostAt"):
		// Timer callbacks fire on the poll goroutine (PR 7): same confined
		// context, same never-block rule.
		return "reactor PostAt timer callback", EDT, true
	case c.isMethod(fn, "repro/internal/reactor", "Supervised", "Listen"):
		// Supervised generations re-register listeners, but every
		// generation's accept callback still runs on that generation's
		// poll goroutine.
		return "Supervised.Listen accept callback", EDT, true
	case c.isMethod(fn, "repro/internal/netloop", "Server", "HandleFunc"),
		c.isMethod(fn, "repro/internal/netloop", "Server", "OnConnect"),
		c.isMethod(fn, "repro/internal/netloop", "Server", "OnClose"):
		// netloop handlers are dispatched on the server's event loop on
		// both transports — including the reactor transport enabled by
		// EnableReactor / EnableSupervisedReactor, whose readiness
		// callbacks re-post line events to the loop.
		return "netloop Server." + fn.Name() + " handler", EDT, true

	// --- worker deliveries ----------------------------------------------
	case c.isMethod(fn, "repro/internal/executor", "WorkerPool", "Post"),
		c.isMethod(fn, "repro/internal/executor", "WorkerPool", "PostCancellable"):
		return "WorkerPool." + fn.Name(), Worker, true
	case c.isMethod(fn, "repro/internal/gui", "ExecutorService", "Execute"),
		c.isFunc(fn, "repro/internal/gui", "Submit"):
		return "ExecutorService." + fn.Name(), Worker, true

	// --- target-name dispatch: the destination decides -------------------
	case c.isMethod(fn, "repro/internal/core", "Runtime", "Invoke"),
		c.isMethod(fn, "repro/internal/core", "Runtime", "InvokeNamed"):
		return c.targetDispatch(call, fn.Name(), 0)
	case c.isMethod(fn, "repro/internal/core", "Runtime", "InvokeCtx"):
		return c.targetDispatch(call, fn.Name(), 1)
	case c.isMethod(fn, "repro/internal/core", "Runtime", "InvokeIf"):
		return c.targetDispatch(call, fn.Name(), 1)
	case c.isFunc(fn, "repro/internal/pyjama", "TargetBlock"):
		return c.targetDispatch(call, fn.Name(), 0)
	case c.isFunc(fn, "repro/internal/pyjama", "TargetBlockIf"):
		return c.targetDispatch(call, fn.Name(), 1)
	}
	return "", Unknown, false
}

// targetDispatch classifies a Runtime.Invoke / pyjama.TargetBlock call by
// the constant target name at argument index nameArg.
func (c *Classifier) targetDispatch(call *ast.CallExpr, callee string, nameArg int) (string, Kind, bool) {
	name, ok := c.stringArg(call, nameArg)
	if !ok {
		return "", Unknown, false
	}
	desc := callee + "(" + name + ")"
	switch {
	case c.EDTName(name):
		return desc, EDT, true
	case c.workerNames[name]:
		return desc, Worker, true
	}
	return "", Unknown, false
}

// --- type plumbing -------------------------------------------------------

// callee resolves the *types.Func a call invokes (nil for indirect calls,
// built-ins, or when type information is absent).
func (c *Classifier) callee(call *ast.CallExpr) *types.Func {
	if c.pass.TypesInfo == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isFunc reports whether fn is the package-level function path.name.
func (c *Classifier) isFunc(fn *types.Func, path, name string) bool {
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == path &&
		(fn.Type().(*types.Signature)).Recv() == nil
}

// isMethod reports whether fn is a method named name on the (possibly
// pointer-to, possibly instantiated-generic) named type path.typeName.
func (c *Classifier) isMethod(fn *types.Func, path, typeName, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), path, typeName)
}

// isNamed reports whether t (after dereferencing) is the named type
// path.name.
func isNamed(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// IsNamed is isNamed exported for the passes.
func IsNamed(t types.Type, path, name string) bool { return isNamed(t, path, name) }

// isSwingWorkerType reports whether a composite literal builds a
// gui.SwingWorker.
func (c *Classifier) isSwingWorkerType(comp *ast.CompositeLit) bool {
	if c.pass.TypesInfo == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[comp]
	return ok && isNamed(tv.Type, "repro/internal/gui", "SwingWorker")
}

// isSwingWorkerExpr reports whether expr has type (*)gui.SwingWorker.
func (c *Classifier) isSwingWorkerExpr(expr ast.Expr) bool {
	if c.pass.TypesInfo == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	return ok && isNamed(tv.Type, "repro/internal/gui", "SwingWorker")
}

// isHandlerFuncsType reports whether a composite literal builds a
// reactor.HandlerFuncs.
func (c *Classifier) isHandlerFuncsType(comp *ast.CompositeLit) bool {
	if c.pass.TypesInfo == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[comp]
	return ok && isNamed(tv.Type, "repro/internal/reactor", "HandlerFuncs")
}

// isHandlerFuncsExpr reports whether expr has type (*)reactor.HandlerFuncs.
func (c *Classifier) isHandlerFuncsExpr(expr ast.Expr) bool {
	if c.pass.TypesInfo == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	return ok && isNamed(tv.Type, "repro/internal/reactor", "HandlerFuncs")
}

// stringArg returns the constant string value of call argument i.
func (c *Classifier) stringArg(call *ast.CallExpr, i int) (string, bool) {
	v := c.constArg(call, i)
	if v == nil || v.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(v), true
}

// intArg returns the constant integer value of call argument i.
func (c *Classifier) intArg(call *ast.CallExpr, i int) (int64, bool) {
	v := c.constArg(call, i)
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	n, ok := constant.Int64Val(v)
	return n, ok
}

// ConstArg exposes constant-argument extraction for the passes.
func (c *Classifier) ConstArg(call *ast.CallExpr, i int) constant.Value {
	return c.constArg(call, i)
}

func (c *Classifier) constArg(call *ast.CallExpr, i int) constant.Value {
	if c.pass.TypesInfo == nil || i >= len(call.Args) {
		return nil
	}
	tv, ok := c.pass.TypesInfo.Types[call.Args[i]]
	if !ok {
		return nil
	}
	return tv.Value
}

// Callee exposes callee resolution for the passes.
func (c *Classifier) Callee(call *ast.CallExpr) *types.Func { return c.callee(call) }

// IsMethod exposes method matching for the passes.
func (c *Classifier) IsMethod(fn *types.Func, path, typeName, name string) bool {
	return c.isMethod(fn, path, typeName, name)
}

// IsFunc exposes function matching for the passes.
func (c *Classifier) IsFunc(fn *types.Func, path, name string) bool {
	return c.isFunc(fn, path, name)
}
