// Package block seeds blockguard violations: blocking operations inside
// blocks dispatched to an event-dispatch loop or serial virtual target.
package block

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gui"
	"repro/internal/pyjama"
)

func joins(tk *gui.Toolkit, loop *eventloop.Loop, rt *core.Runtime, comp *executor.Completion) {
	tk.InvokeLater(func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread`
	})

	loop.Post(func() {
		comp.Wait() // want `Completion\.Wait blocks the event-dispatch thread`
	})

	tk.InvokeLater(func() {
		rt.WaitTag("frames") // want `Runtime\.WaitTag blocks the event-dispatch thread`
	})

	var wg sync.WaitGroup
	loop.PostLabeled("drain", func() {
		wg.Wait() // want `sync\.WaitGroup\.Wait blocks the event-dispatch thread`
	})

	ch := make(chan int)
	loop.Post(func() {
		<-ch // want `channel receive blocks the event-dispatch thread`
	})

	tk.InvokeLater(func() {
		tk.InvokeAndWait(func() {}) // want `InvokeAndWait blocks the event-dispatch thread`
	})
}

func targets(tk *gui.Toolkit, rt *core.Runtime) {
	rt.RegisterEDT("ui", tk.EDT())
	rt.CreateWorker("compute", 4)
	rt.CreateWorker("serial", 1)

	rt.Invoke("ui", core.Nowait, func() {
		rt.Invoke("compute", core.Wait, func() {}) // want `Runtime\.Invoke\(compute, mode Wait\) blocks the event-dispatch thread`
	})

	// A one-goroutine worker is a serial virtual target: blocking it stalls
	// every queued block, so the never-block rule covers it too.
	rt.Invoke("serial", core.Nowait, func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread`
	})

	pyjama.RegisterEDT("pjui")
	pyjama.TargetBlock("pjui", pyjama.Nowait, "", func() {
		pyjama.WaitFor("jobs") // want `pyjama\.WaitFor blocks the event-dispatch thread`
	})
}

func futures(tk *gui.Toolkit, svc *gui.ExecutorService) {
	fut := gui.Submit(svc, func() int { return 1 })
	tk.InvokeLater(func() {
		fut.Get() // want `Get \(blocking join\) blocks the event-dispatch thread`
	})
}

func lockAcrossDispatch(tk *gui.Toolkit, pool *executor.WorkerPool) {
	var mu sync.Mutex
	tk.InvokeLater(func() {
		mu.Lock() // want `mutex locked on the event-dispatch thread is still held across WorkerPool\.Post`
		pool.Post(func() {})
		mu.Unlock()
	})
}
