package block

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/gui"
)

// clean exercises the sanctioned patterns; none of these may be reported.
func clean(tk *gui.Toolkit, rt *core.Runtime, pool *executor.WorkerPool, comp *executor.Completion) {
	ch := make(chan int)

	// select is the non-blocking way to touch channels on the EDT.
	tk.InvokeLater(func() {
		select {
		case <-ch:
		default:
		}
	})

	// The await logical barrier helps with queued work instead of parking,
	// which is exactly the paper's alternative to the blocking joins.
	tk.InvokeLater(func() {
		rt.AwaitCompletion(comp)
	})

	// Workers may block freely.
	pool.Post(func() {
		time.Sleep(time.Millisecond)
		comp.Wait()
		<-ch
	})

	// A lock released before the dispatch is not held across it.
	var mu sync.Mutex
	tk.InvokeLater(func() {
		mu.Lock()
		mu.Unlock()
		pool.Post(func() {})
	})

	// Dispatch to an EDT-registered name from its own EDT runs inline
	// (thread-context awareness), and Nowait never parks anyway.
	rt.RegisterEDT("cleanui", tk.EDT())
	rt.Invoke("cleanui", core.Nowait, func() {
		rt.Invoke("cleanui", core.Wait, func() {})
	})
}
