// Interprocedural cases (PR 9): the blocking call hides behind
// same-package helper chains; blockguard consults the call-graph summaries
// and reports the full path at the EDT-side call site. Chains deeper than
// the summary bound degrade to a conservative "cannot prove" finding, and
// an Owns-guarded wait (the runtime's own shutdown shape) stays clean.
package block

import (
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/gui"
)

// napAfter > nap: the sleep sits two frames below the block.
func napAfter(d time.Duration) { nap(d) }

func nap(d time.Duration) { time.Sleep(d) }

func viaHelperChain(tk *gui.Toolkit, pool *executor.WorkerPool) {
	tk.InvokeLater(func() {
		napAfter(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(call path napAfter > nap; enclosing block is dispatched via Toolkit\.InvokeLater\)`
	})
	pool.Post(func() {
		napAfter(time.Millisecond) // clean: worker blocks may sleep
	})
}

// stopPool waits only when the caller is NOT one of the pool's own
// goroutines — reactor.Stop's shape. The Owns guard keeps the summary
// clean, so EDT callers are not flagged.
func stopPool(p *executor.WorkerPool, wg *sync.WaitGroup) {
	if p.Owns() {
		return
	}
	wg.Wait()
}

func viaGuardedHelper(tk *gui.Toolkit, p *executor.WorkerPool, wg *sync.WaitGroup) {
	tk.InvokeLater(func() {
		stopPool(p, wg) // clean: the helper's wait is Owns-guarded
	})
}

// b1..b7: the sleep sits six frames below b1 — beyond MaxDepth. Calling b1
// from an EDT block is reported as unprovable; calling b2 still carries
// the full five-step path.
func b1(d time.Duration) { b2(d) }
func b2(d time.Duration) { b3(d) }
func b3(d time.Duration) { b4(d) }
func b4(d time.Duration) { b5(d) }
func b5(d time.Duration) { b6(d) }
func b6(d time.Duration) { b7(d) }
func b7(d time.Duration) { time.Sleep(d) }

func deepBlockChain(tk *gui.Toolkit) {
	tk.InvokeLater(func() {
		b1(time.Millisecond) // want `cannot prove b1 never blocks this event-dispatch block \(dispatched via Toolkit\.InvokeLater\): call-graph summary truncated at depth 5`
		b2(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(call path b2 > b3 > b4 > b5 > b6 > b7; enclosing block is dispatched via Toolkit\.InvokeLater\)`
	})
}
