// Reactor readiness callbacks are EDT-confined contexts: they run on the
// reactor's single poll goroutine, so blocking in one stalls every
// registered connection. blockguard must classify HandlerFuncs fields,
// Reactor.Post / Conn.Post hops, and the Listen accept callback exactly
// like event-dispatch-thread deliveries.
package block

import (
	"sync"
	"time"

	"repro/internal/netloop"
	"repro/internal/reactor"
)

func reactorCallbacks(r *reactor.Reactor, comp chan int) {
	r.Listen("127.0.0.1:0", func(c *reactor.Conn) reactor.HandlerFuncs {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via Reactor\.Listen accept callback\)`
		return reactor.HandlerFuncs{
			OnReadable: func(c *reactor.Conn, data []byte) {
				time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via reactor\.HandlerFuncs\.OnReadable\)`
			},
			OnDrained: func(c *reactor.Conn) {
				<-comp // want `channel receive blocks the event-dispatch thread \(enclosing block is dispatched via reactor\.HandlerFuncs\.OnDrained\)`
			},
			OnClose: func(c *reactor.Conn, err error) {
				var wg sync.WaitGroup
				wg.Wait() // want `sync\.WaitGroup\.Wait blocks the event-dispatch thread \(enclosing block is dispatched via reactor\.HandlerFuncs\.OnClose\)`
			},
		}
	})

	r.Post(func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via reactor Post\)`
	})
}

func reactorFieldAssignment(c *reactor.Conn, h reactor.HandlerFuncs, done chan struct{}) {
	h.OnReadable = func(c *reactor.Conn, data []byte) {
		<-done // want `channel receive blocks the event-dispatch thread \(enclosing block is dispatched via reactor\.HandlerFuncs\.OnReadable\)`
	}
	c.Post(func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via reactor Post\)`
	})
}

// reactorClean shows the approved shape: the readiness callback offloads
// the slow work to a raw goroutine (stand-in for a worker target) and hops
// back with Conn.Post; nothing blocks the poll goroutine.
func reactorClean(r *reactor.Reactor) {
	r.Listen("127.0.0.1:0", func(c *reactor.Conn) reactor.HandlerFuncs {
		return reactor.HandlerFuncs{
			OnReadable: func(c *reactor.Conn, data []byte) {
				line := string(data) // copy: data aliases the scratch buffer
				go func() {
					reply := process(line)
					c.Post(func() { c.Write([]byte(reply)) })
				}()
			},
		}
	})
}

func process(s string) string { return s }

// PostAt timer callbacks (PR 7) fire on the poll goroutine: same confined
// context, same never-block rule as Post.
func reactorTimerCallback(r *reactor.Reactor, at time.Time) {
	r.PostAt(at, func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via reactor PostAt timer callback\)`
	})
}

// Supervised generations (PR 8) re-register listeners after a restart, but
// every generation's accept callback still runs on that generation's poll
// goroutine.
func supervisedCallbacks(s *reactor.Supervised, done chan struct{}) {
	s.Listen("127.0.0.1:0", func(c *reactor.Conn) reactor.HandlerFuncs {
		<-done // want `channel receive blocks the event-dispatch thread \(enclosing block is dispatched via Supervised\.Listen accept callback\)`
		return reactor.HandlerFuncs{}
	})
}

// netloop handlers run on the server's single dispatch loop on both
// transports — goroutine-per-connection and the (supervised) reactor.
func netloopHandlers(srv *netloop.Server, comp chan int) {
	srv.HandleFunc(func(c *netloop.Client, line string) {
		time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-dispatch thread \(enclosing block is dispatched via netloop Server\.HandleFunc handler\)`
	})
	srv.OnConnect(func(c *netloop.Client) {
		<-comp // want `channel receive blocks the event-dispatch thread \(enclosing block is dispatched via netloop Server\.OnConnect handler\)`
	})
	srv.OnClose(func(c *netloop.Client) {
		var wg sync.WaitGroup
		wg.Wait() // want `sync\.WaitGroup\.Wait blocks the event-dispatch thread \(enclosing block is dispatched via netloop Server\.OnClose handler\)`
	})
}
