package blockguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blockguard"
)

func TestBlockguard(t *testing.T) {
	analysistest.Run(t, blockguard.Analyzer, "testdata/block")
}
