// Package blockguard implements the ompvet pass proving the paper's other
// EDT rule: the event-dispatch thread must never block. Inside any block
// destined for an EDT or serial virtual target (Toolkit.InvokeLater,
// Loop.Post, button/timer handlers, Runtime.Invoke of an EDT-registered
// name, SwingWorker.Process/Done, reactor callbacks) the pass flags:
//
//   - blocking joins: Completion.Wait, Runtime.Wait/WaitTag, pyjama.WaitFor,
//     sync.WaitGroup.Wait, SwingWorker.Get, Future.Get;
//   - synchronous re-dispatch: Toolkit/Loop.InvokeAndWait, and
//     Invoke/TargetBlock of a worker target in mode Wait;
//   - time.Sleep;
//   - bare channel receives (outside select);
//   - sync.Mutex/RWMutex.Lock held across a dispatch call.
//
// The blocking-leaf table itself lives on the dispatch classifier
// (Classifier.BlockingCall), shared with analysis/callgraph; this pass is
// interprocedural (PR 9): an EDT block calling a helper that blocks is
// flagged at the helper call site with the full call path from the
// bounded-depth summaries, and a chain deeper than the bound is reported
// as unprovable rather than silently trusted.
//
// Runtime.AwaitCompletion / AwaitDone are deliberately NOT flagged: await is
// the paper's logical barrier — the encountering thread keeps processing its
// own queue while it waits, which is exactly the sanctioned alternative to
// the calls this pass reports.
package blockguard

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dispatch"
)

// Analyzer is the blockguard pass.
var Analyzer = &analysis.Analyzer{
	Name:          "blockguard",
	Doc:           "flag blocking operations inside blocks dispatched to an EDT or serial virtual target",
	RequiresTypes: true,
	Run:           run,
}

func run(pass *analysis.Pass) error {
	c := dispatch.NewClassifier(pass)
	g := callgraph.New(pass, c)
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if desc, ok := c.BlockingCall(n); ok {
					if kind, site := c.Context(stack); kind == dispatch.EDT {
						pass.Reportf(n.Pos(),
							"%s blocks the event-dispatch thread (enclosing block is dispatched via %s); offload with a worker target or use the await logical barrier",
							desc, site)
					}
					return true
				}
				checkHelperCall(pass, c, g, n, stack)
			case *ast.UnaryExpr:
				if n.Op.String() != "<-" || insideSelect(stack) {
					return true
				}
				if kind, site := c.Context(stack); kind == dispatch.EDT {
					pass.Reportf(n.Pos(),
						"channel receive blocks the event-dispatch thread (enclosing block is dispatched via %s); deliver the value with a further Post instead",
						site)
				}
			case *ast.BlockStmt:
				checkLockAcrossDispatch(pass, c, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkHelperCall consults the call-graph summary of a same-package callee:
// from an EDT context, reachable blocking operations are reported through
// the helper chain, and an unfinished (depth-truncated) summary is reported
// as unprovable rather than trusted.
func checkHelperCall(pass *analysis.Pass, c *dispatch.Classifier, g *callgraph.Graph, call *ast.CallExpr, stack []ast.Node) {
	fn := c.Callee(call)
	if g.Local(fn) == nil {
		return
	}
	kind, site := c.Context(stack)
	if kind != dispatch.EDT {
		return
	}
	s := g.SummaryOf(fn)
	for _, e := range s.Blocks {
		path := fn.Name()
		if p := e.PathString(); p != "" {
			path += " > " + p
		}
		pass.Reportf(call.Pos(),
			"%s blocks the event-dispatch thread (call path %s; enclosing block is dispatched via %s); offload with a worker target or use the await logical barrier",
			e.Desc, path, site)
	}
	if s.Truncated && len(s.Blocks) == 0 {
		pass.Reportf(call.Pos(),
			"cannot prove %s never blocks this event-dispatch block (dispatched via %s): call-graph summary truncated at depth %d",
			fn.Name(), site, callgraph.MaxDepth)
	}
}

// insideSelect reports whether the node is within a select statement, whose
// comm clauses are the non-blocking way to touch channels on the EDT.
func insideSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.SelectStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// checkLockAcrossDispatch scans one EDT-context block for a Mutex.Lock that
// is still held when a dispatch call runs: the dispatched block (or any EDT
// work needing the lock) then contends with a lock owned by the EDT.
func checkLockAcrossDispatch(pass *analysis.Pass, c *dispatch.Classifier, block *ast.BlockStmt, stack []ast.Node) {
	if kind, _ := c.Context(stack); kind != dispatch.EDT {
		return
	}
	// held maps the receiver expression text of a locked mutex to the Lock
	// call position; deferred unlocks keep the lock held to block end.
	type lockSite struct {
		pos      ast.Node
		receiver string
	}
	var held []lockSite
	for _, st := range block.List {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if recv, isLock, isUnlock := mutexLockCall(pass, c, call); recv != "" {
					if isLock {
						held = append(held, lockSite{pos: call, receiver: recv})
						continue
					}
					if isUnlock {
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].receiver == recv {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
						continue
					}
				}
				if len(held) > 0 {
					if desc, ok := c.DispatchSite(call); ok {
						pass.Reportf(held[len(held)-1].pos.Pos(),
							"mutex locked on the event-dispatch thread is still held across %s; unlock before dispatching or move the critical section off the EDT",
							desc)
						held = held[:len(held)-1]
					}
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock(): the lock stays held for the rest of the
			// block; nothing to update.
			continue
		}
	}
}

// mutexLockCall identifies sync.Mutex/RWMutex Lock/Unlock calls, returning
// the receiver's source-position key.
func mutexLockCall(pass *analysis.Pass, c *dispatch.Classifier, call *ast.CallExpr) (recv string, isLock, isUnlock bool) {
	fn := c.Callee(call)
	if fn == nil {
		return "", false, false
	}
	isMutex := c.IsMethod(fn, "sync", "Mutex", fn.Name()) || c.IsMethod(fn, "sync", "RWMutex", fn.Name())
	if !isMutex {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	key := exprKey(pass, sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// exprKey renders a (simple) receiver expression as a comparison key.
func exprKey(pass *analysis.Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(pass, e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(pass, e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprKey(pass, e.X)
	}
	return ""
}
