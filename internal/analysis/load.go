package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Name is the package identifier; Path its import path (or a synthetic
	// one for ad-hoc loads, e.g. analysistest directories).
	Name string
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File

	// Types and TypesInfo are nil when the package was loaded without
	// type-checking. TypeErrors collects type-checker complaints; analysis
	// proceeds best-effort when it is non-empty.
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error
}

// A Loader parses and type-checks packages. One Loader shares a FileSet and
// an importer cache across all packages it loads, so common dependencies
// (internal/gui, internal/core, ...) are type-checked once.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer, which
// resolves import paths through go/build — module-aware via the go command,
// so packages of this module and the standard library import without any
// third-party machinery.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// newInfo allocates the full types.Info the passes consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadFiles parses the given files as one package and type-checks them.
func (l *Loader) LoadFiles(dir, importPath string, filenames []string) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files for %s", importPath)
	}
	sort.Strings(filenames)
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	for _, name := range filenames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name

	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := newInfo()
	tpkg, _ := conf.Check(importPath, l.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// LoadDir loads the non-test Go files of one directory as a package (the
// analysistest entry point: testdata directories are invisible to the go
// command, so they are loaded by path).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	return l.LoadFiles(dir, importPath, files)
}

// ParseFiles parses the named files as one package WITHOUT type-checking —
// the entry point for single-file drivers (pjc -vet) that must lint a
// source before it even compiles. Types and TypesInfo are left nil, so
// RunPackage skips every RequiresTypes pass and the type-optional passes
// (directivelint, waitgraph) fall back to their syntactic matching.
func ParseFiles(filenames []string) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files")
	}
	fset := token.NewFileSet()
	pkg := &Package{Path: "command-line-arguments", Fset: fset}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name
	return pkg, nil
}

// goListPackage is the subset of `go list -json` output the loader needs.
type goListPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// LoadPatterns expands go-command package patterns (e.g. "./...") relative
// to dir and loads every matched package. Only GoFiles are analyzed: test
// files exercise deliberate violations (off-EDT mutation tests, blocking
// drills) and would drown the signal.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var m goListPackage
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := l.LoadFiles(m.Dir, m.ImportPath, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
