package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// IgnorePrefix introduces a suppression comment: a line comment of the form
//
//	//ompvet:ignore <pass> [reason]
//
// placed either on the same line as the offending code or on the line
// directly above it. One ignore silences exactly one diagnostic of the
// named pass; an ignore that silences nothing is itself reported (pass
// "ompvet"), so the repo cannot accumulate dead ignores.
const IgnorePrefix = "ompvet:ignore"

// RunPackage runs the analyzers over pkg, applies //ompvet:ignore
// suppression, and returns the surviving findings sorted by position.
//
// strict controls how an ignore naming a pass outside this run is treated:
// the full multichecker (cmd/ompvet) passes true so a typo'd pass name is
// reported; partial drivers (pjc -vet runs only two passes) pass false so
// ignores aimed at the passes they don't run are left alone.
func RunPackage(pkg *Package, analyzers []*Analyzer, strict bool) ([]Finding, error) {
	var findings []Finding
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.RequiresTypes && pkg.TypesInfo == nil {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: pass %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			findings = append(findings, Finding{Pass: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
	}
	findings = applyIgnores(pkg, findings, ran, strict)
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}

// ignore is one parsed //ompvet:ignore comment.
type ignore struct {
	pass string
	file string
	line int
	pos  Finding // position info for the unused-ignore report
}

// applyIgnores removes, for each ignore comment, the first finding of the
// named pass on the ignore's line or the line below. Unused ignores become
// findings themselves.
func applyIgnores(pkg *Package, findings []Finding, ran map[string]bool, strict bool) []Finding {
	var ignores []ignore
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				p := pkg.Fset.Position(c.Pos())
				ign := ignore{pass: name, file: p.Filename, line: p.Line,
					pos: Finding{Pass: "ompvet", Pos: p}}
				if name == "" {
					ign.pos.Message = "ompvet:ignore requires a pass name"
					findings = append(findings, ign.pos)
					continue
				}
				if !ran[name] {
					if strict {
						ign.pos.Message = fmt.Sprintf("ompvet:ignore names unknown pass %q", name)
						findings = append(findings, ign.pos)
					}
					continue
				}
				ignores = append(ignores, ign)
			}
		}
	}
	if len(ignores) == 0 {
		return findings
	}
	// Match in position order so "exactly one diagnostic" is deterministic.
	sortFindings(findings)
	suppressed := make([]bool, len(findings))
	for _, ign := range ignores {
		used := false
		for i, f := range findings {
			if suppressed[i] || f.Pass != ign.pass || f.Pos.Filename != ign.file {
				continue
			}
			if f.Pos.Line == ign.line || f.Pos.Line == ign.line+1 {
				suppressed[i] = true
				used = true
				break
			}
		}
		if !used {
			ign.pos.Message = fmt.Sprintf("unused ompvet:ignore for pass %q (no diagnostic on this or the next line)", ign.pass)
			findings = append(findings, ign.pos)
		}
	}
	out := findings[:0]
	for i, f := range findings {
		if i < len(suppressed) && suppressed[i] {
			continue
		}
		out = append(out, f)
	}
	return out
}
