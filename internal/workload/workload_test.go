package workload

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestConstantSchedule(t *testing.T) {
	s := &Source{Rate: 100, Events: 5}
	sched := s.Schedule()
	if len(sched) != 5 {
		t.Fatalf("len = %d", len(sched))
	}
	gap := 10 * time.Millisecond
	for i, off := range sched {
		if off != gap*time.Duration(i) {
			t.Fatalf("offset[%d] = %v, want %v", i, off, gap*time.Duration(i))
		}
	}
	if s.Duration() != 4*gap {
		t.Fatalf("Duration = %v", s.Duration())
	}
}

func TestPoissonScheduleReproducibleAndMonotonic(t *testing.T) {
	a := &Source{Rate: 50, Events: 100, Pattern: Poisson, Seed: 7}
	b := &Source{Rate: 50, Events: 100, Pattern: Poisson, Seed: 7}
	sa, sb := a.Schedule(), b.Schedule()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different schedules")
		}
		if i > 0 && sa[i] < sa[i-1] {
			t.Fatal("schedule not monotonic")
		}
	}
	c := &Source{Rate: 50, Events: 100, Pattern: Poisson, Seed: 8}
	diff := false
	for i, v := range c.Schedule() {
		if v != sa[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPoissonMeanRateProperty(t *testing.T) {
	// Property: the mean inter-arrival time approaches 1/rate.
	f := func(seed int64) bool {
		s := &Source{Rate: 200, Events: 2000, Pattern: Poisson, Seed: seed}
		sched := s.Schedule()
		mean := sched[len(sched)-1] / time.Duration(len(sched)-1)
		want := 5 * time.Millisecond
		return mean > want/2 && mean < want*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstSchedule(t *testing.T) {
	s := &Source{Rate: 100, Events: 10, Pattern: Burst, BurstSize: 5}
	sched := s.Schedule()
	// First five at 0, next five at 50ms.
	for i := 0; i < 5; i++ {
		if sched[i] != 0 {
			t.Fatalf("burst 1 offset[%d] = %v", i, sched[i])
		}
	}
	for i := 5; i < 10; i++ {
		if sched[i] != 50*time.Millisecond {
			t.Fatalf("burst 2 offset[%d] = %v", i, sched[i])
		}
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if (&Source{Rate: 0, Events: 5}).Schedule() != nil {
		t.Fatal("zero rate should produce nil schedule")
	}
	if (&Source{Rate: 10, Events: 0}).Schedule() != nil {
		t.Fatal("zero events should produce nil schedule")
	}
	if (&Source{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestRunFiresAllEventsInOrder(t *testing.T) {
	s := &Source{Rate: 2000, Events: 20}
	var got []int
	s.Run(func(i int) { got = append(got, i) })
	if len(got) != 20 {
		t.Fatalf("fired %d events", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatal("events out of order")
		}
	}
}

func TestRunRespectsRate(t *testing.T) {
	s := &Source{Rate: 1000, Events: 50}
	start := time.Now()
	s.Run(func(int) {})
	elapsed := time.Since(start)
	if elapsed < 49*time.Millisecond {
		t.Fatalf("run completed in %v, faster than the offered load allows", elapsed)
	}
}

func TestVirtualUsers(t *testing.T) {
	v := &VirtualUsers{Users: 8, RequestsPerUser: 25}
	var n atomic.Int64
	seen := make([]atomic.Int64, 8)
	d := v.Run(func(u, r int) {
		n.Add(1)
		seen[u].Add(1)
	})
	if n.Load() != int64(v.Total()) {
		t.Fatalf("ran %d requests, want %d", n.Load(), v.Total())
	}
	for u := range seen {
		if seen[u].Load() != 25 {
			t.Fatalf("user %d ran %d requests", u, seen[u].Load())
		}
	}
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestVirtualUsersThinkTime(t *testing.T) {
	v := &VirtualUsers{Users: 2, RequestsPerUser: 3, Think: 5 * time.Millisecond}
	d := v.Run(func(u, r int) {})
	if d < 15*time.Millisecond {
		t.Fatalf("run with think time finished in %v", d)
	}
}

func TestMeanRate(t *testing.T) {
	if r := MeanRate(100, time.Second); r != 100 {
		t.Fatalf("MeanRate = %v", r)
	}
	if r := MeanRate(100, 0); r != 0 {
		t.Fatalf("MeanRate(0 dur) = %v", r)
	}
}

func TestLoadsSweep(t *testing.T) {
	loads := Loads()
	if len(loads) != 10 || loads[0] != 10 || loads[9] != 100 {
		t.Fatalf("Loads = %v", loads)
	}
	scaled := ScaleLoads(loads, 0.1)
	if scaled[0] != 1 || scaled[9] != 10 {
		t.Fatalf("ScaleLoads = %v", scaled)
	}
}

func TestPatternString(t *testing.T) {
	if Constant.String() != "constant" || Poisson.String() != "poisson" ||
		Burst.String() != "burst" || Pattern(9).String() != "unknown" {
		t.Fatal("pattern names")
	}
}
