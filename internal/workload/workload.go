// Package workload provides the load generators of the evaluation:
// open-loop event sources that fire GUI events at a configured request rate
// (Evaluation A sweeps 10 to 100 requests/sec) and closed-loop virtual user
// pools (Evaluation B drives the HTTP service with 100 virtual users, each
// sending a constant number of requests).
package workload

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Pattern selects the inter-arrival distribution of an open-loop source.
type Pattern int

const (
	// Constant fires at fixed intervals of 1/rate seconds.
	Constant Pattern = iota
	// Poisson fires with exponentially distributed inter-arrival times of
	// mean 1/rate (a memoryless event stream, the usual model for user
	// input and network requests).
	Poisson
	// Burst fires events in back-to-back groups of BurstSize, groups
	// arriving at rate/BurstSize per second (camera frames arriving in
	// clumps, the paper's augmented-reality motivation).
	Burst
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Constant:
		return "constant"
	case Poisson:
		return "poisson"
	case Burst:
		return "burst"
	default:
		return "unknown"
	}
}

// Source is an open-loop event generator: it fires exactly Events events at
// Rate events/second regardless of how fast they are handled (that is the
// point — response time under a fixed offered load).
type Source struct {
	// Rate is the offered load in events per second. Must be > 0.
	Rate float64
	// Events is the total number of events to fire.
	Events int
	// Pattern selects the inter-arrival distribution (default Constant).
	Pattern Pattern
	// BurstSize groups events for the Burst pattern (default 5).
	BurstSize int
	// Seed makes Poisson/Burst schedules reproducible (default 1).
	Seed int64
}

// Schedule returns the event fire offsets from the start of the run.
// Deterministic for a given Source configuration.
func (s *Source) Schedule() []time.Duration {
	if s.Rate <= 0 || s.Events <= 0 {
		return nil
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	gap := time.Duration(float64(time.Second) / s.Rate)
	out := make([]time.Duration, s.Events)
	switch s.Pattern {
	case Poisson:
		t := time.Duration(0)
		for i := range out {
			// Exponential inter-arrival with mean gap.
			t += time.Duration(float64(gap) * rng.ExpFloat64())
			out[i] = t
		}
	case Burst:
		bs := s.BurstSize
		if bs <= 0 {
			bs = 5
		}
		groupGap := time.Duration(float64(gap) * float64(bs))
		for i := range out {
			out[i] = groupGap * time.Duration(i/bs)
		}
	default: // Constant
		for i := range out {
			out[i] = gap * time.Duration(i)
		}
	}
	return out
}

// Run fires the schedule against fire(i), sleeping between events. fire is
// called from the generator goroutine and must not block for long (post the
// event and return); blocking in fire would close the loop and distort the
// offered load. Run returns when the last event has been fired.
func (s *Source) Run(fire func(i int)) {
	sched := s.Schedule()
	start := time.Now()
	for i, off := range sched {
		if d := time.Until(start.Add(off)); d > 0 {
			time.Sleep(d)
		}
		fire(i)
	}
}

// Duration returns the nominal length of the run (last event offset).
func (s *Source) Duration() time.Duration {
	sched := s.Schedule()
	if len(sched) == 0 {
		return 0
	}
	return sched[len(sched)-1]
}

// VirtualUsers is a closed-loop load generator: Users concurrent clients
// each performing RequestsPerUser operations back to back, as in the
// paper's "load benchmark ... set up with 100 virtual users, with each user
// sending a constant number of requests".
type VirtualUsers struct {
	Users           int
	RequestsPerUser int
	// Think, when non-zero, inserts a fixed think time between a user's
	// consecutive requests.
	Think time.Duration
}

// Run executes do(user, request) from Users goroutines and blocks until all
// requests completed. It returns the wall-clock duration of the run.
func (v *VirtualUsers) Run(do func(user, req int)) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < v.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for r := 0; r < v.RequestsPerUser; r++ {
				do(u, r)
				if v.Think > 0 {
					time.Sleep(v.Think)
				}
			}
		}(u)
	}
	wg.Wait()
	return time.Since(start)
}

// Total returns the total number of requests the pool will issue.
func (v *VirtualUsers) Total() int { return v.Users * v.RequestsPerUser }

// MeanRate computes the achieved throughput for n operations over d.
func MeanRate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Loads returns the request-rate sweep of Evaluation A: 10 rounds from
// 10 to 100 requests/sec.
func Loads() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = 10 * float64(i+1)
	}
	return out
}

// ScaleLoads scales a load sweep by f (used by the benches to run the same
// sweep shape at machine-friendly magnitudes), rounding to one decimal.
func ScaleLoads(loads []float64, f float64) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = math.Round(l*f*10) / 10
	}
	return out
}
