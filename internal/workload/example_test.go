package workload_test

import (
	"fmt"

	"repro/internal/workload"
)

// ExampleSource_Schedule shows the deterministic open-loop schedules the
// Evaluation A harness fires events with.
func ExampleSource_Schedule() {
	src := &workload.Source{Rate: 100, Events: 4}
	for i, off := range src.Schedule() {
		fmt.Printf("event %d at +%v\n", i, off)
	}
	// Output:
	// event 0 at +0s
	// event 1 at +10ms
	// event 2 at +20ms
	// event 3 at +30ms
}

// ExampleVirtualUsers shows the closed-loop pool of Evaluation B.
func ExampleVirtualUsers() {
	vu := &workload.VirtualUsers{Users: 3, RequestsPerUser: 2}
	total := 0
	done := make(chan int, vu.Total())
	vu.Run(func(user, req int) { done <- 1 })
	close(done)
	for range done {
		total++
	}
	fmt.Println("requests:", total)
	// Output: requests: 6
}
