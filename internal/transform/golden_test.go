package transform

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGolden translates the paper's listings in testdata/*.go.in and
// compares against the checked-in golden outputs. Run with -update to
// regenerate the goldens after an intentional translation change.
func TestGolden(t *testing.T) {
	inputs, err := filepath.Glob(filepath.Join("testdata", "*.go.in"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) == 0 {
		t.Fatal("no golden inputs found")
	}
	for _, in := range inputs {
		in := in
		t.Run(filepath.Base(in), func(t *testing.T) {
			src, err := os.ReadFile(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := File(src, in, Options{})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			goldenPath := strings.TrimSuffix(in, ".in") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("translation of %s changed.\n--- got ---\n%s\n--- want ---\n%s", in, got, want)
			}
			// Goldens must not contain directives and must be gofmt-stable.
			if strings.Contains(string(got), "#omp") {
				t.Fatal("golden output still contains directives")
			}
			again, err := File(got, goldenPath, Options{})
			if err != nil {
				t.Fatalf("golden does not re-transform cleanly: %v", err)
			}
			if string(again) != string(got) {
				t.Fatal("golden output is not a fixed point of the transformer")
			}
		})
	}
}
