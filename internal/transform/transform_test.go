package transform

import (
	"strings"
	"testing"
)

func xform(t *testing.T, src string) string {
	t.Helper()
	out, err := File([]byte(src), "test.go", Options{})
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	return string(out)
}

func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func mustNotContain(t *testing.T, out string, bads ...string) {
	t.Helper()
	for _, b := range bads {
		if strings.Contains(out, b) {
			t.Fatalf("output still contains %q:\n%s", b, out)
		}
	}
}

const hdr = "package app\n\nfunc compute() {}\n\n"

func TestNoDirectivesUnchanged(t *testing.T) {
	src := "package app\n\n// ordinary comment\nfunc f() { compute() }\nfunc compute() {}\n"
	out := xform(t, src)
	if out != src {
		t.Fatalf("directive-free file was modified:\n%s", out)
	}
}

func TestTargetVirtualAwait(t *testing.T) {
	src := hdr + `func handler() {
	//#omp target virtual(worker) await
	{
		compute()
	}
	compute()
}
`
	out := xform(t, src)
	mustContain(t, out,
		`pyjama.TargetBlock("worker", pyjama.Await, "", func() {`,
		`"repro/internal/pyjama"`)
	mustNotContain(t, out, "#omp")
}

func TestTargetModes(t *testing.T) {
	cases := []struct{ dir, want string }{
		{"//#omp target virtual(worker)", `pyjama.Wait`},
		{"//#omp target virtual(worker) nowait", `pyjama.Nowait`},
		{"//#omp target virtual(worker) await", `pyjama.Await`},
		{"//#omp target virtual(worker) name_as(dl)", `pyjama.NameAs, "dl"`},
	}
	for _, c := range cases {
		src := hdr + "func h() {\n\t" + c.dir + "\n\t{\n\t\tcompute()\n\t}\n}\n"
		out := xform(t, src)
		mustContain(t, out, c.want)
	}
}

func TestTargetDeviceMapsToNamedTarget(t *testing.T) {
	src := hdr + `func h() {
	//#omp target device(0)
	{
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.TargetBlock("device0", pyjama.Wait`)
}

func TestTargetIfClause(t *testing.T) {
	src := hdr + `func h(n int) {
	//#omp target virtual(worker) nowait if(n > 10)
	{
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.TargetBlockIf(n > 10, "worker", pyjama.Nowait`)
}

func TestNestedTargetsSectionIVA(t *testing.T) {
	// The exact shape of the Section IV.A compilation example.
	src := hdr + `func onClick() {
	setText("Start Processing Task!")
	//#omp target virtual(worker) await
	{
		compute() // S1
		//#omp target virtual(edt) nowait
		{
			setText("half") // S2
		}
		compute() // S3
	}
	setText("Task finished") // S4
}
func setText(s string) {}
`
	out := xform(t, src)
	mustContain(t, out,
		`pyjama.TargetBlock("worker", pyjama.Await, "", func() {`,
		`pyjama.TargetBlock("edt", pyjama.Nowait, "", func() {`)
	// The nested block must be inside the outer closure.
	outer := strings.Index(out, `pyjama.TargetBlock("worker"`)
	inner := strings.Index(out, `pyjama.TargetBlock("edt"`)
	if !(outer >= 0 && inner > outer) {
		t.Fatalf("nesting order wrong:\n%s", out)
	}
	mustNotContain(t, out, "#omp")
}

func TestStandaloneWait(t *testing.T) {
	src := hdr + `func h() {
	//#omp target virtual(worker) name_as(a)
	{
		compute()
	}
	//#omp wait(a, b)
	compute()
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.WaitFor("a", "b")`)
}

func TestTrailingStandaloneWait(t *testing.T) {
	// A wait directive as the last thing in a block (no following stmt).
	src := hdr + `func h() {
	//#omp target virtual(worker) name_as(a)
	{
		compute()
	}
	//#omp wait(a)
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.WaitFor("a")`)
}

func TestParallelRegion(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel num_threads(4)
	{
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out,
		`omp.Parallel(4, func(__omp_tc *omp.Team) {`,
		`"repro/internal/omp"`)
}

func TestParallelWithIf(t *testing.T) {
	src := hdr + `func h(big bool) {
	//#omp parallel num_threads(8) if(big)
	{
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `omp.Parallel(pyjama.TeamSize(big, 8), func(__omp_tc *omp.Team) {`)
}

func TestParallelFor(t *testing.T) {
	src := hdr + `func h(data []int) {
	//#omp parallel for num_threads(4) schedule(dynamic, 16)
	for i := 0; i < len(data); i++ {
		data[i]++
	}
}
`
	out := xform(t, src)
	mustContain(t, out,
		`omp.ParallelForSchedule(4, 0, len(data), omp.Dynamic, 16, func(i int) {`)
}

func TestParallelForLeq(t *testing.T) {
	src := hdr + `func h(n int) {
	//#omp parallel for
	for i := 1; i <= n; i++ {
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `omp.ParallelForSchedule(0, 1, (n)+1, omp.Static, 0, func(i int) {`)
}

func TestForInsideParallel(t *testing.T) {
	src := hdr + `func h(data []int) {
	//#omp parallel num_threads(2)
	{
		//#omp for schedule(static) nowait
		for i := 0; i < len(data); i++ {
			data[i]++
		}
		//#omp barrier
		compute()
	}
}
`
	out := xform(t, src)
	mustContain(t, out,
		`__omp_tc.ForNowait(0, len(data), omp.Static, 0, func(i int) {`,
		`__omp_tc.Barrier()`)
}

func TestOrphanedWorksharingSerializes(t *testing.T) {
	src := hdr + `func h(data []int) {
	//#omp for
	for i := 0; i < len(data); i++ {
		data[i]++
	}
	//#omp barrier
	//#omp taskwait
	compute()
}
`
	out := xform(t, src)
	mustContain(t, out, "for i := 0; i < len(data); i++ {")
	mustNotContain(t, out, "__omp_tc", "#omp")
}

func TestOrphanedTaskInline(t *testing.T) {
	src := hdr + `func h() {
	//#omp task
	{
		compute()
	}
}
`
	out := xform(t, src)
	mustNotContain(t, out, "__omp_tc", "#omp")
	mustContain(t, out, "compute()")
}

func TestTaskAndTaskwaitInParallel(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel
	{
		//#omp task
		{
			compute()
		}
		//#omp taskwait
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `__omp_tc.Task(func() {`, `__omp_tc.Taskwait()`)
}

func TestSingleMasterCritical(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel
	{
		//#omp single
		{
			compute()
		}
		//#omp master
		{
			compute()
		}
		//#omp critical(update)
		{
			compute()
		}
		//#omp critical
		{
			compute()
		}
	}
}
`
	out := xform(t, src)
	mustContain(t, out,
		`__omp_tc.Single(func() {`,
		`__omp_tc.Master(func() {`,
		`omp.Critical("update", func() {`,
		`omp.Critical("unnamed", func() {`)
}

func TestSectionsInParallel(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel
	{
		//#omp sections
		{
			//#omp section
			{
				compute()
			}
			//#omp section
			{
				compute()
			}
		}
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `__omp_tc.Sections(`)
	if strings.Count(out, "func() {") < 2 { // one closure per section
		t.Fatalf("sections not expanded:\n%s", out)
	}
}

func TestOrphanedSectionsSequential(t *testing.T) {
	src := hdr + `func h() {
	//#omp sections
	{
		//#omp section
		{
			compute()
		}
		//#omp section
		{
			compute()
		}
	}
}
`
	out := xform(t, src)
	mustNotContain(t, out, "__omp_tc", "#omp")
	// Two section bodies plus the compute declaration in the header.
	if strings.Count(out, "compute()") != 3 {
		t.Fatalf("sections bodies lost:\n%s", out)
	}
}

func TestFirstprivateShadows(t *testing.T) {
	src := hdr + `func h() {
	x := 1
	//#omp target virtual(worker) nowait firstprivate(x)
	{
		_ = x
	}
	_ = x
}
`
	out := xform(t, src)
	mustContain(t, out, "x := x")
}

func TestDirectiveInsideFuncLit(t *testing.T) {
	src := hdr + `func h() {
	cb := func() {
		//#omp target virtual(worker) nowait
		{
			compute()
		}
	}
	cb()
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.TargetBlock("worker", pyjama.Nowait`)
}

func TestDirectiveInsideSwitchCase(t *testing.T) {
	src := hdr + `func h(k int) {
	switch k {
	case 1:
		//#omp target virtual(worker) nowait
		{
			compute()
		}
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.TargetBlock("worker"`)
}

func TestExistingImportReused(t *testing.T) {
	src := `package app

import "repro/internal/pyjama"

var _ = pyjama.Wait

func compute() {}

func h() {
	//#omp target virtual(worker) nowait
	{
		compute()
	}
}
`
	out := xform(t, src)
	if strings.Count(out, `"repro/internal/pyjama"`) != 1 {
		t.Fatalf("duplicate import:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"dangling block directive", hdr + "func h() {\n\t//#omp target virtual(w) nowait\n}\n"},
		{"target on non-block", hdr + "func h() {\n\t//#omp target virtual(w)\n\tcompute()\n}\n"},
		{"parallel for on non-loop", hdr + "func h() {\n\t//#omp parallel for\n\t{\n\t\tcompute()\n\t}\n}\n"},
		{"non-canonical loop", hdr + "func h(xs []int) {\n\t//#omp parallel for\n\tfor _, x := range xs {\n\t\t_ = x\n\t}\n}\n"},
		{"bad directive syntax", hdr + "func h() {\n\t//#omp target virtual(\n\t{\n\t}\n}\n"},
		{"section outside sections", hdr + "func h() {\n\t//#omp section\n\t{\n\t\tcompute()\n\t}\n}\n"},
		{"stray stmt in sections", hdr + "func h() {\n\t//#omp sections\n\t{\n\t\tcompute()\n\t}\n}\n"},
		{"reduction unsupported", hdr + "func h() {\n\t//#omp parallel reduction(+:x)\n\t{\n\t\tcompute()\n\t}\n}\n"},
		{"not go source", "not valid go"},
	}
	for _, c := range cases {
		if _, err := File([]byte(c.src), "bad.go", Options{}); err == nil {
			t.Errorf("%s: expected error, got none", c.name)
		}
	}
}

func TestOutputIsGofmted(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel num_threads(2)
	{
		//#omp for
		for i := 0; i < 10; i++ {
			compute()
		}
	}
}
`
	out := xform(t, src)
	// format.Source output is stable under re-formatting.
	out2 := xform(t, out)
	if out != out2 {
		t.Fatalf("output not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out, out2)
	}
}

func TestDeviceMapClauseRejected(t *testing.T) {
	src := hdr + `func h(x []byte) {
	//#omp target device(0) map(tofrom: x)
	{
		compute()
	}
}
`
	if _, err := File([]byte(src), "dev.go", Options{}); err == nil ||
		!strings.Contains(err.Error(), "map clauses") {
		t.Fatalf("err = %v, want map-clause rejection", err)
	}
}

func TestTargetDataRejectedWithGuidance(t *testing.T) {
	src := hdr + `func h(x []byte) {
	//#omp target data device(0) map(to: x)
	{
		compute()
	}
}
`
	if _, err := File([]byte(src), "td.go", Options{}); err == nil ||
		!strings.Contains(err.Error(), "internal/device") {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelSectionsCombined(t *testing.T) {
	src := hdr + `func h() {
	//#omp parallel sections num_threads(2)
	{
		//#omp section
		{
			compute()
		}
		//#omp section
		{
			compute()
		}
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `omp.ParallelSections(2,`)
	mustNotContain(t, out, "#omp", "__omp_tc")
}

func TestDirectiveInsideSelectCase(t *testing.T) {
	src := hdr + `func h(ch chan int) {
	select {
	case <-ch:
		//#omp target virtual(worker) nowait
		{
			compute()
		}
	default:
	}
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.TargetBlock("worker"`)
}

func TestDirectiveInsideMethodAndIfElse(t *testing.T) {
	src := `package app

func compute() {}

type svc struct{}

func (s *svc) handle(ok bool) {
	if ok {
		//#omp target virtual(worker) nowait
		{
			compute()
		}
	} else {
		//#omp target virtual(worker) await
		{
			compute()
		}
	}
}
`
	out := xform(t, src)
	mustContain(t, out, "pyjama.Nowait", "pyjama.Await")
	mustNotContain(t, out, "#omp")
}

func TestDirectiveInsideRangeLoopBody(t *testing.T) {
	src := hdr + `func h(xs []int) {
	for range xs {
		//#omp target virtual(worker) name_as(g)
		{
			compute()
		}
	}
	//#omp wait(g)
}
`
	out := xform(t, src)
	mustContain(t, out, `pyjama.NameAs, "g"`, `pyjama.WaitFor("g")`)
}
