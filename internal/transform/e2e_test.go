package transform

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
}

// TestEndToEndCompileAndRun transforms a full annotated program, compiles it
// with the real Go toolchain inside this module (so the internal packages
// are importable), runs it, and checks the observable ordering — the
// compiler and runtime working together on the Section IV.A flow.
func TestEndToEndCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the go toolchain")
	}
	const prog = `package main

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pyjama"
)

var counter atomic.Int64

func step(name string) {
	fmt.Printf("step %d %s\n", counter.Add(1), name)
}

func main() {
	if _, err := pyjama.CreateWorker("worker", 2); err != nil {
		panic(err)
	}
	step("start")
	//#omp target virtual(worker) name_as(job)
	{
		step("offloaded")
	}
	//#omp wait(job)
	step("after-wait")

	total := 0
	//#omp parallel for num_threads(4) schedule(dynamic, 4)
	for i := 0; i < 100; i++ {
		_ = i
	}
	//#omp parallel num_threads(3)
	{
		//#omp critical(sum)
		{
			total++
		}
	}
	fmt.Println("total", total)
	//#omp target virtual(worker) await
	{
		step("awaited")
	}
	step("end")
}
`
	out, err := File([]byte(prog), "main.go", Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir, err := os.MkdirTemp(repoRoot(t), "pjc-e2e-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), out, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	stdout, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n--- output ---\n%s\n--- generated ---\n%s", err, stdout, out)
	}
	got := strings.TrimSpace(string(stdout))
	lines := strings.Split(got, "\n")
	want := []string{
		"step 1 start",
		"step 2 offloaded",
		"step 3 after-wait",
		"total 3",
		"step 4 awaited",
		"step 5 end",
	}
	if len(lines) != len(want) {
		t.Fatalf("output:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q\nfull output:\n%s", i, lines[i], want[i], got)
		}
	}
}

// TestAnnotatedExampleEquivalence runs examples/annotated both as-is
// (directives ignored — sequential semantics) and after pjc translation,
// asserting identical observable output: the paper's "adding directives
// does not influence the original correctness" at whole-program scale.
func TestAnnotatedExampleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the go toolchain")
	}
	root := repoRoot(t)
	exDir := filepath.Join(root, "examples", "annotated")

	run := func(dir string) []string {
		cmd := exec.Command("go", "run", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %s: %v\n%s", dir, err, out)
		}
		var kept []string
		for _, l := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if strings.Contains(l, "total") && strings.Contains(l, "in ") {
				// Timing varies; keep only the checksum part.
				l = strings.SplitN(l, " in ", 2)[0]
			}
			kept = append(kept, l)
		}
		return kept
	}

	seqOut := run(exDir)

	src, err := os.ReadFile(filepath.Join(exDir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	translated, err := File(src, "main.go", Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, "pjc-annotated-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), translated, 0o644); err != nil {
		t.Fatal(err)
	}
	pjOut := run(dir)

	if strings.Join(seqOut, "\n") != strings.Join(pjOut, "\n") {
		t.Fatalf("sequential and translated outputs differ:\n--- sequential ---\n%s\n--- translated ---\n%s",
			strings.Join(seqOut, "\n"), strings.Join(pjOut, "\n"))
	}
}

// TestPjcVetFlag runs the real pjc binary with -vet: a file carrying a
// clause conflict and a static self-wait must stop translation with a
// non-zero exit, and a clean file must translate as usual.
func TestPjcVetFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the go toolchain")
	}
	root := repoRoot(t)
	dir, err := os.MkdirTemp(root, "pjc-vet-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	bad := filepath.Join(dir, "bad.go")
	const badSrc = `package main

func main() {
	//#omp target virtual(render) name_as(frame)
	{
		//#omp wait(frame)
	}
	//#omp target virtual(edt) nowait await
	{
	}
}
`
	if err := os.WriteFile(bad, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/pjc", "-vet", bad)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("pjc -vet accepted a file with vet findings:\n%s", out)
	}
	for _, want := range []string{
		"conflicting scheduling clauses",
		`scheduled on "render" itself`,
		"not translating",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("pjc -vet output missing %q:\n%s", want, out)
		}
	}

	good := filepath.Join(dir, "good.go")
	const goodSrc = `package main

func main() {
	//#omp target virtual(worker) name_as(job)
	{
		println("work")
	}
	//#omp wait(job)
}
`
	if err := os.WriteFile(good, []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command("go", "run", "./cmd/pjc", "-vet", good)
	cmd.Dir = root
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("pjc -vet rejected a clean file: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pyjama.TargetBlock") {
		t.Fatalf("clean file was not translated:\n%s", out)
	}
}
