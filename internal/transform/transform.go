// Package transform is the source-to-source compiler of the reproduction:
// the counterpart of the Pyjama compiler described in Section IV.A. It
// parses Go source containing //#omp directive comments, attaches each
// directive to its structured block (or canonical for-loop), and rewrites
// the code into calls to the pyjama runtime facade and the omp fork-join
// substrate — e.g.
//
//	//#omp target virtual(worker) await
//	{
//		computeHalf1()
//	}
//
// becomes
//
//	pyjama.TargetBlock("worker", pyjama.Await, "", func() {
//		computeHalf1()
//	})
//
// mirroring the TargetRegion/invokeTargetBlock translation the paper shows.
// The rewriting is AST-guided but textual (original formatting outside
// rewritten regions is preserved) and the result is run through go/format.
//
// Known, documented divergences from full OpenMP:
//   - private(x) is translated like firstprivate(x) (an initialized
//     goroutine-local copy instead of an undefined one);
//   - default(none) is accepted but not enforced;
//   - reduction clauses are rejected — write the reduction with
//     omp.Reduce/omp.ParallelReduce by hand;
//   - a worksharing directive nested in a target block inside a parallel
//     region binds to the enclosing team, which is almost never what you
//     want — avoid it.
package transform

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"repro/internal/directive"
)

// Options configures the translation.
type Options struct {
	// PyjamaImport is the import path of the runtime facade package
	// (default "repro/internal/pyjama").
	PyjamaImport string
	// OmpImport is the import path of the fork-join substrate
	// (default "repro/internal/omp").
	OmpImport string
}

func (o *Options) fill() {
	if o.PyjamaImport == "" {
		o.PyjamaImport = "repro/internal/pyjama"
	}
	if o.OmpImport == "" {
		o.OmpImport = "repro/internal/omp"
	}
}

// File translates one Go source file. It returns the formatted transformed
// source; when the file contains no directives it returns src unchanged.
func File(src []byte, filename string, opts Options) ([]byte, error) {
	opts.fill()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	rw := &rewriter{
		src:   src,
		fset:  fset,
		file:  f,
		opts:  opts,
		byEnd: map[int]*pendingDirective{},
	}
	if err := rw.collectDirectives(); err != nil {
		return nil, err
	}
	if len(rw.byEnd) == 0 {
		return src, nil
	}
	rw.associate()
	rw.analyze()
	if len(rw.errs) > 0 {
		return nil, rw.errs[0]
	}
	out := rw.render()
	if len(rw.errs) > 0 {
		return nil, rw.errs[0]
	}
	formatted, err := format.Source([]byte(out))
	if err != nil {
		// A formatting failure means we generated invalid code: surface the
		// raw output in the error to make the bug diagnosable.
		return nil, fmt.Errorf("transform: generated invalid code: %w\n--- generated ---\n%s", err, out)
	}
	return formatted, nil
}

// pendingDirective is a parsed directive comment awaiting association.
type pendingDirective struct {
	d       *directive.Directive
	comment *ast.Comment
	line    int // line the comment ends on
	used    bool
}

// pair is a directive associated with (optionally) its structured block or
// canonical loop.
type pair struct {
	d       *directive.Directive
	comment *ast.Comment
	stmt    ast.Stmt       // nil for standalone directives
	block   *ast.BlockStmt // set when stmt is a block
	forStmt *ast.ForStmt   // set when stmt is a for statement

	cStart, cEnd int // comment byte offsets
	sEnd         int // end offset of the replaced region (== cEnd when standalone)

	inPar    bool
	consumed bool    // handled by an enclosing sections pair
	sections []*pair // for KindSections: its section children
}

type rewriter struct {
	src  []byte
	fset *token.FileSet
	file *ast.File
	opts Options

	byEnd map[int]*pendingDirective
	pairs []*pair
	errs  []error

	needsPyjama bool
	needsOmp    bool
}

func (rw *rewriter) errorf(pos token.Pos, format string, args ...any) {
	p := rw.fset.Position(pos)
	rw.errs = append(rw.errs, fmt.Errorf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
}

func (rw *rewriter) offset(pos token.Pos) int { return rw.fset.Position(pos).Offset }
func (rw *rewriter) line(pos token.Pos) int   { return rw.fset.Position(pos).Line }

// collectDirectives parses every //#omp comment in the file.
func (rw *rewriter) collectDirectives() error {
	for _, grp := range rw.file.Comments {
		for _, c := range grp.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !directive.IsDirectiveComment(text) {
				continue
			}
			d, err := directive.Parse(text)
			if err != nil {
				p := rw.fset.Position(c.Pos())
				return fmt.Errorf("%s:%d: %w", p.Filename, p.Line, err)
			}
			if d.Kind == directive.KindTargetData || d.Kind == directive.KindTargetUpdate {
				// Rewriting device data environments requires retargeting
				// variable accesses at device memory; out of pjc's scope.
				p := rw.fset.Position(c.Pos())
				return fmt.Errorf("%s:%d: pjc does not translate %q; use the internal/device API (TargetData/CopyTo/CopyFrom) directly",
					p.Filename, p.Line, d.Kind)
			}
			rw.byEnd[rw.line(c.End())] = &pendingDirective{d: d, comment: c, line: rw.line(c.End())}
		}
	}
	return nil
}

// associate walks every statement list and binds directives to the
// statement starting on the line right below them.
func (rw *rewriter) associate() {
	bind := func(list []ast.Stmt) {
		for _, st := range list {
			pd, ok := rw.byEnd[rw.line(st.Pos())-1]
			if !ok || pd.used {
				continue
			}
			pd.used = true
			rw.makePair(pd, st)
		}
	}
	ast.Inspect(rw.file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			bind(v.List)
		case *ast.CaseClause:
			bind(v.Body)
		case *ast.CommClause:
			bind(v.Body)
		}
		return true
	})
	// Directives not bound to any statement: standalone kinds become
	// freestanding pairs; block kinds are errors.
	for _, pd := range rw.byEnd {
		if pd.used {
			continue
		}
		switch pd.d.Kind {
		case directive.KindWait, directive.KindBarrier, directive.KindTaskwait:
			pd.used = true
			rw.pairs = append(rw.pairs, &pair{
				d: pd.d, comment: pd.comment,
				cStart: rw.offset(pd.comment.Pos()),
				cEnd:   rw.offset(pd.comment.End()),
				sEnd:   rw.offset(pd.comment.End()),
			})
		default:
			rw.errorf(pd.comment.Pos(), "directive %q is not followed by a statement on the next line", pd.d.Kind)
		}
	}
	sort.Slice(rw.pairs, func(i, j int) bool { return rw.pairs[i].cStart < rw.pairs[j].cStart })
}

func (rw *rewriter) makePair(pd *pendingDirective, st ast.Stmt) {
	p := &pair{
		d: pd.d, comment: pd.comment, stmt: st,
		cStart: rw.offset(pd.comment.Pos()),
		cEnd:   rw.offset(pd.comment.End()),
		sEnd:   rw.offset(st.End()),
	}
	switch pd.d.Kind {
	case directive.KindWait, directive.KindBarrier, directive.KindTaskwait:
		// Standalone: the following statement is not consumed.
		p.stmt = nil
		p.sEnd = p.cEnd
	case directive.KindFor, directive.KindParallelFor:
		fs, ok := st.(*ast.ForStmt)
		if !ok {
			rw.errorf(st.Pos(), "directive %q must be followed by a for statement", pd.d.Kind)
			return
		}
		p.forStmt = fs
	default:
		bs, ok := st.(*ast.BlockStmt)
		if !ok {
			rw.errorf(st.Pos(), "directive %q must be followed by a structured block", pd.d.Kind)
			return
		}
		p.block = bs
	}
	rw.pairs = append(rw.pairs, p)
}

// analyze computes parallel-region nesting and sections structure.
func (rw *rewriter) analyze() {
	// inPar: the pair lies inside the block of a parallel pair.
	for _, p := range rw.pairs {
		for _, q := range rw.pairs {
			if q.d.Kind == directive.KindParallel && q.block != nil &&
				q.cStart < p.cStart && p.sEnd <= q.sEnd {
				p.inPar = true
				break
			}
		}
	}
	// Sections (and parallel sections): claim their section children.
	for _, p := range rw.pairs {
		if (p.d.Kind != directive.KindSections && p.d.Kind != directive.KindParallelSections) || p.block == nil {
			continue
		}
		for _, st := range p.block.List {
			child := rw.pairForStmt(st)
			if child == nil || child.d.Kind != directive.KindSection {
				rw.errorf(st.Pos(), "every statement in a sections region must be a //#omp section block")
				continue
			}
			child.consumed = true
			p.sections = append(p.sections, child)
		}
	}
	// Orphaned section directives (outside any sections region).
	for _, p := range rw.pairs {
		if p.d.Kind == directive.KindSection && !p.consumed {
			rw.errorf(p.comment.Pos(), "section directive outside a sections region")
		}
	}
	// Reduction clauses are not translatable without type information.
	for _, p := range rw.pairs {
		if p.d.Has(directive.ClauseReduction) {
			rw.errorf(p.comment.Pos(), "reduction clauses are not supported by pjc; use omp.Reduce in hand-written code")
		}
	}
}

func (rw *rewriter) pairForStmt(st ast.Stmt) *pair {
	for _, p := range rw.pairs {
		if p.stmt == st {
			return p
		}
	}
	return nil
}

// render produces the rewritten file text.
func (rw *rewriter) render() string {
	body := rw.splice(0, len(rw.src), nil)
	return rw.injectImports(body)
}

// splice copies src[start:end], replacing every top-most, unconsumed pair in
// the range with its rendering. except, when non-nil, is skipped (used by a
// pair rendering its own range).
func (rw *rewriter) splice(start, end int, except *pair) string {
	var b strings.Builder
	cur := start
	for _, p := range rw.pairs {
		if p == except || p.consumed {
			continue
		}
		if p.cStart < cur || p.sEnd > end {
			continue // outside the window or already covered by a previous pair
		}
		b.WriteString(string(rw.src[cur:p.cStart]))
		b.WriteString(rw.renderPair(p))
		cur = p.sEnd
	}
	b.WriteString(string(rw.src[cur:end]))
	return b.String()
}

// inner returns the rewritten text of a block's interior (between braces).
func (rw *rewriter) inner(b *ast.BlockStmt) string {
	return rw.splice(rw.offset(b.Lbrace)+1, rw.offset(b.Rbrace), nil)
}

// exprText returns the original source text of an expression.
func (rw *rewriter) exprText(e ast.Expr) string {
	return string(rw.src[rw.offset(e.Pos()):rw.offset(e.End())])
}

func (rw *rewriter) renderPair(p *pair) string {
	switch p.d.Kind {
	case directive.KindTarget:
		return rw.renderTarget(p)
	case directive.KindWait:
		return rw.renderWait(p)
	case directive.KindParallel:
		return rw.renderParallel(p)
	case directive.KindParallelFor:
		return rw.renderParallelFor(p)
	case directive.KindFor:
		return rw.renderFor(p)
	case directive.KindBarrier:
		if p.inPar {
			return "__omp_tc.Barrier()"
		}
		return "" // orphaned barrier: sequential no-op
	case directive.KindTaskwait:
		if p.inPar {
			return "__omp_tc.Taskwait()"
		}
		return ""
	case directive.KindSingle:
		if p.inPar {
			return fmt.Sprintf("__omp_tc.Single(func() {%s})", rw.inner(p.block))
		}
		return "{" + rw.inner(p.block) + "}"
	case directive.KindMaster:
		if p.inPar {
			return fmt.Sprintf("__omp_tc.Master(func() {%s})", rw.inner(p.block))
		}
		return "{" + rw.inner(p.block) + "}"
	case directive.KindCritical:
		rw.needsOmp = true
		name := p.d.Name
		if name == "" {
			name = "unnamed"
		}
		return fmt.Sprintf("omp.Critical(%q, func() {%s})", name, rw.inner(p.block))
	case directive.KindTask:
		if p.inPar {
			return fmt.Sprintf("__omp_tc.Task(func() {%s%s})", rw.shadows(p.d), rw.inner(p.block))
		}
		// Orphaned task executes sequentially (Section I: "an orphaned task
		// directive will execute sequentially").
		return "{" + rw.inner(p.block) + "}"
	case directive.KindSections:
		return rw.renderSections(p)
	case directive.KindParallelSections:
		rw.needsOmp = true
		var parts []string
		for _, sec := range p.sections {
			parts = append(parts, fmt.Sprintf("func() {%s}", rw.inner(sec.block)))
		}
		return fmt.Sprintf("omp.ParallelSections(%s,\n%s,\n)", rw.teamSize(p), strings.Join(parts, ",\n"))
	default:
		rw.errorf(p.comment.Pos(), "unhandled directive %q", p.d.Kind)
		return ""
	}
}

// shadows generates goroutine-local copies for private/firstprivate vars.
func (rw *rewriter) shadows(d *directive.Directive) string {
	var b strings.Builder
	for _, c := range d.Clauses {
		if c.Kind != directive.ClausePrivate && c.Kind != directive.ClauseFirstprivate {
			continue
		}
		for _, v := range c.Args {
			fmt.Fprintf(&b, "\n%s := %s\n_ = %s\n", v, v, v)
		}
	}
	return b.String()
}

func (rw *rewriter) renderTarget(p *pair) string {
	rw.needsPyjama = true
	name := p.d.TargetName()
	if name == "" {
		if p.d.Has(directive.ClauseMap) {
			// Rewriting a mapped device block would require retargeting
			// every variable access at device memory — deep compiler work
			// out of scope for pjc. Unified-shared-memory style (no map
			// clauses, device queue shares host memory) translates fine.
			rw.errorf(p.comment.Pos(),
				"pjc cannot rewrite device blocks with map clauses; drop the map clauses (unified-shared-memory mode) or call the internal/device API directly")
			return ""
		}
		if c := p.d.Clause(directive.ClauseDevice); c != nil {
			// No physical accelerators in this environment: device targets
			// map onto virtual targets named "device<N>" that the host
			// program must register (documented substitution).
			name = "device" + c.Arg(0)
		}
	}
	mode := "Wait"
	tag := ""
	switch m, tg := p.d.SchedulingMode(); m {
	case directive.ClauseNowait:
		mode = "Nowait"
	case directive.ClauseAwait:
		mode = "Await"
	case directive.ClauseNameAs:
		mode, tag = "NameAs", tg
	}
	body := rw.shadows(p.d) + rw.inner(p.block)
	if c := p.d.Clause(directive.ClauseIf); c != nil {
		return fmt.Sprintf("pyjama.TargetBlockIf(%s, %q, pyjama.%s, %q, func() {%s})",
			c.Arg(0), name, mode, tag, body)
	}
	return fmt.Sprintf("pyjama.TargetBlock(%q, pyjama.%s, %q, func() {%s})", name, mode, tag, body)
}

func (rw *rewriter) renderWait(p *pair) string {
	rw.needsPyjama = true
	c := p.d.Clause(directive.ClauseWait)
	quoted := make([]string, len(c.Args))
	for i, a := range c.Args {
		quoted[i] = strconv.Quote(a)
	}
	return fmt.Sprintf("pyjama.WaitFor(%s)", strings.Join(quoted, ", "))
}

// teamSize renders the num_threads/if clause combination of a parallel
// directive.
func (rw *rewriter) teamSize(p *pair) string {
	nt := "0"
	if c := p.d.Clause(directive.ClauseNumThreads); c != nil {
		nt = c.Arg(0)
	}
	if c := p.d.Clause(directive.ClauseIf); c != nil {
		rw.needsPyjama = true
		return fmt.Sprintf("pyjama.TeamSize(%s, %s)", c.Arg(0), nt)
	}
	return nt
}

func (rw *rewriter) renderParallel(p *pair) string {
	rw.needsOmp = true
	return fmt.Sprintf("omp.Parallel(%s, func(__omp_tc *omp.Team) {%s%s})",
		rw.teamSize(p), rw.shadows(p.d), rw.inner(p.block))
}

// schedule renders a schedule clause into (omp.Kind, chunk) arguments.
func (rw *rewriter) schedule(p *pair) (string, string) {
	kind, chunk := "omp.Static", "0"
	if c := p.d.Clause(directive.ClauseSchedule); c != nil {
		switch c.Arg(0) {
		case "static":
			kind = "omp.Static"
		case "dynamic":
			kind = "omp.Dynamic"
		case "guided":
			kind = "omp.Guided"
		}
		if len(c.Args) == 2 {
			chunk = c.Arg(1)
		}
	}
	return kind, chunk
}

// canonicalLoop extracts (ivar, lo, hi) from a loop of the canonical form
// `for i := lo; i < hi; i++` (or <=, in which case hi becomes `(hi)+1`).
func (rw *rewriter) canonicalLoop(fs *ast.ForStmt) (ivar, lo, hi string, ok bool) {
	assign, okA := fs.Init.(*ast.AssignStmt)
	if !okA || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	id, okI := assign.Lhs[0].(*ast.Ident)
	if !okI {
		return
	}
	cond, okC := fs.Cond.(*ast.BinaryExpr)
	if !okC {
		return
	}
	condX, okX := cond.X.(*ast.Ident)
	if !okX || condX.Name != id.Name {
		return
	}
	switch cond.Op {
	case token.LSS:
		hi = rw.exprText(cond.Y)
	case token.LEQ:
		hi = "(" + rw.exprText(cond.Y) + ")+1"
	default:
		return
	}
	inc, okP := fs.Post.(*ast.IncDecStmt)
	if !okP || inc.Tok != token.INC {
		return
	}
	incX, okIX := inc.X.(*ast.Ident)
	if !okIX || incX.Name != id.Name {
		return
	}
	return id.Name, rw.exprText(assign.Rhs[0]), hi, true
}

func (rw *rewriter) renderParallelFor(p *pair) string {
	ivar, lo, hi, ok := rw.canonicalLoop(p.forStmt)
	if !ok {
		rw.errorf(p.forStmt.Pos(), "parallel for requires the canonical form `for i := lo; i < hi; i++`")
		return ""
	}
	rw.needsOmp = true
	kind, chunk := rw.schedule(p)
	return fmt.Sprintf("omp.ParallelForSchedule(%s, %s, %s, %s, %s, func(%s int) {%s%s})",
		rw.teamSize(p), lo, hi, kind, chunk, ivar, rw.shadows(p.d), rw.inner(p.forStmt.Body))
}

func (rw *rewriter) renderFor(p *pair) string {
	if !p.inPar {
		// Orphaned worksharing loop binds to a team of one: the loop runs
		// unchanged, only the directive is removed.
		return rw.splice(rw.offset(p.forStmt.Pos()), rw.offset(p.forStmt.End()), p)
	}
	ivar, lo, hi, ok := rw.canonicalLoop(p.forStmt)
	if !ok {
		rw.errorf(p.forStmt.Pos(), "omp for requires the canonical form `for i := lo; i < hi; i++`")
		return ""
	}
	rw.needsOmp = true
	kind, chunk := rw.schedule(p)
	method := "For"
	if p.d.Has(directive.ClauseNowait) {
		method = "ForNowait"
	}
	return fmt.Sprintf("__omp_tc.%s(%s, %s, %s, %s, func(%s int) {%s%s})",
		method, lo, hi, kind, chunk, ivar, rw.shadows(p.d), rw.inner(p.forStmt.Body))
}

func (rw *rewriter) renderSections(p *pair) string {
	var parts []string
	for _, sec := range p.sections {
		parts = append(parts, fmt.Sprintf("func() {%s}", rw.inner(sec.block)))
	}
	if p.inPar {
		return fmt.Sprintf("__omp_tc.Sections(\n%s,\n)", strings.Join(parts, ",\n"))
	}
	// Orphaned sections run sequentially in order.
	var b strings.Builder
	b.WriteString("{")
	for _, sec := range p.sections {
		b.WriteString("\n{")
		b.WriteString(rw.inner(sec.block))
		b.WriteString("}")
	}
	b.WriteString("\n}")
	return b.String()
}

// injectImports adds the pyjama/omp imports the generated code references,
// reusing existing imports (and their aliases) when present.
func (rw *rewriter) injectImports(body string) string {
	type need struct {
		path string
		name string // expected package identifier in generated code
	}
	var needs []need
	if rw.needsPyjama {
		needs = append(needs, need{rw.opts.PyjamaImport, "pyjama"})
	}
	if rw.needsOmp {
		needs = append(needs, need{rw.opts.OmpImport, "omp"})
	}
	if len(needs) == 0 {
		return body
	}
	var missing []string
	for _, n := range needs {
		found := false
		for _, imp := range rw.file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == n.path {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, strconv.Quote(n.path))
		}
	}
	if len(missing) == 0 {
		return body
	}
	// Insert a new import statement right after the package clause. The
	// package clause precedes every directive, so its offset is unshifted
	// by the splicing above; format.Source then merges declarations.
	pkgEnd := rw.offset(rw.file.Name.End())
	ins := "\n\nimport (\n\t" + strings.Join(missing, "\n\t") + "\n)\n"
	return body[:pkgEnd] + ins + body[pkgEnd:]
}
