package transform

import (
	"fmt"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

// genProgram builds a random but valid directive-annotated program:
// arbitrary nesting of target blocks (all modes), parallel regions with
// worksharing loops, tasks, criticals and waits.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("package fuzz\n\nfunc compute(i int) {}\n\nfunc handler(data []int) {\n")
	genBlockBody(rng, &b, 3, false)
	b.WriteString("}\n")
	return b.String()
}

func genBlockBody(rng *rand.Rand, b *strings.Builder, depth int, inPar bool) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		if depth <= 0 {
			fmt.Fprintf(b, "compute(%d)\n", rng.Intn(10))
			continue
		}
		switch rng.Intn(8) {
		case 0:
			fmt.Fprintf(b, "compute(%d)\n", rng.Intn(10))
		case 1:
			mode := []string{"", " nowait", " await", " name_as(t" + fmt.Sprint(rng.Intn(3)) + ")"}[rng.Intn(4)]
			target := []string{"worker", "edt", "io"}[rng.Intn(3)]
			fmt.Fprintf(b, "//#omp target virtual(%s)%s\n{\n", target, mode)
			genBlockBody(rng, b, depth-1, inPar)
			b.WriteString("}\n")
		case 2:
			fmt.Fprintf(b, "//#omp parallel num_threads(%d)\n{\n", 1+rng.Intn(4))
			genBlockBody(rng, b, depth-1, true)
			b.WriteString("}\n")
		case 3:
			sched := []string{"static", "dynamic", "guided"}[rng.Intn(3)]
			fmt.Fprintf(b, "//#omp parallel for schedule(%s, %d)\nfor i := 0; i < len(data); i++ {\ncompute(i)\n}\n", sched, 1+rng.Intn(8))
		case 4:
			if inPar {
				fmt.Fprintf(b, "//#omp for\nfor i := 0; i < %d; i++ {\ncompute(i)\n}\n", rng.Intn(100))
			} else {
				fmt.Fprintf(b, "//#omp wait(t%d)\n", rng.Intn(3))
			}
		case 5:
			fmt.Fprintf(b, "//#omp critical(c%d)\n{\ncompute(0)\n}\n", rng.Intn(2))
		case 6:
			if inPar {
				b.WriteString("//#omp task\n{\ncompute(1)\n}\n//#omp taskwait\n")
			} else {
				b.WriteString("//#omp barrier\n")
			}
		case 7:
			if inPar {
				b.WriteString("//#omp single\n{\ncompute(2)\n}\n")
			} else {
				fmt.Fprintf(b, "compute(%d)\n", rng.Intn(10))
			}
		}
	}
}

// TestFuzzTransformProducesValidGo generates random annotated programs and
// checks the invariants of the transformer: output parses, contains no
// leftover directives, and is a fixed point under re-transformation.
func TestFuzzTransformProducesValidGo(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng)
		out, err := File([]byte(src), "fuzz.go", Options{})
		if err != nil {
			t.Fatalf("seed %d: transform failed: %v\n--- input ---\n%s", seed, err, src)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "fuzz.go", out, 0); err != nil {
			t.Fatalf("seed %d: output does not parse: %v\n--- output ---\n%s", seed, err, out)
		}
		if strings.Contains(string(out), "#omp") {
			t.Fatalf("seed %d: leftover directive\n%s", seed, out)
		}
		again, err := File(out, "fuzz2.go", Options{})
		if err != nil {
			t.Fatalf("seed %d: re-transform failed: %v", seed, err)
		}
		if string(again) != string(out) {
			t.Fatalf("seed %d: not a fixed point", seed)
		}
	}
}
