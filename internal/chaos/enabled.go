//go:build !chaos

package chaos

// TagEnabled reports whether the build carries the `chaos` tag. The tag
// gates the heavyweight fault-injection storm tests that CI's chaos job
// runs (`go test -race -tags=chaos ./...`); the package itself — and the
// fast deterministic tests — work in every build.
const TagEnabled = false
