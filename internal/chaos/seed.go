package chaos

import (
	"os"
	"strconv"
)

// SeedFromEnv returns the fault-schedule seed from CHAOS_SEED, or def when
// the variable is unset or unparseable. CI's chaos job pins the seed so a
// failing storm reproduces locally with the same schedule.
func SeedFromEnv(def int64) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}
