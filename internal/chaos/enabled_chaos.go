//go:build chaos

package chaos

// TagEnabled reports whether the build carries the `chaos` tag; this build
// does, so the storm tests run.
const TagEnabled = true
