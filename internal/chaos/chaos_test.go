package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
)

func TestSeededDeterminism(t *testing.T) {
	mk := func() []Action {
		in := New(42, Rule{Action: Panic, Rate: 0.3})
		var out []Action
		for i := 0; i < 200; i++ {
			a, _ := in.decide("w")
			out = append(out, a)
		}
		return out
	}
	a, b := mk(), mk()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] == Panic {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate rule fired %d/%d times", fired, len(a))
	}
}

func TestNthRuleDeterministicWithCountAndTarget(t *testing.T) {
	in := New(1, Rule{Target: "w", Action: Kill, Nth: 3, Count: 2})
	var kills []int
	for i := 1; i <= 12; i++ {
		if a, _ := in.decide("w"); a == Kill {
			kills = append(kills, i)
		}
	}
	if len(kills) != 2 || kills[0] != 3 || kills[1] != 6 {
		t.Fatalf("kills at calls %v, want [3 6]", kills)
	}
	if a, _ := in.decide("other"); a != None {
		t.Fatal("rule fired for non-matching target")
	}
	if got := in.Injected(Kill); got != 2 {
		t.Fatalf("Injected(Kill) = %d", got)
	}
}

func TestAfterExemptsWarmup(t *testing.T) {
	in := New(1, Rule{Action: Drop, Nth: 1, After: 5})
	drops := 0
	for i := 1; i <= 8; i++ {
		if a, _ := in.decide("w"); a == Drop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("drops = %d, want 3 (calls 6..8)", drops)
	}
}

func TestWrapInjectsIntoPool(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 2, &reg)
	defer pool.Shutdown()
	// Call 1: panic, call 2: drop, call 3: kill, rest clean.
	in := New(7,
		Rule{Action: Panic, Nth: 1, Count: 1},
		Rule{Action: Drop, Nth: 1, After: 1, Count: 1},
		Rule{Action: Kill, Nth: 1, After: 2, Count: 1},
	)
	e := in.Wrap(pool)
	if e.Name() != "w" {
		t.Fatalf("Name = %q", e.Name())
	}

	var pe *executor.PanicError
	if err := e.Post(func() {}).Wait(); !errors.As(err, &pe) {
		t.Fatalf("injected panic err = %v", err)
	} else if _, ok := pe.Value.(*InjectedPanic); !ok {
		t.Fatalf("panic value = %#v, want *InjectedPanic", pe.Value)
	}
	if err := e.Post(func() {}).Wait(); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("dropped err = %v", err)
	}
	if err := e.Post(func() {}).Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
		t.Fatalf("killed err = %v", err)
	}
	if err := e.Post(func() {}).Wait(); err != nil {
		t.Fatalf("clean call err = %v", err)
	}
	if pool.Crashes() != 1 || pool.Stats().Panics != 1 {
		t.Fatalf("pool saw crashes=%d panics=%d", pool.Crashes(), pool.Stats().Panics)
	}
	// Unwrap exposes the inner pool for hook attachment.
	if u, ok := e.(interface{ Unwrap() executor.Executor }); !ok || u.Unwrap() != executor.Executor(pool) {
		t.Fatal("Unwrap did not expose the wrapped pool")
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 1, &reg)
	defer pool.Shutdown()
	in := New(7, Rule{Action: Stall, Nth: 1, Count: 1})
	e := in.Wrap(pool)
	ran := make(chan struct{})
	c := e.Post(func() { close(ran) })
	select {
	case <-c.Done():
		t.Fatal("stalled task completed before Release")
	case <-time.After(50 * time.Millisecond):
	}
	in.Release()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	<-ran
}

func TestBoundedStallAndDelay(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 1, &reg)
	defer pool.Shutdown()
	in := New(7,
		Rule{Action: Stall, Nth: 1, Count: 1, Delay: 20 * time.Millisecond},
		Rule{Action: Delay, Nth: 1, After: 1, Count: 1, Delay: 20 * time.Millisecond},
	)
	e := in.Wrap(pool)
	start := time.Now()
	if err := e.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := e.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("bounded stall+delay took %v, want >= 40ms", d)
	}
}

func TestDisabledInjectorPassesThrough(t *testing.T) {
	in := New(1, Rule{Action: Panic, Nth: 1})
	in.SetEnabled(false)
	for i := 0; i < 10; i++ {
		if a, _ := in.decide("w"); a != None {
			t.Fatal("disabled injector fired")
		}
	}
	in.SetEnabled(true)
	if a, _ := in.decide("w"); a != Panic {
		t.Fatal("re-enabled injector did not fire")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if a, _ := in.decide("w"); a != None {
		t.Fatal("nil injector fired")
	}
}
