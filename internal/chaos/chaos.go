// Package chaos is the runtime's fault-injection layer: a
// seeded-deterministic rule engine that provokes the failures the
// supervision subsystem (package supervise) exists to survive — task
// panics, worker deaths, dispatch delays, dropped tasks, and stalls — so
// overload and failure behaviour can be tested on purpose instead of waited
// for in production.
//
// Faults are described by Rules (by-target, by-rate, every-nth-call,
// bounded-count) evaluated by an Injector whose randomness comes from a
// caller-supplied seed: the same seed and call order reproduce the same
// fault schedule. The injector plugs in at three seams:
//
//   - Wrap turns any executor.Executor into one whose posted tasks are
//     subject to injection (the middleware used around worker pools);
//   - Interceptor adapts the injector to eventloop.Loop.SetInterceptor, so
//     faults land inside dispatched handlers on the EDT;
//   - NetInterceptor adapts it to netloop.Server.SetInterceptor, where a
//     Drop decision suppresses the message before it is queued;
//   - FDInterceptor adapts it to reactor.Reactor.SetIOInterceptor, the
//     fd-level seam below dispatch: short writes, spurious EAGAINs,
//     injected resets, and read latency land directly on the socket
//     syscalls.
//
// The injected failure modes:
//
//   - Panic: the task body panics (captured by the executor's panic
//     isolation — exercises panic accounting and restart thresholds);
//   - Kill: the running goroutine dies via runtime.Goexit, which defeats
//     panic isolation exactly like a crashed thread — the worker is gone
//     and the task's completion reports executor.ErrWorkerCrashed;
//   - Delay: the task sleeps before running (queueing delay / slow handler);
//   - Drop: the task is discarded (ErrInjectedDrop from Wrap, suppressed
//     message from NetInterceptor, silent no-op from Interceptor);
//   - Stall: the task blocks — for Rule.Delay, or until Release — wedging
//     whatever thread runs it (the "frozen GUI" failure mode).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/reactor"
)

// Action is an injected failure mode.
type Action int

// The failure modes an Injector can inject.
const (
	None Action = iota
	Panic
	Kill
	Delay
	Drop
	Stall
	// ShortWrite truncates a reactor write to one byte (fd seam only):
	// the remainder spills into the pending queue, exercising the partial
	// write and flush machinery under load.
	ShortWrite
	// SpuriousEAGAIN makes a reactor read or write report EAGAIN without
	// touching the socket (fd seam only). Under edge-triggered registration
	// a swallowed read edge stalls the connection until new bytes arrive —
	// the failure mode connection deadlines exist to reap.
	SpuriousEAGAIN
	// ResetOnWrite fails a reactor write with an injected connection reset
	// (fd seam only), tearing the connection down the way a peer RST does.
	ResetOnWrite
	numActions
)

// String names the action.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Kill:
		return "kill"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case ShortWrite:
		return "short-write"
	case SpuriousEAGAIN:
		return "spurious-eagain"
	case ResetOnWrite:
		return "reset-on-write"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ErrInjectedDrop is the terminal error of a task dropped by a Drop rule at
// the executor middleware seam.
var ErrInjectedDrop = errors.New("chaos: task dropped by fault injection")

// InjectedPanic is the value thrown by a Panic rule, distinguishable from
// organic panics in panic handlers and logs.
type InjectedPanic struct {
	Target string
}

// Error makes an InjectedPanic usable as an error when captured by
// executor.PanicError.
func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected panic (target %q)", p.Target)
}

func (p *InjectedPanic) String() string { return p.Error() }

// Rule selects when and how to inject one fault. A rule fires for a
// matching call when its Nth counter divides the call number, or else with
// probability Rate; both zero means the rule never fires.
type Rule struct {
	// Target restricts the rule to calls against this target name
	// ("" matches every target).
	Target string
	// Action is the fault to inject.
	Action Action
	// Rate fires the rule with this probability per matching call
	// (seeded-deterministic given a fixed call order).
	Rate float64
	// Nth fires the rule on every nth matching call (1-based; 0 disables
	// the counter). Nth rules are deterministic regardless of call
	// interleaving, which is what regression tests want.
	Nth int
	// After exempts the first After matching calls (warmup).
	After int
	// Count caps the number of injections from this rule (0 = unlimited),
	// bounding the storm so scenarios can recover.
	Count int
	// Delay is the sleep for Delay actions and the stall duration for
	// Stall actions (Stall with zero Delay blocks until Release).
	Delay time.Duration
}

type ruleState struct {
	Rule
	calls int64 // matching calls seen
	fired int64 // injections performed
}

// Injector evaluates rules and wraps tasks with their injected faults. All
// decisions draw from one seeded source under a lock, so a fixed seed and
// call order give a reproducible fault schedule; Nth-based rules are
// reproducible under any interleaving.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*ruleState
	released bool
	stallCh  chan struct{}

	disabled atomic.Bool
	injected [numActions]atomic.Int64
}

// New builds an injector from seed and rules. The zero-rule injector
// injects nothing.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		stallCh: make(chan struct{}),
	}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// SetEnabled turns injection on or off (on by default). A disabled
// injector passes every task through untouched.
func (in *Injector) SetEnabled(v bool) { in.disabled.Store(!v) }

// Injected returns how many faults of kind a have been injected.
func (in *Injector) Injected(a Action) int64 {
	if a < 0 || a >= numActions {
		return 0
	}
	return in.injected[a].Load()
}

// TotalInjected returns the number of injected faults across all actions.
func (in *Injector) TotalInjected() int64 {
	var n int64
	for i := range in.injected {
		n += in.injected[i].Load()
	}
	return n
}

// Release unblocks every Stall injection that is waiting without a
// duration (and any future ones — release is one-shot and permanent).
func (in *Injector) Release() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.released {
		in.released = true
		close(in.stallCh)
	}
}

// decide evaluates the rules for one call against target. Every matching
// rule advances its call counter (so Nth/After schedules stay aligned with
// the call stream); the first rule that fires wins.
func (in *Injector) decide(target string) (Action, time.Duration) {
	if in == nil || in.disabled.Load() {
		return None, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	act, delay := None, time.Duration(0)
	for _, r := range in.rules {
		if r.Target != "" && r.Target != target {
			continue
		}
		r.calls++
		if act != None {
			continue
		}
		if r.calls <= int64(r.After) {
			continue
		}
		if r.Count > 0 && r.fired >= int64(r.Count) {
			continue
		}
		fire := r.Nth > 0 && (r.calls-int64(r.After))%int64(r.Nth) == 0
		if !fire && r.Rate > 0 {
			fire = in.rng.Float64() < r.Rate
		}
		if fire {
			r.fired++
			in.injected[r.Action].Add(1)
			act, delay = r.Action, r.Delay
		}
	}
	return act, delay
}

// apply wraps fn with the decided fault. The wrapper runs wherever the
// executor runs the task, so Kill takes down the worker (or EDT) that
// picked it up.
func (in *Injector) apply(act Action, d time.Duration, target string, fn func()) func() {
	switch act {
	case Panic:
		return func() { panic(&InjectedPanic{Target: target}) }
	case Kill:
		return func() { runtime.Goexit() }
	case Delay:
		return func() { time.Sleep(d); fn() }
	case Stall:
		in.mu.Lock()
		ch := in.stallCh
		in.mu.Unlock()
		if d > 0 {
			return func() {
				select {
				case <-time.After(d):
				case <-ch:
				}
				fn()
			}
		}
		return func() { <-ch; fn() }
	case Drop:
		return func() {}
	default:
		return fn
	}
}

// Wrap returns an executor.Executor middleware around e: every Post (and
// PostCancellable) is subject to injection. Drop decisions reject the task
// with ErrInjectedDrop without reaching e; every other fault travels inside
// the task body. Wrapped executors expose the inner one via Unwrap, so
// supervisors can still attach pool-level crash and panic hooks.
func (in *Injector) Wrap(e executor.Executor) executor.Executor {
	return &chaosExecutor{inner: e, inj: in}
}

type chaosExecutor struct {
	inner executor.Executor
	inj   *Injector
}

func (c *chaosExecutor) Name() string        { return c.inner.Name() }
func (c *chaosExecutor) Owns() bool          { return c.inner.Owns() }
func (c *chaosExecutor) TryRunPending() bool { return c.inner.TryRunPending() }
func (c *chaosExecutor) Shutdown()           { c.inner.Shutdown() }

// Unwrap exposes the wrapped executor (the supervisor hook-attachment and
// watchdog drain checks walk this chain).
func (c *chaosExecutor) Unwrap() executor.Executor { return c.inner }

func (c *chaosExecutor) Post(fn func()) *executor.Completion {
	act, d := c.inj.decide(c.inner.Name())
	if act == Drop {
		return executor.NewCompletedCompletion(ErrInjectedDrop)
	}
	return c.inner.Post(c.inj.apply(act, d, c.inner.Name(), fn))
}

// PostCancellable preserves the inner executor's cancellation capability
// (core.InvokeCtx depends on it for deadline revocation).
func (c *chaosExecutor) PostCancellable(fn func()) (*executor.Completion, func() bool) {
	act, d := c.inj.decide(c.inner.Name())
	if act == Drop {
		return executor.NewCompletedCompletion(ErrInjectedDrop), func() bool { return false }
	}
	wrapped := c.inj.apply(act, d, c.inner.Name(), fn)
	if cp, ok := c.inner.(interface {
		PostCancellable(func()) (*executor.Completion, func() bool)
	}); ok {
		return cp.PostCancellable(wrapped)
	}
	return c.inner.Post(wrapped), func() bool { return false }
}

// Stats delegates to the inner executor when it keeps counters.
func (c *chaosExecutor) Stats() executor.Stats {
	if sp, ok := c.inner.(interface{ Stats() executor.Stats }); ok {
		return sp.Stats()
	}
	return executor.Stats{}
}

var _ executor.Executor = (*chaosExecutor)(nil)

// Interceptor adapts the injector to eventloop.Loop.SetInterceptor: faults
// are injected into handlers as they are dispatched on target's loop. A
// Drop decision suppresses the handler body (the event completes, its
// effect is lost).
func (in *Injector) Interceptor(target string) func(label string, fn func()) func() {
	return func(label string, fn func()) func() {
		act, d := in.decide(target)
		if act == Drop {
			return func() {}
		}
		return in.apply(act, d, target, fn)
	}
}

// NetInterceptor adapts the injector to netloop.Server.SetInterceptor,
// where a Drop decision suppresses the message before it is queued (the
// second return reports whether to keep the message).
func (in *Injector) NetInterceptor(target string) func(event string, fn func()) (func(), bool) {
	return func(event string, fn func()) (func(), bool) {
		act, d := in.decide(target)
		if act == Drop {
			return nil, false
		}
		return in.apply(act, d, target, fn), true
	}
}

// FDInterceptor adapts the injector to reactor.Reactor.SetIOInterceptor —
// the fd-level seam, below the dispatch layers the other adapters feed.
// ShortWrite and ResetOnWrite apply to writes, SpuriousEAGAIN to reads and
// writes, Delay to reads (injected read latency); any other action maps to
// no fault at this seam. A rule that fires for an operation its action does
// not apply to injects nothing but still advances its schedule, so give fd
// faults their own rules (or their own target) rather than sharing one rule
// with dispatch-level faults.
func (in *Injector) FDInterceptor(target string) reactor.IOInterceptor {
	return func(op reactor.IOOp, fd int) (reactor.IOFault, time.Duration) {
		act, d := in.decide(target)
		switch act {
		case ShortWrite:
			if op == reactor.IOWrite {
				return reactor.IOShort, 0
			}
		case SpuriousEAGAIN:
			return reactor.IOAgain, 0
		case ResetOnWrite:
			if op == reactor.IOWrite {
				return reactor.IOReset, 0
			}
		case Delay:
			if op == reactor.IORead {
				return reactor.IODelay, d
			}
		}
		return reactor.IONone, 0
	}
}
