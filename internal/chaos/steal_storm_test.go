package chaos

import (
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"
)

// TestStealStormWakeExactlyOne is the PR-8 scheduler storm: 64 producers
// flood a 4-worker pool through a seeded delay injector, so shard queues
// fill unevenly, workers block inside injected delays, and the pool leans
// hard on stealing and on wake propagation (a worker that takes a task and
// sees backlog wakes exactly one parked sibling). The proof obligations:
//
//   - liveness: every posted task completes — no lost wakeup strands a
//     shard behind parked workers (this is the failure counted parking
//     would hit if a producer's wake were elided while no spinner actually
//     covered the task's shard);
//   - quiescence: the pool drains to zero depth and shuts down cleanly
//     with no leaked goroutines (leakcheck.Main covers the package).
//
// The schedule is seeded (CHAOS_SEED, default 1337) so a failing
// interleaving reproduces. Run with -race -count=20 to sweep schedules.
func TestStealStormWakeExactlyOne(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	pool := executor.NewWorkerPool("storm", 4, &reg)
	in := New(SeedFromEnv(1337),
		// Sparse injected delays: enough to wedge individual workers and
		// skew shard depths, small enough to keep the storm sub-second.
		Rule{Action: Delay, Rate: 0.05, Delay: 200 * time.Microsecond},
	)
	ex := in.Wrap(pool)

	const producers = 64
	const perProducer = 30
	comps := make([][]*executor.Completion, producers)
	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		i := i
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				comps[i] = append(comps[i], ex.Post(func() {}))
			}
		}()
	}
	wg.Wait()
	for _, cs := range comps {
		for _, c := range cs {
			if err := c.Wait(); err != nil {
				t.Fatalf("storm task failed: %v", err)
			}
		}
	}
	st := pool.Stats()
	if st.Completed != producers*perProducer {
		t.Fatalf("Completed = %d, want %d", st.Completed, producers*perProducer)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
	pool.Shutdown()
}
