package supervise

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/trace"

	"repro/internal/testutil/leakcheck"

	"repro/internal/testutil/poll"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	poll.UntilFor(t, d, msg, cond)
}

func poolFactory(t *testing.T, reg *gid.Registry, workers int) Factory {
	t.Helper()
	return func(gen int) (executor.Executor, error) {
		return executor.NewWorkerPool("w", workers, reg), nil
	}
}

func TestRespawnReplacesCrashedWorker(t *testing.T) {
	var reg gid.Registry
	s, err := New("w", poolFactory(t, &reg, 2), Options{
		RespawnWorkers: true,
		BackoffInitial: time.Millisecond,
		Window:         200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	if err := s.Post(func() {}).Wait(); err != nil {
		t.Fatalf("healthy post: %v", err)
	}
	// Kill one worker: Goexit defeats panic isolation, the goroutine dies.
	if err := s.Post(func() { runtime.Goexit() }).Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
		t.Fatalf("killed task err = %v", err)
	}
	pool := base(s).(*executor.WorkerPool)
	waitFor(t, 2*time.Second, func() bool { return pool.Workers() == 2 }, "worker respawn")
	if got := s.Stats().Respawns.Value(); got != 1 {
		t.Fatalf("respawns = %d", got)
	}
	if h := s.Health(); h.StatusValue() != Degraded || h.Generation != 0 {
		t.Fatalf("health after respawn = %+v", h)
	}
	// After a quiet window the target reads healthy again.
	waitFor(t, 2*time.Second, func() bool { return s.Health().StatusValue() == Healthy }, "recovery")
	if err := s.Post(func() {}).Wait(); err != nil {
		t.Fatalf("post after respawn: %v", err)
	}
}

func TestPanicThresholdTriggersFullRestart(t *testing.T) {
	var reg gid.Registry
	s, err := New("w", poolFactory(t, &reg, 1), Options{
		PanicThreshold: 2,
		BackoffInitial: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	buf := trace.NewBuffer(64)
	s.SetTraceSink(buf)

	// Two panics in one generation cross the threshold.
	for i := 0; i < 2; i++ {
		var pe *executor.PanicError
		if err := s.Post(func() { panic("boom") }).Wait(); !errors.As(err, &pe) {
			t.Fatalf("panic %d err = %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return s.Health().Generation == 1 }, "generation bump")
	waitFor(t, 2*time.Second, func() bool { return s.Post(func() {}).Wait() == nil }, "new generation serving")
	if buf.CountOp(trace.OpRestart) == 0 {
		t.Fatal("no OpRestart traced")
	}
	if got := s.Stats().Restarts.Value(); got != 1 {
		t.Fatalf("full restarts = %d", got)
	}
}

func TestBudgetExhaustionFailsFast(t *testing.T) {
	var reg gid.Registry
	s, err := New("w", poolFactory(t, &reg, 1), Options{
		MaxRestarts:    2,
		Window:         time.Minute, // restarts never age out during the test
		BackoffInitial: time.Millisecond,
		RespawnWorkers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	buf := trace.NewBuffer(64)
	s.SetTraceSink(buf)

	// Each kill consumes one respawn; the third exhausts the budget.
	for i := 0; i < 3; i++ {
		pool := base(s).(*executor.WorkerPool)
		waitFor(t, 2*time.Second, func() bool { return pool.Workers() == 1 }, "worker up")
		waitFor(t, 2*time.Second, func() bool { return s.Health().State == Running.String() }, "running")
		if err := s.Post(func() { runtime.Goexit() }).Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
			t.Fatalf("kill %d err = %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return s.Health().StatusValue() == Down }, "target down")
	if err := s.Post(func() {}).Wait(); !errors.Is(err, ErrTargetDown) {
		t.Fatalf("post after down err = %v", err)
	}
	if buf.CountOp(trace.OpTargetDown) == 0 {
		t.Fatal("no OpTargetDown traced")
	}
	if got := s.Stats().FailFast.Value(); got == 0 {
		t.Fatal("fail-fast counter not bumped")
	}
	// Typed rejection must be immediate, not a hang.
	done := make(chan error, 1)
	go func() { done <- s.Post(func() {}).Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTargetDown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("post against down target hung")
	}
}

func TestFactoryErrorMarksDown(t *testing.T) {
	var reg gid.Registry
	boom := errors.New("no capacity")
	factory := func(gen int) (executor.Executor, error) {
		if gen > 0 {
			return nil, boom
		}
		return executor.NewWorkerPool("w", 1, &reg), nil
	}
	s, err := New("w", factory, Options{PanicThreshold: 1, BackoffInitial: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	var pe *executor.PanicError
	if err := s.Post(func() { panic("x") }).Wait(); !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return s.Health().StatusValue() == Down }, "down on factory error")
	if err := s.Post(func() {}).Wait(); !errors.Is(err, ErrTargetDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewFactoryErrorPropagates(t *testing.T) {
	_, err := New("w", func(int) (executor.Executor, error) {
		return nil, errors.New("nope")
	}, Options{})
	if err == nil {
		t.Fatal("New succeeded with failing factory")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	s := &Supervisor{opts: Options{BackoffInitial: 10 * time.Millisecond, BackoffMax: 60 * time.Millisecond}}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := s.backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestShutdownStopsSupervision(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	s, err := New("w", poolFactory(t, &reg, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	s.Shutdown() // idempotent
	if err := s.Post(func() {}).Wait(); err == nil {
		t.Fatal("post after shutdown succeeded")
	}
}

// TestRespawnInheritsCrashedWorkerQueue: the PR-8 sharded executor orphans
// the last crashed worker's local run-queue in place, and Grow — which is
// what RespawnWorkers calls — adopts it. A supervisor respawning a sole
// worker therefore hands the replacement the crashed worker's still-queued
// tasks: they complete instead of stranding or failing.
func TestRespawnInheritsCrashedWorkerQueue(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	s, err := New("w", poolFactory(t, &reg, 1), Options{
		RespawnWorkers: true,
		BackoffInitial: time.Millisecond,
		Window:         200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Gate the sole worker, queue work behind it, then kill it.
	crash := make(chan struct{})
	running := make(chan struct{})
	gate := s.Post(func() { close(running); <-crash; runtime.Goexit() })
	<-running
	const n = 10
	var comps []*executor.Completion
	for i := 0; i < n; i++ {
		comps = append(comps, s.Post(func() {}))
	}
	close(crash)
	if err := gate.Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
		t.Fatalf("gate err = %v, want ErrWorkerCrashed", err)
	}
	// The respawned worker must drain the queue it inherited.
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("queued task lost across respawn: %v", err)
		}
	}
	pool := base(s).(*executor.WorkerPool)
	waitFor(t, 2*time.Second, func() bool { return pool.Workers() == 1 }, "worker respawn")
}
