//go:build chaos

// Storm test for the chaos CI job (`make chaos`): a sustained mixed-fault
// storm against a supervised virtual target under the full runtime. Heavier
// than the default suite, so it is gated behind the `chaos` build tag and
// seeded via CHAOS_SEED for reproducibility.
package supervise_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/supervise"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

func TestSupervisedRuntimeUnderMixedFaultStorm(t *testing.T) {
	defer leakcheck.Check(t)()
	if !chaos.TagEnabled {
		t.Fatal("storm test compiled without the chaos tag")
	}
	seed := chaos.SeedFromEnv(1337)
	inj := chaos.New(seed,
		chaos.Rule{Action: chaos.Kill, Rate: 0.05, Count: 40},
		chaos.Rule{Action: chaos.Panic, Rate: 0.05, Count: 40},
		chaos.Rule{Action: chaos.Delay, Rate: 0.05, Delay: 200 * time.Microsecond},
	)
	var reg gid.Registry
	factory := func(gen int) (executor.Executor, error) {
		return inj.Wrap(executor.NewWorkerPool("w", 4, &reg)), nil
	}
	s, err := supervise.New("w", factory, supervise.Options{
		RespawnWorkers: true,
		PanicThreshold: 10,
		MaxRestarts:    200,
		Window:         500 * time.Millisecond,
		BackoffInitial: 200 * time.Microsecond,
		BackoffMax:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	rt := core.NewRuntime(&reg)
	if err := rt.RegisterTarget("w", s); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 250
	var mu sync.Mutex
	outcomes := map[string]int{}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				comp, err := rt.Invoke("w", core.Nowait, func() {
					time.Sleep(20 * time.Microsecond) // give the task a body
				})
				if err != nil {
					t.Errorf("invoke error: %v", err)
					return
				}
				select {
				case <-comp.Done():
				case <-time.After(10 * time.Second):
					t.Error("invocation hung past 10s")
					return
				}
				var kind string
				var pe *executor.PanicError
				switch cerr := comp.Err(); {
				case cerr == nil:
					kind = "ok"
				case errors.As(cerr, &pe):
					kind = "panic"
				case errors.Is(cerr, executor.ErrWorkerCrashed):
					kind = "crashed"
				case errors.Is(cerr, supervise.ErrRestarting):
					kind = "restarting"
				default:
					t.Errorf("untyped completion error: %v", cerr)
					return
				}
				mu.Lock()
				outcomes[kind]++
				mu.Unlock()
				if kind == "restarting" {
					// Fail-fast answers arrive in nanoseconds; back off
					// like a real client so the storm keeps reaching the
					// pool instead of spinning on the supervisor's gate.
					time.Sleep(500 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	mu.Lock()
	total := 0
	for _, n := range outcomes {
		total += n
	}
	ok := outcomes["ok"]
	mu.Unlock()
	if total != workers*perWorker {
		t.Fatalf("outcomes account for %d of %d invocations", total, workers*perWorker)
	}
	if ok == 0 {
		t.Fatal("nothing succeeded during the storm")
	}
	if inj.Injected(chaos.Kill) == 0 || inj.Injected(chaos.Panic) == 0 {
		t.Fatalf("storm too quiet: kills=%d panics=%d",
			inj.Injected(chaos.Kill), inj.Injected(chaos.Panic))
	}
	if s.Stats().Respawns.Value() == 0 {
		t.Fatal("storm killed workers but nothing was respawned")
	}

	// Faults are bounded by Count; the target must come back to healthy
	// and serve cleanly once the restart window slides past the storm.
	poll.UntilFor(t, 10*time.Second, "post-storm recovery", func() bool {
		return s.Health().StatusValue() == supervise.Healthy && s.Post(func() {}).Wait() == nil
	})
	t.Logf("storm outcomes: %v; kills=%d panics=%d respawns=%d restarts=%d",
		outcomes, inj.Injected(chaos.Kill), inj.Injected(chaos.Panic),
		s.Stats().Respawns.Value(), s.Stats().Restarts.Value())
}
