package supervise

import (
	"os"
	"testing"

	"repro/internal/testutil/leakcheck"
)

// TestMain sweeps the whole suite for leaked goroutines: after the last
// test, every supervisor, watchdog ticker, and supervised target must have
// exited.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
