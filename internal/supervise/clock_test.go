package supervise

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/testutil/poll"
	"repro/internal/vclock"
)

// TestBackoffOnInjectedClock proves the restart backoff runs on the
// Options.Clock seam, not wall time: with an hour-long backoff on a manual
// clock the supervisor parks until the clock is advanced, and no amount of
// wall-clock waiting releases it.
func TestBackoffOnInjectedClock(t *testing.T) {
	var reg gid.Registry
	mc := vclock.NewManual(time.Time{})
	s, err := New("w", poolFactory(t, &reg, 1), Options{
		BackoffInitial: time.Hour,
		BackoffMax:     time.Hour,
		Clock:          mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	s.ReportFailure(errors.New("synthetic failure"))
	// The supervisor must park in the virtual-clock sleep...
	poll.UntilBlockedIn(t, "vclock.Sleep")
	// ...and stay restarting on wall time alone.
	if err := s.Post(func() {}).Wait(); !errors.Is(err, ErrRestarting) {
		t.Fatalf("post during virtual backoff: %v, want ErrRestarting", err)
	}
	mc.Advance(time.Hour)
	waitFor(t, 5*time.Second, func() bool {
		return s.Post(func() {}).Wait() == nil
	}, "restart to complete after the virtual backoff elapsed")
	if got := s.Stats().Restarts.Value(); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
}
