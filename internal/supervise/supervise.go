// Package supervise adds restart-on-crash semantics and liveness monitoring
// to the virtual-target runtime. A Supervisor wraps any executor.Executor
// behind the same interface and keeps it serving through worker deaths and
// panic storms: failures trigger one-for-one worker respawns or full
// executor replacement with exponential backoff, bounded by a restart budget
// within a sliding window; once the budget is exhausted the target is marked
// failed and every further invocation fails fast with ErrTargetDown instead
// of queueing against a dead target. A Watchdog (watchdog.go) heartbeats
// registered loops and pools and flags the failure mode a supervisor cannot
// see from crash reports alone: the target that is still alive but not
// draining — a blocked EDT, a wedged pool, a queue past its sojourn bound.
//
// Both surface machine-readable health snapshots, which httpserver wires
// into /healthz, and both emit trace events (trace.OpRestart, trace.OpStall,
// trace.OpTargetDown) so post-mortems can line failures up against the
// dispatch schedule that provoked them.
package supervise

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// State is a supervised target's lifecycle state.
type State int

// The supervision states. Running targets accept work; Restarting targets
// fail fast with ErrRestarting while the replacement comes up; Failed
// targets exhausted their restart budget and fail fast with ErrTargetDown.
const (
	Running State = iota
	Restarting
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Restarting:
		return "restarting"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Status grades a target's health for reporting: Healthy targets have had a
// quiet window, Degraded targets restarted recently (or are restarting now),
// Down targets are out of restart budget.
type Status int

// The health grades, ordered by severity.
const (
	Healthy Status = iota
	Degraded
	Down
)

// String renders the status the way /healthz spells it.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "ok"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

var (
	// ErrTargetDown fails invocations against a target whose restart
	// budget is exhausted: the supervisor gave up, nothing will drain the
	// queue, so callers get a typed error immediately instead of a hang.
	ErrTargetDown = errors.New("supervise: target down (restart budget exhausted)")

	// ErrRestarting fails invocations (and pending tasks of the replaced
	// executor) that arrive while a full restart is in progress.
	ErrRestarting = errors.New("supervise: target restarting")
)

// Factory builds generation gen of a supervised executor. Generation 0 is
// built by New; each full restart increments the generation. The factory
// may wrap the executor (chaos middleware, tracing) — the supervisor walks
// Unwrap chains to attach its crash and panic hooks to the base.
type Factory func(gen int) (executor.Executor, error)

// Options tunes a Supervisor. Zero values pick the documented defaults.
type Options struct {
	// MaxRestarts is the restart budget within Window (default 8). Once
	// more than MaxRestarts restarts (respawns included) land inside one
	// window, the target transitions to Failed.
	MaxRestarts int
	// Window is the sliding window the budget applies to, and the quiet
	// period after which a Degraded target reads Healthy again
	// (default 10s).
	Window time.Duration
	// BackoffInitial is the delay before the first restart in a window;
	// it doubles per restart up to BackoffMax (defaults 10ms, 2s).
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	// PanicThreshold restarts the target after this many task panics in
	// one generation (0 = panics are tolerated; panic isolation already
	// contains them, so only storms are worth a restart).
	PanicThreshold int
	// RespawnWorkers handles single worker deaths by growing the pool
	// back by one (one-for-one supervision) instead of replacing the
	// whole executor. Requires the base executor to implement
	// Grow(int); full replacement is the fallback.
	RespawnWorkers bool
	// Clock is the time source for the restart window, backoff sleeps and
	// health grading (nil = wall clock). Deterministic tests drive the
	// supervisor through backoffs and quiet windows by advancing a
	// vclock.Manual instead of sleeping real time out.
	Clock vclock.Clock
}

func (o *Options) fill() {
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 8
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.BackoffInitial <= 0 {
		o.BackoffInitial = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = vclock.Wall
	}
}

// The structural interfaces the supervisor attaches through. Executors are
// matched by shape, not by concrete type, so middleware that forwards these
// methods (or exposes the base via Unwrap) keeps supervision working.
type (
	unwrapper     interface{ Unwrap() executor.Executor }
	crashNotifier interface{ SetCrashHandler(func(any)) }
	panicNotifier interface{ SetPanicHandler(func(any)) }
	pendingFailer interface{ FailPending(error) int }
	grower        interface{ Grow(n int) }
)

// base walks the Unwrap chain to the innermost executor.
func base(e executor.Executor) executor.Executor {
	for {
		u, ok := e.(unwrapper)
		if !ok || u.Unwrap() == nil {
			return e
		}
		e = u.Unwrap()
	}
}

// failPending fails every queued task of e with err, when e supports it.
func failPending(e executor.Executor, err error) {
	if pf, ok := base(e).(pendingFailer); ok {
		pf.FailPending(err)
	}
}

type failureKind int

const (
	kindCrash  failureKind = iota // a worker goroutine died
	kindPanics                    // panic threshold exceeded
	kindManual                    // reported via ReportFailure
)

// failure is one reason to restart, tagged with the generation it belongs
// to so reports from an already-replaced executor are ignored.
type failure struct {
	gen    int
	kind   failureKind
	reason error
}

// Supervisor wraps an executor.Executor with restart-on-crash semantics.
// It is itself an executor.Executor, so it registers as a virtual target
// like the executor it supervises. Failures are handled one at a time by a
// dedicated goroutine; posts observe the current state and fail fast with a
// typed error when the target cannot accept work.
type Supervisor struct {
	name    string
	factory Factory
	opts    Options
	stats   *metrics.SupervisionStats
	sink    atomic.Pointer[trace.Sink]

	mu          sync.Mutex
	cur         executor.Executor
	state       State
	gen         int
	panicsInGen int
	restarts    []time.Time // restart times within the sliding window
	total       int64       // lifetime restarts (respawns included)
	lastErr     error
	lastRestart time.Time

	failCh   chan failure
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds generation 0 via factory and starts supervising it under name.
func New(name string, factory Factory, opts Options) (*Supervisor, error) {
	opts.fill()
	s := &Supervisor{
		name:    name,
		factory: factory,
		opts:    opts,
		stats:   metrics.NewSupervisionStats(),
		failCh:  make(chan failure, 256),
		done:    make(chan struct{}),
	}
	e, err := factory(0)
	if err != nil {
		return nil, fmt.Errorf("supervise: factory(0): %w", err)
	}
	s.cur = e
	s.attach(e, 0)
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// attach hooks the supervisor into e's crash and panic notifications,
// walking the Unwrap chain so middleware wrappers don't hide them.
func (s *Supervisor) attach(e executor.Executor, gen int) {
	b := base(e)
	if cn, ok := b.(crashNotifier); ok {
		cn.SetCrashHandler(func(v any) {
			s.stats.Crashes.Inc()
			s.report(failure{gen: gen, kind: kindCrash,
				reason: fmt.Errorf("supervise: worker crashed: %v", v)})
		})
	}
	if s.opts.PanicThreshold > 0 {
		if pn, ok := b.(panicNotifier); ok {
			pn.SetPanicHandler(func(v any) { s.notePanic(gen, v) })
		}
	}
}

func (s *Supervisor) notePanic(gen int, v any) {
	s.stats.Panics.Inc()
	s.mu.Lock()
	if gen != s.gen {
		s.mu.Unlock()
		return
	}
	s.panicsInGen++
	over := s.panicsInGen >= s.opts.PanicThreshold
	if over {
		s.panicsInGen = 0 // re-arm so a continuing storm re-triggers
	}
	s.mu.Unlock()
	if over {
		s.report(failure{gen: gen, kind: kindPanics,
			reason: fmt.Errorf("supervise: panic threshold exceeded: %w", &executor.PanicError{Value: v})})
	}
}

// report queues a failure for the supervisor loop without blocking the
// reporting goroutine (which may be mid-death). The channel is deep enough
// that a drop means hundreds of unprocessed failures are already queued —
// by then the budget is long exhausted.
func (s *Supervisor) report(f failure) {
	select {
	case s.failCh <- f:
	default:
	}
}

// ReportFailure asks the supervisor to treat err as a failure of the
// current generation (for external health checks probing the target).
func (s *Supervisor) ReportFailure(err error) {
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()
	s.report(failure{gen: gen, kind: kindManual, reason: err})
}

func (s *Supervisor) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case f := <-s.failCh:
			s.handleFailure(f)
		}
	}
}

// handleFailure runs in the supervisor loop, so failures are handled
// strictly one at a time; state is Running or Failed on entry.
func (s *Supervisor) handleFailure(f failure) {
	s.mu.Lock()
	if f.gen != s.gen || s.state == Failed {
		s.mu.Unlock() // stale generation, or already given up
		return
	}
	now := s.opts.Clock.Now()
	s.pruneLocked(now)
	s.lastErr = f.reason
	if len(s.restarts) >= s.opts.MaxRestarts {
		// Budget exhausted: mark the target down for good and fail
		// everything queued so no invocation waits on a dead target.
		s.state = Failed
		old := s.cur
		s.mu.Unlock()
		s.emit(trace.OpTargetDown)
		failPending(old, ErrTargetDown)
		go old.Shutdown()
		return
	}
	s.state = Restarting
	s.restarts = append(s.restarts, now)
	s.total++
	s.lastRestart = now
	recent := len(s.restarts)
	gen := s.gen
	old := s.cur
	var gw grower
	if f.kind == kindCrash && s.opts.RespawnWorkers {
		gw, _ = base(old).(grower)
	}
	s.mu.Unlock()

	s.emit(trace.OpRestart)
	if gw != nil {
		// One-for-one: replace just the dead worker. Queued tasks stay
		// queued — the respawned worker drains them.
		s.stats.Respawns.Inc()
		if !s.sleep(s.backoff(recent)) {
			return
		}
		gw.Grow(1)
		s.mu.Lock()
		if s.gen == gen && s.state == Restarting {
			s.state = Running
		}
		s.mu.Unlock()
		return
	}

	// Full restart: fail what the old executor still holds, replace it.
	s.stats.Restarts.Inc()
	failPending(old, ErrRestarting)
	go old.Shutdown()
	if !s.sleep(s.backoff(recent)) {
		return
	}
	next, err := s.factory(gen + 1)
	if err != nil {
		s.mu.Lock()
		s.state = Failed
		s.lastErr = fmt.Errorf("supervise: factory(%d): %w", gen+1, err)
		s.mu.Unlock()
		s.emit(trace.OpTargetDown)
		return
	}
	s.mu.Lock()
	s.cur = next
	s.gen = gen + 1
	s.panicsInGen = 0
	s.state = Running
	newGen := s.gen
	s.mu.Unlock()
	s.attach(next, newGen)
}

// pruneLocked drops restart timestamps older than the sliding window.
func (s *Supervisor) pruneLocked(now time.Time) {
	cut := now.Add(-s.opts.Window)
	i := 0
	for i < len(s.restarts) && s.restarts[i].Before(cut) {
		i++
	}
	if i > 0 {
		s.restarts = append(s.restarts[:0], s.restarts[i:]...)
	}
}

// backoff returns the delay before restart n (1-based) of the window:
// BackoffInitial doubling per restart, capped at BackoffMax.
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.opts.BackoffInitial
	for i := 1; i < n; i++ {
		d *= 2
		if d >= s.opts.BackoffMax {
			return s.opts.BackoffMax
		}
	}
	if d > s.opts.BackoffMax {
		d = s.opts.BackoffMax
	}
	return d
}

// sleep waits d out on the configured clock unless the supervisor is shut
// down first.
func (s *Supervisor) sleep(d time.Duration) bool {
	return vclock.Sleep(s.opts.Clock, d, s.done)
}

func (s *Supervisor) snapshot() (State, executor.Executor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.cur
}

// Name implements executor.Executor.
func (s *Supervisor) Name() string { return s.name }

// Post submits fn to the current generation, failing fast with
// ErrRestarting or ErrTargetDown when the target cannot accept work.
func (s *Supervisor) Post(fn func()) *executor.Completion {
	switch st, e := s.snapshot(); st {
	case Failed:
		s.stats.FailFast.Inc()
		return executor.NewCompletedCompletion(ErrTargetDown)
	case Restarting:
		s.stats.FailFast.Inc()
		return executor.NewCompletedCompletion(ErrRestarting)
	default:
		return e.Post(fn)
	}
}

// PostCancellable preserves the inner executor's cancellation capability.
func (s *Supervisor) PostCancellable(fn func()) (*executor.Completion, func() bool) {
	st, e := s.snapshot()
	switch st {
	case Failed:
		s.stats.FailFast.Inc()
		return executor.NewCompletedCompletion(ErrTargetDown), func() bool { return false }
	case Restarting:
		s.stats.FailFast.Inc()
		return executor.NewCompletedCompletion(ErrRestarting), func() bool { return false }
	}
	if cp, ok := e.(interface {
		PostCancellable(func()) (*executor.Completion, func() bool)
	}); ok {
		return cp.PostCancellable(fn)
	}
	return e.Post(fn), func() bool { return false }
}

// Owns implements executor.Executor against the current generation.
func (s *Supervisor) Owns() bool {
	_, e := s.snapshot()
	return e != nil && e.Owns()
}

// TryRunPending implements executor.Executor against the current generation.
func (s *Supervisor) TryRunPending() bool {
	_, e := s.snapshot()
	return e != nil && e.TryRunPending()
}

// Unwrap exposes the current generation (the watchdog reads queue depths
// through it).
func (s *Supervisor) Unwrap() executor.Executor {
	_, e := s.snapshot()
	return e
}

// Shutdown stops supervising and shuts the current generation down.
// Restarts in flight are abandoned.
func (s *Supervisor) Shutdown() {
	s.stopOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	s.mu.Lock()
	e := s.cur
	if s.state == Restarting {
		s.state = Failed
	}
	s.mu.Unlock()
	if e != nil {
		e.Shutdown()
	}
}

// Stats returns the supervision counters (shared, live).
func (s *Supervisor) Stats() *metrics.SupervisionStats { return s.stats }

// SetTraceSink emits OpRestart / OpTargetDown events to sink.
func (s *Supervisor) SetTraceSink(sink trace.Sink) { s.sink.Store(&sink) }

func (s *Supervisor) emit(op trace.Op) {
	if p := s.sink.Load(); p != nil && *p != nil {
		(*p).Record(trace.Event{Time: time.Now(), Op: op, Target: s.name})
	}
}

// TargetHealth is a point-in-time health snapshot of one supervised target.
type TargetHealth struct {
	Name           string    `json:"name"`
	State          string    `json:"state"`
	Status         string    `json:"status"`
	Generation     int       `json:"generation"`
	Restarts       int64     `json:"restarts"`        // lifetime, respawns included
	RecentRestarts int       `json:"recent_restarts"` // within the sliding window
	LastError      string    `json:"last_error,omitempty"`
	LastRestart    time.Time `json:"last_restart,omitempty"`
}

// StatusValue is the Status the snapshot's Status string encodes.
func (h TargetHealth) StatusValue() Status {
	switch h.Status {
	case Down.String():
		return Down
	case Degraded.String():
		return Degraded
	default:
		return Healthy
	}
}

// Health reports the target's current state. A target reads Degraded while
// restarting or for one quiet Window after its last restart, then Healthy
// again; Failed targets read Down.
func (s *Supervisor) Health() TargetHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(s.opts.Clock.Now())
	h := TargetHealth{
		Name:           s.name,
		State:          s.state.String(),
		Generation:     s.gen,
		Restarts:       s.total,
		RecentRestarts: len(s.restarts),
		LastRestart:    s.lastRestart,
	}
	if s.lastErr != nil {
		h.LastError = s.lastErr.Error()
	}
	switch {
	case s.state == Failed:
		h.Status = Down.String()
	case s.state == Restarting || len(s.restarts) > 0:
		h.Status = Degraded.String()
	default:
		h.Status = Healthy.String()
	}
	return h
}

var _ executor.Executor = (*Supervisor)(nil)
