package supervise

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/trace"

	"repro/internal/testutil/leakcheck"
)

// TestSupervisedSurvivesKillStorm is the acceptance scenario: worker kills
// injected at a 10% rate, a supervised target keeps serving by respawning
// within its budget, health degrades and then recovers, and no invocation
// hangs — every one completes or fails with a typed error.
func TestSupervisedSurvivesKillStorm(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Rate: 0.10, Count: 8})
	factory := func(gen int) (executor.Executor, error) {
		return inj.Wrap(executor.NewWorkerPool("w", 3, &reg)), nil
	}
	s, err := New("w", factory, Options{
		RespawnWorkers: true,
		MaxRestarts:    20,
		Window:         300 * time.Millisecond,
		BackoffInitial: time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	buf := trace.NewBuffer(256)
	s.SetTraceSink(buf)

	const calls = 200
	var ok, typed int
	sawDegraded := false
	for i := 0; i < calls; i++ {
		c := s.Post(func() {})
		select {
		case <-c.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("invocation %d hung", i)
		}
		switch err := c.Err(); {
		case err == nil:
			ok++
		case errors.Is(err, executor.ErrWorkerCrashed) || errors.Is(err, ErrRestarting):
			typed++
		default:
			t.Fatalf("invocation %d: untyped failure %v", i, err)
		}
		if s.Health().StatusValue() == Degraded {
			sawDegraded = true
		}
	}
	if kills := inj.Injected(chaos.Kill); kills == 0 {
		t.Fatal("storm injected no kills; scenario proved nothing")
	}
	if ok == 0 {
		t.Fatal("no invocation succeeded during the storm")
	}
	if !sawDegraded || s.Stats().Respawns.Value() == 0 {
		t.Fatalf("supervision not exercised: degraded=%v respawns=%d",
			sawDegraded, s.Stats().Respawns.Value())
	}
	if buf.CountOp(trace.OpRestart) == 0 {
		t.Fatal("no OpRestart traced")
	}

	// The storm is bounded (Count): once it passes and the window slides,
	// the target reads healthy and serves cleanly again.
	waitFor(t, 5*time.Second, func() bool {
		return s.Health().StatusValue() == Healthy && s.Post(func() {}).Wait() == nil
	}, "post-storm recovery")
	t.Logf("storm: %d ok, %d typed failures, %d kills, %d respawns",
		ok, typed, inj.Injected(chaos.Kill), s.Stats().Respawns.Value())
}

// TestUnsupervisedPoolWedgesAndWatchdogSees is the control: the same kill
// fault against a bare pool takes its workers down for good, posted work
// queues forever, and only the watchdog's stall detection notices.
func TestUnsupervisedPoolWedgesAndWatchdogSees(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 2, &reg)
	defer pool.Shutdown()
	// Deterministic storm: the first two tasks each kill a worker.
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Nth: 1, Count: 2})
	e := inj.Wrap(pool)

	for i := 0; i < 2; i++ {
		if err := e.Post(func() {}).Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
			t.Fatalf("kill %d err = %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return pool.Workers() == 0 }, "all workers dead")

	// Watch only once the pool is dead, so heartbeat probes don't race the
	// deterministic kill schedule above.
	buf := trace.NewBuffer(64)
	w := NewWatchdog(10 * time.Millisecond)
	w.SetTraceSink(buf)
	w.Watch("w", e, 50*time.Millisecond)
	w.Start()
	defer w.Stop()

	// Nobody restarts anything: this post wedges in the queue.
	wedged := e.Post(func() {})
	waitFor(t, 2*time.Second, func() bool {
		return w.Health()["w"].LivenessValue() == LiveStalled
	}, "watchdog stall detection")
	if wedged.Finished() {
		t.Fatal("wedged post completed with no workers")
	}
	if buf.CountOp(trace.OpStall) == 0 {
		t.Fatal("no OpStall traced")
	}
	r := w.Health()["w"]
	if r.Stalls == 0 || r.StallFor <= 0 {
		t.Fatalf("stall report = %+v", r)
	}

	// Shutdown's fail-pending backstop keeps even the wedge from leaking:
	// the stranded task fails typed instead of hanging forever.
	pool.Shutdown()
	if err := wedged.Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("stranded task err = %v", err)
	}
}

// TestWatchdogSeesBlockedThenRecovered drives a stall episode end to end:
// stalled while the only worker is blocked, OK again once it unblocks.
func TestWatchdogSeesBlockedThenRecovered(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 1, &reg)
	defer pool.Shutdown()
	w := NewWatchdog(5 * time.Millisecond)
	w.Watch("w", pool, 25*time.Millisecond)
	w.Start()
	defer w.Stop()

	gate := make(chan struct{})
	pool.Post(func() { <-gate })
	waitFor(t, 2*time.Second, func() bool {
		return w.Health()["w"].LivenessValue() == LiveStalled
	}, "stall while blocked")
	close(gate)
	waitFor(t, 2*time.Second, func() bool {
		return w.Health()["w"].LivenessValue() == LiveOK
	}, "recovery after unblock")
	if w.Stalls() != 1 {
		t.Fatalf("stall episodes = %d, want 1", w.Stalls())
	}
}

// TestWatchdogReportsDownTarget: probes answered with ErrTargetDown read
// LiveDown, not stalled — the watchdog distinguishes dead from blocked.
func TestWatchdogReportsDownTarget(t *testing.T) {
	var reg gid.Registry
	s, err := New("w", func(int) (executor.Executor, error) {
		return executor.NewWorkerPool("w", 1, &reg), nil
	}, Options{MaxRestarts: 1, Window: time.Minute, BackoffInitial: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// Two manual failures exhaust the budget of 1.
	s.ReportFailure(errors.New("probe failed"))
	waitFor(t, 2*time.Second, func() bool {
		h := s.Health()
		return h.Generation == 1 && h.State == Running.String()
	}, "first restart done")
	s.ReportFailure(errors.New("probe failed again"))
	waitFor(t, 2*time.Second, func() bool { return s.Health().StatusValue() == Down }, "down")

	w := NewWatchdog(5 * time.Millisecond)
	w.Watch("w", s, 25*time.Millisecond)
	w.Start()
	defer w.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return w.Health()["w"].LivenessValue() == LiveDown
	}, "down via probe")
}
