// External test package: these scenarios drive supervision through the
// chaos injector, which (via its reactor fd seam) transitively imports this
// package — an in-package test would be an import cycle.
package supervise_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/supervise"
	"repro/internal/trace"

	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// TestSupervisedSurvivesKillStorm is the acceptance scenario: worker kills
// injected at a 10% rate, a supervised target keeps serving by respawning
// within its budget, health degrades and then recovers, and no invocation
// hangs — every one completes or fails with a typed error.
func TestSupervisedSurvivesKillStorm(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Rate: 0.10, Count: 8})
	factory := func(gen int) (executor.Executor, error) {
		return inj.Wrap(executor.NewWorkerPool("w", 3, &reg)), nil
	}
	s, err := supervise.New("w", factory, supervise.Options{
		RespawnWorkers: true,
		MaxRestarts:    20,
		Window:         300 * time.Millisecond,
		BackoffInitial: time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	buf := trace.NewBuffer(256)
	s.SetTraceSink(buf)

	const calls = 200
	var ok, typed int
	sawDegraded := false
	for i := 0; i < calls; i++ {
		c := s.Post(func() {})
		select {
		case <-c.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("invocation %d hung", i)
		}
		switch err := c.Err(); {
		case err == nil:
			ok++
		case errors.Is(err, executor.ErrWorkerCrashed) || errors.Is(err, supervise.ErrRestarting):
			typed++
		default:
			t.Fatalf("invocation %d: untyped failure %v", i, err)
		}
		if s.Health().StatusValue() == supervise.Degraded {
			sawDegraded = true
		}
	}
	if kills := inj.Injected(chaos.Kill); kills == 0 {
		t.Fatal("storm injected no kills; scenario proved nothing")
	}
	if ok == 0 {
		t.Fatal("no invocation succeeded during the storm")
	}
	if !sawDegraded || s.Stats().Respawns.Value() == 0 {
		t.Fatalf("supervision not exercised: degraded=%v respawns=%d",
			sawDegraded, s.Stats().Respawns.Value())
	}
	if buf.CountOp(trace.OpRestart) == 0 {
		t.Fatal("no OpRestart traced")
	}

	// The storm is bounded (Count): once it passes and the window slides,
	// the target reads healthy and serves cleanly again.
	poll.UntilFor(t, 5*time.Second, "post-storm recovery", func() bool {
		return s.Health().StatusValue() == supervise.Healthy && s.Post(func() {}).Wait() == nil
	})
	t.Logf("storm: %d ok, %d typed failures, %d kills, %d respawns",
		ok, typed, inj.Injected(chaos.Kill), s.Stats().Respawns.Value())
}

// TestUnsupervisedPoolWedgesAndWatchdogSees is the control: the same kill
// fault against a bare pool takes its workers down for good, posted work
// queues forever, and only the watchdog's stall detection notices.
func TestUnsupervisedPoolWedgesAndWatchdogSees(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 2, &reg)
	defer pool.Shutdown()
	// Deterministic storm: the first two tasks each kill a worker.
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Nth: 1, Count: 2})
	e := inj.Wrap(pool)

	for i := 0; i < 2; i++ {
		if err := e.Post(func() {}).Wait(); !errors.Is(err, executor.ErrWorkerCrashed) {
			t.Fatalf("kill %d err = %v", i, err)
		}
	}
	poll.UntilFor(t, 2*time.Second, "all workers dead", func() bool { return pool.Workers() == 0 })

	// Watch only once the pool is dead, so heartbeat probes don't race the
	// deterministic kill schedule above.
	buf := trace.NewBuffer(64)
	w := supervise.NewWatchdog(10 * time.Millisecond)
	w.SetTraceSink(buf)
	w.Watch("w", e, 50*time.Millisecond)
	w.Start()
	defer w.Stop()

	// Nobody restarts anything: this post wedges in the queue.
	wedged := e.Post(func() {})
	poll.UntilFor(t, 2*time.Second, "watchdog stall detection", func() bool {
		return w.Health()["w"].LivenessValue() == supervise.LiveStalled
	})
	if wedged.Finished() {
		t.Fatal("wedged post completed with no workers")
	}
	if buf.CountOp(trace.OpStall) == 0 {
		t.Fatal("no OpStall traced")
	}
	r := w.Health()["w"]
	if r.Stalls == 0 || r.StallFor <= 0 {
		t.Fatalf("stall report = %+v", r)
	}

	// Shutdown's fail-pending backstop keeps even the wedge from leaking:
	// the stranded task fails typed instead of hanging forever.
	pool.Shutdown()
	if err := wedged.Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("stranded task err = %v", err)
	}
}

// TestWatchdogSeesBlockedThenRecovered drives a stall episode end to end:
// stalled while the only worker is blocked, OK again once it unblocks.
func TestWatchdogSeesBlockedThenRecovered(t *testing.T) {
	var reg gid.Registry
	pool := executor.NewWorkerPool("w", 1, &reg)
	defer pool.Shutdown()
	w := supervise.NewWatchdog(5 * time.Millisecond)
	w.Watch("w", pool, 25*time.Millisecond)
	w.Start()
	defer w.Stop()

	gate := make(chan struct{})
	pool.Post(func() { <-gate })
	poll.UntilFor(t, 2*time.Second, "stall while blocked", func() bool {
		return w.Health()["w"].LivenessValue() == supervise.LiveStalled
	})
	close(gate)
	poll.UntilFor(t, 2*time.Second, "recovery after unblock", func() bool {
		return w.Health()["w"].LivenessValue() == supervise.LiveOK
	})
	if w.Stalls() != 1 {
		t.Fatalf("stall episodes = %d, want 1", w.Stalls())
	}
}

// TestWatchdogReportsDownTarget: probes answered with ErrTargetDown read
// LiveDown, not stalled — the watchdog distinguishes dead from blocked.
func TestWatchdogReportsDownTarget(t *testing.T) {
	var reg gid.Registry
	s, err := supervise.New("w", func(int) (executor.Executor, error) {
		return executor.NewWorkerPool("w", 1, &reg), nil
	}, supervise.Options{MaxRestarts: 1, Window: time.Minute, BackoffInitial: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// Two manual failures exhaust the budget of 1.
	s.ReportFailure(errors.New("probe failed"))
	poll.UntilFor(t, 2*time.Second, "first restart done", func() bool {
		h := s.Health()
		return h.Generation == 1 && h.State == supervise.Running.String()
	})
	s.ReportFailure(errors.New("probe failed again"))
	poll.UntilFor(t, 2*time.Second, "down", func() bool {
		return s.Health().StatusValue() == supervise.Down
	})

	w := supervise.NewWatchdog(5 * time.Millisecond)
	w.Watch("w", s, 25*time.Millisecond)
	w.Start()
	defer w.Stop()
	poll.UntilFor(t, 2*time.Second, "down via probe", func() bool {
		return w.Health()["w"].LivenessValue() == supervise.LiveDown
	})
}
