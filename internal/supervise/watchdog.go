package supervise

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/trace"
)

// Liveness grades what the watchdog last observed about a watched target.
type Liveness int

// The liveness grades: LiveOK targets answer heartbeats, LiveStalled
// targets have an unanswered probe past their threshold (blocked EDT,
// wedged pool, queue not draining), LiveDown targets answer probes with
// ErrTargetDown.
const (
	LiveOK Liveness = iota
	LiveStalled
	LiveDown
)

// String renders the liveness the way /healthz spells it.
func (l Liveness) String() string {
	switch l {
	case LiveOK:
		return "ok"
	case LiveStalled:
		return "stalled"
	case LiveDown:
		return "down"
	default:
		return "unknown"
	}
}

// Report is a point-in-time liveness snapshot of one watched target.
type Report struct {
	Name     string `json:"name"`
	Liveness string `json:"liveness"`
	// LastBeat is when the most recent heartbeat probe was observed
	// complete (zero until the first probe lands).
	LastBeat time.Time `json:"last_beat,omitempty"`
	// StallFor is how long the currently outstanding probe has been
	// unanswered (0 when none is outstanding).
	StallFor time.Duration `json:"stall_for,omitempty"`
	// Stalls counts stall episodes flagged for this target.
	Stalls int64 `json:"stalls"`
	// QueueDepth is the target's queue depth at the last check, when the
	// target exposes executor stats.
	QueueDepth int64 `json:"queue_depth"`
	// LastError is the terminal error of the last failed probe.
	LastError string `json:"last_error,omitempty"`
}

// LivenessValue is the Liveness the snapshot's Liveness string encodes.
func (r Report) LivenessValue() Liveness {
	switch r.Liveness {
	case LiveStalled.String():
		return LiveStalled
	case LiveDown.String():
		return LiveDown
	default:
		return LiveOK
	}
}

type watchEntry struct {
	name       string
	e          executor.Executor
	stallAfter time.Duration

	outstanding *executor.Completion // at most one probe in flight
	sentAt      time.Time
	lastBeat    time.Time
	stalled     bool
	down        bool
	episodes    int64
	lastErr     error
}

// Watchdog heartbeats registered executors and flags the ones that stop
// draining. Each check posts at most one no-op probe per target; a probe
// still unanswered after the target's stall threshold means nothing behind
// the queue is making progress — the loop is blocked, the workers are dead,
// or the backlog's sojourn time exceeds the bound — and the target is
// flagged stalled (trace.OpStall, once per episode) until a probe lands.
type Watchdog struct {
	interval time.Duration
	sink     atomic.Pointer[trace.Sink]
	stalls   atomic.Int64

	mu      sync.Mutex
	entries map[string]*watchEntry
	order   []string

	started  bool
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWatchdog builds a watchdog that checks every interval (default 100ms).
// Call Watch to register targets, then Start.
func NewWatchdog(interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Watchdog{
		interval: interval,
		entries:  make(map[string]*watchEntry),
		done:     make(chan struct{}),
	}
}

// Watch registers e under name with the given stall threshold (default 10×
// the check interval). Re-watching a name replaces the entry.
func (w *Watchdog) Watch(name string, e executor.Executor, stallAfter time.Duration) {
	if stallAfter <= 0 {
		stallAfter = 10 * w.interval
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.entries[name]; !ok {
		w.order = append(w.order, name)
	}
	w.entries[name] = &watchEntry{name: name, e: e, stallAfter: stallAfter}
}

// Start begins the heartbeat loop. Starting twice is a no-op.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	w.wg.Add(1)
	go w.run()
}

// Stop halts the heartbeat loop. Outstanding probes are abandoned (they
// belong to their executors and complete or fail there).
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.done) })
	w.wg.Wait()
}

// SetTraceSink emits OpStall events to sink.
func (w *Watchdog) SetTraceSink(sink trace.Sink) { w.sink.Store(&sink) }

// Stalls returns the total stall episodes flagged across all targets.
func (w *Watchdog) Stalls() int64 { return w.stalls.Load() }

func (w *Watchdog) run() {
	defer w.wg.Done()
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case now := <-t.C:
			w.check(now)
		}
	}
}

// check advances every entry's probe state machine. Probes are posted under
// the watchdog lock; Post only enqueues, so this cannot block on the
// watched target even when it is wedged.
func (w *Watchdog) check(now time.Time) {
	var stalledNames []string
	w.mu.Lock()
	for _, name := range w.order {
		if w.checkEntry(w.entries[name], now) {
			stalledNames = append(stalledNames, name)
		}
	}
	w.mu.Unlock()
	for _, name := range stalledNames {
		w.emit(trace.OpStall, name)
	}
}

// checkEntry returns true when the entry entered a new stall episode.
func (w *Watchdog) checkEntry(en *watchEntry, now time.Time) bool {
	if en.outstanding != nil {
		if !en.outstanding.Finished() {
			if !en.stalled && now.Sub(en.sentAt) >= en.stallAfter {
				en.stalled = true
				en.episodes++
				w.stalls.Add(1)
				return true
			}
			return false // keep waiting on the same probe
		}
		// Probe landed (ran, or failed typed): the target is answering.
		err := en.outstanding.Err()
		en.outstanding = nil
		en.lastBeat = now
		en.stalled = false
		en.lastErr = err
		en.down = err != nil && errors.Is(err, ErrTargetDown)
	}
	en.outstanding = en.e.Post(func() {})
	en.sentAt = now
	if en.outstanding.Finished() {
		// Synchronous completion (rejection or inline run): fold it in
		// now rather than waiting a tick.
		err := en.outstanding.Err()
		en.outstanding = nil
		en.lastBeat = now
		en.stalled = false
		en.lastErr = err
		en.down = err != nil && errors.Is(err, ErrTargetDown)
	}
	return false
}

func (w *Watchdog) emit(op trace.Op, target string) {
	if p := w.sink.Load(); p != nil && *p != nil {
		(*p).Record(trace.Event{Time: time.Now(), Op: op, Target: target})
	}
}

// Health reports every watched target's liveness, keyed by watch name.
func (w *Watchdog) Health() map[string]Report {
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]Report, len(w.entries))
	for name, en := range w.entries {
		r := Report{
			Name:     name,
			LastBeat: en.lastBeat,
			Stalls:   en.episodes,
		}
		if en.outstanding != nil {
			r.StallFor = now.Sub(en.sentAt)
		}
		if en.lastErr != nil {
			r.LastError = en.lastErr.Error()
		}
		switch {
		case en.down:
			r.Liveness = LiveDown.String()
		case en.stalled:
			r.Liveness = LiveStalled.String()
		default:
			r.Liveness = LiveOK.String()
		}
		if sp, ok := base(en.e).(interface{ Stats() executor.Stats }); ok {
			r.QueueDepth = sp.Stats().QueueDepth
		}
		out[name] = r
	}
	return out
}
