// Package integration exercises the whole stack together: runtime + event
// loop + GUI toolkit + kernels + omp, under nesting, stress, failure
// injection and shutdown races that no single package test covers.
package integration

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/gui"
	"repro/internal/kernels"
	"repro/internal/testutil/poll"
)

// stack is a full application fixture.
type stack struct {
	reg *gid.Registry
	rt  *core.Runtime
	tk  *gui.Toolkit
}

func newStack(t *testing.T, workers int) *stack {
	t.Helper()
	reg := &gid.Registry{}
	tk := gui.NewToolkit(reg)
	rt := core.NewRuntime(reg)
	if err := rt.RegisterEDT("edt", tk.EDT()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateWorker("worker", workers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Shutdown(); tk.Dispose() })
	return &stack{reg: reg, rt: rt, tk: tk}
}

// TestFullGUIApplication drives a complete simulated app: buttons whose
// handlers offload kernels, update progress bars, and complete — checking
// confinement, counts and liveness end to end.
func TestFullGUIApplication(t *testing.T) {
	s := newStack(t, 3)
	progress := s.tk.NewProgressBar("progress", 100)
	status := s.tk.NewLabel("status")

	const clicks = 12
	var wg sync.WaitGroup
	wg.Add(clicks)
	btn := s.tk.NewButton("render", func() {
		status.SetText("rendering")
		s.rt.Invoke("worker", core.Nowait, func() {
			k := kernels.NewRayTracer(16)
			k.RunSeq()
			if err := k.Validate(); err != nil {
				t.Error(err)
			}
			s.rt.Invoke("edt", core.Wait, func() {
				progress.SetValue(progress.Value() + 100/clicks)
				status.SetText("done")
				wg.Done()
			})
		})
	})
	for i := 0; i < clicks; i++ {
		btn.Click()
	}
	waitDone(t, &wg, time.Minute)
	if s.tk.Violations() != 0 {
		t.Fatalf("confinement violations: %d", s.tk.Violations())
	}
	if btn.Clicks() != clicks {
		t.Fatalf("clicks = %d", btn.Clicks())
	}
	if len(progress.History()) != clicks {
		t.Fatalf("progress updates = %d", len(progress.History()))
	}
}

// TestSequentialElisionEquivalence runs the same composite program with
// directives interpreted and with directives disabled, asserting identical
// observable results — the OpenMP correctness philosophy at system level.
func TestSequentialElisionEquivalence(t *testing.T) {
	program := func(rt *core.Runtime) []int {
		var mu sync.Mutex
		var out []int
		emit := func(v int) { mu.Lock(); out = append(out, v); mu.Unlock() }
		comp, err := rt.Invoke("worker", core.Nowait, func() {
			emit(1)
			rt.Invoke("worker", core.Wait, func() { emit(2) }) // same-target: inline
			emit(3)
		})
		if err != nil {
			t.Fatal(err)
		}
		comp.Wait()
		rt.InvokeNamed("worker", "g", func() { emit(4) })
		rt.WaitTag("g")
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), out...)
	}

	mk := func(enabled bool) []int {
		reg := &gid.Registry{}
		rt := core.NewRuntime(reg)
		defer rt.Shutdown()
		rt.CreateWorker("worker", 2)
		rt.SetEnabled(enabled)
		return program(rt)
	}
	par := mk(true)
	seq := mk(false)
	if fmt.Sprint(par) != fmt.Sprint(seq) {
		t.Fatalf("parallel result %v != sequential elision %v", par, seq)
	}
	if fmt.Sprint(seq) != "[1 2 3 4]" {
		t.Fatalf("sequential order = %v", seq)
	}
}

// TestRandomInvokeStorm is the no-deadlock stress property: many goroutines
// issue random invoke sequences (random targets, modes, nesting) and every
// operation completes within the deadline.
func TestRandomInvokeStorm(t *testing.T) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	for i := 0; i < 3; i++ {
		if _, err := rt.CreateWorker(fmt.Sprintf("w%d", i), 1+i); err != nil {
			t.Fatal(err)
		}
	}
	targets := []string{"w0", "w1", "w2"}
	modes := []core.Mode{core.Wait, core.Nowait, core.Await}

	const goroutines, opsPer = 8, 60
	var completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPer; op++ {
				target := targets[rng.Intn(len(targets))]
				mode := modes[rng.Intn(len(modes))]
				inner := targets[rng.Intn(len(targets))]
				comp, err := rt.Invoke(target, mode, func() {
					// Nested invoke from inside the block.
					rt.Invoke(inner, core.Nowait, func() { completed.Add(1) })
					completed.Add(1)
				})
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if mode == core.Nowait {
					comp.Wait()
				}
			}
		}(int64(g) + 1)
	}
	waitDone(t, &wg, time.Minute)
	// Outer blocks all ran; inner nowait blocks may still be draining.
	poll.UntilFor(t, 30*time.Second, "all nowait blocks to drain", func() bool {
		return completed.Load() >= goroutines*opsPer*2
	})
}

// TestTwoEDTs registers two event loops (e.g. two windows with separate
// dispatch threads) and bounces blocks between them.
func TestTwoEDTs(t *testing.T) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	a := eventloop.New("edtA", reg)
	a.Start()
	defer a.Stop()
	b := eventloop.New("edtB", reg)
	b.Start()
	defer b.Stop()
	if err := rt.RegisterEDT("edtA", a); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterEDT("edtB", b); err != nil {
		t.Fatal(err)
	}
	var hops atomic.Int64
	done := make(chan struct{})
	var bounce func(n int)
	bounce = func(n int) {
		if n == 0 {
			close(done)
			return
		}
		target := "edtA"
		if n%2 == 0 {
			target = "edtB"
		}
		rt.Invoke(target, core.Nowait, func() {
			hops.Add(1)
			bounce(n - 1)
		})
	}
	bounce(20)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("bounce stalled after %d hops", hops.Load())
	}
	if hops.Load() != 20 {
		t.Fatalf("hops = %d", hops.Load())
	}
}

// TestDeepNestedAwaitOnEDT recursively awaits on the EDT: each level pumps
// the next level's events (dispatch depth grows), and all levels unwind.
// The worker side must use Await too: with a blocking Wait, recursion
// depth beyond the pool size exhausts the workers and deadlocks — the very
// trap the await logical barrier exists to avoid (a worker in the barrier
// help-runs the deeper blocks queued on its own pool).
func TestDeepNestedAwaitOnEDT(t *testing.T) {
	s := newStack(t, 2)
	const depth = 6
	var maxDepth atomic.Int64
	var recurse func(n int)
	recurse = func(n int) {
		if d := int64(s.tk.EDT().Depth()); d > maxDepth.Load() {
			maxDepth.Store(d)
		}
		if n == 0 {
			return
		}
		// Await a worker block that itself awaits an EDT block.
		s.rt.Invoke("worker", core.Await, func() {
			s.rt.Invoke("edt", core.Await, func() { recurse(n - 1) })
		})
	}
	comp := s.tk.EDT().Post(func() { recurse(depth) })
	if err := comp.Wait(); err != nil {
		t.Fatal(err)
	}
	if maxDepth.Load() < depth {
		t.Fatalf("max dispatch depth %d, want >= %d (pump nesting broken)", maxDepth.Load(), depth)
	}
}

// TestPanicStorm injects panics into handlers and offloaded blocks; the
// system must remain fully operational afterwards.
func TestPanicStorm(t *testing.T) {
	s := newStack(t, 2)
	s.tk.EDT().SetPanicHandler(func(any) {})
	s.tk.SetPolicy(gui.CountViolations)
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			s.tk.EDT().Post(func() { panic("edt handler bug") })
		case 1:
			s.rt.Invoke("worker", core.Nowait, func() { panic("worker bug") })
		case 2:
			s.rt.InvokeNamed("worker", "storm", func() { panic("tagged bug") })
		}
	}
	if err := s.rt.WaitTag("storm"); err == nil {
		t.Fatal("tag wait swallowed panics")
	}
	// Liveness after the storm.
	ok := false
	if err := s.tk.InvokeAndWait(func() { ok = true }); err != nil || !ok {
		t.Fatalf("EDT dead after panic storm: %v", err)
	}
	comp, err := s.rt.Invoke("worker", core.Wait, func() {})
	if err != nil || comp.Err() != nil {
		t.Fatalf("worker dead after panic storm: %v %v", err, comp.Err())
	}
}

// TestShutdownUnderLoad shuts the runtime down while blocks are in flight:
// in-flight work drains, later submissions fail cleanly, nothing hangs.
func TestShutdownUnderLoad(t *testing.T) {
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	rt.CreateWorker("worker", 2)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		rt.Invoke("worker", core.Nowait, func() {
			time.Sleep(100 * time.Microsecond)
			ran.Add(1)
		})
	}
	rt.Shutdown()
	if got := ran.Load(); got != 100 {
		t.Fatalf("shutdown drained %d/100 blocks", got)
	}
	if _, err := rt.Invoke("worker", core.Wait, func() {}); err == nil {
		t.Fatal("invoke after shutdown succeeded")
	}
}

// TestKernelsInsideHandlersParallel runs every kernel family, parallelized,
// from inside offloaded handlers concurrently — the composition Evaluation
// A depends on.
func TestKernelsInsideHandlersParallel(t *testing.T) {
	s := newStack(t, 4)
	var wg sync.WaitGroup
	for _, name := range kernels.Names() {
		factory := kernels.Factories()[name]
		name := name
		wg.Add(1)
		s.rt.Invoke("worker", core.Nowait, func() {
			defer wg.Done()
			k := factory(kernels.TestSize(name))
			k.RunPar(2)
			if err := k.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
	}
	waitDone(t, &wg, time.Minute)
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out waiting for completion")
	}
}
