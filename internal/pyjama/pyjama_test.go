package pyjama

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// Each test swaps in a fresh runtime so the package-level default does not
// leak across tests.
func fresh(t *testing.T) {
	t.Helper()
	prev := SetRuntime(core.NewRuntime(nil))
	t.Cleanup(func() {
		SetRuntime(prev).Shutdown()
	})
}

func TestTableIIRoundTrip(t *testing.T) {
	fresh(t)
	edt, err := RegisterEDT("edt")
	if err != nil {
		t.Fatal(err)
	}
	defer edt.Stop()
	pool, err := CreateWorker("worker", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() != 2 {
		t.Fatalf("workers = %d", pool.Workers())
	}
	if _, err := RegisterEDT("edt"); err == nil {
		t.Fatal("duplicate EDT accepted")
	}
}

func TestTargetBlockModes(t *testing.T) {
	fresh(t)
	if _, err := CreateWorker("worker", 2); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	// Wait
	c := TargetBlock("worker", Wait, "", func() { n.Add(1) })
	if !c.Finished() || n.Load() != 1 {
		t.Fatal("wait mode did not complete synchronously")
	}
	// Nowait
	gate := make(chan struct{})
	c2 := TargetBlock("worker", Nowait, "", func() { <-gate; n.Add(1) })
	if c2.Finished() {
		t.Fatal("nowait block finished early")
	}
	close(gate)
	c2.Wait()
	// NameAs + WaitFor
	TargetBlock("worker", NameAs, "grp", func() { n.Add(1) })
	TargetBlock("worker", NameAs, "grp", func() { n.Add(1) })
	WaitFor("grp")
	if n.Load() != 4 {
		t.Fatalf("n = %d, want 4", n.Load())
	}
	// Await from an unaffiliated goroutine degrades to wait.
	c3 := TargetBlock("worker", Await, "", func() { n.Add(1) })
	if !c3.Finished() {
		t.Fatal("await did not complete")
	}
}

func TestTargetBlockPanicsOnUnknownTarget(t *testing.T) {
	fresh(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown target")
		}
	}()
	TargetBlock("ghost", Wait, "", func() {})
}

func TestTargetBlockIf(t *testing.T) {
	fresh(t)
	CreateWorker("worker", 1)
	ran := false
	c := TargetBlockIf(false, "worker", Nowait, "", func() { ran = true })
	if !ran || !c.Finished() {
		t.Fatal("if(false) did not run inline")
	}
}

func TestTeamSize(t *testing.T) {
	if TeamSize(false, 8) != 1 || TeamSize(true, 8) != 8 {
		t.Fatal("TeamSize")
	}
}

func TestAwaitChan(t *testing.T) {
	fresh(t)
	done := make(chan struct{})
	close(done)
	AwaitChan(done) // must return immediately
}

func TestReset(t *testing.T) {
	prev := SetRuntime(core.NewRuntime(nil))
	defer func() { SetRuntime(prev) }()
	CreateWorker("w", 1)
	Reset()
	if Runtime().Target("w") != nil {
		t.Fatal("Reset kept old targets")
	}
}
