// Package pyjama is the public facade of the reproduction: the programmer's
// API corresponding to Pyjama's PjRuntime static interface plus the runtime
// functions of Table II. Generated code emitted by the pjc source-to-source
// compiler calls into this package; hand-written programs may use it
// directly with closures.
//
// A process-wide default runtime backs the package-level functions,
// mirroring Pyjama's static runtime. Tests or embedders that need isolation
// can build their own core.Runtime instead.
package pyjama

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gid"
)

// Mode re-exports the scheduling-property modes.
type Mode = core.Mode

// Re-exported scheduling-property constants (Table I).
const (
	Wait   = core.Wait
	Nowait = core.Nowait
	NameAs = core.NameAs
	Await  = core.Await
)

var (
	mu  sync.Mutex
	std = core.NewRuntime(nil)
)

// Runtime returns the process-wide default runtime.
func Runtime() *core.Runtime {
	mu.Lock()
	defer mu.Unlock()
	return std
}

// SetRuntime replaces the process-wide runtime (for tests) and returns the
// previous one.
func SetRuntime(rt *core.Runtime) *core.Runtime {
	mu.Lock()
	defer mu.Unlock()
	prev := std
	std = rt
	return prev
}

// Reset replaces the default runtime with a fresh one, shutting down the
// previous runtime's owned workers.
func Reset() {
	old := SetRuntime(core.NewRuntime(nil))
	old.Shutdown()
}

// RegisterEDT is virtual_target_register_edt (Table II): it creates an
// event loop, registers it as the virtual target named tname, and returns
// it. The caller drives events through the returned loop.
func RegisterEDT(tname string) (*eventloop.Loop, error) {
	l := eventloop.New(tname, &gid.Default)
	l.Start()
	if err := Runtime().RegisterEDT(tname, l); err != nil {
		l.Stop()
		return nil, err
	}
	return l, nil
}

// CreateWorker is virtual_target_create_worker (Table II): it creates a
// worker virtual target named tname with at most m threads.
func CreateWorker(tname string, m int) (*executor.WorkerPool, error) {
	return Runtime().CreateWorker(tname, m)
}

// TargetBlock executes block on the named virtual target with the given
// scheduling property; tag is the name_as tag (ignored unless mode is
// NameAs). It is the call the pjc compiler generates for
//
//	//#omp target virtual(target) [nowait|name_as(tag)|await]
//	{ block }
//
// Configuration errors (unknown target, missing tag) panic: generated code
// has no error path, exactly like Pyjama's generated Java. A panic inside
// the block itself is captured in the returned Completion instead.
func TargetBlock(target string, mode Mode, tag string, block func()) *executor.Completion {
	var comp *executor.Completion
	var err error
	if mode == NameAs {
		comp, err = Runtime().InvokeNamed(target, tag, block)
	} else {
		comp, err = Runtime().Invoke(target, mode, block)
	}
	if err != nil {
		panic(fmt.Sprintf("pyjama: target block failed: %v", err))
	}
	return comp
}

// TargetBlockIf is TargetBlock guarded by the directive's if-clause: with
// cond false the block runs synchronously on the encountering goroutine.
func TargetBlockIf(cond bool, target string, mode Mode, tag string, block func()) *executor.Completion {
	if !cond {
		return executor.NewCompletedCompletion(executor.RunCaptured(block))
	}
	return TargetBlock(target, mode, tag, block)
}

// WaitFor implements the standalone wait(tag, ...) directive: suspend until
// every block submitted under each tag has finished.
func WaitFor(tags ...string) {
	if err := Runtime().Wait(tags...); err != nil {
		panic(fmt.Sprintf("pyjama: waited block failed: %v", err))
	}
}

// AwaitCompletion holds the calling goroutine in the await logical barrier
// until comp finishes (exported for hand-written continuation code).
func AwaitCompletion(comp *executor.Completion) { Runtime().AwaitCompletion(comp) }

// AwaitChan holds the calling goroutine in the await logical barrier until
// done fires — the paper's future-work bridge to asynchronous I/O.
func AwaitChan(done <-chan struct{}) { Runtime().AwaitDone(done) }

// TeamSize applies a parallel directive's if-clause: if cond is false the
// region runs with a team of one (serialized), otherwise with n threads.
func TeamSize(cond bool, n int) int {
	if !cond {
		return 1
	}
	return n
}
