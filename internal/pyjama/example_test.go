package pyjama_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/pyjama"
)

// Example shows the Table II initialization followed by tagged offloading
// and a wait clause — the hand-written form of
//
//	//#omp target virtual(worker) name_as(sum)
//	{ ... }
//	//#omp wait(sum)
func Example() {
	prev := pyjama.SetRuntime(core.NewRuntime(nil))
	defer func() { pyjama.SetRuntime(prev).Shutdown() }()

	if _, err := pyjama.CreateWorker("worker", 4); err != nil {
		panic(err)
	}

	var mu sync.Mutex
	var sums []int
	for i := 1; i <= 4; i++ {
		i := i
		pyjama.TargetBlock("worker", pyjama.NameAs, "sum", func() {
			s := 0
			for k := 1; k <= i; k++ {
				s += k
			}
			mu.Lock()
			sums = append(sums, s)
			mu.Unlock()
		})
	}
	pyjama.WaitFor("sum") // joins all four tagged blocks

	sort.Ints(sums)
	fmt.Println(sums)
	// Output: [1 3 6 10]
}

// Example_await shows the await logical barrier bridging an arbitrary
// completion channel — the asynchronous-I/O integration hook.
func Example_await() {
	prev := pyjama.SetRuntime(core.NewRuntime(nil))
	defer func() { pyjama.SetRuntime(prev).Shutdown() }()
	pyjama.CreateWorker("worker", 2)

	comp := pyjama.TargetBlock("worker", pyjama.Nowait, "", func() {
		fmt.Println("offloaded work")
	})
	pyjama.AwaitCompletion(comp)
	fmt.Println("continuation")
	// Output:
	// offloaded work
	// continuation
}
