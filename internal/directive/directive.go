// Package directive defines and parses the OpenMP directive language of the
// paper: the extended `target` directive of Figure 5 —
//
//	#pragma omp target [clause[,] clause ...] structured-block
//	  target-property-clause:     device(device-number) | virtual(name-tag)
//	  scheduling-property-clause: nowait | name_as(name-tag) | await
//	  data-handling-clause:       default(shared|none) | shared(...) |
//	                              private(...) | firstprivate(...)
//	  if-clause:                  if(expression)
//
// — plus the classic directives the evaluation combines it with (parallel,
// for, sections, single, master, critical, barrier, task, taskwait) and the
// standalone wait(name-tag) synchronization directive.
//
// Since the host language (Go, like the paper's Java) has no #pragma, a
// directive is written as a comment beginning with //#omp, which
// non-supporting toolchains ignore — preserving sequential correctness.
package directive

import (
	"fmt"
	"strings"
)

// Prefix is the comment marker introducing a directive.
const Prefix = "#omp"

// Kind enumerates directive kinds.
type Kind int

const (
	KindInvalid Kind = iota
	KindTarget
	// KindTargetData is the `target data` construct: a scoped device data
	// environment (map-in at entry, map-out at exit).
	KindTargetData
	// KindTargetUpdate is the standalone `target update` directive: an
	// explicit host<->device transfer inside a data region.
	KindTargetUpdate
	KindWait // standalone wait(tag) synchronization
	KindParallel
	KindParallelFor
	KindParallelSections
	KindFor
	KindSections
	KindSection
	KindSingle
	KindMaster
	KindCritical
	KindBarrier
	KindTask
	KindTaskwait
)

var kindNames = map[Kind]string{
	KindTarget:           "target",
	KindTargetData:       "target data",
	KindTargetUpdate:     "target update",
	KindWait:             "wait",
	KindParallel:         "parallel",
	KindParallelFor:      "parallel for",
	KindParallelSections: "parallel sections",
	KindFor:              "for",
	KindSections:         "sections",
	KindSection:          "section",
	KindSingle:           "single",
	KindMaster:           "master",
	KindCritical:         "critical",
	KindBarrier:          "barrier",
	KindTask:             "task",
	KindTaskwait:         "taskwait",
}

// String returns the directive spelling.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ClauseKind enumerates clause kinds.
type ClauseKind int

const (
	ClauseInvalid ClauseKind = iota
	// target-property clauses
	ClauseDevice
	ClauseVirtual
	// scheduling-property clauses
	ClauseNowait
	ClauseNameAs
	ClauseAwait
	ClauseWait // wait(tag...) on a directive
	// if-clause
	ClauseIf
	// data-handling clauses
	ClauseDefault
	ClauseShared
	ClausePrivate
	ClauseFirstprivate
	// classic clauses
	ClauseNumThreads
	ClauseSchedule
	ClauseReduction
	// ClauseMap is the accelerator-model data-mapping clause:
	// map(to|from|tofrom|alloc: var, ...). Only meaningful on device
	// targets; virtual targets share host memory and need no mapping.
	ClauseMap
)

var clauseNames = map[ClauseKind]string{
	ClauseDevice:       "device",
	ClauseVirtual:      "virtual",
	ClauseNowait:       "nowait",
	ClauseNameAs:       "name_as",
	ClauseAwait:        "await",
	ClauseWait:         "wait",
	ClauseIf:           "if",
	ClauseDefault:      "default",
	ClauseShared:       "shared",
	ClausePrivate:      "private",
	ClauseFirstprivate: "firstprivate",
	ClauseNumThreads:   "num_threads",
	ClauseSchedule:     "schedule",
	ClauseReduction:    "reduction",
	ClauseMap:          "map",
}

var clauseByName = func() map[string]ClauseKind {
	m := make(map[string]ClauseKind, len(clauseNames))
	for k, n := range clauseNames {
		m[n] = k
	}
	return m
}()

// String returns the clause spelling.
func (c ClauseKind) String() string {
	if s, ok := clauseNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ClauseKind(%d)", int(c))
}

// takesArgs reports whether a clause kind requires parenthesized arguments.
func (c ClauseKind) takesArgs() bool {
	switch c {
	case ClauseNowait, ClauseAwait:
		return false
	case ClauseDefault, ClauseShared, ClausePrivate, ClauseFirstprivate:
		return true // when present these list variables / policy
	default:
		return true
	}
}

// Clause is one parsed clause with its raw argument strings.
type Clause struct {
	Kind ClauseKind
	Args []string
}

// Arg returns the i-th argument or "".
func (c Clause) Arg(i int) string {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return ""
}

// MapSpec is a parsed map clause: a transfer direction and the mapped
// variables.
type MapSpec struct {
	// Direction is one of "to", "from", "tofrom", "alloc".
	Direction string
	// Vars are the mapped variable names.
	Vars []string
}

// MapSpec parses a ClauseMap's arguments: map(to: a, b) or map(x) (the
// direction defaults to tofrom, as in OpenMP).
func (c Clause) MapSpec() (MapSpec, error) {
	if c.Kind != ClauseMap {
		return MapSpec{}, fmt.Errorf("directive: MapSpec on %q clause", c.Kind)
	}
	if len(c.Args) == 0 {
		return MapSpec{}, fmt.Errorf("directive: map clause requires variables")
	}
	spec := MapSpec{Direction: "tofrom"}
	first := c.Args[0]
	rest := c.Args[1:]
	if i := strings.IndexByte(first, ':'); i >= 0 {
		dir := strings.TrimSpace(first[:i])
		switch dir {
		case "to", "from", "tofrom", "alloc":
			spec.Direction = dir
		default:
			return MapSpec{}, fmt.Errorf("directive: unknown map direction %q", dir)
		}
		first = strings.TrimSpace(first[i+1:])
	}
	if first == "" {
		return MapSpec{}, fmt.Errorf("directive: map clause requires variables")
	}
	spec.Vars = append(spec.Vars, first)
	for _, v := range rest {
		if v = strings.TrimSpace(v); v != "" {
			spec.Vars = append(spec.Vars, v)
		}
	}
	return spec, nil
}

// Directive is one parsed directive.
type Directive struct {
	Kind    Kind
	Clauses []Clause
	// Name is the optional region name of a critical directive.
	Name string
	// Raw preserves the original directive text (after the prefix).
	Raw string
}

// Clause returns the first clause of kind k, or nil.
func (d *Directive) Clause(k ClauseKind) *Clause {
	for i := range d.Clauses {
		if d.Clauses[i].Kind == k {
			return &d.Clauses[i]
		}
	}
	return nil
}

// Has reports whether a clause of kind k is present.
func (d *Directive) Has(k ClauseKind) bool { return d.Clause(k) != nil }

// TargetName returns the virtual-target name of a target directive
// ("" if this is not a virtual target).
func (d *Directive) TargetName() string {
	if c := d.Clause(ClauseVirtual); c != nil {
		return c.Arg(0)
	}
	return ""
}

// SchedulingMode returns the scheduling-property clause present on a target
// directive (ClauseInvalid means default/wait behaviour) plus the name tag
// for name_as.
func (d *Directive) SchedulingMode() (ClauseKind, string) {
	for _, k := range []ClauseKind{ClauseNowait, ClauseAwait, ClauseNameAs} {
		if c := d.Clause(k); c != nil {
			return k, c.Arg(0)
		}
	}
	return ClauseInvalid, ""
}

// String renders the directive canonically (parseable back by Parse).
func (d *Directive) String() string {
	var b strings.Builder
	b.WriteString(Prefix)
	b.WriteByte(' ')
	b.WriteString(d.Kind.String())
	if d.Kind == KindCritical && d.Name != "" {
		b.WriteByte('(')
		b.WriteString(d.Name)
		b.WriteByte(')')
	}
	for _, c := range d.Clauses {
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
		if len(c.Args) > 0 {
			b.WriteByte('(')
			b.WriteString(strings.Join(c.Args, ", "))
			b.WriteByte(')')
		}
	}
	return b.String()
}

// allowedClauses maps each directive kind to its legal clause kinds.
var allowedClauses = map[Kind]map[ClauseKind]bool{
	KindTarget: {
		ClauseDevice: true, ClauseVirtual: true,
		ClauseNowait: true, ClauseNameAs: true, ClauseAwait: true,
		ClauseIf: true, ClauseDefault: true, ClauseShared: true,
		ClausePrivate: true, ClauseFirstprivate: true, ClauseMap: true,
	},
	KindTargetData:   {ClauseDevice: true, ClauseMap: true, ClauseIf: true},
	KindTargetUpdate: {ClauseDevice: true, ClauseMap: true, ClauseIf: true},
	KindWait:         {ClauseWait: true},
	KindParallel:     {ClauseNumThreads: true, ClauseIf: true, ClauseDefault: true, ClauseShared: true, ClausePrivate: true, ClauseFirstprivate: true, ClauseReduction: true},
	KindParallelFor: {ClauseNumThreads: true, ClauseIf: true, ClauseSchedule: true, ClauseDefault: true,
		ClauseShared: true, ClausePrivate: true, ClauseFirstprivate: true, ClauseReduction: true, ClauseNowait: true},
	KindParallelSections: {ClauseNumThreads: true, ClauseIf: true, ClauseDefault: true,
		ClauseShared: true, ClausePrivate: true, ClauseFirstprivate: true},
	KindFor:      {ClauseSchedule: true, ClauseNowait: true, ClauseReduction: true, ClausePrivate: true, ClauseFirstprivate: true},
	KindSections: {ClauseNowait: true},
	KindSection:  {},
	KindSingle:   {ClauseNowait: true},
	KindMaster:   {},
	KindCritical: {},
	KindBarrier:  {},
	KindTask:     {ClauseIf: true, ClauseDefault: true, ClauseShared: true, ClausePrivate: true, ClauseFirstprivate: true},
	KindTaskwait: {},
}

// Validate checks clause legality and the structural rules of Figure 5:
// at most one target-property clause, at most one scheduling-property
// clause, argument arity.
func (d *Directive) Validate() error {
	if d.Kind == KindInvalid {
		return fmt.Errorf("directive: invalid kind")
	}
	allowed := allowedClauses[d.Kind]
	seen := map[ClauseKind]int{}
	for _, c := range d.Clauses {
		if d.Kind == KindCritical && c.Kind == ClauseInvalid {
			continue
		}
		if !allowed[c.Kind] {
			return fmt.Errorf("directive: clause %q not allowed on %q", c.Kind, d.Kind)
		}
		seen[c.Kind]++
	}
	// Report duplicates in the deterministic order clauses were written.
	// wait, shared, private, firstprivate, map may repeat; others may not.
	reported := map[ClauseKind]bool{}
	for _, c := range d.Clauses {
		switch c.Kind {
		case ClauseWait, ClauseShared, ClausePrivate, ClauseFirstprivate, ClauseMap:
		default:
			if seen[c.Kind] > 1 && !reported[c.Kind] {
				reported[c.Kind] = true
				return fmt.Errorf("directive: duplicate clause %q (written %d times; it may appear at most once on a %q directive)",
					c.Kind, seen[c.Kind], d.Kind)
			}
		}
	}
	if d.Kind == KindTarget {
		if seen[ClauseDevice] > 0 && seen[ClauseVirtual] > 0 {
			return fmt.Errorf("directive: target has both device and virtual clauses")
		}
		// At most one scheduling-property clause (Figure 5): name the exact
		// conflicting pair, the way a reader wrote them.
		var sched []ClauseKind
		for _, k := range []ClauseKind{ClauseNowait, ClauseNameAs, ClauseAwait} {
			if seen[k] > 0 {
				sched = append(sched, k)
			}
		}
		if len(sched) > 1 {
			names := make([]string, len(sched))
			for i, k := range sched {
				names[i] = fmt.Sprintf("%q", k.String())
			}
			return fmt.Errorf("directive: conflicting scheduling clauses %s on one target: a block is either fire-and-forget (nowait), tagged for a later wait (name_as), or awaited in the logical barrier (await) — pick one",
				strings.Join(names, " and "))
		}
		// Data mapping is an accelerator concept; a virtual target shares
		// host memory, so map clauses are meaningless there (Section III.B,
		// "data-context sharing").
		if seen[ClauseMap] > 0 && seen[ClauseVirtual] > 0 {
			return fmt.Errorf("directive: map clause requires a device target; virtual targets share host memory")
		}
	}
	if d.Kind == KindWait && seen[ClauseWait] == 0 {
		return fmt.Errorf("directive: wait directive requires at least one wait(tag) clause")
	}
	if d.Kind == KindTargetUpdate {
		if seen[ClauseMap] == 0 {
			return fmt.Errorf("directive: target update requires at least one map clause")
		}
		for _, c := range d.Clauses {
			if c.Kind != ClauseMap {
				continue
			}
			spec, err := c.MapSpec()
			if err != nil {
				return err
			}
			if spec.Direction != "to" && spec.Direction != "from" {
				return fmt.Errorf("directive: target update map direction must be to or from, got %q", spec.Direction)
			}
		}
	}
	for _, c := range d.Clauses {
		switch c.Kind {
		case ClauseVirtual, ClauseNameAs, ClauseDevice, ClauseIf, ClauseNumThreads:
			if len(c.Args) != 1 || c.Args[0] == "" {
				return fmt.Errorf("directive: clause %q requires exactly one argument", c.Kind)
			}
		case ClauseWait:
			if len(c.Args) == 0 {
				return fmt.Errorf("directive: wait clause requires at least one tag")
			}
		case ClauseSchedule:
			if len(c.Args) < 1 || len(c.Args) > 2 {
				return fmt.Errorf("directive: schedule clause takes (kind[, chunk])")
			}
			switch c.Args[0] {
			case "static", "dynamic", "guided":
			default:
				return fmt.Errorf("directive: unknown schedule kind %q", c.Args[0])
			}
		case ClauseDefault:
			if len(c.Args) != 1 || (c.Args[0] != "shared" && c.Args[0] != "none") {
				return fmt.Errorf("directive: default clause takes (shared|none)")
			}
		case ClauseNowait, ClauseAwait:
			if len(c.Args) != 0 {
				return fmt.Errorf("directive: clause %q takes no arguments", c.Kind)
			}
		case ClauseMap:
			if _, err := c.MapSpec(); err != nil {
				return err
			}
		}
	}
	return nil
}
