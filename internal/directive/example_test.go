package directive_test

import (
	"fmt"

	"repro/internal/directive"
)

// ExampleParse parses the paper's headline directive form.
func ExampleParse() {
	d, err := directive.Parse("//#omp target virtual(worker) name_as(download) if(size > 1024)")
	if err != nil {
		panic(err)
	}
	mode, tag := d.SchedulingMode()
	fmt.Println("kind:", d.Kind)
	fmt.Println("target:", d.TargetName())
	fmt.Println("mode:", mode, "tag:", tag)
	fmt.Println("if:", d.Clause(directive.ClauseIf).Arg(0))
	fmt.Println("canonical:", d.String())
	// Output:
	// kind: target
	// target: worker
	// mode: name_as tag: download
	// if: size > 1024
	// canonical: #omp target virtual(worker) name_as(download) if(size > 1024)
}
