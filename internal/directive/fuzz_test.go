package directive

import (
	"testing"
)

// FuzzParse feeds arbitrary comment text through the directive parser and
// checks its structural invariants: no panics; a successful parse yields a
// directive that re-validates, whose accessors are total, and whose
// canonical String() form round-trips through Parse to a fixed point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The tutorial's and transformer testdata's directive vocabulary.
		"//#omp target virtual(worker) nowait",
		"//#omp target virtual(worker) name_as(render) firstprivate(i)",
		"//#omp wait(render)",
		"//#omp target virtual(worker) await",
		"//#omp target virtual(edt)",
		"//#omp parallel num_threads(4)",
		"//#omp for schedule(dynamic, 8) nowait",
		"//#omp parallel for num_threads(4) schedule(dynamic, 1)",
		"//#omp parallel for num_threads(2) schedule(static)",
		"//#omp parallel sections",
		"//#omp barrier",
		"//#omp single nowait",
		"//#omp critical(tail)",
		"//#omp master",
		"//#omp target virtual(worker) name_as(flush)",
		"//#omp wait(flush, render)",
		"//#omp target device(0) map(to: a, b) map(from: c)",
		"//#omp target data map(tofrom: buf)",
		"//#omp target update map(to: x)",
		"//#omp task if(len(q) > 0) firstprivate(q)",
		"//#omp taskwait",
		"//#omp sections nowait",
		"//#omp section",
		"//#omp target virtual(worker) if(f(x, y) > 0) // trailing comment",
		"#omp target virtual(worker), nowait",
		// Malformed inputs the parser must reject without panicking.
		"//#omp target virtual(worker) nowait await",
		"//#omp unknown thing",
		"//#omp critical(a, b)",
		"//#omp wait()",
		"#omp target virtual(",
		"#omp target device(0) virtual(w)",
		"#omp",
		"",
		"not a directive",
		"//#omp target nowait nowait",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		_ = IsDirectiveComment(text)
		d, err := Parse(text)
		if err != nil {
			if d != nil {
				t.Fatalf("Parse(%q) returned both a directive and an error %v", text, err)
			}
			return
		}
		if d == nil {
			t.Fatalf("Parse(%q) returned nil, nil", text)
		}
		if d.Kind == KindInvalid {
			t.Fatalf("Parse(%q) accepted an invalid kind", text)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a directive its own Validate rejects: %v", text, err)
		}
		// Accessors are total on a validated directive.
		_ = d.TargetName()
		_, _ = d.SchedulingMode()
		for _, c := range d.Clauses {
			if c.Kind == ClauseMap {
				_, _ = c.MapSpec()
			}
			_ = c.Arg(0)
		}
		// The canonical rendering must round-trip to a fixed point.
		s := d.String()
		d2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) ok, but its String %q does not re-parse: %v", text, s, err)
		}
		if d2.Kind != d.Kind {
			t.Fatalf("round-trip changed kind: %v -> %v (input %q, canonical %q)", d.Kind, d2.Kind, text, s)
		}
		if len(d2.Clauses) != len(d.Clauses) {
			t.Fatalf("round-trip changed clause count: %d -> %d (input %q, canonical %q)",
				len(d.Clauses), len(d2.Clauses), text, s)
		}
		for i := range d.Clauses {
			if d2.Clauses[i].Kind != d.Clauses[i].Kind {
				t.Fatalf("round-trip changed clause %d: %v -> %v (canonical %q)",
					i, d.Clauses[i].Kind, d2.Clauses[i].Kind, s)
			}
		}
		if s2 := d2.String(); s2 != s {
			t.Fatalf("String not a fixed point: %q -> %q (input %q)", s, s2, text)
		}
	})
}
