package directive

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) *Directive {
	t.Helper()
	d, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return d
}

func TestParseFigure5Examples(t *testing.T) {
	// The directives appearing in the paper's figures and listings.
	cases := []struct {
		src  string
		kind Kind
	}{
		{"//#omp target virtual(worker) nowait", KindTarget},
		{"//#omp target virtual(edt)", KindTarget},
		{"//#omp target virtual(worker) await", KindTarget},
		{"//#omp target virtual(worker) name_as(dl)", KindTarget},
		{"//#omp target device(0)", KindTarget},
		{"//#omp wait(dl)", KindWait},
		{"//#omp parallel num_threads(3)", KindParallel},
		{"//#omp parallel for schedule(dynamic, 8)", KindParallelFor},
		{"//#omp for schedule(static) nowait", KindFor},
		{"//#omp barrier", KindBarrier},
		{"//#omp critical(update)", KindCritical},
		{"//#omp critical", KindCritical},
		{"//#omp single", KindSingle},
		{"//#omp master", KindMaster},
		{"//#omp sections", KindSections},
		{"//#omp section", KindSection},
		{"//#omp task", KindTask},
		{"//#omp taskwait", KindTaskwait},
	}
	for _, c := range cases {
		d := mustParse(t, c.src)
		if d.Kind != c.kind {
			t.Errorf("Parse(%q).Kind = %v, want %v", c.src, d.Kind, c.kind)
		}
	}
}

func TestParseTargetVirtualClauses(t *testing.T) {
	d := mustParse(t, "#omp target virtual(worker) name_as(batch1) if(n > 10)")
	if d.TargetName() != "worker" {
		t.Fatalf("TargetName = %q", d.TargetName())
	}
	mode, tag := d.SchedulingMode()
	if mode != ClauseNameAs || tag != "batch1" {
		t.Fatalf("SchedulingMode = %v, %q", mode, tag)
	}
	ifc := d.Clause(ClauseIf)
	if ifc == nil || ifc.Arg(0) != "n > 10" {
		t.Fatalf("if clause = %+v", ifc)
	}
}

func TestParseDefaultSchedulingIsWait(t *testing.T) {
	d := mustParse(t, "#omp target virtual(worker)")
	mode, _ := d.SchedulingMode()
	if mode != ClauseInvalid {
		t.Fatalf("mode = %v, want default", mode)
	}
}

func TestParseNestedParensInIf(t *testing.T) {
	d := mustParse(t, "#omp target virtual(w) if(len(items) > max(a, b)) nowait")
	ifc := d.Clause(ClauseIf)
	if ifc.Arg(0) != "len(items) > max(a, b)" {
		t.Fatalf("if arg = %q", ifc.Arg(0))
	}
}

func TestParseCommaSeparatedClauses(t *testing.T) {
	d := mustParse(t, "#omp target virtual(worker), nowait")
	if !d.Has(ClauseNowait) || d.TargetName() != "worker" {
		t.Fatalf("comma-separated clauses misparsed: %+v", d)
	}
}

func TestParseMultiTagWait(t *testing.T) {
	d := mustParse(t, "#omp wait(a, b, c)")
	w := d.Clause(ClauseWait)
	if len(w.Args) != 3 || w.Args[0] != "a" || w.Args[2] != "c" {
		t.Fatalf("wait args = %v", w.Args)
	}
}

func TestParseDataClauses(t *testing.T) {
	d := mustParse(t, "#omp target virtual(w) default(shared) private(x, y) firstprivate(z)")
	if d.Clause(ClauseDefault).Arg(0) != "shared" {
		t.Fatal("default clause")
	}
	if p := d.Clause(ClausePrivate); len(p.Args) != 2 {
		t.Fatalf("private args = %v", p.Args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"not a directive",
		"#omp",
		"#omp frobnicate",
		"#omp target bogus_clause",
		"#omp target virtual(worker) device(0)",         // both target properties
		"#omp target virtual(worker) nowait await",      // two scheduling properties
		"#omp target virtual(worker) name_as(a) nowait", // two scheduling properties
		"#omp target virtual()",                         // empty name
		"#omp target virtual",                           // missing args
		"#omp target nowait(x)",                         // unexpected args
		"#omp wait",                                     // missing tags
		"#omp target virtual(worker",                    // unbalanced paren
		"#omp parallel num_threads(2) num_threads(3)",   // repeated clause
		"#omp critical(a, b)",                           // critical with two names
		"#omp parallel schedule(static)",                // schedule not allowed on parallel
		"#omp for schedule(bogus)",                      // unknown schedule kind
		"#omp for schedule(static, 4, 9)",               // too many schedule args
		"#omp target default(weird)",                    // bad default policy
		"#omp task nowait",                              // clause not allowed
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestSchedulingConflictMessages pins the hardened Validate errors: a
// conflicting pair is named exactly, and a duplicated clause reports its
// count, so directivelint diagnostics read like a human explanation.
func TestSchedulingConflictMessages(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"#omp target virtual(w) nowait await",
			`conflicting scheduling clauses "nowait" and "await"`},
		{"#omp target virtual(w) name_as(t) await",
			`conflicting scheduling clauses "name_as" and "await"`},
		{"#omp target virtual(w) nowait name_as(t)",
			`conflicting scheduling clauses "nowait" and "name_as"`},
		{"#omp target virtual(w) nowait name_as(t) await",
			`conflicting scheduling clauses "nowait" and "name_as" and "await"`},
		{"#omp target virtual(a) virtual(b)",
			`duplicate clause "virtual" (written 2 times`},
		{"#omp target virtual(w) await await await",
			`duplicate clause "await" (written 3 times`},
		{"#omp parallel num_threads(2) num_threads(3)",
			`duplicate clause "num_threads"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %q, want it to contain %q", c.src, err, c.want)
		}
	}
}

// TestTrailingCommentStripped checks the C-pragma convention: a directive
// line may carry a trailing // comment, cut only outside parentheses.
func TestTrailingCommentStripped(t *testing.T) {
	d, err := Parse("//#omp target virtual(worker) name_as(job) // schedule the render")
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetName() != "worker" {
		t.Fatalf("TargetName = %q, want worker", d.TargetName())
	}
	if mode, tag := d.SchedulingMode(); mode != ClauseNameAs || tag != "job" {
		t.Fatalf("SchedulingMode = %v %q, want name_as job", mode, tag)
	}
	if strings.Contains(d.Raw, "schedule the render") {
		t.Fatalf("Raw %q still carries the trailing comment", d.Raw)
	}

	// Inside parentheses "//" is clause text, not a comment.
	d, err = Parse("#omp target virtual(worker) if(a // b)")
	if err != nil {
		t.Fatal(err)
	}
	if c := d.Clause(ClauseIf); c == nil || c.Args[0] != "a // b" {
		t.Fatalf("if clause = %+v, want args [a // b]", c)
	}

	// A line that is only a trailing comment after the prefix is an error
	// (no directive name survives the strip).
	if _, err := Parse("#omp // nothing here"); err == nil {
		t.Fatal("comment-only directive accepted")
	}
}

func TestIsDirectiveComment(t *testing.T) {
	if !IsDirectiveComment("#omp target virtual(w)") {
		t.Fatal("plain prefix not detected")
	}
	if !IsDirectiveComment("  #omp barrier") {
		t.Fatal("leading space not tolerated")
	}
	if IsDirectiveComment(" plain comment") {
		t.Fatal("false positive")
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"#omp target virtual(worker) nowait",
		"#omp target virtual(worker) name_as(dl) if(x > 0)",
		"#omp target device(2)",
		"#omp wait(a, b)",
		"#omp parallel for num_threads(4) schedule(dynamic, 16)",
		"#omp critical(region1)",
		"#omp barrier",
		"#omp single nowait",
	}
	for _, src := range cases {
		d1 := mustParse(t, src)
		d2 := mustParse(t, d1.String())
		if d1.String() != d2.String() {
			t.Errorf("round trip changed %q -> %q", d1.String(), d2.String())
		}
		if d1.Kind != d2.Kind || len(d1.Clauses) != len(d2.Clauses) {
			t.Errorf("round trip altered structure for %q", src)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: for any generated valid target directive, Parse(String())
	// reproduces the same canonical string.
	targets := []string{"worker", "edt", "io", "pool_2"}
	tags := []string{"t1", "batch", "dl"}
	f := func(ti, mi, gi uint8, withIf bool) bool {
		d := &Directive{Kind: KindTarget}
		d.Clauses = append(d.Clauses, Clause{Kind: ClauseVirtual, Args: []string{targets[int(ti)%len(targets)]}})
		switch mi % 4 {
		case 1:
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseNowait})
		case 2:
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseAwait})
		case 3:
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseNameAs, Args: []string{tags[int(gi)%len(tags)]}})
		}
		if withIf {
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseIf, Args: []string{"cond"}})
		}
		if d.Validate() != nil {
			return false
		}
		parsed, err := Parse(d.String())
		if err != nil {
			return false
		}
		return parsed.String() == d.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDirectly(t *testing.T) {
	d := &Directive{Kind: KindTarget, Clauses: []Clause{
		{Kind: ClauseVirtual, Args: []string{"w"}},
		{Kind: ClauseAwait},
	}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Directive{Kind: KindInvalid}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid kind accepted")
	}
	// Repeated shared clauses are allowed.
	d2 := &Directive{Kind: KindParallel, Clauses: []Clause{
		{Kind: ClauseShared, Args: []string{"a"}},
		{Kind: ClauseShared, Args: []string{"b"}},
	}}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndClauseStrings(t *testing.T) {
	if KindTarget.String() != "target" || KindParallelFor.String() != "parallel for" {
		t.Fatal("kind strings")
	}
	if ClauseNameAs.String() != "name_as" {
		t.Fatal("clause strings")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
	if !strings.Contains(ClauseKind(99).String(), "99") {
		t.Fatal("unknown clause string")
	}
}

func TestRawPreserved(t *testing.T) {
	d := mustParse(t, "//#omp target   virtual( worker )   await")
	if !strings.Contains(d.Raw, "virtual( worker )") {
		t.Fatalf("Raw = %q", d.Raw)
	}
	if d.TargetName() != "worker" {
		t.Fatalf("TargetName = %q (whitespace not trimmed)", d.TargetName())
	}
}

func BenchmarkParseTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("#omp target virtual(worker) name_as(dl) if(x > 0)"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMapClause(t *testing.T) {
	d := mustParse(t, "#omp target device(0) map(to: a, b) map(from: c) map(x)")
	var specs []MapSpec
	for _, c := range d.Clauses {
		if c.Kind != ClauseMap {
			continue
		}
		s, err := c.MapSpec()
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Direction != "to" || len(specs[0].Vars) != 2 || specs[0].Vars[1] != "b" {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	if specs[1].Direction != "from" || specs[1].Vars[0] != "c" {
		t.Fatalf("spec 1 = %+v", specs[1])
	}
	// Default direction is tofrom.
	if specs[2].Direction != "tofrom" || specs[2].Vars[0] != "x" {
		t.Fatalf("spec 2 = %+v", specs[2])
	}
}

func TestMapClauseErrors(t *testing.T) {
	for _, src := range []string{
		"#omp target virtual(w) map(to: x)", // map needs a device target
		"#omp target device(0) map(sideways: x)",
		"#omp target device(0) map()",
		"#omp target device(0) map(to:)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	// MapSpec on a non-map clause errs.
	if _, err := (Clause{Kind: ClauseIf, Args: []string{"x"}}).MapSpec(); err == nil {
		t.Error("MapSpec on if clause succeeded")
	}
}

func TestTargetDataAndUpdate(t *testing.T) {
	d := mustParse(t, "#omp target data device(0) map(to: a) map(from: b)")
	if d.Kind != KindTargetData {
		t.Fatalf("Kind = %v", d.Kind)
	}
	if d.String() != "#omp target data device(0) map(to: a) map(from: b)" {
		t.Fatalf("canonical = %q", d.String())
	}
	u := mustParse(t, "#omp target update map(from: result)")
	if u.Kind != KindTargetUpdate {
		t.Fatalf("Kind = %v", u.Kind)
	}
	for _, bad := range []string{
		"#omp target update",                 // no map
		"#omp target update map(x)",          // tofrom not allowed on update
		"#omp target update map(alloc: x)",   // alloc not allowed on update
		"#omp target data nowait map(to: x)", // scheduling clause not allowed
		"#omp target update num_threads(2)",  // wrong clause
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParallelSectionsParse(t *testing.T) {
	d := mustParse(t, "#omp parallel sections num_threads(3)")
	if d.Kind != KindParallelSections {
		t.Fatalf("Kind = %v", d.Kind)
	}
	if d.String() != "#omp parallel sections num_threads(3)" {
		t.Fatalf("canonical = %q", d.String())
	}
	if _, err := Parse("#omp parallel sections schedule(static)"); err == nil {
		t.Fatal("schedule on parallel sections accepted")
	}
}
