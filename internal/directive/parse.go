package directive

import (
	"fmt"
	"strings"
	"unicode"
)

// IsDirectiveComment reports whether a comment's text (without the //
// marker) is an OpenMP directive, i.e. begins with #omp.
func IsDirectiveComment(text string) bool {
	return strings.HasPrefix(strings.TrimSpace(text), Prefix)
}

// Parse parses a directive from comment text (with or without a leading //
// and with or without the #omp prefix present). The returned directive has
// been validated.
func Parse(text string) (*Directive, error) {
	s := strings.TrimSpace(text)
	s = strings.TrimPrefix(s, "//")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, Prefix) {
		return nil, fmt.Errorf("directive: missing %q prefix in %q", Prefix, text)
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, Prefix))
	s = stripTrailingComment(s)
	p := &parser{src: s}
	d, err := p.parse()
	if err != nil {
		return nil, err
	}
	d.Raw = s
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// stripTrailingComment cuts an embedded trailing comment off a directive
// line — `//#omp wait(frames) // joins the renders` — matching C, where a
// #pragma line may carry a trailing comment. The cut happens only outside
// parentheses so clause arguments containing "//" (e.g. an if() expression
// with a division-ish string) survive.
func stripTrailingComment(s string) string {
	depth := 0
	for i := 0; i+1 < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case '/':
			if depth == 0 && s[i+1] == '/' {
				return strings.TrimSpace(s[:i])
			}
		}
	}
	return s
}

// parser is a hand-written scanner/parser over one directive line.
type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("directive: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eof() bool {
	p.skipSpace()
	return p.pos >= len(p.src)
}

// ident scans an identifier (letters, digits, underscores; must start with
// a letter or underscore). Returns "" if none present.
func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		isWord := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(p.pos > start && c >= '0' && c <= '9')
		if !isWord {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

// args scans a parenthesized, comma-separated argument list with balanced
// nested parentheses (so if(f(x, y) > 0) parses as one argument). Returns
// nil, nil when no '(' follows.
func (p *parser) args() ([]string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, nil
	}
	p.pos++ // consume '('
	var out []string
	depth := 0
	start := p.pos
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			if depth == 0 {
				arg := strings.TrimSpace(p.src[start:p.pos])
				if arg != "" || len(out) > 0 {
					out = append(out, arg)
				}
				p.pos++
				return out, nil
			}
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(p.src[start:p.pos]))
				start = p.pos + 1
			}
		}
		p.pos++
	}
	return nil, p.errf("unbalanced parenthesis")
}

func (p *parser) parse() (*Directive, error) {
	name := p.ident()
	if name == "" {
		return nil, p.errf("missing directive name")
	}
	d := &Directive{}
	switch name {
	case "target":
		d.Kind = KindTarget
		// Two-word constructs: target data, target update.
		save := p.pos
		switch p.ident() {
		case "data":
			d.Kind = KindTargetData
		case "update":
			d.Kind = KindTargetUpdate
		default:
			p.pos = save
		}
	case "wait":
		// Standalone wait(tag, ...) — sugar for a wait clause list.
		d.Kind = KindWait
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if len(args) > 0 {
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseWait, Args: args})
		}
	case "parallel":
		d.Kind = KindParallel
		// Two-word combined constructs?
		save := p.pos
		switch p.ident() {
		case "for":
			d.Kind = KindParallelFor
		case "sections":
			d.Kind = KindParallelSections
		default:
			p.pos = save
		}
	case "for":
		d.Kind = KindFor
	case "sections":
		d.Kind = KindSections
	case "section":
		d.Kind = KindSection
	case "single":
		d.Kind = KindSingle
	case "master":
		d.Kind = KindMaster
	case "critical":
		d.Kind = KindCritical
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if len(args) > 1 {
			return nil, p.errf("critical takes at most one name")
		}
		if len(args) == 1 {
			d.Name = args[0]
		}
	case "barrier":
		d.Kind = KindBarrier
	case "task":
		d.Kind = KindTask
	case "taskwait":
		d.Kind = KindTaskwait
	default:
		return nil, p.errf("unknown directive %q", name)
	}

	for !p.eof() {
		// Optional comma separators between clauses (Figure 5 allows both).
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		cname := p.ident()
		if cname == "" {
			return nil, p.errf("expected clause name")
		}
		ck, ok := clauseByName[cname]
		if !ok {
			return nil, p.errf("unknown clause %q", cname)
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		if args == nil && ck.takesArgs() {
			return nil, p.errf("clause %q requires arguments", cname)
		}
		if args != nil && !ck.takesArgs() {
			return nil, p.errf("clause %q takes no arguments", cname)
		}
		d.Clauses = append(d.Clauses, Clause{Kind: ck, Args: args})
	}
	return d, nil
}
