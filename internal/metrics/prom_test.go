package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// parsePromText is a minimal validator of the text exposition format: every
// non-comment line must be `name{labels} value` with a parseable float, every
// series name must have seen a preceding # TYPE, and families must not be
// interleaved. It returns the parsed series values keyed by the full series
// string (name + label set).
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := make(map[string]string)
	series := make(map[string]float64)
	var lastFamily string
	closed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if typed[name] != "" {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[family] == "" && typed[name] == "" {
			t.Fatalf("line %d: series %q has no TYPE header", ln+1, name)
		}
		if lastFamily != "" && family != lastFamily && closed[family] {
			t.Fatalf("line %d: family %q interleaved (reopened after %q)", ln+1, family, lastFamily)
		}
		if lastFamily != family {
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			lastFamily = family
		}
		if _, dup := series[key]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, key)
		}
		series[key] = val
	}
	return series
}

func TestPromEncoderCounterGauge(t *testing.T) {
	var sb strings.Builder
	e := NewPromEncoder(&sb)
	e.Counter("x_total", "an x", Labels{"target": "a"}, 3)
	e.Counter("x_total", "an x", Labels{"target": "b"}, 4)
	e.Gauge("y", "a y", nil, 1.5)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := parsePromText(t, sb.String())
	if got[`x_total{target="a"}`] != 3 || got[`x_total{target="b"}`] != 4 {
		t.Fatalf("counter series wrong: %v", got)
	}
	if got["y"] != 1.5 {
		t.Fatalf("gauge wrong: %v", got)
	}
	if strings.Count(sb.String(), "# TYPE x_total") != 1 {
		t.Fatalf("family header repeated:\n%s", sb.String())
	}
}

func TestPromHistogramCumulativeAndExact(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond) // 1ms..100ms
	}
	var sb strings.Builder
	e := NewPromEncoder(&sb)
	e.Histogram("lat_seconds", "latency", Labels{"target": "w"}, h, nil)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := parsePromText(t, sb.String())
	if got[`lat_seconds_count{target="w"}`] != 100 {
		t.Fatalf("count = %v, want 100", got[`lat_seconds_count{target="w"}`])
	}
	wantSum := 0.001 * (100 * 101 / 2)
	if s := got[`lat_seconds_sum{target="w"}`]; s < wantSum-1e-9 || s > wantSum+1e-9 {
		t.Fatalf("sum = %v, want %v", s, wantSum)
	}
	// Cumulative: bucket counts must be non-decreasing across the ladder.
	prev := -1.0
	for _, ub := range DefaultPromBuckets {
		key := fmt.Sprintf(`lat_seconds_bucket{target="w",le="%s"}`, formatPromValue(ub.Seconds()))
		v, ok := got[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, sb.String())
		}
		if v < prev {
			t.Fatalf("bucket %s = %v decreased below %v", key, v, prev)
		}
		prev = v
	}
	if got[`lat_seconds_bucket{target="w",le="+Inf"}`] != 100 {
		t.Fatal("+Inf bucket must equal count")
	}
	// 10ms bound holds samples 1..10ms.
	if v := got[`lat_seconds_bucket{target="w",le="0.01"}`]; v != 10 {
		t.Fatalf("le=0.01 bucket = %v, want 10", v)
	}
}

func TestPromHistogramReservoirScaling(t *testing.T) {
	h := NewHistogramCap(16) // force sampling: 160 observations, 16 retained
	for i := 0; i < 160; i++ {
		h.Observe(time.Millisecond)
	}
	var sb strings.Builder
	e := NewPromEncoder(&sb)
	e.Histogram("s_seconds", "scaled", nil, h, nil)
	got := parsePromText(t, sb.String())
	if got[`s_seconds_count`] != 160 {
		t.Fatalf("count = %v, want exact 160", got[`s_seconds_count`])
	}
	if got[`s_seconds_bucket{le="+Inf"}`] != 160 {
		t.Fatalf("+Inf = %v, want 160", got[`s_seconds_bucket{le="+Inf"}`])
	}
	// All samples are 1ms; the 1ms bucket estimate should scale to ~all.
	if v := got[`s_seconds_bucket{le="0.001"}`]; v != 160 {
		t.Fatalf("le=0.001 = %v, want scaled 160", v)
	}
}

func TestSpanSinkAggregatesAndChains(t *testing.T) {
	ring := trace.NewBuffer(256)
	sink := NewSpanSink(ring)

	parent := trace.BeginSpan(sink, "invoke", "w", 0)
	run := trace.NewSpanID()
	trace.Enqueue(sink, run, "w", parent)
	sink.Record(trace.Event{Op: trace.OpPost, Target: "w"})
	time.Sleep(2 * time.Millisecond)
	trace.BeginSpanID(sink, run, "run", "w", parent)
	time.Sleep(time.Millisecond)
	trace.EndSpan(sink, run, "run", "w")
	trace.EndSpan(sink, parent, "invoke", "w")
	sink.Record(trace.Event{Op: trace.OpHelped, Target: "w"})
	sink.Record(trace.Event{Op: trace.OpShed, Target: "w"})

	tm := sink.Target("w")
	if tm == nil {
		t.Fatal("target metrics not created")
	}
	if tm.Invoke.Count() != 1 || tm.Run.Count() != 1 || tm.Sojourn.Count() != 1 {
		t.Fatalf("histogram counts invoke=%d run=%d sojourn=%d, want 1/1/1",
			tm.Invoke.Count(), tm.Run.Count(), tm.Sojourn.Count())
	}
	if tm.Sojourn.Max() < time.Millisecond {
		t.Fatalf("sojourn %v, want >= 2ms-ish", tm.Sojourn.Max())
	}
	if tm.Posts.Value() != 1 || tm.Helped.Value() != 1 || tm.Sheds.Value() != 1 {
		t.Fatal("counters not incremented")
	}
	if sink.Open() != 0 {
		t.Fatalf("open spans = %d, want 0 after ends", sink.Open())
	}
	// Chained ring saw every event and can still reconstruct the tree.
	tree := trace.BuildTree(ring.Snapshot())
	if tree.Find("invoke", "w") == nil || tree.Find("run", "w") == nil {
		t.Fatalf("chained buffer missing spans:\n%s", ring.Dump())
	}

	var sb strings.Builder
	if err := sink.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := parsePromText(t, sb.String())
	if got[`repro_run_duration_seconds_count{target="w"}`] != 1 {
		t.Fatalf("run count missing:\n%s", sb.String())
	}
	if got[`repro_helped_total{target="w"}`] != 1 {
		t.Fatalf("helped counter missing:\n%s", sb.String())
	}
	if _, ok := got["repro_spans_open"]; !ok {
		t.Fatalf("spans_open gauge missing:\n%s", sb.String())
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogramCap(16)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Sum(); got != 100*time.Millisecond {
		t.Fatalf("Sum = %v, want 100ms (exact despite sampling)", got)
	}
}
