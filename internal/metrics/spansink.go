package metrics

import (
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// TargetMetrics aggregates one virtual target's span-derived measurements.
type TargetMetrics struct {
	// Invoke is the latency histogram of non-run spans on this target:
	// directive invocations ("invoke"), HTTP requests ("request"), netloop
	// receives ("recv") — the caller-side view.
	Invoke *Histogram
	// Run is the latency histogram of "run" spans: time a task occupied a
	// worker or the EDT.
	Run *Histogram
	// Sojourn is the enqueue→run-begin queue wait distribution.
	Sojourn *Histogram

	// Scheduling-decision and incident counters, from the Op taxonomy.
	Posts     Counter // OpPost: asynchronous submissions
	Inlines   Counter // OpInline: thread-context-aware inline runs
	Helped    Counter // OpHelped: tasks run inside an await barrier
	Sheds     Counter // OpShed: rejected by admission control
	Deadlines Counter // OpDeadline: cancelled while queued
	Restarts  Counter // OpRestart: supervised restarts
	Stalls    Counter // OpStall: watchdog stall flags

	ConnDeadlines   Counter // OpConnDeadline: reactor connections reaped by deadline
	ReactorRestarts Counter // OpReactorRestart: supervised poll-loop replacements
}

func newTargetMetrics() *TargetMetrics {
	return &TargetMetrics{Invoke: NewHistogram(), Run: NewHistogram(), Sojourn: NewHistogram()}
}

// maxOpenSpans bounds the SpanSink's open-span table. A span that never ends
// (a stuck task, or an end event racing a snapshot) must not leak table
// entries forever; past the bound new spans are dropped from metrics (their
// trace events still flow to the chained sink) and counted.
const maxOpenSpans = 1 << 16

// openSpan is the begin/enqueue state held until a span's end arrives.
type openSpan struct {
	begin    time.Time
	enqueued time.Time
	name     string
	target   string
}

// SpanSink is a trace.Sink that folds the span event stream into per-target
// histograms and counters — the bridge from causal tracing to /metrics. It
// can chain to a next sink (typically a trace.Buffer), so one stream feeds
// both the Prometheus endpoint and the Perfetto export.
type SpanSink struct {
	next trace.Sink // may be nil

	mu      sync.Mutex
	targets map[string]*TargetMetrics
	open    map[trace.SpanID]openSpan

	dropped Counter // spans not measured because the open table was full
}

// NewSpanSink returns a sink aggregating into fresh per-target metrics,
// forwarding every event to next (nil for no forwarding).
func NewSpanSink(next trace.Sink) *SpanSink {
	return &SpanSink{
		next:    next,
		targets: make(map[string]*TargetMetrics),
		open:    make(map[trace.SpanID]openSpan),
	}
}

// Record implements trace.Sink.
func (s *SpanSink) Record(e trace.Event) {
	if e.Time.IsZero() {
		// Emission helpers leave stamping to the sink; stamp before the
		// chained sink sees it too, so both views agree on timestamps.
		e.Time = time.Now()
	}
	s.record(e)
	if s.next != nil {
		s.next.Record(e)
	}
}

func (s *SpanSink) record(e trace.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Op {
	case trace.OpEnqueue:
		o, ok := s.open[e.Span]
		if !ok && len(s.open) >= maxOpenSpans {
			s.dropped.Inc()
			return
		}
		o.enqueued = e.Time
		if o.target == "" {
			o.target = e.Target
		}
		s.open[e.Span] = o
	case trace.OpSpanBegin:
		o, ok := s.open[e.Span]
		if !ok && len(s.open) >= maxOpenSpans {
			s.dropped.Inc()
			return
		}
		o.begin = e.Time
		o.name = e.Name
		o.target = e.Target
		s.open[e.Span] = o
		if !o.enqueued.IsZero() {
			if d := e.Time.Sub(o.enqueued); d >= 0 {
				s.targetLocked(o.target).Sojourn.Observe(d)
			}
		}
	case trace.OpSpanEnd:
		o, ok := s.open[e.Span]
		if !ok {
			return
		}
		delete(s.open, e.Span)
		if o.begin.IsZero() {
			return
		}
		d := e.Time.Sub(o.begin)
		if d < 0 {
			return
		}
		tm := s.targetLocked(o.target)
		if o.name == "run" {
			tm.Run.Observe(d)
		} else {
			tm.Invoke.Observe(d)
		}
	case trace.OpPost:
		s.targetLocked(e.Target).Posts.Inc()
	case trace.OpInline:
		s.targetLocked(e.Target).Inlines.Inc()
	case trace.OpHelped:
		s.targetLocked(e.Target).Helped.Inc()
	case trace.OpShed:
		s.targetLocked(e.Target).Sheds.Inc()
	case trace.OpDeadline:
		s.targetLocked(e.Target).Deadlines.Inc()
	case trace.OpRestart:
		s.targetLocked(e.Target).Restarts.Inc()
	case trace.OpStall:
		s.targetLocked(e.Target).Stalls.Inc()
	case trace.OpConnDeadline:
		s.targetLocked(e.Target).ConnDeadlines.Inc()
	case trace.OpReactorRestart:
		s.targetLocked(e.Target).ReactorRestarts.Inc()
	}
}

func (s *SpanSink) targetLocked(name string) *TargetMetrics {
	tm := s.targets[name]
	if tm == nil {
		tm = newTargetMetrics()
		s.targets[name] = tm
	}
	return tm
}

// Target returns the metrics aggregated for one target (nil if never seen).
func (s *SpanSink) Target(name string) *TargetMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.targets[name]
}

// Open returns how many spans are currently open (begun or enqueued, not yet
// ended).
func (s *SpanSink) Open() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// Dropped returns how many spans were not measured because the open-span
// table was full.
func (s *SpanSink) Dropped() int64 { return s.dropped.Value() }

// snapshotTargets returns the target names sorted plus a shallow copy of the
// map, so WritePrometheus iterates without holding the sink lock across I/O.
func (s *SpanSink) snapshotTargets() (names []string, targets map[string]*TargetMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	targets = make(map[string]*TargetMetrics, len(s.targets))
	for n, tm := range s.targets {
		names = append(names, n)
		targets[n] = tm
	}
	sort.Strings(names)
	return names, targets
}

// WritePrometheus writes every aggregated family in the Prometheus text
// exposition format: one series per target, families grouped as the format
// requires.
func (s *SpanSink) WritePrometheus(w io.Writer) error {
	names, targets := s.snapshotTargets()
	e := NewPromEncoder(w)

	hist := func(metric, help string, pick func(*TargetMetrics) *Histogram) {
		for _, n := range names {
			e.Histogram(metric, help, Labels{"target": n}, pick(targets[n]), nil)
		}
	}
	hist("repro_invoke_duration_seconds",
		"Directive invocation latency per virtual target (invoke/request/recv spans).",
		func(t *TargetMetrics) *Histogram { return t.Invoke })
	hist("repro_run_duration_seconds",
		"Task run latency per virtual target (run spans).",
		func(t *TargetMetrics) *Histogram { return t.Run })
	hist("repro_queue_sojourn_seconds",
		"Queue wait from enqueue to run begin per virtual target.",
		func(t *TargetMetrics) *Histogram { return t.Sojourn })

	counter := func(metric, help string, pick func(*TargetMetrics) *Counter) {
		for _, n := range names {
			e.Counter(metric, help, Labels{"target": n}, float64(pick(targets[n]).Value()))
		}
	}
	counter("repro_posts_total", "Asynchronous dispatches per target.",
		func(t *TargetMetrics) *Counter { return &t.Posts })
	counter("repro_inline_total", "Thread-context-aware inline runs per target.",
		func(t *TargetMetrics) *Counter { return &t.Inlines })
	counter("repro_helped_total", "Tasks helped inside await barriers per target.",
		func(t *TargetMetrics) *Counter { return &t.Helped })
	counter("repro_shed_total", "Invocations shed by admission control per target.",
		func(t *TargetMetrics) *Counter { return &t.Sheds })
	counter("repro_deadline_total", "Queued invocations cancelled by deadline per target.",
		func(t *TargetMetrics) *Counter { return &t.Deadlines })
	counter("repro_restarts_total", "Supervised restarts per target.",
		func(t *TargetMetrics) *Counter { return &t.Restarts })
	counter("repro_stalls_total", "Watchdog stall detections per target.",
		func(t *TargetMetrics) *Counter { return &t.Stalls })
	counter("repro_conn_deadline_total", "Reactor connections reaped by idle/read/write-stall deadlines per target.",
		func(t *TargetMetrics) *Counter { return &t.ConnDeadlines })
	counter("repro_reactor_restarts_total", "Supervised reactor poll-loop replacements per target.",
		func(t *TargetMetrics) *Counter { return &t.ReactorRestarts })

	e.Gauge("repro_spans_open", "Spans currently open (begun or enqueued, not ended).",
		nil, float64(s.Open()))
	e.Counter("repro_spans_dropped_total",
		"Spans not measured because the open-span table was full.",
		nil, float64(s.Dropped()))
	return e.Err()
}

var _ trace.Sink = (*SpanSink)(nil)
