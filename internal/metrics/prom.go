// Prometheus text-format (version 0.0.4) encoding for the measurement
// primitives in this package. No client library: the exposition format is a
// dozen lines of text framing, and the container must not grow dependencies.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Labels is one series' label set. Encoded sorted by key for deterministic
// output.
type Labels map[string]string

// DefaultPromBuckets are the latency bucket upper bounds used when a
// histogram family is written without explicit buckets: exponential decades
// with a 1-2.5-5 ladder from 10µs to 10s — wide enough for inline dispatch
// (~µs) and stalled-target timeouts (~s) on one axis.
var DefaultPromBuckets = []time.Duration{
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// PromEncoder streams metric families in the Prometheus text exposition
// format. Emit every series of one family (same metric name) consecutively —
// the format requires it; the encoder writes the # HELP / # TYPE header the
// first time it sees each name, so interleaving families would produce an
// exposition parsers reject.
type PromEncoder struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromEncoder returns an encoder writing to w. Errors are sticky; check
// Err once at the end.
func NewPromEncoder(w io.Writer) *PromEncoder {
	return &PromEncoder{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (e *PromEncoder) Err() error { return e.err }

func (e *PromEncoder) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func (e *PromEncoder) header(name, help, typ string) {
	if e.seen[name] {
		return
	}
	e.seen[name] = true
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// series renders `name{labels} value`, labels sorted for determinism; an
// optional extra label (the histogram `le`) is appended last, matching the
// convention of prometheus/client_golang output.
func (e *PromEncoder) series(name string, labels Labels, extraKey, extraVal string, value float64) {
	var b strings.Builder
	b.WriteString(name)
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for _, k := range keys {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%s=%q", k, labels[k])
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
		}
		b.WriteByte('}')
	}
	e.printf("%s %s\n", b.String(), formatPromValue(value))
}

// Counter writes one counter series. name should end in _total by convention.
func (e *PromEncoder) Counter(name, help string, labels Labels, value float64) {
	e.header(name, help, "counter")
	e.series(name, labels, "", "", value)
}

// Gauge writes one gauge series.
func (e *PromEncoder) Gauge(name, help string, labels Labels, value float64) {
	e.header(name, help, "gauge")
	e.series(name, labels, "", "", value)
}

// Histogram writes one histogram series (cumulative _bucket ladder, _sum,
// _count) from h's current contents, with durations converted to seconds.
// buckets nil means DefaultPromBuckets.
//
// Past the reservoir capacity the retained samples are a uniform subsample of
// the stream, so bucket counts are scaled by seen/retained to estimate the
// full-stream distribution; _count and _sum stay exact (running aggregates),
// and the +Inf bucket is forced to the exact count so the ladder always tops
// out consistently.
func (e *PromEncoder) Histogram(name, help string, labels Labels, h *Histogram, buckets []time.Duration) {
	if buckets == nil {
		buckets = DefaultPromBuckets
	}
	e.header(name, help, "histogram")
	samples := h.Snapshot() // sorted ascending
	seen := float64(h.Count())
	scale := 1.0
	if n := len(samples); n > 0 && seen > float64(n) {
		scale = seen / float64(n)
	}
	idx := 0
	for _, ub := range buckets {
		for idx < len(samples) && samples[idx] <= ub {
			idx++
		}
		est := roundCount(float64(idx) * scale)
		if est > seen {
			est = seen
		}
		e.series(name+"_bucket", labels, "le", formatPromValue(ub.Seconds()), est)
	}
	e.series(name+"_bucket", labels, "le", "+Inf", seen)
	e.series(name+"_sum", labels, "", "", h.Sum().Seconds())
	e.series(name+"_count", labels, "", "", seen)
}

// roundCount clamps a scaled bucket estimate to a whole sample count.
func roundCount(v float64) float64 {
	if v < 0 {
		return 0
	}
	return float64(int64(v + 0.5))
}

// formatPromValue renders a float the way Prometheus expects: the shortest
// representation that round-trips.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
