// Package metrics provides the measurement machinery used by the evaluation
// harness: latency histograms with percentile summaries, throughput meters,
// and time-series recorders for event response times.
//
// The paper's Evaluation section reports two quantities: the average response
// time of GUI events (time from event firing to the completion of its
// handling, Figures 7–8) and server throughput in responses per second
// (Figure 9). Everything in this package is safe for concurrent use unless
// stated otherwise.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic event counter, the measurement
// primitive behind the overload-protection statistics (shed requests,
// admission decisions, breaker rejections).
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// QoSStats bundles the measurements the qos layer produces for one guarded
// target: how many invocations were admitted versus shed, why they were
// shed, and how long admitted invocations waited for a slot (the queue
// sojourn time that CoDel-style policies control). One QoSStats instance is
// owned by each qos.Limiter; servers surface it for tests and reporting.
type QoSStats struct {
	// Admitted counts invocations that acquired an execution slot.
	Admitted Counter
	// Shed counts invocations rejected by admission control (full wait
	// queue, queue-deadline expiry, or a CoDel drop decision).
	Shed Counter
	// Canceled counts invocations abandoned by their own context
	// (deadline or cancellation) while waiting for a slot.
	Canceled Counter
	// BreakerRejects counts invocations refused by an open circuit
	// breaker before reaching the wait queue.
	BreakerRejects Counter
	// Sojourn is the histogram of queue wait times for admitted
	// invocations (0 for fast-path admissions).
	Sojourn *Histogram
}

// NewQoSStats returns zeroed statistics with an empty sojourn histogram.
func NewQoSStats() *QoSStats { return &QoSStats{Sojourn: NewHistogram()} }

// String renders the headline counters plus sojourn percentiles.
func (q *QoSStats) String() string {
	s := q.Sojourn.Summarize()
	return fmt.Sprintf("admitted=%d shed=%d canceled=%d breaker=%d sojourn[p50=%v p99=%v max=%v]",
		q.Admitted.Value(), q.Shed.Value(), q.Canceled.Value(), q.BreakerRejects.Value(),
		s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// SupervisionStats bundles the counters the supervision subsystem (package
// supervise) produces for one supervised target: how often it crashed, how
// often it was restarted or respawned, and how many invocations were
// rejected fail-fast while it was restarting or down.
type SupervisionStats struct {
	// Restarts counts full target restarts (the executor was replaced).
	Restarts Counter
	// Respawns counts one-for-one worker respawns (a crashed worker was
	// replaced without restarting the whole target).
	Respawns Counter
	// Crashes counts worker-death reports observed by the supervisor.
	Crashes Counter
	// Panics counts task panics observed by the supervisor.
	Panics Counter
	// FailFast counts invocations rejected with a typed error while the
	// target was restarting or marked down.
	FailFast Counter
}

// NewSupervisionStats returns zeroed supervision statistics.
func NewSupervisionStats() *SupervisionStats { return &SupervisionStats{} }

// String renders the headline counters.
func (s *SupervisionStats) String() string {
	return fmt.Sprintf("restarts=%d respawns=%d crashes=%d panics=%d failfast=%d",
		s.Restarts.Value(), s.Respawns.Value(), s.Crashes.Value(),
		s.Panics.Value(), s.FailFast.Value())
}

// ReactorStats bundles the survivability counters the readiness reactor
// (package reactor) produces: how often handler panics were contained, how
// many connections were reaped by deadlines, how many accepts were shed by
// the admission cap, how often the poll loop itself crashed, and how many
// stragglers a drain had to force-close. One instance can be shared across
// supervised reactor generations so counts survive restarts.
type ReactorStats struct {
	// HandlerPanics counts panics recovered around handler dispatch (the
	// offending connection is closed; the loop survives).
	HandlerPanics Counter
	// DeadlineCloses counts connections closed by an idle, read, or
	// write-stall deadline.
	DeadlineCloses Counter
	// AcceptRejects counts accepted sockets closed immediately because the
	// reactor was at its MaxConns cap.
	AcceptRejects Counter
	// LoopCrashes counts poll-goroutine deaths (unrecovered panics or
	// goroutine kills) — the failure a supervised restart repairs.
	LoopCrashes Counter
	// ForceCloses counts connections torn down at a drain deadline with
	// writes still pending.
	ForceCloses Counter
}

// NewReactorStats returns zeroed reactor survivability statistics.
func NewReactorStats() *ReactorStats { return &ReactorStats{} }

// String renders the headline counters.
func (s *ReactorStats) String() string {
	return fmt.Sprintf("panics=%d deadlines=%d acceptrejects=%d crashes=%d forcecloses=%d",
		s.HandlerPanics.Value(), s.DeadlineCloses.Value(), s.AcceptRejects.Value(),
		s.LoopCrashes.Value(), s.ForceCloses.Value())
}

// defaultReservoirCap bounds how many raw samples a Histogram retains by
// default. Evaluation runs record at most a few hundred thousand events, so
// the default keeps them exact; anything longer-lived (a qos sojourn
// histogram on a server that never restarts) degrades to reservoir sampling
// instead of growing without bound.
const defaultReservoirCap = 1 << 18

// Histogram is a concurrency-safe latency histogram. Up to its reservoir
// capacity it retains every sample, so quantiles are exact — avoiding
// bucket-resolution arguments when comparing approaches. Past the capacity
// it switches to reservoir sampling (Vitter's Algorithm R): each new sample
// replaces a uniformly random retained one with probability cap/seen, so
// the reservoir stays a uniform sample of the whole stream and memory stays
// bounded. Count, Mean, Stddev, Min and Max are maintained as running
// aggregates and remain exact regardless of how many samples were observed.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	cap     int
	seen    int64   // total observations, including ones not retained
	sum     float64 // running sum of all observations
	sumsq   float64 // running sum of squares of all observations
	min     time.Duration
	max     time.Duration
	rng     uint64 // splitmix64 state for reservoir replacement
}

// NewHistogram returns an empty histogram with the default reservoir
// capacity.
func NewHistogram() *Histogram { return NewHistogramCap(defaultReservoirCap) }

// NewHistogramCap returns an empty histogram retaining at most capacity raw
// samples (capacity < 16 is clamped to 16). Quantiles are exact until the
// stream outgrows the reservoir, then approximate; the running aggregates
// stay exact either way.
func NewHistogramCap(capacity int) *Histogram {
	if capacity < 16 {
		capacity = 16
	}
	// Deterministic seed: evaluation runs must be reproducible, and the
	// reservoir only needs uniformity, not unpredictability.
	return &Histogram{cap: capacity, rng: 0x9E3779B97F4A7C15}
}

// nextRand is splitmix64 — one add, three xor-shift-multiplies; called under mu.
func (h *Histogram) nextRand() uint64 {
	h.rng += 0x9E3779B97F4A7C15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.cap == 0 {
		h.cap = defaultReservoirCap // zero-value Histogram
	}
	if h.seen == 0 || d < h.min {
		h.min = d
	}
	if h.seen == 0 || d > h.max {
		h.max = d
	}
	h.seen++
	h.sum += float64(d)
	h.sumsq += float64(d) * float64(d)
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		h.sorted = false
	} else if j := int64(h.nextRand() % uint64(h.seen)); j < int64(h.cap) {
		h.samples[j] = d
		h.sorted = false
	}
	h.mu.Unlock()
}

// Count returns the number of observed samples (including any no longer
// retained by the reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.seen)
}

// Retained returns how many raw samples the reservoir currently holds (for
// tests and memory accounting).
func (h *Histogram) Retained() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the running total of all observed samples. Exact: maintained
// as an aggregate, independent of reservoir retention. (Prometheus export
// needs the true _sum even after sampling kicks in.)
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Mean returns the arithmetic mean of all observed samples (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.seen))
}

// Min returns the smallest observed sample (0 if empty). Exact: tracked as
// a running aggregate, not read from the reservoir.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observed sample (0 if empty). Exact, like Min.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted retained samples — exact while the stream fits the reservoir, a
// uniform-sample estimate beyond it. The extremes are always exact: q<=0
// and q>=1 return the running Min and Max. Returns 0 if the histogram is
// empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Stddev returns the population standard deviation of all observed samples.
// Exact: computed from running aggregates.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	n := float64(h.seen)
	mean := h.sum / n
	variance := h.sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // float rounding on near-constant streams
	}
	return time.Duration(math.Sqrt(variance))
}

// Reset discards all samples and running aggregates.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.seen = 0
	h.sum, h.sumsq = 0, 0
	h.min, h.max = 0, 0
	h.mu.Unlock()
}

// Snapshot returns a copy of the retained samples sorted ascending (arrival
// order is not preserved). Past the reservoir capacity this is a uniform
// subsample of the stream, not every observation.
func (h *Histogram) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sortLocked()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

func (h *Histogram) sortLocked() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// Summary is a fixed snapshot of a histogram's headline statistics.
type Summary struct {
	Count  int
	Mean   time.Duration
	Min    time.Duration
	P50    time.Duration
	P90    time.Duration
	P99    time.Duration
	Max    time.Duration
	Stddev time.Duration
}

// Summarize computes a Summary from the histogram's current contents.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Min:    h.Min(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
		Stddev: h.Stddev(),
	}
}

// String formats the summary as a single bench-style row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// ThroughputMeter counts completed operations over a wall-clock window, the
// quantity Figure 9 reports as responses/sec.
type ThroughputMeter struct {
	mu    sync.Mutex
	n     int64
	start time.Time
	end   time.Time
}

// NewThroughputMeter returns a meter; call Start before recording.
func NewThroughputMeter() *ThroughputMeter { return &ThroughputMeter{} }

// Start marks the beginning of the measurement window.
func (m *ThroughputMeter) Start() {
	m.mu.Lock()
	m.start = time.Now()
	m.end = time.Time{}
	m.n = 0
	m.mu.Unlock()
}

// Add records n completed operations.
func (m *ThroughputMeter) Add(n int64) {
	m.mu.Lock()
	m.n += n
	m.mu.Unlock()
}

// Stop marks the end of the window.
func (m *ThroughputMeter) Stop() {
	m.mu.Lock()
	m.end = time.Now()
	m.mu.Unlock()
}

// Count returns the number of recorded operations.
func (m *ThroughputMeter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// PerSecond returns operations per second over the window. If Stop has not
// been called, the window extends to now.
func (m *ThroughputMeter) PerSecond() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		return 0
	}
	end := m.end
	if end.IsZero() {
		end = time.Now()
	}
	secs := end.Sub(m.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.n) / secs
}

// ResponseRecord is one event's measured lifecycle, mirroring the paper's
// definition: "the time flow from the event firing to the finish of its
// event handling".
type ResponseRecord struct {
	// Seq is the event's sequence number within its run.
	Seq int
	// Fired is when the event was generated (entered the queue).
	Fired time.Time
	// DispatchStart is when the EDT began executing the handler.
	DispatchStart time.Time
	// HandlerDone is when the EDT returned from the handler body (the EDT
	// became free again).
	HandlerDone time.Time
	// Completed is when all work triggered by the event (including offloaded
	// continuations) finished. Response time = Completed - Fired.
	Completed time.Time
}

// ResponseTime returns Completed-Fired.
func (r ResponseRecord) ResponseTime() time.Duration { return r.Completed.Sub(r.Fired) }

// QueueDelay returns DispatchStart-Fired: how long the event waited behind
// earlier events (the unresponsiveness the paper's Figure 1(i) illustrates).
func (r ResponseRecord) QueueDelay() time.Duration { return r.DispatchStart.Sub(r.Fired) }

// EDTOccupancy returns HandlerDone-DispatchStart: how long the EDT itself was
// tied up by this event (small for asynchronous approaches).
func (r ResponseRecord) EDTOccupancy() time.Duration { return r.HandlerDone.Sub(r.DispatchStart) }

// Collector accumulates ResponseRecords for one benchmark run.
type Collector struct {
	mu      sync.Mutex
	records []ResponseRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends one completed event record.
func (c *Collector) Record(r ResponseRecord) {
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Records returns a copy of the accumulated records ordered by Seq.
func (c *Collector) Records() []ResponseRecord {
	c.mu.Lock()
	out := make([]ResponseRecord, len(c.records))
	copy(out, c.records)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ResponseHistogram builds a histogram of response times.
func (c *Collector) ResponseHistogram() *Histogram {
	h := NewHistogram()
	for _, r := range c.Records() {
		h.Observe(r.ResponseTime())
	}
	return h
}

// OccupancyHistogram builds a histogram of EDT occupancy times.
func (c *Collector) OccupancyHistogram() *Histogram {
	h := NewHistogram()
	for _, r := range c.Records() {
		h.Observe(r.EDTOccupancy())
	}
	return h
}

// Table renders rows of (label, Summary) as an aligned text table, the
// format the cmd harnesses print for each figure.
func Table(title string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s %8s %12s %12s %12s %12s %12s\n",
		"series", "n", "mean", "p50", "p90", "p99", "max")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&b, "%-28s %8d %12v %12v %12v %12v %12v\n",
			r.Label, s.Count,
			s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
			s.Max.Round(time.Microsecond))
	}
	return b.String()
}

// TableRow pairs a series label with its summary.
type TableRow struct {
	Label   string
	Summary Summary
}

// BarChart renders labeled values as a horizontal ASCII bar chart scaled to
// width columns — the text-mode "figure" the report command prints next to
// its tables.
func BarChart(labels []string, values []float64, unit string, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxVal := values[0]
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.1f%s\n",
			maxLabel, labels[i], strings.Repeat("#", n), strings.Repeat(" ", width-n), v, unit)
	}
	return b.String()
}
