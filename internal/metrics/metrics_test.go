package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d * time.Millisecond)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Mean(); got != 30*time.Millisecond {
		t.Fatalf("Mean = %v, want 30ms", got)
	}
	if got := h.Min(); got != 10*time.Millisecond {
		t.Fatalf("Min = %v, want 10ms", got)
	}
	if got := h.Max(); got != 50*time.Millisecond {
		t.Fatalf("Max = %v, want 50ms", got)
	}
	if got := h.Quantile(0.5); got != 30*time.Millisecond {
		t.Fatalf("P50 = %v, want 30ms", got)
	}
	if got := h.Quantile(1.0); got != 50*time.Millisecond {
		t.Fatalf("P100 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.0); got != 10*time.Millisecond {
		t.Fatalf("P0 = %v, want 10ms", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: for any sample set and quantiles q1 <= q2,
	// Quantile(q1) <= Quantile(q2), and both lie within [min, max].
	f := func(raw []uint32, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		q1, q2 := a-float64(int(a)), b-float64(int(b)) // fractional parts
		if q1 < 0 {
			q1 = -q1
		}
		if q2 < 0 {
			q2 = -q2
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := h.Quantile(q1), h.Quantile(q2)
		return v1 <= v2 && v1 >= h.Min() && v2 <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMeanBounds(t *testing.T) {
	// Property: min <= mean <= max.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		m := h.Mean()
		return m >= h.Min() && m <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

func TestHistogramSnapshotSorted(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(r.Intn(1000)))
	}
	snap := h.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] > snap[i] {
			t.Fatal("Snapshot not sorted")
		}
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Fatalf("P90 = %v, want 90ms", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", s.P99)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestThroughputMeter(t *testing.T) {
	m := NewThroughputMeter()
	if m.PerSecond() != 0 {
		t.Fatal("unstarted meter should report 0")
	}
	m.Start()
	m.Add(10)
	m.Add(5)
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	if got := m.Count(); got != 15 {
		t.Fatalf("Count = %d, want 15", got)
	}
	ps := m.PerSecond()
	if ps <= 0 {
		t.Fatalf("PerSecond = %v, want > 0", ps)
	}
	// 15 ops in >= 20ms means at most 750/sec.
	if ps > 15/0.020+1 {
		t.Fatalf("PerSecond = %v, impossibly high", ps)
	}
}

func TestResponseRecordDerived(t *testing.T) {
	base := time.Unix(0, 0)
	r := ResponseRecord{
		Fired:         base,
		DispatchStart: base.Add(5 * time.Millisecond),
		HandlerDone:   base.Add(7 * time.Millisecond),
		Completed:     base.Add(100 * time.Millisecond),
	}
	if got := r.ResponseTime(); got != 100*time.Millisecond {
		t.Fatalf("ResponseTime = %v", got)
	}
	if got := r.QueueDelay(); got != 5*time.Millisecond {
		t.Fatalf("QueueDelay = %v", got)
	}
	if got := r.EDTOccupancy(); got != 2*time.Millisecond {
		t.Fatalf("EDTOccupancy = %v", got)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	base := time.Unix(0, 0)
	for i := 2; i >= 0; i-- { // insert out of order
		c.Record(ResponseRecord{
			Seq:           i,
			Fired:         base,
			DispatchStart: base,
			HandlerDone:   base.Add(time.Duration(i) * time.Millisecond),
			Completed:     base.Add(time.Duration(i+1) * time.Millisecond),
		})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	recs := c.Records()
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("Records not sorted by Seq: %v", recs)
		}
	}
	h := c.ResponseHistogram()
	if h.Count() != 3 || h.Mean() != 2*time.Millisecond {
		t.Fatalf("ResponseHistogram mean = %v", h.Mean())
	}
	oh := c.OccupancyHistogram()
	if oh.Count() != 3 || oh.Max() != 2*time.Millisecond {
		t.Fatalf("OccupancyHistogram max = %v", oh.Max())
	}
}

func TestTableRender(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	out := Table("Figure X", []TableRow{{Label: "pyjama", Summary: h.Summarize()}})
	if out == "" {
		t.Fatal("empty table")
	}
	for _, want := range []string{"Figure X", "pyjama", "mean"} {
		if !contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"jetty", "pyjama"}, []float64{50, 100}, " r/s", 20)
	if out == "" {
		t.Fatal("empty chart")
	}
	lines := splitLines(out)
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// pyjama's bar must be roughly twice jetty's.
	j := countRunes(lines[0], '#')
	p := countRunes(lines[1], '#')
	if p != 20 || j < 8 || j > 12 {
		t.Fatalf("bars j=%d p=%d", j, p)
	}
	// Small positive values still get one tick.
	tiny := BarChart([]string{"a", "b"}, []float64{0.001, 100}, "", 20)
	if countRunes(splitLines(tiny)[0], '#') != 1 {
		t.Fatalf("tiny bar dropped:\n%s", tiny)
	}
	// Degenerate inputs.
	if BarChart(nil, nil, "", 10) != "" {
		t.Fatal("nil inputs")
	}
	if BarChart([]string{"x"}, []float64{1, 2}, "", 10) != "" {
		t.Fatal("mismatched lengths")
	}
	if BarChart([]string{"x"}, []float64{0}, "", 10) == "" {
		t.Fatal("all-zero should still render")
	}
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func countRunes(s string, want rune) int {
	n := 0
	for _, r := range s {
		if r == want {
			n++
		}
	}
	return n
}

// TestHistogramMemoryBounded is the regression test for the unbounded
// sample-retention bug: a long-lived histogram (e.g. a server's sojourn
// histogram) used to keep every sample forever. With the reservoir it must
// retain at most its capacity while the exact running aggregates keep
// reporting on the whole stream.
func TestHistogramMemoryBounded(t *testing.T) {
	const capacity = 1024
	const n = 500_000
	h := NewHistogramCap(capacity)
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i))
	}
	if got := h.Retained(); got > capacity {
		t.Fatalf("Retained() = %d, want <= %d (unbounded growth)", got, capacity)
	}
	if got := h.Count(); got != n {
		t.Fatalf("Count() = %d, want %d", got, n)
	}
	// Running aggregates are exact regardless of the reservoir.
	if got := h.Min(); got != 1 {
		t.Fatalf("Min() = %d, want 1", got)
	}
	if got := h.Max(); got != n {
		t.Fatalf("Max() = %d, want %d", got, n)
	}
	wantMean := time.Duration((n + 1) / 2)
	if got := h.Mean(); got < wantMean-1 || got > wantMean+1 {
		t.Fatalf("Mean() = %d, want ~%d", got, wantMean)
	}
	// Quantile extremes route to the exact running min/max.
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want 1", got)
	}
	if got := h.Quantile(1); got != n {
		t.Fatalf("Quantile(1) = %d, want %d", got, n)
	}
	// Interior quantiles are estimates from a uniform reservoir: for the
	// ramp 1..n the p50 must land near n/2. A 1024-sample reservoir gives a
	// standard error around 1.6% of n; 10% tolerance is far outside noise.
	p50 := float64(h.Quantile(0.50))
	if p50 < 0.40*n || p50 > 0.60*n {
		t.Fatalf("Quantile(0.5) = %.0f, want within 10%% of %d", p50, n/2)
	}
}

// TestHistogramExactBelowCap verifies nothing changed for streams that fit
// the reservoir: quantiles stay exact nearest-rank answers.
func TestHistogramExactBelowCap(t *testing.T) {
	h := NewHistogramCap(1024)
	for i := 100; i >= 1; i-- { // reverse order: sorting must still happen
		h.Observe(time.Duration(i))
	}
	if got := h.Retained(); got != 100 {
		t.Fatalf("Retained() = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 50 {
		t.Fatalf("Quantile(0.5) = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("Quantile(0.99) = %d, want 99", got)
	}
	if got := h.Stddev(); got < 28 || got > 30 { // exact: ~28.87 for 1..100
		t.Fatalf("Stddev() = %d, want ~28.87", got)
	}
}

// TestHistogramResetClearsAggregates verifies Reset also clears the running
// aggregates, not just the reservoir.
func TestHistogramResetClearsAggregates(t *testing.T) {
	h := NewHistogramCap(16)
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i + 1))
	}
	h.Reset()
	if h.Count() != 0 || h.Retained() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("Reset left state: count=%d retained=%d min=%v max=%v mean=%v",
			h.Count(), h.Retained(), h.Min(), h.Max(), h.Mean())
	}
	h.Observe(7)
	if h.Min() != 7 || h.Max() != 7 || h.Count() != 1 {
		t.Fatalf("post-Reset observe wrong: min=%v max=%v count=%d", h.Min(), h.Max(), h.Count())
	}
}
