package executor

import (
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/testutil/leakcheck"
	"repro/internal/trace"
)

// blockBothWorkers parks both workers of a 2-worker pool inside gate tasks,
// one per shard (postToShard pins the gates to distinct shards, so each
// worker ends up holding exactly one of them). It returns the two release
// channels in shard order. The returned gates are running — not queued — so
// tasks posted afterwards stay queued until a gate opens.
func blockBothWorkers(t *testing.T, p *WorkerPool) (release0, release1 chan struct{}) {
	t.Helper()
	release0 = make(chan struct{})
	release1 = make(chan struct{})
	running := make(chan int, 2)
	p.postToShard(0, func() {
		running <- 0
		<-release0
	})
	// Wait for the first gate to hold a worker before posting the second:
	// with both posted at once a single worker could drain gate 0 and then
	// gate 1, leaving its sibling idle.
	select {
	case <-running:
	case <-time.After(5 * time.Second):
		t.Fatal("first gate task never started")
	}
	p.postToShard(1, func() {
		running <- 1
		<-release1
	})
	select {
	case <-running:
	case <-time.After(5 * time.Second):
		t.Fatal("second gate task never started")
	}
	return release0, release1
}

// TestStealDrainsBlockedSiblingShard: with one worker blocked, the free
// worker must steal the blocked worker's backlog — tasks pinned to a shard
// whose owner never returns can only complete via stealing.
func TestStealDrainsBlockedSiblingShard(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("steal", 2, &reg)
	defer p.Shutdown()
	release0, release1 := blockBothWorkers(t, p)

	const n = 50
	var comps []*Completion
	for i := 0; i < n; i++ {
		comps = append(comps, p.postToShard(0, func() {}))
		comps = append(comps, p.postToShard(1, func() {}))
	}
	// Free exactly one worker. Whichever shard it owns, the other shard's
	// n tasks are reachable only by stealing (their owner is still parked
	// inside its gate).
	close(release0)
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("task failed: %v", err)
		}
	}
	if s := p.Stats().Steals; s == 0 {
		t.Fatal("all tasks completed with a blocked worker, yet Steals == 0")
	}
	close(release1)
}

// TestSpanCausalityAcrossSteal: a stolen task's run span must stay parented
// on the submitter's span (the Enqueue edge), not on whatever the thief was
// doing — span trees would otherwise lie about causality whenever the
// runner is not the submitter's affinity worker.
func TestSpanCausalityAcrossSteal(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("steal", 2, &reg)
	defer p.Shutdown()
	release0, release1 := blockBothWorkers(t, p)

	buf := trace.NewBuffer(1024)
	defer trace.Use(buf)()
	parent := trace.NewSpanID()
	prev := trace.Swap(parent)
	// One task per shard: whichever shard the soon-to-be-freed worker owns,
	// the other task completes only via a steal.
	c0 := p.postToShard(0, func() {})
	c1 := p.postToShard(1, func() {})
	trace.Swap(prev)

	close(release0)
	if err := c0.Wait(); err != nil {
		t.Fatalf("task 0 failed: %v", err)
	}
	if err := c1.Wait(); err != nil {
		t.Fatalf("task 1 failed: %v", err)
	}
	if s := p.Stats().Steals; s == 0 {
		t.Fatal("expected at least one steal with a worker blocked")
	}
	close(release1)

	runs := 0
	for _, e := range buf.Snapshot() {
		if e.Op == trace.OpSpanBegin && e.Name == "run" {
			runs++
			if e.Parent != parent {
				t.Fatalf("run span %d parented on %d, want submitter span %d",
					e.Span, e.Parent, parent)
			}
		}
	}
	if runs != 2 {
		t.Fatalf("saw %d traced runs, want 2", runs)
	}
}

// TestStealStatsCounters: Submitted stays exact across shards and Steals
// counts the stolen tasks — the scoreboard httpbench and the watchdog read.
func TestStealStatsCounters(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("steal", 2, &reg)
	defer p.Shutdown()
	release0, release1 := blockBothWorkers(t, p)

	const n = 40
	var comps []*Completion
	for i := 0; i < n; i++ {
		comps = append(comps, p.postToShard(0, func() {}))
	}
	for i := 0; i < n; i++ {
		comps = append(comps, p.postToShard(1, func() {}))
	}
	close(release0)
	for _, c := range comps {
		c.Wait()
	}
	st := p.Stats()
	// 2 gates + 2n tasks were accepted; whatever was stolen is also counted.
	if st.Submitted != 2*n+2 {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, 2*n+2)
	}
	if st.Steals <= 0 || st.Steals > 2*n {
		t.Fatalf("Steals = %d, want within (0, %d]", st.Steals, 2*n)
	}
	close(release1)
}

// TestWakePropagationFansOut: one producer flooding one shard must end up
// engaging every worker — the worker that takes a task and sees backlog
// wakes a parked sibling, which steals. The proof is completion of a burst
// far larger than one worker clears quickly, with everyone else parked.
func TestWakePropagationFansOut(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("fanout", 4, &reg)
	defer p.Shutdown()

	const n = 2000
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		p.postToShard(0, func() { done <- struct{}{} })
	}
	timeout := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatalf("only %d/%d tasks ran: backlog wakeup lost", i, n)
		}
	}
}
