package executor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil/poll"
)

// TestBoundedPoolAtCapacity drives a bounded pool to its queue limit and
// checks the accept/reject boundary exactly: with one busy worker and a
// queue of capacity tasks, the next Post is rejected with ErrQueueFull and
// counted in Stats.Rejected, while every accepted task still completes.
func TestBoundedPoolAtCapacity(t *testing.T) {
	const capacity = 4
	p := NewBoundedWorkerPool("bounded", 1, capacity, nil)
	defer p.Shutdown()

	gate := make(chan struct{})
	busy := make(chan struct{})
	p.Post(func() { close(busy); <-gate }) // occupy the single worker
	<-busy

	var accepted []*Completion
	for i := 0; i < capacity; i++ {
		accepted = append(accepted, p.Post(func() {}))
	}
	rej := p.Post(func() { t.Error("rejected task must never run") })
	if !rej.Finished() {
		t.Fatal("rejected completion should be finished immediately")
	}
	if !errors.Is(rej.Err(), ErrQueueFull) {
		t.Fatalf("Err = %v, want ErrQueueFull", rej.Err())
	}
	rejC, cancel := p.PostCancellable(func() { t.Error("rejected task must never run") })
	if !errors.Is(rejC.Err(), ErrQueueFull) {
		t.Fatalf("PostCancellable Err = %v, want ErrQueueFull", rejC.Err())
	}
	if cancel() {
		t.Fatal("cancel on a rejected task must report false")
	}
	if st := p.Stats(); st.Rejected != 2 || st.QueueDepth != capacity {
		t.Fatalf("Stats = %+v, want Rejected=2 QueueDepth=%d", st, capacity)
	}

	close(gate)
	for _, c := range accepted {
		if err := c.Wait(); err != nil {
			t.Fatalf("accepted task failed: %v", err)
		}
	}
}

// TestPostCancellableCancelVsRunRace races cancel() against the worker
// picking the task up. Exactly one side must win each round: either the
// body runs and the completion is nil-errored, or it never runs and the
// completion carries ErrCanceled. Run with -race.
func TestPostCancellableCancelVsRunRace(t *testing.T) {
	p := NewWorkerPool("race", 4, nil)
	defer p.Shutdown()

	const rounds = 500
	var ran, cancelled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		comp, cancel := p.PostCancellable(func() { ran.Add(1) })
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cancel() {
				cancelled.Add(1)
			}
		}()
		if err := comp.Wait(); err != nil && !errors.Is(err, ErrCanceled) {
			t.Errorf("unexpected completion error: %v", err)
		}
	}
	wg.Wait()
	// Give in-flight bodies a moment to finish bumping the counter.
	poll.Wait(2*time.Second, func() bool { return ran.Load()+cancelled.Load() == rounds })
	if got := ran.Load() + cancelled.Load(); got != rounds {
		t.Fatalf("ran(%d) + cancelled(%d) = %d, want exactly %d",
			ran.Load(), cancelled.Load(), got, rounds)
	}
}

// TestStatsPanicCount checks the cumulative panic counter, both for tasks
// run by workers and tasks helped via TryRunPending.
func TestStatsPanicCount(t *testing.T) {
	p := NewWorkerPool("panicky", 1, nil)
	defer p.Shutdown()

	c := p.Post(func() { panic("boom") })
	var pe *PanicError
	if err := c.Wait(); !errors.As(err, &pe) {
		t.Fatalf("Err = %v, want *PanicError", err)
	}

	// Park the worker, queue a panicking task, and help it from here.
	gate := make(chan struct{})
	busy := make(chan struct{})
	p.Post(func() { close(busy); <-gate })
	<-busy
	helped := p.Post(func() { panic("helped boom") })
	poll.Until(t, "queued task to become helpable", p.TryRunPending)
	close(gate)
	if err := helped.Wait(); !errors.As(err, &pe) {
		t.Fatalf("helped Err = %v, want *PanicError", err)
	}
	if st := p.Stats(); st.Panics != 2 {
		t.Fatalf("Stats.Panics = %d, want 2", st.Panics)
	}
}
