package executor

import (
	"runtime"
	"testing"
	"time"
)

// Review repro: Shrink grants a credit while all workers are busy; a worker
// then crashes (Goexit), dropping nworkers; the lone survivor consumes the
// stale credit in tryRetire and retires as the LAST worker, emptying the
// shard snapshot. A subsequent Post must not panic.
func TestReviewShrinkCreditAfterCrash(t *testing.T) {
	p := NewWorkerPool("review", 2, nil)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()

	block0 := make(chan struct{})
	block1 := make(chan struct{})
	running0 := make(chan struct{})
	running1 := make(chan struct{})
	// Pin one blocking task on each worker's shard so both workers are busy.
	p.postToShard(0, func() { close(running0); <-block0 })
	p.postToShard(1, func() { close(running1); <-block1; runtime.Goexit() })
	<-running0
	<-running1

	if got := p.Shrink(1); got != 1 {
		t.Fatalf("Shrink granted %d", got)
	}
	// Crash worker 1 while the credit is still pending.
	close(block1)
	for i := 0; i < 100 && p.Crashes() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Release worker 0; it should NOT be allowed to retire as the last worker.
	close(block0)
	time.Sleep(50 * time.Millisecond)

	if w := p.Workers(); w < 1 {
		t.Logf("pool dropped to %d workers", w)
	}
	if n := len(*p.shards.Load()); n == 0 {
		t.Logf("shard snapshot is empty")
	}
	c := p.Post(func() {})
	if err := c.Wait(); err != nil {
		t.Fatalf("post after shrink+crash: %v", err)
	}
}
