package executor

import (
	"testing"

	"repro/internal/gid"
)

// TestBlockHookHandlesWait proves the simulation seam: with a hook
// installed for the calling goroutine, Completion.Wait never parks — the
// hook drives the completion to done and Wait returns its error.
func TestBlockHookHandlesWait(t *testing.T) {
	comp, complete := NewPendingCompletion()
	self := gid.Current()
	pumped := 0
	restore := SetBlockHook(func(ready func() bool) bool {
		if gid.Current() != self {
			return false
		}
		for !ready() {
			pumped++
			complete(nil) // "the scheduler ran the task"
		}
		return true
	})
	defer restore()
	if err := comp.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if pumped != 1 {
		t.Fatalf("hook pumped %d times, want 1", pumped)
	}
}

// TestBlockHookIgnoresForeignGoroutines: a hook that declines the
// goroutine must leave the normal park path intact.
func TestBlockHookIgnoresForeignGoroutines(t *testing.T) {
	restore := SetBlockHook(func(ready func() bool) bool { return false })
	defer restore()
	comp, complete := NewPendingCompletion()
	go complete(nil)
	if err := comp.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
}

// TestBlockHookRestore: SetBlockHook's restore function reinstates the
// previous hook, so nested installations unwind cleanly.
func TestBlockHookRestore(t *testing.T) {
	var outerCalls int
	outer := func(ready func() bool) bool { outerCalls++; return false }
	restoreOuter := SetBlockHook(outer)
	defer restoreOuter()
	restoreInner := SetBlockHook(nil)
	if hookedWait(func() bool { return true }) {
		t.Fatal("nil hook handled a wait")
	}
	restoreInner()
	if hookedWait(func() bool { return true }); outerCalls != 1 {
		t.Fatalf("outer hook calls = %d after restore, want 1", outerCalls)
	}
}

// TestBlockOnFallsThroughToChannel: without a hook, BlockOn is a plain
// channel receive.
func TestBlockOnFallsThroughToChannel(t *testing.T) {
	done := make(chan struct{})
	go close(done)
	BlockOn(done) // must return, not hang
	BlockOn(done) // already closed: immediate
}
