package executor

import (
	"sync"
	"sync/atomic"

	"repro/internal/sanitize"
)

// This file holds the sharded run-queue machinery underneath WorkerPool
// (DESIGN.md §15): one shard per worker, a growable ring deque per shard,
// and the per-worker state used by the stealing protocol.
//
// Locking rules (the whole protocol depends on these):
//
//   - shard.mu protects the shard's deque and its dead flag. shard.owned is
//     pool bookkeeping and is guarded by WorkerPool.mu instead.
//   - Never acquire two shard locks at once. A stealer pops the victim's
//     batch into a private buffer under the victim's lock, releases it, and
//     only then locks its own shard to keep the surplus — symmetric steals
//     can therefore never deadlock.
//   - Never hold a shard lock while taking WorkerPool.mu (or vice versa).
//     Paths that need both (retire, crash re-homing) take them sequentially.

// runq is a growable power-of-two ring deque of tasks. The owning worker
// pops from the back (LIFO — cache-warm, newest first); stealers and helpers
// pop from the front (FIFO — oldest first), which is also what keeps a
// single-worker pool strictly FIFO. Not internally synchronized: callers
// hold the shard lock.
type runq struct {
	buf  []*task
	head int // index of the front element
	n    int // number of queued tasks
}

const runqMinCap = 64

func (q *runq) grow() {
	newCap := runqMinCap
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	buf := make([]*task, newCap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = buf, 0
}

func (q *runq) pushBack(t *task) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = t
	q.n++
}

func (q *runq) popFront() *task {
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.maybeShrink()
	return t
}

func (q *runq) popBack() *task {
	i := (q.head + q.n - 1) & (len(q.buf) - 1)
	t := q.buf[i]
	q.buf[i] = nil
	q.n--
	q.maybeShrink()
	return t
}

// maybeShrink halves the ring once occupancy drops to a quarter of a large
// buffer, so a burst that ballooned the deque does not pin its high-water
// allocation forever (the GC pressure of a deep backlog is exactly what the
// multi-producer benchmarks punish).
func (q *runq) maybeShrink() {
	if len(q.buf) > 1024 && q.n <= len(q.buf)/4 {
		buf := make([]*task, len(q.buf)/2)
		for i := 0; i < q.n; i++ {
			buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = buf, 0
	}
}

// drain appends every queued task to out in FIFO order and empties the ring.
func (q *runq) drain(out []*task) []*task {
	for q.n > 0 {
		out = append(out, q.buf[q.head])
		q.buf[q.head] = nil
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.n--
	}
	q.head = 0
	if len(q.buf) > runqMinCap {
		q.buf = nil // a drained shard is dead or idle; drop the ballast
	}
	return out
}

// shard is one worker's local run-queue plus the lock-free mirrors producers
// and idle workers poll. Each live worker owns exactly one shard; producers
// hash onto shards by goroutine id (submitter affinity).
type shard struct {
	mu sync.Mutex
	q  runq
	// dead marks a shard that has been removed from the pool's snapshot and
	// drained (worker retired or crashed). Guarded by mu: a producer holding
	// a stale snapshot re-picks when it sees dead, so no task can land in a
	// queue nobody will ever drain.
	dead bool
	// owned reports whether a live worker drains this shard. Guarded by
	// WorkerPool.mu. An unowned ("orphan") shard — the last worker crashed —
	// stays in the snapshot so producers still have somewhere to post and
	// FailPending/Shutdown can fail what queued up; Grow re-adopts it before
	// creating fresh shards, which is how a supervisor's respawned worker
	// inherits the crashed worker's queue.
	owned bool

	// Lock-free mirrors, updated under mu at the point of change.
	len       atomic.Int64 // queue length (producers poll for backpressure, workers for work)
	submitted atomic.Int64 // tasks accepted into this shard (incremented under mu; see rehome)
	peak      atomic.Int64 // high watermark of len

	_ [64]byte // keep hot per-shard atomics off neighbouring shards' cache lines
}

// worker is the per-goroutine state of one pool worker: its shard, its
// parking slot, the LIFO/FIFO fairness tick, and a reusable steal buffer
// (stealing must stage the batch outside the victim's lock — see the
// locking rules above — and this buffer keeps that allocation-free).
type worker struct {
	shard    *shard
	pk       *parker
	ticks    uint
	stealBuf []*task
	// san stamps the owning goroutine: ticks and stealBuf are per-worker
	// confined state (no lock guards them), so under -tags=ompsan the
	// local-pop and steal paths assert they only ever run on the goroutine
	// spawnWorker bound. No-op untagged.
	san sanitize.Home
}

const (
	// stealBatchMax caps how many tasks one steal moves (steal-half, but
	// never more than this): bounded latency for the victim's remaining
	// work and a bounded stage buffer for the thief.
	stealBatchMax = 64
	// fairnessTick: every Nth local pop takes the oldest task instead of
	// the newest, so a constantly-refilled LIFO shard cannot starve its
	// tail. Prime, so it does not phase-lock with producer burst sizes.
	fairnessTick = 61
	// backpressureDepth is the per-shard backlog beyond which Post yields
	// the processor after enqueueing (soft flow control). Post still never
	// blocks and never runs foreign work inline — it only stops a flood of
	// producers from starving the workers and ballooning the live heap.
	backpressureDepth = 256
)

func newShard() *shard {
	return &shard{owned: true}
}

func newWorker(sh *shard) *worker {
	return &worker{
		shard:    sh,
		pk:       &parker{wake: make(chan struct{}, 1)},
		stealBuf: make([]*task, 0, stealBatchMax),
	}
}
