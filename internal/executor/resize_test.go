package executor

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"

	"repro/internal/testutil/poll"
)

func TestGrowAddsCapacity(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("grow", 1, &reg)
	defer p.Shutdown()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	// Occupy the single worker.
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	// A second long task would queue... until we grow.
	var ran atomic.Bool
	c := p.Post(func() { ran.Store(true) })
	p.Grow(2)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d after Grow(2)", p.Workers())
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("grown worker did not pick up queued task")
	}
	close(gate)
}

func TestShrinkRetiresIdleWorkers(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("shrink", 4, &reg)
	defer p.Shutdown()
	if got := p.Shrink(2); got != 2 {
		t.Fatalf("Shrink(2) = %d", got)
	}
	// Idle workers retire promptly.
	poll.Until(t, "idle workers to retire to 2", func() bool { return p.Workers() == 2 })
	// The pool still works.
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
	// Never below one worker.
	if got := p.Shrink(99); got != 1 {
		t.Fatalf("Shrink(99) = %d, want clamped 1", got)
	}
	poll.Until(t, "workers to retire to the floor of 1", func() bool { return p.Workers() == 1 })
	if got := p.Shrink(1); got != 0 {
		t.Fatalf("Shrink below 1 = %d, want 0", got)
	}
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowShrinkNoopCases(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("noop", 2, &reg)
	p.Grow(0)
	p.Grow(-3)
	if p.Shrink(0) != 0 || p.Shrink(-1) != 0 {
		t.Fatal("negative shrink")
	}
	if p.Workers() != 2 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	p.Shutdown()
	p.Grow(5) // no-op after shutdown
	if p.Shrink(1) != 0 {
		t.Fatal("shrink after shutdown")
	}
}

func TestPostCancellableBeforeStart(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("cancel", 1, &reg)
	defer p.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	var ran atomic.Bool
	c, cancel := p.PostCancellable(func() { ran.Store(true) })
	if !cancel() {
		t.Fatal("cancel of queued task returned false")
	}
	if err := c.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if cancel() {
		t.Fatal("second cancel returned true")
	}
	close(gate)
	// Give the worker a chance to pop the cancelled task.
	p.Post(func() {}).Wait()
	if ran.Load() {
		t.Fatal("cancelled task ran")
	}
	if st := p.Stats(); st.Helped != 0 && st.Completed > 2 {
		t.Fatalf("cancelled task counted as completed: %+v", st)
	}
}

func TestPostCancellableAfterStart(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("cancel2", 1, &reg)
	defer p.Shutdown()
	started := make(chan struct{})
	gate := make(chan struct{})
	c, cancel := p.PostCancellable(func() { close(started); <-gate })
	<-started
	if cancel() {
		t.Fatal("cancel of running task returned true")
	}
	close(gate)
	if err := c.Wait(); err != nil {
		t.Fatalf("running task completed with %v", err)
	}
}

func TestPostCancellableOnShutdownPool(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("cancel3", 1, &reg)
	p.Shutdown()
	c, cancel := p.PostCancellable(func() {})
	if err := c.Err(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
	if cancel() {
		t.Fatal("cancel of rejected task returned true")
	}
}

func TestCancelledTaskSkippedByHelper(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("cancel4", 1, &reg)
	defer p.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	_, cancel := p.PostCancellable(func() {})
	cancel()
	// The helper pops the cancelled task but reports no work done.
	if p.TryRunPending() {
		t.Fatal("TryRunPending reported running a cancelled task")
	}
	close(gate)
}

func TestGrowShrinkStormProperty(t *testing.T) {
	defer leakcheck.Check(t)()
	// Property: under any interleaving of Grow/Shrink/Post, every accepted
	// task runs exactly once and the pool never reports fewer than one
	// worker.
	var reg gid.Registry
	p := NewWorkerPool("storm", 2, &reg)
	defer p.Shutdown()
	var ran atomic.Int64
	var comps []*Completion
	for i := 0; i < 200; i++ {
		switch i % 5 {
		case 1:
			p.Grow(1)
		case 3:
			p.Shrink(1)
		default:
			comps = append(comps, p.Post(func() { ran.Add(1) }))
		}
		if w := p.Workers(); w < 1 {
			t.Fatalf("Workers = %d", w)
		}
	}
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if int(ran.Load()) != len(comps) {
		t.Fatalf("ran %d/%d tasks", ran.Load(), len(comps))
	}
}

// TestShrinkRehomesQueuedTasks: a retiring worker must move its local queue
// onto a survivor before exiting — shrinking the pool can delay queued work
// but never orphan it.
func TestShrinkRehomesQueuedTasks(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("shrink", 2, &reg)
	defer p.Shutdown()
	release0, release1 := blockBothWorkers(t, p)

	const n = 25
	var comps []*Completion
	for i := 0; i < n; i++ {
		comps = append(comps, p.postToShard(0, func() {}))
		comps = append(comps, p.postToShard(1, func() {}))
	}
	if got := p.Shrink(1); got != 1 {
		t.Fatalf("Shrink scheduled %d retirements, want 1", got)
	}
	// Free one worker: it consumes the retirement credit first and must
	// re-home its shard's n pinned tasks (the survivor is still gated, so
	// the count is exact).
	close(release0)
	waitFor(t, "worker retired", func() bool { return p.Workers() == 1 })
	waitFor(t, "queue re-homed", func() bool { return p.Stats().Rehomed == n })
	close(release1)
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("queued task failed across shrink: %v", err)
		}
	}
	if got := p.Stats().Submitted; got != 2*n+2 {
		t.Fatalf("Submitted = %d, want %d (carry must survive the retired shard)", got, 2*n+2)
	}
}
