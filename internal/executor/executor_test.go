package executor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"
)

func TestWorkerPoolRunsTasks(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("worker", 4, &reg)
	defer p.Shutdown()
	var n atomic.Int64
	var comps []*Completion
	for i := 0; i < 100; i++ {
		comps = append(comps, p.Post(func() { n.Add(1) }))
	}
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("task error: %v", err)
		}
	}
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestWorkerPoolSingleWorkerFIFO(t *testing.T) {
	// A 1-worker pool (a serial executor) must run tasks in submission
	// order — the thread-confinement guarantee GUI toolkits rely on.
	var reg gid.Registry
	p := NewSerialExecutor("edt", &reg)
	defer p.Shutdown()
	var mu sync.Mutex
	var order []int
	var comps []*Completion
	for i := 0; i < 200; i++ {
		i := i
		comps = append(comps, p.Post(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, c := range comps {
		c.Wait()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; serial pool broke FIFO", i, v)
		}
	}
}

func TestOwnsInsideAndOutside(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("worker", 2, &reg)
	defer p.Shutdown()
	if p.Owns() {
		t.Fatal("external goroutine should not be owned by the pool")
	}
	c := p.Post(func() {
		if !p.Owns() {
			t.Error("worker goroutine should report Owns()=true")
		}
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnsDistinguishesPools(t *testing.T) {
	var reg gid.Registry
	a := NewWorkerPool("a", 1, &reg)
	b := NewWorkerPool("b", 1, &reg)
	defer a.Shutdown()
	defer b.Shutdown()
	c := a.Post(func() {
		if b.Owns() {
			t.Error("goroutine of pool a reported as member of pool b")
		}
		if !a.Owns() {
			t.Error("goroutine of pool a not a member of pool a")
		}
	})
	c.Wait()
}

func TestPanicCaptured(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("worker", 1, &reg)
	defer p.Shutdown()
	var recovered atomic.Value
	p.SetPanicHandler(func(v any) { recovered.Store(v) })
	c := p.Post(func() { panic("boom") })
	err := c.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("Wait() = %v, want PanicError(boom)", err)
	}
	if recovered.Load() != "boom" {
		t.Fatalf("panic handler got %v", recovered.Load())
	}
	// The pool must survive the panic and keep executing tasks.
	c2 := p.Post(func() {})
	if err := c2.Wait(); err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
}

func TestShutdownDrainsQueueAndRejectsNew(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("worker", 1, &reg)
	var n atomic.Int64
	var comps []*Completion
	for i := 0; i < 50; i++ {
		comps = append(comps, p.Post(func() {
			time.Sleep(100 * time.Microsecond)
			n.Add(1)
		}))
	}
	p.Shutdown()
	if got := n.Load(); got != 50 {
		t.Fatalf("Shutdown drained only %d/50 tasks", got)
	}
	for _, c := range comps {
		if !c.Finished() {
			t.Fatal("task not finished after Shutdown")
		}
	}
	c := p.Post(func() { n.Add(1) })
	if err := c.Wait(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post after shutdown: err = %v, want ErrShutdown", err)
	}
	if n.Load() != 50 {
		t.Fatal("task ran after shutdown")
	}
	// Second Shutdown is a no-op.
	p.Shutdown()
}

func TestBoundedPoolRejectsWhenFull(t *testing.T) {
	var reg gid.Registry
	p := NewBoundedWorkerPool("bounded", 1, 2, &reg)
	defer p.Shutdown()
	block := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-block }) // occupies the worker
	<-started
	c1 := p.Post(func() {}) // queue slot 1
	c2 := p.Post(func() {}) // queue slot 2
	c3 := p.Post(func() {}) // must be rejected
	if err := c3.Err(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow task err = %v, want ErrQueueFull", err)
	}
	close(block)
	if err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

func TestTryRunPending(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("worker", 1, &reg)
	defer p.Shutdown()
	// Occupy the only worker so queued tasks stay pending.
	block := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-block })
	<-started
	var n atomic.Int64
	c := p.Post(func() { n.Add(1) })
	// Help-run the pending task from this (external) goroutine.
	if !p.TryRunPending() {
		t.Fatal("TryRunPending found no task")
	}
	if !c.Finished() || n.Load() != 1 {
		t.Fatal("helped task did not complete")
	}
	if p.TryRunPending() {
		t.Fatal("TryRunPending ran a task from an empty queue")
	}
	close(block)
	if st := p.Stats(); st.Helped != 1 {
		t.Fatalf("Helped = %d, want 1", st.Helped)
	}
}

func TestStatsCounters(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("worker", 2, &reg)
	var comps []*Completion
	for i := 0; i < 20; i++ {
		comps = append(comps, p.Post(func() {}))
	}
	for _, c := range comps {
		c.Wait()
	}
	st := p.Stats()
	if st.Submitted != 20 || st.Completed != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after drain", st.QueueDepth)
	}
	p.Shutdown()
}

func TestCompletionStates(t *testing.T) {
	c := NewCompletedCompletion(nil)
	if !c.Finished() || c.Err() != nil {
		t.Fatal("completed completion wrong state")
	}
	e := errors.New("x")
	c2 := NewCompletedCompletion(e)
	if c2.Err() != e {
		t.Fatal("error not preserved")
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("Done channel not closed")
	}
}

func TestDirectExecutor(t *testing.T) {
	d := NewDirectExecutor("seq")
	if d.Name() != "seq" {
		t.Fatal("name")
	}
	ran := false
	c := d.Post(func() { ran = true })
	if !ran || !c.Finished() {
		t.Fatal("DirectExecutor did not run inline")
	}
	if !d.Owns() {
		t.Fatal("DirectExecutor must own every goroutine")
	}
	if d.TryRunPending() {
		t.Fatal("DirectExecutor has no pending tasks")
	}
	c2 := d.Post(func() { panic(42) })
	var pe *PanicError
	if err := c2.Err(); !errors.As(err, &pe) {
		t.Fatalf("direct panic not captured: %v", err)
	}
	d.Shutdown() // no-op
}

func TestPoolCompletenessProperty(t *testing.T) {
	// Property: for any task count and worker count, every submitted task
	// runs exactly once.
	f := func(nTasks uint8, nWorkers uint8) bool {
		var reg gid.Registry
		p := NewWorkerPool("prop", int(nWorkers%8), &reg)
		defer p.Shutdown()
		var n atomic.Int64
		var comps []*Completion
		for i := 0; i < int(nTasks); i++ {
			comps = append(comps, p.Post(func() { n.Add(1) }))
		}
		for _, c := range comps {
			if c.Wait() != nil {
				return false
			}
		}
		return n.Load() == int64(nTasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWorkerClamped(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("clamp", 0, &reg)
	defer p.Shutdown()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d, want clamped 1", p.Workers())
	}
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPostWait(b *testing.B) {
	var reg gid.Registry
	p := NewWorkerPool("bench", 4, &reg)
	defer p.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Post(func() {}).Wait()
	}
}

func BenchmarkPostNowait(b *testing.B) {
	var reg gid.Registry
	p := NewWorkerPool("bench", 4, &reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Post(func() {})
	}
	b.StopTimer()
	p.Shutdown()
}

func BenchmarkOwns(b *testing.B) {
	var reg gid.Registry
	p := NewWorkerPool("bench", 2, &reg)
	defer p.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Owns()
	}
}

// TestPostCancellablePeak is the regression test for the lost-watermark bug:
// PostCancellable enqueued without updating the peak counter, so a pool fed
// exclusively through the cancellable path reported QueuePeak = 0 no matter
// how deep its backlog got. Both posting paths now share enqueue, which
// publishes the watermark for every submission.
func TestPostCancellablePeak(t *testing.T) {
	reg := &gid.Registry{}
	p := NewWorkerPool("peak", 1, reg)
	defer p.Shutdown()

	gate := make(chan struct{})
	running := make(chan struct{})
	p.Post(func() { close(running); <-gate })
	<-running

	const n = 5
	for i := 0; i < n; i++ {
		p.PostCancellable(func() {})
	}
	if got := p.Stats().QueuePeak; got < n {
		t.Fatalf("QueuePeak = %d after %d cancellable posts, want >= %d", got, n, n)
	}
	close(gate)
}

// TestPeakCasMaxConcurrent is the regression test for the check-then-store
// watermark race: with racing plain stores, a post observing length 3 could
// overwrite the peak published by a post that observed length 7. With the
// CAS-max loop the final peak must be exactly the full backlog depth, since
// the worker is gated and the queue only grows. Run with -race.
func TestPeakCasMaxConcurrent(t *testing.T) {
	reg := &gid.Registry{}
	p := NewWorkerPool("cas-peak", 1, reg)
	defer p.Shutdown()

	gate := make(chan struct{})
	running := make(chan struct{})
	p.Post(func() { close(running); <-gate })
	<-running // the sole worker is now parked inside the gate task

	const producers = 8
	const perProducer = 50
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				p.Post(func() {})
			}
		}()
	}
	wg.Wait()
	if got := p.Stats().QueuePeak; got != producers*perProducer {
		t.Fatalf("QueuePeak = %d, want exactly %d (watermark lost to a racing store)",
			got, producers*perProducer)
	}
	close(gate)
}
