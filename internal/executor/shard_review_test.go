package executor

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/testutil/poll"
)

// Shrink grants a credit while all workers are busy; a worker then crashes
// (Goexit), dropping nworkers; the lone survivor must NOT consume the stale
// credit and retire as the last worker — that would empty the shard snapshot
// (invariant: never empty) and strand every future Post. The crash already
// delivered the headcount reduction the credit asked for, so tryRetire
// cancels it instead.
func TestShrinkCreditAfterCrash(t *testing.T) {
	p := NewWorkerPool("review", 2, nil)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()

	block0 := make(chan struct{})
	block1 := make(chan struct{})
	running0 := make(chan struct{})
	running1 := make(chan struct{})
	// Pin one blocking task on each worker's shard so both workers are busy.
	p.postToShard(0, func() { close(running0); <-block0 })
	p.postToShard(1, func() { close(running1); <-block1; runtime.Goexit() })
	<-running0
	<-running1

	if got := p.Shrink(1); got != 1 {
		t.Fatalf("Shrink granted %d", got)
	}
	// Crash worker 1 while the credit is still pending.
	close(block1)
	poll.Until(t, "the worker crash to be observed", func() bool { return p.Crashes() > 0 })
	// Release worker 0; it must not be allowed to retire as the last
	// worker. Give the stale credit a bounded window to (incorrectly) take
	// effect; if the bug is present the wait ends as soon as it manifests.
	close(block0)
	poll.Wait(50*time.Millisecond, func() bool { return p.Workers() < 1 })

	if w := p.Workers(); w < 1 {
		t.Errorf("pool dropped to %d workers; the last worker must survive a stale credit", w)
	}
	if n := len(*p.shards.Load()); n == 0 {
		t.Errorf("shard snapshot is empty; invariant is that it never empties")
	}
	c := p.Post(func() {})
	if err := c.Wait(); err != nil {
		t.Fatalf("post after shrink+crash: %v", err)
	}
	p.Shutdown()
}
