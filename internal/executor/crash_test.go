package executor

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"

	"repro/internal/testutil/poll"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	poll.Until(t, what, cond)
}

func TestWorkerCrashFailsTaskTyped(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("crash", 2, &reg)
	defer p.Shutdown()
	c := p.Post(func() { runtime.Goexit() })
	if err := c.Wait(); !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	waitFor(t, "crash accounting", func() bool { return p.Crashes() == 1 && p.Workers() == 1 })
	// The surviving worker still serves tasks.
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashHandlerNotified(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("crash2", 1, &reg)
	defer p.Shutdown()
	crashed := make(chan any, 1)
	p.SetCrashHandler(func(v any) { crashed <- v })
	p.Post(func() { runtime.Goexit() })
	select {
	case v := <-crashed:
		if v != nil {
			t.Fatalf("Goexit crash reason = %v, want nil", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash handler not called")
	}
	waitFor(t, "worker count drop", func() bool { return p.Workers() == 0 })
}

func TestShutdownFailsStrandedQueue(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("stranded", 1, &reg)
	// Kill the only worker, then queue tasks nobody can run.
	p.Post(func() { runtime.Goexit() }).Wait()
	waitFor(t, "worker death", func() bool { return p.Workers() == 0 })
	c1 := p.Post(func() { t.Error("stranded task ran") })
	c2 := p.Post(func() { t.Error("stranded task ran") })
	p.Shutdown()
	for _, c := range []*Completion{c1, c2} {
		if err := c.Wait(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("stranded task err = %v, want ErrShutdown", err)
		}
	}
}

func TestFailPending(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("failpending", 1, &reg)
	defer p.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	bang := errors.New("restarting")
	c1 := p.Post(func() {})
	c2 := p.Post(func() {})
	if n := p.FailPending(bang); n != 2 {
		t.Fatalf("FailPending = %d, want 2", n)
	}
	if err := c1.Wait(); !errors.Is(err, bang) {
		t.Fatalf("c1 err = %v", err)
	}
	if err := c2.Wait(); !errors.Is(err, bang) {
		t.Fatalf("c2 err = %v", err)
	}
	close(gate)
	// The pool keeps working after a purge.
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeGrowsAndShrinks(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("resize", 2, &reg)
	defer p.Shutdown()
	p.Resize(5)
	if p.Workers() != 5 {
		t.Fatalf("Workers = %d after Resize(5)", p.Workers())
	}
	p.Resize(1)
	waitFor(t, "shrink to 1", func() bool { return p.Workers() == 1 })
	p.Resize(0) // clamps to 1
	waitFor(t, "clamp to 1", func() bool { return p.Workers() == 1 })
	if err := p.Post(func() {}).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeAfterShutdownIsNoop(t *testing.T) {
	var reg gid.Registry
	p := NewWorkerPool("resize2", 2, &reg)
	p.Shutdown()
	p.Resize(8)
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers = %d after post-shutdown Resize, want 2", got)
	}
}

func TestConcurrentResizeShutdown(t *testing.T) {
	defer leakcheck.Check(t)()
	// Regression for the Grow wg.Add / Shutdown wg.Wait race: hammer
	// Resize from several goroutines while Shutdown runs. Run with -race.
	for round := 0; round < 20; round++ {
		var reg gid.Registry
		p := NewWorkerPool("storm", 2, &reg)
		var running atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					p.Resize(1 + (g+i)%6)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.Post(func() { running.Add(1) })
			}
		}()
		p.Shutdown()
		wg.Wait()
		p.Resize(4) // no-op after shutdown
		// Every accepted task either ran before the drain finished or was
		// failed by the shutdown backstop; none may hang.
	}
}

// TestCrashRehomesQueuedTasks: a crashed worker's local shard must be
// re-homed onto a survivor — the tasks that had hashed to the dead worker's
// queue run to completion instead of waiting on a goroutine that no longer
// exists.
func TestCrashRehomesQueuedTasks(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("crash", 2, &reg)
	defer p.Shutdown()

	// Gate both workers, one per shard; each gate crashes (Goexit) or
	// returns on command.
	cmd0, cmd1 := make(chan bool), make(chan bool)
	running := make(chan struct{}, 2)
	p.postToShard(0, func() {
		running <- struct{}{}
		if <-cmd0 {
			runtime.Goexit()
		}
	})
	<-running
	p.postToShard(1, func() {
		running <- struct{}{}
		if <-cmd1 {
			runtime.Goexit()
		}
	})
	<-running

	const n = 30
	var comps []*Completion
	for i := 0; i < n; i++ {
		comps = append(comps, p.postToShard(0, func() {}))
		comps = append(comps, p.postToShard(1, func() {}))
	}
	cmd0 <- true // crash gate 0's holder; its shard must move to the survivor
	waitFor(t, "crash recorded", func() bool { return p.Crashes() == 1 })
	// The survivor is still gated, so the re-homed count is exact: the
	// dead worker's shard held the n tasks pinned to it and nothing else.
	waitFor(t, "shard re-homed", func() bool { return p.Stats().Rehomed == n })
	cmd1 <- false // free the survivor
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("queued task failed after crash: %v", err)
		}
	}
	if w := p.Workers(); w != 1 {
		t.Fatalf("Workers = %d, want 1 after crash", w)
	}
	if got := p.Stats().Submitted; got != 2*n+2 {
		t.Fatalf("Submitted = %d, want %d (carry must survive the dead shard)", got, 2*n+2)
	}
}

// TestCrashLastWorkerOrphanGrowAdopts: when the last worker crashes, its
// shard is orphaned in place — posts still land there — and Grow hands the
// orphan to the respawned worker, which drains the backlog. This is the
// contract supervise.RespawnWorkers depends on: respawn a worker *with its
// queue*.
func TestCrashLastWorkerOrphanGrowAdopts(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewWorkerPool("orphan", 1, &reg)
	defer p.Shutdown()

	crash := make(chan struct{})
	running := make(chan struct{})
	p.Post(func() { close(running); <-crash; runtime.Goexit() })
	<-running
	const n = 20
	var comps []*Completion
	for i := 0; i < n; i++ {
		comps = append(comps, p.Post(func() {}))
	}
	close(crash)
	waitFor(t, "worker gone", func() bool { return p.Workers() == 0 })
	if d := p.Stats().QueueDepth; d != n {
		t.Fatalf("QueueDepth = %d, want %d (orphan shard must keep the queue)", d, n)
	}
	// Posts to a fully-crashed pool still land on the orphan shard.
	comps = append(comps, p.Post(func() {}))
	p.Grow(1)
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("queued task failed after respawn: %v", err)
		}
	}
}
