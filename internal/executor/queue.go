package executor

import (
	"sync"
	"sync/atomic"
)

// chunkSize is the number of slots per queue chunk. 128 pointers keeps a
// chunk at two cache pages, large enough that steady-state posting recycles
// one or two chunks through the pool instead of allocating.
const chunkSize = 128

// chunk is one fixed-size segment of a ChunkQueue: a ring of chunkSize
// slots drained head→tail, linked to the next segment when the producer
// outruns the consumer.
type chunk[T any] struct {
	elems      [chunkSize]T
	head, tail int // pop at head, push at tail; head <= tail <= chunkSize
	next       *chunk[T]
}

// ChunkQueue is a FIFO queue of T built from pooled fixed-size chunks — the
// shared dispatch queue under WorkerPool and eventloop.Loop. Compared with
// the seed's `append`+reslice slice queue it never re-slices on pop, never
// copies on growth, and returns drained chunks to a sync.Pool, so
// steady-state Post traffic is allocation-free at the queue layer.
//
// ChunkQueue is NOT internally synchronized: callers must hold their own
// lock around Push/Pop/Drain (both current users already own a mutex for
// the wakeup protocol; a second lock here would just double the acquire
// count — the "double-locking" the PR 3 overhaul removes).
type ChunkQueue[T any] struct {
	head, tail *chunk[T]
	n          int
	pool       *sync.Pool // *chunk[T]; shared per queue instance
}

// NewChunkQueue returns an empty queue with its own chunk pool.
func NewChunkQueue[T any]() ChunkQueue[T] {
	return ChunkQueue[T]{pool: &sync.Pool{New: func() any { return new(chunk[T]) }}}
}

// Push appends v and returns the new length.
func (q *ChunkQueue[T]) Push(v T) int {
	if q.tail == nil {
		c := q.pool.Get().(*chunk[T])
		q.head, q.tail = c, c
	} else if q.tail.tail == chunkSize {
		c := q.pool.Get().(*chunk[T])
		q.tail.next = c
		q.tail = c
	}
	c := q.tail
	c.elems[c.tail] = v
	c.tail++
	q.n++
	return q.n
}

// Pop removes and returns the oldest element; ok is false when empty.
func (q *ChunkQueue[T]) Pop() (v T, ok bool) {
	c := q.head
	if c == nil || c.head == c.tail {
		return v, false
	}
	var zero T
	v = c.elems[c.head]
	c.elems[c.head] = zero // release the reference for GC
	c.head++
	q.n--
	if c.head == chunkSize {
		// Chunk fully drained: unlink and recycle it. Every slot was
		// already zeroed on its way out, so only the cursors and link need
		// resetting — a full *c = chunk[T]{} here re-memclrs the whole
		// elems array and shows up as ~20% of Post-heavy profiles.
		q.head = c.next
		if q.head == nil {
			q.tail = nil
		}
		c.head, c.tail, c.next = 0, 0, nil
		q.pool.Put(c)
	} else if c.head == c.tail && c.next == nil {
		// Sole, now-empty chunk: rewind in place so a steady
		// produce/consume rhythm reuses it without pool traffic.
		c.head, c.tail = 0, 0
	}
	return v, true
}

// Len returns the number of queued elements.
func (q *ChunkQueue[T]) Len() int { return q.n }

// Drain removes every element, appending them to out in FIFO order, and
// recycles the chunks. It returns the extended slice.
func (q *ChunkQueue[T]) Drain(out []T) []T {
	for c := q.head; c != nil; {
		out = append(out, c.elems[c.head:c.tail]...)
		next := c.next
		*c = chunk[T]{}
		q.pool.Put(c)
		c = next
	}
	q.head, q.tail, q.n = nil, nil, 0
	return out
}

// CasMax raises *a to at least v with a CAS loop, so concurrent observers
// can publish watermarks without a lock and without the check-then-store
// race (two racing stores could otherwise leave a stale lower peak).
func CasMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
