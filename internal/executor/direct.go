package executor

import "repro/internal/gid"

// DirectExecutor runs every posted task synchronously on the calling
// goroutine. It is the executor behind "directives ignored" mode: the
// OpenMP philosophy requires that a program whose directives are disabled
// retains its sequential correctness, and wiring every virtual target to a
// DirectExecutor reproduces exactly that sequential execution.
type DirectExecutor struct {
	name string
}

// NewDirectExecutor returns a DirectExecutor with the given target name.
func NewDirectExecutor(name string) *DirectExecutor { return &DirectExecutor{name: name} }

// Name returns the target name.
func (d *DirectExecutor) Name() string { return d.name }

// Post runs fn immediately on the calling goroutine and returns a finished
// Completion (capturing a panic, if any, like the asynchronous executors).
func (d *DirectExecutor) Post(fn func()) *Completion {
	t := &task{fn: fn}
	runTask(t, d.name, nil)
	return &t.comp
}

// Owns always reports true: with direct execution the calling goroutine is
// by definition "inside" the target, so nested blocks are inlined too.
func (d *DirectExecutor) Owns() bool { return true }

// TryRunPending always reports false; a DirectExecutor has no queue.
func (d *DirectExecutor) TryRunPending() bool { return false }

// Shutdown is a no-op.
func (d *DirectExecutor) Shutdown() {}

var _ Executor = (*DirectExecutor)(nil)

// NewSerialExecutor returns a single-worker pool: a virtual target whose
// thread group is exactly one thread, guaranteeing FIFO execution of posted
// tasks. This is the general-purpose form of thread confinement; the GUI
// event-dispatch thread in package eventloop is a richer special case.
func NewSerialExecutor(name string, reg *gid.Registry) *WorkerPool {
	return NewWorkerPool(name, 1, reg)
}
