package executor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"
)

func TestPriorityOrdering(t *testing.T) {
	var reg gid.Registry
	p := NewPriorityPool("prio", 1, &reg)
	defer p.Shutdown()
	// Block the single worker so the queue builds up, then release and
	// observe drain order.
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started

	var mu sync.Mutex
	var order []string
	log := func(s string) func() {
		return func() { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	var comps []*Completion
	comps = append(comps, p.PostPriority(log("low-1"), Low))
	comps = append(comps, p.PostPriority(log("norm-1"), Normal))
	comps = append(comps, p.PostPriority(log("high-1"), High))
	comps = append(comps, p.PostPriority(log("high-2"), High))
	comps = append(comps, p.PostPriority(log("low-2"), Low))
	comps = append(comps, p.PostPriority(log("norm-2"), Normal))
	close(gate)
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high-1", "high-2", "norm-1", "norm-2", "low-1", "low-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

func TestPriorityClamping(t *testing.T) {
	var reg gid.Registry
	p := NewPriorityPool("prio", 1, &reg)
	defer p.Shutdown()
	if err := p.PostPriority(func() {}, Priority(-5)).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := p.PostPriority(func() {}, Priority(99)).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityPoolExecutorSurface(t *testing.T) {
	var reg gid.Registry
	p := NewPriorityPool("prio", 2, &reg)
	defer p.Shutdown()
	if p.Name() != "prio" || p.Workers() != 2 {
		t.Fatal("identity")
	}
	if p.Owns() {
		t.Fatal("external goroutine owned")
	}
	c := p.Post(func() {
		if !p.Owns() {
			t.Error("worker not owned")
		}
	})
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityTryRunPendingTakesHighestFirst(t *testing.T) {
	var reg gid.Registry
	p := NewPriorityPool("prio", 1, &reg)
	defer p.Shutdown()
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	var ran atomic.Value
	p.PostPriority(func() { ran.Store("low") }, Low)
	p.PostPriority(func() { ran.Store("high") }, High)
	if !p.TryRunPending() {
		t.Fatal("no pending task found")
	}
	if ran.Load() != "high" {
		t.Fatalf("helped task = %v, want high", ran.Load())
	}
	close(gate)
}

func TestPriorityShutdown(t *testing.T) {
	defer leakcheck.Check(t)()
	var reg gid.Registry
	p := NewPriorityPool("prio", 2, &reg)
	var n atomic.Int64
	var comps []*Completion
	for i := 0; i < 30; i++ {
		comps = append(comps, p.PostPriority(func() { n.Add(1) }, Priority(i%3)))
	}
	p.Shutdown()
	if n.Load() != 30 {
		t.Fatalf("drained %d/30", n.Load())
	}
	for _, c := range comps {
		if !c.Finished() {
			t.Fatal("unfinished completion after shutdown")
		}
	}
	if err := p.Post(func() {}).Wait(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post after shutdown: %v", err)
	}
}

func TestPriorityWaitPending(t *testing.T) {
	var reg gid.Registry
	p := NewPriorityPool("prio", 1, &reg)
	defer p.Shutdown()
	cancel := make(chan struct{})
	close(cancel)
	// Nothing pending, cancel closed: returns promptly. A stale notify
	// token may make it return true; both outcomes are legal hints.
	_ = p.WaitPending(cancel)
	gate := make(chan struct{})
	started := make(chan struct{})
	p.Post(func() { close(started); <-gate })
	<-started
	p.Post(func() {})
	if !p.WaitPending(make(chan struct{})) {
		t.Fatal("WaitPending = false with queued work")
	}
	close(gate)
}

func TestPriorityString(t *testing.T) {
	if Low.String() != "low" || Normal.String() != "normal" || High.String() != "high" {
		t.Fatal("names")
	}
	if Priority(42).String() != "invalid" {
		t.Fatal("invalid name")
	}
}

func BenchmarkPriorityPostWait(b *testing.B) {
	var reg gid.Registry
	p := NewPriorityPool("bench", 4, &reg)
	defer p.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PostPriority(func() {}, Priority(i%3)).Wait()
	}
}
