// Package executor provides the thread-pool machinery underneath the
// virtual-target runtime: task submission with completion tracking, a
// fixed-size worker pool (the paper's "worker virtual target"), a serial
// executor, and the help-first scheduling hook (TryRunPending) that
// implements Algorithm 1's logical barrier — "process another runnable task
// in Pyjama's task queue" while an awaited target block is in flight.
//
// All executors in this package register their worker goroutines in a
// gid.Registry so the core runtime can answer the thread-context-awareness
// question "is the encountering thread already a member of this virtual
// target's thread group?" (Algorithm 1, line 6).
//
// Dispatch hot path (PR 3, resharded in PR 8): every worker owns a local
// run-queue shard; producers hash onto shards by goroutine id
// (gid.Current, ~3ns) so concurrent posters stop serializing on one lock.
// Workers pop their own shard LIFO (newest first, cache-warm) with a
// periodic FIFO fairness tick, and steal half a victim's queue FIFO when
// their own shard runs dry. Idle workers park on per-worker wake channels
// and are woken one at a time (no broadcast thundering herd, no wakeup at
// all while a worker is spinning — a spinner polls every shard, so it
// covers them all). See DESIGN.md §15 for the full protocol and its
// invariants; shard.go for the shard/deque mechanics.
package executor

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/gid"
	"repro/internal/sanitize"
	"repro/internal/trace"
)

// ErrShutdown is returned (via Completion.Err) for tasks submitted to an
// executor that has been shut down.
var ErrShutdown = errors.New("executor: shut down")

// ErrWorkerCrashed is the terminal error of a task whose running goroutine
// died before the task body returned — runtime.Goexit (which defeats panic
// isolation) or a panic escaping the recovery wrapper. Without it a crashed
// worker would leave the task's waiters blocked forever; with it in-flight
// invocations fail fast and supervisors (package supervise) learn that a
// worker needs replacing.
var ErrWorkerCrashed = errors.New("executor: worker crashed while running task")

// PanicError wraps a panic value recovered from a task body. Handler panics
// must never kill an executor's workers (a crashed EDT would freeze the
// whole application), so they are captured here instead.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("executor: task panicked: %v", e.Value) }

// completionSpin bounds the cooperative-yield phase of Completion.Wait
// before the waiter falls back to channel parking. Each iteration is one
// runtime.Gosched — on a busy scheduler that is exactly the window in which
// a short target block finishes, so the common Invoke(Wait) round trip
// skips the park/unpark pair entirely.
const completionSpin = 16

// Completion tracks the lifecycle of one submitted task. It is created by
// Post and completed exactly once, either when the task body returns or when
// the executor rejects it.
//
// The done channel is allocated lazily on first Done call: fire-and-forget
// submissions (Nowait mode — the dominant traffic under load) never touch
// it, which removes a channel allocation from every Post.
type Completion struct {
	state  atomic.Uint32 // 0 = pending, 1 = finished
	closed atomic.Bool   // guards close(done) exactly once
	err    atomic.Pointer[error]
	done   atomic.Pointer[chan struct{}]
}

const (
	compPending  uint32 = 0
	compFinished uint32 = 1
)

func newCompletion() *Completion {
	return &Completion{}
}

// NewCompletedCompletion returns an already-finished Completion with the
// given error (nil for success). Used for synchronously executed blocks.
func NewCompletedCompletion(err error) *Completion {
	c := newCompletion()
	c.complete(err)
	return c
}

// NewPendingCompletion returns an unfinished Completion together with the
// function that completes it (callable exactly once). Other executor
// implementations — the event loop in package eventloop — use this to
// participate in the same completion protocol as WorkerPool.
func NewPendingCompletion() (*Completion, func(error)) {
	c := newCompletion()
	return c, c.complete
}

// RunCaptured invokes fn, converting a panic into a *PanicError. It is the
// panic-isolation wrapper shared by every executor: a handler crash must
// never take down the dispatching goroutine.
func RunCaptured(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	fn()
	return nil
}

// complete finishes the completion: the error (if any) is published before
// the finished flag so any observer of state==finished sees it.
func (c *Completion) complete(err error) {
	if err != nil {
		c.err.Store(&err)
	}
	c.state.Store(compFinished)
	if p := c.done.Load(); p != nil {
		if c.closed.CompareAndSwap(false, true) {
			close(*p)
		}
	}
}

// Done returns a channel closed when the task has finished (or was rejected).
func (c *Completion) Done() <-chan struct{} {
	for {
		if p := c.done.Load(); p != nil {
			return *p
		}
		ch := make(chan struct{})
		if c.done.CompareAndSwap(nil, &ch) {
			// complete may have run between its done load and our CAS; the
			// closed flag makes the close race a single-winner handoff.
			if c.state.Load() == compFinished && c.closed.CompareAndSwap(false, true) {
				close(ch)
			}
			return ch
		}
	}
}

// blockHook, when installed, is consulted before any goroutine in this
// package parks waiting for a completion (or, via BlockOn, an arbitrary
// done channel). It is the scheduler seam of the deterministic simulation
// executor (package sim): under simulation every task runs on one
// goroutine, so parking would deadlock — the hook instead pumps the
// simulation scheduler until ready() reports true. A hook that does not
// recognize the calling goroutine returns false and the caller parks
// normally, so real executors and simulated ones coexist in one process.
var blockHook atomic.Pointer[func(ready func() bool) bool]

// SetBlockHook installs h as the process-wide blocking seam and returns a
// function restoring the previous hook. h must return quickly with false
// for goroutines it does not manage; for managed goroutines it must not
// return until ready() is true. Passing nil h removes the hook.
func SetBlockHook(h func(ready func() bool) bool) (restore func()) {
	prev := blockHook.Load()
	if h == nil {
		blockHook.Store(nil)
	} else {
		blockHook.Store(&h)
	}
	return func() { blockHook.Store(prev) }
}

// hookedWait routes the wait through the installed block hook, reporting
// whether the hook handled it (in which case ready() is now true).
func hookedWait(ready func() bool) bool {
	if p := blockHook.Load(); p != nil {
		return (*p)(ready)
	}
	return false
}

// BlockOn parks the calling goroutine until done is closed, routing the
// wait through the block hook first so code that blocks on raw channels
// (core.AwaitDone's no-owner path) still yields to the simulation
// scheduler instead of deadlocking it.
func BlockOn(done <-chan struct{}) {
	ready := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if hookedWait(ready) {
		return
	}
	<-done
}

// Wait blocks until the task has finished and returns its error, if any.
// It yields the processor a few times before parking: short tasks routinely
// finish inside that window, saving both the done-channel allocation and a
// park/unpark round trip through the scheduler.
func (c *Completion) Wait() error {
	if c.state.Load() == compFinished {
		return c.Err()
	}
	if hookedWait(c.Finished) {
		return c.Err()
	}
	for i := 0; i < completionSpin; i++ {
		runtime.Gosched()
		if c.state.Load() == compFinished {
			return c.Err()
		}
	}
	<-c.Done()
	return c.Err()
}

// Finished reports whether the task has completed without blocking.
func (c *Completion) Finished() bool {
	return c.state.Load() == compFinished
}

// Err returns the task's terminal error: nil on success, a *PanicError if the
// body panicked, or ErrShutdown if it was rejected. Err returns nil while the
// task is still running.
func (c *Completion) Err() error {
	p := c.err.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Executor is the common surface of the virtual-target execution engines.
type Executor interface {
	// Name returns the virtual target name this executor is registered as.
	Name() string
	// Post submits fn for asynchronous execution and returns its Completion.
	// Post never blocks on the task itself (it may briefly contend on a
	// shard lock, and under sustained overload it yields the processor once
	// per submission so workers can catch up).
	Post(fn func()) *Completion
	// Owns reports whether the calling goroutine is a member of this
	// executor's thread group (Algorithm 1 line 6).
	Owns() bool
	// TryRunPending pops one pending task from this executor's queue and
	// runs it on the calling goroutine, returning true if a task was run.
	// This is the help-first primitive behind the await logical barrier.
	TryRunPending() bool
	// Shutdown stops the executor. Pending tasks are completed; tasks
	// submitted after Shutdown are rejected with ErrShutdown.
	Shutdown()
}

// Stats is a point-in-time snapshot of an executor's counters.
type Stats struct {
	Submitted  int64 // tasks accepted by Post
	Completed  int64 // task bodies that finished (including panics)
	Rejected   int64 // tasks rejected (shutdown / full bounded queue)
	Helped     int64 // tasks run via TryRunPending rather than a worker
	Panics     int64 // task bodies that terminated by panicking
	Crashes    int64 // worker goroutines that died abnormally (Goexit/escaped panic)
	Steals     int64 // tasks moved between shards by work stealing
	Rehomed    int64 // tasks moved off a retiring/crashed worker's shard
	QueuePeak  int64 // high watermark of a single shard's queue length
	QueueDepth int64 // current total queue length across shards
}

// task lifecycle states (see task.state).
const (
	taskQueued int32 = iota
	taskRunning
	taskCancelled
)

// task is one queued unit of work. The Completion is embedded so a plain
// Post is a single allocation; the node is never pooled or reused (callers
// hold pointers into it via the Completion, and PostCancellable's cancel
// closure may outlive the run). runTask nils fn after execution so a
// long-held Completion does not pin the body's captures.
type task struct {
	fn    func()
	state atomic.Int32 // taskQueued -> taskRunning | taskCancelled
	// span and spawn carry causal tracing across the dispatch boundary:
	// span is the task's pre-allocated run-span id (0 when tracing was off
	// at post time) and spawn the submitter's current span. They are set
	// only while a trace sink is installed. Both travel with the task, so
	// a stolen or re-homed task keeps its submitter as the span parent no
	// matter which worker ends up running it.
	span  trace.SpanID
	spawn trace.SpanID
	comp  Completion
}

// prepareSpan allocates the task's run span and records its enqueue against
// the active sink, if any. The OpEnqueue event and the eventual run span
// share one id: exporters use the pair as the cross-goroutine flow edge and
// metrics as the queue-sojourn measurement.
func prepareSpan(t *task, target string) {
	if s := trace.ActiveSink(); s != nil {
		t.span = trace.NewSpanID()
		t.spawn = trace.Current()
		trace.Enqueue(s, t.span, target, t.spawn)
	}
}

// runTask executes t.fn with panic capture and completes the task, reporting
// whether the body ran. A task whose cancellation won the race is skipped
// (its completion was already finished by the canceller). If the running
// goroutine dies mid-task (runtime.Goexit, or a panic that defeats the
// recovery wrapper) the completion is still finished — with
// ErrWorkerCrashed — so waiters never hang on a dead worker.
//
// When the task carries a span, the run is bracketed with begin/end events
// and the span is made current for the body's duration, so blocks that
// invoke further targets parent their spans here. The run span's parent is
// the submitter's span when one was active at post time; otherwise it is
// the runner's current span — which is exactly the awaiting invoke's span
// when the task is executed by a helping thread inside a logical barrier.
func runTask(t *task, target string, onPanic func(any)) bool {
	if !t.state.CompareAndSwap(taskQueued, taskRunning) {
		return false // cancelled while queued
	}
	finished := false
	comp := &t.comp
	defer func() {
		if !finished {
			comp.complete(ErrWorkerCrashed)
		}
	}()
	if span := t.span; span != 0 {
		if sink := trace.ActiveSink(); sink != nil {
			prev := trace.Swap(span)
			parent := t.spawn
			if parent == 0 {
				parent = prev
			}
			trace.BeginSpanID(sink, span, "run", target, parent)
			defer func() {
				trace.Swap(prev)
				trace.EndSpan(sink, span, "run", target)
			}()
		}
	}
	fn := t.fn
	t.fn = nil // drop the body's captures once run; waiters may hold comp long after
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r}
				if onPanic != nil {
					onPanic(r)
				}
			}
		}()
		fn()
	}()
	finished = true
	comp.complete(err)
	return true
}

// parker is one idle worker's parking slot: a single-token wake channel,
// linked into the pool's LIFO idle stack. Waking a worker is one buffered
// channel send to exactly that worker — never a broadcast.
type parker struct {
	wake chan struct{} // cap 1
	next *parker
}

// workerSpins is how many cooperative yields an idle worker burns before
// parking. While any worker is in this phase the pool's spinning counter is
// nonzero and Post skips the wakeup entirely — the spinner polls every
// shard, so it covers them all and will find the task itself.
const workerSpins = 4

// WorkerPool is a fixed-size thread-pool executor: the realization of the
// paper's worker virtual target created by virtual_target_create_worker
// (Table II). Worker goroutines live for the pool's lifetime, mirroring
// "a virtual target is essentially a thread pool executor, and its lifecycle
// lasts throughout the program".
//
// Internally the pool is sharded: each worker owns a local run-queue and
// producers hash onto shards by goroutine id, so multi-producer submission
// scales instead of serializing on one lock. Workers steal from each other
// when their own shard runs dry, and a retiring or crashed worker's shard
// is re-homed (or adopted by a respawned worker) so no queued task is ever
// stranded. A pool constructed with one worker (NewSerialExecutor) keeps
// the strict-FIFO guarantee: its single shard is popped oldest-first.
type WorkerPool struct {
	name     string
	registry *gid.Registry
	// san tracks the worker-goroutine member set under -tags=ompsan:
	// SanCheck cross-validates the gid.Registry's thread-context-awareness
	// answer (core inlines a block only when the encountering goroutine is
	// a member) against this second, independent stamp. No-op untagged.
	san sanitize.Members

	mu       sync.Mutex
	parked   *parker // LIFO stack of idle (parked) workers
	capacity int     // 0 = unbounded
	shutdown bool
	onPanic  func(any)
	onCrash  func(any) // notified when a worker goroutine dies abnormally
	nworkers int       // guarded by mu (Grow/Shrink mutate it)
	shrink   int       // pending worker-exit credits, guarded by mu
	serial   bool      // constructed with one worker: strict FIFO pop order

	// shards is the current shard set, copy-on-write under mu. Producers,
	// stealers, helpers and Stats read it lock-free; a producer that lands
	// on a shard whose dead flag is set re-picks from a fresh snapshot.
	// Invariant: never empty — the last exiting worker orphans its shard
	// in place instead of removing it.
	shards atomic.Pointer[[]*shard]

	// Hot-path state read without the lock.
	stopped    atomic.Bool   // mirror of shutdown, checked inside shard critical sections
	shrinkHint atomic.Int32  // mirror of shrink: lets workers skip mu when no retirement is pending
	nparked    atomic.Int32  // mirror of the parked-stack size
	spinning   atomic.Int32  // workers in the pre-park spin phase
	extWaiters atomic.Int32  // goroutines blocked in WaitPending
	notify     chan struct{} // cap-1 wakeup for WaitPending
	qtotal     atomic.Int64  // total queued tasks; maintained only when capacity > 0

	wg        sync.WaitGroup
	panicWrap func(any) // counts panics, then calls the installed handler

	completed atomic.Int64
	rejected  atomic.Int64
	helped    atomic.Int64
	panics    atomic.Int64
	crashes   atomic.Int64
	steals    atomic.Int64
	rehomed   atomic.Int64
	// carrySub/carryPeak preserve the Submitted/QueuePeak contributions of
	// shards that have since been removed from the snapshot (retire/crash
	// re-homing transfers them under the dying shard's lock).
	carrySub  atomic.Int64
	carryPeak atomic.Int64
}

// NewWorkerPool creates and starts a pool named name with n worker
// goroutines registered in reg (nil means gid.Default). n < 1 is clamped
// to 1, matching Pyjama's requirement that a worker target has at least one
// thread.
func NewWorkerPool(name string, n int, reg *gid.Registry) *WorkerPool {
	return NewBoundedWorkerPool(name, n, 0, reg)
}

// NewBoundedWorkerPool is NewWorkerPool with a queue capacity; Post on a full
// queue rejects the task (capacity 0 = unbounded). Bounded pools are an
// extension beyond the paper used by the saturation/failure-injection tests.
func NewBoundedWorkerPool(name string, n, capacity int, reg *gid.Registry) *WorkerPool {
	if n < 1 {
		n = 1
	}
	if reg == nil {
		reg = &gid.Default
	}
	p := &WorkerPool{name: name, registry: reg, capacity: capacity, nworkers: n,
		serial: n == 1,
		notify: make(chan struct{}, 1)}
	p.panicWrap = func(v any) {
		p.panics.Add(1)
		p.mu.Lock()
		h := p.onPanic
		p.mu.Unlock()
		if h != nil {
			h(v)
		}
	}
	snap := make([]*shard, n)
	workers := make([]*worker, n)
	for i := range snap {
		snap[i] = newShard()
		workers[i] = newWorker(snap[i])
	}
	p.shards.Store(&snap)
	p.wg.Add(n)
	started := make(chan struct{})
	var startOnce sync.Once
	var startedCount atomic.Int64
	total := int64(n)
	for _, w := range workers {
		p.spawnWorker(w, func() {
			if startedCount.Add(1) == total {
				startOnce.Do(func() { close(started) })
			}
		})
	}
	<-started // all workers registered before the pool is visible
	return p
}

// spawnWorker launches one worker goroutine, calling onStarted once it is
// registered. The epilogue distinguishes the two legitimate exits (shutdown
// drain and shrink retirement return normally from workerLoop) from a crash:
// runtime.Goexit or a panic escaping the task recovery unwinds with
// normal == false, which corrects the live-worker count, re-homes or orphans
// the dead worker's shard, and notifies the crash handler so a supervisor
// can replace the worker or restart the pool.
func (p *WorkerPool) spawnWorker(w *worker, onStarted func()) {
	go func() {
		normal := false
		defer func() {
			v := recover()
			w.san.Unbind()
			p.san.Leave()
			p.registry.Deregister()
			if !normal || v != nil {
				p.workerCrashed(w, v)
			}
			p.wg.Done()
		}()
		p.registry.Register(p)
		w.san.Bind("worker", p.name)
		p.san.Join("workerpool", p.name)
		if onStarted != nil {
			onStarted()
		}
		// Label the worker goroutine with its virtual-target name so CPU
		// profiles attribute samples per target (pprof -tags).
		pprof.Do(context.Background(), pprof.Labels("target", p.name), func(context.Context) {
			p.workerLoop(w)
		})
		normal = true
	}()
}

// workerCrashed records an abnormal worker exit: the dead goroutine no
// longer counts toward Workers, its shard is re-homed onto a survivor (or
// left in place as an orphan when it was the last worker — producers can
// still post there, FailPending/Shutdown can still fail what queues up, and
// Grow hands the queue to the next respawned worker), and the crash handler
// (if any) is told why.
func (p *WorkerPool) workerCrashed(w *worker, reason any) {
	p.crashes.Add(1)
	p.mu.Lock()
	p.nworkers--
	h := p.onCrash
	survivors := p.nworkers > 0
	if survivors {
		p.removeShardLocked(w.shard)
	} else {
		w.shard.owned = false
	}
	p.mu.Unlock()
	if survivors {
		p.rehome(w.shard)
		// A consumer died; if work is queued and siblings are parked, hand
		// the wakeup on so the queues keep draining.
		if p.anyWork() {
			p.wakeOne()
		}
	}
	if h != nil {
		h(reason)
	}
}

// SetCrashHandler installs fn to be called whenever a worker goroutine dies
// without going through shutdown or shrink retirement (runtime.Goexit in a
// task body, or a panic that escaped recovery). The reason is the escaped
// panic value, or nil for a plain Goexit. Supervisors use this as their
// failure signal.
func (p *WorkerPool) SetCrashHandler(fn func(any)) {
	p.mu.Lock()
	p.onCrash = fn
	p.mu.Unlock()
}

// Crashes returns the number of worker goroutines that died abnormally.
func (p *WorkerPool) Crashes() int64 { return p.crashes.Load() }

// Name returns the pool's virtual-target name.
func (p *WorkerPool) Name() string { return p.name }

// SetPanicHandler installs fn to be called with the recovered value whenever
// a task body panics (in addition to the panic being captured in the task's
// Completion). Must be called before tasks that may panic are submitted.
func (p *WorkerPool) SetPanicHandler(fn func(any)) {
	p.mu.Lock()
	p.onPanic = fn
	p.mu.Unlock()
}

// removeShardLocked publishes a snapshot without sh. Caller holds mu and is
// responsible for re-homing the shard's queue afterwards.
func (p *WorkerPool) removeShardLocked(sh *shard) {
	old := *p.shards.Load()
	snap := make([]*shard, 0, len(old)-1)
	for _, s := range old {
		if s != sh {
			snap = append(snap, s)
		}
	}
	p.shards.Store(&snap)
}

// rehome marks sh dead, drains it, and moves the backlog onto a live shard.
// Called after sh has been removed from the snapshot (retire, or crash with
// survivors). Producers holding the old snapshot either pushed before the
// dead flag was set — their tasks are in the drained batch — or see dead
// under the shard lock and re-pick; either way nothing is stranded.
func (p *WorkerPool) rehome(sh *shard) {
	sh.mu.Lock()
	sh.dead = true
	moved := sh.q.drain(nil)
	sh.len.Store(0)
	// Fold the dead shard's counters into the pool-level carry while its
	// lock still excludes late producers, so Stats stays exact.
	p.carrySub.Add(sh.submitted.Load())
	CasMax(&p.carryPeak, sh.peak.Load())
	sh.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	p.rehomed.Add(int64(len(moved)))
	for {
		dst := (*p.shards.Load())[0]
		dst.mu.Lock()
		if dst.dead {
			dst.mu.Unlock()
			continue // that one retired too; the snapshot has moved on
		}
		for _, t := range moved {
			dst.q.pushBack(t)
		}
		n := int64(dst.q.n)
		dst.len.Store(n)
		dst.mu.Unlock()
		CasMax(&dst.peak, n)
		break
	}
	p.wakeOne()
}

// wakeOne pops one parked worker and hands it a wake token (no-op when
// nobody is parked).
func (p *WorkerPool) wakeOne() {
	p.mu.Lock()
	pk := p.popParkerLocked()
	p.mu.Unlock()
	if pk != nil {
		pk.wake <- struct{}{}
	}
}

// popParkerLocked removes one parked worker from the idle stack (nil if
// none). Callers send its wake token after releasing the lock.
func (p *WorkerPool) popParkerLocked() *parker {
	pk := p.parked
	if pk != nil {
		p.parked = pk.next
		pk.next = nil
		p.nparked.Add(-1)
	}
	return pk
}

// takeAllParkedLocked detaches the whole idle stack for a broadcast-style
// wake (shutdown, shrink). Tokens are sent after releasing the lock.
func (p *WorkerPool) takeAllParkedLocked() *parker {
	head := p.parked
	p.parked = nil
	if head != nil {
		p.nparked.Store(0)
	}
	return head
}

func wakeAll(head *parker) {
	for pk := head; pk != nil; {
		next := pk.next
		pk.next = nil
		pk.wake <- struct{}{}
		pk = next
	}
}

// anyWork reports whether any shard has queued tasks (lock-free scan of the
// per-shard length mirrors).
func (p *WorkerPool) anyWork() bool {
	for _, sh := range *p.shards.Load() {
		if sh.len.Load() > 0 {
			return true
		}
	}
	return false
}

// spin is the pre-park idle phase: a few cooperative yields while polling
// every shard's length. While at least one worker spins, Post skips the
// wake token entirely — the cheapest possible wakeup is the one never sent.
func (p *WorkerPool) spin() {
	p.spinning.Add(1)
	for i := 0; i < workerSpins; i++ {
		// Poll only the atomic lengths — no locks. Shutdown during the spin
		// just costs a few extra yields: the loop re-checks it after.
		if p.anyWork() {
			break
		}
		runtime.Gosched()
	}
	p.spinning.Add(-1)
}

// pickShard hashes the calling goroutine onto a shard (submitter affinity):
// the same producer keeps hitting the same shard, so an uncontended
// producer/worker pair shares one lock and one cache line, and disjoint
// producers spread across disjoint locks.
func (p *WorkerPool) pickShard() *shard {
	snap := *p.shards.Load()
	if len(snap) == 1 {
		return snap[0]
	}
	return snap[int(uint64(gid.Current())%uint64(len(snap)))]
}

// popLocal takes one task from the worker's own shard: LIFO (newest first)
// for cache warmth, with every fairnessTick'th pop taking the oldest task
// instead so the tail cannot starve. Serial pools (one worker at
// construction) always pop oldest-first — that is the strict-FIFO guarantee
// NewSerialExecutor documents.
func (p *WorkerPool) popLocal(w *worker) *task {
	w.san.Check("popLocal on " + p.name)
	sh := w.shard
	if sh.len.Load() == 0 {
		return nil
	}
	sh.mu.Lock()
	if sh.q.n == 0 {
		sh.mu.Unlock()
		return nil
	}
	var t *task
	if p.serial {
		t = sh.q.popFront()
	} else {
		w.ticks++
		if w.ticks%fairnessTick == 0 {
			t = sh.q.popFront()
		} else {
			t = sh.q.popBack()
		}
	}
	sh.len.Store(int64(sh.q.n))
	sh.mu.Unlock()
	return t
}

// steal scans the other shards for a victim and moves half its queue (capped
// at stealBatchMax) onto the thief's shard, returning the first stolen task
// to run immediately. Stealing pops the victim's queue oldest-first: the
// victim keeps its cache-warm newest tasks, the thief takes the aged tail.
// The batch is staged in the worker's private buffer between the two lock
// sections — never hold two shard locks at once (see shard.go).
func (p *WorkerPool) steal(w *worker) *task {
	w.san.Check("steal on " + p.name)
	snap := *p.shards.Load()
	n := len(snap)
	if n <= 1 {
		return nil
	}
	start := 0
	for i, s := range snap {
		if s == w.shard {
			start = i
			break
		}
	}
	for k := 1; k <= n; k++ {
		v := snap[(start+k)%n]
		if v == w.shard || v.len.Load() == 0 {
			continue
		}
		v.mu.Lock()
		if v.dead || v.q.n == 0 {
			v.mu.Unlock()
			continue
		}
		take := (v.q.n + 1) / 2
		if take > stealBatchMax {
			take = stealBatchMax
		}
		first := v.q.popFront()
		buf := w.stealBuf[:0]
		for i := 1; i < take; i++ {
			buf = append(buf, v.q.popFront())
		}
		v.len.Store(int64(v.q.n))
		v.mu.Unlock()
		if len(buf) > 0 {
			sh := w.shard
			sh.mu.Lock()
			for _, t := range buf {
				sh.q.pushBack(t)
			}
			ln := int64(sh.q.n)
			sh.len.Store(ln)
			sh.mu.Unlock()
			CasMax(&sh.peak, ln)
			for i := range buf {
				buf[i] = nil
			}
			w.stealBuf = buf[:0]
		}
		p.steals.Add(int64(take))
		return first
	}
	return nil
}

// execute runs one task the worker (or a crashed sibling's re-homed queue)
// handed us, maintaining the bounded-capacity accounting: the task leaves
// the queue here whether it runs or was already cancelled.
func (p *WorkerPool) execute(t *task) {
	if p.capacity > 0 {
		p.qtotal.Add(-1)
	}
	if runTask(t, p.name, p.panicWrap) {
		p.completed.Add(1)
	}
}

// wakeForBacklog propagates the consumer wakeup: a worker that just took a
// task and can see more queued work wakes one parked sibling (unless a
// spinner already covers the shards). This is how a single producer
// flooding one shard fans out across the whole pool.
func (p *WorkerPool) wakeForBacklog() {
	if p.nparked.Load() > 0 && p.spinning.Load() == 0 && p.anyWork() {
		p.wakeOne()
	}
}

// tryRetire consumes one pending Shrink credit, removing this worker and
// re-homing its shard. Reports whether the worker should exit.
func (p *WorkerPool) tryRetire(w *worker) bool {
	p.mu.Lock()
	if p.shrink == 0 {
		p.mu.Unlock()
		return false
	}
	if p.nworkers <= 1 {
		// A worker crash can leave a Shrink credit outstanding with only
		// one worker alive. The last worker never retires — that would
		// empty the shard snapshot (invariant: never empty) and strand
		// every future Post. The crash already delivered the headcount
		// reduction the credit asked for, so cancel what remains instead
		// of letting the survivor consume it (a pending credit also keeps
		// park returning early, which would busy-spin the survivor).
		p.shrink = 0
		p.shrinkHint.Store(0)
		p.mu.Unlock()
		return false
	}
	p.shrink--
	p.shrinkHint.Store(int32(p.shrink))
	p.nworkers--
	p.removeShardLocked(w.shard)
	p.mu.Unlock()
	p.rehome(w.shard)
	return true
}

// park publishes the worker on the idle stack and blocks until a producer
// (or shutdown/shrink/crash handling) hands it a wake token. The
// no-lost-wakeup argument is a Dekker pair on sequentially consistent
// atomics: the producer stores the shard length and then loads nparked; the
// parking worker increments nparked and then re-scans the shard lengths.
// Whatever the interleaving, at least one side sees the other — either the
// producer sees the parked worker and wakes it, or the worker sees the task
// and unparks itself.
func (p *WorkerPool) park(w *worker) {
	p.mu.Lock()
	if p.shutdown || p.shrink > 0 {
		p.mu.Unlock()
		return // let the main loop handle the signal
	}
	w.pk.next = p.parked
	p.parked = w.pk
	p.nparked.Add(1)
	p.mu.Unlock()
	if p.anyWork() || p.stopped.Load() {
		// Work (or shutdown) raced our parking: take ourselves back off the
		// stack. If someone already popped us, their token is in flight —
		// fall through and consume it.
		p.mu.Lock()
		removed := false
		for pp := &p.parked; *pp != nil; pp = &(*pp).next {
			if *pp == w.pk {
				*pp = w.pk.next
				w.pk.next = nil
				p.nparked.Add(-1)
				removed = true
				break
			}
		}
		p.mu.Unlock()
		if removed {
			return
		}
	}
	<-w.pk.wake
}

// workerLoop is one worker's life: pop the local shard (LIFO with a
// fairness tick), steal half a sibling's queue when dry, spin briefly, then
// park until a producer hands over a token. Retirement credits and shutdown
// are checked between tasks.
func (p *WorkerPool) workerLoop(w *worker) {
	spun := false
	for {
		if p.shrinkHint.Load() > 0 && p.tryRetire(w) {
			return
		}
		t := p.popLocal(w)
		if t == nil {
			t = p.steal(w)
		}
		if t != nil {
			spun = false
			p.wakeForBacklog()
			p.execute(t)
			continue
		}
		if p.stopped.Load() {
			// Drain-before-exit: only leave once no shard (ours or anyone
			// else's — stealing reaches them all) has work. Tasks posted
			// concurrently with Shutdown that slip past this scan are
			// failed by Shutdown's FailPending backstop.
			if !p.anyWork() {
				return
			}
			continue
		}
		if !spun {
			p.spin()
			spun = true
			continue
		}
		p.park(w)
		spun = false
	}
}

// enqueue is the shared admission path of Post, PostCancellable and the
// test seams: reject on shutdown or a full bounded pool, otherwise push to
// the picked shard, publish the new length and watermark, wake at most one
// parked worker (none if a spinner will find the task anyway), and apply
// soft backpressure when the shard is badly backlogged.
func (p *WorkerPool) enqueue(t *task, pick func() *shard) bool {
	c := &t.comp
	if p.stopped.Load() {
		p.rejected.Add(1)
		c.complete(ErrShutdown)
		return false
	}
	if p.capacity > 0 {
		// Reserve a queue slot with add-then-check: exact admission without
		// a global lock.
		if p.qtotal.Add(1) > int64(p.capacity) {
			p.qtotal.Add(-1)
			p.rejected.Add(1)
			c.complete(ErrQueueFull)
			return false
		}
	}
	var n int64
	for {
		sh := pick()
		sh.mu.Lock()
		if sh.dead {
			sh.mu.Unlock()
			continue // worker retired under us; re-pick from the new snapshot
		}
		if p.stopped.Load() {
			// Checked inside the shard critical section: FailPending drains
			// each shard under this same lock after stopped is set, so a
			// task either lands before the drain (and is failed there) or
			// the producer sees stopped here. No stranding window.
			sh.mu.Unlock()
			if p.capacity > 0 {
				p.qtotal.Add(-1)
			}
			p.rejected.Add(1)
			c.complete(ErrShutdown)
			return false
		}
		sh.q.pushBack(t)
		n = int64(sh.q.n)
		sh.len.Store(n)
		sh.submitted.Add(1)
		sh.mu.Unlock()
		CasMax(&sh.peak, n)
		break
	}
	if p.spinning.Load() == 0 && p.nparked.Load() > 0 {
		p.wakeOne()
	}
	if p.extWaiters.Load() > 0 {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
	if n > backpressureDepth {
		// Soft flow control: the shard is far ahead of its consumers, so
		// yield once. A flood of producers then hands the processor to the
		// workers instead of growing the backlog (and the live heap)
		// without bound; an occasional deep post just pays one Gosched.
		runtime.Gosched()
	}
	return true
}

// Post submits fn for execution by the pool.
func (p *WorkerPool) Post(fn func()) *Completion {
	t := &task{fn: fn}
	prepareSpan(t, p.name)
	p.enqueue(t, p.pickShard)
	return &t.comp
}

// postToShard is the white-box test seam behind the stealing and re-homing
// regressions: like Post, but pinned to shard index i of the current
// snapshot (modulo its size) instead of hashing by goroutine id.
func (p *WorkerPool) postToShard(i int, fn func()) *Completion {
	t := &task{fn: fn}
	prepareSpan(t, p.name)
	p.enqueue(t, func() *shard {
		snap := *p.shards.Load()
		return snap[i%len(snap)]
	})
	return &t.comp
}

// WaitPending blocks until the pool has at least one queued task or cancel
// fires, reporting whether pending work may be available. A true return is a
// hint, not a reservation — the caller should follow with TryRunPending and
// be prepared for it to find nothing (a worker may have taken the task).
// The await logical barrier alternates TryRunPending / WaitPending so a
// blocked encountering thread sleeps instead of spinning.
func (p *WorkerPool) WaitPending(cancel <-chan struct{}) bool {
	if p.anyWork() {
		return true
	}
	// Announce before the re-check: Post publishes the new shard length
	// before reading extWaiters, so one side always sees the other.
	p.extWaiters.Add(1)
	defer p.extWaiters.Add(-1)
	if p.anyWork() {
		return true
	}
	select {
	case <-p.notify:
		return true
	case <-cancel:
		return false
	}
}

// ErrQueueFull is returned for tasks rejected by a bounded pool whose queue
// is at capacity.
var ErrQueueFull = errors.New("executor: queue full")

// Owns reports whether the calling goroutine is one of the pool's workers
// (or is currently inlined inside one of its tasks).
func (p *WorkerPool) Owns() bool { return p.registry.IsOwnedBy(p) }

// SanCheck asserts (under -tags=ompsan) that the calling goroutine is one
// of the pool's worker goroutines, panicking with both stacks on
// violation. core.Runtime calls it when thread-context awareness chooses
// to inline a block, so the registry's membership answer is cross-checked
// against the sanitizer's independent stamp. No-op untagged.
func (p *WorkerPool) SanCheck(op string) { p.san.Check(op) }

// TryRunPending pops one queued task and runs it on the calling goroutine.
// The paper's await barrier uses this so a worker waiting on a nested target
// block keeps draining the pool's queue instead of idling. Helpers always
// take the oldest task of the first non-empty shard (starting from the
// caller's affinity shard): help is FIFO, like a steal. The empty case is
// answered from the atomic shard lengths without touching any lock.
func (p *WorkerPool) TryRunPending() bool {
	snap := *p.shards.Load()
	n := len(snap)
	start := 0
	if n > 1 {
		start = int(uint64(gid.Current()) % uint64(n))
	}
	for k := 0; k < n; k++ {
		sh := snap[(start+k)%n]
		if sh.len.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		if sh.q.n == 0 {
			sh.mu.Unlock()
			continue
		}
		t := sh.q.popFront()
		sh.len.Store(int64(sh.q.n))
		sh.mu.Unlock()
		if p.capacity > 0 {
			p.qtotal.Add(-1)
		}
		ran := runTask(t, p.name, p.panicWrap)
		if ran {
			p.completed.Add(1)
			p.helped.Add(1)
		}
		return ran
	}
	return false
}

// Shutdown stops accepting tasks, drains the queues, and joins all workers.
// If every worker has crashed there is nobody left to drain: the queued
// tasks are then failed with ErrShutdown instead of being stranded forever.
func (p *WorkerPool) Shutdown() {
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		p.wg.Wait()
		p.FailPending(ErrShutdown)
		return
	}
	p.shutdown = true
	p.stopped.Store(true)
	head := p.takeAllParkedLocked()
	p.mu.Unlock()
	wakeAll(head)
	p.wg.Wait()
	p.FailPending(ErrShutdown)
}

// FailPending removes every queued-but-not-started task from every shard
// (including the orphaned shard of a fully-crashed pool) and completes it
// with err, returning how many were failed. Running tasks are untouched.
// Supervisors call this when replacing a crashed pool so queued invocations
// fail fast with a typed error instead of waiting on workers that no longer
// exist; Shutdown calls it as a backstop after joining workers.
func (p *WorkerPool) FailPending(err error) int {
	snap := *p.shards.Load()
	n := 0
	for _, sh := range snap {
		sh.mu.Lock()
		tasks := sh.q.drain(nil)
		sh.len.Store(0)
		sh.mu.Unlock()
		for _, t := range tasks {
			if p.capacity > 0 {
				p.qtotal.Add(-1)
			}
			if t.state.CompareAndSwap(taskQueued, taskCancelled) {
				t.comp.complete(err)
				n++
			}
		}
	}
	if n > 0 {
		p.rejected.Add(int64(n))
	}
	return n
}

// Workers returns the current number of worker goroutines (Grow and Shrink
// change it at runtime; retiring workers are counted until they actually
// exit).
func (p *WorkerPool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nworkers
}

// Grow adds n worker goroutines to the pool — virtual targets "define
// their scale", and an application may widen a worker target when load
// demands it. Orphaned shards (their worker crashed with nobody left) are
// adopted before fresh shards are created: a supervisor respawning a worker
// with Grow(1) hands it the crashed worker's still-queued tasks. No-op for
// n <= 0 or after Shutdown.
func (p *WorkerPool) Grow(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	p.nworkers += n
	// Add under the lock: Shutdown flips p.shutdown under the same lock
	// before calling wg.Wait, so the counter can never grow concurrently
	// with the join.
	p.wg.Add(n)
	old := *p.shards.Load()
	snap := make([]*shard, len(old), len(old)+n)
	copy(snap, old)
	workers := make([]*worker, 0, n)
	for _, sh := range snap {
		if len(workers) == n {
			break
		}
		if !sh.owned {
			sh.owned = true
			workers = append(workers, newWorker(sh))
		}
	}
	for len(workers) < n {
		sh := newShard()
		snap = append(snap, sh)
		workers = append(workers, newWorker(sh))
	}
	p.shards.Store(&snap)
	p.mu.Unlock()
	started := make(chan struct{}, n)
	for _, w := range workers {
		p.spawnWorker(w, func() { started <- struct{}{} })
	}
	for range workers {
		<-started
	}
}

// Resize sets the pool's worker count to n (clamped to at least 1), growing
// or shrinking as needed. Like Grow and Shrink it is a documented no-op
// after Shutdown, so concurrent Resize/Shutdown is safe: whichever wins the
// pool's lock decides, and a Resize that loses changes nothing.
func (p *WorkerPool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	// Workers already scheduled to retire don't count toward the target.
	cur := p.nworkers - p.shrink
	p.mu.Unlock()
	switch {
	case n > cur:
		p.Grow(n - cur)
	case n < cur:
		p.Shrink(cur - n)
	}
}

// Shrink retires up to n workers once they become idle (a busy worker
// finishes its current task first). A retiring worker re-homes its local
// queue onto a survivor before exiting, so no queued task is orphaned. The
// pool never drops below one worker. It returns the number of retirements
// actually scheduled.
func (p *WorkerPool) Shrink(n int) int {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return 0
	}
	avail := p.nworkers - p.shrink - 1
	if n > avail {
		n = avail
	}
	if n <= 0 {
		p.mu.Unlock()
		return 0
	}
	p.shrink += n
	p.shrinkHint.Store(int32(p.shrink))
	// Parked workers must come back to the lock to see their retirement
	// credit; spinning or busy workers observe it on their next pass.
	head := p.takeAllParkedLocked()
	p.mu.Unlock()
	wakeAll(head)
	return n
}

// ErrCanceled is the terminal error of a task cancelled before it started.
var ErrCanceled = errors.New("executor: task canceled")

// PostCancellable submits fn like Post and additionally returns a cancel
// function. Cancel returns true if it won the race — the task had not
// started and will never run (its Completion finishes with ErrCanceled) —
// and false if the task already started or finished.
func (p *WorkerPool) PostCancellable(fn func()) (*Completion, func() bool) {
	t := &task{fn: fn}
	prepareSpan(t, p.name)
	c := &t.comp
	if !p.enqueue(t, p.pickShard) {
		return c, func() bool { return false }
	}
	cancel := func() bool {
		if !t.state.CompareAndSwap(taskQueued, taskCancelled) {
			return false
		}
		c.complete(ErrCanceled)
		return true
	}
	return c, cancel
}

var _ Executor = (*WorkerPool)(nil)

// Stats returns a snapshot of the pool's counters. Submitted and QueuePeak
// are aggregated from the live shards plus the carried-over contribution of
// shards whose workers have retired or crashed; QueueDepth is the sum of
// the live shard lengths.
func (p *WorkerPool) Stats() Stats {
	snap := *p.shards.Load()
	var depth, sub int64
	peak := p.carryPeak.Load()
	for _, sh := range snap {
		depth += sh.len.Load()
		sub += sh.submitted.Load()
		if pk := sh.peak.Load(); pk > peak {
			peak = pk
		}
	}
	return Stats{
		Submitted:  p.carrySub.Load() + sub,
		Completed:  p.completed.Load(),
		Rejected:   p.rejected.Load(),
		Helped:     p.helped.Load(),
		Panics:     p.panics.Load(),
		Crashes:    p.crashes.Load(),
		Steals:     p.steals.Load(),
		Rehomed:    p.rehomed.Load(),
		QueuePeak:  peak,
		QueueDepth: depth,
	}
}
