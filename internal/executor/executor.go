// Package executor provides the thread-pool machinery underneath the
// virtual-target runtime: task submission with completion tracking, a
// fixed-size worker pool (the paper's "worker virtual target"), a serial
// executor, and the help-first scheduling hook (TryRunPending) that
// implements Algorithm 1's logical barrier — "process another runnable task
// in Pyjama's task queue" while an awaited target block is in flight.
//
// All executors in this package register their worker goroutines in a
// gid.Registry so the core runtime can answer the thread-context-awareness
// question "is the encountering thread already a member of this virtual
// target's thread group?" (Algorithm 1, line 6).
package executor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gid"
)

// ErrShutdown is returned (via Completion.Err) for tasks submitted to an
// executor that has been shut down.
var ErrShutdown = errors.New("executor: shut down")

// ErrWorkerCrashed is the terminal error of a task whose running goroutine
// died before the task body returned — runtime.Goexit (which defeats panic
// isolation) or a panic escaping the recovery wrapper. Without it a crashed
// worker would leave the task's waiters blocked forever; with it in-flight
// invocations fail fast and supervisors (package supervise) learn that a
// worker needs replacing.
var ErrWorkerCrashed = errors.New("executor: worker crashed while running task")

// PanicError wraps a panic value recovered from a task body. Handler panics
// must never kill an executor's workers (a crashed EDT would freeze the
// whole application), so they are captured here instead.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("executor: task panicked: %v", e.Value) }

// Completion tracks the lifecycle of one submitted task. It is created by
// Post and completed exactly once, either when the task body returns or when
// the executor rejects it.
type Completion struct {
	done chan struct{}
	err  atomic.Pointer[error]
}

func newCompletion() *Completion {
	return &Completion{done: make(chan struct{})}
}

// NewCompletedCompletion returns an already-finished Completion with the
// given error (nil for success). Used for synchronously executed blocks.
func NewCompletedCompletion(err error) *Completion {
	c := newCompletion()
	c.complete(err)
	return c
}

// NewPendingCompletion returns an unfinished Completion together with the
// function that completes it (callable exactly once). Other executor
// implementations — the event loop in package eventloop — use this to
// participate in the same completion protocol as WorkerPool.
func NewPendingCompletion() (*Completion, func(error)) {
	c := newCompletion()
	return c, c.complete
}

// RunCaptured invokes fn, converting a panic into a *PanicError. It is the
// panic-isolation wrapper shared by every executor: a handler crash must
// never take down the dispatching goroutine.
func RunCaptured(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	fn()
	return nil
}

func (c *Completion) complete(err error) {
	if err != nil {
		c.err.Store(&err)
	}
	close(c.done)
}

// Done returns a channel closed when the task has finished (or was rejected).
func (c *Completion) Done() <-chan struct{} { return c.done }

// Wait blocks until the task has finished and returns its error, if any.
func (c *Completion) Wait() error {
	<-c.done
	return c.Err()
}

// Finished reports whether the task has completed without blocking.
func (c *Completion) Finished() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Err returns the task's terminal error: nil on success, a *PanicError if the
// body panicked, or ErrShutdown if it was rejected. Err returns nil while the
// task is still running.
func (c *Completion) Err() error {
	p := c.err.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Executor is the common surface of the virtual-target execution engines.
type Executor interface {
	// Name returns the virtual target name this executor is registered as.
	Name() string
	// Post submits fn for asynchronous execution and returns its Completion.
	// Post never blocks on the task itself (it may briefly contend on the
	// queue lock).
	Post(fn func()) *Completion
	// Owns reports whether the calling goroutine is a member of this
	// executor's thread group (Algorithm 1 line 6).
	Owns() bool
	// TryRunPending pops one pending task from this executor's queue and
	// runs it on the calling goroutine, returning true if a task was run.
	// This is the help-first primitive behind the await logical barrier.
	TryRunPending() bool
	// Shutdown stops the executor. Pending tasks are completed; tasks
	// submitted after Shutdown are rejected with ErrShutdown.
	Shutdown()
}

// Stats is a point-in-time snapshot of an executor's counters.
type Stats struct {
	Submitted  int64 // tasks accepted by Post
	Completed  int64 // task bodies that finished (including panics)
	Rejected   int64 // tasks rejected (shutdown / full bounded queue)
	Helped     int64 // tasks run via TryRunPending rather than a worker
	Panics     int64 // task bodies that terminated by panicking
	Crashes    int64 // worker goroutines that died abnormally (Goexit/escaped panic)
	QueuePeak  int64 // high watermark of queue length
	QueueDepth int64 // current queue length
}

// task lifecycle states (see task.state).
const (
	taskQueued int32 = iota
	taskRunning
	taskCancelled
)

type task struct {
	fn    func()
	comp  *Completion
	state atomic.Int32 // taskQueued -> taskRunning | taskCancelled
}

// runTask executes t.fn with panic capture and completes t.comp, reporting
// whether the body ran. A task whose cancellation won the race is skipped
// (its completion was already finished by the canceller). If the running
// goroutine dies mid-task (runtime.Goexit, or a panic that defeats the
// recovery wrapper) the completion is still finished — with
// ErrWorkerCrashed — so waiters never hang on a dead worker.
func runTask(t *task, onPanic func(any)) bool {
	if !t.state.CompareAndSwap(taskQueued, taskRunning) {
		return false // cancelled while queued
	}
	finished := false
	defer func() {
		if !finished {
			t.comp.complete(ErrWorkerCrashed)
		}
	}()
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r}
				if onPanic != nil {
					onPanic(r)
				}
			}
		}()
		t.fn()
	}()
	finished = true
	t.comp.complete(err)
	return true
}

// WorkerPool is a fixed-size thread-pool executor: the realization of the
// paper's worker virtual target created by virtual_target_create_worker
// (Table II). Worker goroutines live for the pool's lifetime, mirroring
// "a virtual target is essentially a thread pool executor, and its lifecycle
// lasts throughout the program".
type WorkerPool struct {
	name     string
	registry *gid.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*task
	capacity int // 0 = unbounded
	shutdown bool
	notify   chan struct{} // cap-1 wakeup for WaitPending

	wg      sync.WaitGroup
	onPanic func(any)
	onCrash func(any) // notified when a worker goroutine dies abnormally

	nworkers int // guarded by mu (Grow/Shrink mutate it)
	shrink   int // pending worker-exit credits, guarded by mu

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	helped    atomic.Int64
	panics    atomic.Int64
	crashes   atomic.Int64
	peak      atomic.Int64
}

// NewWorkerPool creates and starts a pool named name with n worker
// goroutines registered in reg (nil means gid.Default). n < 1 is clamped
// to 1, matching Pyjama's requirement that a worker target has at least one
// thread.
func NewWorkerPool(name string, n int, reg *gid.Registry) *WorkerPool {
	return NewBoundedWorkerPool(name, n, 0, reg)
}

// NewBoundedWorkerPool is NewWorkerPool with a queue capacity; Post on a full
// queue rejects the task (capacity 0 = unbounded). Bounded pools are an
// extension beyond the paper used by the saturation/failure-injection tests.
func NewBoundedWorkerPool(name string, n, capacity int, reg *gid.Registry) *WorkerPool {
	if n < 1 {
		n = 1
	}
	if reg == nil {
		reg = &gid.Default
	}
	p := &WorkerPool{name: name, registry: reg, capacity: capacity, nworkers: n,
		notify: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	started := make(chan struct{})
	var startOnce sync.Once
	var startedCount atomic.Int64
	total := int64(n)
	for i := 0; i < n; i++ {
		p.spawnWorker(func() {
			if startedCount.Add(1) == total {
				startOnce.Do(func() { close(started) })
			}
		})
	}
	<-started // all workers registered before the pool is visible
	return p
}

// spawnWorker launches one worker goroutine, calling onStarted once it is
// registered. The epilogue distinguishes the two legitimate exits (shutdown
// drain and shrink retirement return normally from workerLoop) from a crash:
// runtime.Goexit or a panic escaping the task recovery unwinds with
// normal == false, which corrects the live-worker count and notifies the
// crash handler so a supervisor can replace the worker or restart the pool.
func (p *WorkerPool) spawnWorker(onStarted func()) {
	go func() {
		normal := false
		defer func() {
			v := recover()
			p.registry.Deregister()
			if !normal || v != nil {
				p.workerCrashed(v)
			}
			p.wg.Done()
		}()
		p.registry.Register(p)
		if onStarted != nil {
			onStarted()
		}
		p.workerLoop()
		normal = true
	}()
}

// workerCrashed records an abnormal worker exit: the dead goroutine no
// longer counts toward Workers, and the crash handler (if any) is told why.
func (p *WorkerPool) workerCrashed(reason any) {
	p.crashes.Add(1)
	p.mu.Lock()
	p.nworkers--
	h := p.onCrash
	p.mu.Unlock()
	if h != nil {
		h(reason)
	}
}

// SetCrashHandler installs fn to be called whenever a worker goroutine dies
// without going through shutdown or shrink retirement (runtime.Goexit in a
// task body, or a panic that escaped recovery). The reason is the escaped
// panic value, or nil for a plain Goexit. Supervisors use this as their
// failure signal.
func (p *WorkerPool) SetCrashHandler(fn func(any)) {
	p.mu.Lock()
	p.onCrash = fn
	p.mu.Unlock()
}

// Crashes returns the number of worker goroutines that died abnormally.
func (p *WorkerPool) Crashes() int64 { return p.crashes.Load() }

// Name returns the pool's virtual-target name.
func (p *WorkerPool) Name() string { return p.name }

// SetPanicHandler installs fn to be called with the recovered value whenever
// a task body panics (in addition to the panic being captured in the task's
// Completion). Must be called before tasks that may panic are submitted.
func (p *WorkerPool) SetPanicHandler(fn func(any)) {
	p.mu.Lock()
	p.onPanic = fn
	p.mu.Unlock()
}

func (p *WorkerPool) workerLoop() {
	for {
		p.mu.Lock()
		for {
			if p.shrink > 0 {
				// A Shrink credit retires this worker.
				p.shrink--
				p.nworkers--
				p.mu.Unlock()
				return
			}
			if len(p.queue) > 0 || p.shutdown {
				break
			}
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.shutdown {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		onPanic := p.onPanic
		p.mu.Unlock()
		if runTask(t, p.countPanics(onPanic)) {
			p.completed.Add(1)
		}
	}
}

// countPanics wraps a panic handler so every captured task panic also bumps
// the pool's cumulative panic counter (Stats.Panics), which qos circuit
// breakers read to decide when a target is failing.
func (p *WorkerPool) countPanics(h func(any)) func(any) {
	return func(v any) {
		p.panics.Add(1)
		if h != nil {
			h(v)
		}
	}
}

// Post submits fn for execution by the pool.
func (p *WorkerPool) Post(fn func()) *Completion {
	c := newCompletion()
	t := &task{fn: fn, comp: c}
	p.mu.Lock()
	if p.shutdown || (p.capacity > 0 && len(p.queue) >= p.capacity) {
		full := !p.shutdown
		p.mu.Unlock()
		p.rejected.Add(1)
		if full {
			c.complete(ErrQueueFull)
		} else {
			c.complete(ErrShutdown)
		}
		return c
	}
	p.queue = append(p.queue, t)
	if n := int64(len(p.queue)); n > p.peak.Load() {
		p.peak.Store(n)
	}
	p.cond.Signal()
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	p.submitted.Add(1)
	return c
}

// WaitPending blocks until the pool has at least one queued task or cancel
// fires, reporting whether pending work may be available. A true return is a
// hint, not a reservation — the caller should follow with TryRunPending and
// be prepared for it to find nothing (a worker may have taken the task).
// The await logical barrier alternates TryRunPending / WaitPending so a
// blocked encountering thread sleeps instead of spinning.
func (p *WorkerPool) WaitPending(cancel <-chan struct{}) bool {
	p.mu.Lock()
	n := len(p.queue)
	p.mu.Unlock()
	if n > 0 {
		return true
	}
	select {
	case <-p.notify:
		return true
	case <-cancel:
		return false
	}
}

// ErrQueueFull is returned for tasks rejected by a bounded pool whose queue
// is at capacity.
var ErrQueueFull = errors.New("executor: queue full")

// Owns reports whether the calling goroutine is one of the pool's workers
// (or is currently inlined inside one of its tasks).
func (p *WorkerPool) Owns() bool { return p.registry.IsOwnedBy(p) }

// TryRunPending pops one queued task and runs it on the calling goroutine.
// The paper's await barrier uses this so a worker waiting on a nested target
// block keeps draining the pool's queue instead of idling.
func (p *WorkerPool) TryRunPending() bool {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return false
	}
	t := p.queue[0]
	p.queue = p.queue[1:]
	onPanic := p.onPanic
	p.mu.Unlock()
	if runTask(t, p.countPanics(onPanic)) {
		p.completed.Add(1)
		p.helped.Add(1)
		return true
	}
	return false
}

// Shutdown stops accepting tasks, drains the queue, and joins all workers.
// If every worker has crashed there is nobody left to drain: the queued
// tasks are then failed with ErrShutdown instead of being stranded forever.
func (p *WorkerPool) Shutdown() {
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		p.wg.Wait()
		p.FailPending(ErrShutdown)
		return
	}
	p.shutdown = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.FailPending(ErrShutdown)
}

// FailPending removes every queued-but-not-started task and completes it
// with err, returning how many were failed. Running tasks are untouched.
// Supervisors call this when replacing a crashed pool so queued invocations
// fail fast with a typed error instead of waiting on workers that no longer
// exist; Shutdown calls it as a backstop after joining workers.
func (p *WorkerPool) FailPending(err error) int {
	p.mu.Lock()
	q := p.queue
	p.queue = nil
	p.mu.Unlock()
	n := 0
	for _, t := range q {
		if t.state.CompareAndSwap(taskQueued, taskCancelled) {
			t.comp.complete(err)
			n++
		}
	}
	if n > 0 {
		p.rejected.Add(int64(n))
	}
	return n
}

// Workers returns the current number of worker goroutines (Grow and Shrink
// change it at runtime; retiring workers are counted until they actually
// exit).
func (p *WorkerPool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nworkers
}

// Grow adds n worker goroutines to the pool — virtual targets "define
// their scale", and an application may widen a worker target when load
// demands it. No-op for n <= 0 or after Shutdown.
func (p *WorkerPool) Grow(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	p.nworkers += n
	// Add under the lock: Shutdown flips p.shutdown under the same lock
	// before calling wg.Wait, so the counter can never grow concurrently
	// with the join.
	p.wg.Add(n)
	p.mu.Unlock()
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		p.spawnWorker(func() { started <- struct{}{} })
	}
	for i := 0; i < n; i++ {
		<-started
	}
}

// Resize sets the pool's worker count to n (clamped to at least 1), growing
// or shrinking as needed. Like Grow and Shrink it is a documented no-op
// after Shutdown, so concurrent Resize/Shutdown is safe: whichever wins the
// pool's lock decides, and a Resize that loses changes nothing.
func (p *WorkerPool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	// Workers already scheduled to retire don't count toward the target.
	cur := p.nworkers - p.shrink
	p.mu.Unlock()
	switch {
	case n > cur:
		p.Grow(n - cur)
	case n < cur:
		p.Shrink(cur - n)
	}
}

// Shrink retires up to n workers once they become idle (a busy worker
// finishes its current task first). The pool never drops below one worker.
// It returns the number of retirements actually scheduled.
func (p *WorkerPool) Shrink(n int) int {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shutdown {
		return 0
	}
	avail := p.nworkers - p.shrink - 1
	if n > avail {
		n = avail
	}
	if n <= 0 {
		return 0
	}
	p.shrink += n
	p.cond.Broadcast()
	return n
}

// ErrCanceled is the terminal error of a task cancelled before it started.
var ErrCanceled = errors.New("executor: task canceled")

// PostCancellable submits fn like Post and additionally returns a cancel
// function. Cancel returns true if it won the race — the task had not
// started and will never run (its Completion finishes with ErrCanceled) —
// and false if the task already started or finished.
func (p *WorkerPool) PostCancellable(fn func()) (*Completion, func() bool) {
	c := newCompletion()
	t := &task{fn: fn, comp: c}
	p.mu.Lock()
	if p.shutdown || (p.capacity > 0 && len(p.queue) >= p.capacity) {
		full := !p.shutdown
		p.mu.Unlock()
		p.rejected.Add(1)
		if full {
			c.complete(ErrQueueFull)
		} else {
			c.complete(ErrShutdown)
		}
		return c, func() bool { return false }
	}
	p.queue = append(p.queue, t)
	p.cond.Signal()
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	p.submitted.Add(1)
	cancel := func() bool {
		if !t.state.CompareAndSwap(taskQueued, taskCancelled) {
			return false
		}
		c.complete(ErrCanceled)
		return true
	}
	return c, cancel
}

var _ Executor = (*WorkerPool)(nil)

// Stats returns a snapshot of the pool's counters.
func (p *WorkerPool) Stats() Stats {
	p.mu.Lock()
	depth := int64(len(p.queue))
	p.mu.Unlock()
	return Stats{
		Submitted:  p.submitted.Load(),
		Completed:  p.completed.Load(),
		Rejected:   p.rejected.Load(),
		Helped:     p.helped.Load(),
		Panics:     p.panics.Load(),
		Crashes:    p.crashes.Load(),
		QueuePeak:  p.peak.Load(),
		QueueDepth: depth,
	}
}
