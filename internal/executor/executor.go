// Package executor provides the thread-pool machinery underneath the
// virtual-target runtime: task submission with completion tracking, a
// fixed-size worker pool (the paper's "worker virtual target"), a serial
// executor, and the help-first scheduling hook (TryRunPending) that
// implements Algorithm 1's logical barrier — "process another runnable task
// in Pyjama's task queue" while an awaited target block is in flight.
//
// All executors in this package register their worker goroutines in a
// gid.Registry so the core runtime can answer the thread-context-awareness
// question "is the encountering thread already a member of this virtual
// target's thread group?" (Algorithm 1, line 6).
//
// Dispatch hot path (PR 3): tasks flow through a pooled chunked ring queue
// (queue.go) under a single short critical section; idle workers park on
// per-worker wake channels and are woken one at a time (no broadcast
// thundering herd, no wakeup at all while a worker is spinning); the
// submitted/peak counters live off the lock as atomics with a CAS-max loop.
// See DESIGN.md §10 for the full protocol and its invariants.
package executor

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/gid"
	"repro/internal/trace"
)

// ErrShutdown is returned (via Completion.Err) for tasks submitted to an
// executor that has been shut down.
var ErrShutdown = errors.New("executor: shut down")

// ErrWorkerCrashed is the terminal error of a task whose running goroutine
// died before the task body returned — runtime.Goexit (which defeats panic
// isolation) or a panic escaping the recovery wrapper. Without it a crashed
// worker would leave the task's waiters blocked forever; with it in-flight
// invocations fail fast and supervisors (package supervise) learn that a
// worker needs replacing.
var ErrWorkerCrashed = errors.New("executor: worker crashed while running task")

// PanicError wraps a panic value recovered from a task body. Handler panics
// must never kill an executor's workers (a crashed EDT would freeze the
// whole application), so they are captured here instead.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("executor: task panicked: %v", e.Value) }

// completionSpin bounds the cooperative-yield phase of Completion.Wait
// before the waiter falls back to channel parking. Each iteration is one
// runtime.Gosched — on a busy scheduler that is exactly the window in which
// a short target block finishes, so the common Invoke(Wait) round trip
// skips the park/unpark pair entirely.
const completionSpin = 16

// Completion tracks the lifecycle of one submitted task. It is created by
// Post and completed exactly once, either when the task body returns or when
// the executor rejects it.
//
// The done channel is allocated lazily on first Done call: fire-and-forget
// submissions (Nowait mode — the dominant traffic under load) never touch
// it, which removes a channel allocation from every Post.
type Completion struct {
	state  atomic.Uint32 // 0 = pending, 1 = finished
	closed atomic.Bool   // guards close(done) exactly once
	err    atomic.Pointer[error]
	done   atomic.Pointer[chan struct{}]
}

const (
	compPending  uint32 = 0
	compFinished uint32 = 1
)

func newCompletion() *Completion {
	return &Completion{}
}

// NewCompletedCompletion returns an already-finished Completion with the
// given error (nil for success). Used for synchronously executed blocks.
func NewCompletedCompletion(err error) *Completion {
	c := newCompletion()
	c.complete(err)
	return c
}

// NewPendingCompletion returns an unfinished Completion together with the
// function that completes it (callable exactly once). Other executor
// implementations — the event loop in package eventloop — use this to
// participate in the same completion protocol as WorkerPool.
func NewPendingCompletion() (*Completion, func(error)) {
	c := newCompletion()
	return c, c.complete
}

// RunCaptured invokes fn, converting a panic into a *PanicError. It is the
// panic-isolation wrapper shared by every executor: a handler crash must
// never take down the dispatching goroutine.
func RunCaptured(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	fn()
	return nil
}

// complete finishes the completion: the error (if any) is published before
// the finished flag so any observer of state==finished sees it.
func (c *Completion) complete(err error) {
	if err != nil {
		c.err.Store(&err)
	}
	c.state.Store(compFinished)
	if p := c.done.Load(); p != nil {
		if c.closed.CompareAndSwap(false, true) {
			close(*p)
		}
	}
}

// Done returns a channel closed when the task has finished (or was rejected).
func (c *Completion) Done() <-chan struct{} {
	for {
		if p := c.done.Load(); p != nil {
			return *p
		}
		ch := make(chan struct{})
		if c.done.CompareAndSwap(nil, &ch) {
			// complete may have run between its done load and our CAS; the
			// closed flag makes the close race a single-winner handoff.
			if c.state.Load() == compFinished && c.closed.CompareAndSwap(false, true) {
				close(ch)
			}
			return ch
		}
	}
}

// Wait blocks until the task has finished and returns its error, if any.
// It yields the processor a few times before parking: short tasks routinely
// finish inside that window, saving both the done-channel allocation and a
// park/unpark round trip through the scheduler.
func (c *Completion) Wait() error {
	if c.state.Load() == compFinished {
		return c.Err()
	}
	for i := 0; i < completionSpin; i++ {
		runtime.Gosched()
		if c.state.Load() == compFinished {
			return c.Err()
		}
	}
	<-c.Done()
	return c.Err()
}

// Finished reports whether the task has completed without blocking.
func (c *Completion) Finished() bool {
	return c.state.Load() == compFinished
}

// Err returns the task's terminal error: nil on success, a *PanicError if the
// body panicked, or ErrShutdown if it was rejected. Err returns nil while the
// task is still running.
func (c *Completion) Err() error {
	p := c.err.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Executor is the common surface of the virtual-target execution engines.
type Executor interface {
	// Name returns the virtual target name this executor is registered as.
	Name() string
	// Post submits fn for asynchronous execution and returns its Completion.
	// Post never blocks on the task itself (it may briefly contend on the
	// queue lock).
	Post(fn func()) *Completion
	// Owns reports whether the calling goroutine is a member of this
	// executor's thread group (Algorithm 1 line 6).
	Owns() bool
	// TryRunPending pops one pending task from this executor's queue and
	// runs it on the calling goroutine, returning true if a task was run.
	// This is the help-first primitive behind the await logical barrier.
	TryRunPending() bool
	// Shutdown stops the executor. Pending tasks are completed; tasks
	// submitted after Shutdown are rejected with ErrShutdown.
	Shutdown()
}

// Stats is a point-in-time snapshot of an executor's counters.
type Stats struct {
	Submitted  int64 // tasks accepted by Post
	Completed  int64 // task bodies that finished (including panics)
	Rejected   int64 // tasks rejected (shutdown / full bounded queue)
	Helped     int64 // tasks run via TryRunPending rather than a worker
	Panics     int64 // task bodies that terminated by panicking
	Crashes    int64 // worker goroutines that died abnormally (Goexit/escaped panic)
	QueuePeak  int64 // high watermark of queue length
	QueueDepth int64 // current queue length
}

// task lifecycle states (see task.state).
const (
	taskQueued int32 = iota
	taskRunning
	taskCancelled
)

type task struct {
	fn   func()
	comp *Completion
	// recycle marks nodes with no external references after execution
	// (plain Post). PostCancellable nodes are excluded: their cancel
	// closure may outlive the run, and a pooled reuse would let a stale
	// cancel race a new task's state machine.
	recycle bool
	state   atomic.Int32 // taskQueued -> taskRunning | taskCancelled
	// span and spawn carry causal tracing across the dispatch boundary:
	// span is the task's pre-allocated run-span id (0 when tracing was off
	// at post time) and spawn the submitter's current span. They are set
	// only while a trace sink is installed.
	span  trace.SpanID
	spawn trace.SpanID
}

// prepareSpan allocates the task's run span and records its enqueue against
// the active sink, if any. The OpEnqueue event and the eventual run span
// share one id: exporters use the pair as the cross-goroutine flow edge and
// metrics as the queue-sojourn measurement.
func prepareSpan(t *task, target string) {
	if s := trace.ActiveSink(); s != nil {
		t.span = trace.NewSpanID()
		t.spawn = trace.Current()
		trace.Enqueue(s, t.span, target, t.spawn)
	}
}

// runTask executes t.fn with panic capture and completes t.comp, reporting
// whether the body ran. A task whose cancellation won the race is skipped
// (its completion was already finished by the canceller). If the running
// goroutine dies mid-task (runtime.Goexit, or a panic that defeats the
// recovery wrapper) the completion is still finished — with
// ErrWorkerCrashed — so waiters never hang on a dead worker.
//
// When the task carries a span, the run is bracketed with begin/end events
// and the span is made current for the body's duration, so blocks that
// invoke further targets parent their spans here. The run span's parent is
// the submitter's span when one was active at post time; otherwise it is
// the runner's current span — which is exactly the awaiting invoke's span
// when the task is executed by a helping thread inside a logical barrier.
func runTask(t *task, target string, onPanic func(any)) bool {
	if !t.state.CompareAndSwap(taskQueued, taskRunning) {
		return false // cancelled while queued
	}
	finished := false
	comp := t.comp
	defer func() {
		if !finished {
			comp.complete(ErrWorkerCrashed)
		}
	}()
	if span := t.span; span != 0 {
		if sink := trace.ActiveSink(); sink != nil {
			prev := trace.Swap(span)
			parent := t.spawn
			if parent == 0 {
				parent = prev
			}
			trace.BeginSpanID(sink, span, "run", target, parent)
			defer func() {
				trace.Swap(prev)
				trace.EndSpan(sink, span, "run", target)
			}()
		}
	}
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r}
				if onPanic != nil {
					onPanic(r)
				}
			}
		}()
		t.fn()
	}()
	finished = true
	comp.complete(err)
	return true
}

// parker is one idle worker's parking slot: a single-token wake channel,
// linked into the pool's LIFO idle stack. Waking a worker is one buffered
// channel send to exactly that worker — never a broadcast.
type parker struct {
	wake chan struct{} // cap 1
	next *parker
}

// workerSpins is how many cooperative yields an idle worker burns before
// parking. While any worker is in this phase the pool's spinning counter is
// nonzero and Post skips the wakeup entirely — the spinner will find the
// task itself.
const workerSpins = 4

// WorkerPool is a fixed-size thread-pool executor: the realization of the
// paper's worker virtual target created by virtual_target_create_worker
// (Table II). Worker goroutines live for the pool's lifetime, mirroring
// "a virtual target is essentially a thread pool executor, and its lifecycle
// lasts throughout the program".
type WorkerPool struct {
	name     string
	registry *gid.Registry

	mu       sync.Mutex
	q        ChunkQueue[*task]
	parked   *parker // LIFO stack of idle (parked) workers
	capacity int     // 0 = unbounded
	shutdown bool
	onPanic  func(any)
	onCrash  func(any) // notified when a worker goroutine dies abnormally
	nworkers int       // guarded by mu (Grow/Shrink mutate it)
	shrink   int       // pending worker-exit credits, guarded by mu

	// Hot-path state read without the lock.
	qlen       atomic.Int64  // mirror of q.len(), updated under mu
	spinning   atomic.Int32  // workers in the pre-park spin phase
	extWaiters atomic.Int32  // goroutines blocked in WaitPending
	notify     chan struct{} // cap-1 wakeup for WaitPending
	taskPool   sync.Pool     // *task nodes for the plain Post path

	wg        sync.WaitGroup
	panicWrap func(any) // counts panics, then calls the installed handler

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	helped    atomic.Int64
	panics    atomic.Int64
	crashes   atomic.Int64
	peak      atomic.Int64
}

// NewWorkerPool creates and starts a pool named name with n worker
// goroutines registered in reg (nil means gid.Default). n < 1 is clamped
// to 1, matching Pyjama's requirement that a worker target has at least one
// thread.
func NewWorkerPool(name string, n int, reg *gid.Registry) *WorkerPool {
	return NewBoundedWorkerPool(name, n, 0, reg)
}

// NewBoundedWorkerPool is NewWorkerPool with a queue capacity; Post on a full
// queue rejects the task (capacity 0 = unbounded). Bounded pools are an
// extension beyond the paper used by the saturation/failure-injection tests.
func NewBoundedWorkerPool(name string, n, capacity int, reg *gid.Registry) *WorkerPool {
	if n < 1 {
		n = 1
	}
	if reg == nil {
		reg = &gid.Default
	}
	p := &WorkerPool{name: name, registry: reg, capacity: capacity, nworkers: n,
		q:      NewChunkQueue[*task](),
		notify: make(chan struct{}, 1)}
	p.taskPool.New = func() any { return new(task) }
	p.panicWrap = func(v any) {
		p.panics.Add(1)
		p.mu.Lock()
		h := p.onPanic
		p.mu.Unlock()
		if h != nil {
			h(v)
		}
	}
	p.wg.Add(n)
	started := make(chan struct{})
	var startOnce sync.Once
	var startedCount atomic.Int64
	total := int64(n)
	for i := 0; i < n; i++ {
		p.spawnWorker(func() {
			if startedCount.Add(1) == total {
				startOnce.Do(func() { close(started) })
			}
		})
	}
	<-started // all workers registered before the pool is visible
	return p
}

// spawnWorker launches one worker goroutine, calling onStarted once it is
// registered. The epilogue distinguishes the two legitimate exits (shutdown
// drain and shrink retirement return normally from workerLoop) from a crash:
// runtime.Goexit or a panic escaping the task recovery unwinds with
// normal == false, which corrects the live-worker count and notifies the
// crash handler so a supervisor can replace the worker or restart the pool.
func (p *WorkerPool) spawnWorker(onStarted func()) {
	go func() {
		normal := false
		defer func() {
			v := recover()
			p.registry.Deregister()
			if !normal || v != nil {
				p.workerCrashed(v)
			}
			p.wg.Done()
		}()
		p.registry.Register(p)
		if onStarted != nil {
			onStarted()
		}
		// Label the worker goroutine with its virtual-target name so CPU
		// profiles attribute samples per target (pprof -tags).
		pprof.Do(context.Background(), pprof.Labels("target", p.name), func(context.Context) {
			p.workerLoop()
		})
		normal = true
	}()
}

// workerCrashed records an abnormal worker exit: the dead goroutine no
// longer counts toward Workers, and the crash handler (if any) is told why.
func (p *WorkerPool) workerCrashed(reason any) {
	p.crashes.Add(1)
	p.mu.Lock()
	p.nworkers--
	h := p.onCrash
	// A consumer died; if work is queued and siblings are parked, hand the
	// wakeup on so the queue keeps draining.
	w := p.popParkerLocked()
	p.mu.Unlock()
	if w != nil {
		w.wake <- struct{}{}
	}
	if h != nil {
		h(reason)
	}
}

// SetCrashHandler installs fn to be called whenever a worker goroutine dies
// without going through shutdown or shrink retirement (runtime.Goexit in a
// task body, or a panic that escaped recovery). The reason is the escaped
// panic value, or nil for a plain Goexit. Supervisors use this as their
// failure signal.
func (p *WorkerPool) SetCrashHandler(fn func(any)) {
	p.mu.Lock()
	p.onCrash = fn
	p.mu.Unlock()
}

// Crashes returns the number of worker goroutines that died abnormally.
func (p *WorkerPool) Crashes() int64 { return p.crashes.Load() }

// Name returns the pool's virtual-target name.
func (p *WorkerPool) Name() string { return p.name }

// SetPanicHandler installs fn to be called with the recovered value whenever
// a task body panics (in addition to the panic being captured in the task's
// Completion). Must be called before tasks that may panic are submitted.
func (p *WorkerPool) SetPanicHandler(fn func(any)) {
	p.mu.Lock()
	p.onPanic = fn
	p.mu.Unlock()
}

// popParkerLocked removes one parked worker from the idle stack (nil if
// none). Callers send its wake token after releasing the lock.
func (p *WorkerPool) popParkerLocked() *parker {
	pk := p.parked
	if pk != nil {
		p.parked = pk.next
		pk.next = nil
	}
	return pk
}

// takeAllParkedLocked detaches the whole idle stack for a broadcast-style
// wake (shutdown, shrink). Tokens are sent after releasing the lock.
func (p *WorkerPool) takeAllParkedLocked() *parker {
	head := p.parked
	p.parked = nil
	return head
}

func wakeAll(head *parker) {
	for pk := head; pk != nil; {
		next := pk.next
		pk.next = nil
		pk.wake <- struct{}{}
		pk = next
	}
}

// spin is the pre-park idle phase: a few cooperative yields while polling
// the queue length. While at least one worker spins, Post skips the wake
// token entirely — the cheapest possible wakeup is the one never sent.
func (p *WorkerPool) spin() {
	p.spinning.Add(1)
	for i := 0; i < workerSpins; i++ {
		// Poll only the atomic queue length — no lock. Shutdown during the
		// spin just costs a few extra yields: the locked recheck the worker
		// does before parking observes it.
		if p.qlen.Load() > 0 {
			break
		}
		runtime.Gosched()
	}
	p.spinning.Add(-1)
}

// releaseTask returns a plain-Post node to the pool once nothing references
// it anymore. Cancellable nodes are left to the GC (see task.recycle).
func (p *WorkerPool) releaseTask(t *task) {
	if !t.recycle {
		return
	}
	t.fn, t.comp = nil, nil
	t.span, t.spawn = 0, 0
	p.taskPool.Put(t)
}

// workerLoop is one worker's life: pop-and-run while there is work, spin
// briefly when the queue goes empty, then park on the worker's own wake
// channel until a producer (or shutdown/shrink) hands it a token.
//
// The no-lost-wakeup invariant: a worker only parks after re-checking the
// queue under the pool lock, and producers enqueue under that same lock, so
// a producer either sees the parked worker (and wakes it) or the worker sees
// the task (and never parks).
func (p *WorkerPool) workerLoop() {
	pk := &parker{wake: make(chan struct{}, 1)}
	spun := false
	for {
		p.mu.Lock()
		if p.shrink > 0 {
			// A Shrink credit retires this worker. If work remains, pass the
			// consumer role to a parked sibling instead of stranding it.
			p.shrink--
			p.nworkers--
			var w *parker
			if p.q.Len() > 0 {
				w = p.popParkerLocked()
			}
			p.mu.Unlock()
			if w != nil {
				w.wake <- struct{}{}
			}
			return
		}
		if t, ok := p.q.Pop(); ok {
			p.qlen.Store(int64(p.q.Len()))
			p.mu.Unlock()
			spun = false
			if runTask(t, p.name, p.panicWrap) {
				p.completed.Add(1)
			}
			p.releaseTask(t)
			continue
		}
		if p.shutdown {
			p.mu.Unlock()
			return
		}
		if !spun {
			p.mu.Unlock()
			p.spin()
			spun = true
			continue
		}
		// Still empty after spinning: park. Publish the parker under the
		// lock (the producer's enqueue section), then block on our token.
		pk.next = p.parked
		p.parked = pk
		p.mu.Unlock()
		<-pk.wake
		spun = false
	}
}

// enqueue is the shared admission path of Post and PostCancellable: reject
// on shutdown or a full bounded queue, otherwise push, publish the new
// length and peak watermark, and wake at most one parked worker (none if a
// spinner will find the task anyway).
func (p *WorkerPool) enqueue(t *task, c *Completion) bool {
	p.mu.Lock()
	if p.shutdown || (p.capacity > 0 && p.q.Len() >= p.capacity) {
		full := !p.shutdown
		p.mu.Unlock()
		p.releaseTask(t)
		p.rejected.Add(1)
		if full {
			c.complete(ErrQueueFull)
		} else {
			c.complete(ErrShutdown)
		}
		return false
	}
	n := int64(p.q.Push(t))
	p.qlen.Store(n)
	var w *parker
	if p.spinning.Load() == 0 {
		w = p.popParkerLocked()
	}
	p.mu.Unlock()
	// Bookkeeping off the lock: watermark via CAS-max, counter via atomic.
	CasMax(&p.peak, n)
	p.submitted.Add(1)
	if w != nil {
		w.wake <- struct{}{}
	}
	if p.extWaiters.Load() > 0 {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
	return true
}

// Post submits fn for execution by the pool.
func (p *WorkerPool) Post(fn func()) *Completion {
	c := newCompletion()
	t := p.taskPool.Get().(*task)
	t.fn, t.comp, t.recycle = fn, c, true
	t.span, t.spawn = 0, 0
	t.state.Store(taskQueued)
	prepareSpan(t, p.name)
	p.enqueue(t, c)
	return c
}

// WaitPending blocks until the pool has at least one queued task or cancel
// fires, reporting whether pending work may be available. A true return is a
// hint, not a reservation — the caller should follow with TryRunPending and
// be prepared for it to find nothing (a worker may have taken the task).
// The await logical barrier alternates TryRunPending / WaitPending so a
// blocked encountering thread sleeps instead of spinning.
func (p *WorkerPool) WaitPending(cancel <-chan struct{}) bool {
	if p.qlen.Load() > 0 {
		return true
	}
	// Announce before the re-check: Post publishes the new queue length
	// before reading extWaiters, so one side always sees the other.
	p.extWaiters.Add(1)
	defer p.extWaiters.Add(-1)
	if p.qlen.Load() > 0 {
		return true
	}
	select {
	case <-p.notify:
		return true
	case <-cancel:
		return false
	}
}

// ErrQueueFull is returned for tasks rejected by a bounded pool whose queue
// is at capacity.
var ErrQueueFull = errors.New("executor: queue full")

// Owns reports whether the calling goroutine is one of the pool's workers
// (or is currently inlined inside one of its tasks).
func (p *WorkerPool) Owns() bool { return p.registry.IsOwnedBy(p) }

// TryRunPending pops one queued task and runs it on the calling goroutine.
// The paper's await barrier uses this so a worker waiting on a nested target
// block keeps draining the pool's queue instead of idling. The empty case is
// answered from the atomic queue length without touching the lock, so an
// awaiting thread polling an idle queue costs two loads, not a mutex
// acquisition (the seed double-locked here: once in TryRunPending, once in
// the WaitPending length check).
func (p *WorkerPool) TryRunPending() bool {
	if p.qlen.Load() == 0 {
		return false
	}
	p.mu.Lock()
	t, ok := p.q.Pop()
	if !ok {
		p.mu.Unlock()
		return false
	}
	p.qlen.Store(int64(p.q.Len()))
	p.mu.Unlock()
	ran := runTask(t, p.name, p.panicWrap)
	if ran {
		p.completed.Add(1)
		p.helped.Add(1)
	}
	p.releaseTask(t)
	return ran
}

// Shutdown stops accepting tasks, drains the queue, and joins all workers.
// If every worker has crashed there is nobody left to drain: the queued
// tasks are then failed with ErrShutdown instead of being stranded forever.
func (p *WorkerPool) Shutdown() {
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		p.wg.Wait()
		p.FailPending(ErrShutdown)
		return
	}
	p.shutdown = true
	head := p.takeAllParkedLocked()
	p.mu.Unlock()
	wakeAll(head)
	p.wg.Wait()
	p.FailPending(ErrShutdown)
}

// FailPending removes every queued-but-not-started task and completes it
// with err, returning how many were failed. Running tasks are untouched.
// Supervisors call this when replacing a crashed pool so queued invocations
// fail fast with a typed error instead of waiting on workers that no longer
// exist; Shutdown calls it as a backstop after joining workers.
func (p *WorkerPool) FailPending(err error) int {
	p.mu.Lock()
	tasks := p.q.Drain(nil)
	p.qlen.Store(0)
	p.mu.Unlock()
	n := 0
	for _, t := range tasks {
		if t.state.CompareAndSwap(taskQueued, taskCancelled) {
			t.comp.complete(err)
			n++
		}
		p.releaseTask(t)
	}
	if n > 0 {
		p.rejected.Add(int64(n))
	}
	return n
}

// Workers returns the current number of worker goroutines (Grow and Shrink
// change it at runtime; retiring workers are counted until they actually
// exit).
func (p *WorkerPool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nworkers
}

// Grow adds n worker goroutines to the pool — virtual targets "define
// their scale", and an application may widen a worker target when load
// demands it. No-op for n <= 0 or after Shutdown.
func (p *WorkerPool) Grow(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	p.nworkers += n
	// Add under the lock: Shutdown flips p.shutdown under the same lock
	// before calling wg.Wait, so the counter can never grow concurrently
	// with the join.
	p.wg.Add(n)
	p.mu.Unlock()
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		p.spawnWorker(func() { started <- struct{}{} })
	}
	for i := 0; i < n; i++ {
		<-started
	}
}

// Resize sets the pool's worker count to n (clamped to at least 1), growing
// or shrinking as needed. Like Grow and Shrink it is a documented no-op
// after Shutdown, so concurrent Resize/Shutdown is safe: whichever wins the
// pool's lock decides, and a Resize that loses changes nothing.
func (p *WorkerPool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return
	}
	// Workers already scheduled to retire don't count toward the target.
	cur := p.nworkers - p.shrink
	p.mu.Unlock()
	switch {
	case n > cur:
		p.Grow(n - cur)
	case n < cur:
		p.Shrink(cur - n)
	}
}

// Shrink retires up to n workers once they become idle (a busy worker
// finishes its current task first). The pool never drops below one worker.
// It returns the number of retirements actually scheduled.
func (p *WorkerPool) Shrink(n int) int {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return 0
	}
	avail := p.nworkers - p.shrink - 1
	if n > avail {
		n = avail
	}
	if n <= 0 {
		p.mu.Unlock()
		return 0
	}
	p.shrink += n
	// Parked workers must come back to the lock to see their retirement
	// credit; spinning or busy workers observe it on their next pass.
	head := p.takeAllParkedLocked()
	p.mu.Unlock()
	wakeAll(head)
	return n
}

// ErrCanceled is the terminal error of a task cancelled before it started.
var ErrCanceled = errors.New("executor: task canceled")

// PostCancellable submits fn like Post and additionally returns a cancel
// function. Cancel returns true if it won the race — the task had not
// started and will never run (its Completion finishes with ErrCanceled) —
// and false if the task already started or finished.
func (p *WorkerPool) PostCancellable(fn func()) (*Completion, func() bool) {
	c := newCompletion()
	t := &task{fn: fn, comp: c} // not pooled: the cancel closure keeps t alive
	prepareSpan(t, p.name)
	if !p.enqueue(t, c) {
		return c, func() bool { return false }
	}
	cancel := func() bool {
		if !t.state.CompareAndSwap(taskQueued, taskCancelled) {
			return false
		}
		c.complete(ErrCanceled)
		return true
	}
	return c, cancel
}

var _ Executor = (*WorkerPool)(nil)

// Stats returns a snapshot of the pool's counters.
func (p *WorkerPool) Stats() Stats {
	return Stats{
		Submitted:  p.submitted.Load(),
		Completed:  p.completed.Load(),
		Rejected:   p.rejected.Load(),
		Helped:     p.helped.Load(),
		Panics:     p.panics.Load(),
		Crashes:    p.crashes.Load(),
		QueuePeak:  p.peak.Load(),
		QueueDepth: p.qlen.Load(),
	}
}
