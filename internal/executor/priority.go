package executor

import (
	"sync"

	"repro/internal/gid"
)

// Priority orders tasks in a PriorityPool. Higher values run first.
type Priority int

// Priority levels, low to high.
const (
	Low Priority = iota
	Normal
	High
	numPriorities
)

// String names the level.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case High:
		return "high"
	default:
		return "invalid"
	}
}

// PriorityPool is a worker pool whose queue is drained highest-priority
// first (FIFO within a level). It is an extension beyond the paper
// (DESIGN.md §7): interactive applications want GUI-triggered work to
// overtake batch work on the same worker target. PriorityPool implements
// Executor; plain Post submits at Normal.
type PriorityPool struct {
	name     string
	registry *gid.Registry
	nworkers int

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numPriorities][]*task
	shutdown bool
	notify   chan struct{}
	wg       sync.WaitGroup
}

// NewPriorityPool creates and starts a priority pool with n workers
// registered in reg (nil means gid.Default).
func NewPriorityPool(name string, n int, reg *gid.Registry) *PriorityPool {
	if n < 1 {
		n = 1
	}
	if reg == nil {
		reg = &gid.Default
	}
	p := &PriorityPool{name: name, registry: reg, nworkers: n, notify: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	ready := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			p.registry.Register(p)
			defer p.registry.Deregister()
			ready <- struct{}{}
			p.workerLoop()
		}()
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	return p
}

// Name returns the pool's virtual-target name.
func (p *PriorityPool) Name() string { return p.name }

// Workers returns the pool size.
func (p *PriorityPool) Workers() int { return p.nworkers }

// popLocked removes the highest-priority pending task. Caller holds mu.
func (p *PriorityPool) popLocked() *task {
	for lvl := numPriorities - 1; lvl >= 0; lvl-- {
		if q := p.queues[lvl]; len(q) > 0 {
			t := q[0]
			p.queues[lvl] = q[1:]
			return t
		}
	}
	return nil
}

func (p *PriorityPool) pendingLocked() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

func (p *PriorityPool) workerLoop() {
	for {
		p.mu.Lock()
		for p.pendingLocked() == 0 && !p.shutdown {
			p.cond.Wait()
		}
		t := p.popLocked()
		if t == nil {
			p.mu.Unlock()
			return // shutdown with empty queues
		}
		p.mu.Unlock()
		runTask(t, p.name, nil)
	}
}

// Post submits fn at Normal priority.
func (p *PriorityPool) Post(fn func()) *Completion { return p.PostPriority(fn, Normal) }

// PostPriority submits fn at the given priority.
func (p *PriorityPool) PostPriority(fn func(), prio Priority) *Completion {
	if prio < Low {
		prio = Low
	}
	if prio >= numPriorities {
		prio = High
	}
	t := &task{fn: fn}
	c := &t.comp
	prepareSpan(t, p.name)
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		c.complete(ErrShutdown)
		return c
	}
	p.queues[prio] = append(p.queues[prio], t)
	p.cond.Signal()
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return c
}

// Owns reports worker-goroutine membership.
func (p *PriorityPool) Owns() bool { return p.registry.IsOwnedBy(p) }

// TryRunPending runs the highest-priority pending task on the caller.
func (p *PriorityPool) TryRunPending() bool {
	p.mu.Lock()
	t := p.popLocked()
	p.mu.Unlock()
	if t == nil {
		return false
	}
	runTask(t, p.name, nil)
	return true
}

// WaitPending blocks until work may be pending or cancel fires (see
// WorkerPool.WaitPending for the contract).
func (p *PriorityPool) WaitPending(cancel <-chan struct{}) bool {
	p.mu.Lock()
	n := p.pendingLocked()
	p.mu.Unlock()
	if n > 0 {
		return true
	}
	select {
	case <-p.notify:
		return true
	case <-cancel:
		return false
	}
}

// Shutdown drains the queues and joins the workers.
func (p *PriorityPool) Shutdown() {
	p.mu.Lock()
	if !p.shutdown {
		p.shutdown = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

var _ Executor = (*PriorityPool)(nil)
