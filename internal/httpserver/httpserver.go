// Package httpserver implements the HTTP service of Evaluation B: "an HTTP
// service that provides data encryption to web users. Every time a user
// sends input data with an HTTP request, the server performs a calculation
// and returns the result via the HTTP response."
//
// Two server organizations are compared, as in the paper:
//
//   - Jetty style: thread-per-request from a bounded pool — each request is
//     admitted by a counting semaphore of Workers slots and computes on its
//     own connection goroutine (Jetty's fixed thread pool).
//   - Pyjama style: the accepting goroutine offloads the computation as a
//     target block to a worker virtual target of Workers threads and waits
//     for its completion.
//
// Either organization may additionally parallelize each request's kernel
// with an OpenMP team (the paper's "//omp parallel" per event), which is
// what produces the oversubscription plateau of Figure 9.
package httpserver

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gid"
	"repro/internal/kernels"
)

// Mode selects the server organization.
type Mode int

const (
	// Jetty is the bounded thread-per-request organization.
	Jetty Mode = iota
	// Pyjama offloads computations to a worker virtual target.
	Pyjama
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Jetty:
		return "jetty"
	case Pyjama:
		return "pyjama"
	default:
		return "unknown"
	}
}

// Config parameterizes a server.
type Config struct {
	// Mode selects the organization (Jetty or Pyjama).
	Mode Mode
	// Workers bounds concurrent computations (the x-axis of Figure 9).
	Workers int
	// OMPThreads, when > 1, runs each request's kernel on an OpenMP team
	// of that size ("parallelization of each event").
	OMPThreads int
	// KernelBytes is the encryption payload size per request.
	KernelBytes int
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.KernelBytes < 1 {
		c.KernelBytes = 64 * 1024
	}
}

// Server is a runnable encryption service.
type Server struct {
	cfg Config

	ln   net.Listener
	srv  *http.Server
	rt   *core.Runtime // Pyjama mode
	sem  chan struct{} // Jetty mode
	reg  gid.Registry
	done chan struct{}

	served atomic.Int64
	errors atomic.Int64
}

// New builds a server from cfg. Call Start to begin serving.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{cfg: cfg, done: make(chan struct{})}
	switch cfg.Mode {
	case Pyjama:
		s.rt = core.NewRuntime(&s.reg)
	default:
		s.sem = make(chan struct{}, cfg.Workers)
	}
	return s
}

// Start binds to a loopback port and begins serving. It returns the base
// URL ("http://127.0.0.1:PORT").
func (s *Server) Start() (string, error) {
	if s.rt != nil {
		if _, err := s.rt.CreateWorker("worker", s.cfg.Workers); err != nil {
			return "", err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/encrypt", s.handleEncrypt)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.srv = &http.Server{Handler: mux}
	go func() {
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	return "http://" + ln.Addr().String(), nil
}

// compute runs the encryption kernel for one request and returns the
// ciphertext checksum.
func (s *Server) compute(size int) int64 {
	k := kernels.NewCrypt(size)
	if s.cfg.OMPThreads > 1 {
		k.RunPar(s.cfg.OMPThreads)
	} else {
		k.RunSeq()
	}
	return k.Checksum()
}

func (s *Server) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	size := s.cfg.KernelBytes
	if q := r.URL.Query().Get("size"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.errors.Add(1)
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		size = v
	}
	var sum int64
	switch s.cfg.Mode {
	case Pyjama:
		comp, err := s.rt.Invoke("worker", core.Wait, func() { sum = s.compute(size) })
		if err != nil || comp.Err() != nil {
			s.errors.Add(1)
			http.Error(w, "compute failed", http.StatusInternalServerError)
			return
		}
	default: // Jetty: admission into the fixed thread pool
		s.sem <- struct{}{}
		sum = s.compute(size)
		<-s.sem
	}
	s.served.Add(1)
	fmt.Fprintf(w, "%d\n", sum)
}

// Served returns the number of successful responses.
func (s *Server) Served() int64 { return s.served.Load() }

// Errors returns the number of failed requests.
func (s *Server) Errors() int64 { return s.errors.Load() }

// Stop shuts the server down and releases its worker pool.
func (s *Server) Stop() {
	if s.srv != nil {
		_ = s.srv.Close()
		<-s.done
	}
	if s.rt != nil {
		s.rt.Shutdown()
	}
}

// Client is a minimal HTTP client for driving the service under load.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at base (as returned by Start).
func NewClient(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Encrypt issues one request and returns the response checksum.
func (c *Client) Encrypt(size int) (int64, error) {
	url := c.base + "/encrypt"
	if size > 0 {
		url += "?size=" + strconv.Itoa(size)
	}
	resp, err := c.http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpserver: status %d: %s", resp.StatusCode, body)
	}
	var sum int64
	if _, err := fmt.Sscanf(string(body), "%d", &sum); err != nil {
		return 0, fmt.Errorf("httpserver: bad response %q", body)
	}
	return sum, nil
}
