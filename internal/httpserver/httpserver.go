// Package httpserver implements the HTTP service of Evaluation B: "an HTTP
// service that provides data encryption to web users. Every time a user
// sends input data with an HTTP request, the server performs a calculation
// and returns the result via the HTTP response."
//
// Two server organizations are compared, as in the paper:
//
//   - Jetty style: thread-per-request from a bounded pool — each request is
//     admitted by a counting semaphore of Workers slots and computes on its
//     own connection goroutine (Jetty's fixed thread pool).
//   - Pyjama style: the accepting goroutine offloads the computation as a
//     target block to a worker virtual target of Workers threads and waits
//     for its completion.
//
// Either organization may additionally parallelize each request's kernel
// with an OpenMP team (the paper's "//omp parallel" per event), which is
// what produces the oversubscription plateau of Figure 9.
package httpserver

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gid"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/qos"
)

// Mode selects the server organization.
type Mode int

const (
	// Jetty is the bounded thread-per-request organization.
	Jetty Mode = iota
	// Pyjama offloads computations to a worker virtual target.
	Pyjama
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Jetty:
		return "jetty"
	case Pyjama:
		return "pyjama"
	default:
		return "unknown"
	}
}

// Config parameterizes a server.
type Config struct {
	// Mode selects the organization (Jetty or Pyjama).
	Mode Mode
	// Workers bounds concurrent computations (the x-axis of Figure 9).
	Workers int
	// OMPThreads, when > 1, runs each request's kernel on an OpenMP team
	// of that size ("parallelization of each event").
	OMPThreads int
	// KernelBytes is the encryption payload size per request.
	KernelBytes int
	// QoS enables overload protection for the Pyjama organization (nil
	// reproduces the seed behaviour: every request queues, however long
	// the queue). See QoSConfig.
	QoS *QoSConfig
}

// QoSConfig parameterizes the server's admission control. The limiter's
// slot count equals Workers, so "waiting for a slot" is exactly "the
// worker target's queue would grow"; overflow is shed with HTTP 503
// instead of queueing unboundedly.
type QoSConfig struct {
	// QueueLimit bounds requests waiting for a worker slot (<0 =
	// unbounded wait queue, 0 = no waiting; sheds are 503s).
	QueueLimit int
	// RequestTimeout is the per-request deadline propagated into the
	// target block via InvokeCtx (0 = none). Requests that exceed it
	// respond 503, and still-queued work is cancelled.
	RequestTimeout time.Duration
	// CoDelTarget, when > 0, selects a CoDel queue policy with this
	// sojourn target (CoDelInterval defaulting per qos.CoDel); otherwise
	// the policy is TimeoutAfter(RequestTimeout) when a timeout is set,
	// else Reject.
	CoDelTarget   time.Duration
	CoDelInterval time.Duration
	// BreakerThreshold, when > 0, adds a circuit breaker that opens
	// after that many consecutive failures (timeouts or panics) and
	// probes again after BreakerCooldown (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// String summarizes the configured protections for bench labels.
func (q *QoSConfig) String() string {
	return fmt.Sprintf("limiter(%s, queue=%d) breaker(threshold=%d)",
		q.policy(), q.QueueLimit, q.BreakerThreshold)
}

// policy derives the limiter policy from the config.
func (q *QoSConfig) policy() qos.Policy {
	switch {
	case q.CoDelTarget > 0:
		return qos.CoDel(q.CoDelTarget, q.CoDelInterval)
	case q.RequestTimeout > 0:
		return qos.TimeoutAfter(q.RequestTimeout)
	default:
		return qos.Reject()
	}
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.KernelBytes < 1 {
		c.KernelBytes = 64 * 1024
	}
}

// Server is a runnable encryption service.
type Server struct {
	cfg Config

	ln   net.Listener
	srv  *http.Server
	rt   *core.Runtime // Pyjama mode
	sem  chan struct{} // Jetty mode
	reg  gid.Registry
	done chan struct{}

	limiter *qos.Limiter // nil without QoS
	breaker *qos.Breaker // nil without QoS or BreakerThreshold

	served atomic.Int64
	errors atomic.Int64
	shed   atomic.Int64
}

// New builds a server from cfg. Call Start to begin serving.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{cfg: cfg, done: make(chan struct{})}
	switch cfg.Mode {
	case Pyjama:
		s.rt = core.NewRuntime(&s.reg)
		if q := cfg.QoS; q != nil {
			s.limiter = qos.NewLimiter("worker", cfg.Workers, q.QueueLimit, q.policy())
			if q.BreakerThreshold > 0 {
				s.breaker = qos.NewBreaker("worker", q.BreakerThreshold, q.BreakerCooldown)
			}
		}
	default:
		s.sem = make(chan struct{}, cfg.Workers)
	}
	return s
}

// Start binds to a loopback port and begins serving. It returns the base
// URL ("http://127.0.0.1:PORT").
func (s *Server) Start() (string, error) {
	if s.rt != nil {
		if _, err := s.rt.CreateWorker("worker", s.cfg.Workers); err != nil {
			return "", err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/encrypt", s.handleEncrypt)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.srv = &http.Server{Handler: mux}
	go func() {
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	return "http://" + ln.Addr().String(), nil
}

// compute runs the encryption kernel for one request and returns the
// ciphertext checksum.
func (s *Server) compute(size int) int64 {
	k := kernels.NewCrypt(size)
	if s.cfg.OMPThreads > 1 {
		k.RunPar(s.cfg.OMPThreads)
	} else {
		k.RunSeq()
	}
	return k.Checksum()
}

func (s *Server) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	size := s.cfg.KernelBytes
	if q := r.URL.Query().Get("size"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.errors.Add(1)
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		size = v
	}
	var sum int64
	switch s.cfg.Mode {
	case Pyjama:
		if s.limiter != nil {
			if !s.handleEncryptQoS(w, r, size) {
				return
			}
		} else {
			comp, err := s.rt.Invoke("worker", core.Wait, func() { sum = s.compute(size) })
			if err != nil || comp.Err() != nil {
				s.errors.Add(1)
				http.Error(w, "compute failed", http.StatusInternalServerError)
				return
			}
			s.served.Add(1)
			fmt.Fprintf(w, "%d\n", sum)
		}
		return
	default: // Jetty: admission into the fixed thread pool
		s.sem <- struct{}{}
		sum = s.compute(size)
		<-s.sem
	}
	s.served.Add(1)
	fmt.Fprintf(w, "%d\n", sum)
}

// handleEncryptQoS is the guarded Pyjama request path: breaker check,
// limiter admission, then a deadline-propagating invocation. It writes the
// full response (success or failure) and reports whether it succeeded.
func (s *Server) handleEncryptQoS(w http.ResponseWriter, r *http.Request, size int) bool {
	ctx := r.Context()
	if d := s.cfg.QoS.RequestTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if err := s.breaker.Allow(); err != nil {
		s.shed.Add(1)
		http.Error(w, "overloaded (circuit open)", http.StatusServiceUnavailable)
		return false
	}
	if err := s.limiter.Acquire(ctx); err != nil {
		// Shed or client-abandoned: fail fast instead of queueing. An
		// admission failure says nothing about the target's health, so
		// the breaker is not informed.
		s.shed.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return false
	}
	defer s.limiter.Release()

	var sum int64
	comp, err := s.rt.InvokeCtx(ctx, "worker", core.Wait, func(context.Context) {
		sum = s.compute(size)
	})
	if err != nil {
		s.errors.Add(1)
		http.Error(w, "compute failed", http.StatusInternalServerError)
		return false
	}
	switch cerr := comp.Err(); {
	case core.IsDeadline(cerr), ctx.Err() != nil:
		// The block was cancelled in-queue, or finished after the
		// request's deadline: either way the response is too late.
		s.breaker.Failure()
		s.shed.Add(1)
		http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
		return false
	case cerr != nil:
		s.breaker.Failure()
		s.errors.Add(1)
		http.Error(w, "compute failed", http.StatusInternalServerError)
		return false
	}
	s.breaker.Success()
	s.served.Add(1)
	fmt.Fprintf(w, "%d\n", sum)
	return true
}

// Served returns the number of successful responses.
func (s *Server) Served() int64 { return s.served.Load() }

// Errors returns the number of failed requests.
func (s *Server) Errors() int64 { return s.errors.Load() }

// Shed returns the number of 503 responses (admission sheds, breaker
// rejections, and deadline expiries). Always 0 without QoS.
func (s *Server) Shed() int64 { return s.shed.Load() }

// QoSStats returns the limiter's live measurements (nil without QoS).
func (s *Server) QoSStats() *metrics.QoSStats {
	if s.limiter == nil {
		return nil
	}
	return s.limiter.Stats()
}

// Breaker returns the server's circuit breaker (nil unless configured).
func (s *Server) Breaker() *qos.Breaker { return s.breaker }

// Stop shuts the server down and releases its worker pool.
func (s *Server) Stop() {
	if s.srv != nil {
		_ = s.srv.Close()
		<-s.done
	}
	if s.rt != nil {
		s.rt.Shutdown()
	}
}

// Client is a minimal HTTP client for driving the service under load.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at base (as returned by Start).
func NewClient(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Encrypt issues one request and returns the response checksum.
func (c *Client) Encrypt(size int) (int64, error) {
	sum, _, err := c.Do(size)
	return sum, err
}

// Do issues one request and returns the checksum and the HTTP status code
// (0 on transport failure). Callers driving overload scenarios use the
// status to distinguish sheds (503) from successes and hard errors.
func (c *Client) Do(size int) (int64, int, error) {
	url := c.base + "/encrypt"
	if size > 0 {
		url += "?size=" + strconv.Itoa(size)
	}
	resp, err := c.http.Get(url)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, resp.StatusCode, fmt.Errorf("httpserver: status %d: %s", resp.StatusCode, body)
	}
	var sum int64
	if _, err := fmt.Sscanf(string(body), "%d", &sum); err != nil {
		return 0, resp.StatusCode, fmt.Errorf("httpserver: bad response %q", body)
	}
	return sum, resp.StatusCode, nil
}
