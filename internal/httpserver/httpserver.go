// Package httpserver implements the HTTP service of Evaluation B: "an HTTP
// service that provides data encryption to web users. Every time a user
// sends input data with an HTTP request, the server performs a calculation
// and returns the result via the HTTP response."
//
// Two server organizations are compared, as in the paper:
//
//   - Jetty style: thread-per-request from a bounded pool — each request is
//     admitted by a counting semaphore of Workers slots and computes on its
//     own connection goroutine (Jetty's fixed thread pool).
//   - Pyjama style: the accepting goroutine offloads the computation as a
//     target block to a worker virtual target of Workers threads and waits
//     for its completion.
//
// Either organization may additionally parallelize each request's kernel
// with an OpenMP team (the paper's "//omp parallel" per event), which is
// what produces the oversubscription plateau of Figure 9.
package httpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/supervise"
	"repro/internal/trace"
)

// Mode selects the server organization.
type Mode int

const (
	// Jetty is the bounded thread-per-request organization.
	Jetty Mode = iota
	// Pyjama offloads computations to a worker virtual target.
	Pyjama
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Jetty:
		return "jetty"
	case Pyjama:
		return "pyjama"
	default:
		return "unknown"
	}
}

// Config parameterizes a server.
type Config struct {
	// Mode selects the organization (Jetty or Pyjama).
	Mode Mode
	// Workers bounds concurrent computations (the x-axis of Figure 9).
	Workers int
	// OMPThreads, when > 1, runs each request's kernel on an OpenMP team
	// of that size ("parallelization of each event").
	OMPThreads int
	// KernelBytes is the encryption payload size per request.
	KernelBytes int
	// QoS enables overload protection for the Pyjama organization (nil
	// reproduces the seed behaviour: every request queues, however long
	// the queue). See QoSConfig.
	QoS *QoSConfig
	// Supervise enables the failure model for the Pyjama organization:
	// the worker target is watched for stalls and (with Restart) wrapped
	// in a supervisor that replaces crashed workers, and /healthz reports
	// per-target state instead of a static 200. See SuperviseConfig.
	Supervise *SuperviseConfig
	// Chaos, when set, wraps the Pyjama worker target in the
	// fault-injection middleware so failure drills can be run against a
	// live server (Pyjama mode only).
	Chaos *chaos.Injector
}

// SuperviseConfig parameterizes the server's failure model. The zero value
// of every field picks the supervise package defaults.
type SuperviseConfig struct {
	// Restart wraps the worker target in a supervise.Supervisor so worker
	// crashes and panic storms trigger restarts; without it the target is
	// only watched (stalls are reported, nothing is repaired).
	Restart bool
	// MaxRestarts / Window bound the restart budget (supervise.Options).
	MaxRestarts int
	Window      time.Duration
	// BackoffInitial / BackoffMax shape the restart backoff.
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	// PanicThreshold restarts the target after this many task panics in
	// one generation (0 = tolerated).
	PanicThreshold int
	// RespawnWorkers repairs single worker deaths one-for-one instead of
	// replacing the whole pool.
	RespawnWorkers bool
	// WatchdogInterval / StallAfter tune the heartbeat (defaults: 100ms
	// checks, stall after 10 intervals).
	WatchdogInterval time.Duration
	StallAfter       time.Duration
}

// QoSConfig parameterizes the server's admission control. The limiter's
// slot count equals Workers, so "waiting for a slot" is exactly "the
// worker target's queue would grow"; overflow is shed with HTTP 503
// instead of queueing unboundedly.
type QoSConfig struct {
	// QueueLimit bounds requests waiting for a worker slot (<0 =
	// unbounded wait queue, 0 = no waiting; sheds are 503s).
	QueueLimit int
	// RequestTimeout is the per-request deadline propagated into the
	// target block via InvokeCtx (0 = none). Requests that exceed it
	// respond 503, and still-queued work is cancelled.
	RequestTimeout time.Duration
	// CoDelTarget, when > 0, selects a CoDel queue policy with this
	// sojourn target (CoDelInterval defaulting per qos.CoDel); otherwise
	// the policy is TimeoutAfter(RequestTimeout) when a timeout is set,
	// else Reject.
	CoDelTarget   time.Duration
	CoDelInterval time.Duration
	// BreakerThreshold, when > 0, adds a circuit breaker that opens
	// after that many consecutive failures (timeouts or panics) and
	// probes again after BreakerCooldown (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// String summarizes the configured protections for bench labels.
func (q *QoSConfig) String() string {
	return fmt.Sprintf("limiter(%s, queue=%d) breaker(threshold=%d)",
		q.policy(), q.QueueLimit, q.BreakerThreshold)
}

// policy derives the limiter policy from the config.
func (q *QoSConfig) policy() qos.Policy {
	switch {
	case q.CoDelTarget > 0:
		return qos.CoDel(q.CoDelTarget, q.CoDelInterval)
	case q.RequestTimeout > 0:
		return qos.TimeoutAfter(q.RequestTimeout)
	default:
		return qos.Reject()
	}
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.KernelBytes < 1 {
		c.KernelBytes = 64 * 1024
	}
}

// Server is a runnable encryption service.
type Server struct {
	cfg Config

	ln   net.Listener
	srv  *http.Server
	rt   *core.Runtime // Pyjama mode
	sem  chan struct{} // Jetty mode
	reg  gid.Registry
	done chan struct{}

	limiter *qos.Limiter // nil without QoS
	breaker *qos.Breaker // nil without QoS or BreakerThreshold

	worker executor.Executor     // Pyjama worker target when not runtime-owned
	sup    *supervise.Supervisor // nil unless Supervise.Restart
	dog    *supervise.Watchdog   // nil without Supervise

	spans    *metrics.SpanSink // /metrics aggregation, installed globally by Start
	prevSink trace.Sink        // global sink before Start, chained and restored

	served atomic.Int64
	errors atomic.Int64
	shed   atomic.Int64
}

// New builds a server from cfg. Call Start to begin serving.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{cfg: cfg, done: make(chan struct{})}
	switch cfg.Mode {
	case Pyjama:
		s.rt = core.NewRuntime(&s.reg)
		if q := cfg.QoS; q != nil {
			s.limiter = qos.NewLimiter("worker", cfg.Workers, q.QueueLimit, q.policy())
			if q.BreakerThreshold > 0 {
				s.breaker = qos.NewBreaker("worker", q.BreakerThreshold, q.BreakerCooldown)
			}
		}
	default:
		s.sem = make(chan struct{}, cfg.Workers)
	}
	return s
}

// Start binds to a loopback port and begins serving. It returns the base
// URL ("http://127.0.0.1:PORT").
func (s *Server) Start() (string, error) {
	if s.rt != nil {
		if err := s.setupWorkerTarget(); err != nil {
			return "", err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.ln = ln
	// Install the span-to-metrics aggregator as the process-global trace
	// sink, chained to whatever was there before (a bench's Buffer keeps
	// seeing every event). Stop restores the previous sink.
	s.prevSink = trace.ActiveSink()
	s.spans = metrics.NewSpanSink(s.prevSink)
	trace.SetGlobal(s.spans)
	mux := http.NewServeMux()
	mux.HandleFunc("/encrypt", s.handleEncrypt)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.srv = &http.Server{Handler: mux}
	go func() {
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	return "http://" + ln.Addr().String(), nil
}

// setupWorkerTarget builds the Pyjama worker target. Plain configs keep the
// seed path (a runtime-owned pool); with Chaos the pool is wrapped in the
// fault-injection middleware, and with Supervise it is watched and —
// when Restart is set — supervised, so crashed workers are replaced instead
// of silently draining the pool.
func (s *Server) setupWorkerTarget() error {
	sv := s.cfg.Supervise
	if sv == nil && s.cfg.Chaos == nil {
		_, err := s.rt.CreateWorker("worker", s.cfg.Workers)
		return err
	}
	factory := func(gen int) (executor.Executor, error) {
		var e executor.Executor = executor.NewWorkerPool("worker", s.cfg.Workers, &s.reg)
		if s.cfg.Chaos != nil {
			e = s.cfg.Chaos.Wrap(e)
		}
		return e, nil
	}
	var target executor.Executor
	if sv != nil && sv.Restart {
		sup, err := supervise.New("worker", factory, supervise.Options{
			MaxRestarts:    sv.MaxRestarts,
			Window:         sv.Window,
			BackoffInitial: sv.BackoffInitial,
			BackoffMax:     sv.BackoffMax,
			PanicThreshold: sv.PanicThreshold,
			RespawnWorkers: sv.RespawnWorkers,
		})
		if err != nil {
			return err
		}
		s.sup = sup
		target = sup
	} else {
		target, _ = factory(0)
	}
	if err := s.rt.RegisterTarget("worker", target); err != nil {
		target.Shutdown()
		return err
	}
	s.worker = target // registered, not runtime-owned: Stop shuts it down
	if sv != nil {
		s.dog = supervise.NewWatchdog(sv.WatchdogInterval)
		s.dog.Watch("worker", target, sv.StallAfter)
		s.dog.Start()
	}
	return nil
}

// handleHealthz reports per-target health: supervision state (when the
// worker target is supervised) and watchdog liveness (when it is watched).
// The overall status is the worst across targets — "ok" and "degraded"
// answer 200, "down" answers 503 so orchestrators stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type targetHealth struct {
		Supervision *supervise.TargetHealth `json:"supervision,omitempty"`
		Liveness    *supervise.Report       `json:"liveness,omitempty"`
	}
	resp := struct {
		Status  string                   `json:"status"`
		Targets map[string]*targetHealth `json:"targets,omitempty"`
	}{Status: supervise.Healthy.String()}
	worst := supervise.Healthy
	get := func(name string) *targetHealth {
		if resp.Targets == nil {
			resp.Targets = make(map[string]*targetHealth)
		}
		if resp.Targets[name] == nil {
			resp.Targets[name] = &targetHealth{}
		}
		return resp.Targets[name]
	}
	if s.sup != nil {
		h := s.sup.Health()
		get(h.Name).Supervision = &h
		if st := h.StatusValue(); st > worst {
			worst = st
		}
	}
	if s.dog != nil {
		for name, rep := range s.dog.Health() {
			rep := rep
			get(name).Liveness = &rep
			// A stalled target degrades the service; one answering
			// ErrTargetDown takes it down.
			switch rep.LivenessValue() {
			case supervise.LiveStalled:
				if worst < supervise.Degraded {
					worst = supervise.Degraded
				}
			case supervise.LiveDown:
				worst = supervise.Down
			}
		}
	}
	resp.Status = worst.String()
	w.Header().Set("Content-Type", "application/json")
	if worst == supervise.Down {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves the per-target span metrics in the Prometheus text
// exposition format (histograms of invoke/run latency and queue sojourn,
// scheduling and incident counters).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.spans == nil {
		return
	}
	_ = s.spans.WritePrometheus(w)
}

// traceRequest opens a "request" span for one HTTP request and returns the
// closer. The worker invocation made while handling parents to it, so a
// Perfetto capture shows request → invoke → run chains end to end.
func (s *Server) traceRequest() func() {
	sink := trace.ActiveSink()
	if sink == nil {
		return func() {}
	}
	span := trace.NewSpanID()
	prev := trace.Swap(span)
	trace.BeginSpanID(sink, span, "request", "http", prev)
	return func() {
		trace.Swap(prev)
		trace.EndSpan(sink, span, "request", "http")
	}
}

// compute runs the encryption kernel for one request and returns the
// ciphertext checksum.
func (s *Server) compute(size int) int64 {
	k := kernels.NewCrypt(size)
	if s.cfg.OMPThreads > 1 {
		k.RunPar(s.cfg.OMPThreads)
	} else {
		k.RunSeq()
	}
	return k.Checksum()
}

func (s *Server) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	defer s.traceRequest()()
	size := s.cfg.KernelBytes
	if q := r.URL.Query().Get("size"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.errors.Add(1)
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		size = v
	}
	var sum int64
	switch s.cfg.Mode {
	case Pyjama:
		if s.limiter != nil {
			if !s.handleEncryptQoS(w, r, size) {
				return
			}
		} else {
			comp, err := s.rt.Invoke("worker", core.Wait, func() { sum = s.compute(size) })
			switch {
			case err != nil:
				s.errors.Add(1)
				http.Error(w, "compute failed", http.StatusInternalServerError)
			case comp.Err() != nil:
				s.failCompute(w, comp.Err())
			default:
				s.served.Add(1)
				fmt.Fprintf(w, "%d\n", sum)
			}
		}
		return
	default: // Jetty: admission into the fixed thread pool
		s.sem <- struct{}{}
		sum = s.compute(size)
		<-s.sem
	}
	s.served.Add(1)
	fmt.Fprintf(w, "%d\n", sum)
}

// handleEncryptQoS is the guarded Pyjama request path: breaker check,
// limiter admission, then a deadline-propagating invocation. It writes the
// full response (success or failure) and reports whether it succeeded.
func (s *Server) handleEncryptQoS(w http.ResponseWriter, r *http.Request, size int) bool {
	ctx := r.Context()
	if d := s.cfg.QoS.RequestTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if err := s.breaker.Allow(); err != nil {
		s.shed.Add(1)
		http.Error(w, "overloaded (circuit open)", http.StatusServiceUnavailable)
		return false
	}
	if err := s.limiter.Acquire(ctx); err != nil {
		// Shed or client-abandoned: fail fast instead of queueing. An
		// admission failure says nothing about the target's health, so
		// the breaker is not informed.
		s.shed.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return false
	}
	defer s.limiter.Release()

	var sum int64
	comp, err := s.rt.InvokeCtx(ctx, "worker", core.Wait, func(context.Context) {
		sum = s.compute(size)
	})
	if err != nil {
		s.errors.Add(1)
		http.Error(w, "compute failed", http.StatusInternalServerError)
		return false
	}
	switch cerr := comp.Err(); {
	case core.IsDeadline(cerr), ctx.Err() != nil:
		// The block was cancelled in-queue, or finished after the
		// request's deadline: either way the response is too late.
		s.breaker.Failure()
		s.shed.Add(1)
		http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
		return false
	case cerr != nil:
		s.breaker.Failure()
		s.failCompute(w, cerr)
		return false
	}
	s.breaker.Success()
	s.served.Add(1)
	fmt.Fprintf(w, "%d\n", sum)
	return true
}

// failCompute writes the failure response for a finished-with-error
// invocation. Supervision rejections are transient capacity answers (503,
// counted as sheds) — the target is restarting or down, retry elsewhere;
// everything else (panics, crashed workers) is a 500.
func (s *Server) failCompute(w http.ResponseWriter, cerr error) {
	if errors.Is(cerr, supervise.ErrRestarting) || errors.Is(cerr, supervise.ErrTargetDown) {
		s.shed.Add(1)
		http.Error(w, "worker target unavailable", http.StatusServiceUnavailable)
		return
	}
	s.errors.Add(1)
	http.Error(w, "compute failed", http.StatusInternalServerError)
}

// Served returns the number of successful responses.
func (s *Server) Served() int64 { return s.served.Load() }

// SchedStats returns per-target scheduler counters (submitted, completed,
// helped, queue peak, …) for every target that exposes them — the same
// counters the bench suite reports, so server runs and microbenchmarks can
// be compared on one axis. Nil in Jetty mode (no virtual-target runtime).
func (s *Server) SchedStats() map[string]executor.Stats {
	if s.rt == nil {
		return nil
	}
	return s.rt.PoolStats()
}

// Errors returns the number of failed requests.
func (s *Server) Errors() int64 { return s.errors.Load() }

// Shed returns the number of 503 responses (admission sheds, breaker
// rejections, and deadline expiries). Always 0 without QoS.
func (s *Server) Shed() int64 { return s.shed.Load() }

// QoSStats returns the limiter's live measurements (nil without QoS).
func (s *Server) QoSStats() *metrics.QoSStats {
	if s.limiter == nil {
		return nil
	}
	return s.limiter.Stats()
}

// Breaker returns the server's circuit breaker (nil unless configured).
func (s *Server) Breaker() *qos.Breaker { return s.breaker }

// Supervisor returns the worker target's supervisor (nil unless
// Supervise.Restart is configured).
func (s *Server) Supervisor() *supervise.Supervisor { return s.sup }

// Watchdog returns the stall watchdog (nil unless Supervise is configured).
func (s *Server) Watchdog() *supervise.Watchdog { return s.dog }

// Spans returns the server's span-metrics aggregator (nil before Start).
func (s *Server) Spans() *metrics.SpanSink { return s.spans }

// Stop shuts the server down and releases its worker pool.
func (s *Server) Stop() {
	if s.dog != nil {
		s.dog.Stop()
	}
	if s.spans != nil && trace.ActiveSink() == trace.Sink(s.spans) {
		// Restore the pre-Start global sink — but only if ours is still
		// installed; a later server's chained sink stays untouched.
		trace.SetGlobal(s.prevSink)
	}
	if s.srv != nil {
		_ = s.srv.Close()
		<-s.done
	}
	if s.rt != nil {
		s.rt.Shutdown()
	}
	if s.worker != nil {
		// Registered targets are not runtime-owned; their lifecycle is ours.
		s.worker.Shutdown()
	}
}

// Client is a minimal HTTP client for driving the service under load.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at base (as returned by Start).
func NewClient(base string) *Client {
	return NewClientTimeout(base, 60*time.Second)
}

// NewClientTimeout builds a client with an explicit request timeout.
// Failure drills use short timeouts so a hung invocation shows up as a
// client-side timeout instead of wedging the scenario.
func NewClientTimeout(base string, timeout time.Duration) *Client {
	return &Client{
		base: base,
		http: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Healthz fetches /healthz and returns the reported status string
// ("ok", "degraded", "down") and the HTTP status code.
func (c *Client) Healthz() (string, int, error) {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", resp.StatusCode, err
	}
	return body.Status, resp.StatusCode, nil
}

// Encrypt issues one request and returns the response checksum.
func (c *Client) Encrypt(size int) (int64, error) {
	sum, _, err := c.Do(size)
	return sum, err
}

// Do issues one request and returns the checksum and the HTTP status code
// (0 on transport failure). Callers driving overload scenarios use the
// status to distinguish sheds (503) from successes and hard errors.
func (c *Client) Do(size int) (int64, int, error) {
	url := c.base + "/encrypt"
	if size > 0 {
		url += "?size=" + strconv.Itoa(size)
	}
	resp, err := c.http.Get(url)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, resp.StatusCode, fmt.Errorf("httpserver: status %d: %s", resp.StatusCode, body)
	}
	var sum int64
	if _, err := fmt.Sscanf(string(body), "%d", &sum); err != nil {
		return 0, resp.StatusCode, fmt.Errorf("httpserver: bad response %q", body)
	}
	return sum, resp.StatusCode, nil
}
