package httpserver

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// scrapeMetrics fetches /metrics and parses the Prometheus text exposition
// into series values, failing the test on any malformed line.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			typed[parts[2]] = true
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[family] && !typed[name] {
			t.Fatalf("line %d: series %q lacks a TYPE header", ln+1, name)
		}
		series[key] = val
	}
	return series
}

// TestMetricsEndpoint drives a Pyjama server and asserts the /metrics scrape
// exposes the span-derived per-target histograms and counters.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{Mode: Pyjama, Workers: 2, KernelBytes: 4 * 1024})
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	client := NewClient(base)
	const requests = 8
	for i := 0; i < requests; i++ {
		if _, err := client.Encrypt(0); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	got := scrapeMetrics(t, base)
	if v := got[`repro_run_duration_seconds_count{target="worker"}`]; v != requests {
		t.Fatalf("run count = %v, want %d\nseries: %v", v, requests, got)
	}
	if v := got[`repro_invoke_duration_seconds_count{target="worker"}`]; v != requests {
		t.Fatalf("invoke count = %v, want %d", v, requests)
	}
	if v := got[`repro_invoke_duration_seconds_count{target="http"}`]; v != requests {
		t.Fatalf("request-span count = %v, want %d", v, requests)
	}
	if v := got[`repro_queue_sojourn_seconds_count{target="worker"}`]; v != requests {
		t.Fatalf("sojourn count = %v, want %d", v, requests)
	}
	if v := got[`repro_posts_total{target="worker"}`]; v != requests {
		t.Fatalf("posts = %v, want %d", v, requests)
	}
	if sum := got[`repro_run_duration_seconds_sum{target="worker"}`]; sum <= 0 {
		t.Fatalf("run duration sum = %v, want > 0", sum)
	}
	if _, ok := got["repro_spans_open"]; !ok {
		t.Fatal("spans_open gauge missing")
	}
}

// TestMetricsSinkChainAndRestore: Start installs the aggregator as the global
// sink chained to the previous one, Stop restores it — and a pre-installed
// Buffer keeps receiving events while the server runs.
func TestMetricsSinkChainAndRestore(t *testing.T) {
	buf := trace.NewBuffer(4096)
	restore := trace.Use(buf)
	defer restore()

	srv := New(Config{Mode: Pyjama, Workers: 1, KernelBytes: 1024})
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	if trace.ActiveSink() == trace.Sink(buf) {
		t.Fatal("Start did not install the span sink globally")
	}
	client := NewClient(base)
	if _, err := client.Encrypt(0); err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if trace.ActiveSink() != trace.Sink(buf) {
		t.Fatal("Stop did not restore the previous global sink")
	}
	// The chained buffer captured the full request chain.
	tree := trace.BuildTree(buf.Snapshot())
	req := tree.Find("request", "http")
	if req == nil {
		t.Fatalf("no request span reached the chained buffer:\n%s", tree.String())
	}
	if req.Child("invoke", "worker") == nil {
		t.Fatalf("invoke not parented to request:\n%s", tree.String())
	}
	if tree.Find("run", "worker") == nil {
		t.Fatalf("run span missing:\n%s", tree.String())
	}
}
