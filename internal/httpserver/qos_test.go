package httpserver

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/qos"
)

// TestQoSHappyPathServes checks that a generously-provisioned qos server
// behaves like the seed: every request admitted, nothing shed, sojourn
// recorded.
func TestQoSHappyPathServes(t *testing.T) {
	s, c := startServer(t, Config{Mode: Pyjama, Workers: 4, KernelBytes: 4096,
		QoS: &QoSConfig{QueueLimit: -1, RequestTimeout: 30 * time.Second}})
	for i := 0; i < 8; i++ {
		if _, err := c.Encrypt(0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Served() != 8 || s.Shed() != 0 {
		t.Fatalf("Served=%d Shed=%d, want 8/0", s.Served(), s.Shed())
	}
	st := s.QoSStats()
	if st == nil || st.Admitted.Value() != 8 || st.Sojourn.Count() != 8 {
		t.Fatalf("QoSStats = %v, want 8 admissions with sojourn samples", st)
	}
}

// TestPyjamaQoSShedsUnderOverload is the acceptance scenario: offered load
// far beyond worker capacity must produce 503s (bounded latency) instead
// of an unbounded queue, with the shed count visible in the new metrics
// and the p99 of successful requests bounded.
func TestPyjamaQoSShedsUnderOverload(t *testing.T) {
	// 1 worker at ~7ms/request vs 16 concurrent clients: offered load
	// is an order of magnitude over capacity, and with a Reject policy
	// (QueueLimit 0, no timeout) every request that cannot start
	// immediately is shed.
	s, c := startServer(t, Config{Mode: Pyjama, Workers: 1, KernelBytes: 256 * 1024,
		QoS: &QoSConfig{QueueLimit: 0}})

	lat := metrics.NewHistogram()
	var mu sync.Mutex
	var ok503, okOther int
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				start := time.Now()
				_, status, err := c.Do(0)
				d := time.Since(start)
				mu.Lock()
				switch {
				case err == nil:
					lat.Observe(d)
				case status == http.StatusServiceUnavailable:
					ok503++
				default:
					okOther++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if okOther != 0 {
		t.Fatalf("%d requests failed with something other than 503", okOther)
	}
	if s.Served() < 1 {
		t.Fatal("server under overload must still serve admitted requests")
	}
	if ok503 == 0 || s.Shed() == 0 {
		t.Fatalf("client 503s=%d server Shed=%d, want overload sheds", ok503, s.Shed())
	}
	if got := s.QoSStats().Shed.Value(); got == 0 {
		t.Fatalf("metrics Shed = %d, want nonzero", got)
	}
	// With immediate shedding, no successful request ever waits behind
	// more than the in-flight computation: p99 stays bounded by a few
	// service times (generous CI bound, versus unbounded queueing which
	// would scale with total offered load).
	if p99 := lat.Quantile(0.99); p99 > 2*time.Second {
		t.Fatalf("success p99 = %v, want bounded under overload", p99)
	}
}

// TestQoSDeadlineAndBreaker drives requests whose compute time exceeds the
// request deadline: each admitted request responds 503, the breaker opens
// after the configured streak, and further requests are rejected without
// touching the worker.
func TestQoSDeadlineAndBreaker(t *testing.T) {
	// 1MiB ≈ tens of ms per request against a 15ms deadline.
	s, c := startServer(t, Config{Mode: Pyjama, Workers: 1, KernelBytes: 1024 * 1024,
		QoS: &QoSConfig{QueueLimit: 0, RequestTimeout: 15 * time.Millisecond,
			BreakerThreshold: 2, BreakerCooldown: time.Hour}})

	for i := 0; i < 2; i++ {
		if _, status, err := c.Do(0); err == nil || status != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status=%d err=%v, want 503 deadline", i, status, err)
		}
	}
	if st := s.Breaker().State(); st != qos.Open {
		t.Fatalf("breaker state = %v after 2 timeouts, want open", st)
	}
	start := time.Now()
	if _, status, _ := c.Do(0); status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d with open breaker, want 503", status)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("breaker-rejected request took %v, want fast rejection", d)
	}
	if s.Breaker().Rejections() == 0 {
		t.Fatal("breaker should have rejected at least one request")
	}
	if s.Shed() < 3 {
		t.Fatalf("Shed = %d, want ≥ 3 (2 deadlines + 1 breaker reject)", s.Shed())
	}
}
