package httpserver

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/workload"
)

func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	base, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, NewClient(base)
}

func TestJettyServesRequests(t *testing.T) {
	s, c := startServer(t, Config{Mode: Jetty, Workers: 2, KernelBytes: 4096})
	sum, err := c.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Fatalf("checksum = %d", sum)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d", s.Served())
	}
}

func TestPyjamaServesRequests(t *testing.T) {
	s, c := startServer(t, Config{Mode: Pyjama, Workers: 2, KernelBytes: 4096})
	sum, err := c.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Fatalf("checksum = %d", sum)
	}
	if s.Served() != 1 {
		t.Fatalf("Served = %d", s.Served())
	}
}

func TestBothModesAgreeOnResult(t *testing.T) {
	// The kernel is deterministic, so Jetty and Pyjama must return the
	// same checksum for the same payload size.
	_, cj := startServer(t, Config{Mode: Jetty, Workers: 1, KernelBytes: 2048})
	_, cp := startServer(t, Config{Mode: Pyjama, Workers: 1, KernelBytes: 2048})
	a, err := cj.Encrypt(2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Encrypt(2048)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("jetty %d != pyjama %d", a, b)
	}
}

func TestParallelKernelSameResult(t *testing.T) {
	_, seq := startServer(t, Config{Mode: Jetty, Workers: 1, OMPThreads: 1, KernelBytes: 8192})
	_, par := startServer(t, Config{Mode: Jetty, Workers: 1, OMPThreads: 4, KernelBytes: 8192})
	a, err := seq.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sequential kernel %d != parallel kernel %d", a, b)
	}
}

func TestSizeParamValidation(t *testing.T) {
	s, c := startServer(t, Config{Mode: Jetty, Workers: 1, KernelBytes: 1024})
	respNeg, err := http.Get(c.base + "/encrypt?size=-3")
	if err != nil {
		t.Fatal(err)
	}
	respNeg.Body.Close()
	if respNeg.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative size: status = %d", respNeg.StatusCode)
	}
	resp, err := http.Get(c.base + "/encrypt?size=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if s.Errors() != 2 {
		t.Fatalf("Errors = %d", s.Errors())
	}
}

func TestConcurrentLoadBothModes(t *testing.T) {
	for _, mode := range []Mode{Jetty, Pyjama} {
		s, c := startServer(t, Config{Mode: mode, Workers: 4, KernelBytes: 2048})
		users := &workload.VirtualUsers{Users: 16, RequestsPerUser: 5}
		var mu sync.Mutex
		var firstErr error
		users.Run(func(u, r int) {
			if _, err := c.Encrypt(0); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
		if firstErr != nil {
			t.Fatalf("%v: %v", mode, firstErr)
		}
		if got := s.Served(); got != int64(users.Total()) {
			t.Fatalf("%v: Served = %d, want %d", mode, got, users.Total())
		}
	}
}

func TestHealthz(t *testing.T) {
	_, c := startServer(t, Config{Mode: Jetty, Workers: 1})
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestModeString(t *testing.T) {
	if Jetty.String() != "jetty" || Pyjama.String() != "pyjama" || Mode(9).String() != "unknown" {
		t.Fatal("mode names")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.Workers != 1 || cfg.KernelBytes != 64*1024 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestClientBadBase(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	if _, err := c.Encrypt(0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestStopIdempotentAndBeforeStart(t *testing.T) {
	s := New(Config{Mode: Jetty, Workers: 1})
	s.Stop() // never started: must not hang or panic
	s2, c := startServer(t, Config{Mode: Pyjama, Workers: 1, KernelBytes: 1024})
	if _, err := c.Encrypt(0); err != nil {
		t.Fatal(err)
	}
	s2.Stop()
	s2.Stop() // double stop
	if _, err := c.Encrypt(0); err == nil {
		t.Fatal("request to stopped server succeeded")
	}
}

func TestPyjamaStartFailsOnSecondWorkerRegistration(t *testing.T) {
	s := New(Config{Mode: Pyjama, Workers: 1})
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// Reusing the same server's Start would re-register "worker".
	if _, err := s.Start(); err == nil {
		t.Fatal("second Start on pyjama server succeeded")
	}
}
