package httpserver

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/supervise"
)

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

// TestSupervisedServerSurvivesKillStorm is the end-to-end acceptance drill:
// worker goroutines are killed at a 10% rate under live HTTP load. With
// supervision the target restarts within its budget, /healthz reports
// degraded and then recovers, and no request hangs — every one gets a
// definite response (200, or a typed 5xx) well inside the client timeout.
func TestSupervisedServerSurvivesKillStorm(t *testing.T) {
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Rate: 0.10, Count: 6})
	s := New(Config{
		Mode:        Pyjama,
		Workers:     3,
		KernelBytes: 1024,
		Chaos:       inj,
		Supervise: &SuperviseConfig{
			Restart:          true,
			RespawnWorkers:   true,
			MaxRestarts:      30,
			Window:           400 * time.Millisecond,
			BackoffInitial:   time.Millisecond,
			BackoffMax:       5 * time.Millisecond,
			WatchdogInterval: 10 * time.Millisecond,
			StallAfter:       250 * time.Millisecond,
		},
	})
	base, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	client := NewClientTimeout(base, 5*time.Second)

	var ok, shed, failed int
	sawDegraded := false
	for i := 0; i < 150; i++ {
		_, status, err := client.Do(512)
		switch {
		case err == nil && status == 200:
			ok++
		case status == 503:
			shed++ // typed: target restarting
		case status == 500:
			failed++ // typed: the killed worker's request
		default:
			t.Fatalf("request %d hung or failed untyped: status=%d err=%v", i, status, err)
		}
		if !sawDegraded && s.Supervisor().Health().StatusValue() == supervise.Degraded {
			// The supervisor is mid-recovery: /healthz must say so.
			if hs, code, err := client.Healthz(); err != nil || code != 200 || hs != "degraded" {
				t.Fatalf("healthz during storm = %q/%d (%v)", hs, code, err)
			}
			sawDegraded = true
		}
	}
	if kills := inj.Injected(chaos.Kill); kills == 0 {
		t.Fatal("storm injected no kills; drill proved nothing")
	}
	if ok == 0 {
		t.Fatal("no request succeeded during the storm")
	}
	if !sawDegraded {
		t.Fatalf("supervision never reported degraded (ok=%d shed=%d failed=%d)", ok, shed, failed)
	}
	if s.Supervisor().Stats().Respawns.Value() == 0 {
		t.Fatal("no worker was respawned")
	}

	// The storm is bounded: once the window slides past the last restart,
	// /healthz reads ok again and requests flow cleanly.
	waitUntil(t, 5*time.Second, func() bool {
		hs, code, err := client.Healthz()
		return err == nil && code == 200 && hs == "ok"
	}, "healthz recovery")
	if _, status, err := client.Do(512); err != nil || status != 200 {
		t.Fatalf("post-storm request: status=%d err=%v", status, err)
	}
	t.Logf("storm: %d ok, %d shed, %d failed, %d kills, %d respawns",
		ok, shed, failed, inj.Injected(chaos.Kill), s.Supervisor().Stats().Respawns.Value())
}

// TestUnsupervisedServerWedgesAndWatchdogFlagsIt is the control drill: the
// same worker kills against an unsupervised server leave the pool empty,
// requests wedge until the client gives up, and the only component that
// notices is the stall watchdog — /healthz degrades on its report.
func TestUnsupervisedServerWedgesAndWatchdogFlagsIt(t *testing.T) {
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Kill, Nth: 1, Count: 2}) // first two tasks kill both workers
	s := New(Config{
		Mode:        Pyjama,
		Workers:     2,
		KernelBytes: 1024,
		Chaos:       inj,
		Supervise: &SuperviseConfig{
			Restart:          false, // watch only: nothing repairs the pool
			WatchdogInterval: 10 * time.Millisecond,
			StallAfter:       80 * time.Millisecond,
		},
	})
	base, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// Short-timeout client: a wedged request must surface as a client
	// timeout, not block the drill.
	client := NewClientTimeout(base, 400*time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	timeouts := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status, err := client.Do(512)
			if err != nil && status == 0 {
				// Transport-level failure: the request never got a
				// response before the client timeout — the wedge.
				mu.Lock()
				timeouts++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Nobody restarts anything: the watchdog's heartbeat probe queues
	// behind the wedge and crosses the stall threshold.
	waitUntil(t, 5*time.Second, func() bool { return s.Watchdog().Stalls() > 0 }, "watchdog stall")
	waitUntil(t, 5*time.Second, func() bool {
		hs, code, err := client.Healthz()
		return err == nil && code == 200 && hs == "degraded"
	}, "healthz degraded on stall")
	if rep := s.Watchdog().Health()["worker"]; rep.LivenessValue() != supervise.LiveStalled {
		t.Fatalf("watchdog report = %+v", rep)
	}
	if timeouts == 0 {
		t.Log("note: all requests failed fast (kills raced ahead of the queue)")
	}
	if kills := inj.Injected(chaos.Kill); kills != 2 {
		t.Fatalf("kills = %d, want 2", kills)
	}
	// Stop must still complete: the shutdown backstop fails the wedged
	// queue instead of waiting on dead workers.
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung on the wedged pool")
	}
}
