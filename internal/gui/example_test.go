package gui_test

import (
	"fmt"

	"repro/internal/gid"
	"repro/internal/gui"
)

// Example wires a button to a SwingWorker — the classic Java offloading
// idiom the evaluation uses as a baseline: background computation, progress
// chunks on the EDT, completion on the EDT.
func Example() {
	reg := &gid.Registry{}
	tk := gui.NewToolkit(reg)
	defer tk.Dispose()

	progress := tk.NewProgressBar("load", 100)
	status := tk.NewLabel("status")
	done := make(chan struct{})

	btn := tk.NewButton("run", func() {
		w := gui.NewSwingWorker[int, int](tk)
		w.DoInBackground = func(publish func(...int)) int {
			sum := 0
			for i := 1; i <= 100; i++ {
				sum += i
			}
			publish(100)
			return sum
		}
		w.Process = func(chunks []int) { progress.SetValue(chunks[len(chunks)-1]) }
		w.Done = func(sum int) {
			status.SetText(fmt.Sprintf("sum=%d", sum))
			close(done)
		}
		w.Execute()
	})

	btn.Click()
	<-done
	fmt.Println(status.Text(), "progress:", progress.Value())
	// Output: sum=5050 progress: 100
}
