package gui

import (
	"fmt"
	"testing"
)

func TestTextAreaAppendAndRetention(t *testing.T) {
	tk := newToolkit(t)
	ta := tk.NewTextArea("log", 3)
	tk.InvokeAndWait(func() {
		for i := 1; i <= 5; i++ {
			ta.Append(fmt.Sprintf("line %d", i))
		}
	})
	if ta.LineCount() != 3 {
		t.Fatalf("LineCount = %d, want 3 (retention)", ta.LineCount())
	}
	lines := ta.Lines()
	if lines[0] != "line 3" || lines[2] != "line 5" {
		t.Fatalf("Lines = %v", lines)
	}
	if ta.Text() != "line 3\nline 4\nline 5" {
		t.Fatalf("Text = %q", ta.Text())
	}
	tk.InvokeAndWait(ta.Clear)
	if ta.LineCount() != 0 {
		t.Fatal("Clear did not empty the area")
	}
}

func TestTextAreaUnlimited(t *testing.T) {
	tk := newToolkit(t)
	ta := tk.NewTextArea("log", 0)
	tk.InvokeAndWait(func() {
		for i := 0; i < 100; i++ {
			ta.Append("x")
		}
	})
	if ta.LineCount() != 100 {
		t.Fatalf("LineCount = %d", ta.LineCount())
	}
}

func TestTextAreaConfinement(t *testing.T) {
	tk := newToolkit(t)
	ta := tk.NewTextArea("log", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("off-EDT Append did not panic")
		}
	}()
	ta.Append("boom")
}

func TestFrame(t *testing.T) {
	tk := newToolkit(t)
	f := tk.NewFrame("Main Window")
	if f.Title() != "Main Window" || f.Visible() {
		t.Fatal("initial state")
	}
	err := tk.InvokeAndWait(func() {
		f.SetTitle("Renamed")
		f.SetVisible(true)
		if err := f.Add("status"); err != nil {
			t.Error(err)
		}
		if err := f.Add("progress"); err != nil {
			t.Error(err)
		}
		if err := f.Add("status"); err == nil {
			t.Error("duplicate child accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Title() != "Renamed" || !f.Visible() {
		t.Fatal("mutations lost")
	}
	kids := f.Children()
	if len(kids) != 2 || kids[0] != "status" || kids[1] != "progress" {
		t.Fatalf("Children = %v", kids)
	}
}
