package gui

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gid"
)

func newToolkit(t *testing.T) *Toolkit {
	t.Helper()
	var reg gid.Registry
	tk := NewToolkit(&reg)
	t.Cleanup(tk.Dispose)
	return tk
}

func TestLabelOnEDT(t *testing.T) {
	tk := newToolkit(t)
	lbl := tk.NewLabel("status")
	if err := tk.InvokeAndWait(func() { lbl.SetText("hello") }); err != nil {
		t.Fatal(err)
	}
	if lbl.Text() != "hello" {
		t.Fatalf("Text = %q", lbl.Text())
	}
	if tk.Updates() != 1 {
		t.Fatalf("Updates = %d", tk.Updates())
	}
	if tk.Violations() != 0 {
		t.Fatalf("Violations = %d", tk.Violations())
	}
}

func TestOffEDTMutationPanics(t *testing.T) {
	tk := newToolkit(t)
	lbl := tk.NewLabel("status")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("off-EDT SetText did not panic under PanicOnViolation")
		}
		// Untagged builds panic with the toolkit's message; under
		// -tags=ompsan the sanitizer fires first and panics with both the
		// violating and the home-binding stacks.
		msg := r.(string)
		if !strings.Contains(msg, "event-dispatch") && !strings.Contains(msg, "ompsan:") {
			t.Fatalf("panic message: %v", r)
		}
	}()
	lbl.SetText("boom") // calling goroutine is not the EDT
}

func TestOffEDTMutationCounted(t *testing.T) {
	tk := newToolkit(t)
	tk.SetPolicy(CountViolations)
	lbl := tk.NewLabel("status")
	lbl.SetText("tolerated")
	if tk.Violations() != 1 {
		t.Fatalf("Violations = %d, want 1", tk.Violations())
	}
	if lbl.Text() != "tolerated" {
		t.Fatal("mutation lost")
	}
}

func TestIsDispatchThread(t *testing.T) {
	tk := newToolkit(t)
	if tk.IsDispatchThread() {
		t.Fatal("test goroutine claimed to be the EDT")
	}
	var onEDT bool
	tk.InvokeAndWait(func() { onEDT = tk.IsDispatchThread() })
	if !onEDT {
		t.Fatal("EDT not recognized")
	}
}

func TestProgressBarClampAndHistory(t *testing.T) {
	tk := newToolkit(t)
	pb := tk.NewProgressBar("load", 100)
	tk.InvokeAndWait(func() {
		pb.SetValue(-5)
		pb.SetValue(42)
		pb.SetValue(1000)
	})
	if pb.Value() != 100 {
		t.Fatalf("Value = %d", pb.Value())
	}
	h := pb.History()
	if len(h) != 3 || h[0] != 0 || h[1] != 42 || h[2] != 100 {
		t.Fatalf("History = %v", h)
	}
	if pb.Max() != 100 {
		t.Fatalf("Max = %d", pb.Max())
	}
}

func TestButtonClickDispatchesOnEDT(t *testing.T) {
	tk := newToolkit(t)
	ran := make(chan bool, 1)
	btn := tk.NewButton("go", func() { ran <- tk.IsDispatchThread() })
	if err := btn.Click().Wait(); err != nil {
		t.Fatal(err)
	}
	if !<-ran {
		t.Fatal("handler ran off the EDT")
	}
	if btn.Clicks() != 1 {
		t.Fatalf("Clicks = %d", btn.Clicks())
	}
}

func TestButtonNilHandler(t *testing.T) {
	tk := newToolkit(t)
	btn := tk.NewButton("noop", nil)
	if err := btn.Click().Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestButtonSetHandler(t *testing.T) {
	tk := newToolkit(t)
	var which atomic.Int64
	btn := tk.NewButton("b", func() { which.Store(1) })
	tk.InvokeAndWait(func() { btn.SetHandler(func() { which.Store(2) }) })
	btn.Click().Wait()
	if which.Load() != 2 {
		t.Fatalf("handler = %d, want replaced handler 2", which.Load())
	}
}

func TestSwingWorkerLifecycle(t *testing.T) {
	// Reproduces the Figure 2/3 flow: background S1, publish -> process S2
	// on EDT, background S3, done S4 on EDT.
	tk := newToolkit(t)
	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	w := NewSwingWorker[string, int](tk)
	w.DoInBackground = func(publish func(...int)) string {
		if tk.IsDispatchThread() {
			t.Error("DoInBackground on EDT")
		}
		say("S1")
		publish(50)
		time.Sleep(5 * time.Millisecond) // let the chunk get processed
		say("S3")
		return "result"
	}
	w.Process = func(vals []int) {
		if !tk.IsDispatchThread() {
			t.Error("Process off EDT")
		}
		if len(vals) == 0 {
			t.Error("empty chunk")
		}
		say("S2")
	}
	w.Done = func(res string) {
		if !tk.IsDispatchThread() {
			t.Error("Done off EDT")
		}
		say("S4:" + res)
	}
	w.Execute()
	res, err := w.Get()
	if err != nil {
		t.Fatal(err)
	}
	if res != "result" {
		t.Fatalf("Get = %q", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(log) != 4 || log[0] != "S1" || log[3] != "S4:result" {
		t.Fatalf("log = %v", log)
	}
}

func TestSwingWorkerPublishCoalesces(t *testing.T) {
	tk := newToolkit(t)
	var chunks atomic.Int64
	var values atomic.Int64
	w := NewSwingWorker[struct{}, int](tk)
	block := make(chan struct{})
	w.DoInBackground = func(publish func(...int)) struct{} {
		<-block // hold the EDT-free window: all publishes coalesce
		for i := 0; i < 100; i++ {
			publish(i)
		}
		return struct{}{}
	}
	w.Process = func(vals []int) {
		chunks.Add(1)
		values.Add(int64(len(vals)))
	}
	w.Execute()
	close(block)
	if _, err := w.Get(); err != nil {
		t.Fatal(err)
	}
	if values.Load() != 100 {
		t.Fatalf("processed %d values, want 100", values.Load())
	}
	if chunks.Load() > 100 {
		t.Fatalf("chunks = %d, coalescing broken", chunks.Load())
	}
}

func TestSwingWorkerExecuteIdempotent(t *testing.T) {
	tk := newToolkit(t)
	var runs atomic.Int64
	w := NewSwingWorker[int, int](tk)
	w.DoInBackground = func(func(...int)) int { runs.Add(1); return 7 }
	w.Execute()
	w.Execute()
	w.Execute()
	v, err := w.Get()
	if err != nil || v != 7 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	time.Sleep(10 * time.Millisecond)
	if runs.Load() != 1 {
		t.Fatalf("DoInBackground ran %d times", runs.Load())
	}
}

func TestSwingWorkerPanicSurfacesInGet(t *testing.T) {
	tk := newToolkit(t)
	w := NewSwingWorker[int, int](tk)
	w.DoInBackground = func(func(...int)) int { panic("bg failure") }
	var doneRan atomic.Bool
	w.Done = func(int) { doneRan.Store(true) }
	w.Execute()
	if _, err := w.Get(); err == nil {
		t.Fatal("Get swallowed background panic")
	}
	if doneRan.Load() {
		t.Fatal("Done ran despite background panic")
	}
}

func TestExecutorServiceSubmitFuture(t *testing.T) {
	var reg gid.Registry
	es := NewFixedThreadPool(3, &reg)
	defer es.Shutdown()
	f := Submit(es, func() int { return 41 + 1 })
	v, err := f.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if !f.IsDone() {
		t.Fatal("IsDone = false after Get")
	}
}

func TestExecutorServiceWithInvokeLater(t *testing.T) {
	// The full ExecutorService baseline pattern: compute off-EDT, update
	// GUI via InvokeLater.
	tk := newToolkit(t)
	var reg2 gid.Registry
	es := NewFixedThreadPool(2, &reg2)
	defer es.Shutdown()
	lbl := tk.NewLabel("out")
	done := make(chan struct{})
	es.Execute(func() {
		sum := 0
		for i := 1; i <= 100; i++ {
			sum += i
		}
		tk.InvokeLater(func() {
			lbl.SetText("sum=5050")
			close(done)
		})
	})
	<-done
	if lbl.Text() != "sum=5050" {
		t.Fatalf("label = %q", lbl.Text())
	}
	if tk.Violations() != 0 {
		t.Fatalf("violations = %d", tk.Violations())
	}
}

func BenchmarkInvokeLaterRoundTrip(b *testing.B) {
	var reg gid.Registry
	tk := NewToolkit(&reg)
	defer tk.Dispose()
	lbl := tk.NewLabel("l")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.InvokeLater(func() { lbl.SetText("x") }).Wait()
	}
}
