package gui

import (
	"sync"

	"repro/internal/executor"
	"repro/internal/gid"
)

// swingWorkerPoolSize mirrors javax.swing.SwingWorker's internal executor:
// "the underlying implementation of SwingWorker maintains a default
// 10-thread-max thread pool" (Section V.A).
const swingWorkerPoolSize = 10

// swingPool lazily creates the toolkit's shared SwingWorker pool.
func (tk *Toolkit) swingPool() *executor.WorkerPool {
	tk.workerOnce.Do(func() {
		tk.workerPool = executor.NewWorkerPool("swingworker", swingWorkerPoolSize, tk.registry)
	})
	return tk.workerPool
}

// SwingWorker ports javax.swing.SwingWorker<T, V>: DoInBackground runs on
// the shared 10-thread pool, values passed to its publish callback are
// coalesced into chunks delivered to Process on the EDT, and Done runs on
// the EDT after the background work finishes. This is the first baseline of
// Evaluation A — the restructuring the paper's Figure 3 illustrates.
type SwingWorker[T, V any] struct {
	// DoInBackground is the background computation. It receives the publish
	// function for interim results. Required.
	DoInBackground func(publish func(...V)) T
	// Process receives coalesced chunks of published values on the EDT.
	// Optional.
	Process func([]V)
	// Done runs on the EDT after DoInBackground returns. Optional.
	Done func(T)

	tk *Toolkit

	mu        sync.Mutex
	chunks    []V
	scheduled bool
	executed  bool

	result T
	comp   *executor.Completion
	fin    func(error)
}

// NewSwingWorker binds a worker to a toolkit.
func NewSwingWorker[T, V any](tk *Toolkit) *SwingWorker[T, V] {
	w := &SwingWorker[T, V]{tk: tk}
	w.comp, w.fin = executor.NewPendingCompletion()
	return w
}

// Execute schedules DoInBackground on the worker pool. Calling Execute more
// than once is a no-op, as in Swing.
func (w *SwingWorker[T, V]) Execute() {
	w.mu.Lock()
	if w.executed {
		w.mu.Unlock()
		return
	}
	w.executed = true
	w.mu.Unlock()

	w.tk.swingPool().Post(func() {
		err := executor.RunCaptured(func() {
			w.result = w.DoInBackground(w.publish)
		})
		// done() is dispatched on the EDT after the background part, and
		// the worker is complete only after done() has run there.
		w.tk.InvokeLater(func() {
			if w.Done != nil && err == nil {
				w.Done(w.result)
			}
			w.fin(err)
		})
	})
}

// publish coalesces interim values and schedules at most one pending
// Process dispatch, mirroring SwingWorker's chunk coalescing.
func (w *SwingWorker[T, V]) publish(vals ...V) {
	if w.Process == nil {
		return
	}
	w.mu.Lock()
	w.chunks = append(w.chunks, vals...)
	if w.scheduled {
		w.mu.Unlock()
		return
	}
	w.scheduled = true
	w.mu.Unlock()
	w.tk.InvokeLater(func() {
		w.mu.Lock()
		chunk := w.chunks
		w.chunks = nil
		w.scheduled = false
		w.mu.Unlock()
		if len(chunk) > 0 {
			w.Process(chunk)
		}
	})
}

// Get blocks until the worker (including its Done callback) has completed
// and returns the background result; a background panic surfaces as the
// error.
func (w *SwingWorker[T, V]) Get() (T, error) {
	err := w.comp.Wait()
	return w.result, err
}

// Completion exposes the worker's completion (done-on-EDT included).
func (w *SwingWorker[T, V]) Completion() *executor.Completion { return w.comp }

// ExecutorService ports java.util.concurrent.Executors.newFixedThreadPool —
// the second baseline of Evaluation A ("ExecutorService, using
// SwingUtilities when necessary"): the handler submits work to a fixed pool
// and posts GUI updates back with InvokeLater.
type ExecutorService struct {
	pool *executor.WorkerPool
}

// NewFixedThreadPool creates an ExecutorService with n threads registered
// in reg (nil means gid.Default).
func NewFixedThreadPool(n int, reg *gid.Registry) *ExecutorService {
	if reg == nil {
		reg = &gid.Default
	}
	return &ExecutorService{pool: executor.NewWorkerPool("executorservice", n, reg)}
}

// Execute submits fn for asynchronous execution.
func (s *ExecutorService) Execute(fn func()) *executor.Completion { return s.pool.Post(fn) }

// Pool exposes the backing worker pool.
func (s *ExecutorService) Pool() *executor.WorkerPool { return s.pool }

// Shutdown stops the service.
func (s *ExecutorService) Shutdown() { s.pool.Shutdown() }

// Future is a typed result handle produced by Submit.
type Future[T any] struct {
	comp   *executor.Completion
	result *T
}

// Submit runs fn on the service and returns a Future for its value.
func Submit[T any](s *ExecutorService, fn func() T) *Future[T] {
	var slot T
	f := &Future[T]{result: &slot}
	f.comp = s.pool.Post(func() { *f.result = fn() })
	return f
}

// Get blocks for the value (returns the captured panic as error, if any).
func (f *Future[T]) Get() (T, error) {
	err := f.comp.Wait()
	return *f.result, err
}

// IsDone reports whether the computation has finished.
func (f *Future[T]) IsDone() bool { return f.comp.Finished() }
