// Package gui simulates the GUI framework substrate of the paper's
// Evaluation A: a Swing-like widget toolkit whose components are confined to
// an event-dispatch thread. There is no display in this environment — what
// the evaluation measures is the EDT's behaviour, so the toolkit reproduces
// precisely the properties that matter:
//
//   - widgets may only be mutated on the EDT ("GUI components are not
//     thread-safe and access is strictly confined to the EDT"); violations
//     are detected and, by policy, panic or are counted;
//   - events (button clicks) are dispatched by the EDT in FIFO order;
//   - the standard Java offloading idioms are ported as baselines:
//     SwingWorker (worker.go) and ExecutorService + InvokeLater.
package gui

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/sanitize"
)

// ConfinementPolicy selects how off-EDT widget access is handled.
type ConfinementPolicy int

const (
	// PanicOnViolation panics on off-EDT access (fail fast; default, like
	// running Swing with a ThreadCheckingRepaintManager).
	PanicOnViolation ConfinementPolicy = iota
	// CountViolations records violations without interrupting execution
	// (how real Swing misbehaves silently; useful in benchmarks).
	CountViolations
)

// Toolkit owns the EDT and the widget tree of one simulated application.
type Toolkit struct {
	loop       *eventloop.Loop
	registry   *gid.Registry
	policy     ConfinementPolicy
	violations atomic.Int64
	updates    atomic.Int64

	workerOnce sync.Once
	workerPool *executor.WorkerPool
}

// NewToolkit creates a toolkit with a running EDT registered in reg (nil
// means gid.Default).
func NewToolkit(reg *gid.Registry) *Toolkit {
	if reg == nil {
		reg = &gid.Default
	}
	l := eventloop.New("edt", reg)
	l.Start()
	return &Toolkit{loop: l, registry: reg}
}

// SetPolicy selects the confinement policy (default PanicOnViolation).
func (tk *Toolkit) SetPolicy(p ConfinementPolicy) { tk.policy = p }

// EDT returns the toolkit's event loop, for registration as a virtual
// target and for posting events.
func (tk *Toolkit) EDT() *eventloop.Loop { return tk.loop }

// InvokeLater schedules fn on the EDT (SwingUtilities.invokeLater).
func (tk *Toolkit) InvokeLater(fn func()) *executor.Completion { return tk.loop.Post(fn) }

// InvokeAndWait runs fn on the EDT and blocks until done
// (SwingUtilities.invokeAndWait).
func (tk *Toolkit) InvokeAndWait(fn func()) error { return tk.loop.InvokeAndWait(fn) }

// IsDispatchThread reports whether the caller is the EDT
// (SwingUtilities.isEventDispatchThread).
func (tk *Toolkit) IsDispatchThread() bool { return tk.loop.Owns() }

// Violations returns the number of detected off-EDT accesses.
func (tk *Toolkit) Violations() int64 { return tk.violations.Load() }

// Updates returns the number of widget mutations performed.
func (tk *Toolkit) Updates() int64 { return tk.updates.Load() }

// Dispose stops the EDT and the SwingWorker pool, if one was created.
func (tk *Toolkit) Dispose() {
	if tk.workerPool != nil {
		tk.workerPool.Shutdown()
	}
	tk.loop.Stop()
}

// checkConfinement enforces the single-thread rule for a mutation of widget
// name. Under -tags=ompsan it additionally cross-validates the registry's
// ownership answer against the loop's gid stamp (two independent
// mechanisms must agree that the caller is the EDT), and a violating
// mutation panics with both stacks — the violator's and the one that
// bound the EDT — instead of just the violator's. The CountViolations
// policy keeps its non-panicking semantics either way, so deliberate-
// violation benchmarks survive the sanitizer.
func (tk *Toolkit) checkConfinement(widget string) {
	if tk.loop.Owns() {
		tk.loop.SanCheck("mutate widget " + widget)
		return
	}
	tk.violations.Add(1)
	if tk.policy == PanicOnViolation {
		if sanitize.Enabled {
			tk.loop.SanViolate("mutate widget " + widget)
		}
		panic(fmt.Sprintf("gui: %s mutated off the event-dispatch thread", widget))
	}
}

// widget embeds the confinement machinery common to all components.
type widget struct {
	tk   *Toolkit
	name string
	mu   sync.Mutex
}

func (w *widget) mutate(fn func()) {
	w.tk.checkConfinement(w.name)
	w.mu.Lock()
	fn()
	w.mu.Unlock()
	w.tk.updates.Add(1)
}

func (w *widget) read(fn func()) {
	w.mu.Lock()
	fn()
	w.mu.Unlock()
}

// Label is a text component (javax.swing.JLabel).
type Label struct {
	widget
	text string
}

// NewLabel creates a label owned by tk.
func (tk *Toolkit) NewLabel(name string) *Label {
	return &Label{widget: widget{tk: tk, name: name}}
}

// SetText mutates the label text; EDT only.
func (l *Label) SetText(s string) { l.mutate(func() { l.text = s }) }

// Text returns the label text.
func (l *Label) Text() string {
	var s string
	l.read(func() { s = l.text })
	return s
}

// ProgressBar is a bounded progress component (javax.swing.JProgressBar).
type ProgressBar struct {
	widget
	value, max int
	history    []int
}

// NewProgressBar creates a progress bar with the given maximum.
func (tk *Toolkit) NewProgressBar(name string, max int) *ProgressBar {
	if max < 1 {
		max = 1
	}
	return &ProgressBar{widget: widget{tk: tk, name: name}, max: max}
}

// SetValue mutates the progress value; EDT only. Values are clamped to
// [0, Max] and recorded in order for test assertions.
func (p *ProgressBar) SetValue(v int) {
	p.mutate(func() {
		if v < 0 {
			v = 0
		}
		if v > p.max {
			v = p.max
		}
		p.value = v
		p.history = append(p.history, v)
	})
}

// Value returns the current progress value.
func (p *ProgressBar) Value() int {
	var v int
	p.read(func() { v = p.value })
	return v
}

// Max returns the progress bar's maximum.
func (p *ProgressBar) Max() int { return p.max }

// History returns the sequence of values set so far.
func (p *ProgressBar) History() []int {
	var h []int
	p.read(func() { h = append(h, p.history...) })
	return h
}

// Button is a clickable component (javax.swing.JButton). Clicking enqueues
// the registered handler as an event on the EDT — the inversion of control
// of Section I: the framework calls the handler, never the reverse.
type Button struct {
	widget
	handler func()
	clicks  atomic.Int64
}

// NewButton creates a button with the given click handler.
func (tk *Toolkit) NewButton(name string, onClick func()) *Button {
	return &Button{widget: widget{tk: tk, name: name}, handler: onClick}
}

// SetHandler replaces the click handler; EDT only.
func (b *Button) SetHandler(fn func()) { b.mutate(func() { b.handler = fn }) }

// Click fires the button's event from any goroutine (user input arrives
// from outside the EDT) and returns the handler's Completion. The returned
// completion covers the handler body only — offloaded continuations are the
// application's business, exactly as in Swing.
func (b *Button) Click() *executor.Completion {
	b.clicks.Add(1)
	var h func()
	b.read(func() { h = b.handler })
	if h == nil {
		return executor.NewCompletedCompletion(nil)
	}
	return b.tk.loop.PostLabeled(b.name, h)
}

// Clicks returns how many times the button was clicked.
func (b *Button) Clicks() int64 { return b.clicks.Load() }
