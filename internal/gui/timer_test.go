package gui

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestTimerRepeats(t *testing.T) {
	tk := newToolkit(t)
	var n atomic.Int64
	var onEDT atomic.Bool
	onEDT.Store(true)
	tm := tk.NewTimer(5*time.Millisecond, func() {
		if !tk.IsDispatchThread() {
			onEDT.Store(false)
		}
		n.Add(1)
	})
	tm.Start()
	defer tm.Stop()
	deadline := time.After(2 * time.Second)
	for n.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("timer fired only %d times", n.Load())
		case <-time.After(time.Millisecond):
		}
	}
	if !onEDT.Load() {
		t.Fatal("action ran off the EDT")
	}
	if !tm.IsRunning() {
		t.Fatal("IsRunning = false while running")
	}
	tm.Stop()
	if tm.IsRunning() {
		t.Fatal("IsRunning = true after Stop")
	}
}

func TestTimerOneShot(t *testing.T) {
	tk := newToolkit(t)
	var n atomic.Int64
	tm := tk.NewTimer(5*time.Millisecond, func() { n.Add(1) })
	tm.SetRepeats(false)
	tm.Start()
	time.Sleep(40 * time.Millisecond)
	if got := n.Load(); got != 1 {
		t.Fatalf("one-shot fired %d times", got)
	}
	if tm.IsRunning() {
		t.Fatal("one-shot still running after firing")
	}
}

func TestTimerCoalescing(t *testing.T) {
	tk := newToolkit(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	// Block the EDT so ticks pile up against one queued fire.
	tk.InvokeLater(func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	<-started
	tm := tk.NewTimer(2*time.Millisecond, func() {})
	tm.Start()
	time.Sleep(50 * time.Millisecond)
	close(release)
	tm.Stop()
	time.Sleep(10 * time.Millisecond)
	if tm.Coalesced() == 0 {
		t.Fatal("no ticks coalesced while the EDT was blocked")
	}
	if tm.Fired() > 3 {
		t.Fatalf("fired %d times despite a blocked EDT (coalescing broken)", tm.Fired())
	}
}

func TestTimerStartIdempotentAndStopIdempotent(t *testing.T) {
	tk := newToolkit(t)
	tm := tk.NewTimer(time.Millisecond, func() {})
	tm.Start()
	tm.Start() // no-op
	tm.Stop()
	tm.Stop() // no-op
}

func TestTimerDelayClamped(t *testing.T) {
	tk := newToolkit(t)
	tm := tk.NewTimer(0, nil)
	if tm.Delay() <= 0 {
		t.Fatal("delay not clamped")
	}
	tm.SetRepeats(false)
	tm.Start()
	time.Sleep(20 * time.Millisecond) // nil action must not panic
}
