package gui

import (
	"fmt"
	"strings"
)

// TextArea is a multi-line text component (javax.swing.JTextArea) used as
// an application log view. Mutations are EDT-confined like every widget.
type TextArea struct {
	widget
	lines []string
	max   int
}

// NewTextArea creates a text area retaining at most max lines (0 =
// unlimited).
func (tk *Toolkit) NewTextArea(name string, max int) *TextArea {
	return &TextArea{widget: widget{tk: tk, name: name}, max: max}
}

// Append adds one line; EDT only. When the retention limit is exceeded the
// oldest lines are dropped (a scrolling log).
func (a *TextArea) Append(line string) {
	a.mutate(func() {
		a.lines = append(a.lines, line)
		if a.max > 0 && len(a.lines) > a.max {
			a.lines = a.lines[len(a.lines)-a.max:]
		}
	})
}

// Clear removes all lines; EDT only.
func (a *TextArea) Clear() { a.mutate(func() { a.lines = a.lines[:0] }) }

// LineCount returns the number of retained lines.
func (a *TextArea) LineCount() int {
	var n int
	a.read(func() { n = len(a.lines) })
	return n
}

// Text returns the full contents joined by newlines.
func (a *TextArea) Text() string {
	var s string
	a.read(func() { s = strings.Join(a.lines, "\n") })
	return s
}

// Lines returns a copy of the retained lines.
func (a *TextArea) Lines() []string {
	var out []string
	a.read(func() { out = append(out, a.lines...) })
	return out
}

// Frame is a top-level window (javax.swing.JFrame): a titled container
// tracking child components and visibility. It exists so applications have
// a root to enumerate their widgets from; there is no real display.
type Frame struct {
	widget
	title    string
	visible  bool
	children []string
}

// NewFrame creates a frame with the given title.
func (tk *Toolkit) NewFrame(title string) *Frame {
	return &Frame{widget: widget{tk: tk, name: "frame:" + title}, title: title}
}

// Title returns the frame title.
func (f *Frame) Title() string {
	var s string
	f.read(func() { s = f.title })
	return s
}

// SetTitle updates the title; EDT only.
func (f *Frame) SetTitle(t string) { f.mutate(func() { f.title = t }) }

// SetVisible shows or hides the frame; EDT only.
func (f *Frame) SetVisible(v bool) { f.mutate(func() { f.visible = v }) }

// Visible reports whether the frame is shown.
func (f *Frame) Visible() bool {
	var v bool
	f.read(func() { v = f.visible })
	return v
}

// Add registers a child component name; EDT only. Duplicate names are
// rejected, mirroring a container's unique-component constraint.
func (f *Frame) Add(componentName string) error {
	var err error
	f.mutate(func() {
		for _, c := range f.children {
			if c == componentName {
				err = fmt.Errorf("gui: component %q already added to %s", componentName, f.name)
				return
			}
		}
		f.children = append(f.children, componentName)
	})
	return err
}

// Children returns the registered component names in add order.
func (f *Frame) Children() []string {
	var out []string
	f.read(func() { out = append(out, f.children...) })
	return out
}
