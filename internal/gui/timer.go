package gui

import (
	"sync"
	"sync/atomic"
	"time"
)

// Timer ports javax.swing.Timer: it fires an action on the EDT at a fixed
// delay, optionally repeating. Like Swing's, it coalesces: if a fire is
// still queued (the EDT is busy) when the next tick arrives, the tick is
// dropped instead of piling up events — precisely the behaviour periodic
// GUI animations rely on when handlers are slow.
type Timer struct {
	tk     *Toolkit
	action func()

	mu      sync.Mutex
	delay   time.Duration
	repeats bool
	ticker  *time.Ticker
	stop    chan struct{}
	running bool

	pending   atomic.Bool
	fired     atomic.Int64
	coalesced atomic.Int64
}

// NewTimer creates a repeating timer with the given delay and EDT action.
// The timer does not run until Start.
func (tk *Toolkit) NewTimer(delay time.Duration, action func()) *Timer {
	if delay <= 0 {
		delay = time.Millisecond
	}
	return &Timer{tk: tk, delay: delay, repeats: true, action: action}
}

// SetRepeats selects between repeating (default) and one-shot behaviour.
// Must be called before Start.
func (t *Timer) SetRepeats(v bool) {
	t.mu.Lock()
	t.repeats = v
	t.mu.Unlock()
}

// Delay returns the configured delay.
func (t *Timer) Delay() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.delay
}

// IsRunning reports whether the timer is started.
func (t *Timer) IsRunning() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.running
}

// Fired returns how many times the action has been dispatched.
func (t *Timer) Fired() int64 { return t.fired.Load() }

// Coalesced returns how many ticks were dropped because a fire was still
// queued on the EDT.
func (t *Timer) Coalesced() int64 { return t.coalesced.Load() }

// Start begins ticking. Starting a running timer is a no-op.
func (t *Timer) Start() {
	t.mu.Lock()
	if t.running {
		t.mu.Unlock()
		return
	}
	t.running = true
	t.stop = make(chan struct{})
	stop := t.stop
	repeats := t.repeats
	delay := t.delay
	t.mu.Unlock()

	go func() {
		if !repeats {
			select {
			case <-time.After(delay):
				t.fire()
			case <-stop:
			}
			t.mu.Lock()
			t.running = false
			t.mu.Unlock()
			return
		}
		tick := time.NewTicker(delay)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.fire()
			case <-stop:
				return
			}
		}
	}()
}

// fire posts one action to the EDT unless one is already queued.
func (t *Timer) fire() {
	if !t.pending.CompareAndSwap(false, true) {
		t.coalesced.Add(1)
		return
	}
	t.tk.InvokeLater(func() {
		t.pending.Store(false)
		t.fired.Add(1)
		if t.action != nil {
			t.action()
		}
	})
}

// Stop halts the timer. A queued-but-undispatched action may still run.
// Stopping a stopped timer is a no-op.
func (t *Timer) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.running {
		return
	}
	t.running = false
	close(t.stop)
}
