package gui

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gid"
)

func TestSwingWorkerWithoutOptionalCallbacks(t *testing.T) {
	tk := newToolkit(t)
	w := NewSwingWorker[int, int](tk)
	w.DoInBackground = func(publish func(...int)) int {
		publish(1, 2, 3) // Process is nil: published values are dropped
		return 9
	}
	w.Execute()
	v, err := w.Get()
	if err != nil || v != 9 {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

func TestSwingWorkerCompletionChannel(t *testing.T) {
	tk := newToolkit(t)
	w := NewSwingWorker[int, int](tk)
	gate := make(chan struct{})
	w.DoInBackground = func(func(...int)) int { <-gate; return 1 }
	w.Execute()
	if w.Completion().Finished() {
		t.Fatal("finished early")
	}
	close(gate)
	if _, err := w.Get(); err != nil {
		t.Fatal(err)
	}
	if !w.Completion().Finished() {
		t.Fatal("completion not finished after Get")
	}
}

func TestProgressBarMaxClamped(t *testing.T) {
	tk := newToolkit(t)
	pb := tk.NewProgressBar("p", 0)
	if pb.Max() != 1 {
		t.Fatalf("Max = %d, want clamped 1", pb.Max())
	}
}

func TestFutureWithPanic(t *testing.T) {
	var reg gid.Registry
	es := NewFixedThreadPool(1, &reg)
	defer es.Shutdown()
	f := Submit(es, func() int { panic("future bug") })
	if _, err := f.Get(); err == nil {
		t.Fatal("panic swallowed by Future.Get")
	}
}

func TestToolkitPolicySwitchMidRun(t *testing.T) {
	tk := newToolkit(t)
	tk.SetPolicy(CountViolations)
	lbl := tk.NewLabel("l")
	lbl.SetText("off-edt") // counted, not panicking
	if tk.Violations() != 1 {
		t.Fatalf("violations = %d", tk.Violations())
	}
	tk.SetPolicy(PanicOnViolation)
	var panicked atomic.Bool
	func() {
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		lbl.SetText("boom")
	}()
	if !panicked.Load() {
		t.Fatal("strict policy did not panic")
	}
}

func TestInvokeAndWaitPropagatesShutdown(t *testing.T) {
	var reg gid.Registry
	tk := NewToolkit(&reg)
	tk.Dispose()
	if err := tk.InvokeAndWait(func() {}); err == nil {
		t.Fatal("InvokeAndWait on disposed toolkit succeeded")
	}
	// A second Dispose is harmless even with the lazy worker pool absent.
	tk.Dispose()
}

func TestSwingPoolLazyCreation(t *testing.T) {
	var reg gid.Registry
	tk := NewToolkit(&reg)
	defer tk.Dispose()
	if tk.workerPool != nil {
		t.Fatal("worker pool created eagerly")
	}
	w := NewSwingWorker[int, int](tk)
	w.DoInBackground = func(func(...int)) int { return 0 }
	w.Execute()
	w.Get()
	if tk.workerPool == nil {
		t.Fatal("worker pool not created by Execute")
	}
	if tk.workerPool.Workers() != swingWorkerPoolSize {
		t.Fatalf("pool size = %d, want %d", tk.workerPool.Workers(), swingWorkerPoolSize)
	}
}

func TestErrorsAreTyped(t *testing.T) {
	var reg gid.Registry
	tk := NewToolkit(&reg)
	tk.Dispose()
	err := tk.InvokeLater(func() {}).Wait()
	if err == nil || errors.Is(err, errNever) {
		t.Fatalf("err = %v", err)
	}
}

var errNever = errors.New("never")
