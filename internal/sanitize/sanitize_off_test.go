//go:build !ompsan

package sanitize

import "testing"

// Untagged builds must make every primitive a free no-op: checks pass from
// any goroutine, nothing is counted, and Enabled is a false constant so
// `if sanitize.Enabled` blocks compile out.
func TestUntaggedNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false untagged")
	}
	var h Home
	h.Bind("test", "x")
	h.Check("anything")
	h.Violate("anything")
	h.Unbind()
	if d := h.Describe(); d != "" {
		t.Fatalf("Describe = %q, want empty", d)
	}
	var m Members
	m.Join("test", "x")
	m.Check("anything")
	m.Leave()
	if Checks() != 0 {
		t.Fatalf("Checks = %d, want 0", Checks())
	}
}
