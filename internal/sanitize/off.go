//go:build !ompsan

package sanitize

// Enabled reports whether the ompsan sanitizer is compiled in. It is a
// constant, so `if sanitize.Enabled { ... }` blocks are dead-code
// eliminated from untagged builds.
const Enabled = false

// Home is a single-goroutine confinement context. Untagged: empty, and
// every method is a no-op.
type Home struct{}

// Bind stamps the calling goroutine as the home context. No-op untagged.
func (h *Home) Bind(kind, name string) {}

// Unbind clears the stamp (the owning goroutine is exiting). No-op
// untagged.
func (h *Home) Unbind() {}

// Check asserts the calling goroutine is the bound home context. No-op
// untagged.
func (h *Home) Check(op string) {}

// Violate unconditionally reports a confinement violation detected by an
// independent mechanism (e.g. the gui toolkit's policy check), so the
// panic carries both stacks. No-op untagged — callers gate on Enabled and
// provide their own untagged failure path.
func (h *Home) Violate(op string) {}

// Describe renders the binding (kind, name, goroutine, bind stack) for
// inclusion in diagnostics. Empty untagged.
func (h *Home) Describe() string { return "" }

// Members is a multi-goroutine confinement context. Untagged: empty, and
// every method is a no-op.
type Members struct{}

// Join adds the calling goroutine to the member set. No-op untagged.
func (m *Members) Join(kind, name string) {}

// Leave removes the calling goroutine from the member set. No-op untagged.
func (m *Members) Leave() {}

// Check asserts the calling goroutine is a member. No-op untagged.
func (m *Members) Check(op string) {}

// Checks returns how many affinity assertions have run process-wide: the
// "measurably exercised" counter sancheck tests assert on. Zero untagged.
func Checks() int64 { return 0 }
