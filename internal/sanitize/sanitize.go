// Package sanitize is the runtime half of the repo's confinement story: a
// build-tag-gated sanitizer ("ompsan") that validates dynamically the same
// invariants the ompvet static passes prove syntactically — a confined
// object's state is only ever touched from its home dispatch context.
//
// The static passes (edtconfine, blockguard, the callgraph summaries) are
// deliberately conservative: they report only on definite contexts, so a
// closure that escapes through an interface, a reflective call, or a
// dispatch site ompvet does not know about sails through unseen. The
// sanitizer closes that gap from the other side: every mutation of stamped
// state asserts, at run time, that the executing goroutine is the one the
// state is confined to — so *every existing test* doubles as a confinement
// test when the suite runs under `-tags=ompsan` (see `make sancheck`).
//
// Two primitives cover the runtime's two confinement shapes:
//
//   - Home — a single-goroutine context (an event loop's dispatch
//     goroutine, a reactor's poll goroutine, one pool worker). The owner
//     binds it from its own goroutine via Bind, which stamps the ~3ns
//     gid.Current identity and captures the binding stack; Check then
//     panics on any call from a different goroutine, printing BOTH stacks
//     (the violating goroutine's and the one captured at Bind), which is
//     exactly the pair a human needs to see which two contexts collided.
//   - Members — a multi-goroutine context (a worker pool). Worker
//     goroutines Join/Leave; Check asserts the caller is a current member.
//     It cross-validates the gid.Registry's thread-context-awareness
//     answer: when core.Runtime inlines a block because the registry says
//     the encountering goroutine belongs to the target, the sanitizer
//     confirms the stamp agrees.
//
// Without the ompsan build tag every type is empty and every method is an
// inlineable no-op, so the hooks cost nothing in production builds. With
// the tag, a Check is one atomic load plus a gid.Current read (~3ns) on
// the hit path; binding captures a stack and is therefore only paid at
// executor start/restart.
package sanitize
