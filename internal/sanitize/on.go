//go:build ompsan

package sanitize

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/gid"
)

// Enabled reports whether the ompsan sanitizer is compiled in.
const Enabled = true

// checks counts affinity assertions process-wide (see Checks).
var checks atomic.Int64

// Checks returns how many affinity assertions have run process-wide. Tests
// use it to prove the sanitizer was measurably exercised, not merely
// compiled in.
func Checks() int64 { return checks.Load() }

// Home is a single-goroutine confinement context: the stamp of the one
// goroutine allowed to mutate the state guarded by it.
type Home struct {
	// id is the bound goroutine id, 0 while unbound. It is the only field
	// the hot path reads.
	id atomic.Uint64

	mu    sync.Mutex
	kind  string // e.g. "eventloop", "reactor", "worker"
	name  string // the owning executor's target name
	stack []byte // goroutine stack captured at Bind
}

// Bind stamps the calling goroutine as the home context and captures its
// stack, so a later violation can show where the context was established.
// Call it from the owning goroutine itself (executor start or supervised
// restart); rebinding replaces the previous stamp.
func (h *Home) Bind(kind, name string) {
	h.mu.Lock()
	h.kind, h.name = kind, name
	h.stack = debug.Stack()
	h.mu.Unlock()
	h.id.Store(uint64(gid.Current()))
}

// Unbind clears the stamp. Call it when the owning goroutine exits: checks
// against an unbound Home pass vacuously (the executor is restarting and
// no goroutine is the home), which keeps crash/restart windows from
// turning into false positives.
func (h *Home) Unbind() { h.id.Store(0) }

// Check asserts the calling goroutine is the bound home context and
// panics with both stacks if it is not. The hit path is one atomic load
// plus gid.Current.
func (h *Home) Check(op string) {
	home := h.id.Load()
	if home == 0 {
		return
	}
	checks.Add(1)
	cur := uint64(gid.Current())
	if cur == home {
		return
	}
	panic(h.violation(op, cur, home))
}

// Violate reports a violation detected by an independent mechanism (the
// caller already knows the current goroutine is not the home), so the
// panic carries the same two-stack diagnostic as Check.
func (h *Home) Violate(op string) {
	panic(h.violation(op, uint64(gid.Current()), h.id.Load()))
}

// violation renders the two-stack panic message: what happened, on which
// goroutine, and the stacks of both the violating goroutine and the home
// binding.
func (h *Home) violation(op string, cur, home uint64) string {
	h.mu.Lock()
	kind, name, bound := h.kind, h.name, h.stack
	h.mu.Unlock()
	return fmt.Sprintf(
		"ompsan: %s on goroutine %d, but %s %q state is confined to its home context (goroutine %d)\n\n"+
			"-- violating goroutine stack --\n%s\n-- home context bound at --\n%s",
		op, cur, kind, name, home, debug.Stack(), bound)
}

// Describe renders the binding for inclusion in a caller-owned diagnostic:
// kind, name, home goroutine id, and the stack captured at Bind.
func (h *Home) Describe() string {
	home := h.id.Load()
	if home == 0 {
		return ""
	}
	h.mu.Lock()
	kind, name, bound := h.kind, h.name, h.stack
	h.mu.Unlock()
	return fmt.Sprintf("%s %q home context is goroutine %d\n-- home context bound at --\n%s",
		kind, name, home, bound)
}

// Members is a multi-goroutine confinement context: the set of goroutines
// (a worker pool's workers) allowed to run a target's blocks.
type Members struct {
	mu     sync.Mutex
	kind   string
	name   string
	stacks map[uint64][]byte // member gid -> join stack
}

// Join adds the calling goroutine to the member set, capturing its stack
// for violation diagnostics.
func (m *Members) Join(kind, name string) {
	id := uint64(gid.Current())
	m.mu.Lock()
	m.kind, m.name = kind, name
	if m.stacks == nil {
		m.stacks = make(map[uint64][]byte)
	}
	m.stacks[id] = debug.Stack()
	m.mu.Unlock()
}

// Leave removes the calling goroutine from the member set.
func (m *Members) Leave() {
	id := uint64(gid.Current())
	m.mu.Lock()
	delete(m.stacks, id)
	m.mu.Unlock()
}

// Check asserts the calling goroutine is a current member and panics with
// both stacks (the violator's and the nearest member's join stack, as the
// closest thing a set has to a single home binding) if it is not.
func (m *Members) Check(op string) {
	checks.Add(1)
	id := uint64(gid.Current())
	m.mu.Lock()
	if len(m.stacks) == 0 {
		// No members: the pool has not started or is shut down / between
		// supervised restarts. Pass vacuously, like an unbound Home.
		m.mu.Unlock()
		return
	}
	_, ok := m.stacks[id]
	if ok {
		m.mu.Unlock()
		return
	}
	kind, name := m.kind, m.name
	var sample []byte
	var sampleID uint64
	for mid, st := range m.stacks {
		sample, sampleID = st, mid
		break
	}
	n := len(m.stacks)
	m.mu.Unlock()
	msg := fmt.Sprintf(
		"ompsan: %s on goroutine %d, which is not one of the %d member goroutine(s) of %s %q\n\n"+
			"-- violating goroutine stack --\n%s",
		op, id, n, kind, name, debug.Stack())
	if sample != nil {
		msg += fmt.Sprintf("\n-- a member (goroutine %d) joined at --\n%s", sampleID, sample)
	}
	panic(msg)
}
