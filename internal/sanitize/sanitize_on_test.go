//go:build ompsan

package sanitize

import (
	"strings"
	"sync"
	"testing"
)

// recoverString runs fn and returns the recovered panic value as a string
// ("" when fn does not panic).
func recoverString(fn func()) (msg string) {
	defer func() {
		if v := recover(); v != nil {
			msg = v.(string)
		}
	}()
	fn()
	return ""
}

func TestHomeOwnerPasses(t *testing.T) {
	var h Home
	h.Bind("test", "owner")
	before := Checks()
	h.Check("mutate")
	h.Check("mutate again")
	if got := Checks() - before; got != 2 {
		t.Fatalf("Checks advanced by %d, want 2", got)
	}
}

func TestHomeViolationPanicsWithBothStacks(t *testing.T) {
	var h Home
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.Bind("eventloop", "edt")
	}()
	wg.Wait()

	msg := recoverString(func() { h.Check("mutate widget status") })
	if msg == "" {
		t.Fatal("off-home Check did not panic")
	}
	for _, want := range []string{
		"ompsan: mutate widget status",
		`eventloop "edt"`,
		"-- violating goroutine stack --",
		"-- home context bound at --",
		"sanitize.(*Home).Bind", // the binder's frame must appear in the home stack
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic message missing %q:\n%s", want, msg)
		}
	}
	// Both stacks must be present and distinct: the violating stack carries
	// this test function, the home stack carries the binder goroutine.
	if !strings.Contains(msg, "TestHomeViolationPanicsWithBothStacks") {
		t.Errorf("violating stack does not show the violating frame:\n%s", msg)
	}
}

func TestHomeUnboundPassesVacuously(t *testing.T) {
	var h Home
	h.Check("anything") // never bound: restart window, must not panic
	h.Bind("test", "x")
	h.Unbind()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.Check("after unbind") // unbound again: must not panic
	}()
	<-done
}

func TestHomeRebindMovesHome(t *testing.T) {
	var h Home
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.Bind("test", "gen1")
	}()
	wg.Wait()
	// Supervised restart: the new generation's goroutine rebinds, and the
	// old home becomes a violator while the new one passes.
	h.Bind("test", "gen2")
	h.Check("on new home")
}

func TestHomeDescribe(t *testing.T) {
	var h Home
	if d := h.Describe(); d != "" {
		t.Fatalf("unbound Describe = %q, want empty", d)
	}
	h.Bind("reactor", "netA")
	d := h.Describe()
	if !strings.Contains(d, `reactor "netA"`) || !strings.Contains(d, "home context") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestMembersCheck(t *testing.T) {
	var m Members
	m.Check("before any join") // empty set passes vacuously

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Join("workerpool", "pool")
		m.Check("as member")
	}()
	wg.Wait()

	msg := recoverString(func() { m.Check("run block") })
	if msg == "" {
		t.Fatal("non-member Check did not panic")
	}
	for _, want := range []string{
		"ompsan: run block",
		`workerpool "pool"`,
		"-- violating goroutine stack --",
		"joined at --",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic message missing %q:\n%s", want, msg)
		}
	}
}

func TestMembersLeave(t *testing.T) {
	var m Members
	m.Join("workerpool", "pool")
	m.Check("while member")
	m.Leave()
	// The set is empty again: passes vacuously (pool shut down).
	m.Check("after leave")
}
