// Package netloop is a second event-driven framework on top of the same
// runtime — the paper's further work ("a more universal implementation to
// support more event-driven frameworks"). It is a libevent-style message
// server (libevent is the related-work archetype the paper cites): one
// dispatch goroutine drains a queue of connection events (message arrived,
// client connected/disconnected) and runs the registered handlers, so
// handlers enjoy the same single-threaded discipline as a GUI's EDT.
//
// Because the dispatch loop is an eventloop.Loop, it registers directly as
// a virtual target: a message handler can offload parsing or computation
// with `target virtual(worker) nowait` and hop back with
// `target virtual(dispatch)` to write responses, keeping all connection
// state single-threaded without locks.
package netloop

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/qos"
	"repro/internal/reactor"
	"repro/internal/trace"
)

// Handler processes one line-delimited message on the dispatch loop.
type Handler func(c *Client, line string)

// Interceptor sits between the read loop and the dispatch queue: it
// receives each message event ("msg") and its handler closure before the
// message is queued, and returns the closure to dispatch plus a keep flag —
// false suppresses the message entirely (it never reaches the queue, never
// takes a limiter slot, and is counted by Dropped). The fault-injection
// layer (chaos.NetInterceptor) plugs in here to drop or delay messages.
type Interceptor func(event string, fn func()) (func(), bool)

// Server is a line-oriented message server with single-threaded dispatch.
// Two transports feed the same dispatch loop: the portable default spawns
// one reader goroutine per connection; EnableReactor replaces those readers
// with a single readiness-driven poll goroutine (see internal/reactor).
type Server struct {
	name     string
	loop     *eventloop.Loop
	registry *gid.Registry
	reactor  *reactor.Reactor    // nil on the goroutine-per-connection transport
	sreactor *reactor.Supervised // non-nil when EnableSupervisedReactor was used

	mu        sync.Mutex
	ln        net.Listener
	clients   map[int64]*Client
	onMessage Handler
	onConnect func(*Client)
	onClose   func(*Client)
	closed    bool

	limiter     *qos.Limiter // nil = unbounded dispatch queue (seed behaviour)
	interceptor atomic.Pointer[Interceptor]

	// Survivability knobs, set before Start (see SetIdleDeadline and
	// SetMaxConns). Both apply to either transport.
	idleDeadline time.Duration
	connLimiter  *qos.Limiter // admission cap on live connections
	busyLine     string       // sent to shed connections before the close

	nextID         atomic.Int64
	accepted       atomic.Int64
	messages       atomic.Int64
	shed           atomic.Int64
	dropped        atomic.Int64
	connShed       atomic.Int64
	deadlineCloses atomic.Int64 // default-transport idle closes
	wg             sync.WaitGroup

	stopOnce sync.Once
	stopDone chan struct{}
}

// New creates a server whose dispatch loop is named name and registered in
// reg (nil means gid.Default). Register s.Loop() as a virtual target to use
// directives inside handlers.
func New(name string, reg *gid.Registry) *Server {
	if reg == nil {
		reg = &gid.Default
	}
	l := eventloop.New(name, reg)
	l.Start()
	return &Server{
		name:     name,
		loop:     l,
		registry: reg,
		clients:  make(map[int64]*Client),
		stopDone: make(chan struct{}),
	}
}

// Loop returns the dispatch loop (the server's EDT analogue).
func (s *Server) Loop() *eventloop.Loop { return s.loop }

// HandleFunc sets the message handler. Must be called before Start.
func (s *Server) HandleFunc(h Handler) { s.onMessage = h }

// OnConnect sets a connection callback, dispatched on the loop.
func (s *Server) OnConnect(fn func(*Client)) { s.onConnect = fn }

// OnClose sets a disconnection callback, dispatched on the loop.
func (s *Server) OnClose(fn func(*Client)) { s.onClose = fn }

// UseLimiter applies qos admission control to the dispatch queue: each
// message acquires a slot before it is posted to the loop and releases it
// when its handler returns, so the queue of undispatched messages is
// bounded by the limiter instead of growing without limit under a slow
// handler. A Block policy applies backpressure to the sending connection
// (its read loop stalls); Reject/TimeoutAfter/CoDel shed the message,
// counted by Shed. Must be called before Start.
func (s *Server) UseLimiter(l *qos.Limiter) { s.limiter = l }

// Shed returns the number of messages dropped by admission control.
func (s *Server) Shed() int64 { return s.shed.Load() }

// SetIdleDeadline disconnects clients that send nothing for d — the
// slowloris defence. A connection the server is actively writing to is not
// idle: outbound activity counts, so passive receivers being streamed to
// stay up. On the reactor transport the deadline is enforced by the poll
// goroutine's timer wheel; on the default transport by per-read deadlines
// on the connection. Zero disables (the seed behaviour). Must be called
// before Start.
func (s *Server) SetIdleDeadline(d time.Duration) { s.idleDeadline = d }

// SetMaxConns caps live connections at n: beyond it, new connections are
// shed at accept — sent busyLine (if non-empty, flushed before the close)
// and disconnected, counted by ConnShed. Zero n removes the cap. Must be
// called before Start.
func (s *Server) SetMaxConns(n int, busyLine string) {
	if n <= 0 {
		s.connLimiter = nil
		s.busyLine = ""
		return
	}
	s.connLimiter = qos.NewLimiter(s.name+"/conns", n, 0, qos.Reject())
	s.busyLine = busyLine
}

// ConnShed returns the number of connections rejected by the MaxConns cap.
func (s *Server) ConnShed() int64 { return s.connShed.Load() }

// DeadlineCloses returns the number of connections closed by the idle
// deadline, across both transports.
func (s *Server) DeadlineCloses() int64 {
	n := s.deadlineCloses.Load()
	if t := s.rtransport(); t != nil {
		n += t.Stats().DeadlineCloses
	}
	return n
}

// SetInterceptor installs (or, with nil, removes) the message interceptor.
func (s *Server) SetInterceptor(fn Interceptor) {
	if fn == nil {
		s.interceptor.Store(nil)
		return
	}
	s.interceptor.Store(&fn)
}

// Dropped returns the number of messages suppressed by the interceptor.
func (s *Server) Dropped() int64 { return s.dropped.Load() }

// intercept applies the installed interceptor to one event, defaulting to
// pass-through.
func (s *Server) intercept(event string, fn func()) (func(), bool) {
	p := s.interceptor.Load()
	if p == nil || *p == nil {
		return fn, true
	}
	return (*p)(event, fn)
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and begins
// accepting. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	if t := s.rtransport(); t != nil {
		return t.Listen(addr, s.reactorAccept)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.accepted.Add(1)
		if !s.connLimiter.TryAcquire() {
			// At the cap: shed at the edge. The busy line rides the kernel
			// buffer out before the close (blocking transport, so no flush
			// machinery is needed).
			s.connShed.Add(1)
			if s.busyLine != "" {
				fmt.Fprintf(conn, "%s\n", s.busyLine)
			}
			conn.Close()
			continue
		}
		c := &Client{server: s, conn: conn, id: s.nextID.Add(1), slotHeld: s.connLimiter != nil}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			c.releaseSlot()
			return
		}
		s.clients[c.id] = c
		s.mu.Unlock()
		if s.onConnect != nil {
			s.loop.Post(func() { s.onConnect(c) })
		}
		s.wg.Add(1)
		go s.readLoop(c)
	}
}

// postMessage queues one received line's handler on the dispatch loop. When
// tracing is active the enqueue is bracketed by a "recv" span on the read
// goroutine, so the handler's run span on the loop parents to the network
// receive that caused it (the cross-boundary edge of the message path).
func (s *Server) postMessage(handler func()) {
	post := func() {
		s.loop.PostLabeled("msg", func() {
			defer s.limiter.Release()
			handler()
		})
	}
	sink := trace.ActiveSink()
	if sink == nil {
		post()
		return
	}
	span := trace.NewSpanID()
	prev := trace.Swap(span)
	trace.BeginSpanID(sink, span, "recv", s.name, prev)
	post()
	trace.Swap(prev)
	trace.EndSpan(sink, span, "recv", s.name)
}

// readLoop turns each received line into a dispatch-loop event — the
// inversion of control of Section I: the framework invokes the handler.
func (s *Server) readLoop(c *Client) {
	defer s.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("target", s.name), func(context.Context) {
		s.readLines(c)
	})
}

func (s *Server) readLines(c *Client) {
	var r io.Reader = c.conn
	if d := s.idleDeadline; d > 0 {
		r = &idleReader{c: c, d: d}
	}
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		s.handleLine(c, scanner.Text())
	}
	c.conn.Close()
	s.clientGone(c)
}

// idleReader enforces the idle deadline on the default transport: each Read
// carries a deadline of d, and a timeout only propagates (ending the read
// loop, closing the connection) when the server has not written to the
// client within d either — outbound traffic proves the connection is alive
// even if the peer never sends.
type idleReader struct {
	c *Client
	d time.Duration
}

func (ir *idleReader) Read(p []byte) (int, error) {
	for {
		ir.c.conn.SetReadDeadline(time.Now().Add(ir.d))
		n, err := ir.c.conn.Read(p)
		if n > 0 || err == nil {
			return n, err
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if time.Now().UnixNano()-ir.c.lastWrite.Load() < int64(ir.d) {
				continue // recent outbound activity: not idle, keep reading
			}
			ir.c.server.deadlineCloses.Add(1)
		}
		return n, err
	}
}

// handleLine runs one received line through the interception and admission
// pipeline and posts its handler to the dispatch loop. Shared by both
// transports (per-connection reader goroutines and the reactor's poll
// goroutine).
func (s *Server) handleLine(c *Client, line string) {
	s.messages.Add(1)
	handler, keep := s.intercept("msg", func() {
		if s.onMessage != nil {
			s.onMessage(c, line)
		}
	})
	if !keep {
		// Suppressed by fault injection before it took a limiter slot
		// or a queue position.
		s.dropped.Add(1)
		return
	}
	if err := s.limiter.Acquire(context.Background()); err != nil {
		// Shed at the edge: the dispatch queue is protected and the
		// reader moves on to the next line. On the reactor transport a
		// Block policy stalls the poll goroutine itself — kernel-style
		// backpressure on every connection at once.
		s.shed.Add(1)
		return
	}
	s.postMessage(handler)
}

// clientGone removes c from the table and fires the user OnClose at most
// once per client — and never once Stop has begun. Both transports funnel
// every disconnect path through here (reader EOF, reactor close, handler
// Close racing Stop), so close-during-read cannot double-fire OnClose.
func (s *Server) clientGone(c *Client) {
	s.mu.Lock()
	delete(s.clients, c.id)
	closed := s.closed
	s.mu.Unlock()
	c.releaseSlot()
	if closed || !c.closeFired.CompareAndSwap(false, true) {
		return
	}
	if s.onClose != nil {
		s.loop.Post(func() { s.onClose(c) })
	}
}

// Accepted returns the number of accepted connections.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Messages returns the number of received messages.
func (s *Server) Messages() int64 { return s.messages.Load() }

// ClientCount returns the number of live connections.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Stop closes the listener, all connections, and the dispatch loop. Safe
// to call repeatedly and concurrently: the first caller tears down, later
// callers block until that teardown has finished instead of returning
// while readers may still be posting handlers.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		defer close(s.stopDone)
		s.mu.Lock()
		s.closed = true
		ln := s.ln
		conns := make([]*Client, 0, len(s.clients))
		for _, c := range s.clients {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		if t := s.rtransport(); t != nil {
			// Fires each connection's reactor OnClose (ErrClosed) on the
			// poll goroutine; clientGone sees closed and stays silent.
			t.Stop()
		} else {
			for _, c := range conns {
				c.conn.Close()
			}
		}
		s.wg.Wait()
		s.loop.Stop()
	})
	<-s.stopDone
}

// DrainStop is the graceful Stop: accepting ends immediately, connections
// get until d to finish what is in flight — on the reactor transport that
// is the flush-before-close drain (spilled writes go out on their
// writability edges, stragglers are force-closed at the deadline); on the
// default transport the listener closes and connected clients get until d
// to disconnect — and then the server stops.
func (s *Server) DrainStop(d time.Duration) {
	if t := s.rtransport(); t != nil {
		t.Drain(d)
		s.Stop()
		return
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) && s.ClientCount() > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
}

// Client is one connection on either transport: exactly one of conn
// (goroutine-per-connection) and rc (reactor) is non-nil.
type Client struct {
	server *Server
	conn   net.Conn
	rc     *reactor.Conn
	id     int64

	// partial holds a line fragment spanning readiness events; it is only
	// touched on the reactor's poll goroutine, so it needs no lock.
	partial []byte

	closeFired atomic.Bool
	writeMu    sync.Mutex

	// lastWrite (unixnano of the last successful Send) feeds the default
	// transport's idle deadline: outbound activity keeps the client alive.
	lastWrite atomic.Int64

	// slotHeld/slotFreed track the MaxConns admission slot, released exactly
	// once however the connection ends.
	slotHeld  bool
	slotFreed atomic.Bool
}

// releaseSlot frees the client's admission slot, at most once.
func (c *Client) releaseSlot() {
	if c.slotHeld && c.slotFreed.CompareAndSwap(false, true) {
		c.server.connLimiter.Release()
	}
}

// ID returns the connection's server-unique id.
func (c *Client) ID() int64 { return c.id }

// RemoteAddr returns the peer address.
func (c *Client) RemoteAddr() string {
	if c.rc != nil {
		return c.rc.RemoteAddr()
	}
	return c.conn.RemoteAddr().String()
}

// Send writes one line to the client. Safe from any goroutine (writes are
// serialized per connection), so offloaded blocks may reply directly. On
// the reactor transport it never blocks: what the socket refuses is
// queued and flushed on writability edges.
func (c *Client) Send(line string) error {
	if c.rc != nil {
		buf := make([]byte, 0, len(line)+1)
		buf = append(buf, line...)
		buf = append(buf, '\n')
		return c.rc.Write(buf)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err := fmt.Fprintf(c.conn, "%s\n", line)
	if err == nil {
		c.lastWrite.Store(time.Now().UnixNano())
	}
	return err
}

// Close disconnects the client.
func (c *Client) Close() error {
	if c.rc != nil {
		return c.rc.Close()
	}
	return c.conn.Close()
}
