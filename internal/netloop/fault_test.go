package netloop

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"

	"repro/internal/testutil/poll"
)

func waitCond(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	poll.UntilFor(t, d, msg, cond)
}

// TestClientDisconnectMidMessage: a client that vanishes after a partial
// line (no trailing newline) must still produce orderly dispatch — the
// partial message and then onClose, never a handler after onClose, and the
// client table must empty.
func TestClientDisconnectMidMessage(t *testing.T) {
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()

	var mu sync.Mutex
	var events []string
	s.HandleFunc(func(c *Client, line string) {
		mu.Lock()
		events = append(events, "msg:"+line)
		mu.Unlock()
	})
	s.OnClose(func(c *Client) {
		mu.Lock()
		events = append(events, "close")
		mu.Unlock()
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "whole\npartial") // second message never terminated
	conn.Close()

	waitCond(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) > 0 && events[len(events)-1] == "close"
	}, "onClose dispatch")
	waitCond(t, 2*time.Second, func() bool { return s.ClientCount() == 0 }, "client table drain")

	mu.Lock()
	defer mu.Unlock()
	want := []string{"msg:whole", "msg:partial", "close"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v (handler after onClose?)", events, want)
		}
	}
}

// TestNoHandlerAfterOnCloseUnderLoad hammers the ordering invariant: for a
// client whose connection drops with messages still queued, every message
// handler must be dispatched before its onClose — FIFO on the loop is the
// guarantee, this is the regression test for it.
func TestNoHandlerAfterOnCloseUnderLoad(t *testing.T) {
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()

	var mu sync.Mutex
	closed := map[int64]bool{}
	violations := 0
	s.HandleFunc(func(c *Client, line string) {
		time.Sleep(200 * time.Microsecond) // keep the queue nonempty
		mu.Lock()
		if closed[c.ID()] {
			violations++
		}
		mu.Unlock()
	})
	s.OnClose(func(c *Client) {
		mu.Lock()
		closed[c.ID()] = true
		mu.Unlock()
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients, msgs = 4, 25
	for i := 0; i < clients; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < msgs; m++ {
			fmt.Fprintf(conn, "c%d-m%d\n", i, m)
		}
		conn.Close() // queue still full of this client's messages
	}
	waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(closed) == clients
	}, "all onClose dispatched")

	mu.Lock()
	defer mu.Unlock()
	if violations != 0 {
		t.Fatalf("%d handlers ran after their client's onClose", violations)
	}
}

// TestStopWithQueuedHandlersNoLeak closes the listener while the dispatch
// queue is full of blocked handlers: Stop must return (no deadlock), queued
// handlers must not run after Stop returns, and the server's goroutines
// (accept loop, read loops, dispatch loop) must all exit — checked by
// goroutine counting since the repo carries no leak detector.
func TestStopWithQueuedHandlersNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	before := runtime.NumGoroutine()

	reg := &gid.Registry{}
	s := New("dispatch", reg)

	gate := make(chan struct{})
	var handled sync.WaitGroup
	var mu sync.Mutex
	stopped := false
	lateHandlers := 0
	s.HandleFunc(func(c *Client, line string) {
		<-gate
		mu.Lock()
		if stopped {
			lateHandlers++
		}
		mu.Unlock()
		handled.Done()
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 10
	handled.Add(msgs)
	for m := 0; m < msgs; m++ {
		fmt.Fprintf(conn, "m%d\n", m)
	}
	waitCond(t, 2*time.Second, func() bool { return s.Messages() == msgs }, "messages read")
	conn.Close()

	// Stop while the first handler blocks on the gate and the rest queue
	// behind it. Stop drains the loop, so it cannot finish until the gate
	// opens — open it from the side once Stop is observably in flight.
	stopDone := make(chan struct{})
	go func() { s.Stop(); close(stopDone) }()
	poll.UntilBlockedIn(t, "netloop.(*Server).Stop")
	close(gate)
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked with handlers queued")
	}
	handled.Wait() // every accepted message was dispatched, none abandoned mid-queue
	mu.Lock()
	stopped = true
	mu.Unlock()

	// The goroutine count must settle back to where it started — and once
	// every server goroutine has exited, nothing is left that could run a
	// handler, so the late-handler check after the drain is exhaustive.
	waitCond(t, 2*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, "goroutines to drain")
	mu.Lock()
	late := lateHandlers
	mu.Unlock()
	if late != 0 {
		t.Fatalf("%d handlers ran after Stop returned", late)
	}
}

// TestChaosInterceptorDropsAndDelays wires the fault injector into the
// server: dropped messages never reach the handler (counted by Dropped),
// delayed ones arrive late but intact.
func TestChaosInterceptorDropsAndDelays(t *testing.T) {
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()

	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Action: chaos.Drop, Nth: 2}) // drop every 2nd message
	s.SetInterceptor(inj.NetInterceptor("dispatch"))

	var mu sync.Mutex
	var got []string
	s.HandleFunc(func(c *Client, line string) {
		mu.Lock()
		got = append(got, line)
		mu.Unlock()
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const msgs = 10
	for m := 0; m < msgs; m++ {
		fmt.Fprintf(conn, "m%d\n", m)
	}
	waitCond(t, 2*time.Second, func() bool { return s.Dropped() == msgs/2 }, "drops counted")
	waitCond(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == msgs/2
	}, "surviving messages handled")
	mu.Lock()
	defer mu.Unlock()
	for i, line := range got {
		if want := fmt.Sprintf("m%d", 2*i); line != want {
			t.Fatalf("surviving message %d = %q, want %q", i, line, want)
		}
	}
}
