package netloop

import (
	"bytes"
	"errors"
	"time"

	"repro/internal/reactor"
	"repro/internal/supervise"
)

// transport is the surface netloop needs from a reactor-backed transport —
// satisfied by both *reactor.Reactor (EnableReactor) and *reactor.Supervised
// (EnableSupervisedReactor), so the server is indifferent to whether the
// poll loop beneath it is restartable.
type transport interface {
	Listen(addr string, onAccept func(*reactor.Conn) reactor.HandlerFuncs) (string, error)
	Stop()
	Drain(d time.Duration)
	Stats() reactor.Stats
	SetInterceptor(fn reactor.Interceptor)
	SetIOInterceptor(fn reactor.IOInterceptor)
}

var (
	_ transport = (*reactor.Reactor)(nil)
	_ transport = (*reactor.Supervised)(nil)
)

// rtransport returns the reactor transport in use, nil on the default
// goroutine-per-connection transport. Never stores a typed nil in the
// interface: each concrete field is tested itself.
func (s *Server) rtransport() transport {
	if s.sreactor != nil {
		return s.sreactor
	}
	if s.reactor != nil {
		return s.reactor
	}
	return nil
}

// EnableReactor switches the server's transport from goroutine-per-
// connection readers to the readiness-driven reactor: one edge-triggered
// poll goroutine owns every socket and feeds the same dispatch loop, so a
// connection costs a registration instead of a goroutine. Must be called
// before Start. On platforms without an epoll/kqueue poller it returns
// reactor.ErrUnsupported and the server keeps its portable default
// transport — gate on the error, not the platform.
func (s *Server) EnableReactor() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil || s.closed {
		return errors.New("netloop: EnableReactor must be called before Start")
	}
	if s.reactor != nil || s.sreactor != nil {
		return nil
	}
	r, err := reactor.New(s.name+"/reactor", s.registry)
	if err != nil {
		return err
	}
	s.reactor = r
	return nil
}

// EnableSupervisedReactor is EnableReactor with a supervised poll loop: a
// poll-goroutine death (or a handler-panic storm past sopts.PanicThreshold)
// replaces the reactor with a fresh generation under sopts' restart budget,
// and the listening socket survives the swap — the server keeps accepting
// on the same address. Must be called before Start; returns
// reactor.ErrUnsupported (wrapped) on platforms without a poller.
func (s *Server) EnableSupervisedReactor(sopts supervise.Options) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil || s.closed {
		return errors.New("netloop: EnableSupervisedReactor must be called before Start")
	}
	if s.reactor != nil {
		return errors.New("netloop: reactor transport already enabled unsupervised")
	}
	if s.sreactor != nil {
		return nil
	}
	sr, err := reactor.NewSupervised(s.name+"/reactor", s.registry, reactor.Options{}, sopts)
	if err != nil {
		return err
	}
	s.sreactor = sr
	return nil
}

// Reactor returns the readiness reactor, or nil on the fallback transport.
// Use it to install a readiness-layer chaos interceptor or read poll-loop
// stats; the message-level seams (SetInterceptor, UseLimiter) apply to
// both transports unchanged. Under EnableSupervisedReactor this is the
// current generation — the pointer goes stale at the next restart; prefer
// SupervisedReactor for anything longer-lived than a call.
func (s *Server) Reactor() *reactor.Reactor {
	if s.sreactor != nil {
		return s.sreactor.Current()
	}
	return s.reactor
}

// SupervisedReactor returns the supervised transport, or nil unless
// EnableSupervisedReactor was used. Its Health and Supervisor feed
// watchdog and /healthz wiring.
func (s *Server) SupervisedReactor() *reactor.Supervised { return s.sreactor }

// reactorAccept wires one accepted connection into the server. Runs on the
// poll goroutine.
func (s *Server) reactorAccept(rc *reactor.Conn) reactor.HandlerFuncs {
	s.accepted.Add(1)
	if !s.connLimiter.TryAcquire() {
		// At the MaxConns cap: shed at accept. Close flushes the busy line
		// before the disconnect (the reactor's flush-before-close path).
		s.connShed.Add(1)
		if s.busyLine != "" {
			rc.Write([]byte(s.busyLine + "\n"))
		}
		rc.Close()
		return reactor.HandlerFuncs{}
	}
	c := &Client{server: s, rc: rc, id: s.nextID.Add(1), slotHeld: s.connLimiter != nil}
	rc.SetContext(c)
	s.mu.Lock()
	closed := s.closed
	if !closed {
		s.clients[c.id] = c
	}
	s.mu.Unlock()
	if closed {
		rc.Close()
		c.releaseSlot()
		return reactor.HandlerFuncs{}
	}
	if d := s.idleDeadline; d > 0 {
		rc.SetIdleDeadline(d)
	}
	if s.onConnect != nil {
		s.loop.Post(func() { s.onConnect(c) })
	}
	return reactor.HandlerFuncs{
		OnReadable: func(_ *reactor.Conn, data []byte) { s.reactorData(c, data) },
		OnClose:    func(_ *reactor.Conn, err error) { s.clientGone(c) },
	}
}

// maxLineLen bounds an unterminated line fragment buffered across
// readiness events — the same cap bufio.Scanner imposes on the default
// transport (bufio.MaxScanTokenSize). Without it a peer streaming bytes
// with no newline grows c.partial without bound: a per-connection memory
// DoS the goroutine-per-connection transport never had.
const maxLineLen = 64 << 10

// reactorData reassembles line-delimited messages from raw readiness
// payloads. data aliases the reactor's scratch buffer, so any fragment that
// survives this call is copied into the client's partial buffer; a line
// split across readiness events (short reads) is delivered whole once its
// terminator arrives. Poll-goroutine confined.
func (s *Server) reactorData(c *Client, data []byte) {
	buf := data
	if len(c.partial) > 0 {
		c.partial = append(c.partial, data...)
		buf = c.partial
	}
	for {
		i := bytes.IndexByte(buf, '\n')
		if i < 0 {
			break
		}
		line := buf[:i]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		s.handleLine(c, string(line))
		buf = buf[i+1:]
	}
	if len(buf) > maxLineLen {
		// Oversized unterminated line: drop the fragment and disconnect,
		// mirroring the default transport's scanner giving up at its token
		// cap rather than buffering indefinitely.
		c.partial = nil
		c.rc.Close()
		return
	}
	// Keep (only) the unterminated tail. When buf aliases c.partial this is
	// an in-place shift; when it aliases the scratch buffer it is the copy
	// that lets the fragment outlive the event.
	c.partial = append(c.partial[:0], buf...)
}
