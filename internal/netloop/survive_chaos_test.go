//go:build chaos

package netloop

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/gid"
	"repro/internal/reactor"
	"repro/internal/supervise"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// chaosRoundTrip dials, sends one line, and reports whether the echo came
// back — tolerant of every failure mode the storm can inject.
func chaosRoundTrip(addr string) bool {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return false
	}
	defer c.Close()
	if _, err := fmt.Fprintln(c, "ping"); err != nil {
		return false
	}
	c.SetReadDeadline(time.Now().Add(time.Second))
	sc := bufio.NewScanner(c)
	return sc.Scan() && sc.Text() == "echo:ping"
}

// TestChaosSupervisedServerOutlivesStorm is the acceptance drill: a
// supervised reactor server is hit with poll-goroutine kills (dispatch
// seam) and fd-level faults (short writes, spurious EAGAIN) while
// slowloris connections hold sockets open and say nothing. The server must
// shed the slowloris conns via the idle deadline, restart through every
// kill, and serve cleanly once the bounded storm passes — with no
// goroutine left behind.
func TestChaosSupervisedServerOutlivesStorm(t *testing.T) {
	if !reactor.Supported {
		t.Skip("no reactor poller on this platform")
	}
	defer leakcheck.Check(t)()
	inj := chaos.New(chaos.SeedFromEnv(1337),
		// Bounded kill storm at the readiness-dispatch seam.
		chaos.Rule{Target: "poll", Action: chaos.Kill, Nth: 40, Count: 3},
		// fd-level noise on its own target so its schedule is independent.
		chaos.Rule{Target: "fd", Action: chaos.ShortWrite, Rate: 0.05},
		chaos.Rule{Target: "fd", Action: chaos.SpuriousEAGAIN, Rate: 0.01},
	)

	s := New("storm", &gid.Registry{})
	defer s.Stop()
	// The Window doubles as the healthy-again horizon: restarts older than
	// it stop counting as Degraded, so keep it short enough for the
	// post-storm health assertion to converge.
	if err := s.EnableSupervisedReactor(supervise.Options{
		MaxRestarts:    10,
		Window:         500 * time.Millisecond,
		BackoffInitial: time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	s.SetIdleDeadline(100 * time.Millisecond)
	s.SetMaxConns(64, "BUSY")
	s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
	sup := s.SupervisedReactor()
	sup.SetInterceptor(inj.NetInterceptor("poll"))
	sup.SetIOInterceptor(inj.FDInterceptor("fd"))

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Slowloris: sockets that connect and never speak. The idle deadline
	// must reap them even while the storm rages.
	var loris []net.Conn
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		loris = append(loris, c)
	}
	defer func() {
		for _, c := range loris {
			c.Close()
		}
	}()

	// The storm: enough traffic to trip every Nth-kill and plenty of fd
	// faults. Individual round trips may fail; the server as a whole must
	// keep making progress.
	ok := 0
	for i := 0; i < 200; i++ {
		if chaosRoundTrip(addr) {
			ok++
		}
	}
	if kills := inj.Injected(chaos.Kill); kills != 3 {
		t.Fatalf("kills injected = %d, want 3 (storm did not run its course)", kills)
	}
	if ok == 0 {
		t.Fatal("no round trip succeeded during the storm")
	}
	if crashes := sup.RStats().LoopCrashes.Value(); crashes < 3 {
		t.Fatalf("LoopCrashes = %d, want >= 3", crashes)
	}
	if faults := inj.Injected(chaos.ShortWrite) + inj.Injected(chaos.SpuriousEAGAIN); faults == 0 {
		t.Fatal("no fd-level faults injected; drill proved nothing about the IO seam")
	}

	// Slowloris sockets are gone: their reads see the server-side close
	// (reaped by a deadline, or failed over a crash — either way, shed).
	for i, c := range loris {
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("slowloris conn %d still held open", i)
		}
	}

	// Storm over (Count-bounded): with injection off, the current
	// generation serves cleanly and supervision reads healthy.
	inj.SetEnabled(false)
	poll.UntilFor(t, 10*time.Second, "post-storm clean round trip", func() bool {
		return chaosRoundTrip(addr)
	})
	poll.UntilFor(t, 10*time.Second, "supervision healthy", func() bool {
		return sup.Health().StatusValue() == supervise.Healthy
	})
	t.Logf("storm: %d/200 round trips ok, kills=3, crashes=%d, deadlineCloses=%d, shortWrites=%d, eagains=%d",
		ok, sup.RStats().LoopCrashes.Value(), s.DeadlineCloses(),
		inj.Injected(chaos.ShortWrite), inj.Injected(chaos.SpuriousEAGAIN))
}

// TestChaosBareReactorDiesAndWatchdogSees is the control: the same kill
// against an unsupervised reactor server takes the address down for good,
// and the watchdog's probe reads the executor view of that reactor as
// down — detection without recovery.
func TestChaosBareReactorDiesAndWatchdogSees(t *testing.T) {
	if !reactor.Supported {
		t.Skip("no reactor poller on this platform")
	}
	inj := chaos.New(chaos.SeedFromEnv(1337),
		chaos.Rule{Target: "poll", Action: chaos.Kill, Nth: 1, Count: 1})

	s := New("bare", &gid.Registry{})
	defer s.Stop()
	if err := s.EnableReactor(); err != nil {
		t.Fatal(err)
	}
	s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
	r := s.Reactor()
	r.SetInterceptor(inj.NetInterceptor("poll"))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	w := supervise.NewWatchdog(5 * time.Millisecond)
	w.Watch("bare", r.AsExecutor(), 25*time.Millisecond)
	w.Start()
	defer w.Stop()

	// First readiness event trips the kill; nobody restarts anything.
	if chaosRoundTrip(addr) {
		t.Fatal("round trip succeeded through an Nth=1 kill")
	}
	poll.UntilFor(t, 10*time.Second, "loop crash counted", func() bool {
		return r.Stats().LoopCrashes >= 1
	})
	for i := 0; i < 3; i++ {
		if chaosRoundTrip(addr) {
			t.Fatal("bare reactor served after its poll goroutine died")
		}
	}
	poll.UntilFor(t, 10*time.Second, "watchdog reads down", func() bool {
		return w.Health()["bare"].LivenessValue() == supervise.LiveDown
	})
}
