package netloop

import (
	"os"
	"testing"

	"repro/internal/testutil/leakcheck"
)

// TestMain sweeps the whole suite for leaked goroutines: after the last
// test, every reader, dispatcher, worker, and client connection goroutine
// must have exited.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
