package netloop

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gid"

	"repro/internal/testutil/leakcheck"
)

func dial(t *testing.T, addr string) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewScanner(conn)
}

func TestEchoSingleThreadedDispatch(t *testing.T) {
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()
	var offLoop int
	s.HandleFunc(func(c *Client, line string) {
		if !s.Loop().Owns() {
			offLoop++
		}
		c.Send("echo:" + line)
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, sc := dial(t, addr)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(conn, "msg%d\n", i)
	}
	for i := 0; i < 5; i++ {
		if !sc.Scan() {
			t.Fatalf("connection closed after %d replies", i)
		}
		if want := fmt.Sprintf("echo:msg%d", i); sc.Text() != want {
			t.Fatalf("reply %d = %q, want %q (per-connection order broken)", i, sc.Text(), want)
		}
	}
	if offLoop != 0 {
		t.Fatalf("%d handler invocations off the dispatch loop", offLoop)
	}
	if s.Messages() != 5 {
		t.Fatalf("Messages = %d", s.Messages())
	}
}

func TestDispatchLoopAsVirtualTarget(t *testing.T) {
	// The point of the package: the message handler offloads computation to
	// a worker target and hops back to the dispatch target for the reply —
	// the Figure 6 pattern on a network server instead of a GUI.
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	s := New("dispatch", reg)
	defer s.Stop()
	if err := rt.RegisterEDT("dispatch", s.Loop()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateWorker("worker", 2); err != nil {
		t.Fatal(err)
	}
	s.HandleFunc(func(c *Client, line string) {
		rt.Invoke("worker", core.Nowait, func() {
			upper := strings.ToUpper(line) // "heavy" computation off the loop
			rt.Invoke("dispatch", core.Wait, func() {
				if !s.Loop().Owns() {
					t.Error("reply block off the dispatch loop")
				}
				c.Send(upper)
			})
		})
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, sc := dial(t, addr)
	fmt.Fprintln(conn, "hello event loops")
	if !sc.Scan() {
		t.Fatal("no reply")
	}
	if sc.Text() != "HELLO EVENT LOOPS" {
		t.Fatalf("reply = %q", sc.Text())
	}
}

func TestMultipleClients(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()
	s.HandleFunc(func(c *Client, line string) { c.Send(line) })
	addr, _ := s.Start("127.0.0.1:0")

	const clients, msgs = 8, 20
	var wg sync.WaitGroup
	for u := 0; u < clients; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for m := 0; m < msgs; m++ {
				fmt.Fprintf(conn, "c%d-m%d\n", u, m)
				if !sc.Scan() {
					t.Errorf("client %d: dropped at %d", u, m)
					return
				}
				if want := fmt.Sprintf("c%d-m%d", u, m); sc.Text() != want {
					t.Errorf("client %d: got %q want %q", u, sc.Text(), want)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	if s.Messages() != clients*msgs {
		t.Fatalf("Messages = %d, want %d", s.Messages(), clients*msgs)
	}
	if s.Accepted() != clients {
		t.Fatalf("Accepted = %d", s.Accepted())
	}
}

func TestConnectCloseCallbacks(t *testing.T) {
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	defer s.Stop()
	connected := make(chan int64, 1)
	closed := make(chan int64, 1)
	s.OnConnect(func(c *Client) { connected <- c.ID() })
	s.OnClose(func(c *Client) { closed <- c.ID() })
	s.HandleFunc(func(c *Client, line string) {})
	addr, _ := s.Start("127.0.0.1:0")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var id int64
	select {
	case id = <-connected:
	case <-time.After(5 * time.Second):
		t.Fatal("no connect callback")
	}
	if s.ClientCount() != 1 {
		t.Fatalf("ClientCount = %d", s.ClientCount())
	}
	conn.Close()
	select {
	case cid := <-closed:
		if cid != id {
			t.Fatalf("closed id %d != connected id %d", cid, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no close callback")
	}
}

func TestStopIdempotentAndRejectsLateClients(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := &gid.Registry{}
	s := New("dispatch", reg)
	s.HandleFunc(func(c *Client, line string) {})
	addr, _ := s.Start("127.0.0.1:0")
	conn, _ := net.Dial("tcp", addr)
	if conn != nil {
		defer conn.Close()
	}
	s.Stop()
	s.Stop() // no-op
	if late, err := net.Dial("tcp", addr); err == nil {
		// A dial may succeed momentarily in the accept backlog; the
		// connection must then be closed without ever being serviced.
		_ = late.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := late.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("stopped server wrote to a late connection")
		}
		late.Close()
	}
}
