package netloop

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/reactor"
	"repro/internal/supervise"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
)

// eachTransport runs fn as a subtest on the default (goroutine-per-conn)
// transport and on the reactor transport, so the survivability surface —
// idle deadlines, admission caps, graceful drain — is pinned to identical
// behaviour on both.
func eachTransport(t *testing.T, fn func(t *testing.T, s *Server)) {
	t.Run("default", func(t *testing.T) {
		defer leakcheck.Check(t)()
		fn(t, New("srv", &gid.Registry{}))
	})
	t.Run("reactor", func(t *testing.T) {
		if !reactor.Supported {
			t.Skip("no reactor poller on this platform")
		}
		defer leakcheck.Check(t)()
		s := New("srv", &gid.Registry{})
		if err := s.EnableReactor(); err != nil {
			s.Stop()
			t.Fatalf("EnableReactor: %v", err)
		}
		fn(t, s)
	})
}

// TestIdleDeadlineDisconnectsSilentClient: on both transports a client
// that stops sending is disconnected after the idle deadline and counted,
// while a client that keeps talking is not.
func TestIdleDeadlineDisconnectsSilentClient(t *testing.T) {
	eachTransport(t, func(t *testing.T, s *Server) {
		defer s.Stop()
		s.SetIdleDeadline(80 * time.Millisecond)
		s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}

		talker, sc := dial(t, addr)
		silent, _ := dial(t, addr)

		// The talker chats through several deadline-lengths and survives.
		for i := 0; i < 6; i++ {
			fmt.Fprintf(talker, "ping%d\n", i)
			if !sc.Scan() {
				t.Fatalf("talker disconnected at message %d: %v", i, sc.Err())
			}
			time.Sleep(30 * time.Millisecond)
		}

		// The silent client is reaped: its next read sees the close.
		silent.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := silent.Read(make([]byte, 1)); err == nil {
			t.Fatal("silent client still connected past the idle deadline")
		}
		poll.Until(t, "deadline close counted", func() bool { return s.DeadlineCloses() >= 1 })
		poll.Until(t, "client table reflects the reap", func() bool { return s.ClientCount() == 1 })
	})
}

// TestMaxConnsShedsWithBusyLine: over the cap, new connections receive the
// busy line, are closed, and are counted — and the slot frees when an
// admitted client leaves.
func TestMaxConnsShedsWithBusyLine(t *testing.T) {
	eachTransport(t, func(t *testing.T, s *Server) {
		defer s.Stop()
		s.SetMaxConns(1, "BUSY try later")
		s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}

		first, sc := dial(t, addr)
		fmt.Fprintln(first, "hello")
		if !sc.Scan() || sc.Text() != "echo:hello" {
			t.Fatalf("admitted client echo = %q, %v", sc.Text(), sc.Err())
		}

		// Second connection: shed with the busy line, then closed.
		second, sc2 := dial(t, addr)
		second.SetReadDeadline(time.Now().Add(10 * time.Second))
		if !sc2.Scan() || sc2.Text() != "BUSY try later" {
			t.Fatalf("shed client got %q, %v; want busy line", sc2.Text(), sc2.Err())
		}
		if sc2.Scan() {
			t.Fatalf("shed client got %q after the busy line; want close", sc2.Text())
		}
		poll.Until(t, "shed counted", func() bool { return s.ConnShed() == 1 })

		// The admitted client leaves; its slot must admit the next dial.
		first.Close()
		poll.Until(t, "slot released", func() bool { return s.ClientCount() == 0 })
		third, sc3 := dial(t, addr)
		fmt.Fprintln(third, "again")
		third.SetReadDeadline(time.Now().Add(10 * time.Second))
		if !sc3.Scan() || sc3.Text() != "echo:again" {
			t.Fatalf("post-release client got %q, %v; want echo", sc3.Text(), sc3.Err())
		}
	})
}

// TestDrainStopBoundedByDeadline: DrainStop stops accepting immediately,
// lets connected clients finish, and comes back within its deadline even
// when a client lingers.
func TestDrainStopBoundedByDeadline(t *testing.T) {
	eachTransport(t, func(t *testing.T, s *Server) {
		s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}

		// A client that answers-and-lingers: the drain deadline must bound it.
		lingerer, sc := dial(t, addr)
		fmt.Fprintln(lingerer, "last call")
		if !sc.Scan() || sc.Text() != "echo:last call" {
			t.Fatalf("pre-drain echo = %q, %v", sc.Text(), sc.Err())
		}

		start := time.Now()
		s.DrainStop(300 * time.Millisecond)
		if e := time.Since(start); e > 10*time.Second {
			t.Fatalf("DrainStop took %v; deadline did not bound it", e)
		}
		// Fully stopped: no new connections, lingerer disconnected.
		if c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
			c.Close()
			t.Fatal("drained server still accepting")
		}
		lingerer.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := lingerer.Read(make([]byte, 1)); err == nil {
			t.Fatal("lingerer still connected after DrainStop")
		}
	})
}

// TestDrainStopFastWhenClientsLeave: when every client disconnects
// promptly, DrainStop returns well before its deadline instead of
// sleeping through it.
func TestDrainStopFastWhenClientsLeave(t *testing.T) {
	eachTransport(t, func(t *testing.T, s *Server) {
		s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cli, sc := dial(t, addr)
		fmt.Fprintln(cli, "bye")
		if !sc.Scan() {
			t.Fatal(sc.Err())
		}
		cli.Close()
		poll.Until(t, "client gone", func() bool { return s.ClientCount() == 0 })

		start := time.Now()
		s.DrainStop(30 * time.Second)
		if e := time.Since(start); e > 10*time.Second {
			t.Fatalf("DrainStop with no clients took %v", e)
		}
	})
}

// TestSupervisedServerSurvivesPollCrash: a netloop server on the
// supervised reactor transport keeps serving its address across a
// poll-goroutine death — the app-facing half of the supervised restart.
func TestSupervisedServerSurvivesPollCrash(t *testing.T) {
	if !reactor.Supported {
		t.Skip("no reactor poller on this platform")
	}
	defer leakcheck.Check(t)()
	s := New("survivor", &gid.Registry{})
	defer s.Stop()
	if err := s.EnableSupervisedReactor(supervise.Options{
		MaxRestarts:    10,
		Window:         time.Minute,
		BackoffInitial: time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	}); err != nil {
		t.Fatalf("EnableSupervisedReactor: %v", err)
	}
	s.HandleFunc(func(c *Client, line string) { c.Send("echo:" + line) })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.SupervisedReactor() == nil {
		t.Fatal("SupervisedReactor() = nil")
	}

	roundTrip := func() bool {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return false
		}
		defer c.Close()
		fmt.Fprintln(c, "alive?")
		c.SetReadDeadline(time.Now().Add(time.Second))
		sc := bufio.NewScanner(c)
		return sc.Scan() && sc.Text() == "echo:alive?"
	}
	poll.UntilFor(t, 10*time.Second, "generation 0 serves", roundTrip)

	// Kill the poll goroutine; the supervisor must bring a replacement up
	// on the same address.
	if r := s.Reactor(); r != nil {
		_ = r.Post(func() { runtime.Goexit() })
	}
	poll.UntilFor(t, 10*time.Second, "crash counted", func() bool {
		return s.SupervisedReactor().RStats().LoopCrashes.Value() >= 1
	})
	poll.UntilFor(t, 10*time.Second, "restarted generation serves", roundTrip)
}
