package netloop

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qos"

	"repro/internal/testutil/poll"
)

// TestLimiterShedsDispatchQueueOverflow wedges the dispatch loop with a
// slow handler and floods messages: with a Reject-policy limiter of one
// slot, overflow messages are shed at the read loop instead of piling up
// in the dispatch queue, and the server keeps working afterwards.
func TestLimiterShedsDispatchQueueOverflow(t *testing.T) {
	s := New("dispatch", nil)
	defer s.Stop()
	s.UseLimiter(qos.NewLimiter("dispatch", 1, 0, qos.Reject()))

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var handled atomic.Int64
	s.HandleFunc(func(c *Client, line string) {
		select {
		case started <- struct{}{}:
			<-gate // wedge the loop on the first message
		default:
		}
		handled.Add(1)
		c.Send("ack:" + line)
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, sc := dial(t, addr)

	fmt.Fprintln(conn, "first")
	<-started // handler holds the only slot from here

	const burst = 20
	for i := 0; i < burst; i++ {
		fmt.Fprintf(conn, "flood%d\n", i)
	}
	// Wait until the reader consumed the burst (shed or queued).
	poll.UntilFor(t, 5*time.Second, "reader to consume the burst",
		func() bool { return s.Messages() >= burst+1 })
	if s.Shed() == 0 {
		t.Fatalf("Shed = 0 after flooding a wedged loop (messages=%d)", s.Messages())
	}
	close(gate)

	// The server must still dispatch fresh messages once unwedged.
	fmt.Fprintln(conn, "after")
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if !sc.Scan() {
		t.Fatal("no response after unwedging the loop")
	}
	if handled.Load() == 0 {
		t.Fatal("no messages handled")
	}
	if shed, msgs := s.Shed(), s.Messages(); shed >= msgs {
		t.Fatalf("shed=%d >= messages=%d; some messages must be admitted", shed, msgs)
	}
}

// TestNoLimiterKeepsSeedBehaviour checks the nil-limiter path still
// dispatches everything (no sheds, no admission).
func TestNoLimiterKeepsSeedBehaviour(t *testing.T) {
	s := New("dispatch", nil)
	defer s.Stop()
	s.HandleFunc(func(c *Client, line string) { c.Send("ack:" + line) })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, sc := dial(t, addr)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(conn, "m%d\n", i)
	}
	for i := 0; i < 10; i++ {
		if !sc.Scan() {
			t.Fatalf("missing response %d", i)
		}
	}
	if s.Shed() != 0 {
		t.Fatalf("Shed = %d without a limiter", s.Shed())
	}
}
