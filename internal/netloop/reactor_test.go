package netloop

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/qos"
	"repro/internal/reactor"
	"repro/internal/testutil/leakcheck"
	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

// newReactorServer creates a server on the reactor transport, skipping on
// platforms without a poller.
func newReactorServer(t *testing.T, name string) *Server {
	t.Helper()
	if !reactor.Supported {
		t.Skip("no reactor poller on this platform")
	}
	s := New(name, &gid.Registry{})
	if err := s.EnableReactor(); err != nil {
		s.Stop()
		t.Fatalf("EnableReactor: %v", err)
	}
	return s
}

func TestReactorEchoMultipleClients(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newReactorServer(t, "recho")
	defer s.Stop()
	var offLoop int
	s.HandleFunc(func(c *Client, line string) {
		if !s.Loop().Owns() {
			offLoop++
		}
		c.Send("echo:" + line)
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Reactor() == nil {
		t.Fatal("Reactor() = nil on the reactor transport")
	}
	const clients, msgs = 8, 20
	var wg sync.WaitGroup
	for u := 0; u < clients; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			conn, sc := dial(t, addr)
			for i := 0; i < msgs; i++ {
				fmt.Fprintf(conn, "c%d-%d\n", u, i)
			}
			for i := 0; i < msgs; i++ {
				if !sc.Scan() {
					t.Errorf("client %d: connection closed after %d replies", u, i)
					return
				}
				if want := fmt.Sprintf("echo:c%d-%d", u, i); sc.Text() != want {
					t.Errorf("client %d reply %d = %q, want %q", u, i, sc.Text(), want)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	if offLoop != 0 {
		t.Fatalf("%d handler invocations off the dispatch loop", offLoop)
	}
	if got := s.Messages(); got != clients*msgs {
		t.Fatalf("Messages = %d, want %d", got, clients*msgs)
	}
	if st := s.Reactor().Stats(); st.Accepted != clients {
		t.Fatalf("reactor Accepted = %d, want %d", st.Accepted, clients)
	}
}

// TestReactorLineSplitAcrossEvents drip-feeds one message byte by byte so
// every fragment arrives in its own readiness event: the framing layer must
// buffer the partial line and deliver it whole, and must handle several
// lines arriving in a single event plus CRLF terminators.
func TestReactorLineSplitAcrossEvents(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newReactorServer(t, "rsplit")
	defer s.Stop()
	got := make(chan string, 16)
	s.HandleFunc(func(c *Client, line string) { got <- line })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := dial(t, addr)

	// One line, one byte per write, with pauses so the kernel reports each
	// byte as its own edge.
	for _, b := range []byte("dripped") {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	conn.Write([]byte("\n"))
	if want, g := "dripped", <-got; g != want {
		t.Fatalf("split line = %q, want %q", g, want)
	}

	// Several lines in one write, CRLF-terminated, trailing fragment held
	// back until its newline arrives later.
	conn.Write([]byte("a\r\nbb\ncc"))
	if g := <-got; g != "a" {
		t.Fatalf("crlf line = %q, want %q", g, "a")
	}
	if g := <-got; g != "bb" {
		t.Fatalf("second line = %q, want %q", g, "bb")
	}
	select {
	case g := <-got:
		t.Fatalf("fragment %q delivered before its terminator", g)
	case <-time.After(20 * time.Millisecond):
	}
	conn.Write([]byte("c\n"))
	if g := <-got; g != "ccc" {
		t.Fatalf("reassembled line = %q, want %q", g, "ccc")
	}
}

// closeCounter records OnClose invocations per client id and fails the test
// on any duplicate.
type closeCounter struct {
	mu     sync.Mutex
	counts map[int64]int
	sealed bool // set after Stop returns: any later OnClose is a bug
	late   int
}

func (cc *closeCounter) onClose(c *Client) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.sealed {
		cc.late++
	}
	cc.counts[c.ID()]++
}

func (cc *closeCounter) seal() { cc.mu.Lock(); cc.sealed = true; cc.mu.Unlock() }

func (cc *closeCounter) verify(t *testing.T) {
	t.Helper()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for id, n := range cc.counts {
		if n > 1 {
			t.Fatalf("client %d: OnClose fired %d times", id, n)
		}
	}
	if cc.late != 0 {
		t.Fatalf("%d OnClose callbacks after Stop returned", cc.late)
	}
}

// testCloseDuringStopRace is the -race regression for the Stop vs
// in-flight-read ordering bug: clients disconnect (and handlers call
// Client.Close) while several goroutines race Stop. OnClose must fire at
// most once per client and never after Stop has returned.
func testCloseDuringStopRace(t *testing.T, useReactor bool) {
	defer leakcheck.Check(t)()
	for iter := 0; iter < 20; iter++ {
		s := New("rstop", &gid.Registry{})
		if useReactor {
			if !reactor.Supported {
				t.Skip("no reactor poller on this platform")
			}
			if err := s.EnableReactor(); err != nil {
				t.Fatal(err)
			}
		}
		cc := &closeCounter{counts: make(map[int64]int)}
		s.OnClose(cc.onClose)
		s.HandleFunc(func(c *Client, line string) {
			if line == "bye" {
				c.Close() // server-side close racing the client's writes
			}
		})
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}

		const clients = 8
		var writers sync.WaitGroup
		conns := make([]net.Conn, clients)
		for i := range conns {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = conn
			writers.Add(1)
			go func(i int, conn net.Conn) {
				defer writers.Done()
				for j := 0; j < 50; j++ {
					msg := "spam\n"
					if j == 25 && i%2 == 0 {
						msg = "bye\n" // trigger server-side close mid-stream
					}
					if _, err := conn.Write([]byte(msg)); err != nil {
						return // closed under us: expected
					}
				}
				if i%3 == 0 {
					conn.Close() // client-side close racing Stop
				}
			}(i, conns[i])
		}

		// Several goroutines race Stop; all must block until teardown is done.
		var stops sync.WaitGroup
		for g := 0; g < 3; g++ {
			stops.Add(1)
			go func() { defer stops.Done(); s.Stop() }()
		}
		stops.Wait()
		cc.seal()
		writers.Wait()
		for _, conn := range conns {
			conn.Close()
		}
		cc.verify(t)
	}
}

func TestCloseDuringStopNeverDoubleFiresOnCloseGoroutine(t *testing.T) {
	testCloseDuringStopRace(t, false)
}

func TestCloseDuringStopNeverDoubleFiresOnCloseReactor(t *testing.T) {
	testCloseDuringStopRace(t, true)
}

// TestReactorSpanCausality: on the reactor transport the "recv" span the
// server emits for each message must parent to the reactor's "ready" span —
// the readiness event is the causal root of the message's dispatch.
func TestReactorSpanCausality(t *testing.T) {
	defer leakcheck.Check(t)()
	buf := trace.NewBuffer(4096)
	defer trace.Use(buf)()
	s := newReactorServer(t, "rtrace")
	defer s.Stop()
	done := make(chan struct{}, 1)
	s.HandleFunc(func(c *Client, line string) { done <- struct{}{} })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := dial(t, addr)
	fmt.Fprintln(conn, "traced message")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("message never dispatched")
	}

	events := buf.Snapshot()
	begins := make(map[trace.SpanID]trace.Event)
	for _, ev := range events {
		if ev.Op == trace.OpSpanBegin {
			begins[ev.Span] = ev
		}
	}
	found := false
	for _, ev := range events {
		if ev.Op != trace.OpSpanBegin || ev.Name != "recv" || ev.Target != "rtrace" {
			continue
		}
		parent, ok := begins[ev.Parent]
		if !ok {
			t.Fatalf("recv span %d has unknown parent %d", ev.Span, ev.Parent)
		}
		if parent.Name != "ready" || parent.Target != "rtrace/reactor" {
			t.Fatalf("recv parents to %s/%s, want ready/rtrace/reactor", parent.Name, parent.Target)
		}
		found = true
	}
	if !found {
		t.Fatal("no recv span recorded on the reactor transport")
	}
}

// TestReactorOversizedLineDisconnects: an unterminated fragment past
// maxLineLen must disconnect the peer instead of buffering it without
// bound — the cap the default transport's bufio.Scanner already imposes.
func TestReactorOversizedLineDisconnects(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newReactorServer(t, "rcap")
	defer s.Stop()
	got := make(chan string, 4)
	s.HandleFunc(func(c *Client, line string) { got <- line })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A long-but-legal line is still delivered whole.
	legal, _ := dial(t, addr)
	line := strings.Repeat("a", 60<<10)
	if _, err := legal.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	if g := <-got; g != line {
		t.Fatalf("long line mangled: got %d bytes, want %d", len(g), len(line))
	}

	// A fragment past the cap with no terminator gets the connection closed.
	hog, _ := dial(t, addr)
	if _, err := hog.Write(bytes.Repeat([]byte("b"), maxLineLen+(8<<10))); err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "oversized-line client disconnected", func() bool {
		return s.ClientCount() == 1 // only the legal client remains
	})
	select {
	case g := <-got:
		t.Fatalf("unterminated oversized fragment delivered as line (%d bytes)", len(g))
	default:
	}
}

// TestReactorQoSShed: admission control guards the dispatch queue on the
// reactor transport exactly as on the goroutine transport — a Reject
// limiter sheds the flood while the handler is wedged.
func TestReactorQoSShed(t *testing.T) {
	defer leakcheck.Check(t)()
	s := newReactorServer(t, "rqos")
	defer s.Stop()
	release := make(chan struct{})
	var once sync.Once
	s.UseLimiter(qos.NewLimiter("rqos", 1, 0, qos.Reject()))
	s.HandleFunc(func(c *Client, line string) {
		once.Do(func() { <-release })
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := dial(t, addr)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(conn, "flood%d\n", i)
	}
	poll.Until(t, "messages shed by admission control", func() bool { return s.Shed() > 0 })
	close(release)
}
