package vclock

import (
	"testing"
	"time"
)

func TestWallNow(t *testing.T) {
	before := time.Now()
	got := Wall.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestWallAfterFuncStop(t *testing.T) {
	fired := make(chan struct{})
	tm := Wall.AfterFunc(time.Hour, func() { close(fired) })
	if !tm.Stop() {
		t.Fatal("Stop on a pending wall timer = false")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestManualAdvanceFiresInDeadlineOrder(t *testing.T) {
	m := NewManual(time.Time{})
	var order []string
	m.AfterFunc(20*time.Millisecond, func() { order = append(order, "b") })
	m.AfterFunc(10*time.Millisecond, func() { order = append(order, "a") })
	m.AfterFunc(20*time.Millisecond, func() { order = append(order, "c") })
	if len(order) != 0 {
		t.Fatalf("timers fired before Advance: %v", order)
	}
	m.Advance(5 * time.Millisecond)
	if len(order) != 0 {
		t.Fatalf("timers fired early: %v", order)
	}
	m.Advance(15 * time.Millisecond)
	want := []string{"a", "b", "c"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("fire order = %v, want %v (deadline order, ties by registration)", order, want)
	}
}

func TestManualCallbackSeesOwnFireTime(t *testing.T) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	var at time.Time
	m.AfterFunc(10*time.Millisecond, func() { at = m.Now() })
	m.Advance(time.Second)
	if want := start.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback observed Now()=%v, want its own deadline %v", at, want)
	}
	if want := start.Add(time.Second); !m.Now().Equal(want) {
		t.Fatalf("clock settled at %v, want %v", m.Now(), want)
	}
}

func TestManualCallbackChainsWithinOneAdvance(t *testing.T) {
	m := NewManual(time.Time{})
	var hops int
	var hop func()
	hop = func() {
		hops++
		if hops < 3 {
			m.AfterFunc(10*time.Millisecond, hop)
		}
	}
	m.AfterFunc(10*time.Millisecond, hop)
	m.Advance(time.Second)
	if hops != 3 {
		t.Fatalf("chained timers fired %d times within one Advance, want 3", hops)
	}
}

func TestManualStop(t *testing.T) {
	m := NewManual(time.Time{})
	fired := false
	tm := m.AfterFunc(time.Millisecond, func() { fired = true })
	if m.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", m.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending manual timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	m.Advance(time.Hour)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestManualImmediateAfterFuncRunsSynchronously(t *testing.T) {
	m := NewManual(time.Time{})
	ran := false
	tm := m.AfterFunc(0, func() { ran = true })
	if !ran {
		t.Fatal("AfterFunc(0) did not run synchronously")
	}
	if tm.Stop() {
		t.Fatal("Stop on an already-fired timer = true")
	}
}

func TestSleepOnManualClock(t *testing.T) {
	m := NewManual(time.Time{})
	done := make(chan bool, 1)
	go func() { done <- Sleep(m, 50*time.Millisecond, nil) }()
	// Wait for the sleeper's timer to arm, then advance past it.
	for m.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	m.Advance(50 * time.Millisecond)
	if !<-done {
		t.Fatal("Sleep = false, want true (full duration elapsed)")
	}
}

func TestSleepCancelled(t *testing.T) {
	m := NewManual(time.Time{})
	cancel := make(chan struct{})
	close(cancel)
	if Sleep(m, time.Hour, cancel) {
		t.Fatal("Sleep = true with cancel already fired")
	}
	if m.Pending() != 0 {
		t.Fatalf("cancelled Sleep leaked a timer: Pending = %d", m.Pending())
	}
}

func TestSleepZeroDuration(t *testing.T) {
	if !Sleep(Wall, 0, nil) {
		t.Fatal("Sleep(0) = false")
	}
}
