// Package vclock is the runtime's injectable time source. Production code
// reads the wall clock through the Clock interface instead of calling
// time.Now / time.AfterFunc directly, which gives tests and the simulation
// executor (package sim) a seam to substitute a controlled clock:
//
//   - Wall forwards to the real time package (the default everywhere);
//   - Manual is a hand-advanced fake for unit tests, replacing the
//     "sleep long enough for the timer/cooldown to elapse" idiom with an
//     explicit, instant Advance;
//   - sim.Sim exposes its virtual clock through the same interface, so
//     eventloop timers, qos cooldowns and supervise backoffs run on
//     simulated time under deterministic schedule exploration.
//
// The interface is deliberately minimal — Now and AfterFunc — because every
// other shape the runtime needs (one-shot sleeps, deadline checks, cancel-
// lable timers) is derivable from those two without giving implementations
// more surface to get subtly wrong.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Timer is a cancellable pending callback, the subset of *time.Timer the
// runtime uses for AfterFunc timers.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending (true
	// means the callback will never run; false means it already ran or was
	// already stopped). Mirrors (*time.Timer).Stop for AfterFunc timers.
	Stop() bool
}

// Clock is the time source abstraction.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules fn to run once d has elapsed on this clock and
	// returns a handle to cancel it. Which goroutine runs fn is the
	// implementation's business: the wall clock uses the runtime's timer
	// goroutines, Manual runs it on the goroutine calling Advance, and the
	// sim clock runs it on the simulation goroutine.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Wall is the real-time clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	return time.AfterFunc(d, fn)
}

// Sleep waits d out on clock c unless cancel fires first, reporting whether
// the full duration elapsed. It is the cancellable-sleep shape the
// supervisor's restart backoff needs, built from AfterFunc so it works on
// any Clock. cancel may be nil for an uncancellable sleep.
func Sleep(c Clock, d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	fired := make(chan struct{})
	t := c.AfterFunc(d, func() { close(fired) })
	defer t.Stop()
	select {
	case <-fired:
		return true
	case <-cancel:
		return false
	}
}

// Manual is a hand-advanced Clock for tests. Time stands still except
// during Advance/Set calls, which run due AfterFunc callbacks synchronously
// on the calling goroutine, in deadline order (ties in registration order).
// The zero value is not usable; construct with NewManual.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers []*manualTimer // pending, unordered
}

type manualTimer struct {
	clock *Manual
	when  time.Time
	seq   uint64
	fn    func()
	done  bool
}

// NewManual returns a Manual clock reading start (a zero start is replaced
// with a fixed arbitrary epoch so tests are reproducible byte-for-byte).
func NewManual(start time.Time) *Manual {
	if start.IsZero() {
		start = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Manual{now: start}
}

// Now returns the clock's current reading.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// AfterFunc registers fn to run when the clock is advanced past d from now.
// A non-positive d runs fn synchronously before returning, matching the
// wall clock's "fires immediately" (modulo goroutine) semantics closely
// enough for test use while keeping Manual deterministic.
func (m *Manual) AfterFunc(d time.Duration, fn func()) Timer {
	m.mu.Lock()
	t := &manualTimer{clock: m, when: m.now.Add(d), seq: m.seq, fn: fn}
	m.seq++
	if d <= 0 {
		t.done = true
		m.mu.Unlock()
		fn()
		return t
	}
	m.timers = append(m.timers, t)
	m.mu.Unlock()
	return t
}

func (t *manualTimer) Stop() bool {
	m := t.clock
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	for i, p := range m.timers {
		if p == t {
			m.timers = append(m.timers[:i], m.timers[i+1:]...)
			break
		}
	}
	return true
}

// Advance moves the clock forward by d, firing due timers.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	m.mu.Unlock()
	m.Set(target)
}

// Set moves the clock to t (never backwards), firing every timer whose
// deadline is ≤ t in deadline order on the calling goroutine. Callbacks run
// outside the clock lock, so they may consult Now or register new timers;
// newly registered timers due before t fire in the same Set.
func (m *Manual) Set(target time.Time) {
	for {
		m.mu.Lock()
		if target.After(m.now) {
			// Step time to the next due deadline (or target) before firing
			// so callbacks that read Now observe their own fire time.
			next := target
			for _, t := range m.timers {
				if !t.when.After(target) && t.when.Before(next) {
					next = t.when
				}
			}
			m.now = next
		}
		var due []*manualTimer
		keep := m.timers[:0]
		for _, t := range m.timers {
			if !t.when.After(m.now) {
				due = append(due, t)
			} else {
				keep = append(keep, t)
			}
		}
		m.timers = keep
		for _, t := range due {
			t.done = true
		}
		moreLater := m.now.Before(target)
		m.mu.Unlock()
		sort.Slice(due, func(i, j int) bool {
			if !due[i].when.Equal(due[j].when) {
				return due[i].when.Before(due[j].when)
			}
			return due[i].seq < due[j].seq
		})
		for _, t := range due {
			t.fn()
		}
		if len(due) == 0 && !moreLater {
			return
		}
	}
}

// Pending returns the number of timers waiting to fire (for tests that need
// to know a timer is armed before advancing).
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

var _ Clock = (*Manual)(nil)
