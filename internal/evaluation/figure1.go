package evaluation

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gid"
	"repro/internal/gui"
	"repro/internal/metrics"
)

// Figure1Config parameterizes the Figure 1 illustration: a burst of events
// with fixed-cost handlers, processed single-threaded (panel i) or with
// offloading to background threads (panel ii).
type Figure1Config struct {
	// Events is the number of requests fired back to back.
	Events int
	// HandlerCost is the busy time each event's handling needs.
	HandlerCost time.Duration
	// Multithreaded selects panel (ii): handlers offload to a worker pool.
	Multithreaded bool
	// Workers sizes the pool for panel (ii).
	Workers int
}

func (c *Figure1Config) fill() {
	if c.Events <= 0 {
		c.Events = 3
	}
	if c.HandlerCost <= 0 {
		c.HandlerCost = 20 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = c.Events
	}
}

// busyFor spins for d (sleep would under-represent EDT occupancy: a
// sleeping EDT still cannot dispatch).
func busyFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// RunFigure1 fires the burst and returns per-event records. In
// single-threaded mode the k-th event waits behind k-1 full handler
// executions (the unresponsiveness of Figure 1(i)); in multithreaded mode
// queue delays stay near zero because the EDT only posts work.
func RunFigure1(cfg Figure1Config) ([]metrics.ResponseRecord, error) {
	cfg.fill()
	reg := &gid.Registry{}
	tk := gui.NewToolkit(reg)
	defer tk.Dispose()
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if err := rt.RegisterEDT("edt", tk.EDT()); err != nil {
		return nil, err
	}
	if _, err := rt.CreateWorker("worker", cfg.Workers); err != nil {
		return nil, err
	}

	collector := metrics.NewCollector()
	done := make(chan struct{}, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		i := i
		fired := time.Now()
		tk.EDT().Post(func() {
			rec := &metrics.ResponseRecord{Seq: i, Fired: fired, DispatchStart: time.Now()}
			// Two-phase join: publish only after both the handler returned
			// and the (possibly offloaded) work completed.
			var parts atomic.Int32
			maybeRecord := func() {
				if parts.Add(1) == 2 {
					collector.Record(*rec)
					done <- struct{}{}
				}
			}
			finish := func() {
				rec.Completed = time.Now()
				maybeRecord()
			}
			if cfg.Multithreaded {
				rt.Invoke("worker", core.Nowait, func() {
					busyFor(cfg.HandlerCost)
					finish()
				})
			} else {
				busyFor(cfg.HandlerCost)
				finish()
			}
			rec.HandlerDone = time.Now()
			maybeRecord()
		})
	}
	for n := 0; n < cfg.Events; n++ {
		select {
		case <-done:
		case <-time.After(time.Minute):
			return nil, fmt.Errorf("evaluation: figure 1 run stalled")
		}
	}
	return collector.Records(), nil
}

// RenderTimeline draws the records as the paper's Figure 1 timeline: one
// row per event, '.' while queued, '#' while handling.
func RenderTimeline(records []metrics.ResponseRecord, cols int) string {
	if len(records) == 0 {
		return ""
	}
	if cols <= 0 {
		cols = 60
	}
	start := records[0].Fired
	end := records[0].Completed
	for _, r := range records {
		if r.Fired.Before(start) {
			start = r.Fired
		}
		if r.Completed.After(end) {
			end = r.Completed
		}
	}
	span := end.Sub(start)
	if span <= 0 {
		span = time.Nanosecond
	}
	at := func(ts time.Time) int {
		c := int(float64(ts.Sub(start)) / float64(span) * float64(cols-1))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	var b strings.Builder
	for _, r := range records {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for c := at(r.Fired); c < at(r.DispatchStart); c++ {
			row[c] = '.'
		}
		for c := at(r.DispatchStart); c <= at(r.Completed); c++ {
			row[c] = '#'
		}
		fmt.Fprintf(&b, "request%-2d |%s|\n", r.Seq+1, row)
	}
	fmt.Fprintf(&b, "%10s 0%*s\n", "", cols, span.Round(time.Millisecond).String())
	return b.String()
}
