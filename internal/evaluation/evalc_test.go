package evaluation

import (
	"testing"
	"time"

	"repro/internal/kernels"
)

func TestEvalCInlineAndOffloaded(t *testing.T) {
	for _, offload := range []bool{false, true} {
		res, err := RunEvalC(EvalCConfig{
			Kernel: "crypt", Offload: offload,
			Clients: 4, MessagesPerClient: 5, Timeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatalf("offload=%v: %v", offload, err)
		}
		want := int64(4 * 5)
		if res.Messages != want {
			t.Fatalf("offload=%v: messages = %d, want %d", offload, res.Messages, want)
		}
		if res.RoundTrip.Count != int(want) {
			t.Fatalf("offload=%v: round trips = %d", offload, res.RoundTrip.Count)
		}
		if res.RoundTrip.Mean <= 0 || res.DispatchBusy.Count == 0 {
			t.Fatalf("offload=%v: empty metrics %+v", offload, res)
		}
	}
}

func TestEvalCShape_OffloadFreesDispatchLoop(t *testing.T) {
	// The universality claim: on the network framework too, offloading
	// collapses dispatch-goroutine occupancy per message.
	size := kernels.Calibrate(func(s int) kernels.Kernel { return kernels.NewCrypt(s) },
		64*1024, 5*time.Millisecond)
	inline, err := RunEvalC(EvalCConfig{
		Kernel: "crypt", KernelSize: size,
		Clients: 4, MessagesPerClient: 8, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	offl, err := RunEvalC(EvalCConfig{
		Kernel: "crypt", KernelSize: size, Offload: true, Workers: 4,
		Clients: 4, MessagesPerClient: 8, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inline.DispatchBusy.Mean < 2*time.Millisecond {
		t.Fatalf("inline dispatch busy %v suspiciously low", inline.DispatchBusy.Mean)
	}
	if offl.DispatchBusy.Mean*4 > inline.DispatchBusy.Mean {
		t.Fatalf("offloaded dispatch busy %v not well below inline %v",
			offl.DispatchBusy.Mean, inline.DispatchBusy.Mean)
	}
	// With 4 concurrent clients and 4 workers, offloading should not be
	// slower end-to-end either.
	if offl.RoundTrip.Mean > inline.RoundTrip.Mean*2 {
		t.Fatalf("offloaded round trip %v far worse than inline %v",
			offl.RoundTrip.Mean, inline.RoundTrip.Mean)
	}
}

func TestEvalCValidation(t *testing.T) {
	if _, err := RunEvalC(EvalCConfig{Kernel: "nope"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
