//go:build !race

package evaluation

const raceEnabled = false
