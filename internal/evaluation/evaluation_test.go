package evaluation

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/httpserver"
	"repro/internal/kernels"
)

func TestEvalAAllApproachesComplete(t *testing.T) {
	for _, a := range Approaches() {
		cfg := EvalAConfig{
			Kernel:   "crypt",
			Approach: a,
			Rate:     200,
			Events:   20,
			Timeout:  30 * time.Second,
		}
		res, err := RunEvalA(cfg)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Collector.Len() != 20 {
			t.Fatalf("%s: recorded %d/20 events", a, res.Collector.Len())
		}
		if res.Violations != 0 {
			t.Fatalf("%s: %d EDT confinement violations", a, res.Violations)
		}
		if res.Response.Mean <= 0 {
			t.Fatalf("%s: non-positive mean response", a)
		}
		// Every event performed at least the two status updates.
		if res.GUIUpdates < int64(2*20) {
			t.Fatalf("%s: only %d GUI updates", a, res.GUIUpdates)
		}
	}
}

func TestEvalAConfigValidation(t *testing.T) {
	if _, err := RunEvalA(EvalAConfig{Kernel: "nope", Approach: Sequential, Rate: 10}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := RunEvalA(EvalAConfig{Kernel: "crypt", Approach: "warp", Rate: 10}); err == nil {
		t.Fatal("unknown approach accepted")
	}
	if _, err := RunEvalA(EvalAConfig{Kernel: "crypt", Approach: Sequential}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// TestEvalAShape_OffloadingReducesOccupancy asserts the core claim of
// Figures 7-8: asynchronous approaches keep the EDT occupied far less than
// the sequential handler, for the same kernel and load.
func TestEvalAShape_OffloadingReducesOccupancy(t *testing.T) {
	// Calibrate a kernel of roughly 8ms so queuing is observable.
	size := kernels.Calibrate(func(s int) kernels.Kernel { return kernels.NewCrypt(s) },
		64*1024, 8*time.Millisecond)
	run := func(a Approach) *EvalAResult {
		res, err := RunEvalA(EvalAConfig{
			Kernel: "crypt", KernelSize: size, Approach: a,
			Rate: 50, Events: 25, Timeout: time.Minute,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		return res
	}
	seq := run(Sequential)
	async := run(PyjamaAsync)
	sw := run(SwingWorker)
	es := run(ExecutorService)

	// The sequential EDT occupancy per event is the kernel time (>= ~4ms);
	// the offloading approaches occupy the EDT only to post work.
	if seq.Occupancy.Mean < 2*time.Millisecond {
		t.Fatalf("sequential occupancy suspiciously low: %v", seq.Occupancy.Mean)
	}
	for _, r := range []*EvalAResult{async, sw, es} {
		if r.Occupancy.Mean*4 > seq.Occupancy.Mean {
			t.Fatalf("%s occupancy %v not well below sequential %v",
				r.Config.Approach, r.Occupancy.Mean, seq.Occupancy.Mean)
		}
	}
}

// TestEvalAShape_SequentialDegradesUnderLoad asserts Figure 1(i): when the
// offered load exceeds the sequential service rate, response time balloons
// as events queue; pyjama offloading with multiple workers keeps it bounded.
func TestEvalAShape_SequentialDegradesUnderLoad(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertion is unreliable under race instrumentation")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// Figure 1(i)'s shape needs parallel capacity: with one CPU the
		// offloaded workers share the sequential handler's core and
		// cannot keep response time bounded.
		t.Skip("shape comparison requires ≥ 2 CPUs")
	}
	size := kernels.Calibrate(func(s int) kernels.Kernel { return kernels.NewCrypt(s) },
		64*1024, 8*time.Millisecond)
	run := func(a Approach) *EvalAResult {
		res, err := RunEvalA(EvalAConfig{
			Kernel: "crypt", KernelSize: size, Approach: a,
			Rate: 300, Events: 40, Workers: 4, Timeout: time.Minute,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		return res
	}
	// Sequential queues: its p90 must exceed the async approach's. The
	// comparison is a statement about load shape, not a single sample —
	// retry to ride out scheduler noise on busy CI machines.
	var seq, async *EvalAResult
	for attempt := 0; attempt < 3; attempt++ {
		seq = run(Sequential)
		async = run(PyjamaAsync)
		if seq.Response.P90 > async.Response.P90 {
			return
		}
	}
	t.Fatalf("sequential p90 %v not worse than pyjama-async p90 %v under overload (3 attempts)",
		seq.Response.P90, async.Response.P90)
}

func TestEvalBJettyAndPyjama(t *testing.T) {
	for _, mode := range []httpserver.Mode{httpserver.Jetty, httpserver.Pyjama} {
		res, err := RunEvalB(EvalBConfig{
			Mode: mode, Workers: 2, KernelBytes: 8 * 1024,
			Users: 8, RequestsPerUser: 3,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Served != 24 || res.Failed != 0 {
			t.Fatalf("%v: served %d failed %d", mode, res.Served, res.Failed)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%v: throughput %v", mode, res.Throughput)
		}
	}
}

func TestEvalBLabels(t *testing.T) {
	r := EvalBResult{Config: EvalBConfig{Mode: httpserver.Pyjama, OMPThreads: 4}}
	if r.Label() != "pyjama+omp" {
		t.Fatalf("Label = %q", r.Label())
	}
	r2 := EvalBResult{Config: EvalBConfig{Mode: httpserver.Jetty}}
	if r2.Label() != "jetty" {
		t.Fatalf("Label = %q", r2.Label())
	}
}

func TestFigure9SeriesSweep(t *testing.T) {
	res, err := Figure9Series(httpserver.Jetty, 1, []int{1, 2}, 4*1024, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("series length %d", len(res))
	}
	for i, r := range res {
		if r.Config.Workers != i+1 {
			t.Fatalf("sweep order wrong: %+v", r.Config)
		}
	}
}

// TestProbeResponsiveness measures perceived responsiveness directly: probe
// events posted during the run must be dispatched far faster under the
// offloading approach than under the sequential one at saturating load.
func TestProbeResponsiveness(t *testing.T) {
	size := kernels.Calibrate(func(s int) kernels.Kernel { return kernels.NewCrypt(s) },
		64*1024, 8*time.Millisecond)
	run := func(a Approach) *EvalAResult {
		res, err := RunEvalA(EvalAConfig{
			Kernel: "crypt", KernelSize: size, Approach: a,
			Rate: 150, Events: 30, ProbeRate: 200, Timeout: time.Minute,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		return res
	}
	seq := run(Sequential)
	async := run(PyjamaAsync)
	if seq.Probe.Count == 0 || async.Probe.Count == 0 {
		t.Fatalf("probes not recorded: seq=%d async=%d", seq.Probe.Count, async.Probe.Count)
	}
	if async.Probe.P90 >= seq.Probe.P90 {
		t.Fatalf("probe p90: pyjama-async %v not better than sequential %v under overload",
			async.Probe.P90, seq.Probe.P90)
	}
}
