package evaluation

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestFigure1SingleThreadedQueuesEvents(t *testing.T) {
	recs, err := RunFigure1(Figure1Config{Events: 3, HandlerCost: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	// Figure 1(i): the k-th request waits behind k-1 handler executions.
	for k, r := range recs {
		wantMin := time.Duration(k) * 8 * time.Millisecond // tolerate timer slack
		if r.QueueDelay() < wantMin {
			t.Fatalf("request %d queue delay %v, want >= %v (no queuing observed)",
				k+1, r.QueueDelay(), wantMin)
		}
	}
}

func TestFigure1MultithreadedStaysResponsive(t *testing.T) {
	recs, err := RunFigure1(Figure1Config{
		Events: 3, HandlerCost: 10 * time.Millisecond, Multithreaded: true, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1(ii): queue delays stay below one handler cost — the EDT only
	// posts work, it never executes a handler before dispatching the next
	// event. (The single-threaded run above shows delays of k-1 handler
	// costs; the span itself is not asserted because wall-clock overlap is
	// at the mercy of CI machine load.)
	for k, r := range recs {
		if r.QueueDelay() > 10*time.Millisecond {
			t.Fatalf("request %d queue delay %v in multithreaded mode", k+1, r.QueueDelay())
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	base := time.Unix(0, 0)
	recs := []metrics.ResponseRecord{
		{Seq: 0, Fired: base, DispatchStart: base, HandlerDone: base.Add(10 * time.Millisecond), Completed: base.Add(10 * time.Millisecond)},
		{Seq: 1, Fired: base, DispatchStart: base.Add(10 * time.Millisecond), HandlerDone: base.Add(20 * time.Millisecond), Completed: base.Add(20 * time.Millisecond)},
	}
	out := RenderTimeline(recs, 40)
	if !strings.Contains(out, "request1") || !strings.Contains(out, "request2") {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Fatalf("no queued period rendered:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no handling period rendered:\n%s", out)
	}
	if RenderTimeline(nil, 40) != "" {
		t.Fatal("empty records should render empty")
	}
}
