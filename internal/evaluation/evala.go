// Package evaluation reproduces the paper's two experiments.
//
// Evaluation A (Figures 7-8): a simulated Swing application receives events
// at a fixed request rate; each event's handler performs GUI updates before
// and after a Java Grande kernel execution. Approaches compared:
//
//	sequential            handler runs the kernel on the EDT
//	sync-parallel         kernel parallelized with omp, EDT is the master
//	                      and participates (the fork-join trap)
//	swingworker           offload via the SwingWorker idiom
//	executorservice       offload via a fixed pool + InvokeLater
//	pyjama-async          //#omp target virtual(worker) offload, nested EDT
//	                      update block (Figure 6 pattern)
//	pyjama-async-parallel same, kernel additionally parallelized inside the
//	                      offloaded block ("asynchronous parallel")
//
// The measured quantity is the paper's response time: "the time flow from
// the event firing to the finish of its event handling", including
// offloaded continuations and the final GUI update.
//
// Evaluation B (Figure 9) lives in evalb.go.
package evaluation

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gid"
	"repro/internal/gui"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Approach names a handler strategy.
type Approach string

// The handler strategies of Evaluation A.
const (
	Sequential          Approach = "sequential"
	SyncParallel        Approach = "sync-parallel"
	SwingWorker         Approach = "swingworker"
	ExecutorService     Approach = "executorservice"
	PyjamaAsync         Approach = "pyjama-async"
	PyjamaAsyncParallel Approach = "pyjama-async-parallel"
)

// Approaches returns all strategies in presentation order.
func Approaches() []Approach {
	return []Approach{Sequential, SyncParallel, SwingWorker, ExecutorService,
		PyjamaAsync, PyjamaAsyncParallel}
}

// EvalAConfig parameterizes one Evaluation A run (one point of Figure 7/8:
// one kernel, one approach, one request rate).
type EvalAConfig struct {
	// Kernel is the kernel family name (kernels.Names).
	Kernel string
	// KernelSize scales the kernel (0 = kernels.TestSize).
	KernelSize int
	// Approach is the handler strategy.
	Approach Approach
	// Rate is the offered event load in events/sec.
	Rate float64
	// Events is the number of events fired.
	Events int
	// Pattern selects arrival distribution (default constant).
	Pattern workload.Pattern
	// Workers sizes the background pool for the offloading approaches
	// (default 3, matching the paper's synchronous-parallel default of 3
	// worker threads; SwingWorker always uses its own 10-thread pool).
	Workers int
	// OMPThreads sizes the per-kernel parallel team for the *parallel
	// approaches (default 3, the paper's default).
	OMPThreads int
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
	// ProbeRate, when > 0, posts tiny probe events at this rate during the
	// run and records their dispatch latency. A probe is the analogue of a
	// user's mouse click landing while handlers are in flight: its latency
	// is the *perceived responsiveness* the paper's introduction is about,
	// as distinct from event completion time.
	ProbeRate float64
}

func (c *EvalAConfig) fill() error {
	if _, ok := kernels.Factories()[c.Kernel]; !ok {
		return fmt.Errorf("evaluation: unknown kernel %q", c.Kernel)
	}
	if c.KernelSize <= 0 {
		c.KernelSize = kernels.TestSize(c.Kernel)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("evaluation: rate must be positive")
	}
	if c.Events <= 0 {
		c.Events = 50
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.OMPThreads <= 0 {
		c.OMPThreads = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	switch c.Approach {
	case Sequential, SyncParallel, SwingWorker, ExecutorService, PyjamaAsync, PyjamaAsyncParallel:
	default:
		return fmt.Errorf("evaluation: unknown approach %q", c.Approach)
	}
	return nil
}

// EvalAResult is the outcome of one Evaluation A run.
type EvalAResult struct {
	Config    EvalAConfig
	Collector *metrics.Collector
	// Response summarizes event response times (fired -> fully handled).
	Response metrics.Summary
	// Occupancy summarizes EDT occupancy per event (dispatch -> handler
	// return): the "idleness of the EDT" the paper maximizes.
	Occupancy metrics.Summary
	// Probe summarizes probe-event dispatch latency (zero-valued when
	// ProbeRate was 0): the responsiveness a user would perceive.
	Probe metrics.Summary
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// GUIUpdates and Violations report widget activity and thread-safety.
	GUIUpdates int64
	Violations int64
}

// RunEvalA executes one Evaluation A configuration.
func RunEvalA(cfg EvalAConfig) (*EvalAResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg := &gid.Registry{}
	tk := gui.NewToolkit(reg)
	defer tk.Dispose()

	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	if err := rt.RegisterEDT("edt", tk.EDT()); err != nil {
		return nil, err
	}
	if _, err := rt.CreateWorker("worker", cfg.Workers); err != nil {
		return nil, err
	}
	var es *gui.ExecutorService
	if cfg.Approach == ExecutorService {
		es = gui.NewFixedThreadPool(cfg.Workers, reg)
		defer es.Shutdown()
	}

	factory := kernels.Factories()[cfg.Kernel]
	status := tk.NewLabel("status")
	collector := metrics.NewCollector()
	done := make(chan struct{}, cfg.Events)

	// handler builds the event-handling closure for event i. The record is
	// published only after BOTH the handler returned (HandlerDone) and the
	// event's work completed (Completed) — the two ends race for the
	// offloading approaches, so an atomic two-phase join orders the final
	// read of rec after both writes.
	handler := func(i int, fired time.Time) func() {
		return func() {
			rec := &metrics.ResponseRecord{Seq: i, Fired: fired, DispatchStart: time.Now()}
			var parts atomic.Int32
			maybeRecord := func() {
				if parts.Add(1) == 2 {
					collector.Record(*rec)
					done <- struct{}{}
				}
			}
			finish := func() {
				rec.Completed = time.Now()
				maybeRecord()
			}
			// Construction (building the input data) is part of the
			// kernel's work and runs wherever the kernel runs.
			runKernel := func(par bool) {
				k := factory(cfg.KernelSize)
				if par {
					k.RunPar(cfg.OMPThreads)
				} else {
					k.RunSeq()
				}
			}
			status.SetText(fmt.Sprintf("event %d: processing", i))
			switch cfg.Approach {
			case Sequential:
				runKernel(false)
				status.SetText(fmt.Sprintf("event %d: done", i))
				finish()
			case SyncParallel:
				// The EDT is the team master and participates in the
				// work-sharing region: responsive only after the join.
				runKernel(true)
				status.SetText(fmt.Sprintf("event %d: done", i))
				finish()
			case SwingWorker:
				w := gui.NewSwingWorker[int, int](tk)
				w.DoInBackground = func(publish func(...int)) int {
					runKernel(false)
					publish(100)
					return i
				}
				w.Process = func(vals []int) {
					status.SetText(fmt.Sprintf("event %d: %d%%", i, vals[len(vals)-1]))
				}
				w.Done = func(int) {
					status.SetText(fmt.Sprintf("event %d: done", i))
					finish()
				}
				w.Execute()
			case ExecutorService:
				es.Execute(func() {
					runKernel(false)
					tk.InvokeLater(func() {
						status.SetText(fmt.Sprintf("event %d: done", i))
						finish()
					})
				})
			case PyjamaAsync, PyjamaAsyncParallel:
				par := cfg.Approach == PyjamaAsyncParallel
				// //#omp target virtual(worker) nowait
				// { kernel; //#omp target virtual(edt) { update } }
				if _, err := rt.Invoke("worker", core.Nowait, func() {
					runKernel(par)
					rt.Invoke("edt", core.Wait, func() {
						status.SetText(fmt.Sprintf("event %d: done", i))
						finish()
					})
				}); err != nil {
					panic(err)
				}
			}
			// The handler is returning control to the event loop now; the
			// two-phase join publishes the record once the work side has
			// finished too.
			rec.HandlerDone = time.Now()
			maybeRecord()
		}
	}

	// Probe generator: tiny events whose queue delay measures how quickly
	// the EDT would react to fresh user input.
	probes := metrics.NewHistogram()
	stopProbes := make(chan struct{})
	var probeWg sync.WaitGroup
	if cfg.ProbeRate > 0 {
		probeWg.Add(1)
		go func() {
			defer probeWg.Done()
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.ProbeRate))
			defer tick.Stop()
			for {
				select {
				case <-stopProbes:
					return
				case <-tick.C:
					fired := time.Now()
					tk.EDT().PostLabeled("probe", func() {
						probes.Observe(time.Since(fired))
					})
				}
			}
		}()
	}

	src := &workload.Source{Rate: cfg.Rate, Events: cfg.Events, Pattern: cfg.Pattern}
	start := time.Now()
	src.Run(func(i int) {
		h := handler(i, time.Now())
		tk.EDT().PostLabeled(fmt.Sprintf("event-%d", i), h)
	})
	// Await all completions.
	deadline := time.After(cfg.Timeout)
	for n := 0; n < cfg.Events; n++ {
		select {
		case <-done:
		case <-deadline:
			close(stopProbes)
			probeWg.Wait()
			return nil, fmt.Errorf("evaluation: timed out with %d/%d events handled (approach %s, rate %.0f)",
				n, cfg.Events, cfg.Approach, cfg.Rate)
		}
	}
	wall := time.Since(start)
	close(stopProbes)
	probeWg.Wait()

	return &EvalAResult{
		Config:     cfg,
		Collector:  collector,
		Response:   collector.ResponseHistogram().Summarize(),
		Occupancy:  collector.OccupancyHistogram().Summarize(),
		Probe:      probes.Summarize(),
		Wall:       wall,
		GUIUpdates: tk.Updates(),
		Violations: tk.Violations(),
	}, nil
}
