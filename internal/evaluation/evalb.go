package evaluation

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/httpserver"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// EvalBConfig parameterizes one Evaluation B run (one point of Figure 9:
// one server organization, one worker-thread count, ± per-request
// parallelization).
type EvalBConfig struct {
	// Mode is the server organization (Jetty or Pyjama).
	Mode httpserver.Mode
	// Workers is the concurrency worker thread count (Figure 9 x-axis).
	Workers int
	// OMPThreads > 1 parallelizes each request's kernel ("//omp parallel"
	// per event).
	OMPThreads int
	// KernelBytes is the encryption payload per request.
	KernelBytes int
	// Users and RequestsPerUser shape the closed-loop load (paper: 100
	// virtual users, constant requests each).
	Users           int
	RequestsPerUser int
}

func (c *EvalBConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.KernelBytes <= 0 {
		c.KernelBytes = 64 * 1024
	}
	if c.Users <= 0 {
		c.Users = 100
	}
	if c.RequestsPerUser <= 0 {
		c.RequestsPerUser = 2
	}
}

// EvalBResult is one throughput measurement.
type EvalBResult struct {
	Config     EvalBConfig
	Throughput float64 // responses per second
	Served     int64
	Failed     int64
	Wall       time.Duration
	// Latency summarizes per-request response times as seen by the virtual
	// users (an extension beyond the paper's throughput-only Figure 9).
	Latency metrics.Summary
	// Sched is the worker target's scheduler counter snapshot at the end of
	// the run (zero in Jetty mode, which has no virtual-target runtime).
	Sched executor.Stats
}

// Label renders the series name the paper uses ("jetty", "pyjama",
// "jetty+omp", "pyjama+omp").
func (r EvalBResult) Label() string {
	l := r.Config.Mode.String()
	if r.Config.OMPThreads > 1 {
		l += "+omp"
	}
	return l
}

// RunEvalB starts a server with the given configuration, drives it with the
// virtual-user pool, and reports achieved throughput.
func RunEvalB(cfg EvalBConfig) (*EvalBResult, error) {
	cfg.fill()
	srv := httpserver.New(httpserver.Config{
		Mode:        cfg.Mode,
		Workers:     cfg.Workers,
		OMPThreads:  cfg.OMPThreads,
		KernelBytes: cfg.KernelBytes,
	})
	base, err := srv.Start()
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	client := httpserver.NewClient(base)

	var failed atomic.Int64
	latency := metrics.NewHistogram()
	users := &workload.VirtualUsers{Users: cfg.Users, RequestsPerUser: cfg.RequestsPerUser}
	wall := users.Run(func(u, r int) {
		t0 := time.Now()
		if _, err := client.Encrypt(0); err != nil {
			failed.Add(1)
			return
		}
		latency.Observe(time.Since(t0))
	})
	served := srv.Served()
	if served == 0 {
		return nil, fmt.Errorf("evaluation: no requests served")
	}
	return &EvalBResult{
		Config:     cfg,
		Throughput: workload.MeanRate(int(served), wall),
		Served:     served,
		Failed:     failed.Load(),
		Wall:       wall,
		Latency:    latency.Summarize(),
		Sched:      srv.SchedStats()["worker"],
	}, nil
}

// Figure9Series runs the worker-thread sweep for one series configuration
// and returns results in sweep order.
func Figure9Series(mode httpserver.Mode, ompThreads int, workers []int, kernelBytes, users, reqsPerUser int) ([]*EvalBResult, error) {
	var out []*EvalBResult
	for _, w := range workers {
		res, err := RunEvalB(EvalBConfig{
			Mode: mode, Workers: w, OMPThreads: ompThreads,
			KernelBytes: kernelBytes, Users: users, RequestsPerUser: reqsPerUser,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
