//go:build race

package evaluation

// raceEnabled reports that the race detector is instrumenting this build;
// performance-shape assertions are skipped because instrumentation skews
// the sequential-vs-offloaded timing they compare.
const raceEnabled = true
