package evaluation

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/netloop"
)

// EvalCConfig parameterizes the framework-universality experiment: the
// Evaluation A comparison transplanted onto the netloop message server
// (the paper's further work, "support more event-driven frameworks"). A
// fleet of clients sends messages whose handling runs a kernel; the
// dispatch goroutine either computes inline (the single-threaded baseline)
// or offloads via a worker virtual target.
type EvalCConfig struct {
	// Kernel and KernelSize select the per-message computation.
	Kernel     string
	KernelSize int
	// Offload selects the pyjama-style handler (false = inline dispatch).
	Offload bool
	// Workers sizes the worker target for the offloading mode.
	Workers int
	// Clients and MessagesPerClient shape the load.
	Clients           int
	MessagesPerClient int
	// Timeout bounds the run.
	Timeout time.Duration
}

func (c *EvalCConfig) fill() error {
	if _, ok := kernels.Factories()[c.Kernel]; !ok {
		return fmt.Errorf("evaluation: unknown kernel %q", c.Kernel)
	}
	if c.KernelSize <= 0 {
		c.KernelSize = kernels.TestSize(c.Kernel)
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.MessagesPerClient <= 0 {
		c.MessagesPerClient = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return nil
}

// EvalCResult reports the message round-trip latency distribution and the
// dispatch loop's occupancy profile.
type EvalCResult struct {
	Config EvalCConfig
	// RoundTrip summarizes client-observed request->reply latency.
	RoundTrip metrics.Summary
	// DispatchBusy summarizes how long each message event occupied the
	// dispatch goroutine.
	DispatchBusy metrics.Summary
	Wall         time.Duration
	Messages     int64
}

// RunEvalC drives the message server with closed-loop clients.
func RunEvalC(cfg EvalCConfig) (*EvalCResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	srv := netloop.New("dispatch", reg)
	defer srv.Stop()
	if err := rt.RegisterEDT("dispatch", srv.Loop()); err != nil {
		return nil, err
	}
	if _, err := rt.CreateWorker("worker", cfg.Workers); err != nil {
		return nil, err
	}

	factory := kernels.Factories()[cfg.Kernel]
	busy := metrics.NewHistogram()
	srv.Loop().SetObserver(func(d netloopDispatch) {
		if d.Label == "msg" {
			busy.Observe(d.Duration())
		}
	})

	srv.HandleFunc(func(c *netloop.Client, line string) {
		reply := func() { c.Send("done " + line) }
		compute := func() {
			k := factory(cfg.KernelSize)
			k.RunSeq()
		}
		if cfg.Offload {
			rt.Invoke("worker", core.Nowait, func() {
				compute()
				rt.Invoke("dispatch", core.Wait, reply)
			})
		} else {
			compute()
			reply()
		}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	rtt := metrics.NewHistogram()
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < cfg.Clients; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			conn, derr := net.Dial("tcp", addr)
			if derr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = derr
				}
				mu.Unlock()
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for m := 0; m < cfg.MessagesPerClient; m++ {
				t0 := time.Now()
				fmt.Fprintf(conn, "c%d-m%d\n", u, m)
				if !sc.Scan() {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("evaluation: connection dropped at message %d", m)
					}
					mu.Unlock()
					return
				}
				rtt.Observe(time.Since(t0))
			}
		}(u)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		return nil, fmt.Errorf("evaluation: eval C timed out")
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &EvalCResult{
		Config:       cfg,
		RoundTrip:    rtt.Summarize(),
		DispatchBusy: busy.Summarize(),
		Wall:         time.Since(start),
		Messages:     srv.Messages(),
	}, nil
}

// netloopDispatch aliases the event loop's dispatch record (netloop reuses
// eventloop's instrumentation).
type netloopDispatch = eventloop.DispatchInfo
