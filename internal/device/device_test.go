package device

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gid"
)

func fastCfg() Config {
	return Config{TransferLatency: time.Microsecond, BytesPerSecond: 1 << 40}
}

func newDevice(t *testing.T) *Device {
	t.Helper()
	reg := &gid.Registry{}
	d := New(0, reg, fastCfg())
	t.Cleanup(d.Stop)
	return d
}

func TestAllocFreeErrors(t *testing.T) {
	d := newDevice(t)
	if err := d.Alloc("a", 16); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc("a", 16); !errors.Is(err, ErrDupBuffer) {
		t.Fatalf("dup alloc: %v", err)
	}
	if err := d.Free("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Free("a"); !errors.Is(err, ErrNoBuffer) {
		t.Fatalf("double free: %v", err)
	}
	if err := d.CopyTo("ghost", nil); !errors.Is(err, ErrNoBuffer) {
		t.Fatalf("copy to missing: %v", err)
	}
}

func TestMemoryIsolation(t *testing.T) {
	// The defining property of a device target: its memory is a copy.
	d := newDevice(t)
	host := []byte{1, 2, 3, 4}
	if err := d.Alloc("buf", 4); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyTo("buf", host); err != nil {
		t.Fatal(err)
	}
	host[0] = 99 // mutate host after the transfer
	got := make([]byte, 4)
	if err := d.CopyFrom("buf", got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("device saw host mutation: %v", got)
	}
	// And mutations on the device require an explicit copy back.
	d.Launch(func(mem Mem) {
		b, _ := mem.Bytes("buf")
		b[1] = 42
	}).Wait()
	if host[1] == 42 {
		t.Fatal("device mutation leaked into host memory without CopyFrom")
	}
	d.CopyFrom("buf", got)
	if got[1] != 42 {
		t.Fatal("device mutation lost")
	}
}

func TestSizeMismatch(t *testing.T) {
	d := newDevice(t)
	d.Alloc("b", 8)
	if err := d.CopyTo("b", make([]byte, 4)); !errors.Is(err, ErrSize) {
		t.Fatalf("size mismatch: %v", err)
	}
	if err := d.CopyFrom("b", make([]byte, 16)); !errors.Is(err, ErrSize) {
		t.Fatalf("size mismatch: %v", err)
	}
}

func TestLaunchSerialInOrder(t *testing.T) {
	d := newDevice(t)
	var mu sync.Mutex
	var order []int
	var comps []interface{ Wait() error }
	for i := 0; i < 50; i++ {
		i := i
		comps = append(comps, d.Launch(func(Mem) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("kernels out of order: %v", order)
		}
	}
	if st := d.Stats(); st.KernelsRun != 50 {
		t.Fatalf("KernelsRun = %d", st.KernelsRun)
	}
}

func TestTargetDataLifecycle(t *testing.T) {
	d := newDevice(t)
	in := []byte("abcd")
	out := make([]byte, 4)
	err := d.TargetData([]Map{
		{Name: "in", Host: in, To: true},
		{Name: "out", Host: out, From: true},
	}, func() {
		d.Launch(func(mem Mem) {
			src, _ := mem.Bytes("in")
			dst, _ := mem.Bytes("out")
			for i := range src {
				dst[i] = src[i] + 1
			}
		}).Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "bcde" {
		t.Fatalf("out = %q", out)
	}
	// Buffers are freed at region exit.
	if st := d.Stats(); st.LiveBuffers != 0 {
		t.Fatalf("LiveBuffers = %d after region", st.LiveBuffers)
	}
}

func TestTargetDataFreesOnPanic(t *testing.T) {
	d := newDevice(t)
	err := d.TargetData([]Map{{Name: "x", Host: make([]byte, 8), To: true}}, func() {
		panic("kernel host code bug")
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if st := d.Stats(); st.LiveBuffers != 0 {
		t.Fatalf("LiveBuffers = %d after panicking region", st.LiveBuffers)
	}
}

func TestTargetFullConstruct(t *testing.T) {
	d := newDevice(t)
	data := []byte{10, 20, 30}
	err := d.Target([]Map{{Name: "v", Host: data, To: true, From: true}}, func(mem Mem) {
		b, _ := mem.Bytes("v")
		for i := range b {
			b[i] *= 2
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 20 || data[2] != 60 {
		t.Fatalf("data = %v", data)
	}
}

func TestStatsTransfers(t *testing.T) {
	d := newDevice(t)
	d.Alloc("b", 1000)
	d.CopyTo("b", make([]byte, 1000))
	d.CopyFrom("b", make([]byte, 1000))
	st := d.Stats()
	if st.BytesToDevice != 1000 || st.BytesFromDevice != 1000 || st.Transfers != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransferCostScalesWithSize(t *testing.T) {
	reg := &gid.Registry{}
	d := New(1, reg, Config{TransferLatency: time.Microsecond, BytesPerSecond: 1 << 20}) // 1 MiB/s: slow on purpose
	defer d.Stop()
	d.Alloc("big", 1<<18)
	start := time.Now()
	d.CopyTo("big", make([]byte, 1<<18))
	elapsed := time.Since(start)
	// 256 KiB at 1 MiB/s = 250ms nominal; accept half to dodge scheduler noise.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("256KiB at 1MiB/s took only %v — transfer cost not simulated", elapsed)
	}
}

func TestDeviceAsVirtualTarget(t *testing.T) {
	// pjc maps `target device(0)` onto a target named "device0"; register
	// the simulated device's command queue under that name.
	reg := &gid.Registry{}
	rt := core.NewRuntime(reg)
	defer rt.Shutdown()
	d := New(0, reg, fastCfg())
	defer d.Stop()
	if err := rt.RegisterTarget(d.Name(), d.Queue()); err != nil {
		t.Fatal(err)
	}
	ran := false
	comp, err := rt.Invoke("device0", core.Wait, func() { ran = true })
	if err != nil || comp.Err() != nil {
		t.Fatal(err, comp.Err())
	}
	if !ran {
		t.Fatal("block did not run on the device queue")
	}
}

func TestStoppedDevice(t *testing.T) {
	reg := &gid.Registry{}
	d := New(2, reg, fastCfg())
	d.Stop()
	if err := d.Alloc("x", 4); !errors.Is(err, ErrStopped) {
		t.Fatalf("alloc on stopped device: %v", err)
	}
	if err := d.Launch(func(Mem) {}).Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("launch on stopped device: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	reg := &gid.Registry{}
	var r Registry
	if r.Count() != 0 || r.Get(0) != nil {
		t.Fatal("empty registry")
	}
	d0 := New(0, reg, fastCfg())
	d1 := New(1, reg, fastCfg())
	if r.Add(d0) != 0 || r.Add(d1) != 1 {
		t.Fatal("indices")
	}
	if r.Count() != 2 || r.Get(1) != d1 || r.Get(9) != nil {
		t.Fatal("lookup")
	}
	r.StopAll()
	if err := d0.Alloc("x", 1); !errors.Is(err, ErrStopped) {
		t.Fatal("StopAll did not stop devices")
	}
}

func TestTargetAsync(t *testing.T) {
	d := newDevice(t)
	data := []byte{1, 2, 3, 4}
	comp := d.TargetAsync([]Map{{Name: "v", Host: data, To: true, From: true}},
		func(mem Mem) {
			b, _ := mem.Bytes("v")
			for i := range b {
				b[i] += 10
			}
		})
	if err := comp.Wait(); err != nil {
		t.Fatal(err)
	}
	if data[0] != 11 || data[3] != 14 {
		t.Fatalf("data = %v", data)
	}
	if st := d.Stats(); st.LiveBuffers != 0 {
		t.Fatalf("LiveBuffers = %d", st.LiveBuffers)
	}
}

func TestTargetAsyncErrorSurfaces(t *testing.T) {
	d := newDevice(t)
	// Duplicate buffer name within one region -> alloc error.
	comp := d.TargetAsync([]Map{
		{Name: "x", Host: make([]byte, 4), To: true},
		{Name: "x", Host: make([]byte, 4), To: true},
	}, func(Mem) {})
	if err := comp.Wait(); err == nil {
		t.Fatal("duplicate map accepted")
	}
}
