// Package device simulates the physical accelerator that the original
// OpenMP 4.0 `target device(n)` directive offloads to. The paper contrasts
// its virtual targets with device targets: "conventionally, a device target
// has its own memory and data environment, therefore the data mapping and
// synchronization are necessary between the host and the target ... in
// contrast, a virtual target actually shares the same memory as the host".
//
// This package makes that contrast executable. A Device has
//
//   - its own memory arena: named buffers that hold *copies* of host data
//     (mutating host memory after a CopyTo does not affect the device);
//   - an in-order command queue (one stream, like a default CUDA stream):
//     kernels launched on the device execute serially in launch order;
//   - simulated transfer costs (configurable latency + bandwidth), so
//     benchmarks can expose the data-movement tax that motivates the
//     virtual-target design for host-side event handling.
//
// The constructs map onto the directive forms: Target is a `target
// device(n)` block with map clauses; TargetData is the `target data`
// region; CopyTo/CopyFrom are `target update`.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/gid"
)

// Errors reported by the device.
var (
	ErrNoBuffer  = errors.New("device: no such buffer")
	ErrDupBuffer = errors.New("device: buffer already allocated")
	ErrSize      = errors.New("device: host/device size mismatch")
	ErrStopped   = errors.New("device: stopped")
)

// Config sets the simulated transfer characteristics. The zero value gets
// defaults of 20µs latency and 4 GiB/s bandwidth — in the range of a PCIe
// accelerator, scaled to keep tests fast.
type Config struct {
	// TransferLatency is the fixed per-transfer cost.
	TransferLatency time.Duration
	// BytesPerSecond is the transfer bandwidth.
	BytesPerSecond float64
}

func (c *Config) fill() {
	if c.TransferLatency <= 0 {
		c.TransferLatency = 20 * time.Microsecond
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 4 << 30
	}
}

// Stats is a snapshot of device activity.
type Stats struct {
	BytesToDevice   int64
	BytesFromDevice int64
	Transfers       int64
	KernelsRun      int64
	LiveBuffers     int
}

// Device is one simulated accelerator.
type Device struct {
	id    int
	cfg   Config
	queue *executor.WorkerPool

	mu      sync.Mutex
	buffers map[string][]byte
	stopped bool
	stats   Stats
}

// New creates device id with its command-queue goroutine registered in reg
// (nil means gid.Default).
func New(id int, reg *gid.Registry, cfg Config) *Device {
	cfg.fill()
	return &Device{
		id:      id,
		cfg:     cfg,
		queue:   executor.NewWorkerPool(fmt.Sprintf("device%d", id), 1, reg),
		buffers: make(map[string][]byte),
	}
}

// ID returns the device number.
func (d *Device) ID() int { return d.id }

// Name returns the virtual-target-style name ("device0"), matching what
// the pjc compiler generates for `target device(0)`.
func (d *Device) Name() string { return fmt.Sprintf("device%d", d.id) }

// Queue exposes the device's command queue as an executor, so the device
// can be registered as a target with core.Runtime.RegisterTarget. Blocks
// posted this way run in launch order on the device's single stream.
func (d *Device) Queue() *executor.WorkerPool { return d.queue }

// simulateTransfer sleeps for the modeled cost of moving n bytes.
func (d *Device) simulateTransfer(n int) {
	time.Sleep(d.cfg.TransferLatency + time.Duration(float64(n)/d.cfg.BytesPerSecond*float64(time.Second)))
}

// Alloc creates an uninitialized device buffer (map(alloc:)).
func (d *Device) Alloc(name string, size int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return ErrStopped
	}
	if _, dup := d.buffers[name]; dup {
		return fmt.Errorf("%w: %q", ErrDupBuffer, name)
	}
	d.buffers[name] = make([]byte, size)
	d.stats.LiveBuffers++
	return nil
}

// Free releases a device buffer (map(delete:)).
func (d *Device) Free(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.buffers[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoBuffer, name)
	}
	delete(d.buffers, name)
	d.stats.LiveBuffers--
	return nil
}

// CopyTo transfers host into the named device buffer (target update to:).
// Sizes must match. The device holds a copy: later host mutations are not
// visible on the device.
func (d *Device) CopyTo(name string, host []byte) error {
	d.mu.Lock()
	buf, ok := d.buffers[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoBuffer, name)
	}
	if len(buf) != len(host) {
		d.mu.Unlock()
		return fmt.Errorf("%w: buffer %q is %d bytes, host is %d", ErrSize, name, len(buf), len(host))
	}
	copy(buf, host)
	d.stats.BytesToDevice += int64(len(host))
	d.stats.Transfers++
	d.mu.Unlock()
	d.simulateTransfer(len(host))
	return nil
}

// CopyFrom transfers the named device buffer into host (target update
// from:). Sizes must match.
func (d *Device) CopyFrom(name string, host []byte) error {
	d.mu.Lock()
	buf, ok := d.buffers[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoBuffer, name)
	}
	if len(buf) != len(host) {
		d.mu.Unlock()
		return fmt.Errorf("%w: buffer %q is %d bytes, host is %d", ErrSize, name, len(buf), len(host))
	}
	copy(host, buf)
	d.stats.BytesFromDevice += int64(len(buf))
	d.stats.Transfers++
	d.mu.Unlock()
	d.simulateTransfer(len(host))
	return nil
}

// Mem is a kernel's view of device memory.
type Mem struct{ d *Device }

// Bytes returns the named device buffer for in-kernel access. The slice
// aliases device memory; it must not be retained past the kernel.
func (m Mem) Bytes(name string) ([]byte, error) {
	m.d.mu.Lock()
	defer m.d.mu.Unlock()
	buf, ok := m.d.buffers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBuffer, name)
	}
	return buf, nil
}

// Launch enqueues kernel on the device's command stream and returns its
// completion. Kernels run serially in launch order.
func (d *Device) Launch(kernel func(mem Mem)) *executor.Completion {
	d.mu.Lock()
	stopped := d.stopped
	d.mu.Unlock()
	if stopped {
		return executor.NewCompletedCompletion(ErrStopped)
	}
	return d.queue.Post(func() {
		kernel(Mem{d: d})
		d.mu.Lock()
		d.stats.KernelsRun++
		d.mu.Unlock()
	})
}

// Map is one map clause of a target/target-data construct.
type Map struct {
	// Name is the device buffer name.
	Name string
	// Host is the host-side storage.
	Host []byte
	// To copies host -> device at region entry (map(to:) / map(tofrom:)).
	To bool
	// From copies device -> host at region exit (map(from:) / map(tofrom:)).
	From bool
}

// TargetData implements the `target data` construct: allocate and copy-in
// the mapped buffers, run body (which may Launch kernels and issue updates),
// then copy-out and free. Buffers are always freed, even if body panics.
func (d *Device) TargetData(maps []Map, body func()) (err error) {
	allocated := make([]string, 0, len(maps))
	defer func() {
		for _, name := range allocated {
			if ferr := d.Free(name); ferr != nil && err == nil {
				err = ferr
			}
		}
	}()
	for _, m := range maps {
		if aerr := d.Alloc(m.Name, len(m.Host)); aerr != nil {
			return aerr
		}
		allocated = append(allocated, m.Name)
		if m.To {
			if cerr := d.CopyTo(m.Name, m.Host); cerr != nil {
				return cerr
			}
		}
	}
	if rerr := executor.RunCaptured(body); rerr != nil {
		return rerr
	}
	for _, m := range maps {
		if m.From {
			if cerr := d.CopyFrom(m.Name, m.Host); cerr != nil {
				return cerr
			}
		}
	}
	return nil
}

// Target implements a full `target device(n)` block with map clauses:
// map-in, run the kernel synchronously on the device, map-out. This is the
// standard-OpenMP behaviour the paper's virtual targets replace for
// host-side work.
func (d *Device) Target(maps []Map, kernel func(mem Mem)) error {
	return d.TargetData(maps, func() {
		if err := d.Launch(kernel).Wait(); err != nil {
			panic(err) // recaptured by TargetData's RunCaptured
		}
	})
}

// TargetAsync is Target with the nowait clause: it returns immediately with
// a Completion that finishes after map-in, kernel and map-out are done. The
// data environment lives until the completion fires; the host must not
// touch the mapped buffers' device copies meanwhile (host slices stay
// host-owned, as always).
func (d *Device) TargetAsync(maps []Map, kernel func(mem Mem)) *executor.Completion {
	comp, complete := executor.NewPendingCompletion()
	go func() {
		complete(d.Target(maps, kernel))
	}()
	return comp
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Stop drains the command queue and rejects further use.
func (d *Device) Stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.queue.Shutdown()
}

// Registry of devices, mirroring omp_get_num_devices/omp_get_device_num.
type Registry struct {
	mu      sync.Mutex
	devices []*Device
}

// Add registers a device and returns its index.
func (r *Registry) Add(d *Device) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices = append(r.devices, d)
	return len(r.devices) - 1
}

// Get returns device i, or nil.
func (r *Registry) Get(i int) *Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.devices) {
		return nil
	}
	return r.devices[i]
}

// Count returns the number of registered devices (omp_get_num_devices).
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.devices)
}

// StopAll stops every registered device.
func (r *Registry) StopAll() {
	r.mu.Lock()
	devs := append([]*Device(nil), r.devices...)
	r.mu.Unlock()
	for _, d := range devs {
		d.Stop()
	}
}
