package device_test

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/gid"
)

// Example runs a `target device(0) map(tofrom: data)` construct on the
// simulated accelerator: map-in, kernel on the device's command stream,
// map-out — the explicit data choreography that virtual targets make
// unnecessary for host-side work.
func Example() {
	reg := &gid.Registry{}
	dev := device.New(0, reg, device.Config{
		TransferLatency: time.Microsecond,
		BytesPerSecond:  1 << 40,
	})
	defer dev.Stop()

	data := []byte{1, 2, 3, 4}
	err := dev.Target(
		[]device.Map{{Name: "data", Host: data, To: true, From: true}},
		func(mem device.Mem) {
			b, _ := mem.Bytes("data")
			for i := range b {
				b[i] *= 3
			}
		})
	if err != nil {
		panic(err)
	}
	st := dev.Stats()
	fmt.Println("data:", data)
	fmt.Printf("transfers: %d (%dB to, %dB from)\n", st.Transfers, st.BytesToDevice, st.BytesFromDevice)
	// Output:
	// data: [3 6 9 12]
	// transfers: 2 (4B to, 4B from)
}
