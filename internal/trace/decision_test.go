package trace

import (
	"strings"
	"testing"
	"time"
)

func TestDecisionLogStringIsStable(t *testing.T) {
	mk := func() *DecisionLog {
		var l DecisionLog
		l.Append(Decision{Step: 0, Kind: "run", Target: "edt", Seq: 1, Alts: 3})
		l.Append(Decision{Step: 1, Kind: "timer", Target: "pool", Seq: 7, Alts: 1, Virt: 5 * time.Millisecond})
		l.Append(Decision{Step: 2, Kind: "help", Target: "pool", Seq: 2, Alts: 2, Virt: 5 * time.Millisecond})
		return &l
	}
	a, b := mk().String(), mk().String()
	if a != b {
		t.Fatalf("identical logs rendered differently:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "00001 timer pool#7 alts=1 t=5ms") {
		t.Fatalf("unexpected line format:\n%s", a)
	}
	if lines := strings.Count(a, "\n"); lines != 3 {
		t.Fatalf("log has %d lines, want 3:\n%s", lines, a)
	}
}

func TestDecisionLogBranches(t *testing.T) {
	var l DecisionLog
	l.Append(Decision{Alts: 1})
	l.Append(Decision{Alts: 2})
	l.Append(Decision{Alts: 5})
	if got := l.Branches(); got != 2 {
		t.Fatalf("Branches = %d, want 2", got)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	l.Reset()
	if l.Len() != 0 || l.Branches() != 0 {
		t.Fatalf("Reset left Len=%d Branches=%d", l.Len(), l.Branches())
	}
}
