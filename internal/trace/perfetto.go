package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one record of the Chrome/Perfetto trace-event JSON format
// (the "JSON Array Format" with a traceEvents wrapper, which Perfetto's
// legacy JSON importer accepts).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ExportTraceEvent writes events as Chrome/Perfetto trace-event JSON:
//
//   - one track (tid) per goroutine — i.e. per worker or EDT;
//   - one complete slice ("X") per span with captured begin and end;
//   - flow arrows (ph "s"/"f") from each OpEnqueue to the begin of the run
//     it became, making the cross-dispatch edge visible;
//   - instant events for the remaining annotation ops;
//   - thread_name metadata naming each track after the target that ran on
//     it (workers and EDTs register this way; plain goroutines keep their
//     gid).
//
// Open the result at https://ui.perfetto.dev (or chrome://tracing).
func ExportTraceEvent(w io.Writer, events []Event) error {
	if len(events) == 0 {
		return json.NewEncoder(w).Encode(traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"})
	}
	epoch := events[0].Time
	for _, e := range events {
		if e.Time.Before(epoch) {
			epoch = e.Time
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(epoch)) / float64(time.Microsecond) }

	tree := BuildTree(events)
	out := make([]traceEvent, 0, len(events)+16)

	// Track names: a goroutine that ran a target's spans is that target's
	// worker/EDT; name the track after it.
	trackName := make(map[uint64]string)
	for _, n := range tree.ByID {
		if n.Name == "run" && n.Target != "" && trackName[n.Gid] == "" {
			trackName[n.Gid] = "target " + n.Target
		}
	}
	for _, e := range events {
		if _, ok := trackName[e.Gid]; !ok {
			trackName[e.Gid] = fmt.Sprintf("g%d", e.Gid)
		}
	}
	for tid, name := range trackName {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	// Slices: one complete event per span with both endpoints captured.
	for _, n := range tree.ByID {
		if n.Start.IsZero() || n.End.IsZero() {
			continue
		}
		name := n.Name
		if n.Target != "" {
			name += " " + n.Target
		}
		args := map[string]any{"span": uint64(n.ID)}
		if n.Parent != 0 {
			args["parent"] = uint64(n.Parent)
		}
		if q := n.QueueDelay(); q > 0 {
			args["queued_us"] = float64(q) / float64(time.Microsecond)
		}
		out = append(out, traceEvent{
			Name: name, Cat: "span", Ph: "X",
			Ts: us(n.Start), Dur: maxf(us(n.End)-us(n.Start), 0.001),
			Pid: 1, Tid: n.Gid, Args: args,
		})
	}

	// Flow arrows: enqueue (producer goroutine) → run begin (consumer).
	for _, e := range events {
		if e.Op != OpEnqueue {
			continue
		}
		n := tree.ByID[e.Span]
		if n == nil || n.Start.IsZero() || n.End.IsZero() {
			continue
		}
		id := fmt.Sprintf("%d", uint64(e.Span))
		out = append(out, traceEvent{
			Name: "dispatch", Cat: "flow", Ph: "s", Ts: us(e.Time),
			Pid: 1, Tid: e.Gid, ID: id,
		})
		out = append(out, traceEvent{
			Name: "dispatch", Cat: "flow", Ph: "f", BP: "e",
			// Nudge the flow target inside the run slice so the importer
			// binds it to the slice rather than the instant before it.
			Ts:  us(n.Start) + 0.0005,
			Pid: 1, Tid: n.Gid, ID: id,
		})
	}

	// Annotations as thread-scoped instants.
	for _, e := range events {
		switch e.Op {
		case OpSpanBegin, OpSpanEnd, OpEnqueue:
			continue
		}
		name := e.Op.String()
		args := map[string]any{}
		if e.Target != "" {
			args["target"] = e.Target
		}
		if e.Mode != "" {
			args["mode"] = e.Mode
		}
		if e.Span != 0 {
			args["span"] = uint64(e.Span)
		}
		out = append(out, traceEvent{
			Name: name, Cat: "op", Ph: "i", S: "t", Ts: us(e.Time),
			Pid: 1, Tid: e.Gid, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ExportTraceEventBuffer is ExportTraceEvent over a Buffer's retained events.
func ExportTraceEventBuffer(w io.Writer, b *Buffer) error {
	return ExportTraceEvent(w, b.Snapshot())
}
