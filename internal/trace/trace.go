// Package trace is a lightweight execution tracer for the virtual-target
// runtime: a fixed-capacity ring buffer of typed events (target-block
// invocations, dispatch decisions, waits) that costs little when enabled
// and nothing when no sink is installed. The runtime's debugging story —
// "why did this block run inline?", "how long did the EDT pump?" — reads
// straight out of a trace dump, and tests use traces to assert scheduling
// decisions that are otherwise invisible.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op is the traced operation kind.
type Op int

// Operation kinds recorded by the runtime.
const (
	// OpInvoke is a target-block invocation (Algorithm 1 entry).
	OpInvoke Op = iota
	// OpInline marks thread-context awareness: the block ran synchronously
	// because the caller already belonged to the target.
	OpInline
	// OpPost marks an asynchronous submission to the target's queue.
	OpPost
	// OpWait marks a blocking join (default mode or wait clause).
	OpWait
	// OpAwaitEnter and OpAwaitExit bracket the logical barrier.
	OpAwaitEnter
	OpAwaitExit
	// OpHelped marks one task run by an awaiting thread (help-first).
	OpHelped
	// OpShed marks an invocation rejected by admission control (qos):
	// the wait queue was full, a queue deadline expired, or a CoDel
	// controller decided the target is persistently overloaded.
	OpShed
	// OpDeadline marks a target block cancelled by its context deadline
	// while still queued (it never ran; its Completion carries
	// context.DeadlineExceeded).
	OpDeadline
	// OpBreakerOpen and OpBreakerClose bracket a circuit breaker's open
	// period: Open after too many consecutive failures, Close when a
	// half-open probe succeeds.
	OpBreakerOpen
	OpBreakerClose
	// OpRestart marks a supervised target being restarted (worker respawn
	// or full executor replacement) after a crash or panic storm.
	OpRestart
	// OpStall marks a watchdog flagging a registered loop or pool as
	// stalled: its heartbeat probe did not complete within the threshold
	// (queue not draining, EDT blocked, or all workers dead).
	OpStall
	// OpTargetDown marks a supervised target exhausting its restart
	// budget: it is declared failed and invocations fail fast from then
	// on with supervise.ErrTargetDown.
	OpTargetDown
	// OpSpanBegin and OpSpanEnd bracket a causal span (see SpanID): the
	// event's Span, Parent and Name fields identify the span, its causal
	// parent, and its kind ("invoke", "run", "request", ...). Begin and
	// end carry the span's timestamps; every other op recorded while the
	// span is current is an annotation on it.
	OpSpanBegin
	OpSpanEnd
	// OpEnqueue marks a task entering an executor's queue. It shares its
	// Span with the eventual run span, so exporters can draw the
	// producer→consumer flow arrow and metrics can derive queue sojourn
	// (run begin minus enqueue).
	OpEnqueue
	// OpConnDeadline marks a reactor connection closed by a deadline
	// (idle, read, or write-stall) — the slowloris defence firing.
	OpConnDeadline
	// OpReactorRestart marks a supervised reactor replacing its crashed
	// poll loop with a fresh generation (listeners re-registered,
	// in-flight connections failed).
	OpReactorRestart
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInvoke:
		return "invoke"
	case OpInline:
		return "inline"
	case OpPost:
		return "post"
	case OpWait:
		return "wait"
	case OpAwaitEnter:
		return "await-enter"
	case OpAwaitExit:
		return "await-exit"
	case OpHelped:
		return "helped"
	case OpShed:
		return "shed"
	case OpDeadline:
		return "deadline"
	case OpBreakerOpen:
		return "breaker-open"
	case OpBreakerClose:
		return "breaker-close"
	case OpRestart:
		return "restart"
	case OpStall:
		return "stall"
	case OpTargetDown:
		return "target-down"
	case OpSpanBegin:
		return "span-begin"
	case OpSpanEnd:
		return "span-end"
	case OpEnqueue:
		return "enqueue"
	case OpConnDeadline:
		return "conn-deadline"
	case OpReactorRestart:
		return "reactor-restart"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Event is one trace record.
type Event struct {
	Seq    uint64
	Time   time.Time
	Op     Op
	Target string // virtual target name, when applicable
	Mode   string // scheduling mode spelling, when applicable
	Gid    uint64 // goroutine id of the actor
	Span   SpanID // span this event belongs to (0 = none)
	Parent SpanID // causal parent span (begin/enqueue events only)
	Name   string // span kind ("invoke", "run", ...) on span-lifecycle events
}

// String renders the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %s g%-5d %-12s", e.Seq, e.Time.Format("15:04:05.000000"), e.Gid, e.Op)
	if e.Name != "" {
		fmt.Fprintf(&b, " name=%s", e.Name)
	}
	if e.Target != "" {
		fmt.Fprintf(&b, " target=%s", e.Target)
	}
	if e.Mode != "" {
		fmt.Fprintf(&b, " mode=%s", e.Mode)
	}
	if e.Span != 0 {
		fmt.Fprintf(&b, " span=%d", e.Span)
	}
	if e.Parent != 0 {
		fmt.Fprintf(&b, " parent=%d", e.Parent)
	}
	return b.String()
}

// Buffer is a concurrency-safe ring buffer of events.
type Buffer struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
	seq    uint64 // guarded by mu: sequence and ring position must advance together
	drops  atomic.Uint64
}

// NewBuffer returns a ring holding the last cap events (cap < 16 is
// clamped to 16).
func NewBuffer(capacity int) *Buffer {
	if capacity < 16 {
		capacity = 16
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest when full.
//
// Seq is assigned under the ring mutex: sequence numbers and ring positions
// must advance together, or two concurrent recorders could store their
// events in the opposite order from their Seqs and Snapshot/Dump would
// render a misordered history.
func (b *Buffer) Record(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if b.full {
		b.drops.Add(1)
	}
	b.events[b.next] = e
	b.next++
	if b.next == len(b.events) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.events)
	}
	return b.next
}

// Overwritten returns how many events were lost to ring wraparound.
func (b *Buffer) Overwritten() uint64 { return b.drops.Load() }

// Snapshot returns the retained events oldest first.
func (b *Buffer) Snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	if b.full {
		out = append(out, b.events[b.next:]...)
	}
	out = append(out, b.events[:b.next]...)
	return out
}

// Dump renders the retained events one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Snapshot() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountOp returns how many retained events have the given op.
func (b *Buffer) CountOp(op Op) int {
	n := 0
	for _, e := range b.Snapshot() {
		if e.Op == op {
			n++
		}
	}
	return n
}

// Reset clears the buffer, including the overwrite counter — a fresh
// capture must not inherit the previous capture's drop tally.
func (b *Buffer) Reset() {
	b.mu.Lock()
	b.next = 0
	b.full = false
	b.drops.Store(0)
	b.mu.Unlock()
}

// Sink receives events; Buffer implements it, and tests may provide
// their own.
type Sink interface {
	Record(Event)
}

var _ Sink = (*Buffer)(nil)
