package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewSpanIDNeverZero(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("NewSpanID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate span id %d", id)
		}
		seen[id] = true
	}
}

func TestSwapAndCurrent(t *testing.T) {
	if got := Current(); got != 0 {
		t.Fatalf("fresh goroutine Current() = %d, want 0", got)
	}
	a, b := NewSpanID(), NewSpanID()
	if prev := Swap(a); prev != 0 {
		t.Fatalf("first Swap returned %d, want 0", prev)
	}
	if got := Current(); got != a {
		t.Fatalf("Current() = %d, want %d", got, a)
	}
	if prev := Swap(b); prev != a {
		t.Fatalf("second Swap returned %d, want %d", prev, a)
	}
	if prev := Swap(0); prev != b {
		t.Fatalf("clearing Swap returned %d, want %d", prev, b)
	}
	if got := Current(); got != 0 {
		t.Fatalf("Current() after clear = %d, want 0", got)
	}
}

func TestCurrentIsPerGoroutine(t *testing.T) {
	mine := NewSpanID()
	Swap(mine)
	defer Swap(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := Current(); got != 0 {
				t.Errorf("other goroutine sees span %d, want 0", got)
			}
			own := NewSpanID()
			Swap(own)
			if got := Current(); got != own {
				t.Errorf("goroutine Current() = %d, want %d", got, own)
			}
			Swap(0)
		}()
	}
	wg.Wait()
	if got := Current(); got != mine {
		t.Fatalf("my span disturbed: Current() = %d, want %d", got, mine)
	}
}

func TestUseInstallsAndRestores(t *testing.T) {
	if ActiveSink() != nil {
		t.Fatal("test expects no ambient global sink")
	}
	buf := NewBuffer(64)
	restore := Use(buf)
	if ActiveSink() == nil {
		t.Fatal("Use did not install the sink")
	}
	restore()
	if ActiveSink() != nil {
		t.Fatal("restore did not remove the sink")
	}
}

func TestSpanHelpersRecordLifecycle(t *testing.T) {
	buf := NewBuffer(64)
	parent := BeginSpan(buf, "invoke", "alpha", 0)
	child := NewSpanID()
	Enqueue(buf, child, "alpha", parent)
	BeginSpanID(buf, child, "run", "alpha", parent)
	EndSpan(buf, child, "run", "alpha")
	EndSpan(buf, parent, "invoke", "alpha")

	events := buf.Snapshot()
	if len(events) != 5 {
		t.Fatalf("recorded %d events, want 5", len(events))
	}
	tree := BuildTree(events)
	inv := tree.Find("invoke", "alpha")
	if inv == nil {
		t.Fatalf("no invoke span in tree:\n%s", tree.String())
	}
	run := inv.Child("run", "alpha")
	if run == nil {
		t.Fatalf("run span not a child of invoke:\n%s", tree.String())
	}
	if run.Parent != parent || run.ID != child {
		t.Fatalf("run span identity wrong: id=%d parent=%d", run.ID, run.Parent)
	}
	if run.Enqueued.IsZero() {
		t.Fatal("run span lost its enqueue timestamp")
	}
	if run.QueueDelay() < 0 {
		t.Fatalf("negative queue delay %v", run.QueueDelay())
	}
	if inv.Duration() <= 0 {
		t.Fatalf("invoke span duration %v, want > 0", inv.Duration())
	}
}

func TestBuildTreeOrphansAndEnqueueFallback(t *testing.T) {
	base := time.Now()
	events := []Event{
		// Annotation for a span whose begin was never captured: orphan.
		{Op: OpHelped, Span: 999, Time: base},
		// Enqueue-only span (begin/end lost to wraparound): parent and
		// target still recovered from the enqueue record.
		{Op: OpEnqueue, Span: 7, Parent: 3, Target: "w", Name: "enqueue", Time: base},
		{Op: OpSpanBegin, Span: 3, Name: "invoke", Target: "w", Time: base.Add(time.Millisecond)},
		{Op: OpSpanEnd, Span: 3, Name: "invoke", Target: "w", Time: base.Add(2 * time.Millisecond)},
	}
	tree := BuildTree(events)
	if len(tree.Orphans) != 1 || tree.Orphans[0].Span != 999 {
		t.Fatalf("orphans = %+v, want the span-999 annotation", tree.Orphans)
	}
	n := tree.ByID[7]
	if n == nil || n.Parent != 3 || n.Target != "w" {
		t.Fatalf("enqueue-only span not reconstructed: %+v", n)
	}
	inv := tree.ByID[3]
	if inv == nil || len(inv.Children) != 1 || inv.Children[0].ID != 7 {
		t.Fatalf("enqueue-only span not parented under invoke:\n%s", tree.String())
	}
}

func TestTreeDepthAndFindAll(t *testing.T) {
	buf := NewBuffer(64)
	a := BeginSpan(buf, "invoke", "x", 0)
	b := BeginSpan(buf, "run", "x", a)
	c := BeginSpan(buf, "invoke", "y", b)
	EndSpan(buf, c, "invoke", "y")
	EndSpan(buf, b, "run", "x")
	EndSpan(buf, a, "invoke", "x")
	tree := BuildTree(buf.Snapshot())
	if d := tree.Depth(); d != 3 {
		t.Fatalf("Depth() = %d, want 3\n%s", d, tree.String())
	}
	if got := len(tree.FindAll("invoke", "")); got != 2 {
		t.Fatalf("FindAll(invoke) = %d spans, want 2", got)
	}
	if !strings.Contains(tree.Summarize(), "depth=3") {
		t.Fatalf("Summarize missing depth:\n%s", tree.Summarize())
	}
}

// TestExportTraceEventShape validates the exporter output against the
// trace-event JSON contract Perfetto's legacy importer checks: a traceEvents
// array whose records all carry ph/ts/pid/tid, complete slices with dur,
// matched flow start/finish pairs, and thread_name metadata per track.
func TestExportTraceEventShape(t *testing.T) {
	buf := NewBuffer(256)
	parent := BeginSpan(buf, "invoke", "alpha", 0)
	child := NewSpanID()
	Enqueue(buf, child, "alpha", parent)
	buf.Record(Event{Op: OpPost, Target: "alpha", Mode: "nowait", Span: parent})
	BeginSpanID(buf, child, "run", "alpha", parent)
	EndSpan(buf, child, "run", "alpha")
	EndSpan(buf, parent, "invoke", "alpha")

	var sb strings.Builder
	if err := ExportTraceEventBuffer(&sb, buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if file.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", file.Unit)
	}
	var slices, flowStarts, flowEnds, meta, instants int
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if ts := ev["ts"].(float64); ts < 0 {
			t.Fatalf("negative ts %v: %v", ts, ev)
		}
		switch ph {
		case "X":
			slices++
			if d, ok := ev["dur"].(float64); !ok || d <= 0 {
				t.Fatalf("complete slice without positive dur: %v", ev)
			}
		case "s":
			flowStarts++
		case "f":
			flowEnds++
			if bp, _ := ev["bp"].(string); bp != "e" {
				t.Fatalf("flow finish without bp=e: %v", ev)
			}
		case "M":
			meta++
		case "i":
			instants++
		}
	}
	if slices != 2 {
		t.Fatalf("slices = %d, want 2 (invoke + run)", slices)
	}
	if flowStarts != 1 || flowEnds != 1 {
		t.Fatalf("flow pair = %d starts / %d ends, want 1/1", flowStarts, flowEnds)
	}
	if meta == 0 {
		t.Fatal("no thread_name metadata emitted")
	}
	if instants == 0 {
		t.Fatal("annotation instants missing (OpPost should export)")
	}
}

func TestExportTraceEventEmpty(t *testing.T) {
	var sb strings.Builder
	if err := ExportTraceEvent(&sb, nil); err != nil {
		t.Fatalf("export empty: %v", err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatalf("empty export missing traceEvents wrapper: %s", sb.String())
	}
}
