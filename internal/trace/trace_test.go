package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	b := NewBuffer(64)
	b.Record(Event{Op: OpInvoke, Target: "worker", Mode: "nowait", Gid: 7})
	b.Record(Event{Op: OpPost, Target: "worker"})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	snap := b.Snapshot()
	if snap[0].Op != OpInvoke || snap[1].Op != OpPost {
		t.Fatalf("snapshot order: %v", snap)
	}
	if snap[0].Seq >= snap[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
	if snap[0].Time.IsZero() {
		t.Fatal("timestamp not filled")
	}
}

func TestRingOverwrite(t *testing.T) {
	b := NewBuffer(16)
	for i := 0; i < 40; i++ {
		b.Record(Event{Op: OpHelped})
	}
	if b.Len() != 16 {
		t.Fatalf("Len = %d, want capacity 16", b.Len())
	}
	if b.Overwritten() != 40-16 {
		t.Fatalf("Overwritten = %d", b.Overwritten())
	}
	snap := b.Snapshot()
	// Oldest retained event is #25 (1-indexed seq).
	if snap[0].Seq != 25 {
		t.Fatalf("oldest seq = %d, want 25", snap[0].Seq)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatal("snapshot not in order after wraparound")
		}
	}
}

func TestCapacityClamp(t *testing.T) {
	b := NewBuffer(1)
	for i := 0; i < 20; i++ {
		b.Record(Event{})
	}
	if b.Len() != 16 {
		t.Fatalf("Len = %d, want clamped capacity 16", b.Len())
	}
}

func TestCountOpAndDump(t *testing.T) {
	b := NewBuffer(32)
	b.Record(Event{Op: OpInline, Target: "edt", Mode: "wait"})
	b.Record(Event{Op: OpPost, Target: "worker", Mode: "nowait"})
	b.Record(Event{Op: OpPost, Target: "worker", Mode: "await"})
	if b.CountOp(OpPost) != 2 || b.CountOp(OpInline) != 1 || b.CountOp(OpWait) != 0 {
		t.Fatal("CountOp")
	}
	dump := b.Dump()
	for _, want := range []string{"inline", "target=edt", "mode=nowait", "post"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestReset(t *testing.T) {
	b := NewBuffer(16)
	b.Record(Event{})
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestConcurrentRecord(t *testing.T) {
	b := NewBuffer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(Event{Op: OpInvoke, Time: time.Now()})
			}
		}()
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Fatalf("Len = %d, want 800", b.Len())
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpInvoke: "invoke", OpInline: "inline", OpPost: "post", OpWait: "wait",
		OpAwaitEnter: "await-enter", OpAwaitExit: "await-exit", OpHelped: "helped",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("%v", op)
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("unknown op")
	}
}

func BenchmarkRecord(b *testing.B) {
	buf := NewBuffer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Record(Event{Op: OpInvoke, Target: "worker"})
	}
}

// TestConcurrentRecordSeqOrdered is the regression test for the Seq/ring
// ordering race: when Seq was assigned atomically before taking the ring
// mutex, two racing recorders could store their events in the opposite
// order from their sequence numbers, so a Snapshot was not monotonically
// ordered. With Seq assigned under the mutex the snapshot must be strictly
// ascending with no gaps.
func TestConcurrentRecordSeqOrdered(t *testing.T) {
	b := NewBuffer(8192)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Record(Event{Op: OpPost, Time: time.Now()})
			}
		}()
	}
	wg.Wait()
	snap := b.Snapshot()
	if len(snap) != 4000 {
		t.Fatalf("Snapshot len = %d, want 4000", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(i+1) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (out-of-order or gapped ring)", i, e.Seq, i+1)
		}
	}
}

// TestResetClearsOverwritten is the regression test for Reset leaving the
// drop counter stale: a capture after Reset must start from zero drops.
func TestResetClearsOverwritten(t *testing.T) {
	b := NewBuffer(16)
	for i := 0; i < 40; i++ {
		b.Record(Event{})
	}
	if b.Overwritten() == 0 {
		t.Fatal("expected overwrites before Reset")
	}
	b.Reset()
	if got := b.Overwritten(); got != 0 {
		t.Fatalf("Overwritten after Reset = %d, want 0", got)
	}
	b.Record(Event{})
	if got := b.Overwritten(); got != 0 {
		t.Fatalf("Overwritten after Reset+Record = %d, want 0", got)
	}
}
