package trace

import (
	"fmt"
	"strings"
	"time"
)

// A Decision records one choice the deterministic simulation scheduler
// (package sim) made: which task to run, which queued task a helping thread
// popped, or which timer batch to fire after advancing the virtual clock.
// The sequence of decisions *is* the schedule — replaying the same seed must
// reproduce the same decision log byte for byte, which is what makes a
// failing exploration run a permanent regression test.
//
// Decisions deliberately carry no wall-clock times, goroutine ids, pointers
// or other process-varying values: every field is a pure function of the
// seed and the program under simulation.
type Decision struct {
	// Step is the 0-based scheduler step this decision was taken at.
	Step int
	// Kind is the decision class: "run" (scheduler picked a runnable task),
	// "help" (a thread in the await logical barrier popped pending work),
	// or "timer" (virtual clock advanced and a timer fired).
	Kind string
	// Target is the simulated executor (or timer owner) the decision chose.
	Target string
	// Seq is the chosen task's (or timer's) global submission sequence
	// number — stable identity across runs of the same schedule.
	Seq uint64
	// Alts is how many alternatives the scheduler chose among at this
	// point (1 means the step was forced; >1 means a genuine branch the
	// explorer can perturb).
	Alts int
	// Virt is the virtual-clock reading when the decision was taken.
	Virt time.Duration
}

// String renders the decision as one stable line of the decision trace.
func (d Decision) String() string {
	return fmt.Sprintf("%05d %-5s %s#%d alts=%d t=%s", d.Step, d.Kind, d.Target, d.Seq, d.Alts, d.Virt)
}

// DecisionLog accumulates the scheduler's decisions for one simulation run.
// It is not goroutine-safe: the simulation executor is single-threaded by
// construction, and that is the only writer.
type DecisionLog struct {
	ds []Decision
}

// Append records one decision.
func (l *DecisionLog) Append(d Decision) { l.ds = append(l.ds, d) }

// Len returns the number of recorded decisions.
func (l *DecisionLog) Len() int { return len(l.ds) }

// Decisions returns the recorded decisions (shared backing array; callers
// must not mutate).
func (l *DecisionLog) Decisions() []Decision { return l.ds }

// Branches returns how many recorded decisions had more than one
// alternative — the number of points where a different schedule could have
// diverged. Explorers use it to gauge how much nondeterminism a scenario
// actually exposes.
func (l *DecisionLog) Branches() int {
	n := 0
	for _, d := range l.ds {
		if d.Alts > 1 {
			n++
		}
	}
	return n
}

// String renders the full decision trace, one line per decision. Two runs
// of the same seed over the same program must produce identical strings.
func (l *DecisionLog) String() string {
	var b strings.Builder
	for _, d := range l.ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Reset clears the log for reuse.
func (l *DecisionLog) Reset() { l.ds = l.ds[:0] }
