package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// Example shows the ring buffer collecting scheduling events and the
// aggregate queries tests use to assert runtime decisions.
func Example() {
	buf := trace.NewBuffer(64)
	buf.Record(trace.Event{Op: trace.OpInvoke, Target: "worker", Mode: "nowait", Gid: 12})
	buf.Record(trace.Event{Op: trace.OpPost, Target: "worker", Mode: "nowait", Gid: 12})
	buf.Record(trace.Event{Op: trace.OpInline, Target: "worker", Mode: "wait", Gid: 30})

	fmt.Println("events:", buf.Len())
	fmt.Println("posted:", buf.CountOp(trace.OpPost))
	fmt.Println("inlined:", buf.CountOp(trace.OpInline))
	// Output:
	// events: 3
	// posted: 1
	// inlined: 1
}
