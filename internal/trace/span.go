package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/gid"
)

// SpanID identifies one causal span. The zero value means "no span".
//
// A span is one unit of attributable work in the virtual-target runtime:
// an Invoke call (from directive entry to return), one task run on a worker
// or EDT, a helped task inside an await barrier, an HTTP request, a netloop
// message. Spans carry a parent link, so the flat event ring reconstructs
// into a tree (see BuildTree): an Invoke that posts to a worker whose block
// awaits a second target shows up as
//
//	invoke(worker) ── run(worker) ── invoke(worker2) ── run(worker2)
//
// with each run on its own goroutine track.
type SpanID uint64

var spanCounter atomic.Uint64

// NewSpanID allocates a fresh process-unique span id (never 0).
func NewSpanID() SpanID { return SpanID(spanCounter.Add(1)) }

// ---------------------------------------------------------------------------
// Current-span registry.
//
// Go has no goroutine-locals, but the runtime already recovers a stable
// goroutine identity (package gid, ~3ns on amd64/arm64). The active span of
// each traced goroutine lives in a small sharded map keyed by that id; the
// dispatch layers Swap the task's span in around the task body, which is how
// a parent crosses the asynchronous Post boundary: the producer's current
// span is captured at enqueue time, and the consumer's current span is set
// for the duration of the run, so nested Invokes parent correctly however
// deep the chain goes.
//
// The registry is only touched while a trace sink is installed; the untraced
// hot path never takes these locks.
// ---------------------------------------------------------------------------

const spanShards = 64 // power of two

type spanShard struct {
	mu sync.Mutex
	m  map[gid.ID]SpanID
}

var currentSpans [spanShards]spanShard

func init() {
	for i := range currentSpans {
		currentSpans[i].m = make(map[gid.ID]SpanID)
	}
}

func shardFor(g gid.ID) *spanShard {
	return &currentSpans[uint64(g)&(spanShards-1)]
}

// Current returns the calling goroutine's active span (0 if none).
func Current() SpanID {
	g := gid.Current()
	s := shardFor(g)
	s.mu.Lock()
	id := s.m[g]
	s.mu.Unlock()
	return id
}

// Swap installs id as the calling goroutine's active span and returns the
// previous one. Swapping in 0 clears the entry (goroutines must not leave
// stale affiliations behind — worker goroutines are long-lived, but helped
// and inline runs happen on arbitrary callers).
func Swap(id SpanID) SpanID {
	g := gid.Current()
	s := shardFor(g)
	s.mu.Lock()
	prev := s.m[g]
	if id == 0 {
		delete(s.m, g)
	} else {
		s.m[g] = id
	}
	s.mu.Unlock()
	return prev
}

// ---------------------------------------------------------------------------
// Global sink.
//
// The runtime's dispatch layers (executor.WorkerPool, eventloop.Loop,
// netloop.Server) have no back-pointer to a core.Runtime, so span events are
// recorded against a process-global sink. core.Runtime prefers its own
// per-runtime sink when one is installed and falls back to the global one,
// which is how a single Buffer captures a complete cross-layer trace: install
// it with SetGlobal (or Use, which restores the previous sink) and every
// layer's events land in one ring.
// ---------------------------------------------------------------------------

var globalSink atomic.Pointer[Sink]

// SetGlobal installs s as the process-global trace sink (nil disables).
func SetGlobal(s Sink) {
	if s == nil {
		globalSink.Store(nil)
		return
	}
	globalSink.Store(&s)
}

// ActiveSink returns the process-global sink, or nil if tracing is off.
// Dispatch hot paths gate all span work on one atomic load here.
func ActiveSink() Sink {
	p := globalSink.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Use installs s as the global sink and returns a function restoring the
// previous one — the test/bench idiom:
//
//	defer trace.Use(buf)()
func Use(s Sink) func() {
	prev := globalSink.Load()
	SetGlobal(s)
	return func() { globalSink.Store(prev) }
}

// ---------------------------------------------------------------------------
// Emission helpers.
// ---------------------------------------------------------------------------

// BeginSpan allocates a span, records its OpSpanBegin against s, and returns
// the id. name is the span kind ("invoke", "run", "request", ...), target
// the virtual-target name it concerns, parent its causal parent (0 = root).
func BeginSpan(s Sink, name, target string, parent SpanID) SpanID {
	id := NewSpanID()
	BeginSpanID(s, id, name, target, parent)
	return id
}

// BeginSpanID records OpSpanBegin for a pre-allocated id. The dispatch
// queues pre-allocate task spans at enqueue time (so the OpEnqueue event and
// the later run share one id, giving exporters their flow edge) and begin
// them when the task actually runs.
func BeginSpanID(s Sink, id SpanID, name, target string, parent SpanID) {
	s.Record(Event{Op: OpSpanBegin, Name: name, Target: target, Span: id, Parent: parent, Gid: uint64(gid.Current())})
}

// EndSpan records OpSpanEnd for id.
func EndSpan(s Sink, id SpanID, name, target string) {
	s.Record(Event{Op: OpSpanEnd, Name: name, Target: target, Span: id, Gid: uint64(gid.Current())})
}

// Enqueue records OpEnqueue: the task identified by span id entered target's
// queue, caused by parent. Exporters draw the cross-goroutine flow arrow
// from this event to the span's begin; metrics derive queue sojourn from the
// same pair.
func Enqueue(s Sink, id SpanID, target string, parent SpanID) {
	s.Record(Event{Op: OpEnqueue, Name: "enqueue", Target: target, Span: id, Parent: parent, Gid: uint64(gid.Current())})
}
