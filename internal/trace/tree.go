package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanNode is one reconstructed span: its identity, timing, the goroutine it
// ran on, the annotation events recorded while it was current, and its
// children ordered by begin time.
type SpanNode struct {
	ID     SpanID
	Parent SpanID
	Name   string // span kind: "invoke", "run", "request", ...
	Target string
	Gid    uint64    // goroutine the span began on
	Start  time.Time // OpSpanBegin time (zero if the begin fell out of the ring)
	End    time.Time // OpSpanEnd time (zero if still open or lost)
	// Enqueued is the OpEnqueue time for dispatched-task spans (zero
	// otherwise); Start-Enqueued is the queue sojourn.
	Enqueued time.Time
	// Events are the annotation ops (OpInvoke, OpPost, OpHelped, ...)
	// recorded against this span, in ring order.
	Events   []Event
	Children []*SpanNode
}

// Duration returns End-Start (0 while the span is open or truncated).
func (n *SpanNode) Duration() time.Duration {
	if n.Start.IsZero() || n.End.IsZero() {
		return 0
	}
	return n.End.Sub(n.Start)
}

// QueueDelay returns Start-Enqueued for dispatched spans (0 otherwise).
func (n *SpanNode) QueueDelay() time.Duration {
	if n.Enqueued.IsZero() || n.Start.IsZero() {
		return 0
	}
	return n.Start.Sub(n.Enqueued)
}

// HasOp reports whether an annotation with the given op was recorded on this
// span.
func (n *SpanNode) HasOp(op Op) bool {
	for _, e := range n.Events {
		if e.Op == op {
			return true
		}
	}
	return false
}

// CountOp returns the number of annotations with the given op on this span.
func (n *SpanNode) CountOp(op Op) int {
	c := 0
	for _, e := range n.Events {
		if e.Op == op {
			c++
		}
	}
	return c
}

// Child returns the first child with the given span kind (and, when target
// is non-empty, that target), or nil.
func (n *SpanNode) Child(name, target string) *SpanNode {
	for _, c := range n.Children {
		if c.Name == name && (target == "" || c.Target == target) {
			return c
		}
	}
	return nil
}

// Tree is the reconstructed span forest of one trace capture.
type Tree struct {
	// Roots are the spans with no (captured) parent, ordered by begin.
	Roots []*SpanNode
	// ByID indexes every captured span.
	ByID map[SpanID]*SpanNode
	// Orphans are annotation events that carried a span id whose begin was
	// not captured (ring wraparound), kept for diagnosis.
	Orphans []Event
}

// Find returns the first span (pre-order over roots) with the given kind
// and, when target is non-empty, that target. Nil if none.
func (t *Tree) Find(name, target string) *SpanNode {
	var walk func(n *SpanNode) *SpanNode
	walk = func(n *SpanNode) *SpanNode {
		if n.Name == name && (target == "" || n.Target == target) {
			return n
		}
		for _, c := range n.Children {
			if m := walk(c); m != nil {
				return m
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if m := walk(r); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every span with the given kind (and target, when
// non-empty), pre-order.
func (t *Tree) FindAll(name, target string) []*SpanNode {
	var out []*SpanNode
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if n.Name == name && (target == "" || n.Target == target) {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// Depth returns the maximum nesting depth of the forest (0 when empty).
func (t *Tree) Depth() int {
	var walk func(n *SpanNode) int
	walk = func(n *SpanNode) int {
		d := 1
		for _, c := range n.Children {
			if cd := 1 + walk(c); cd > d {
				d = cd
			}
		}
		return d
	}
	max := 0
	for _, r := range t.Roots {
		if d := walk(r); d > max {
			max = d
		}
	}
	return max
}

// BuildTree reconstructs the span forest from a flat event slice (typically
// Buffer.Snapshot()). Spans whose parent was not captured become roots;
// annotation events whose span begin fell off the ring are collected in
// Orphans. Children and roots are ordered by begin time (falling back to
// ring order for spans without a captured begin).
func BuildTree(events []Event) *Tree {
	t := &Tree{ByID: make(map[SpanID]*SpanNode)}
	node := func(id SpanID) *SpanNode {
		n := t.ByID[id]
		if n == nil {
			n = &SpanNode{ID: id}
			t.ByID[id] = n
		}
		return n
	}
	for _, e := range events {
		if e.Span == 0 {
			continue
		}
		switch e.Op {
		case OpSpanBegin:
			n := node(e.Span)
			n.Parent = e.Parent
			n.Name = e.Name
			n.Target = e.Target
			n.Gid = e.Gid
			n.Start = e.Time
		case OpSpanEnd:
			n := node(e.Span)
			n.End = e.Time
			if n.Name == "" {
				n.Name = e.Name
				n.Target = e.Target
			}
		case OpEnqueue:
			n := node(e.Span)
			n.Enqueued = e.Time
			if n.Parent == 0 {
				n.Parent = e.Parent
			}
			if n.Target == "" {
				n.Target = e.Target
			}
		default:
			if t.ByID[e.Span] == nil {
				t.Orphans = append(t.Orphans, e)
				continue
			}
			n := node(e.Span)
			n.Events = append(n.Events, e)
		}
	}
	for _, n := range t.ByID {
		if n.Parent != 0 {
			if p := t.ByID[n.Parent]; p != nil {
				p.Children = append(p.Children, n)
				continue
			}
		}
		t.Roots = append(t.Roots, n)
	}
	byStart := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			a, b := ns[i], ns[j]
			if a.Start.IsZero() || b.Start.IsZero() || a.Start.Equal(b.Start) {
				return a.ID < b.ID
			}
			return a.Start.Before(b.Start)
		})
	}
	byStart(t.Roots)
	for _, n := range t.ByID {
		byStart(n.Children)
	}
	return t
}

// String renders the forest as an indented tree, one span per line with its
// timing and annotation ops — the human-readable companion to the Perfetto
// export.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.Name)
		if n.Target != "" {
			fmt.Fprintf(&b, "(%s)", n.Target)
		}
		fmt.Fprintf(&b, " span=%d g%d", n.ID, n.Gid)
		if d := n.Duration(); d > 0 {
			fmt.Fprintf(&b, " dur=%v", d.Round(time.Microsecond))
		}
		if q := n.QueueDelay(); q > 0 {
			fmt.Fprintf(&b, " queued=%v", q.Round(time.Microsecond))
		}
		if len(n.Events) > 0 {
			ops := make([]string, len(n.Events))
			for i, e := range n.Events {
				ops[i] = e.Op.String()
			}
			fmt.Fprintf(&b, " [%s]", strings.Join(ops, " "))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return b.String()
}

// Summarize renders aggregate statistics of the forest: span counts and
// total durations by kind/target, plus depth — the cmd/report view.
func (t *Tree) Summarize() string {
	type agg struct {
		count int
		total time.Duration
		queue time.Duration
	}
	keys := make([]string, 0)
	aggs := make(map[string]*agg)
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		key := n.Name
		if n.Target != "" {
			key += "(" + n.Target + ")"
		}
		a := aggs[key]
		if a == nil {
			a = &agg{}
			aggs[key] = a
			keys = append(keys, key)
		}
		a.count++
		a.total += n.Duration()
		a.queue += n.QueueDelay()
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "spans=%d roots=%d depth=%d orphans=%d\n",
		len(t.ByID), len(t.Roots), t.Depth(), len(t.Orphans))
	for _, k := range keys {
		a := aggs[k]
		fmt.Fprintf(&b, "%-24s n=%-6d total=%-12v avg-queued=%v\n",
			k, a.count, a.total.Round(time.Microsecond), (a.queue / time.Duration(a.count)).Round(time.Microsecond))
	}
	return b.String()
}
