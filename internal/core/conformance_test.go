package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/eventloop"
	"repro/internal/gid"
	"repro/internal/trace"
)

// TestScheduleConformance is the Algorithm 1 conformance table: every
// scheduling mode (wait, nowait, name_as, await) crossed with every caller
// context the paper distinguishes — the target's own EDT thread, a member of
// the target's worker pool, a worker of a *different* pool, and a plain
// unregistered goroutine. Each cell asserts the inline-vs-post decision and
// the mode's barrier behaviour from the reconstructed span tree, not from
// timing: the trace ring records OpInline/OpPost/OpWait/OpAwait* on the
// invoke span, and the run span's goroutine id proves where the block ran.
func TestScheduleConformance(t *testing.T) {
	type confCase struct {
		caller     string // who encounters the directive
		target     string // which virtual target it names
		wantInline bool   // Algorithm 1 lines 6-7 vs line 8
	}
	contexts := []confCase{
		{caller: "unregistered", target: "pool", wantInline: false},
		{caller: "unregistered", target: "edt", wantInline: false},
		{caller: "edt-thread", target: "pool", wantInline: false},
		{caller: "edt-thread", target: "edt", wantInline: true},
		{caller: "pool-member", target: "pool", wantInline: true},
		{caller: "sibling-worker", target: "pool", wantInline: false},
	}
	modes := []Mode{Wait, Nowait, NameAs, Await}

	for _, mode := range modes {
		for _, cc := range contexts {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s/%s->%s", mode, cc.caller, cc.target), func(t *testing.T) {
				buf := trace.NewBuffer(4096)
				defer trace.Use(buf)()

				var reg gid.Registry
				rt := NewRuntime(&reg)
				defer rt.Shutdown()
				pool, err := rt.CreateWorker("pool", 2)
				if err != nil {
					t.Fatal(err)
				}
				src, err := rt.CreateWorker("src", 1)
				if err != nil {
					t.Fatal(err)
				}
				loop := eventloop.New("edt", &reg)
				loop.Start()
				defer loop.Stop()
				if err := rt.RegisterEDT("edt", loop); err != nil {
					t.Fatal(err)
				}

				// The block waits for release so an awaited posted block is
				// provably unfinished when the encountering thread reaches
				// the barrier. Only the cells that must observe the barrier
				// gate the release on the OpAwaitEnter event; everywhere
				// else it is pre-closed (an inline block runs on the
				// encountering goroutine and must not wait for anyone).
				wantBarrier := mode == Await && !cc.wantInline && cc.caller != "unregistered"
				release := make(chan struct{})
				if wantBarrier {
					go func() {
						deadline := time.Now().Add(5 * time.Second)
						for buf.CountOp(trace.OpAwaitEnter) == 0 && time.Now().Before(deadline) {
							time.Sleep(100 * time.Microsecond)
						}
						close(release)
					}()
				} else {
					close(release)
				}
				block := func() { <-release }

				// doInvoke runs the directive under test and joins it, so
				// that by the time it returns the whole span tree is closed.
				errc := make(chan error, 1)
				doInvoke := func() {
					switch mode {
					case NameAs:
						if _, err := rt.InvokeNamed(cc.target, "conf", block); err != nil {
							errc <- err
							return
						}
						errc <- rt.WaitTag("conf")
					case Nowait:
						comp, err := rt.Invoke(cc.target, Nowait, block)
						if err != nil {
							errc <- err
							return
						}
						comp.Wait()
						errc <- comp.Err()
					default: // Wait, Await both join before returning.
						_, err := rt.Invoke(cc.target, mode, block)
						errc <- err
					}
				}

				// Run doInvoke in the encountering context. Contexts other
				// than "unregistered" reach it via a bare executor post so
				// the wrapper leaves no invoke events of its own in the ring.
				switch cc.caller {
				case "unregistered":
					doInvoke()
				case "edt-thread":
					loop.Post(doInvoke).Wait()
				case "pool-member":
					pool.Post(doInvoke).Wait()
				case "sibling-worker":
					src.Post(doInvoke).Wait()
				default:
					t.Fatalf("unknown caller context %q", cc.caller)
				}
				if err := <-errc; err != nil {
					t.Fatalf("invoke: %v", err)
				}

				tree := trace.BuildTree(buf.Snapshot())
				node := findInvokeSpan(t, tree, cc.target, mode)

				// The scheduling decision (Algorithm 1 lines 6-8).
				if cc.wantInline {
					if !node.HasOp(trace.OpInline) {
						t.Errorf("want inline execution, ops missing OpInline:\n%s", tree.String())
					}
					if node.HasOp(trace.OpPost) {
						t.Errorf("inline cell must not post:\n%s", tree.String())
					}
					if run := node.Child("run", cc.target); run != nil {
						t.Errorf("inline cell produced a run span on %q:\n%s", cc.target, tree.String())
					}
				} else {
					if !node.HasOp(trace.OpPost) {
						t.Errorf("want posted execution, ops missing OpPost:\n%s", tree.String())
					}
					if node.HasOp(trace.OpInline) {
						t.Errorf("posted cell must not inline:\n%s", tree.String())
					}
					run := node.Child("run", cc.target)
					if run == nil {
						t.Fatalf("posted block's run span not parented to invoke:\n%s", tree.String())
					}
					if run.Gid == node.Gid {
						t.Errorf("posted block ran on the encountering goroutine %d:\n%s", node.Gid, tree.String())
					}
					if run.Enqueued.IsZero() || run.QueueDelay() < 0 {
						t.Errorf("posted run span lacks a sane enqueue timestamp: enq=%v delay=%v",
							run.Enqueued, run.QueueDelay())
					}
				}

				// Mode-specific barrier semantics.
				switch mode {
				case Wait:
					if !node.HasOp(trace.OpWait) {
						t.Errorf("wait mode must record the blocking join:\n%s", tree.String())
					}
				case Await:
					if wantBarrier {
						if !node.HasOp(trace.OpAwaitEnter) || !node.HasOp(trace.OpAwaitExit) {
							t.Errorf("await from a registered context must enter and exit the logical barrier:\n%s", tree.String())
						}
					} else if node.HasOp(trace.OpAwaitEnter) {
						// Inline execution finished before the barrier; an
						// unregistered goroutine has no executor to help.
						t.Errorf("await cell must skip the helping barrier:\n%s", tree.String())
					}
				}
			})
		}
	}
}

// findInvokeSpan locates the single invoke span for the directive under
// test: the span on target whose annotations carry an OpInvoke with the
// tested mode spelling.
func findInvokeSpan(t *testing.T, tree *trace.Tree, target string, mode Mode) *trace.SpanNode {
	t.Helper()
	var match *trace.SpanNode
	for _, n := range tree.FindAll("invoke", target) {
		for _, ev := range n.Events {
			if ev.Op == trace.OpInvoke && ev.Mode == mode.String() {
				if match != nil {
					t.Fatalf("two invoke spans match %s on %q:\n%s", mode, target, tree.String())
				}
				match = n
			}
		}
	}
	if match == nil {
		t.Fatalf("no invoke span for mode %s on target %q:\n%s", mode, target, tree.String())
	}
	return match
}
