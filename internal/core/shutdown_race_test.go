package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/executor"
	"repro/internal/gid"
)

// TestShutdownInvokeRaceIsTyped races Shutdown against a storm of in-flight
// Invokes: every invocation must either run to completion or fail with
// ErrRuntimeStopped — executor.ErrShutdown must never leak out, and nothing
// may hang. Run under -race this also checks the lifecycle fields.
func TestShutdownInvokeRaceIsTyped(t *testing.T) {
	for round := 0; round < 25; round++ {
		var reg gid.Registry
		rt := NewRuntime(&reg)
		if _, err := rt.CreateWorker("w", 2); err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					comp, err := rt.Invoke("w", Wait, func() {})
					if err != nil {
						if !errors.Is(err, ErrRuntimeStopped) {
							t.Errorf("invoke err = %v", err)
						}
						return
					}
					if cerr := comp.Err(); cerr != nil && !errors.Is(cerr, executor.ErrShutdown) {
						// A task accepted before shutdown may still be
						// failed by the pool's pending-failure backstop;
						// anything else is a bug.
						t.Errorf("completion err = %v", cerr)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rt.Shutdown()
		}()
		close(start)
		wg.Wait()

		// After the dust settles the answer is always the typed error.
		if _, err := rt.Invoke("w", Wait, func() {}); !errors.Is(err, ErrRuntimeStopped) {
			t.Fatalf("post-shutdown invoke err = %v", err)
		}
	}
}

// TestShutdownInvokeCtxRaceIsTyped is the same race through the context
// path, which routes posts through PostCancellable and a watcher goroutine.
func TestShutdownInvokeCtxRaceIsTyped(t *testing.T) {
	for round := 0; round < 25; round++ {
		var reg gid.Registry
		rt := NewRuntime(&reg)
		if _, err := rt.CreateWorker("w", 2); err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					comp, err := rt.InvokeCtx(context.Background(), "w", Wait, func(context.Context) {})
					if err != nil {
						if !errors.Is(err, ErrRuntimeStopped) {
							t.Errorf("invokectx err = %v", err)
						}
						return
					}
					if cerr := comp.Err(); cerr != nil && !errors.Is(cerr, executor.ErrShutdown) {
						t.Errorf("completion err = %v", cerr)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rt.Shutdown()
		}()
		close(start)
		wg.Wait()
	}
}

// TestCreateWorkerShutdownRaceDoesNotLeak races CreateWorker against
// Shutdown: whichever wins, the pool must end up stopped — either
// CreateWorker returns ErrRuntimeStopped (and shut the orphan down itself)
// or the runtime owns it and Shutdown stops it.
func TestCreateWorkerShutdownRaceDoesNotLeak(t *testing.T) {
	for round := 0; round < 50; round++ {
		var reg gid.Registry
		rt := NewRuntime(&reg)

		start := make(chan struct{})
		var wg sync.WaitGroup
		var pool *executor.WorkerPool
		var cErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			pool, cErr = rt.CreateWorker("w", 1)
		}()
		go func() {
			defer wg.Done()
			<-start
			rt.Shutdown()
		}()
		close(start)
		wg.Wait()

		switch {
		case cErr == nil:
			// Registered in time (or after-win): Shutdown may have missed
			// it only if registration finished first; either way the final
			// Shutdown below must leave it stopped.
			rt.Shutdown()
			if err := pool.Post(func() {}).Wait(); !errors.Is(err, executor.ErrShutdown) {
				t.Fatalf("round %d: pool alive after shutdown: %v", round, err)
			}
		case errors.Is(cErr, ErrRuntimeStopped):
			if pool != nil {
				t.Fatalf("round %d: pool returned alongside ErrRuntimeStopped", round)
			}
		default:
			t.Fatalf("round %d: CreateWorker err = %v", round, cErr)
		}
	}
}
