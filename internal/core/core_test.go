package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventloop"
	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/testutil/poll"
)

// fixture builds a runtime with an EDT loop and a worker pool, the standard
// two-target setup of Section III.D.
type fixture struct {
	rt   *Runtime
	edt  *eventloop.Loop
	pool *executor.WorkerPool
}

func newFixture(t *testing.T, workers int) *fixture {
	t.Helper()
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	edt := eventloop.New("edt", reg)
	edt.Start()
	if err := rt.RegisterEDT("edt", edt); err != nil {
		t.Fatal(err)
	}
	pool, err := rt.CreateWorker("worker", workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rt.Shutdown()
		edt.Stop()
	})
	return &fixture{rt: rt, edt: edt, pool: pool}
}

func TestTableII_Registration(t *testing.T) {
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	defer rt.Shutdown()

	edt := eventloop.New("edt", reg)
	edt.Start()
	defer edt.Stop()

	if err := rt.RegisterEDT("edt", edt); err != nil {
		t.Fatalf("virtual_target_register_edt: %v", err)
	}
	pool, err := rt.CreateWorker("worker", 3)
	if err != nil {
		t.Fatalf("virtual_target_create_worker: %v", err)
	}
	if pool.Workers() != 3 {
		t.Fatalf("worker target has %d threads, want 3", pool.Workers())
	}
	if rt.Target("edt") == nil || rt.Target("worker") == nil {
		t.Fatal("targets not resolvable by name")
	}
	if err := rt.RegisterEDT("edt", edt); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate EDT registration: %v, want ErrDuplicateName", err)
	}
	if _, err := rt.CreateWorker("worker", 1); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate worker registration: %v, want ErrDuplicateName", err)
	}
	names := rt.TargetNames()
	if len(names) != 2 {
		t.Fatalf("TargetNames = %v", names)
	}
}

func TestTableI_DefaultWaits(t *testing.T) {
	f := newFixture(t, 2)
	done := false
	comp, err := f.rt.Invoke("worker", Wait, func() {
		time.Sleep(5 * time.Millisecond)
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default mode: by the time Invoke returns, the block has finished.
	if !done || !comp.Finished() {
		t.Fatal("default mode returned before the target block finished")
	}
}

func TestTableI_NowaitReturnsImmediately(t *testing.T) {
	f := newFixture(t, 1)
	gate := make(chan struct{})
	started := time.Now()
	comp, err := f.rt.Invoke("worker", Nowait, func() { <-gate })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(started); elapsed > time.Second {
		t.Fatalf("nowait blocked for %v", elapsed)
	}
	if comp.Finished() {
		t.Fatal("block reported finished while still gated")
	}
	close(gate)
	if err := comp.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestTableI_NameAsAndWaitTag(t *testing.T) {
	f := newFixture(t, 4)
	var n atomic.Int64
	// "different target blocks are allowed to share the same name-tag"
	for i := 0; i < 10; i++ {
		if _, err := f.rt.InvokeNamed("worker", "batch", func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.rt.WaitTag("batch"); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 10 {
		t.Fatalf("WaitTag returned with %d/10 blocks finished", got)
	}
	if p := f.rt.PendingInTag("batch"); p != 0 {
		t.Fatalf("PendingInTag = %d after WaitTag", p)
	}
}

// TestWaitTagKeepsPrunedPanicVerdict pins an ordering bug found by
// sim.Explore (internal/sim, corpus scenario "nametag-pruned-panic"): when
// a tagged block finished — by panicking — before the next InvokeNamed on
// the same tag, add's pruning dropped the completion together with its
// error, and WaitTag reported success. The verdict must survive pruning.
func TestWaitTagKeepsPrunedPanicVerdict(t *testing.T) {
	f := newFixture(t, 2)
	comp, err := f.rt.InvokeNamed("worker", "batch", func() { panic("tagged block failed") })
	if err != nil {
		t.Fatal(err)
	}
	// Deterministically lose the race the explorer found: let the panicking
	// block fully finish before the second tagged invoke prunes the group.
	comp.Wait()
	if _, err := f.rt.InvokeNamed("worker", "batch", func() {}); err != nil {
		t.Fatal(err)
	}
	err = f.rt.WaitTag("batch")
	var pe *executor.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("WaitTag lost the pruned block's panic: err = %v", err)
	}
	// The verdict is consumed by the join; a fresh batch starts clean.
	if _, err := f.rt.InvokeNamed("worker", "batch", func() {}); err != nil {
		t.Fatal(err)
	}
	if err := f.rt.WaitTag("batch"); err != nil {
		t.Fatalf("second WaitTag after a clean batch: %v", err)
	}
}

func TestWaitTagUnknownTagIsNoop(t *testing.T) {
	f := newFixture(t, 1)
	if err := f.rt.WaitTag("never-used"); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMultipleTags(t *testing.T) {
	f := newFixture(t, 2)
	var n atomic.Int64
	f.rt.InvokeNamed("worker", "a", func() { n.Add(1) })
	f.rt.InvokeNamed("worker", "b", func() { n.Add(1) })
	if err := f.rt.Wait("a", "b"); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatal("Wait(a,b) returned early")
	}
}

func TestNameAsRequiresTag(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.Invoke("worker", NameAs, func() {}); !errors.Is(err, ErrNoTag) {
		t.Fatalf("err = %v, want ErrNoTag", err)
	}
	if _, err := f.rt.InvokeNamed("worker", "", func() {}); !errors.Is(err, ErrNoTag) {
		t.Fatalf("err = %v, want ErrNoTag", err)
	}
}

func TestTableI_AwaitKeepsEDTLive(t *testing.T) {
	// The defining behaviour of await (Table I row 4, Algorithm 1 lines
	// 13-16): while the EDT waits for an offloaded block, it processes
	// other events; the continuation runs after the block completes.
	f := newFixture(t, 1)
	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	release := make(chan struct{})
	handler := f.edt.Post(func() {
		say("handler-start")
		f.rt.Invoke("worker", Await, func() {
			say("offloaded-start")
			<-release
			say("offloaded-end")
		})
		say("handler-continuation")
	})
	// A second event arrives while the first handler is awaiting. It must
	// be dispatched before the continuation (EDT responsiveness).
	var secondDone atomic.Bool
	second := f.edt.Post(func() { say("second-event"); secondDone.Store(true) })
	if err := second.Wait(); err != nil {
		t.Fatal(err)
	}
	if !secondDone.Load() {
		t.Fatal("second event not processed during await")
	}
	close(release)
	if err := handler.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, s := range log {
		idx[s] = i
	}
	if !(idx["handler-start"] < idx["second-event"] &&
		idx["second-event"] < idx["handler-continuation"] &&
		idx["offloaded-end"] < idx["handler-continuation"]) {
		t.Fatalf("await ordering violated: %v", log)
	}
}

func TestAwaitOnWorkerHelpsDrainQueue(t *testing.T) {
	// A pool worker in the await barrier must process other queued tasks
	// ("as for the worker virtual target, it is achieved by processing
	// another runnable task in Pyjama's task queue").
	f := newFixture(t, 1) // exactly one worker: helping is observable
	reg := f.rt.Registry()
	_ = reg
	aux, err := f.rt.CreateWorker("aux", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = aux
	var helped atomic.Bool
	release := make(chan struct{})

	// Occupied worker awaits a block on "aux"; meanwhile a task queued on
	// "worker" can only run if the awaiting worker helps.
	main, err := f.rt.Invoke("worker", Nowait, func() {
		f.rt.Invoke("aux", Await, func() { <-release })
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to actually park in the barrier, then queue help
	// work: the queued block can then only run if the awaiting worker helps.
	poll.UntilBlockedIn(t, "(*WorkerPool).WaitPending")
	queued, err := f.rt.Invoke("worker", Nowait, func() { helped.Store(true) })
	if err != nil {
		t.Fatal(err)
	}
	if err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	if !helped.Load() {
		t.Fatal("queued task did not run while its worker was awaiting")
	}
	close(release)
	main.Wait()
	if st := f.pool.Stats(); st.Helped == 0 {
		t.Fatalf("pool stats report no helped tasks: %+v", st)
	}
}

func TestThreadContextAwareness(t *testing.T) {
	// Algorithm 1 line 6: a block targeted at the executor the caller is
	// already a member of runs synchronously on the calling goroutine.
	f := newFixture(t, 2)
	ran := make(chan gid.ID, 1)
	comp, err := f.rt.Invoke("worker", Wait, func() {
		outer := gid.Current()
		inner, err := f.rt.Invoke("worker", Nowait, func() { ran <- gid.Current() })
		if err != nil {
			t.Error(err)
			return
		}
		// Even with nowait, the nested block already completed synchronously.
		if !inner.Finished() {
			t.Error("nested same-target block was not executed synchronously")
		}
		if got := <-ran; got != outer {
			t.Errorf("nested block ran on goroutine %d, want encountering %d", got, outer)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEDTBlockFromEDTIsInline(t *testing.T) {
	f := newFixture(t, 1)
	err := f.edt.InvokeAndWait(func() {
		before := f.edt.Dispatched()
		comp, err := f.rt.Invoke("edt", Wait, func() {})
		if err != nil {
			t.Error(err)
			return
		}
		if !comp.Finished() {
			t.Error("EDT->EDT block not finished synchronously")
		}
		// No extra dispatch happened: the block was inlined, not queued.
		if after := f.edt.Dispatched(); after != before {
			t.Errorf("EDT->EDT block went through the queue (dispatched %d -> %d)", before, after)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialElision(t *testing.T) {
	// With directives disabled the program must execute exactly as the
	// sequential version: same goroutine, strict program order.
	f := newFixture(t, 4)
	f.rt.SetEnabled(false)
	if f.rt.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	self := gid.Current()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		comp, err := f.rt.Invoke("worker", Nowait, func() {
			if gid.Current() != self {
				t.Error("disabled directive ran on another goroutine")
			}
			order = append(order, i)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !comp.Finished() {
			t.Fatal("disabled directive not finished synchronously")
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
	f.rt.SetEnabled(true)
}

func TestInvokeIfClause(t *testing.T) {
	f := newFixture(t, 1)
	self := gid.Current()
	// if(false): sequential elision for this invocation only.
	comp, err := f.rt.InvokeIf(false, "worker", Nowait, func() {
		if gid.Current() != self {
			t.Error("if(false) block ran off the encountering goroutine")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Finished() {
		t.Fatal("if(false) block not synchronous")
	}
	// if(true): normal dispatch.
	ran := make(chan gid.ID, 1)
	comp, err = f.rt.InvokeIf(true, "worker", Wait, func() { ran <- gid.Current() })
	if err != nil {
		t.Fatal(err)
	}
	comp.Wait()
	if got := <-ran; got == self {
		t.Fatal("if(true) block did not offload")
	}
}

func TestDefaultTargetICV(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.Invoke("", Wait, func() {}); !errors.Is(err, ErrNoDefaultSet) {
		t.Fatalf("empty target with no default: %v, want ErrNoDefaultSet", err)
	}
	f.rt.SetDefaultTarget("worker")
	if got := f.rt.ICV().DefaultTarget; got != "worker" {
		t.Fatalf("ICV.DefaultTarget = %q", got)
	}
	ran := false
	comp, err := f.rt.Invoke("", Wait, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	comp.Wait()
	if !ran {
		t.Fatal("default-target invoke did not run")
	}
}

func TestErrors(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.Invoke("nope", Wait, func() {}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target: %v", err)
	}
	if _, err := f.rt.Invoke("worker", Wait, nil); !errors.Is(err, ErrNilBlock) {
		t.Fatalf("nil block: %v", err)
	}
	if err := f.rt.RegisterTarget("x", nil); err == nil {
		t.Fatal("nil executor accepted")
	}
}

func TestShutdownStopsOwnedWorkersOnly(t *testing.T) {
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	edt := eventloop.New("edt", reg)
	edt.Start()
	defer edt.Stop()
	rt.RegisterEDT("edt", edt)
	pool, _ := rt.CreateWorker("worker", 1)
	rt.Shutdown()
	// Owned pool is stopped: posts rejected.
	if err := pool.Post(func() {}).Wait(); !errors.Is(err, executor.ErrShutdown) {
		t.Fatalf("owned pool still accepting after Shutdown: %v", err)
	}
	// External EDT still alive.
	if err := edt.Post(func() {}).Wait(); err != nil {
		t.Fatalf("external EDT was stopped by runtime Shutdown: %v", err)
	}
	// Runtime rejects further use.
	if _, err := rt.Invoke("edt", Wait, func() {}); !errors.Is(err, ErrRuntimeStopped) {
		t.Fatalf("invoke after shutdown: %v", err)
	}
	if _, err := rt.CreateWorker("w2", 1); !errors.Is(err, ErrRuntimeStopped) {
		t.Fatalf("CreateWorker after shutdown: %v", err)
	}
	rt.Shutdown() // idempotent
}

func TestPanicPropagatesThroughInvoke(t *testing.T) {
	f := newFixture(t, 1)
	comp, err := f.rt.Invoke("worker", Wait, func() { panic("kernel bug") })
	if err != nil {
		t.Fatal(err)
	}
	var pe *executor.PanicError
	if e := comp.Err(); !errors.As(e, &pe) || pe.Value != "kernel bug" {
		t.Fatalf("Err = %v", e)
	}
	// WaitTag surfaces panics too.
	f.rt.InvokeNamed("worker", "t", func() { panic("tagged bug") })
	if err := f.rt.WaitTag("t"); err == nil {
		t.Fatal("WaitTag swallowed the panic error")
	}
}

func TestAwaitDoneUnaffiliatedGoroutine(t *testing.T) {
	f := newFixture(t, 1)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() { // plain goroutine, not a member of any target
		f.rt.AwaitDone(done)
		close(finished)
	}()
	select {
	case <-finished:
		t.Fatal("AwaitDone returned before done")
	case <-time.After(10 * time.Millisecond):
	}
	close(done)
	select {
	case <-finished:
	case <-time.After(time.Second):
		t.Fatal("AwaitDone did not return after done")
	}
}

// TestSectionIVA_TranslationScenario executes the exact program of Section
// IV.A: an EDT handler offloads S1;nested-S2;S3 to the worker with await,
// S2 being a nowait EDT update, then runs S4 on the EDT after the block.
func TestSectionIVA_TranslationScenario(t *testing.T) {
	f := newFixture(t, 2)
	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	handler := f.edt.Post(func() {
		say("start") // Label.setText("Start Processing Task!")
		f.rt.Invoke("worker", Await, func() {
			say("S1") // compute_half1
			f.rt.Invoke("edt", Nowait, func() { say("S2") })
			say("S3") // compute_half2
		})
		say("S4") // Label.setText("Task finished")
	})
	if err := handler.Wait(); err != nil {
		t.Fatal(err)
	}
	// S2 is posted nowait to the EDT, which is pumping during the await, so
	// it must have been dispatched before the handler finished... unless it
	// raced with block completion; wait for it explicitly via a final EDT
	// turn to make the assertion deterministic.
	f.edt.Post(func() {}).Wait()

	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, s := range log {
		idx[s] = i
	}
	for _, s := range []string{"start", "S1", "S2", "S3", "S4"} {
		if _, ok := idx[s]; !ok {
			t.Fatalf("missing %s in %v", s, log)
		}
	}
	if !(idx["start"] < idx["S1"] && idx["S1"] < idx["S3"] && idx["S3"] < idx["S4"]) {
		t.Fatalf("program order violated: %v", log)
	}
	if !(idx["S1"] < idx["S2"]) {
		t.Fatalf("S2 ran before S1: %v", log)
	}
}

// TestFigure6_Scenario runs the button-click pseudo-code of Figure 6: the
// handler offloads download+compute nowait, with nested EDT updates; the EDT
// stays free to handle further events immediately.
func TestFigure6_Scenario(t *testing.T) {
	f := newFixture(t, 2)
	var mu sync.Mutex
	var log []string
	say := func(s string) { mu.Lock(); log = append(log, s); mu.Unlock() }

	finished := make(chan struct{})
	buttonOnClick := func() {
		say("msg:started")
		f.rt.Invoke("worker", Nowait, func() {
			say("hash+download+convert")
			f.rt.Invoke("edt", Wait, func() { say("display-img") })
			f.rt.Invoke("edt", Wait, func() { say("msg:finished") })
			close(finished)
		})
	}
	handler := f.edt.Post(buttonOnClick)
	if err := handler.Wait(); err != nil {
		t.Fatal(err)
	}
	// The handler returns immediately (nowait): EDT is responsive.
	if err := f.edt.Post(func() { say("another-event") }).Wait(); err != nil {
		t.Fatal(err)
	}
	<-finished
	f.edt.Post(func() {}).Wait() // flush trailing EDT updates

	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, s := range log {
		idx[s] = i
	}
	if !(idx["msg:started"] < idx["hash+download+convert"] &&
		idx["hash+download+convert"] < idx["display-img"] &&
		idx["display-img"] < idx["msg:finished"]) {
		t.Fatalf("Figure 6 ordering violated: %v", log)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{Wait: "wait", Nowait: "nowait", NameAs: "name_as", Await: "await", Mode(99): "Mode(99)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func BenchmarkInvokeWait(b *testing.B) {
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	defer rt.Shutdown()
	rt.CreateWorker("worker", 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Invoke("worker", Wait, func() {})
	}
}

func BenchmarkInvokeNowait(b *testing.B) {
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	defer rt.Shutdown()
	rt.CreateWorker("worker", 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Invoke("worker", Nowait, func() {})
	}
	b.StopTimer()
	rt.Shutdown()
}

func BenchmarkInvokeSameTargetInline(b *testing.B) {
	// Thread-context awareness fast path: invoking a block on the executor
	// the caller already belongs to.
	reg := &gid.Registry{}
	rt := NewRuntime(reg)
	defer rt.Shutdown()
	pool, _ := rt.CreateWorker("worker", 1)
	_ = pool
	done := make(chan struct{})
	rt.Invoke("worker", Nowait, func() {
		for i := 0; i < b.N; i++ {
			rt.Invoke("worker", Wait, func() {})
		}
		close(done)
	})
	<-done
}
