package core

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/executor"
	"repro/internal/trace"
)

// cancellablePoster is the executor capability InvokeCtx uses to revoke
// still-queued target blocks when their context expires. WorkerPool
// provides it; executors without it (e.g. the event loop) fall back to a
// run-time context check, so an expired block is skipped when dequeued
// even though it cannot be removed from the queue early.
type cancellablePoster interface {
	PostCancellable(fn func()) (*executor.Completion, func() bool)
}

// InvokeCtx is Invoke with deadline and cancellation propagation — the
// production form of the directive for servers, where a target block runs
// on behalf of a request that may abandon it. The context is passed into
// the block (so nested invocations and I/O inherit the deadline), and its
// expiry is reported through the returned Completion as ctx.Err()
// (context.DeadlineExceeded or context.Canceled):
//
//   - expired before dispatch: the block never runs;
//   - expired while queued: the queued task is cancelled via the
//     executor's PostCancellable when available (trace records
//     OpDeadline), otherwise skipped when it reaches the front;
//   - expired while running: the block is responsible for observing
//     ctx.Done() itself — a started block is never interrupted, matching
//     OpenMP's execution model (and Go's: goroutines cannot be killed).
//
// Modes behave as in Invoke; NameAs is not supported (use InvokeNamed,
// which has no context form). In Wait and Await modes the encountering
// thread stops waiting as soon as the Completion finishes, including by
// cancellation.
func (r *Runtime) InvokeCtx(ctx context.Context, target string, mode Mode, block func(context.Context)) (*executor.Completion, error) {
	if block == nil {
		return nil, ErrNilBlock
	}
	if mode == NameAs {
		return nil, ErrNoTag
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !r.Enabled() {
		// Unsupporting compiler: run inline (respecting an already-expired
		// context, the one directive-off behaviour that must survive).
		return executor.NewCompletedCompletion(runBlockCtx(ctx, block)), nil
	}
	e, err := r.resolve(target)
	if err != nil {
		return nil, err
	}
	if sink := r.traceSink(); sink != nil {
		// Same span bracket as invoke (see core.go): the block's run span
		// parents here even when the watcher goroutine mediates completion.
		span := trace.NewSpanID()
		prev := trace.Swap(span)
		trace.BeginSpanID(sink, span, "invoke", e.Name(), prev)
		defer func() {
			trace.Swap(prev)
			trace.EndSpan(sink, span, "invoke", e.Name())
		}()
	}
	r.emit(trace.OpInvoke, e.Name(), mode)

	var comp *executor.Completion
	if e.Owns() {
		// Thread-context awareness: execute synchronously in place.
		r.emit(trace.OpInline, e.Name(), mode)
		comp = executor.NewCompletedCompletion(runBlockCtx(ctx, block))
	} else {
		r.emit(trace.OpPost, e.Name(), mode)
		comp = r.postCtx(ctx, e, mode, block)
		if err := r.stoppedRejection(comp); err != nil {
			return nil, err
		}
	}

	switch mode {
	case Nowait:
	case Await:
		r.AwaitCompletion(comp)
	default: // Wait
		r.emit(trace.OpWait, e.Name(), mode)
		comp.Wait()
	}
	return comp, nil
}

// runBlockCtx runs block inline with panic capture, short-circuiting to
// ctx.Err() if the context already expired.
func runBlockCtx(ctx context.Context, block func(context.Context)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return executor.RunCaptured(func() { block(ctx) })
}

// postCtx submits block asynchronously with cancellation plumbing. The
// returned Completion finishes with the block's outcome, or with ctx.Err()
// if the context expired before the block started.
func (r *Runtime) postCtx(ctx context.Context, e executor.Executor, mode Mode, block func(context.Context)) *executor.Completion {
	if ctx.Done() == nil {
		// Uncancellable context (Background): plain post, no watcher.
		return e.Post(func() { block(ctx) })
	}

	// skipped records that the body observed an expired context and
	// declined to run (the no-PostCancellable fallback path).
	var skipped atomic.Bool
	body := func() {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		block(ctx)
	}

	var inner *executor.Completion
	cancel := func() bool { return false }
	if cp, ok := e.(cancellablePoster); ok {
		inner, cancel = cp.PostCancellable(body)
	} else {
		inner = e.Post(body)
	}
	if inner.Finished() && inner.Err() != nil && !skipped.Load() {
		// Synchronous rejection (shutdown, full queue): no watcher needed,
		// and returning it directly lets InvokeCtx see the typed error.
		return inner
	}

	outer, finish := executor.NewPendingCompletion()
	finishFromInner := func() {
		err := inner.Err()
		if skipped.Load() {
			err = ctx.Err()
			r.emit(trace.OpDeadline, e.Name(), mode)
		}
		finish(err)
	}
	go func() {
		select {
		case <-inner.Done():
			finishFromInner()
		case <-ctx.Done():
			if cancel() {
				// Won the race: the queued task will never run.
				r.emit(trace.OpDeadline, e.Name(), mode)
				finish(ctx.Err())
				return
			}
			// The body already started (or the executor rejected the
			// task); report its real outcome.
			<-inner.Done()
			finishFromInner()
		}
	}()
	return outer
}

// IsDeadline reports whether a Completion error is a context expiry
// (deadline exceeded or cancellation), as opposed to a panic or an
// executor rejection.
func IsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
