package core

import (
	"testing"

	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

// TestTraceRecordsSchedulingDecisions verifies the tracer sees exactly the
// decisions Algorithm 1 makes: post vs inline, wait, and the await barrier
// with help-first task runs.
func TestTraceRecordsSchedulingDecisions(t *testing.T) {
	f := newFixture(t, 1)
	buf := trace.NewBuffer(256)
	f.rt.SetTraceSink(buf)

	// Wait mode from outside: invoke + post + wait.
	f.rt.Invoke("worker", Wait, func() {})
	if buf.CountOp(trace.OpPost) != 1 || buf.CountOp(trace.OpWait) != 1 {
		t.Fatalf("wait-mode trace:\n%s", buf.Dump())
	}

	// Same-target nested invoke: inline, no post.
	buf.Reset()
	comp, _ := f.rt.Invoke("worker", Wait, func() {
		f.rt.Invoke("worker", Wait, func() {})
	})
	comp.Wait()
	if buf.CountOp(trace.OpInline) != 1 {
		t.Fatalf("inline not traced:\n%s", buf.Dump())
	}

	// Await on a worker that helps a queued task: barrier enter/exit and a
	// helped record.
	buf.Reset()
	release := make(chan struct{})
	aux, err := f.rt.CreateWorker("aux2", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = aux
	outer, _ := f.rt.Invoke("worker", Nowait, func() {
		f.rt.Invoke("aux2", Await, func() { <-release })
	})
	poll.UntilBlockedIn(t, "(*WorkerPool).WaitPending")
	helped, _ := f.rt.Invoke("worker", Nowait, func() {})
	helped.Wait()
	close(release)
	outer.Wait()
	if buf.CountOp(trace.OpAwaitEnter) != 1 || buf.CountOp(trace.OpAwaitExit) != 1 {
		t.Fatalf("await barrier not traced:\n%s", buf.Dump())
	}
	if buf.CountOp(trace.OpHelped) < 1 {
		t.Fatalf("helped task not traced:\n%s", buf.Dump())
	}

	// Disabling the sink stops recording.
	f.rt.SetTraceSink(nil)
	before := buf.Len()
	f.rt.Invoke("worker", Nowait, func() {})
	if buf.Len() != before {
		t.Fatal("events recorded after sink removed")
	}
}
