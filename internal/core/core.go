// Package core implements the paper's primary contribution: the Pyjama
// runtime for the extended OpenMP `target virtual` directive. A virtual
// target is "a syntax-level abstraction of a thread pool executor" — the
// runtime keeps a registry of named targets, dispatches target blocks to
// them following Algorithm 1, and implements the four asynchronous execution
// modes of Table I:
//
//	default   — the encountering thread waits until the block finishes
//	nowait    — fire-and-forget; execution continues immediately
//	name_as   — fire, tagged; a later Wait(tag) joins all blocks so tagged
//	await     — fire; while the block runs, the encountering thread keeps
//	            processing other work from its own executor (the "logical
//	            barrier"), and continues past the block once it finishes
//
// Thread-context awareness (Algorithm 1 line 6): if the encountering
// goroutine is already a member of the destination target's thread group,
// the block runs synchronously in place, so e.g. a `target virtual(edt)`
// block inside code that is already on the EDT costs nothing and cannot
// deadlock.
//
// Because virtual targets share the host memory, blocks are ordinary Go
// closures: the "data-context sharing" property of Section III.B is the
// native behaviour of the language.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/executor"
	"repro/internal/gid"
	"repro/internal/sanitize"
	"repro/internal/trace"
)

// sanChecker is the optional confinement-sanitizer surface of an executor:
// SanCheck asserts (under -tags=ompsan) that the calling goroutine really
// belongs to the executor, with an independent gid stamp rather than the
// gid.Registry the inline decision was made from. eventloop.Loop and
// executor.WorkerPool implement it.
type sanChecker interface {
	SanCheck(op string)
}

// Mode is the scheduling-property-clause of the extended target directive
// (Figure 5): one of default (zero value), Nowait, NameAs, Await.
type Mode int

const (
	// Wait is the default mode: the encountering thread blocks until the
	// target block completes (standard OpenMP `target` behaviour).
	Wait Mode = iota
	// Nowait detaches the block entirely (clause `nowait`).
	Nowait
	// NameAs detaches the block and registers it under a name tag for a
	// later Wait(tag) join (clause `name_as(tag)`).
	NameAs
	// Await detaches the block and places the encountering thread in the
	// logical barrier: it processes other pending work from its own
	// executor until the block finishes (clause `await`).
	Await
)

// String returns the clause spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Wait:
		return "wait"
	case Nowait:
		return "nowait"
	case NameAs:
		return "name_as"
	case Await:
		return "await"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors reported by the runtime.
var (
	ErrUnknownTarget  = errors.New("core: unknown virtual target")
	ErrDuplicateName  = errors.New("core: virtual target name already registered")
	ErrNoTag          = errors.New("core: NameAs mode requires a non-empty tag")
	ErrNilBlock       = errors.New("core: nil target block")
	ErrNoDefaultSet   = errors.New("core: empty target name and no default target set")
	ErrRuntimeStopped = errors.New("core: runtime has been shut down")
)

// pendingRunner is the help-first surface an executor must provide for its
// members to participate in the await logical barrier.
type pendingRunner interface {
	TryRunPending() bool
	WaitPending(cancel <-chan struct{}) bool
}

// ICV holds the runtime's internal control variables, mirroring OpenMP's
// ICV mechanism (the paper's extension point is default-device-var, which
// for virtual targets becomes the default target name).
type ICV struct {
	// DefaultTarget is used when Invoke is called with an empty target name
	// (the analogue of default-device-var for virtual targets).
	DefaultTarget string
}

// Runtime is the virtual-target runtime ("PjRuntime"). The zero value is not
// usable; create one with NewRuntime.
type Runtime struct {
	registry *gid.Registry
	sink     atomic.Pointer[trace.Sink]

	mu      sync.RWMutex
	targets map[string]executor.Executor
	owned   map[string]bool // targets whose lifecycle we manage (Shutdown)
	groups  map[string]*nameGroup
	icv     ICV
	enabled bool
	stopped bool
}

// NewRuntime returns a runtime with directives enabled, using reg for
// goroutine affiliation (nil means gid.Default).
func NewRuntime(reg *gid.Registry) *Runtime {
	if reg == nil {
		reg = &gid.Default
	}
	return &Runtime{
		registry: reg,
		targets:  make(map[string]executor.Executor),
		owned:    make(map[string]bool),
		groups:   make(map[string]*nameGroup),
		enabled:  true,
	}
}

// SetEnabled turns directive interpretation on or off. With enabled=false the
// runtime reproduces an unsupporting compiler: every Invoke runs its block
// synchronously on the calling goroutine ("the code still retains its
// correctness when executed sequentially"). Registration calls still work so
// the same program runs unmodified.
func (r *Runtime) SetEnabled(v bool) {
	r.mu.Lock()
	r.enabled = v
	r.mu.Unlock()
}

// Enabled reports whether directives are interpreted.
func (r *Runtime) Enabled() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.enabled
}

// SetDefaultTarget sets the ICV used when Invoke receives an empty target
// name.
func (r *Runtime) SetDefaultTarget(name string) {
	r.mu.Lock()
	r.icv.DefaultTarget = name
	r.mu.Unlock()
}

// ICV returns a snapshot of the internal control variables.
func (r *Runtime) ICV() ICV {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.icv
}

// RegisterEDT registers loop as the virtual target named name. It is the
// analogue of virtual_target_register_edt (Table II): in Pyjama the calling
// thread becomes the target; here the loop's dispatch goroutine is that
// thread. loop may be any executor with help-first support, but in practice
// it is an *eventloop.Loop.
func (r *Runtime) RegisterEDT(name string, loop executor.Executor) error {
	return r.register(name, loop, false)
}

// CreateWorker creates a worker virtual target named name backed by a pool
// of m goroutines (virtual_target_create_worker of Table II) and returns the
// pool. The runtime owns the pool and shuts it down in Shutdown.
func (r *Runtime) CreateWorker(name string, m int) (*executor.WorkerPool, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil, ErrRuntimeStopped
	}
	if _, dup := r.targets[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	// Reserve the name before the (lock-free) pool construction.
	r.targets[name] = nil
	r.mu.Unlock()

	pool := executor.NewWorkerPool(name, m, r.registry)
	r.mu.Lock()
	if r.stopped {
		// Shutdown ran between the name reservation and here; it cannot
		// have seen this pool, so stop it ourselves or its workers leak.
		delete(r.targets, name)
		r.mu.Unlock()
		pool.Shutdown()
		return nil, ErrRuntimeStopped
	}
	r.targets[name] = pool
	r.owned[name] = true
	r.mu.Unlock()
	return pool, nil
}

// RegisterTarget registers an arbitrary executor as a virtual target. The
// runtime does not take ownership of its lifecycle.
func (r *Runtime) RegisterTarget(name string, e executor.Executor) error {
	return r.register(name, e, false)
}

func (r *Runtime) register(name string, e executor.Executor, owned bool) error {
	if e == nil {
		return fmt.Errorf("core: nil executor for target %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return ErrRuntimeStopped
	}
	if _, dup := r.targets[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	r.targets[name] = e
	if owned {
		r.owned[name] = true
	}
	return nil
}

// Target returns the executor registered under name, or nil.
func (r *Runtime) Target(name string) executor.Executor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.targets[name]
}

// TargetNames returns the registered virtual target names (unordered).
func (r *Runtime) TargetNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.targets))
	for n := range r.targets {
		names = append(names, n)
	}
	return names
}

// resolve maps a possibly-empty target name to its executor.
func (r *Runtime) resolve(name string) (executor.Executor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.stopped {
		return nil, ErrRuntimeStopped
	}
	if name == "" {
		name = r.icv.DefaultTarget
		if name == "" {
			return nil, ErrNoDefaultSet
		}
	}
	e := r.targets[name]
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	return e, nil
}

// Invoke is InvokeTargetBlock (Algorithm 1) for the Wait, Nowait and Await
// modes. It dispatches block to the virtual target named target and applies
// the scheduling property:
//
//   - thread-context awareness: if the calling goroutine already belongs to
//     the target, block runs synchronously and the returned Completion is
//     already finished, whatever the mode;
//   - Wait: blocks until the target finished the block;
//   - Nowait: returns immediately;
//   - Await: enters the logical barrier (see AwaitCompletion) until the
//     block finishes;
//   - NameAs: use InvokeNamed, which carries the tag.
//
// The returned Completion carries a *executor.PanicError if the block
// panicked.
func (r *Runtime) Invoke(target string, mode Mode, block func()) (*executor.Completion, error) {
	if mode == NameAs {
		return nil, ErrNoTag
	}
	return r.invoke(target, mode, "", block)
}

// InvokeNamed dispatches block in NameAs mode under the given tag. Multiple
// blocks may share a tag; WaitTag(tag) joins all of them.
func (r *Runtime) InvokeNamed(target, tag string, block func()) (*executor.Completion, error) {
	if tag == "" {
		return nil, ErrNoTag
	}
	return r.invoke(target, NameAs, tag, block)
}

// InvokeIf applies the directive's if-clause: when cond is false the
// directive is disabled for this invocation and block runs synchronously on
// the calling goroutine, exactly as if the directive were absent.
func (r *Runtime) InvokeIf(cond bool, target string, mode Mode, block func()) (*executor.Completion, error) {
	if !cond {
		if block == nil {
			return nil, ErrNilBlock
		}
		return executor.NewCompletedCompletion(executor.RunCaptured(block)), nil
	}
	return r.Invoke(target, mode, block)
}

func (r *Runtime) invoke(target string, mode Mode, tag string, block func()) (*executor.Completion, error) {
	if block == nil {
		return nil, ErrNilBlock
	}
	if !r.Enabled() {
		// Unsupporting compiler: the directive is a comment; run inline.
		return executor.NewCompletedCompletion(executor.RunCaptured(block)), nil
	}
	e, err := r.resolve(target)
	if err != nil {
		return nil, err
	}
	if sink := r.traceSink(); sink != nil {
		// Open an "invoke" span covering this whole scheduling decision and
		// make it the goroutine's current span: the executor's enqueue path
		// reads it as the spawn parent, so the block's eventual run span —
		// inline, posted, or helped inside an await barrier — links back here.
		span := trace.NewSpanID()
		prev := trace.Swap(span)
		trace.BeginSpanID(sink, span, "invoke", e.Name(), prev)
		defer func() {
			trace.Swap(prev)
			trace.EndSpan(sink, span, "invoke", e.Name())
		}()
	}
	r.emit(trace.OpInvoke, e.Name(), mode)

	var comp *executor.Completion
	if e.Owns() {
		// Algorithm 1 lines 6-7: already in the target's execution context —
		// execute synchronously by the current thread. Under -tags=ompsan,
		// cross-validate the registry's membership answer against the
		// executor's own goroutine stamp before trusting it: an inline run
		// on a goroutine the target does not actually own is precisely the
		// confinement breach the sanitizer exists to catch.
		if sanitize.Enabled {
			if sc, ok := e.(sanChecker); ok {
				sc.SanCheck("inline invoke on " + e.Name())
			}
		}
		r.emit(trace.OpInline, e.Name(), mode)
		comp = executor.NewCompletedCompletion(executor.RunCaptured(block))
	} else {
		// Line 8: post asynchronously.
		r.emit(trace.OpPost, e.Name(), mode)
		comp = e.Post(block)
		if err := r.stoppedRejection(comp); err != nil {
			return nil, err
		}
	}

	switch mode {
	case Nowait:
		// Lines 10-11: return directly.
	case NameAs:
		r.group(tag).add(comp)
	case Await:
		// Lines 13-16: logical barrier.
		r.AwaitCompletion(comp)
	default: // Wait
		// Line 17: default option — suspend until finished.
		r.emit(trace.OpWait, e.Name(), mode)
		comp.Wait()
	}
	return comp, nil
}

// stoppedRejection inspects a just-posted completion for the shutdown race:
// resolve saw a live runtime, Shutdown won the race to the executor, and the
// post was rejected synchronously with executor.ErrShutdown. Invokers get
// the deterministic typed error ErrRuntimeStopped — the same answer they
// would have gotten had Shutdown run one instruction earlier — instead of a
// rejection surfacing through the completion. Rejections by targets shut
// down externally (runtime still live) are left to the completion: their
// lifecycle is the caller's.
func (r *Runtime) stoppedRejection(comp *executor.Completion) error {
	if comp.Finished() && errors.Is(comp.Err(), executor.ErrShutdown) && r.Stopped() {
		return ErrRuntimeStopped
	}
	return nil
}

// Stopped reports whether Shutdown has run.
func (r *Runtime) Stopped() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stopped
}

// AwaitCompletion implements the logical barrier of Algorithm 1 lines 14-16:
// while comp is unfinished, the calling goroutine processes other pending
// work from its *own* executor — another event handler if it is an EDT,
// another queued task if it is a pool worker. A goroutine that belongs to no
// registered executor simply blocks (there is nothing for it to help with).
func (r *Runtime) AwaitCompletion(comp *executor.Completion) {
	if comp.Finished() {
		// Already done (inline execution, or the block beat us here): skip
		// the barrier entirely — in particular don't force the completion
		// to materialize its done channel.
		return
	}
	r.AwaitDone(comp.Done())
}

// AwaitDone is AwaitCompletion generalized to any completion channel; it is
// the bridge the paper's "further work" section asks for (integrating
// non-blocking and asynchronous I/O): any <-chan struct{} — a context's
// Done, an I/O completion signal — can hold the encountering thread in the
// logical barrier.
func (r *Runtime) AwaitDone(done <-chan struct{}) {
	select {
	case <-done:
		// Signal already raised: no barrier to hold, no helping to do.
		return
	default:
	}
	owner, _ := r.registry.Owner().(pendingRunner)
	if owner == nil {
		// Nothing to help with; park until the signal. Routed through
		// executor.BlockOn so that under the simulation executor (package
		// sim) the wait pumps the virtual scheduler instead of
		// deadlocking the single simulation goroutine.
		executor.BlockOn(done)
		return
	}
	r.emit(trace.OpAwaitEnter, ownerName(owner), Await)
	defer r.emit(trace.OpAwaitExit, ownerName(owner), Await)
	for {
		select {
		case <-done:
			return
		default:
		}
		if owner.TryRunPending() {
			r.emit(trace.OpHelped, ownerName(owner), Await)
			continue
		}
		// No pending work: sleep until either new work arrives or the
		// awaited block completes.
		owner.WaitPending(done)
		select {
		case <-done:
			return
		default:
		}
	}
}

// ownerName extracts the executor name for tracing.
func ownerName(owner pendingRunner) string {
	if n, ok := owner.(interface{ Name() string }); ok {
		return n.Name()
	}
	return ""
}

// nameGroup tracks the live completions submitted under one name tag.
type nameGroup struct {
	mu    sync.Mutex
	comps []*executor.Completion
	// err retains the first error verdict among pruned completions. Pruning
	// bounds memory on reused tags, but a block that finished — panicked —
	// before the next add on its tag must still surface through WaitTag;
	// whether it won that race is a pure accident of scheduling (found by
	// sim.Explore, seed pinned in internal/sim/testdata).
	err error
}

func (g *nameGroup) add(c *executor.Completion) {
	g.mu.Lock()
	// Prune already-finished entries so long-running programs that keep
	// reusing a tag don't accumulate completions without bound, keeping
	// only their first error verdict.
	live := g.comps[:0]
	for _, old := range g.comps {
		if !old.Finished() {
			live = append(live, old)
			continue
		}
		if err := old.Err(); err != nil && g.err == nil {
			g.err = err
		}
	}
	g.comps = append(live, c)
	g.mu.Unlock()
}

// takeErr consumes the retained pruned-block error.
func (g *nameGroup) takeErr() error {
	g.mu.Lock()
	err := g.err
	g.err = nil
	g.mu.Unlock()
	return err
}

func (g *nameGroup) snapshot() []*executor.Completion {
	g.mu.Lock()
	out := make([]*executor.Completion, len(g.comps))
	copy(out, g.comps)
	g.mu.Unlock()
	return out
}

func (r *Runtime) group(tag string) *nameGroup {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.groups[tag]
	if g == nil {
		g = &nameGroup{}
		r.groups[tag] = g
	}
	return g
}

// WaitTag suspends the calling goroutine until every target block instance
// submitted so far under tag has finished (the wait(name-tag) clause):
// "when a wait clause is applied with that name-tag, the encountering
// thread suspends until all the name-tag asynchronous target block
// instances finish". Waiting on a tag that was never used is a no-op. It
// returns the first error (captured panic) among the joined blocks, if any.
func (r *Runtime) WaitTag(tag string) error {
	r.mu.RLock()
	g := r.groups[tag]
	r.mu.RUnlock()
	if g == nil {
		return nil
	}
	// A pruned block finished before any block still tracked, so its
	// retained verdict is the tag's first error.
	first := g.takeErr()
	for _, c := range g.snapshot() {
		if err := c.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Wait joins multiple tags (wait(t1) wait(t2) ... on one directive).
func (r *Runtime) Wait(tags ...string) error {
	var first error
	for _, t := range tags {
		if err := r.WaitTag(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PendingInTag returns the number of unfinished blocks currently tracked
// under tag (for tests and monitoring).
func (r *Runtime) PendingInTag(tag string) int {
	r.mu.RLock()
	g := r.groups[tag]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	n := 0
	for _, c := range g.snapshot() {
		if !c.Finished() {
			n++
		}
	}
	return n
}

// Registry exposes the affiliation registry (used by substrates that create
// their own executors, e.g. the OpenMP fork-join teams).
func (r *Runtime) Registry() *gid.Registry { return r.registry }

// SetTraceSink installs a tracing sink (nil disables tracing). When set,
// the runtime records one event per scheduling decision: invoke, inline vs
// post, wait, await-enter/exit, and each task helped inside a barrier.
func (r *Runtime) SetTraceSink(s trace.Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&s)
}

// traceSink returns the sink scheduling events should go to: the runtime's
// own sink when one is installed (SetTraceSink), otherwise the process-global
// sink (trace.SetGlobal), otherwise nil.
func (r *Runtime) traceSink() trace.Sink {
	if p := r.sink.Load(); p != nil {
		return *p
	}
	return trace.ActiveSink()
}

// emit records a trace event if a sink is installed, tagged with the calling
// goroutine's current span so scheduling decisions attach to span trees.
func (r *Runtime) emit(op trace.Op, target string, mode Mode) {
	s := r.traceSink()
	if s == nil {
		return
	}
	s.Record(trace.Event{Op: op, Target: target, Mode: mode.String(), Gid: uint64(gid.Current()), Span: trace.Current()})
}

// PoolStats returns per-target executor statistics for every registered
// target whose executor exposes them (worker pools do; event loops report
// their own counters via their own API).
func (r *Runtime) PoolStats() map[string]executor.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]executor.Stats)
	for name, e := range r.targets {
		if p, ok := e.(interface{ Stats() executor.Stats }); ok {
			out[name] = p.Stats()
		}
	}
	return out
}

// Shutdown stops every worker target the runtime created (CreateWorker) and
// rejects further use. Externally registered targets (RegisterEDT,
// RegisterTarget) are not stopped: their lifecycle belongs to the caller.
func (r *Runtime) Shutdown() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	var toStop []executor.Executor
	for name, e := range r.targets {
		if r.owned[name] && e != nil {
			toStop = append(toStop, e)
		}
	}
	r.mu.Unlock()
	for _, e := range toStop {
		e.Shutdown()
	}
}
