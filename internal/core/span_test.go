package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gid"
	"repro/internal/trace"
)

// TestSpanTreeInvokePostRun reconstructs the full causal chain of one
// asynchronous directive from the trace ring: the caller's invoke span, the
// enqueue edge, and the run span on the worker, parented across the dispatch
// boundary.
func TestSpanTreeInvokePostRun(t *testing.T) {
	buf := trace.NewBuffer(1024)
	defer trace.Use(buf)()

	var reg gid.Registry
	rt := NewRuntime(&reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("alpha", 1); err != nil {
		t.Fatal(err)
	}

	if _, err := rt.Invoke("alpha", Wait, func() { time.Sleep(time.Millisecond) }); err != nil {
		t.Fatal(err)
	}

	tree := trace.BuildTree(buf.Snapshot())
	inv := tree.Find("invoke", "alpha")
	if inv == nil {
		t.Fatalf("no invoke span captured:\n%s", buf.Dump())
	}
	if inv.Parent != 0 {
		t.Fatalf("top-level invoke should be a root, parent=%d", inv.Parent)
	}
	if !inv.HasOp(trace.OpInvoke) || !inv.HasOp(trace.OpPost) || !inv.HasOp(trace.OpWait) {
		t.Fatalf("invoke span missing scheduling annotations: %+v", inv.Events)
	}
	run := inv.Child("run", "alpha")
	if run == nil {
		t.Fatalf("run span not parented to invoke:\n%s", tree.String())
	}
	if run.Gid == inv.Gid {
		t.Fatalf("run should be on the worker goroutine, both on g%d", run.Gid)
	}
	if run.Enqueued.IsZero() {
		t.Fatal("run span has no enqueue timestamp (OpEnqueue lost)")
	}
	if run.QueueDelay() < 0 {
		t.Fatalf("negative queue sojourn %v", run.QueueDelay())
	}
	if run.Duration() < time.Millisecond {
		t.Fatalf("run duration %v, want >= 1ms", run.Duration())
	}
}

// TestSpanTreeInlineNesting: an invoke from inside the target's own context
// runs inline, so the inner invoke span nests under the outer run span on the
// same goroutine — thread-context awareness made visible in the tree.
func TestSpanTreeInlineNesting(t *testing.T) {
	buf := trace.NewBuffer(1024)
	defer trace.Use(buf)()

	var reg gid.Registry
	rt := NewRuntime(&reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("alpha", 1); err != nil {
		t.Fatal(err)
	}

	if _, err := rt.Invoke("alpha", Wait, func() {
		if _, err := rt.Invoke("alpha", Wait, func() {}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	tree := trace.BuildTree(buf.Snapshot())
	outer := tree.Find("invoke", "alpha")
	if outer == nil {
		t.Fatalf("no outer invoke:\n%s", tree.String())
	}
	run := outer.Child("run", "alpha")
	if run == nil {
		t.Fatalf("outer run missing:\n%s", tree.String())
	}
	inner := run.Child("invoke", "alpha")
	if inner == nil {
		t.Fatalf("inner invoke not nested under outer run:\n%s", tree.String())
	}
	if !inner.HasOp(trace.OpInline) {
		t.Fatalf("inner invoke should have run inline: %+v", inner.Events)
	}
	if inner.Gid != run.Gid {
		t.Fatalf("inline invoke hopped goroutines: g%d vs g%d", inner.Gid, run.Gid)
	}
	if tree.Depth() < 3 {
		t.Fatalf("depth = %d, want >= 3:\n%s", tree.Depth(), tree.String())
	}
}

// TestSpanTreeAwaitHelpedParenting is the acceptance scenario: a task with an
// untraced submitter, helped by a goroutine parked in an await barrier, must
// parent to the awaiting invoke span — the helper's current span at run time
// is the only causal context the task has.
func TestSpanTreeAwaitHelpedParenting(t *testing.T) {
	buf := trace.NewBuffer(4096)
	defer trace.Use(buf)()

	var reg gid.Registry
	rt := NewRuntime(&reg)
	defer rt.Shutdown()
	alpha, err := rt.CreateWorker("alpha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateWorker("beta", 1); err != nil {
		t.Fatal(err)
	}

	helpedRan := make(chan struct{})
	if _, err := rt.Invoke("alpha", Wait, func() {
		// Submit from a goroutine with no active span: alpha's only worker
		// is busy right here, so the task sits queued until the await
		// barrier below helps it through.
		go func() {
			alpha.Post(func() { close(helpedRan) })
		}()
		// The beta block cannot finish until the helped task has run, which
		// forces this worker to actually help inside the barrier.
		if _, err := rt.Invoke("beta", Await, func() { <-helpedRan }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	tree := trace.BuildTree(buf.Snapshot())
	outer := tree.Find("invoke", "alpha")
	if outer == nil {
		t.Fatalf("no alpha invoke:\n%s", tree.String())
	}
	outerRun := outer.Child("run", "alpha")
	if outerRun == nil {
		t.Fatalf("alpha run missing:\n%s", tree.String())
	}
	await := outerRun.Child("invoke", "beta")
	if await == nil {
		t.Fatalf("beta invoke not nested under alpha run:\n%s", tree.String())
	}
	if !await.HasOp(trace.OpAwaitEnter) || !await.HasOp(trace.OpAwaitExit) {
		t.Fatalf("await barrier not annotated on the beta invoke span: %+v", await.Events)
	}
	if await.CountOp(trace.OpHelped) < 1 {
		t.Fatalf("no helped tasks recorded on the awaiting span: %+v", await.Events)
	}
	// The beta block's own run span and the helped alpha task are both
	// children of the awaiting invoke span.
	if await.Child("run", "beta") == nil {
		t.Fatalf("beta run not parented to its invoke:\n%s", tree.String())
	}
	helped := await.Child("run", "alpha")
	if helped == nil {
		t.Fatalf("helped task not parented to the awaiting span:\n%s", tree.String())
	}
	if helped.Gid != outerRun.Gid {
		t.Fatalf("helped task ran on g%d, want the awaiting worker g%d", helped.Gid, outerRun.Gid)
	}
	if !strings.Contains(tree.String(), "invoke(beta)") {
		t.Fatalf("tree render missing beta invoke:\n%s", tree.String())
	}
}

// TestSpanRuntimeSinkFallback: with only a per-runtime sink installed the
// scheduling events still record (against that sink), and with only the
// global sink installed core events land there — the two-level sink contract.
func TestSpanRuntimeSinkFallback(t *testing.T) {
	var reg gid.Registry
	rt := NewRuntime(&reg)
	defer rt.Shutdown()
	if _, err := rt.CreateWorker("w", 1); err != nil {
		t.Fatal(err)
	}

	own := trace.NewBuffer(256)
	rt.SetTraceSink(own)
	if _, err := rt.Invoke("w", Wait, func() {}); err != nil {
		t.Fatal(err)
	}
	if own.CountOp(trace.OpInvoke) != 1 {
		t.Fatalf("runtime sink saw %d invokes, want 1", own.CountOp(trace.OpInvoke))
	}

	rt.SetTraceSink(nil)
	global := trace.NewBuffer(256)
	defer trace.Use(global)()
	if _, err := rt.Invoke("w", Wait, func() {}); err != nil {
		t.Fatal(err)
	}
	if global.CountOp(trace.OpInvoke) != 1 {
		t.Fatalf("global sink saw %d invokes, want 1", global.CountOp(trace.OpInvoke))
	}
	if got := own.CountOp(trace.OpInvoke); got != 1 {
		t.Fatalf("runtime sink should not have grown after removal, got %d invokes", got)
	}
}
