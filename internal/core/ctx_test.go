package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/testutil/poll"
	"repro/internal/trace"
)

func TestInvokeCtxRunsAndPropagatesContext(t *testing.T) {
	f := newFixture(t, 2)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	var got any
	comp, err := f.rt.InvokeCtx(ctx, "worker", Wait, func(ctx context.Context) {
		got = ctx.Value(key{})
	})
	if err != nil || comp.Err() != nil {
		t.Fatalf("err=%v comp.Err=%v", err, comp.Err())
	}
	if got != "v" {
		t.Fatalf("block saw ctx value %v, want the caller's context", got)
	}
}

func TestInvokeCtxDeadlineCancelsQueuedTask(t *testing.T) {
	f := newFixture(t, 1)
	buf := trace.NewBuffer(64)
	f.rt.SetTraceSink(buf)

	// Occupy the single worker so the next block stays queued.
	gate := make(chan struct{})
	busy := make(chan struct{})
	if _, err := f.rt.Invoke("worker", Nowait, func() { close(busy); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-busy
	defer close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	comp, err := f.rt.InvokeCtx(ctx, "worker", Wait, func(context.Context) { ran.Store(true) })
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.Err(); !errors.Is(got, context.DeadlineExceeded) {
		t.Fatalf("comp.Err = %v, want DeadlineExceeded", got)
	}
	if ran.Load() {
		t.Fatal("cancelled block must never run")
	}
	if buf.CountOp(trace.OpDeadline) != 1 {
		t.Fatalf("OpDeadline count = %d, want 1\n%s", buf.CountOp(trace.OpDeadline), buf.Dump())
	}
	if !IsDeadline(comp.Err()) {
		t.Fatal("IsDeadline should classify DeadlineExceeded")
	}
}

func TestInvokeCtxExpiredBeforeDispatch(t *testing.T) {
	f := newFixture(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	comp, err := f.rt.InvokeCtx(ctx, "worker", Wait, func(context.Context) {
		t.Error("block must not run with an expired context")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Either the watcher cancels the queued task or the body skips it;
	// both must surface context.Canceled.
	if got := comp.Wait(); !errors.Is(got, context.Canceled) {
		t.Fatalf("comp.Err = %v, want Canceled", got)
	}
}

func TestInvokeCtxDeadlineOnEDTWithoutPostCancellable(t *testing.T) {
	// The event loop has no PostCancellable: an expired queued block is
	// skipped when dequeued, and the Completion still carries the
	// context error.
	f := newFixture(t, 1)
	gate := make(chan struct{})
	busy := make(chan struct{})
	f.edt.Post(func() { close(busy); <-gate })
	<-busy
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	comp, err := f.rt.InvokeCtx(ctx, "edt", Nowait, func(context.Context) {
		t.Error("expired block must not run on the EDT")
	})
	if err != nil {
		t.Fatal(err)
	}
	poll.Until(t, "the context deadline to expire while queued", func() bool {
		return ctx.Err() != nil
	})
	close(gate)
	if got := comp.Wait(); !errors.Is(got, context.DeadlineExceeded) {
		t.Fatalf("comp.Err = %v, want DeadlineExceeded", got)
	}
}

func TestInvokeCtxInlineWhenOwned(t *testing.T) {
	f := newFixture(t, 2)
	buf := trace.NewBuffer(64)
	f.rt.SetTraceSink(buf)
	var nestedRan bool
	comp, err := f.rt.Invoke("worker", Wait, func() {
		// Already on the worker target: the nested ctx invocation must
		// inline, not deadlock the pool.
		nested, err := f.rt.InvokeCtx(context.Background(), "worker", Wait, func(context.Context) {
			nestedRan = true
		})
		if err != nil || nested.Err() != nil {
			t.Errorf("nested: err=%v comp.Err=%v", err, nested.Err())
		}
	})
	if err != nil || comp.Err() != nil {
		t.Fatalf("err=%v comp.Err=%v", err, comp.Err())
	}
	if !nestedRan {
		t.Fatal("nested block did not run")
	}
	if buf.CountOp(trace.OpInline) == 0 {
		t.Fatal("expected an OpInline event for the nested invocation")
	}
}

func TestInvokeCtxPanicStillCaptured(t *testing.T) {
	f := newFixture(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	comp, err := f.rt.InvokeCtx(ctx, "worker", Wait, func(context.Context) { panic("boom") })
	if err != nil {
		t.Fatal(err)
	}
	var pe *executor.PanicError
	if got := comp.Err(); !errors.As(got, &pe) {
		t.Fatalf("comp.Err = %v, want *PanicError", got)
	}
}

func TestInvokeCtxDisabledRuntimeRunsInline(t *testing.T) {
	f := newFixture(t, 1)
	f.rt.SetEnabled(false)
	ran := false
	comp, err := f.rt.InvokeCtx(context.Background(), "worker", Nowait, func(context.Context) { ran = true })
	if err != nil || comp.Err() != nil {
		t.Fatalf("err=%v comp.Err=%v", err, comp.Err())
	}
	if !ran || !comp.Finished() {
		t.Fatal("disabled runtime must run the block synchronously")
	}
}

func TestInvokeCtxArgumentValidation(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.InvokeCtx(context.Background(), "worker", NameAs, func(context.Context) {}); !errors.Is(err, ErrNoTag) {
		t.Fatalf("NameAs err = %v, want ErrNoTag", err)
	}
	if _, err := f.rt.InvokeCtx(context.Background(), "worker", Wait, nil); !errors.Is(err, ErrNilBlock) {
		t.Fatalf("nil block err = %v, want ErrNilBlock", err)
	}
	if _, err := f.rt.InvokeCtx(context.Background(), "nosuch", Wait, func(context.Context) {}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target err = %v, want ErrUnknownTarget", err)
	}
}

func TestInvokeCtxAwaitMode(t *testing.T) {
	f := newFixture(t, 1)
	ctx := context.Background()
	var ran atomic.Bool
	comp, err := f.rt.InvokeCtx(ctx, "worker", Await, func(context.Context) { ran.Store(true) })
	if err != nil || comp.Err() != nil {
		t.Fatalf("err=%v comp.Err=%v", err, comp.Err())
	}
	if !ran.Load() || !comp.Finished() {
		t.Fatal("await must return only after the block completed")
	}
}
