package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/executor"
)

func TestAwaitFromEDTOnOwnTarget(t *testing.T) {
	// await on a block targeted at the caller's own executor: the block is
	// inlined by thread-context awareness, so the barrier is trivially
	// already satisfied.
	f := newFixture(t, 1)
	err := f.edt.InvokeAndWait(func() {
		comp, ierr := f.rt.Invoke("edt", Await, func() {})
		if ierr != nil {
			t.Error(ierr)
			return
		}
		if !comp.Finished() {
			t.Error("inlined await block not finished")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvokeNamedUnknownTarget(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.InvokeNamed("ghost", "tag", func() {}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitTagConcurrentSubmitters(t *testing.T) {
	f := newFixture(t, 4)
	var n atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				f.rt.InvokeNamed("worker", "conc", func() { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	if err := f.rt.WaitTag("conc"); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 8*20 {
		t.Fatalf("WaitTag returned with %d/160 done", n.Load())
	}
}

func TestNameGroupPrunesFinished(t *testing.T) {
	f := newFixture(t, 1)
	for i := 0; i < 100; i++ {
		c, _ := f.rt.InvokeNamed("worker", "prune", func() {})
		c.Wait()
	}
	// The group holds only live completions plus the latest insertion;
	// after everything finished, pending must be 0 and the internal slice
	// must not have grown unboundedly.
	f.rt.WaitTag("prune")
	f.rt.mu.RLock()
	g := f.rt.groups["prune"]
	f.rt.mu.RUnlock()
	g.mu.Lock()
	held := len(g.comps)
	g.mu.Unlock()
	if held > 2 {
		t.Fatalf("name group retains %d finished completions", held)
	}
}

func TestInvokeIfNilBlock(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.rt.InvokeIf(false, "worker", Wait, nil); !errors.Is(err, ErrNilBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterTargetCustomExecutor(t *testing.T) {
	f := newFixture(t, 1)
	d := executor.NewDirectExecutor("direct")
	if err := f.rt.RegisterTarget("direct", d); err != nil {
		t.Fatal(err)
	}
	ran := false
	comp, err := f.rt.Invoke("direct", Nowait, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	// DirectExecutor owns every goroutine: inline even with nowait.
	if !ran || !comp.Finished() {
		t.Fatal("direct target did not inline")
	}
}

func TestEnabledToggleDuringOperation(t *testing.T) {
	f := newFixture(t, 2)
	f.rt.SetEnabled(false)
	c1, _ := f.rt.Invoke("worker", Nowait, func() {})
	if !c1.Finished() {
		t.Fatal("disabled invoke not inline")
	}
	f.rt.SetEnabled(true)
	gate := make(chan struct{})
	c2, _ := f.rt.Invoke("worker", Nowait, func() { <-gate })
	if c2.Finished() {
		t.Fatal("enabled invoke ran inline")
	}
	close(gate)
	c2.Wait()
}

func TestPoolStats(t *testing.T) {
	f := newFixture(t, 2)
	for i := 0; i < 5; i++ {
		c, _ := f.rt.Invoke("worker", Nowait, func() {})
		c.Wait()
	}
	stats := f.rt.PoolStats()
	ws, ok := stats["worker"]
	if !ok {
		t.Fatalf("no stats for worker: %v", stats)
	}
	if ws.Submitted != 5 || ws.Completed != 5 {
		t.Fatalf("worker stats = %+v", ws)
	}
	if _, ok := stats["edt"]; ok {
		t.Fatal("event loop unexpectedly reported pool stats")
	}
}
