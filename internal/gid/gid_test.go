package gid

import (
	"sync"
	"testing"
)

func TestCurrentStable(t *testing.T) {
	a := Current()
	b := Current()
	if a == 0 {
		t.Fatal("Current returned 0")
	}
	if a != b {
		t.Fatalf("Current not stable on same goroutine: %d != %d", a, b)
	}
}

func TestCurrentDistinctAcrossGoroutines(t *testing.T) {
	const n = 64
	ids := make(chan ID, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids <- Current()
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[ID]bool)
	for id := range ids {
		if id == 0 {
			t.Fatal("zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate goroutine id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("expected %d distinct ids, got %d", n, len(seen))
	}
}

func TestRegistryRegisterDeregister(t *testing.T) {
	var r Registry
	owner := "executor-A"
	id := r.Register(owner)
	if got := r.Owner(); got != owner {
		t.Fatalf("Owner() = %v, want %v", got, owner)
	}
	if got := r.OwnerOf(id); got != owner {
		t.Fatalf("OwnerOf(%d) = %v, want %v", id, got, owner)
	}
	if !r.IsOwnedBy(owner) {
		t.Fatal("IsOwnedBy(owner) = false, want true")
	}
	if r.IsOwnedBy("someone-else") {
		t.Fatal("IsOwnedBy(other) = true, want false")
	}
	r.Deregister()
	if got := r.Owner(); got != nil {
		t.Fatalf("after Deregister Owner() = %v, want nil", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", r.Len())
	}
}

func TestRegistryOtherGoroutineNotOwned(t *testing.T) {
	var r Registry
	r.Register("me")
	defer r.Deregister()
	done := make(chan bool)
	go func() {
		done <- r.IsOwnedBy("me")
	}()
	if <-done {
		t.Fatal("different goroutine reported as owned")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Register(i)
			if !r.IsOwnedBy(i) {
				t.Errorf("goroutine %d not owned by itself", i)
			}
			r.Deregister()
		}(i)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("Len() = %d after all deregistered", r.Len())
	}
}

func BenchmarkCurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Current()
	}
}

func BenchmarkRegistryOwner(b *testing.B) {
	var r Registry
	r.Register("bench")
	defer r.Deregister()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner()
	}
}
