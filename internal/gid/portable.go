//go:build !amd64 && !arm64

package gid

// Current returns the id of the calling goroutine. Architectures without an
// assembly getg stub always take the runtime.Stack parse.
func Current() ID {
	return stackParse()
}
