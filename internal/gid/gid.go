// Package gid recovers a stable identity for the calling goroutine and
// maintains a registry mapping goroutine ids to the executor that owns them.
//
// The paper's runtime (Algorithm 1) needs "thread-context awareness": when a
// target block is invoked, the runtime asks whether the encountering thread
// is already a member of the destination virtual target's thread group. Java
// answers this with Thread.currentThread(); Go deliberately hides goroutine
// identity.
//
// Two implementations of Current coexist:
//
//   - stackParse reads the header line of runtime.Stack, which is stable
//     across releases ("goroutine 18 [running]:"). It costs microseconds —
//     tolerable when target-block boundaries are hundreds of milliseconds
//     apart, but it dominated the synchronous Invoke round trip once the
//     dispatch hot path itself was cut down to a few microseconds.
//   - on amd64/arm64 an assembly stub returns the runtime.g pointer and
//     Current reads the goid field directly. The field's offset is not part
//     of Go's compatibility promise, so it is discovered at init by scanning
//     g structs for the value stackParse reports (see fast.go); if discovery
//     fails, Current silently keeps using stackParse.
//
// Both paths return the same runtime-assigned id, which is never reused for
// the life of the process.
package gid

import (
	"runtime"
	"strconv"
	"sync"
)

// ID is a goroutine identifier. IDs are unique over the life of the process
// and are never reused by the Go runtime.
type ID uint64

// stackParse returns the calling goroutine's id by parsing the runtime.Stack
// header. It is the portable fallback and the calibration oracle for the
// fast path.
func stackParse() ID {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Header: "goroutine 123 [running]:\n..."
	const prefix = "goroutine "
	s := buf[len(prefix):n]
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	id, err := strconv.ParseUint(string(s[:i]), 10, 64)
	if err != nil {
		// Unreachable with a conforming runtime; return the zero id, which
		// is never registered, so affiliation checks degrade to "not a
		// member" (safe: the block is posted instead of inlined).
		return 0
	}
	return ID(id)
}

// Registry maps live goroutines to an owner (an executor). Executors register
// their worker goroutines on start and must deregister them on exit.
//
// The zero value is ready to use.
type Registry struct {
	mu     sync.RWMutex
	owners map[ID]any
}

// Register records owner as the owner of the calling goroutine and returns
// the goroutine's id. Registering a goroutine that already has an owner
// replaces the owner (used by nested/pump scenarios is not allowed; callers
// use Push/Pop for that).
func (r *Registry) Register(owner any) ID {
	id := Current()
	r.mu.Lock()
	if r.owners == nil {
		r.owners = make(map[ID]any)
	}
	r.owners[id] = owner
	r.mu.Unlock()
	return id
}

// Deregister removes the calling goroutine's owner record.
func (r *Registry) Deregister() {
	id := Current()
	r.mu.Lock()
	delete(r.owners, id)
	r.mu.Unlock()
}

// Owner returns the owner registered for the calling goroutine, or nil.
func (r *Registry) Owner() any {
	return r.OwnerOf(Current())
}

// OwnerOf returns the owner registered for goroutine id, or nil.
func (r *Registry) OwnerOf(id ID) any {
	r.mu.RLock()
	o := r.owners[id]
	r.mu.RUnlock()
	return o
}

// IsOwnedBy reports whether the calling goroutine is registered to owner.
func (r *Registry) IsOwnedBy(owner any) bool {
	return r.Owner() == owner
}

// Len returns the number of registered goroutines (for tests/metrics).
func (r *Registry) Len() int {
	r.mu.RLock()
	n := len(r.owners)
	r.mu.RUnlock()
	return n
}

// Default is the process-wide registry used by the core runtime.
var Default Registry
