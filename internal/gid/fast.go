//go:build amd64 || arm64

package gid

import "unsafe"

// getg is implemented in assembly; it returns the current goroutine's
// runtime.g pointer.
func getg() unsafe.Pointer

// gWords is how much of the g struct calibration scans for the goid field.
// 32 words (256 bytes) comfortably covers the field's location in every
// released Go version (~offset 152) while staying well inside the struct,
// so the cast never straddles the allocation.
const gWords = 32

// goidWord is the word index of the goid field within the g struct,
// discovered by calibrate at init, or -1 when discovery failed and Current
// must keep using the runtime.Stack parse.
var goidWord = calibrate()

// calibrate locates the goid field by scanning several goroutines' g structs
// for the id that the runtime.Stack parse reports for that same goroutine,
// and intersecting the candidate offsets. goid is immutable for a
// goroutine's lifetime and unique process-wide, so the real field matches in
// every goroutine, while coincidental matches (another field happening to
// hold one goroutine's id) die in the intersection. Anything other than
// exactly one surviving offset disables the fast path.
func calibrate() int {
	for attempt := 0; attempt < 4; attempt++ {
		mask := candidateMask()
		const probes = 8
		results := make(chan uint64, probes)
		for i := 0; i < probes; i++ {
			go func() { results <- candidateMask() }()
		}
		for i := 0; i < probes; i++ {
			mask &= <-results
		}
		if mask != 0 && mask&(mask-1) == 0 {
			w := 0
			for mask != 1 {
				mask >>= 1
				w++
			}
			return w
		}
	}
	return -1
}

// candidateMask scans the calling goroutine's g struct and returns a bitmask
// of word offsets whose value equals the goroutine's Stack-parsed id.
func candidateMask() uint64 {
	id := int64(stackParse())
	if id <= 0 {
		return 0
	}
	words := (*[gWords]int64)(getg())
	var mask uint64
	for i, w := range words {
		if w == id {
			mask |= 1 << i
		}
	}
	return mask
}

// Current returns the id of the calling goroutine.
//
// Fast path: one TLS load plus one field read against the offset located by
// calibrate — low single-digit nanoseconds, versus ~3µs for the
// runtime.Stack header parse it replaces. The slow parse remains both the
// calibration oracle and the fallback when discovery fails, so a future g
// layout change degrades performance, never correctness.
func Current() ID {
	if w := goidWord; w >= 0 {
		return ID((*[gWords]int64)(getg())[w])
	}
	return stackParse()
}
