//go:build amd64 || arm64

package gid

import (
	"sync"
	"testing"
)

// TestCalibration asserts the goid-field discovery succeeded on the
// architectures that ship a getg stub. If a Go release moves the field out
// of the scanned window this fails loudly in CI instead of silently leaving
// every Current call on the microsecond slow path.
func TestCalibration(t *testing.T) {
	if goidWord < 0 {
		t.Fatal("goid field calibration failed; fast path disabled")
	}
	t.Logf("goid at g struct word %d (byte offset %d)", goidWord, goidWord*8)
}

// TestFastMatchesStackParse is the correctness oracle for the fast path: on
// many concurrent goroutines the direct field read must agree with the
// runtime.Stack header parse, repeatedly, including across stack growth.
func TestFastMatchesStackParse(t *testing.T) {
	const goroutines = 100
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				fast, slow := Current(), stackParse()
				if fast != slow {
					t.Errorf("Current()=%d disagrees with stackParse()=%d", fast, slow)
					return
				}
				// Force stack growth between probes so a g pointer cached
				// across a moving stack would be caught (g itself must not
				// move; its stack does).
				growStack(64)
			}
		}()
	}
	wg.Wait()
}

//go:noinline
func growStack(depth int) int {
	var pad [256]byte
	if depth == 0 {
		return int(pad[0])
	}
	return growStack(depth-1) + int(pad[128])
}
