//go:build arm64

#include "textflag.h"

// func getg() unsafe.Pointer
//
// On arm64 the current g is pinned in the dedicated g register (R28).
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVD g, R0
	MOVD R0, ret+0(FP)
	RET
