//go:build amd64

#include "textflag.h"

// func getg() unsafe.Pointer
//
// Returns the current goroutine's runtime.g. On amd64 the g pointer lives
// in thread-local storage; the runtime keeps it there across preemption and
// thread migration, and g structs are never moved by the GC, so the pointer
// stays valid for the duration of any read the caller performs.
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVQ (TLS), AX
	MOVQ AX, ret+0(FP)
	RET
