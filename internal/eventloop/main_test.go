package eventloop

import (
	"os"
	"testing"

	"repro/internal/testutil/leakcheck"
)

// TestMain sweeps the whole suite for leaked goroutines: after the last
// test, every loop dispatcher and delayed-post timer must have exited.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
